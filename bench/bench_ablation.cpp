// Ablations over MP-DASH's design choices (not a paper table; DESIGN.md
// calls these out):
//   1. alpha — the deadline safety factor (paper §7.2.1 sweeps it for
//      downloads; here for full streaming sessions),
//   2. deadline policy x buffer capacity — how much of the rate-based
//      advantage survives small buffers,
//   3. throughput estimator — Holt-Winters vs EWMA vs windowed harmonic
//      mean inside Algorithm 1 (trace-driven),
//   4. enable debounce — responsiveness vs radio-waking noise.

#include "core/online_simulator.h"
#include "predict/ewma.h"
#include "predict/harmonic.h"
#include "bench_common.h"

using namespace mpdash;
using namespace mpdash::bench;

namespace {

void ablate_alpha(const Video& video) {
  std::printf("--- ablation 1: alpha (FESTIVE, W3.8/L3.0, rate-based) ---\n");
  TextTable table({"alpha", "cell MB", "energy J", "avg Mbps", "misses"});
  for (double alpha : {0.7, 0.8, 0.9, 1.0}) {
    Scenario sc(constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)));
    SessionConfig cfg;
    cfg.scheme = Scheme::kMpDashRate;
    cfg.adaptation = "festive";
    cfg.alpha = alpha;
    const SessionResult res = run_streaming_session(sc, video, cfg);
    table.add_row({TextTable::num(alpha, 1), mb(res.cell_bytes),
                   TextTable::num(res.energy_j(), 0),
                   TextTable::num(res.steady_avg_bitrate_mbps),
                   std::to_string(res.deadline_misses)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: smaller alpha = more cellular (conservative), "
              "fewer misses.\n\n");
}

void ablate_buffer(const Video& video) {
  std::printf("--- ablation 2: deadline policy x buffer capacity ---\n");
  TextTable table({"buffer s", "policy", "cell MB", "stalls", "avg Mbps"});
  for (double cap : {16.0, 24.0, 40.0}) {
    for (Scheme scheme : {Scheme::kMpDashDuration, Scheme::kMpDashRate}) {
      Scenario sc(
          constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)));
      SessionConfig cfg;
      cfg.scheme = scheme;
      cfg.adaptation = "festive";
      cfg.player.buffer_capacity = seconds(cap);
      cfg.player.startup_buffer = seconds(std::min(8.0, cap / 2));
      const SessionResult res = run_streaming_session(sc, video, cfg);
      table.add_row({TextTable::num(cap, 0),
                     scheme == Scheme::kMpDashRate ? "rate" : "duration",
                     mb(res.cell_bytes), std::to_string(res.stalls),
                     TextTable::num(res.steady_avg_bitrate_mbps)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: smaller buffers shrink the deadline-extension "
              "headroom, so savings drop but stalls stay at zero.\n\n");
}

// Algorithm 1 with swappable estimators, trace-driven (mirrors
// simulate_online_two_path, but parameterized on the estimator).
struct EstimatorRun {
  double cell_fraction = 0.0;
  bool missed = false;
};

EstimatorRun run_with_estimator(ThroughputEstimator& est,
                                const BandwidthTrace& wifi,
                                const BandwidthTrace& cell, Bytes target,
                                Duration deadline) {
  const Duration slot = milliseconds(50);
  Bytes sent = 0, cell_bytes = 0;
  bool enabled = false;
  int streak = 0;
  TimePoint t = kTimeZero;
  const TimePoint due = TimePoint(deadline);
  while (sent < target && t < due + TimePoint(seconds(600.0))) {
    const TimePoint next = t + slot;
    const bool late = t >= due;
    const Bytes w = wifi.bytes_between(t, next);
    sent += w;
    if (enabled || late) {
      const Bytes c = cell.bytes_between(t, next);
      sent += c;
      cell_bytes += c;
    }
    est.add_sample(rate_of(w, slot));
    t = next;
    if (sent >= target || late) continue;
    const double budget = to_seconds(deadline) - to_seconds(t);
    const double deliver = est.predict().bps() / 8.0 * budget;
    const double remain = static_cast<double>(target - sent);
    if (enabled && deliver > remain * 1.05) {
      enabled = false;
      streak = 0;
    } else if (!enabled && deliver < remain * 0.95) {
      if (++streak >= 2) {
        enabled = true;
        streak = 0;
      }
    } else {
      streak = 0;
    }
  }
  return {static_cast<double>(cell_bytes) / static_cast<double>(target),
          t > due};
}

void ablate_estimator() {
  std::printf("--- ablation 3: throughput estimator inside Algorithm 1 ---\n");
  TextTable table({"profile", "Holt-Winters", "EWMA", "harmonic-20"});
  for (const auto& p : table1_profiles()) {
    const Duration deadline = p.deadlines[p.deadlines.size() / 2];
    const Duration horizon = deadline + seconds(120.0);
    const auto wifi = p.wifi_trace(horizon);
    const auto cell = p.cell_trace(horizon);
    HoltWinters hw;
    Ewma ewma(0.25);
    HarmonicMean harm(20);
    auto cellpct = [&](ThroughputEstimator& e) {
      const EstimatorRun r =
          run_with_estimator(e, wifi, cell, p.file_size, deadline);
      return TextTable::pct(r.cell_fraction, 1) + (r.missed ? " MISS" : "");
    };
    table.add_row({p.name, cellpct(hw), cellpct(ewma), cellpct(harm)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: HW (level+trend) tracks non-stationary WiFi "
              "better, using less cellular at equal miss rates.\n\n");
}

void ablate_debounce(const Video& video) {
  std::printf("--- ablation 4: enable-debounce ticks ---\n");
  TextTable table({"debounce", "cell MB", "energy J", "misses"});
  for (int ticks : {1, 2, 4}) {
    Scenario sc(constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)));
    SessionConfig cfg;
    cfg.scheme = Scheme::kMpDashRate;
    cfg.adaptation = "festive";
    cfg.debounce_ticks = ticks;
    const SessionResult res = run_streaming_session(sc, video, cfg);
    table.add_row({std::to_string(ticks), mb(res.cell_bytes),
                   TextTable::num(res.energy_j(), 0),
                   std::to_string(res.deadline_misses)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected: debounce 1 reacts to slow-start-restart dips "
              "(more cellular + more radio wakes); large debounce risks "
              "late assists.\n");
}

}  // namespace

int main() {
  print_header("Ablations", "MP-DASH design-choice sweeps");
  const Video video = bench_video();
  ablate_alpha(video);
  ablate_buffer(video);
  ablate_estimator();
  ablate_debounce(video);
  return 0;
}
