#pragma once
// Shared helpers for the paper-reproduction benches. Each bench binary
// regenerates one table or figure from the paper's evaluation (§7); these
// utilities build the scenarios and format results the way the paper
// reports them.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/rollup.h"
#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "runner/campaign.h"
#include "telemetry/trace_sink.h"
#include "trace/locations.h"
#include "util/stats.h"
#include "util/table.h"

namespace mpdash::bench {

// Shared `--jobs N` flag for the campaign-based benches (0 = auto:
// MPDASH_JOBS env, then hardware concurrency — see resolve_jobs()).
inline int parse_jobs(int argc, char** argv) {
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--jobs" && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (flag.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(flag.c_str() + 7);
    } else {
      std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
      std::exit(2);
    }
  }
  return jobs;
}

// MPDASH_QUICK=1 trims session lengths for fast smoke runs; default is
// the paper's full 10-minute videos.
inline bool quick_mode() {
  const char* env = std::getenv("MPDASH_QUICK");
  return env != nullptr && env[0] == '1';
}

inline Video bench_video(Video (*preset)(Duration) = big_buck_bunny,
                         Duration chunk = seconds(4.0)) {
  Video full = preset(chunk);
  if (!quick_mode()) return full;
  // Quick mode: first quarter of the video.
  std::vector<DataRate> rates;
  for (const auto& lv : full.levels()) rates.push_back(lv.avg_bitrate);
  return Video(full.name(), full.chunk_duration(),
               std::max(20, full.chunk_count() / 4), std::move(rates), 0.12,
               42);
}

inline ScenarioConfig location_scenario(const LocationProfile& loc,
                                        Duration horizon) {
  ScenarioConfig cfg;
  cfg.wifi_down = loc.wifi_trace(horizon);
  cfg.lte_down = loc.lte_trace(horizon);
  cfg.wifi_rtt = loc.wifi_rtt;
  cfg.lte_rtt = loc.lte_rtt;
  return cfg;
}

// Bench id registered by print_header(); names the BENCH_<id>.json file.
inline std::string& current_bench_id() {
  static std::string id;
  return id;
}

// MPDASH_BENCH_JSON=1 appends one metrics snapshot per run_scheme() call
// to BENCH_<id>.json (JSON lines, one object per run).
inline bool bench_json_enabled() {
  const char* env = std::getenv("MPDASH_BENCH_JSON");
  return env != nullptr && env[0] == '1';
}

// MPDASH_BENCH_SERIES=1 (with MPDASH_BENCH_JSON=1) additionally samples
// the registry on a 1 s sim-time cadence and embeds the whole series in
// each run's JSON line, so campaign benches emit per-run QoE/byte-share
// time series, not just the end-of-run totals.
inline bool bench_series_enabled() {
  const char* env = std::getenv("MPDASH_BENCH_SERIES");
  return env != nullptr && env[0] == '1';
}

// MPDASH_BENCH_ATTRIB=<path> makes the field-study benches capture the
// span-model record set per cell and write per-location deadline-miss
// attribution time series (kAttribSeriesHeader rows) to <path>. Rows are
// assembled in add-order like the JSON lines, so the file is bitwise
// identical for any --jobs value.
inline const char* bench_attrib_path() {
  const char* env = std::getenv("MPDASH_BENCH_ATTRIB");
  return (env != nullptr && env[0] != '\0') ? env : nullptr;
}

// Attribution time-series bucket: coarse enough that a 10-minute session
// yields a handful of rows per cell, not thousands.
inline constexpr double kBenchAttribBucketS = 10.0;

inline std::string bench_snapshot_line(Telemetry& telemetry, Scheme scheme,
                                       const std::string& algo,
                                       double session_s,
                                       const MetricsTimeline* series =
                                           nullptr) {
  const std::string id =
      current_bench_id().empty() ? "bench" : current_bench_id();
  const MetricsSnapshot snap =
      telemetry.metrics().snapshot(TimePoint(seconds(session_s)));
  std::string out = "{\"bench\":\"" + json_escape(id) + "\",\"scheme\":\"" +
                    to_string(scheme) + "\",\"adaptation\":\"" +
                    json_escape(algo) + "\",\"snapshot\":" + snap.to_json();
  if (series != nullptr) {
    out += ",\"series\":[";
    bool first = true;
    for (const MetricsSnapshot& s : series->snapshots()) {
      if (!first) out += ',';
      first = false;
      out += s.to_json();
    }
    out += ']';
  }
  out += "}\n";
  return out;
}

// Appends pre-rendered JSON lines to BENCH_<id>.json. Campaign benches
// buffer one line per run and flush here in add-order after the pool
// drains, so the file contents do not depend on the job count.
inline void append_bench_lines(const std::string& lines) {
  if (lines.empty()) return;
  const std::string id =
      current_bench_id().empty() ? "bench" : current_bench_id();
  std::FILE* f = std::fopen(("BENCH_" + id + ".json").c_str(), "a");
  if (!f) return;
  std::fwrite(lines.data(), 1, lines.size(), f);
  std::fclose(f);
}

// One trailer line per campaign: wall-clock, serial estimate (sum of
// per-run times), and the realized speedup, so BENCH_*.json tracks the
// parallelism win over time alongside the per-run metric snapshots.
inline void append_campaign_summary(const CampaignStats& stats) {
  if (!bench_json_enabled()) return;
  const std::string id =
      current_bench_id().empty() ? "bench" : current_bench_id();
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"bench\":\"%s\",\"campaign\":{\"runs\":%d,\"jobs\":%d,"
                "\"failures\":%d,\"wall_s\":%.3f,\"serial_est_s\":%.3f,"
                "\"speedup\":%.2f}}\n",
                json_escape(id).c_str(), stats.runs, stats.jobs,
                stats.failures, stats.wall_s, stats.run_wall_sum_s,
                stats.speedup());
  append_bench_lines(buf);
}

// Runs one (scenario, scheme, algorithm) cell. When `json_out` is given,
// the MPDASH_BENCH_JSON snapshot line is returned through it instead of
// written immediately — required inside campaign workers, where direct
// file appends would interleave nondeterministically. When `attrib_out`
// is given, the cell additionally captures the span-model record set,
// runs deadline-miss attribution, and returns attribution time-series
// rows keyed by `attrib_key` (same buffering contract as `json_out`).
inline SessionResult run_scheme(const ScenarioConfig& net, const Video& video,
                                Scheme scheme, const std::string& algo,
                                bool record = false,
                                std::string* json_out = nullptr,
                                std::string* attrib_out = nullptr,
                                const std::string& attrib_key = {}) {
  Scenario scenario(net);
  SessionConfig cfg;
  cfg.scheme = scheme;
  cfg.adaptation = algo;
  cfg.record_trace = record;
  Telemetry telemetry;
  MetricsTimeline timeline;
  SessionEnv env;
  const bool series = bench_json_enabled() && bench_series_enabled();
  if (bench_json_enabled()) env.telemetry = &telemetry;
  if (series) env.metrics = &timeline;
  TraceCollector attrib_capture;
  TypeFilterSink attrib_filter(&attrib_capture, span_model_trace_mask());
  if (attrib_out != nullptr) {
    env.telemetry = &telemetry;
    telemetry.add_sink(&attrib_filter);
  }
  SessionResult res = run_streaming_session(scenario, video, cfg, env);
  if (attrib_out != nullptr) {
    telemetry.remove_sink(&attrib_filter);
    SpanModel model = build_span_model(attrib_capture.records());
    attribute_misses(&model, kWifiPathId);
    *attrib_out =
        attribution_series_csv(model, kBenchAttribBucketS, attrib_key);
  }
  if (bench_json_enabled()) {
    const std::string line = bench_snapshot_line(
        telemetry, scheme, algo, res.session_s, series ? &timeline : nullptr);
    if (json_out != nullptr) {
      *json_out = line;
    } else {
      append_bench_lines(line);
    }
  }
  return res;
}

inline double saving(double baseline, double value) {
  if (baseline <= 0.0) return 0.0;
  return (baseline - value) / baseline;
}

inline std::string mb(Bytes b) {
  return TextTable::num(static_cast<double>(b) / 1e6, 2);
}

inline void print_header(const char* id, const char* what) {
  std::string& bench = current_bench_id();
  bench = id;
  for (char& c : bench) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", id, what);
  std::printf("==========================================================\n");
}

inline void print_cdf(const char* title, std::vector<double> values) {
  std::printf("%s\n", title);
  std::printf("  p10=%.1f%%  p25=%.1f%%  p50=%.1f%%  p75=%.1f%%  p90=%.1f%%\n",
              percentile(values, 10) * 100, percentile(values, 25) * 100,
              percentile(values, 50) * 100, percentile(values, 75) * 100,
              percentile(values, 90) * 100);
}

}  // namespace mpdash::bench
