// Extension (paper §5.2.3, left as future work there): MP-DASH with a
// hybrid model-predictive-control rate adaptation. The adapter reuses the
// throughput-based integration (override + Φ/Ω thresholds); the deadline
// comes from the rate-based rule. Compares MPC baseline vs MP-DASH under
// the three controlled network conditions of Figure 7.

#include "bench_common.h"

using namespace mpdash;
using namespace mpdash::bench;

int main() {
  print_header("Extension", "MPC (hybrid) + MP-DASH, paper §5.2.3");

  const Video video = bench_video();
  struct Net {
    const char* name;
    double wifi, lte;
  };
  TextTable table({"network", "scheme", "cell MB", "energy J", "avg Mbps",
                   "stalls", "cell sav"});
  for (const Net& net : {Net{"W3.8/L3.0", 3.8, 3.0},
                         Net{"W2.8/L3.0", 2.8, 3.0},
                         Net{"W2.2/L1.2", 2.2, 1.2}}) {
    SessionResult base;
    for (Scheme scheme : {Scheme::kBaseline, Scheme::kMpDashRate}) {
      const SessionResult res = run_scheme(
          constant_scenario(DataRate::mbps(net.wifi),
                            DataRate::mbps(net.lte)),
          video, scheme, "mpc");
      if (scheme == Scheme::kBaseline) base = res;
      table.add_row(
          {net.name, scheme == Scheme::kBaseline ? "Baseline" : "MP-DASH",
           mb(res.cell_bytes), TextTable::num(res.energy_j(), 0),
           TextTable::num(res.steady_avg_bitrate_mbps),
           std::to_string(res.stalls),
           scheme == Scheme::kBaseline
               ? "-"
               : TextTable::pct(saving(static_cast<double>(base.cell_bytes),
                                       static_cast<double>(res.cell_bytes)),
                                0)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "the hybrid algorithm integrates with the same adapter code path as\n"
      "the throughput-based ones — the paper's claim that MP-DASH\n"
      "generalizes across adaptation categories. Note the constrained\n"
      "W2.2/L1.2 condition: naive MPC integration can stall there (MPC's\n"
      "optimizer trusts the aggregate estimate while MP-DASH is holding\n"
      "cellular back) — evidence for the paper's caution in deferring the\n"
      "full MPC design (e.g. deadlines from the table's minimum-throughput\n"
      "column) to future work.\n");
  return 0;
}
