// Figure 10: CDF of playback bitrate reduction across the field-study
// locations — MP-DASH must deliver its savings with (near) zero QoE cost.
// The paper: no reduction for ~83 % of experiments; mean reduction among
// the rest only 2.5 %; negative values (bitrate increases) occur.

#include "field_study.h"

using namespace mpdash;
using namespace mpdash::bench;

int main(int argc, char** argv) {
  const int jobs = parse_jobs(argc, argv);
  print_header("Figure 10", "playback bitrate reduction CDF");

  const auto outcomes = run_field_study(field_study_locations(), jobs);

  std::vector<std::pair<std::string,
                        std::vector<std::pair<double, double>>>> series;
  int no_reduction = 0, total = 0, stall_regressions = 0;
  OnlineStats reductions_when_any;
  for (const char* algo : {"festive", "bba"}) {
    for (const char* scheme : {"rate", "duration"}) {
      std::vector<double> red;
      for (const auto& o : outcomes) {
        const double r = o.bitrate_reduction(algo, scheme);
        red.push_back(r * 100.0);
        ++total;
        if (r <= 0.005) {
          ++no_reduction;
        } else {
          reductions_when_any.add(r * 100.0);
        }
        const int base_stalls = o.at(std::string(algo) + "/baseline").stalls;
        if (o.at(std::string(algo) + "/" + scheme).stalls > base_stalls) {
          ++stall_regressions;
        }
      }
      std::vector<std::pair<double, double>> cdf_pts;
      for (const auto& [v, f] : empirical_cdf(red)) cdf_pts.emplace_back(v, f);
      series.emplace_back(std::string(algo) + "-" + scheme,
                          std::move(cdf_pts));
    }
  }

  std::printf("%s\n", ascii_plot(series, 72, 16,
                                 "playback bitrate reduction (%)", "CDF")
                          .c_str());
  std::printf("experiments with no meaningful reduction: %d / %d (%.1f%%)\n",
              no_reduction, total, 100.0 * no_reduction / total);
  std::printf("mean reduction among the rest: %.1f%%\n",
              reductions_when_any.count() ? reductions_when_any.mean() : 0.0);
  std::printf("experiments where MP-DASH added stalls: %d\n",
              stall_regressions);
  std::printf("paper shape: ~83%% of experiments show no reduction; the "
              "rest average ~2.5%%; negative reduction (bitrate increase) "
              "exists.\n");
  return 0;
}
