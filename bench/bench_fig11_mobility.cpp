// Figure 11: the mobility scenario — walking away from and back toward a
// WiFi AP while streaming with FESTIVE. Three configurations: MP-DASH
// (rate-based), default MPTCP, and single-path WiFi. MP-DASH should tap
// cellular only while WiFi is weak (far from the AP); default MPTCP runs
// LTE at capacity throughout; WiFi-only loses quality in the troughs.

#include "analysis/analyzer.h"
#include "bench_common.h"
#include "trace/generators.h"
#include "util/rng.h"

using namespace mpdash;
using namespace mpdash::bench;

namespace {

ScenarioConfig mobility_net(Duration horizon) {
  Rng rng(77);
  MobilityParams mp;
  mp.peak = DataRate::mbps(5.0);
  mp.period = seconds(60.0);
  mp.horizon = horizon;
  ScenarioConfig cfg;
  cfg.wifi_down = gen_mobility_walk(mp, rng);
  cfg.lte_down = BandwidthTrace::constant(DataRate::mbps(5.0));
  return cfg;
}

void plot(const char* title, const SessionResult& res) {
  const ThroughputSeries series = throughput_series(res.trace);
  auto window = [](const std::vector<std::pair<double, double>>& pts) {
    std::vector<std::pair<double, double>> out;
    for (const auto& [t, v] : pts) {
      if (t >= 60.0 && t <= 120.0) out.emplace_back(t, v);
    }
    return out;
  };
  std::printf("--- %s ---\n", title);
  std::printf("%s\n",
              ascii_plot({{"WiFi", window(series.per_path[kWifiPathId])},
                          {"LTE", window(series.per_path[kCellularPathId])}},
                         72, 10, "time (s)", "Mbps")
                  .c_str());
  std::printf("cell %s MB, energy %.0f J, steady bitrate %.2f Mbps, "
              "stalls %d\n\n",
              mb(res.cell_bytes).c_str(), res.energy_j(),
              res.steady_avg_bitrate_mbps, res.stalls);
}

}  // namespace

int main() {
  print_header("Figure 11", "mobility: walking around a WiFi AP (FESTIVE)");

  const Video video = bench_video();
  const Duration horizon = video.total_duration() + seconds(120.0);
  const ScenarioConfig net = mobility_net(horizon);

  const SessionResult mpd =
      run_scheme(net, video, Scheme::kMpDashRate, "festive", true);
  const SessionResult base =
      run_scheme(net, video, Scheme::kBaseline, "festive", true);
  ScenarioConfig wifi_net = net;
  wifi_net.wifi_only = true;
  const SessionResult wifi =
      run_scheme(wifi_net, video, Scheme::kWifiOnly, "festive", true);

  plot("MP-DASH (rate-based)", mpd);
  plot("default MPTCP", base);
  plot("single-path WiFi", wifi);

  std::printf("MP-DASH vs default MPTCP: cellular saving %.1f%%, energy "
              "saving %.1f%%\n",
              saving(static_cast<double>(base.cell_bytes),
                     static_cast<double>(mpd.cell_bytes)) * 100,
              saving(base.energy_j(), mpd.energy_j()) * 100);
  std::printf("playback bitrate: MP-DASH %.2f vs default %.2f vs WiFi-only "
              "%.2f Mbps\n",
              mpd.steady_avg_bitrate_mbps, base.steady_avg_bitrate_mbps,
              wifi.steady_avg_bitrate_mbps);
  std::printf("paper shape: MP-DASH uses LTE only in WiFi troughs; saves "
              "~81%% cellular and ~47%% energy at equal bitrate; WiFi-only "
              "drops quality for half the chunks.\n");
  return 0;
}
