// Figure 1: WiFi/LTE subflow throughput while a DASH video streams over
// vanilla MPTCP (W=3.8 Mbps, L=3.0 Mbps, GPAC adaptation).
//
// Paper's point: even though WiFi nearly suffices, default MPTCP drives
// the metered LTE link close to its full capacity.

#include "analysis/analyzer.h"
#include "bench_common.h"

using namespace mpdash;
using namespace mpdash::bench;

int main() {
  print_header("Figure 1", "vanilla MPTCP drives LTE to capacity");

  const SessionResult res =
      run_scheme(constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)),
                 bench_video(), Scheme::kBaseline, "gpac", /*record=*/true);

  const ThroughputSeries series = throughput_series(res.trace);
  auto window = [](const std::vector<std::pair<double, double>>& pts) {
    std::vector<std::pair<double, double>> out;
    for (const auto& [t, v] : pts) {
      if (t >= 30.0 && t <= 90.0) out.emplace_back(t, v);
    }
    return out;
  };
  std::printf("%s\n",
              ascii_plot({{"MPTCP", window(series.total)},
                          {"WiFi", window(series.per_path[kWifiPathId])},
                          {"LTE", window(series.per_path[kCellularPathId])}},
                         72, 16, "time (s)", "throughput (Mbps)")
                  .c_str());

  OnlineStats wifi, lte;
  for (const auto& [t, v] : series.per_path[kWifiPathId]) wifi.add(v);
  for (const auto& [t, v] : series.per_path[kCellularPathId]) lte.add(v);
  std::printf("mean WiFi %.2f Mbps (cap 3.8), mean LTE %.2f Mbps (cap 3.0)\n",
              wifi.mean(), lte.mean());
  std::printf("bytes over LTE: %s MB of %s MB total (%.1f%%)\n",
              mb(res.cell_bytes).c_str(),
              mb(res.cell_bytes + res.wifi_bytes).c_str(),
              res.cell_fraction * 100);
  std::printf("paper shape: LTE runs near its full capacity — reproduced "
              "when LTE share is large (>%d%%).\n",
              30);
  return 0;
}
