// Figure 3: bitrate oscillation of the original BBA algorithm when the
// network capacity (R = 3.4 Mbps) falls strictly between two encoding
// rates (2.41 and 3.94 Mbps). BBA-C removes the oscillation.

#include "bench_common.h"

using namespace mpdash;
using namespace mpdash::bench;

int main() {
  print_header("Figure 3", "BBA bitrate oscillation at R between levels");

  const Video video = bench_video();
  // A single ~3.4 Mbps pipe (the paper quotes a stable MPTCP aggregate of
  // R = 3.4 between the 2.41 and 3.94 Mbps encoding rates).
  ScenarioConfig net =
      constant_scenario(DataRate::mbps(3.6), DataRate::mbps(3.0));
  net.wifi_only = true;

  for (const char* algo : {"bba", "bba-c"}) {
    const SessionResult res =
        run_scheme(net, video, Scheme::kWifiOnly, algo);
    std::vector<std::pair<double, double>> pts;
    int switches_34 = 0;
    int prev = -1;
    for (const auto& c : res.chunk_log) {
      pts.emplace_back(c.chunk,
                       video.level(c.level).avg_bitrate.as_mbps());
      if (prev >= 0 && c.level != prev && c.chunk > res.chunks / 5) {
        ++switches_34;
      }
      prev = c.level;
    }
    std::printf("--- %s ---\n", algo);
    std::printf("%s\n", ascii_plot({{algo, pts}}, 72, 10, "chunk index",
                                   "video bitrate (Mbps)")
                            .c_str());
    std::printf("steady-state quality switches: %d, avg bitrate %.2f Mbps\n\n",
                switches_34, res.avg_bitrate_mbps);
  }
  std::printf("paper shape: BBA keeps flipping between the two levels "
              "around R; BBA-C locks onto the sustainable one.\n");
  return 0;
}
