// Figure 4: the MP-DASH scheduler in isolation — a 5 MB download over
// W=3.8/L=3.0 with deadlines of 8, 9, 10 s, on both the default (minRTT)
// and round-robin MPTCP schedulers. Metrics: bytes over LTE and radio
// energy, versus unmodified MPTCP.
//
// Also reproduces §7.2.1's alpha sweep (smaller alpha = more conservative
// = more cellular data).

#include "bench_common.h"

using namespace mpdash;
using namespace mpdash::bench;

namespace {

DownloadResult run_dl(const std::string& sched, bool mpdash, double deadline_s,
                      double alpha = 1.0) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)));
  DownloadConfig cfg;
  cfg.size = megabytes(5);
  cfg.deadline = seconds(deadline_s);
  cfg.use_mpdash = mpdash;
  cfg.warmup = true;
  cfg.mptcp_scheduler = sched;
  cfg.alpha = alpha;
  return run_download_session(scenario, cfg);
}

}  // namespace

int main() {
  print_header("Figure 4",
               "scheduler-only: 5 MB download, deadlines 8/9/10 s");

  for (const char* sched : {"minrtt", "roundrobin"}) {
    std::printf("--- MPTCP scheduler: %s ---\n", sched);
    TextTable table({"config", "LTE MB", "xfer J", "energy J", "finish s", "missed"});
    const DownloadResult base = run_dl(sched, /*mpdash=*/false, 10.0);
    table.add_row({"Baseline", mb(base.cell_bytes),
                   TextTable::num(base.transfer_energy_j, 1),
                   TextTable::num(base.energy_j(), 1),
                   TextTable::num(to_seconds(base.finish_time), 2), "-"});
    for (double d : {8.0, 9.0, 10.0}) {
      const DownloadResult res = run_dl(sched, /*mpdash=*/true, d);
      table.add_row({"MP-DASH D=" + TextTable::num(d, 0) + "s",
                     mb(res.cell_bytes),
                     TextTable::num(res.transfer_energy_j, 1),
                     TextTable::num(res.energy_j(), 1),
                     TextTable::num(to_seconds(res.finish_time), 2),
                     res.deadline_missed ? "yes" : "no"});
      if (d == 10.0) {
        std::printf("  D=10s savings: cellular %.0f%%, transfer-energy "
                    "%.0f%% (full-tail accounting: %.0f%%)\n",
                    saving(static_cast<double>(base.cell_bytes),
                           static_cast<double>(res.cell_bytes)) * 100,
                    saving(base.transfer_energy_j, res.transfer_energy_j) * 100,
                    saving(base.energy_j(), res.energy_j()) * 100);
      }
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("--- alpha sweep (deadline 10 s, minrtt) ---\n");
  TextTable table({"alpha", "LTE MB", "xfer J", "missed"});
  for (double alpha : {0.8, 0.9, 1.0}) {
    const DownloadResult res = run_dl("minrtt", true, 10.0, alpha);
    table.add_row({TextTable::num(alpha, 1), mb(res.cell_bytes),
                   TextTable::num(res.transfer_energy_j, 1),
                   res.deadline_missed ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "paper shape: longer deadline => larger LTE-byte savings; smaller\n"
      "alpha => more LTE bytes. Known deviation (DESIGN.md): the paper also\n"
      "reports energy savings here, but under full RRC accounting a single\n"
      "short download cannot show them — Algorithm 1 uses LTE at the start\n"
      "(projected shortfall), so the 11.6 s LTE tail burns inside the\n"
      "window either way; energy savings appear in the streaming benches\n"
      "where tails amortize across chunks.\n");
  return 0;
}
