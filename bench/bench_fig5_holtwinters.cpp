// Figure 5: two field bandwidth traces (FastFood, Coffee) and the
// Holt-Winters predictor tracking them, plus prediction-quality stats
// against EWMA (the paper's argument for HW on non-stationary series).

#include "predict/ewma.h"
#include "predict/holt_winters.h"
#include "bench_common.h"

using namespace mpdash;
using namespace mpdash::bench;

int main() {
  print_header("Figure 5", "field traces and Holt-Winters prediction");

  for (const char* name : {"FastFood", "Coffee"}) {
    const SimulationProfile* profile = nullptr;
    for (const auto& p : table1_profiles()) {
      if (p.name == name) profile = &p;
    }
    const Duration horizon = seconds(35.0);
    const BandwidthTrace trace = profile->wifi_trace(horizon);

    HoltWinters hw;
    Ewma ewma(0.25);
    std::vector<std::pair<double, double>> actual, predicted;
    OnlineStats hw_err, ewma_err;
    const Duration slot = milliseconds(500);
    for (TimePoint t = kTimeZero; t < TimePoint(horizon); t += slot) {
      const double mbps =
          rate_of(trace.bytes_between(t, t + slot), slot).as_mbps();
      if (t > TimePoint(seconds(1.0))) {
        hw_err.add(std::abs(hw.predict().as_mbps() - mbps));
        ewma_err.add(std::abs(ewma.predict().as_mbps() - mbps));
        predicted.emplace_back(to_seconds(t), hw.predict().as_mbps());
      }
      actual.emplace_back(to_seconds(t), mbps);
      hw.add_sample(DataRate::mbps(mbps));
      ewma.add_sample(DataRate::mbps(mbps));
    }
    std::printf("--- %s (mean %.1f Mbps) ---\n", name,
                profile->wifi_mean.as_mbps());
    std::printf("%s\n",
                ascii_plot({{name, actual}, {std::string(name) + "-HW",
                             predicted}},
                           72, 12, "time (s)", "throughput (Mbps)")
                    .c_str());
    std::printf("mean abs prediction error: HW %.2f Mbps vs EWMA %.2f Mbps\n\n",
                hw_err.mean(), ewma_err.mean());
  }
  std::printf("paper shape: the HW forecast hugs the fluctuating trace; "
              "WiFi bandwidth fluctuates rather than collapsing.\n");
  return 0;
}
