// Figure 6: 60-second traffic patterns of (top) MPTCP with the cellular
// path throttled at 700 kbps, (middle) MP-DASH, and (bottom) default
// MPTCP. The throttled configuration "dribbles" LTE continuously; MP-DASH
// leaves LTE silent except for adaptive assists.

#include "analysis/analyzer.h"
#include "bench_common.h"

using namespace mpdash;
using namespace mpdash::bench;

namespace {

void plot_session(const char* title, const SessionResult& res) {
  const ThroughputSeries series = throughput_series(res.trace);
  auto window = [](const std::vector<std::pair<double, double>>& pts) {
    std::vector<std::pair<double, double>> out;
    for (const auto& [t, v] : pts) {
      if (t >= 30.0 && t <= 90.0) out.emplace_back(t, v);
    }
    return out;
  };
  std::printf("--- %s ---\n", title);
  std::printf("%s\n",
              ascii_plot({{"WiFi", window(series.per_path[kWifiPathId])},
                          {"LTE", window(series.per_path[kCellularPathId])}},
                         72, 10, "time (s)", "Mbps")
                  .c_str());
  // LTE duty cycle: fraction of 500 ms intervals with any LTE traffic.
  int busy = 0, total = 0;
  for (const auto& [t, v] : series.per_path[kCellularPathId]) {
    (void)t;
    busy += v > 0.01;
  }
  total = static_cast<int>(res.session_s / 0.5);
  std::printf("LTE duty cycle: %.0f%% of intervals, cell bytes %s MB, "
              "energy %.0f J\n\n",
              100.0 * busy / std::max(1, total), mb(res.cell_bytes).c_str(),
              res.energy_j());
}

}  // namespace

int main() {
  print_header("Figure 6", "traffic patterns: throttle / MP-DASH / default");
  const Video video = bench_video();

  {
    ScenarioConfig net =
        constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0));
    ShaperConfig shaper;
    shaper.rate = DataRate::kbps(700.0);
    net.lte_throttle = shaper;
    Scenario scenario(net);
    SessionConfig cfg;
    cfg.scheme = Scheme::kBaseline;
    cfg.adaptation = "gpac";
    cfg.record_trace = true;
    plot_session("throttle 700 kbps (LTE dribbles)",
                 run_streaming_session(scenario, video, cfg));
  }
  plot_session(
      "MP-DASH (LTE adaptive bursts only)",
      run_scheme(constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)),
                 video, Scheme::kMpDashRate, "gpac", /*record=*/true));
  plot_session(
      "default MPTCP (LTE at capacity)",
      run_scheme(constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)),
                 video, Scheme::kBaseline, "gpac", /*record=*/true));

  std::printf("paper shape: throttling keeps a thin continuous LTE trickle; "
              "MP-DASH's LTE duty cycle is the lowest of the three.\n");
  return 0;
}
