// Figure 7 (a/b/c): controlled experiments — FESTIVE, BBA, and BBA-C under
// three WiFi/LTE bandwidth combinations, each with vanilla MPTCP
// ("Baseline"), MP-DASH with duration-based deadlines, and MP-DASH with
// rate-based deadlines. Metrics: bytes over LTE and radio energy.

#include "bench_common.h"

using namespace mpdash;
using namespace mpdash::bench;

int main() {
  print_header("Figure 7", "FESTIVE / BBA / BBA-C under three conditions");

  const Video video = bench_video();
  struct Net {
    const char* name;
    double wifi, lte;
  };
  const Net nets[] = {{"W3.8/L3.0", 3.8, 3.0},
                      {"W2.8/L3.0", 2.8, 3.0},
                      {"W2.2/L1.2", 2.2, 1.2}};

  for (const char* algo : {"festive", "bba", "bba-c"}) {
    std::printf("--- Figure 7%c: %s ---\n",
                algo == std::string("festive") ? 'a'
                : algo == std::string("bba")   ? 'b'
                                               : 'c',
                algo);
    TextTable table({"network", "scheme", "Cell MB", "energy J", "avg Mbps",
                     "stalls", "cell sav", "energy sav"});
    for (const Net& net : nets) {
      SessionResult base;
      for (Scheme scheme : {Scheme::kBaseline, Scheme::kMpDashDuration,
                            Scheme::kMpDashRate}) {
        const SessionResult res = run_scheme(
            constant_scenario(DataRate::mbps(net.wifi),
                              DataRate::mbps(net.lte)),
            video, scheme, algo);
        if (scheme == Scheme::kBaseline) base = res;
        table.add_row(
            {net.name,
             scheme == Scheme::kBaseline       ? "Baseline"
             : scheme == Scheme::kMpDashDuration ? "Duration"
                                                 : "Rate",
             mb(res.cell_bytes), TextTable::num(res.energy_j(), 0),
             TextTable::num(res.steady_avg_bitrate_mbps),
             std::to_string(res.stalls),
             scheme == Scheme::kBaseline
                 ? "-"
                 : TextTable::pct(
                       saving(static_cast<double>(base.cell_bytes),
                              static_cast<double>(res.cell_bytes)),
                       0),
             scheme == Scheme::kBaseline
                 ? "-"
                 : TextTable::pct(saving(base.energy_j(), res.energy_j()),
                                  0)});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "paper shape: big savings for FESTIVE (rate >= duration); BBA saves\n"
      "less (more aggressive) and nothing at W2.2/L1.2; BBA-C unlocks\n"
      "savings there by locking the sustainable level.\n");
  return 0;
}
