// Figure 7 (a/b/c): controlled experiments — FESTIVE, BBA, and BBA-C under
// three WiFi/LTE bandwidth combinations, each with vanilla MPTCP
// ("Baseline"), MP-DASH with duration-based deadlines, and MP-DASH with
// rate-based deadlines. Metrics: bytes over LTE and radio energy.

#include "bench_common.h"

using namespace mpdash;
using namespace mpdash::bench;

int main(int argc, char** argv) {
  const int jobs = parse_jobs(argc, argv);
  print_header("Figure 7", "FESTIVE / BBA / BBA-C under three conditions");

  const Video video = bench_video();
  struct Net {
    const char* name;
    double wifi, lte;
  };
  const Net nets[] = {{"W3.8/L3.0", 3.8, 3.0},
                      {"W2.8/L3.0", 2.8, 3.0},
                      {"W2.2/L1.2", 2.2, 1.2}};
  const char* const algos[] = {"festive", "bba", "bba-c"};
  const Scheme schemes[] = {Scheme::kBaseline, Scheme::kMpDashDuration,
                            Scheme::kMpDashRate};

  // 3 algorithms x 3 networks x 3 schemes, one campaign run per cell.
  struct Cell {
    SessionResult result;
    std::string bench_json;
  };
  Campaign<Cell> campaign("figure-7");
  for (const char* algo : algos) {
    for (const Net& net : nets) {
      for (Scheme scheme : schemes) {
        const std::string algo_name = algo;
        campaign.add(
            algo_name + "/" + net.name + "/" + to_string(scheme),
            [&video, net, scheme, algo_name](RunContext&) {
              Cell cell;
              cell.result = run_scheme(
                  constant_scenario(DataRate::mbps(net.wifi),
                                    DataRate::mbps(net.lte)),
                  video, scheme, algo_name, false, &cell.bench_json);
              return cell;
            });
      }
    }
  }
  CampaignOptions opts;
  opts.jobs = jobs;
  const auto res = campaign.run(opts);
  res.require_all_ok();
  std::string json_lines;
  for (const Cell& cell : res.results) json_lines += cell.bench_json;
  append_bench_lines(json_lines);
  append_campaign_summary(res.stats);

  std::size_t next = 0;
  for (const char* algo : algos) {
    std::printf("--- Figure 7%c: %s ---\n",
                algo == std::string("festive") ? 'a'
                : algo == std::string("bba")   ? 'b'
                                               : 'c',
                algo);
    TextTable table({"network", "scheme", "Cell MB", "energy J", "avg Mbps",
                     "stalls", "cell sav", "energy sav"});
    for (const Net& net : nets) {
      SessionResult base;
      for (Scheme scheme : schemes) {
        const SessionResult& cell = res.results[next++].result;
        if (scheme == Scheme::kBaseline) base = cell;
        table.add_row(
            {net.name,
             scheme == Scheme::kBaseline       ? "Baseline"
             : scheme == Scheme::kMpDashDuration ? "Duration"
                                                 : "Rate",
             mb(cell.cell_bytes), TextTable::num(cell.energy_j(), 0),
             TextTable::num(cell.steady_avg_bitrate_mbps),
             std::to_string(cell.stalls),
             scheme == Scheme::kBaseline
                 ? "-"
                 : TextTable::pct(
                       saving(static_cast<double>(base.cell_bytes),
                              static_cast<double>(cell.cell_bytes)),
                       0),
             scheme == Scheme::kBaseline
                 ? "-"
                 : TextTable::pct(saving(base.energy_j(), cell.energy_j()),
                                  0)});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "paper shape: big savings for FESTIVE (rate >= duration); BBA saves\n"
      "less (more aggressive) and nothing at W2.2/L1.2; BBA-C unlocks\n"
      "savings there by locking the sustainable level.\n");
  return 0;
}
