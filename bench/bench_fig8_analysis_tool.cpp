// Figure 8: the cross-layer analysis tool's visualization. Three FESTIVE
// sessions — default MPTCP, MP-DASH rate-based, MP-DASH duration-based —
// rendered as chunk timelines (glyph = bitrate level, '#' = the fraction
// of the chunk delivered over cellular).

#include "analysis/analyzer.h"
#include "analysis/render.h"
#include "bench_common.h"

using namespace mpdash;
using namespace mpdash::bench;

int main() {
  print_header("Figure 8", "analysis-tool chunk timelines (FESTIVE)");

  const Video video = bench_video();
  const ScenarioConfig net =
      constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0));

  struct Config {
    const char* title;
    Scheme scheme;
  };
  for (const Config& c :
       {Config{"default MPTCP", Scheme::kBaseline},
        Config{"MP-DASH, rate-based deadlines", Scheme::kMpDashRate},
        Config{"MP-DASH, duration-based deadlines",
               Scheme::kMpDashDuration}}) {
    const SessionResult res =
        run_scheme(net, video, c.scheme, "festive", /*record=*/true);
    AnalyzerConfig acfg;
    acfg.device = galaxy_note();
    const AnalysisReport report = analyze(res.trace, res.events, acfg);

    double cell_frac_sum = 0.0;
    for (const auto& ch : report.chunks) {
      cell_frac_sum += ch.cellular_fraction(kCellularPathId);
    }
    std::printf("--- %s ---\n", c.title);
    std::printf("%s", render_chunk_timeline(report).c_str());
    std::printf("%s", render_path_summary(report).c_str());
    std::printf("mean cellular share per chunk: %.1f%%, analysis energy: "
                "%.0f J\n\n",
                100.0 * cell_frac_sum /
                    std::max<std::size_t>(1, report.chunks.size()),
                report.energy.total_j());
  }
  std::printf("paper shape: default MPTCP shows heavy '#' on every chunk "
              "and idle gaps; MP-DASH eliminates most gaps and cellular;\n"
              "duration-based shows more cellular than rate-based on "
              "bigger-than-average chunks.\n");
  return 0;
}
