// Figure 9: CDF of cellular data savings brought by MP-DASH across all 33
// field-study locations, for FESTIVE-Rate, FESTIVE-Duration, BBA-Rate and
// BBA-Duration; plus the radio-energy savings percentiles the paper
// reports in prose (25th/50th/75th).

#include "field_study.h"

using namespace mpdash;
using namespace mpdash::bench;

int main(int argc, char** argv) {
  const int jobs = parse_jobs(argc, argv);
  print_header("Figure 9", "cellular savings CDF across 33 locations");

  const auto outcomes = run_field_study(field_study_locations(), jobs);

  std::vector<std::pair<std::string,
                        std::vector<std::pair<double, double>>>> series;
  std::vector<double> all_savings, all_energy;
  for (const char* algo : {"festive", "bba"}) {
    for (const char* scheme : {"rate", "duration"}) {
      std::vector<double> savings;
      for (const auto& o : outcomes) {
        savings.push_back(o.cell_saving(algo, scheme));
        all_savings.push_back(savings.back());
        all_energy.push_back(o.energy_saving(algo, scheme));
      }
      std::vector<std::pair<double, double>> cdf_pts;
      for (const auto& [v, f] : empirical_cdf(savings)) {
        cdf_pts.emplace_back(v * 100.0, f);
      }
      series.emplace_back(std::string(algo) + "-" + scheme,
                          std::move(cdf_pts));
    }
  }

  std::printf("%s\n", ascii_plot(series, 72, 16,
                                 "cellular data saving (%)", "CDF")
                          .c_str());
  print_cdf("cellular savings across all experiments:", all_savings);
  print_cdf("radio-energy savings across all experiments:", all_energy);
  std::printf(
      "paper shape: cellular savings p25/p50/p75 ~ 48/59/82%%; energy\n"
      "savings p25/p50/p75 ~ 7.7/17/53%%; FESTIVE saves more than BBA.\n");

  // FESTIVE vs BBA medians.
  for (const char* algo : {"festive", "bba"}) {
    std::vector<double> s;
    for (const auto& o : outcomes) s.push_back(o.cell_saving(algo, "rate"));
    std::printf("median cellular saving, %s-rate: %.0f%%\n", algo,
                percentile(s, 50) * 100);
  }
  return 0;
}
