// Fleet scaling bench: one shared WiFi+LTE bottleneck pair, N tenant
// sessions on a single event loop, N swept over {1, 4, 16, 64}. Reports
// wall time and throughput (sessions/sec) per point and writes the
// machine-readable roll-up to BENCH_fleet.json (one JSON line per point,
// always — this file IS the bench artifact, so it does not hide behind
// MPDASH_BENCH_JSON the way the figure benches do).
//
//   ./bench_fleet           full sweep, table + BENCH_fleet.json
//   ./bench_fleet --check   CI smoke: small sweep, asserts every point is
//                           outcome=ok and that a repeated point is
//                           fingerprint-identical; exit 1 otherwise

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exp/fleet.h"
#include "util/table.h"

using namespace mpdash;
using namespace mpdash::bench;

namespace {

struct Point {
  int sessions = 0;
  double wall_s = 0.0;
  FleetResult result;

  double sessions_per_sec() const {
    return wall_s > 0.0 ? sessions / wall_s : 0.0;
  }
};

Point run_point(int sessions, int chunk_count) {
  FleetConfig cfg;
  cfg.sessions = sessions;
  cfg.seed = 7;
  cfg.chunk_count = chunk_count;
  const auto t0 = std::chrono::steady_clock::now();
  Point p;
  p.sessions = sessions;
  p.result = run_fleet(cfg);
  p.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  return p;
}

std::string point_json(const Point& p, int chunk_count) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"bench\":\"fleet\",\"sessions\":%d,\"chunks\":%d,"
      "\"outcome\":\"%s\",\"completed\":%d,\"wall_s\":%.4f,"
      "\"sessions_per_sec\":%.2f,\"sim_s\":%.3f,\"qoe_mean\":%.4f,"
      "\"qoe_p10\":%.4f,\"jain\":%.4f,\"cell_fraction\":%.4f}\n",
      p.sessions, chunk_count, to_string(p.result.outcome),
      p.result.completed, p.wall_s, p.sessions_per_sec(), p.result.fleet_s,
      p.result.qoe_mean, p.result.qoe_p10, p.result.jain_fairness,
      p.result.cell_fraction);
  return buf;
}

int run_check() {
  // Smoke: the two smallest points must be clean, and re-running one must
  // be bitwise deterministic (the fleet fingerprint covers every
  // aggregate and per-session outcome).
  const int chunks = 6;
  for (const int n : {1, 4}) {
    const Point p = run_point(n, chunks);
    if (!p.result.ok() || p.result.completed != n) {
      std::fprintf(stderr, "bench_fleet --check: N=%d not clean (%s, %d/%d "
                   "done)\n",
                   n, to_string(p.result.outcome), p.result.completed, n);
      for (const std::string& v : p.result.violations) {
        std::fprintf(stderr, "  %s\n", v.c_str());
      }
      return 1;
    }
  }
  const std::string a = run_point(4, chunks).result.fingerprint();
  const std::string b = run_point(4, chunks).result.fingerprint();
  if (a != b) {
    std::fprintf(stderr,
                 "bench_fleet --check: repeated run diverged\n  %s\n  %s\n",
                 a.c_str(), b.c_str());
    return 1;
  }
  std::printf("bench_fleet --check: ok (%s)\n", a.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--check]\n", argv[0]);
      return 2;
    }
  }
  if (check) return run_check();

  const int chunks = quick_mode() ? 8 : 20;
  print_header("fleet", "fleet scaling: N tenants on one shared AP");
  std::string json;
  TextTable table({"sessions", "outcome", "done", "wall s", "sessions/s",
                   "sim s", "qoe mean", "qoe p10", "jain"});
  bool all_ok = true;
  for (const int n : {1, 4, 16, 64}) {
    const Point p = run_point(n, chunks);
    all_ok = all_ok && p.result.ok();
    table.add_row({std::to_string(n), to_string(p.result.outcome),
                   std::to_string(p.result.completed) + "/" +
                       std::to_string(n),
                   TextTable::num(p.wall_s, 3),
                   TextTable::num(p.sessions_per_sec(), 1),
                   TextTable::num(p.result.fleet_s, 1),
                   TextTable::num(p.result.qoe_mean, 3),
                   TextTable::num(p.result.qoe_p10, 3),
                   TextTable::num(p.result.jain_fairness, 4)});
    json += point_json(p, chunks);
  }
  std::printf("%s", table.render().c_str());

  std::FILE* f = std::fopen("BENCH_fleet.json", "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("scaling roll-up written to BENCH_fleet.json\n");
  } else {
    std::fprintf(stderr, "cannot write BENCH_fleet.json\n");
    return 1;
  }
  return all_ok ? 0 : 1;
}
