// Runtime overhead (paper §8): "MP-DASH incurs negligible runtime
// overhead, as both the scheduling algorithm and the Holt-Winters
// prediction have low complexity." These google-benchmark microbenches
// put numbers on every hot-path component: one Algorithm 1 decision, one
// HW sample, HTTP framing, the offline DP, and the event loop itself.

#include <benchmark/benchmark.h>

#include "core/deadline_scheduler.h"
#include "core/offline_optimal.h"
#include "http/parser.h"
#include "predict/holt_winters.h"
#include "sim/event_loop.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace mpdash {
namespace {

class BenchControl final : public MultipathControl {
 public:
  std::vector<ControlledPath> paths() const override {
    return {{0, 0.0}, {1, 1.0}};
  }
  void set_path_enabled(int id, bool e) override {
    enabled_[static_cast<std::size_t>(id)] = e;
  }
  bool path_enabled(int id) const override {
    return enabled_[static_cast<std::size_t>(id)];
  }
  Bytes transferred_bytes() const override { return transferred; }
  DataRate path_throughput(int) const override { return DataRate::mbps(4.0); }
  Bytes transferred = 0;

 private:
  bool enabled_[2] = {true, true};
};

void BM_DeadlineSchedulerDecision(benchmark::State& state) {
  BenchControl control;
  DeadlineScheduler sched(control);
  sched.begin(kTimeZero, megabytes(2), seconds(4.0));
  std::int64_t t = 0;
  for (auto _ : state) {
    control.transferred += 1400;
    sched.update(TimePoint(nanoseconds(t += 50'000)));
    if (!sched.active()) {
      control.transferred = 0;
      sched.begin(TimePoint(nanoseconds(t)), megabytes(2), seconds(4.0));
    }
  }
}
BENCHMARK(BM_DeadlineSchedulerDecision);

void BM_HoltWintersSample(benchmark::State& state) {
  HoltWinters hw;
  Rng rng(1);
  for (auto _ : state) {
    hw.add_sample(DataRate::mbps(rng.uniform(1.0, 8.0)));
    benchmark::DoNotOptimize(hw.predict());
  }
}
BENCHMARK(BM_HoltWintersSample);

void BM_HttpParseResponseHead(benchmark::State& state) {
  HttpResponse resp;
  resp.headers.push_back({"Content-Type", "video/iso.segment"});
  resp.body_len = 2'000'000;
  const WireData wire = resp.to_wire();
  for (auto _ : state) {
    std::size_t done = 0;
    HttpStreamParser parser(
        HttpStreamParser::Mode::kResponses,
        {.on_request = nullptr,
         .on_response_head = nullptr,
         .on_body = nullptr,
         .on_message_complete = [&done] { ++done; }});
    parser.consume(wire);
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_HttpParseResponseHead);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventLoop loop;
    int fired = 0;
    for (int i = 0; i < 100; ++i) {
      loop.schedule_in(milliseconds(i), [&fired] { ++fired; });
    }
    loop.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_OfflineOptimalDp(benchmark::State& state) {
  const auto n_slots = static_cast<std::size_t>(state.range(0));
  SlottedInstance inst;
  inst.slot = milliseconds(50);
  Rng rng(2);
  for (int i = 0; i < 2; ++i) {
    std::vector<Bytes> row(n_slots);
    for (auto& b : row) b = rng.uniform_int(10, 40);
    inst.bytes_per_slot.push_back(std::move(row));
  }
  inst.unit_cost = {0.0, 1.0};
  inst.target = static_cast<Bytes>(25 * n_slots);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_dp(inst));
  }
}
BENCHMARK(BM_OfflineOptimalDp)->Arg(20)->Arg(100);

void BM_FieldTraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(3);
    FieldParams p;
    p.mean = DataRate::mbps(5.0);
    p.horizon = seconds(600.0);
    benchmark::DoNotOptimize(gen_field(p, rng));
  }
}
BENCHMARK(BM_FieldTraceGeneration);

}  // namespace
}  // namespace mpdash

BENCHMARK_MAIN();
