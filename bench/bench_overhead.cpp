// Runtime overhead (paper §8): "MP-DASH incurs negligible runtime
// overhead, as both the scheduling algorithm and the Holt-Winters
// prediction have low complexity." These google-benchmark microbenches
// put numbers on every hot-path component: one Algorithm 1 decision, one
// HW sample, HTTP framing, the offline DP, and the event loop itself —
// plus end-to-end sessions with telemetry detached vs. idle-attached.
//
// `bench_overhead --check` skips google-benchmark and instead times quick
// sessions four ways — telemetry detached; idle-attached (every counter
// live, no sinks); always-on (idle plus the 1 s metrics snapshotter,
// with span allocation short-circuiting on `tracing()`); and fully
// traced (span sink attached, every record materialized). The gate is
// the marginal cost of this PR's observability machinery: always-on
// must stay within 2% of the idle-attached budget when
// MPDASH_OVERHEAD_STRICT=1. The detached→idle instrumentation cost and
// the opt-in full-tracing cost are reported and recorded in
// BENCH_overhead.json but not gated.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "core/deadline_scheduler.h"
#include "core/offline_optimal.h"
#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "http/parser.h"
#include "predict/holt_winters.h"
#include "sim/event_loop.h"
#include "telemetry/telemetry.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace mpdash {
namespace {

class BenchControl final : public MultipathControl {
 public:
  std::vector<ControlledPath> paths() const override {
    return {{0, 0.0}, {1, 1.0}};
  }
  void set_path_enabled(int id, bool e) override {
    enabled_[static_cast<std::size_t>(id)] = e;
  }
  bool path_enabled(int id) const override {
    return enabled_[static_cast<std::size_t>(id)];
  }
  Bytes transferred_bytes() const override { return transferred; }
  DataRate path_throughput(int) const override { return DataRate::mbps(4.0); }
  Bytes transferred = 0;

 private:
  bool enabled_[2] = {true, true};
};

void BM_DeadlineSchedulerDecision(benchmark::State& state) {
  BenchControl control;
  DeadlineScheduler sched(control);
  sched.begin(kTimeZero, megabytes(2), seconds(4.0));
  std::int64_t t = 0;
  for (auto _ : state) {
    control.transferred += 1400;
    sched.update(TimePoint(nanoseconds(t += 50'000)));
    if (!sched.active()) {
      control.transferred = 0;
      sched.begin(TimePoint(nanoseconds(t)), megabytes(2), seconds(4.0));
    }
  }
}
BENCHMARK(BM_DeadlineSchedulerDecision);

void BM_HoltWintersSample(benchmark::State& state) {
  HoltWinters hw;
  Rng rng(1);
  for (auto _ : state) {
    hw.add_sample(DataRate::mbps(rng.uniform(1.0, 8.0)));
    benchmark::DoNotOptimize(hw.predict());
  }
}
BENCHMARK(BM_HoltWintersSample);

void BM_HttpParseResponseHead(benchmark::State& state) {
  HttpResponse resp;
  resp.headers.push_back({"Content-Type", "video/iso.segment"});
  resp.body_len = 2'000'000;
  const WireData wire = resp.to_wire();
  for (auto _ : state) {
    std::size_t done = 0;
    HttpStreamParser parser(
        HttpStreamParser::Mode::kResponses,
        {.on_request = nullptr,
         .on_response_head = nullptr,
         .on_body = nullptr,
         .on_message_complete = [&done] { ++done; },
         .on_error = nullptr});
    parser.consume(wire);
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_HttpParseResponseHead);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventLoop loop;
    int fired = 0;
    for (int i = 0; i < 100; ++i) {
      loop.schedule_in(milliseconds(i), [&fired] { ++fired; });
    }
    loop.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_OfflineOptimalDp(benchmark::State& state) {
  const auto n_slots = static_cast<std::size_t>(state.range(0));
  SlottedInstance inst;
  inst.slot = milliseconds(50);
  Rng rng(2);
  for (int i = 0; i < 2; ++i) {
    std::vector<Bytes> row(n_slots);
    for (auto& b : row) b = rng.uniform_int(10, 40);
    inst.bytes_per_slot.push_back(std::move(row));
  }
  inst.unit_cost = {0.0, 1.0};
  inst.target = static_cast<Bytes>(25 * n_slots);
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimal_dp(inst));
  }
}
BENCHMARK(BM_OfflineOptimalDp)->Arg(20)->Arg(100);

void BM_FieldTraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(3);
    FieldParams p;
    p.mean = DataRate::mbps(5.0);
    p.horizon = seconds(600.0);
    benchmark::DoNotOptimize(gen_field(p, rng));
  }
}
BENCHMARK(BM_FieldTraceGeneration);

// --- end-to-end telemetry overhead -----------------------------------

Video overhead_video() {
  return Video("Overhead", seconds(4.0), 10,
               {DataRate::mbps(0.58), DataRate::mbps(1.01),
                DataRate::mbps(1.47), DataRate::mbps(2.41),
                DataRate::mbps(3.94)},
               0.12, 7);
}

SessionResult overhead_session(Telemetry* telemetry,
                               MetricsTimeline* timeline = nullptr,
                               int inflight = 1) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(6.0), DataRate::mbps(4.0)));
  SessionConfig cfg;
  cfg.scheme = Scheme::kMpDashRate;
  cfg.player.max_inflight_chunks = inflight;
  SessionEnv env;
  env.telemetry = telemetry;
  env.metrics = timeline;
  SessionResult res =
      run_streaming_session(scenario, overhead_video(), cfg, env);
  if (telemetry) scenario.set_telemetry(nullptr);
  return res;
}

// The everything-on configuration this PR adds: a trace sink attached
// (so every span and record is materialized) plus the registry
// snapshotter on its default 1 s cadence.
SessionResult overhead_session_full(MetricsTimeline* timeline) {
  Telemetry telemetry;
  RingBufferSink ring(8192);
  telemetry.add_sink(&ring);
  return overhead_session(&telemetry, timeline);
}

void BM_SessionTelemetryDetached(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(overhead_session(nullptr));
  }
}
BENCHMARK(BM_SessionTelemetryDetached)->Unit(benchmark::kMillisecond);

void BM_SessionTelemetryIdle(benchmark::State& state) {
  // Telemetry attached (all metric updates live) but no trace sink: the
  // configuration a deployment would leave on permanently.
  for (auto _ : state) {
    Telemetry telemetry;
    benchmark::DoNotOptimize(overhead_session(&telemetry));
  }
}
BENCHMARK(BM_SessionTelemetryIdle)->Unit(benchmark::kMillisecond);

// Interleaved A/B/C/D timing; each sample batches several sessions so a
// single descheduling blip cannot swing it, and taking each config's
// minimum across rounds discards the rest of the CI noise (timing noise
// is additive-positive, so the minimum is the tightest estimate of the
// true cost).
int run_overhead_check() {
  constexpr int kRounds = 9;
  constexpr int kMaxRounds = 27;
  constexpr int kBatch = 5;
  constexpr double kBudget = 0.02;
  std::vector<double> off_ms, idle_ms, on_ms, full_ms, pidle_ms, pon_ms;
  overhead_session(nullptr);  // warm caches/allocator
  const auto round = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    for (int j = 0; j < kBatch; ++j) overhead_session(nullptr);
    const auto t1 = std::chrono::steady_clock::now();
    for (int j = 0; j < kBatch; ++j) {
      Telemetry telemetry;
      overhead_session(&telemetry);
    }
    const auto t2 = std::chrono::steady_clock::now();
    for (int j = 0; j < kBatch; ++j) {
      Telemetry telemetry;
      MetricsTimeline timeline;
      overhead_session(&telemetry, &timeline);
    }
    const auto t3 = std::chrono::steady_clock::now();
    for (int j = 0; j < kBatch; ++j) {
      MetricsTimeline timeline;
      overhead_session_full(&timeline);
    }
    const auto t4 = std::chrono::steady_clock::now();
    // Pipelined lanes (3-deep prefetch): the span stack holds several
    // open spans and the adapter re-arms over the whole outstanding set,
    // so the observability budget is re-checked under that load too.
    for (int j = 0; j < kBatch; ++j) {
      Telemetry telemetry;
      overhead_session(&telemetry, nullptr, 3);
    }
    const auto t5 = std::chrono::steady_clock::now();
    for (int j = 0; j < kBatch; ++j) {
      Telemetry telemetry;
      MetricsTimeline timeline;
      overhead_session(&telemetry, &timeline, 3);
    }
    const auto t6 = std::chrono::steady_clock::now();
    off_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count() / kBatch);
    idle_ms.push_back(
        std::chrono::duration<double, std::milli>(t2 - t1).count() / kBatch);
    on_ms.push_back(
        std::chrono::duration<double, std::milli>(t3 - t2).count() / kBatch);
    full_ms.push_back(
        std::chrono::duration<double, std::milli>(t4 - t3).count() / kBatch);
    pidle_ms.push_back(
        std::chrono::duration<double, std::milli>(t5 - t4).count() / kBatch);
    pon_ms.push_back(
        std::chrono::duration<double, std::milli>(t6 - t5).count() / kBatch);
  };
  for (int i = 0; i < kRounds; ++i) round();
  double off, idle, on, full, pidle, pon;
  double idle_cost, span_snap, full_cost, pipe_span_snap;
  const auto estimate = [&] {
    off = *std::min_element(off_ms.begin(), off_ms.end());
    idle = *std::min_element(idle_ms.begin(), idle_ms.end());
    on = *std::min_element(on_ms.begin(), on_ms.end());
    full = *std::min_element(full_ms.begin(), full_ms.end());
    pidle = *std::min_element(pidle_ms.begin(), pidle_ms.end());
    pon = *std::min_element(pon_ms.begin(), pon_ms.end());
    idle_cost = off > 0.0 ? (idle - off) / off : 0.0;
    span_snap = idle > 0.0 ? (on - idle) / idle : 0.0;
    full_cost = idle > 0.0 ? (full - idle) / idle : 0.0;
    pipe_span_snap = pidle > 0.0 ? (pon - pidle) / pidle : 0.0;
  };
  estimate();
  // The minimum estimator only tightens with more samples, so a gate
  // failure after the base rounds may just mean one config's minimum has
  // not converged yet: keep sampling until it passes or the cap is hit.
  while ((span_snap > kBudget || pipe_span_snap > kBudget) &&
         static_cast<int>(off_ms.size()) < kMaxRounds) {
    round();
    estimate();
  }
  std::printf("telemetry overhead check: detached %.2f ms, idle-attached "
              "%.2f ms (%+.2f%%), +snapshotter/spans %.2f ms (%+.2f%% vs "
              "idle), full tracing %.2f ms (%+.2f%% vs idle); pipelined "
              "inflight=3 idle %.2f ms, always-on %.2f ms (%+.2f%%)\n",
              off, idle, idle_cost * 100.0, on, span_snap * 100.0, full,
              full_cost * 100.0, pidle, pon, pipe_span_snap * 100.0);
  bench::current_bench_id() = "overhead";
  char line[448];
  std::snprintf(line, sizeof line,
                "{\"bench\":\"overhead\",\"check\":{\"detached_ms\":%.3f,"
                "\"idle_ms\":%.3f,\"always_on_ms\":%.3f,\"traced_ms\":%.3f,"
                "\"idle_overhead\":%.4f,\"span_snapshot_overhead\":%.4f,"
                "\"traced_overhead\":%.4f,\"pipelined_idle_ms\":%.3f,"
                "\"pipelined_always_on_ms\":%.3f,"
                "\"pipelined_span_snapshot_overhead\":%.4f}}\n",
                off, idle, on, full, idle_cost, span_snap, full_cost, pidle,
                pon, pipe_span_snap);
  bench::append_bench_lines(line);
  const char* strict = std::getenv("MPDASH_OVERHEAD_STRICT");
  if (strict && strict[0] == '1') {
    if (span_snap > 0.02) {
      std::fprintf(stderr,
                   "FAIL: span+snapshotter overhead %.2f%% exceeds the 2%% "
                   "idle budget\n",
                   span_snap * 100.0);
      return 1;
    }
    if (pipe_span_snap > 0.02) {
      std::fprintf(stderr,
                   "FAIL: pipelined span+snapshotter overhead %.2f%% "
                   "exceeds the 2%% idle budget\n",
                   pipe_span_snap * 100.0);
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace mpdash

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      return mpdash::run_overhead_check();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
