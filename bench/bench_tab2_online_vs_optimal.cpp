// Tables 1 + 2: trace-driven simulation of Algorithm 1 (with Holt-Winters
// prediction) against the perfect-knowledge optimum, across the paper's
// five bandwidth profiles and per-profile deadlines.

#include "core/offline_optimal.h"
#include "core/online_simulator.h"
#include "bench_common.h"

using namespace mpdash;
using namespace mpdash::bench;

int main(int argc, char** argv) {
  const int jobs = parse_jobs(argc, argv);
  print_header("Table 1", "bandwidth profiles for the simulation");
  TextTable t1({"trace", "WiFi Mbps", "Cell Mbps", "file", "deadlines (s)"});
  for (const auto& p : table1_profiles()) {
    std::string ds;
    for (const auto& d : p.deadlines) {
      if (!ds.empty()) ds += ", ";
      ds += TextTable::num(to_seconds(d), 0);
    }
    t1.add_row({p.name, TextTable::num(p.wifi_mean.as_mbps(), 1),
                TextTable::num(p.cell_mean.as_mbps(), 1),
                mb(p.file_size) + " MB", ds});
  }
  std::printf("%s\n", t1.render().c_str());

  print_header("Table 2", "online Algorithm 1 vs offline optimal");
  TextTable t2({"trace", "D/L s", "Cell% Optimal", "Cell% Online", "Diff",
                "Miss?"});

  // One campaign run per (profile, deadline) row; each worker builds its
  // own traces and solves both the oracle and the online algorithm.
  struct Row {
    std::string profile;
    Duration deadline = kDurationZero;
    TwoPathFluidResult opt;
    OnlineSimResult online;
  };
  Campaign<Row> campaign("table-2");
  for (const auto& p : table1_profiles()) {
    for (const Duration deadline : p.deadlines) {
      campaign.add(
          p.name + "/" + TextTable::num(to_seconds(deadline), 0) + "s",
          [&p, deadline](RunContext&) {
            const Duration horizon = deadline + seconds(120.0);
            const BandwidthTrace wifi = p.wifi_trace(horizon);
            const BandwidthTrace cell = p.cell_trace(horizon);
            Row row;
            row.profile = p.name;
            row.deadline = deadline;
            row.opt =
                optimal_two_path_fluid(wifi, cell, p.file_size, deadline);
            row.online =
                simulate_online_two_path(wifi, cell, p.file_size, deadline);
            return row;
          });
    }
  }
  CampaignOptions opts;
  opts.jobs = jobs;
  const auto res = campaign.run(opts);
  res.require_all_ok();
  append_campaign_summary(res.stats);

  double max_diff = 0.0;
  int misses = 0, rows = 0;
  for (const Row& row : res.results) {
    const double diff = row.online.costly_fraction - row.opt.costly_fraction;
    max_diff = std::max(max_diff, diff);
    misses += row.online.deadline_missed;
    ++rows;
    t2.add_row({row.profile, TextTable::num(to_seconds(row.deadline), 0),
                TextTable::pct(row.opt.costly_fraction),
                TextTable::pct(row.online.costly_fraction),
                TextTable::pct(diff),
                row.online.deadline_missed
                    ? TextTable::num(to_milliseconds(row.online.miss_by), 0) +
                          "ms"
                    : "No"});
  }
  std::printf("%s\n", t2.render().c_str());
  std::printf("rows: %d, deadline misses: %d, max online-vs-optimal diff: "
              "%.1f%% of transfer\n",
              rows, misses, max_diff * 100);
  std::printf("paper shape: online never beats optimal, rarely misses, and "
              "longer deadlines shrink the cellular share; the per-row gap "
              "grows on knife-edge instances (file ~= preferred-path "
              "capacity).\n");
  return 0;
}
