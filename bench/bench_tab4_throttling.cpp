// Table 4: the throughput-throttling strawman. Comparing, with the GPAC
// player at W=3.8/L=3.0: default MPTCP, MPTCP with the cellular downlink
// throttled to 700 kbps and 1000 kbps (Dummynet-style token bucket), and
// MP-DASH (rate-based deadlines).
//
// Paper's point: throttling cuts cellular *bytes* but dribbles them over
// the whole session, so the LTE radio never sleeps and energy stays high;
// MP-DASH wins on both axes. Throttling also starves the player: >22 % of
// chunks fall below the top level at 200/700 kbps caps.

#include "bench_common.h"

using namespace mpdash;
using namespace mpdash::bench;

namespace {

SessionResult run_throttled(const Video& video, double cap_kbps) {
  ScenarioConfig net =
      constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0));
  if (cap_kbps > 0) {
    ShaperConfig shaper;
    shaper.rate = DataRate::kbps(cap_kbps);
    shaper.burst = 16 * 1000;
    net.lte_throttle = shaper;
  }
  Scenario scenario(net);
  SessionConfig cfg;
  cfg.scheme = Scheme::kBaseline;
  cfg.adaptation = "gpac";
  return run_streaming_session(scenario, video, cfg);
}

}  // namespace

int main() {
  print_header("Table 4", "cellular throttling vs MP-DASH (GPAC)");

  const Video video = bench_video();
  TextTable table({"config", "Cell MB", "% cell", "energy J", "avg Mbps",
                   "top-level chunks"});

  auto add = [&](const std::string& name, const SessionResult& res) {
    int top = 0;
    for (const auto& c : res.chunk_log) top += c.level == 4;
    table.add_row(
        {name, mb(res.cell_bytes), TextTable::pct(res.cell_fraction, 1),
         TextTable::num(res.energy_j(), 1),
         TextTable::num(res.avg_bitrate_mbps),
         TextTable::pct(static_cast<double>(top) /
                        std::max(1, res.chunks), 0)});
  };

  const SessionResult deflt = run_throttled(video, 0);
  add("Default MPTCP", deflt);
  add("Throttle 700K", run_throttled(video, 700));
  add("Throttle 1000K", run_throttled(video, 1000));
  const SessionResult mpd =
      run_scheme(constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)),
                 video, Scheme::kMpDashRate, "gpac");
  add("MP-DASH", mpd);

  std::printf("%s\n", table.render().c_str());
  std::printf("MP-DASH vs default: cellular -%.0f%%, energy -%.0f%%\n",
              saving(static_cast<double>(deflt.cell_bytes),
                     static_cast<double>(mpd.cell_bytes)) * 100,
              saving(deflt.energy_j(), mpd.energy_j()) * 100);
  std::printf("paper shape: throttling reduces bytes but pays in energy "
              "and quality; MP-DASH is lowest on both bytes and energy.\n");
  return 0;
}
