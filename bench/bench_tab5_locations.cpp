// Table 5: per-location cellular-byte and radio-energy savings at the
// seven representative locations the paper names (grouped by WiFi
// scenario), for FESTIVE and BBA under rate- and duration-based deadlines.

#include "field_study.h"

using namespace mpdash;
using namespace mpdash::bench;

int main(int argc, char** argv) {
  const int jobs = parse_jobs(argc, argv);
  print_header("Table 5", "savings at representative locations");

  const auto outcomes = run_field_study(table5_locations(), jobs);

  TextTable table({"location", "WiFi BW/RTT", "LTE BW/RTT", "FEST/B rate",
                   "FEST/B dur", "FEST/E rate", "FEST/E dur", "BBA/B rate",
                   "BBA/B dur", "BBA/E rate", "BBA/E dur"});
  for (const auto& o : outcomes) {
    const LocationProfile& loc = o.location;
    auto pct = [](double v) { return TextTable::pct(v, 1); };
    table.add_row(
        {loc.name,
         TextTable::num(loc.wifi_mean.as_mbps(), 2) + "/" +
             TextTable::num(to_milliseconds(loc.wifi_rtt), 1),
         TextTable::num(loc.lte_mean.as_mbps(), 2) + "/" +
             TextTable::num(to_milliseconds(loc.lte_rtt), 1),
         pct(o.cell_saving("festive", "rate")),
         pct(o.cell_saving("festive", "duration")),
         pct(o.energy_saving("festive", "rate")),
         pct(o.energy_saving("festive", "duration")),
         pct(o.cell_saving("bba", "rate")),
         pct(o.cell_saving("bba", "duration")),
         pct(o.energy_saving("bba", "rate")),
         pct(o.energy_saving("bba", "duration"))});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(B = cellular-byte saving, E = radio-energy saving, vs the "
              "vanilla-MPTCP baseline)\n\n");

  // Scenario-3 sanity: the strongest-WiFi locations should show the
  // largest savings (paper: savings grow with WiFi throughput).
  const auto& weakest = outcomes.front();   // Hotel Hi, 2.92 Mbps
  const auto& strongest = outcomes.back();  // Elec. Store, 28.4 Mbps
  std::printf("savings grow with WiFi bandwidth: %s %.0f%% -> %s %.0f%% "
              "(FESTIVE-rate)\n",
              weakest.location.name.c_str(),
              weakest.cell_saving("festive", "rate") * 100,
              strongest.location.name.c_str(),
              strongest.cell_saving("festive", "rate") * 100);
  std::printf("paper shape: savings increase from scenario 1 (weak WiFi) to "
              "scenario 3 (strong WiFi, up to ~99%%).\n");
  return 0;
}
