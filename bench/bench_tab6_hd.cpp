// Table 6: HD video (Tears of Steel HD, top bitrate 10 Mbps) at a
// supermarket-like location where even WiFi+LTE cannot sustain the top
// level. Compares FESTIVE and BBA-C with MP-DASH (rate-based) against
// their vanilla-MPTCP baselines (BBA-C's baseline column in the paper is
// unmodified BBA).

#include "bench_common.h"

using namespace mpdash;
using namespace mpdash::bench;

int main() {
  print_header("Table 6", "HD video at a supermarket-like location");

  const Video video = bench_video(tears_of_steel_hd);
  const Duration horizon = video.total_duration() + seconds(180.0);

  // Supermarket-like: moderate fluctuating WiFi + LTE whose sum sits
  // below the 10 Mbps top rate most of the time (video plays at levels
  // 3-4 of 5, i.e. indices 2-3).
  LocationProfile loc;
  loc.name = "Supermarket";
  loc.wifi_mean = DataRate::mbps(4.5);
  loc.wifi_sigma = 0.35;
  loc.wifi_rtt = milliseconds(45);
  loc.lte_mean = DataRate::mbps(4.0);
  loc.lte_sigma = 0.2;
  loc.lte_rtt = milliseconds(60);
  loc.seed = 909;
  const ScenarioConfig net = location_scenario(loc, horizon);

  TextTable table({"algorithm", "playback Mbps", "cell saving",
                   "energy saving", "stalls"});
  for (const char* algo : {"festive", "bba-c"}) {
    const std::string base_algo = algo == std::string("bba-c") ? "bba" : algo;
    const SessionResult base =
        run_scheme(net, video, Scheme::kBaseline, base_algo);
    const SessionResult mpd =
        run_scheme(net, video, Scheme::kMpDashRate, algo);
    const double delta =
        (mpd.steady_avg_bitrate_mbps - base.steady_avg_bitrate_mbps) /
        std::max(0.01, base.steady_avg_bitrate_mbps);
    table.add_row(
        {std::string(algo) + (delta >= 0 ? " (bitrate +" : " (bitrate ") +
             TextTable::num(delta * 100, 1) + "%)",
         TextTable::num(mpd.steady_avg_bitrate_mbps) + " vs " +
             TextTable::num(base.steady_avg_bitrate_mbps),
         TextTable::pct(saving(static_cast<double>(base.cell_bytes),
                               static_cast<double>(mpd.cell_bytes)),
                        1),
         TextTable::pct(saving(base.energy_j(), mpd.energy_j()), 1),
         std::to_string(mpd.stalls) + " vs " + std::to_string(base.stalls)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper shape: ~40%% (FESTIVE) and ~37%% (BBA-C vs BBA) "
              "cellular savings; FESTIVE bitrate can even *increase* "
              "(transport-layer estimation beats app-layer).\n");
  return 0;
}
