#pragma once
// Shared field-study sweep for Figures 9/10 and Table 5: every location in
// the 33-location profile DB, streaming Big Buck Bunny under six schemes —
// FESTIVE and BBA, each with vanilla MPTCP, MP-DASH rate-based, and
// MP-DASH duration-based deadlines (the paper's §7.3.3 methodology).

#include <map>
#include <string>
#include <vector>

#include "bench_common.h"

namespace mpdash::bench {

struct LocationOutcome {
  LocationProfile location;  // by value: caller vectors may be temporaries
  // Keyed by "<algo>/<scheme>", e.g. "festive/rate".
  std::map<std::string, SessionResult> runs;

  const SessionResult& at(const std::string& key) const {
    return runs.at(key);
  }
  double cell_saving(const std::string& algo,
                     const std::string& scheme) const {
    const auto& base = at(algo + "/baseline");
    const auto& res = at(algo + "/" + scheme);
    return saving(static_cast<double>(base.cell_bytes),
                  static_cast<double>(res.cell_bytes));
  }
  double energy_saving(const std::string& algo,
                       const std::string& scheme) const {
    const auto& base = at(algo + "/baseline");
    const auto& res = at(algo + "/" + scheme);
    return saving(base.energy_j(), res.energy_j());
  }
  // Positive = MP-DASH played at a lower bitrate than the baseline.
  double bitrate_reduction(const std::string& algo,
                           const std::string& scheme) const {
    const auto& base = at(algo + "/baseline");
    const auto& res = at(algo + "/" + scheme);
    if (base.steady_avg_bitrate_mbps <= 0.0) return 0.0;
    return (base.steady_avg_bitrate_mbps - res.steady_avg_bitrate_mbps) /
           base.steady_avg_bitrate_mbps;
  }
};

inline std::vector<LocationOutcome> run_field_study(
    const std::vector<LocationProfile>& locations) {
  const Video video = bench_video();
  const Duration horizon = video.total_duration() + seconds(120.0);

  std::vector<LocationOutcome> out;
  for (const auto& loc : locations) {
    LocationOutcome outcome;
    outcome.location = loc;
    const ScenarioConfig net = location_scenario(loc, horizon);
    for (const char* algo : {"festive", "bba"}) {
      for (const auto& [key, scheme] :
           std::vector<std::pair<std::string, Scheme>>{
               {"baseline", Scheme::kBaseline},
               {"rate", Scheme::kMpDashRate},
               {"duration", Scheme::kMpDashDuration}}) {
        outcome.runs.emplace(std::string(algo) + "/" + key,
                             run_scheme(net, video, scheme, algo));
      }
    }
    out.push_back(std::move(outcome));
  }
  return out;
}

}  // namespace mpdash::bench
