#pragma once
// Shared field-study sweep for Figures 9/10 and Table 5: every location in
// the 33-location profile DB, streaming Big Buck Bunny under six schemes —
// FESTIVE and BBA, each with vanilla MPTCP, MP-DASH rate-based, and
// MP-DASH duration-based deadlines (the paper's §7.3.3 methodology).

#include <map>
#include <string>
#include <vector>

#include "bench_common.h"

namespace mpdash::bench {

struct LocationOutcome {
  LocationProfile location;  // by value: caller vectors may be temporaries
  // Keyed by "<algo>/<scheme>", e.g. "festive/rate".
  std::map<std::string, SessionResult> runs;

  const SessionResult& at(const std::string& key) const {
    return runs.at(key);
  }
  double cell_saving(const std::string& algo,
                     const std::string& scheme) const {
    const auto& base = at(algo + "/baseline");
    const auto& res = at(algo + "/" + scheme);
    return saving(static_cast<double>(base.cell_bytes),
                  static_cast<double>(res.cell_bytes));
  }
  double energy_saving(const std::string& algo,
                       const std::string& scheme) const {
    const auto& base = at(algo + "/baseline");
    const auto& res = at(algo + "/" + scheme);
    return saving(base.energy_j(), res.energy_j());
  }
  // Positive = MP-DASH played at a lower bitrate than the baseline.
  double bitrate_reduction(const std::string& algo,
                           const std::string& scheme) const {
    const auto& base = at(algo + "/baseline");
    const auto& res = at(algo + "/" + scheme);
    if (base.steady_avg_bitrate_mbps <= 0.0) return 0.0;
    return (base.steady_avg_bitrate_mbps - res.steady_avg_bitrate_mbps) /
           base.steady_avg_bitrate_mbps;
  }
};

// Executes the full grid (|locations| × 2 algorithms × 3 schemes) as one
// Campaign: one RunSpec per cell, sharded over `jobs` workers (0 = auto).
// Results are reassembled in location order after the pool drains, so the
// returned vector — and everything aggregated from it — is bitwise
// identical for any job count.
inline std::vector<LocationOutcome> run_field_study(
    const std::vector<LocationProfile>& locations, int jobs = 0) {
  const Video video = bench_video();
  const Duration horizon = video.total_duration() + seconds(120.0);

  // Scenario configs are built once, serially, and shared read-only with
  // the workers (trace expansion is the expensive deterministic part).
  std::vector<ScenarioConfig> nets;
  nets.reserve(locations.size());
  for (const auto& loc : locations) {
    nets.push_back(location_scenario(loc, horizon));
  }

  struct Cell {
    SessionResult result;
    std::string bench_json;
    std::string attrib;  // kAttribSeriesHeader rows (MPDASH_BENCH_ATTRIB)
  };
  const char* attrib_path = bench_attrib_path();
  static const std::vector<std::pair<std::string, Scheme>> kSchemes = {
      {"baseline", Scheme::kBaseline},
      {"rate", Scheme::kMpDashRate},
      {"duration", Scheme::kMpDashDuration}};

  Campaign<Cell> campaign("field-study");
  struct Slot {
    std::size_t location;
    std::string run_key;  // "<algo>/<scheme>" within the LocationOutcome
  };
  std::vector<Slot> slots;
  for (std::size_t li = 0; li < locations.size(); ++li) {
    for (const char* algo : {"festive", "bba"}) {
      for (const auto& [key, scheme] : kSchemes) {
        const std::string run_key = std::string(algo) + "/" + key;
        const std::string cell_name = locations[li].name + "/" + run_key;
        const ScenarioConfig& net = nets[li];
        const std::string algo_name = algo;
        const Scheme sch = scheme;
        campaign.add(cell_name, [&net, &video, sch, algo_name, cell_name,
                                 attrib_path](RunContext&) {
          Cell cell;
          cell.result = run_scheme(
              net, video, sch, algo_name, false, &cell.bench_json,
              attrib_path != nullptr ? &cell.attrib : nullptr, cell_name);
          return cell;
        });
        slots.push_back({li, run_key});
      }
    }
  }

  CampaignOptions opts;
  opts.jobs = jobs;
  auto res = campaign.run(opts);
  res.require_all_ok();

  std::string json_lines;
  for (const Cell& cell : res.results) json_lines += cell.bench_json;
  append_bench_lines(json_lines);
  append_campaign_summary(res.stats);

  if (attrib_path != nullptr) {
    // Add-order assembly, same contract as the JSON lines: the attribution
    // artifact is bitwise identical for any job count.
    std::string rows(kAttribSeriesHeader);
    for (const Cell& cell : res.results) rows += cell.attrib;
    std::FILE* f = std::fopen(attrib_path, "w");
    if (f != nullptr) {
      std::fwrite(rows.data(), 1, rows.size(), f);
      std::fclose(f);
      // stderr, like the progress lines: stdout must stay bitwise
      // identical across runs that write to differently named files.
      std::fprintf(stderr, "attribution series written to %s\n", attrib_path);
    } else {
      std::fprintf(stderr, "cannot write %s\n", attrib_path);
    }
  }

  std::vector<LocationOutcome> out(locations.size());
  for (std::size_t li = 0; li < locations.size(); ++li) {
    out[li].location = locations[li];
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    out[slots[i].location].runs.emplace(slots[i].run_key,
                                        std::move(res.results[i].result));
  }
  return out;
}

}  // namespace mpdash::bench
