file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_mpc.dir/bench_ext_mpc.cpp.o"
  "CMakeFiles/bench_ext_mpc.dir/bench_ext_mpc.cpp.o.d"
  "bench_ext_mpc"
  "bench_ext_mpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
