# Empty dependencies file for bench_ext_mpc.
# This may be replaced when dependencies are built.
