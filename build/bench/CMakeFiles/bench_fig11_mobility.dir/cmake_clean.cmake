file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mobility.dir/bench_fig11_mobility.cpp.o"
  "CMakeFiles/bench_fig11_mobility.dir/bench_fig11_mobility.cpp.o.d"
  "bench_fig11_mobility"
  "bench_fig11_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
