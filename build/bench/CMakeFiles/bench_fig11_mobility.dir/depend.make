# Empty dependencies file for bench_fig11_mobility.
# This may be replaced when dependencies are built.
