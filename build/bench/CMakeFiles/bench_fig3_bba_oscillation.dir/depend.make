# Empty dependencies file for bench_fig3_bba_oscillation.
# This may be replaced when dependencies are built.
