# Empty dependencies file for bench_fig4_scheduler.
# This may be replaced when dependencies are built.
