file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_holtwinters.dir/bench_fig5_holtwinters.cpp.o"
  "CMakeFiles/bench_fig5_holtwinters.dir/bench_fig5_holtwinters.cpp.o.d"
  "bench_fig5_holtwinters"
  "bench_fig5_holtwinters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_holtwinters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
