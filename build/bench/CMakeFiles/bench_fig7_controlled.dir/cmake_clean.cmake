file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_controlled.dir/bench_fig7_controlled.cpp.o"
  "CMakeFiles/bench_fig7_controlled.dir/bench_fig7_controlled.cpp.o.d"
  "bench_fig7_controlled"
  "bench_fig7_controlled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_controlled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
