file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_analysis_tool.dir/bench_fig8_analysis_tool.cpp.o"
  "CMakeFiles/bench_fig8_analysis_tool.dir/bench_fig8_analysis_tool.cpp.o.d"
  "bench_fig8_analysis_tool"
  "bench_fig8_analysis_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_analysis_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
