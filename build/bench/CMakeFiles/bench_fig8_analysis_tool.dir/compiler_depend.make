# Empty compiler generated dependencies file for bench_fig8_analysis_tool.
# This may be replaced when dependencies are built.
