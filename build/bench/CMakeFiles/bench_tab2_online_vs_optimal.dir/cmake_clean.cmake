file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_online_vs_optimal.dir/bench_tab2_online_vs_optimal.cpp.o"
  "CMakeFiles/bench_tab2_online_vs_optimal.dir/bench_tab2_online_vs_optimal.cpp.o.d"
  "bench_tab2_online_vs_optimal"
  "bench_tab2_online_vs_optimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_online_vs_optimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
