# Empty dependencies file for bench_tab2_online_vs_optimal.
# This may be replaced when dependencies are built.
