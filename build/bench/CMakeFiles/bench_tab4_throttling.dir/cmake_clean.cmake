file(REMOVE_RECURSE
  "CMakeFiles/bench_tab4_throttling.dir/bench_tab4_throttling.cpp.o"
  "CMakeFiles/bench_tab4_throttling.dir/bench_tab4_throttling.cpp.o.d"
  "bench_tab4_throttling"
  "bench_tab4_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
