file(REMOVE_RECURSE
  "CMakeFiles/bench_tab5_locations.dir/bench_tab5_locations.cpp.o"
  "CMakeFiles/bench_tab5_locations.dir/bench_tab5_locations.cpp.o.d"
  "bench_tab5_locations"
  "bench_tab5_locations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_locations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
