# Empty compiler generated dependencies file for bench_tab5_locations.
# This may be replaced when dependencies are built.
