file(REMOVE_RECURSE
  "CMakeFiles/bench_tab6_hd.dir/bench_tab6_hd.cpp.o"
  "CMakeFiles/bench_tab6_hd.dir/bench_tab6_hd.cpp.o.d"
  "bench_tab6_hd"
  "bench_tab6_hd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_hd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
