file(REMOVE_RECURSE
  "CMakeFiles/delay_tolerant.dir/delay_tolerant.cpp.o"
  "CMakeFiles/delay_tolerant.dir/delay_tolerant.cpp.o.d"
  "delay_tolerant"
  "delay_tolerant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delay_tolerant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
