# Empty compiler generated dependencies file for delay_tolerant.
# This may be replaced when dependencies are built.
