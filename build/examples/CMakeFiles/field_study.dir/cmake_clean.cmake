file(REMOVE_RECURSE
  "CMakeFiles/field_study.dir/field_study.cpp.o"
  "CMakeFiles/field_study.dir/field_study.cpp.o.d"
  "field_study"
  "field_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
