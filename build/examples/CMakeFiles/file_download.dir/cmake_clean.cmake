file(REMOVE_RECURSE
  "CMakeFiles/file_download.dir/file_download.cpp.o"
  "CMakeFiles/file_download.dir/file_download.cpp.o.d"
  "file_download"
  "file_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
