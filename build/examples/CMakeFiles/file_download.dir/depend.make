# Empty dependencies file for file_download.
# This may be replaced when dependencies are built.
