# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("trace")
subdirs("predict")
subdirs("link")
subdirs("tcp")
subdirs("mptcp")
subdirs("http")
subdirs("core")
subdirs("dash")
subdirs("adapt")
subdirs("adapter")
subdirs("energy")
subdirs("analysis")
subdirs("exp")
