
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapt/adaptation.cpp" "src/adapt/CMakeFiles/mpdash_adapt.dir/adaptation.cpp.o" "gcc" "src/adapt/CMakeFiles/mpdash_adapt.dir/adaptation.cpp.o.d"
  "/root/repo/src/adapt/bba.cpp" "src/adapt/CMakeFiles/mpdash_adapt.dir/bba.cpp.o" "gcc" "src/adapt/CMakeFiles/mpdash_adapt.dir/bba.cpp.o.d"
  "/root/repo/src/adapt/festive.cpp" "src/adapt/CMakeFiles/mpdash_adapt.dir/festive.cpp.o" "gcc" "src/adapt/CMakeFiles/mpdash_adapt.dir/festive.cpp.o.d"
  "/root/repo/src/adapt/gpac.cpp" "src/adapt/CMakeFiles/mpdash_adapt.dir/gpac.cpp.o" "gcc" "src/adapt/CMakeFiles/mpdash_adapt.dir/gpac.cpp.o.d"
  "/root/repo/src/adapt/mpc.cpp" "src/adapt/CMakeFiles/mpdash_adapt.dir/mpc.cpp.o" "gcc" "src/adapt/CMakeFiles/mpdash_adapt.dir/mpc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mpdash_util.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/mpdash_predict.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
