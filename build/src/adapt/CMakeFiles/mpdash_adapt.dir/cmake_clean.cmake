file(REMOVE_RECURSE
  "CMakeFiles/mpdash_adapt.dir/adaptation.cpp.o"
  "CMakeFiles/mpdash_adapt.dir/adaptation.cpp.o.d"
  "CMakeFiles/mpdash_adapt.dir/bba.cpp.o"
  "CMakeFiles/mpdash_adapt.dir/bba.cpp.o.d"
  "CMakeFiles/mpdash_adapt.dir/festive.cpp.o"
  "CMakeFiles/mpdash_adapt.dir/festive.cpp.o.d"
  "CMakeFiles/mpdash_adapt.dir/gpac.cpp.o"
  "CMakeFiles/mpdash_adapt.dir/gpac.cpp.o.d"
  "CMakeFiles/mpdash_adapt.dir/mpc.cpp.o"
  "CMakeFiles/mpdash_adapt.dir/mpc.cpp.o.d"
  "libmpdash_adapt.a"
  "libmpdash_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
