file(REMOVE_RECURSE
  "libmpdash_adapt.a"
)
