# Empty compiler generated dependencies file for mpdash_adapt.
# This may be replaced when dependencies are built.
