file(REMOVE_RECURSE
  "CMakeFiles/mpdash_adapter.dir/mpdash_adapter.cpp.o"
  "CMakeFiles/mpdash_adapter.dir/mpdash_adapter.cpp.o.d"
  "libmpdash_adapter.a"
  "libmpdash_adapter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_adapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
