file(REMOVE_RECURSE
  "libmpdash_adapter.a"
)
