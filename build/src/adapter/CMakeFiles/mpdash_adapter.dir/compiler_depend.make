# Empty compiler generated dependencies file for mpdash_adapter.
# This may be replaced when dependencies are built.
