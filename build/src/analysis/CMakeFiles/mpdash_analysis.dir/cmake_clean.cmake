file(REMOVE_RECURSE
  "CMakeFiles/mpdash_analysis.dir/analyzer.cpp.o"
  "CMakeFiles/mpdash_analysis.dir/analyzer.cpp.o.d"
  "CMakeFiles/mpdash_analysis.dir/records.cpp.o"
  "CMakeFiles/mpdash_analysis.dir/records.cpp.o.d"
  "CMakeFiles/mpdash_analysis.dir/render.cpp.o"
  "CMakeFiles/mpdash_analysis.dir/render.cpp.o.d"
  "libmpdash_analysis.a"
  "libmpdash_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
