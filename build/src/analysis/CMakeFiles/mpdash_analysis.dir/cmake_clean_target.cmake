file(REMOVE_RECURSE
  "libmpdash_analysis.a"
)
