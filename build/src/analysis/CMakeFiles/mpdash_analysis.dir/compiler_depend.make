# Empty compiler generated dependencies file for mpdash_analysis.
# This may be replaced when dependencies are built.
