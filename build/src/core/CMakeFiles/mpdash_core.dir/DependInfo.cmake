
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/deadline_scheduler.cpp" "src/core/CMakeFiles/mpdash_core.dir/deadline_scheduler.cpp.o" "gcc" "src/core/CMakeFiles/mpdash_core.dir/deadline_scheduler.cpp.o.d"
  "/root/repo/src/core/mpdash_socket.cpp" "src/core/CMakeFiles/mpdash_core.dir/mpdash_socket.cpp.o" "gcc" "src/core/CMakeFiles/mpdash_core.dir/mpdash_socket.cpp.o.d"
  "/root/repo/src/core/offline_optimal.cpp" "src/core/CMakeFiles/mpdash_core.dir/offline_optimal.cpp.o" "gcc" "src/core/CMakeFiles/mpdash_core.dir/offline_optimal.cpp.o.d"
  "/root/repo/src/core/online_simulator.cpp" "src/core/CMakeFiles/mpdash_core.dir/online_simulator.cpp.o" "gcc" "src/core/CMakeFiles/mpdash_core.dir/online_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mptcp/CMakeFiles/mpdash_mptcp.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/mpdash_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mpdash_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mpdash_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/mpdash_link.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpdash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpdash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
