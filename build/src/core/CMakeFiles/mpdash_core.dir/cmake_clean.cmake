file(REMOVE_RECURSE
  "CMakeFiles/mpdash_core.dir/deadline_scheduler.cpp.o"
  "CMakeFiles/mpdash_core.dir/deadline_scheduler.cpp.o.d"
  "CMakeFiles/mpdash_core.dir/mpdash_socket.cpp.o"
  "CMakeFiles/mpdash_core.dir/mpdash_socket.cpp.o.d"
  "CMakeFiles/mpdash_core.dir/offline_optimal.cpp.o"
  "CMakeFiles/mpdash_core.dir/offline_optimal.cpp.o.d"
  "CMakeFiles/mpdash_core.dir/online_simulator.cpp.o"
  "CMakeFiles/mpdash_core.dir/online_simulator.cpp.o.d"
  "libmpdash_core.a"
  "libmpdash_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
