file(REMOVE_RECURSE
  "libmpdash_core.a"
)
