# Empty dependencies file for mpdash_core.
# This may be replaced when dependencies are built.
