
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dash/buffer.cpp" "src/dash/CMakeFiles/mpdash_dash.dir/buffer.cpp.o" "gcc" "src/dash/CMakeFiles/mpdash_dash.dir/buffer.cpp.o.d"
  "/root/repo/src/dash/events.cpp" "src/dash/CMakeFiles/mpdash_dash.dir/events.cpp.o" "gcc" "src/dash/CMakeFiles/mpdash_dash.dir/events.cpp.o.d"
  "/root/repo/src/dash/manifest.cpp" "src/dash/CMakeFiles/mpdash_dash.dir/manifest.cpp.o" "gcc" "src/dash/CMakeFiles/mpdash_dash.dir/manifest.cpp.o.d"
  "/root/repo/src/dash/player.cpp" "src/dash/CMakeFiles/mpdash_dash.dir/player.cpp.o" "gcc" "src/dash/CMakeFiles/mpdash_dash.dir/player.cpp.o.d"
  "/root/repo/src/dash/server.cpp" "src/dash/CMakeFiles/mpdash_dash.dir/server.cpp.o" "gcc" "src/dash/CMakeFiles/mpdash_dash.dir/server.cpp.o.d"
  "/root/repo/src/dash/video.cpp" "src/dash/CMakeFiles/mpdash_dash.dir/video.cpp.o" "gcc" "src/dash/CMakeFiles/mpdash_dash.dir/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/mpdash_http.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/mpdash_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/mptcp/CMakeFiles/mpdash_mptcp.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mpdash_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/mpdash_link.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpdash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mpdash_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/mpdash_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpdash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
