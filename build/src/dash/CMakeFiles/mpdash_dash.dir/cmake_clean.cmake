file(REMOVE_RECURSE
  "CMakeFiles/mpdash_dash.dir/buffer.cpp.o"
  "CMakeFiles/mpdash_dash.dir/buffer.cpp.o.d"
  "CMakeFiles/mpdash_dash.dir/events.cpp.o"
  "CMakeFiles/mpdash_dash.dir/events.cpp.o.d"
  "CMakeFiles/mpdash_dash.dir/manifest.cpp.o"
  "CMakeFiles/mpdash_dash.dir/manifest.cpp.o.d"
  "CMakeFiles/mpdash_dash.dir/player.cpp.o"
  "CMakeFiles/mpdash_dash.dir/player.cpp.o.d"
  "CMakeFiles/mpdash_dash.dir/server.cpp.o"
  "CMakeFiles/mpdash_dash.dir/server.cpp.o.d"
  "CMakeFiles/mpdash_dash.dir/video.cpp.o"
  "CMakeFiles/mpdash_dash.dir/video.cpp.o.d"
  "libmpdash_dash.a"
  "libmpdash_dash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_dash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
