file(REMOVE_RECURSE
  "libmpdash_dash.a"
)
