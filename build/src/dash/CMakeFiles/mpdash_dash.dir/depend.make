# Empty dependencies file for mpdash_dash.
# This may be replaced when dependencies are built.
