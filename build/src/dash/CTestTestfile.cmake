# CMake generated Testfile for 
# Source directory: /root/repo/src/dash
# Build directory: /root/repo/build/src/dash
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
