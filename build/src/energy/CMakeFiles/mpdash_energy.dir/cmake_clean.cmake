file(REMOVE_RECURSE
  "CMakeFiles/mpdash_energy.dir/accounting.cpp.o"
  "CMakeFiles/mpdash_energy.dir/accounting.cpp.o.d"
  "CMakeFiles/mpdash_energy.dir/radio_model.cpp.o"
  "CMakeFiles/mpdash_energy.dir/radio_model.cpp.o.d"
  "libmpdash_energy.a"
  "libmpdash_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
