file(REMOVE_RECURSE
  "libmpdash_energy.a"
)
