# Empty compiler generated dependencies file for mpdash_energy.
# This may be replaced when dependencies are built.
