file(REMOVE_RECURSE
  "CMakeFiles/mpdash_exp.dir/scenario.cpp.o"
  "CMakeFiles/mpdash_exp.dir/scenario.cpp.o.d"
  "CMakeFiles/mpdash_exp.dir/session.cpp.o"
  "CMakeFiles/mpdash_exp.dir/session.cpp.o.d"
  "libmpdash_exp.a"
  "libmpdash_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
