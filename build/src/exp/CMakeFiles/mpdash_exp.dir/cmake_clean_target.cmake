file(REMOVE_RECURSE
  "libmpdash_exp.a"
)
