# Empty dependencies file for mpdash_exp.
# This may be replaced when dependencies are built.
