file(REMOVE_RECURSE
  "CMakeFiles/mpdash_http.dir/client.cpp.o"
  "CMakeFiles/mpdash_http.dir/client.cpp.o.d"
  "CMakeFiles/mpdash_http.dir/message.cpp.o"
  "CMakeFiles/mpdash_http.dir/message.cpp.o.d"
  "CMakeFiles/mpdash_http.dir/parser.cpp.o"
  "CMakeFiles/mpdash_http.dir/parser.cpp.o.d"
  "CMakeFiles/mpdash_http.dir/server.cpp.o"
  "CMakeFiles/mpdash_http.dir/server.cpp.o.d"
  "libmpdash_http.a"
  "libmpdash_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
