file(REMOVE_RECURSE
  "libmpdash_http.a"
)
