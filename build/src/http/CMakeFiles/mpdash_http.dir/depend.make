# Empty dependencies file for mpdash_http.
# This may be replaced when dependencies are built.
