file(REMOVE_RECURSE
  "CMakeFiles/mpdash_link.dir/link.cpp.o"
  "CMakeFiles/mpdash_link.dir/link.cpp.o.d"
  "CMakeFiles/mpdash_link.dir/path.cpp.o"
  "CMakeFiles/mpdash_link.dir/path.cpp.o.d"
  "CMakeFiles/mpdash_link.dir/shaper.cpp.o"
  "CMakeFiles/mpdash_link.dir/shaper.cpp.o.d"
  "libmpdash_link.a"
  "libmpdash_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
