file(REMOVE_RECURSE
  "libmpdash_link.a"
)
