# Empty dependencies file for mpdash_link.
# This may be replaced when dependencies are built.
