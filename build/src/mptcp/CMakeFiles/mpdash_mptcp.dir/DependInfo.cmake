
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mptcp/connection.cpp" "src/mptcp/CMakeFiles/mpdash_mptcp.dir/connection.cpp.o" "gcc" "src/mptcp/CMakeFiles/mpdash_mptcp.dir/connection.cpp.o.d"
  "/root/repo/src/mptcp/endpoint.cpp" "src/mptcp/CMakeFiles/mpdash_mptcp.dir/endpoint.cpp.o" "gcc" "src/mptcp/CMakeFiles/mpdash_mptcp.dir/endpoint.cpp.o.d"
  "/root/repo/src/mptcp/scheduler.cpp" "src/mptcp/CMakeFiles/mpdash_mptcp.dir/scheduler.cpp.o" "gcc" "src/mptcp/CMakeFiles/mpdash_mptcp.dir/scheduler.cpp.o.d"
  "/root/repo/src/mptcp/stream_buffer.cpp" "src/mptcp/CMakeFiles/mpdash_mptcp.dir/stream_buffer.cpp.o" "gcc" "src/mptcp/CMakeFiles/mpdash_mptcp.dir/stream_buffer.cpp.o.d"
  "/root/repo/src/mptcp/wire_data.cpp" "src/mptcp/CMakeFiles/mpdash_mptcp.dir/wire_data.cpp.o" "gcc" "src/mptcp/CMakeFiles/mpdash_mptcp.dir/wire_data.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcp/CMakeFiles/mpdash_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/mpdash_link.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/mpdash_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mpdash_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpdash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpdash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
