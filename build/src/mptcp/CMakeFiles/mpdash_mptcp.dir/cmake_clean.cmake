file(REMOVE_RECURSE
  "CMakeFiles/mpdash_mptcp.dir/connection.cpp.o"
  "CMakeFiles/mpdash_mptcp.dir/connection.cpp.o.d"
  "CMakeFiles/mpdash_mptcp.dir/endpoint.cpp.o"
  "CMakeFiles/mpdash_mptcp.dir/endpoint.cpp.o.d"
  "CMakeFiles/mpdash_mptcp.dir/scheduler.cpp.o"
  "CMakeFiles/mpdash_mptcp.dir/scheduler.cpp.o.d"
  "CMakeFiles/mpdash_mptcp.dir/stream_buffer.cpp.o"
  "CMakeFiles/mpdash_mptcp.dir/stream_buffer.cpp.o.d"
  "CMakeFiles/mpdash_mptcp.dir/wire_data.cpp.o"
  "CMakeFiles/mpdash_mptcp.dir/wire_data.cpp.o.d"
  "libmpdash_mptcp.a"
  "libmpdash_mptcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_mptcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
