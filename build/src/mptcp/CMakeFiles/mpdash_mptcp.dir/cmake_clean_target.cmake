file(REMOVE_RECURSE
  "libmpdash_mptcp.a"
)
