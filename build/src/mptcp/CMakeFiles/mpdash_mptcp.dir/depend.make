# Empty dependencies file for mpdash_mptcp.
# This may be replaced when dependencies are built.
