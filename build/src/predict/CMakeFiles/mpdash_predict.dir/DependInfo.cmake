
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predict/estimator.cpp" "src/predict/CMakeFiles/mpdash_predict.dir/estimator.cpp.o" "gcc" "src/predict/CMakeFiles/mpdash_predict.dir/estimator.cpp.o.d"
  "/root/repo/src/predict/ewma.cpp" "src/predict/CMakeFiles/mpdash_predict.dir/ewma.cpp.o" "gcc" "src/predict/CMakeFiles/mpdash_predict.dir/ewma.cpp.o.d"
  "/root/repo/src/predict/harmonic.cpp" "src/predict/CMakeFiles/mpdash_predict.dir/harmonic.cpp.o" "gcc" "src/predict/CMakeFiles/mpdash_predict.dir/harmonic.cpp.o.d"
  "/root/repo/src/predict/holt_winters.cpp" "src/predict/CMakeFiles/mpdash_predict.dir/holt_winters.cpp.o" "gcc" "src/predict/CMakeFiles/mpdash_predict.dir/holt_winters.cpp.o.d"
  "/root/repo/src/predict/moving_average.cpp" "src/predict/CMakeFiles/mpdash_predict.dir/moving_average.cpp.o" "gcc" "src/predict/CMakeFiles/mpdash_predict.dir/moving_average.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mpdash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
