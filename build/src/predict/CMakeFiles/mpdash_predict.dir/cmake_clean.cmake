file(REMOVE_RECURSE
  "CMakeFiles/mpdash_predict.dir/estimator.cpp.o"
  "CMakeFiles/mpdash_predict.dir/estimator.cpp.o.d"
  "CMakeFiles/mpdash_predict.dir/ewma.cpp.o"
  "CMakeFiles/mpdash_predict.dir/ewma.cpp.o.d"
  "CMakeFiles/mpdash_predict.dir/harmonic.cpp.o"
  "CMakeFiles/mpdash_predict.dir/harmonic.cpp.o.d"
  "CMakeFiles/mpdash_predict.dir/holt_winters.cpp.o"
  "CMakeFiles/mpdash_predict.dir/holt_winters.cpp.o.d"
  "CMakeFiles/mpdash_predict.dir/moving_average.cpp.o"
  "CMakeFiles/mpdash_predict.dir/moving_average.cpp.o.d"
  "libmpdash_predict.a"
  "libmpdash_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
