file(REMOVE_RECURSE
  "libmpdash_predict.a"
)
