# Empty dependencies file for mpdash_predict.
# This may be replaced when dependencies are built.
