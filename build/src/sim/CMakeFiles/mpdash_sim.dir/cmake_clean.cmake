file(REMOVE_RECURSE
  "CMakeFiles/mpdash_sim.dir/event_loop.cpp.o"
  "CMakeFiles/mpdash_sim.dir/event_loop.cpp.o.d"
  "libmpdash_sim.a"
  "libmpdash_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
