file(REMOVE_RECURSE
  "libmpdash_sim.a"
)
