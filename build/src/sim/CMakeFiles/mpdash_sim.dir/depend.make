# Empty dependencies file for mpdash_sim.
# This may be replaced when dependencies are built.
