file(REMOVE_RECURSE
  "CMakeFiles/mpdash_tcp.dir/subflow.cpp.o"
  "CMakeFiles/mpdash_tcp.dir/subflow.cpp.o.d"
  "libmpdash_tcp.a"
  "libmpdash_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
