file(REMOVE_RECURSE
  "libmpdash_tcp.a"
)
