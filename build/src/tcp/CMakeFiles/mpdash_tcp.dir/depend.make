# Empty dependencies file for mpdash_tcp.
# This may be replaced when dependencies are built.
