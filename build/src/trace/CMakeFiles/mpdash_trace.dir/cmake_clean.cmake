file(REMOVE_RECURSE
  "CMakeFiles/mpdash_trace.dir/bandwidth_trace.cpp.o"
  "CMakeFiles/mpdash_trace.dir/bandwidth_trace.cpp.o.d"
  "CMakeFiles/mpdash_trace.dir/generators.cpp.o"
  "CMakeFiles/mpdash_trace.dir/generators.cpp.o.d"
  "CMakeFiles/mpdash_trace.dir/locations.cpp.o"
  "CMakeFiles/mpdash_trace.dir/locations.cpp.o.d"
  "CMakeFiles/mpdash_trace.dir/trace_io.cpp.o"
  "CMakeFiles/mpdash_trace.dir/trace_io.cpp.o.d"
  "libmpdash_trace.a"
  "libmpdash_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
