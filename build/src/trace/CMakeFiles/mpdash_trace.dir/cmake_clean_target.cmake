file(REMOVE_RECURSE
  "libmpdash_trace.a"
)
