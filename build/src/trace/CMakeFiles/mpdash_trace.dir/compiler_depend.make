# Empty compiler generated dependencies file for mpdash_trace.
# This may be replaced when dependencies are built.
