file(REMOVE_RECURSE
  "CMakeFiles/mpdash_util.dir/csv.cpp.o"
  "CMakeFiles/mpdash_util.dir/csv.cpp.o.d"
  "CMakeFiles/mpdash_util.dir/rng.cpp.o"
  "CMakeFiles/mpdash_util.dir/rng.cpp.o.d"
  "CMakeFiles/mpdash_util.dir/stats.cpp.o"
  "CMakeFiles/mpdash_util.dir/stats.cpp.o.d"
  "CMakeFiles/mpdash_util.dir/table.cpp.o"
  "CMakeFiles/mpdash_util.dir/table.cpp.o.d"
  "libmpdash_util.a"
  "libmpdash_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
