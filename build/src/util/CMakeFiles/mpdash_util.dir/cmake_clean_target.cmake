file(REMOVE_RECURSE
  "libmpdash_util.a"
)
