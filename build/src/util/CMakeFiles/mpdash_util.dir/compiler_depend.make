# Empty compiler generated dependencies file for mpdash_util.
# This may be replaced when dependencies are built.
