file(REMOVE_RECURSE
  "CMakeFiles/buffer_player_test.dir/buffer_player_test.cpp.o"
  "CMakeFiles/buffer_player_test.dir/buffer_player_test.cpp.o.d"
  "buffer_player_test"
  "buffer_player_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_player_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
