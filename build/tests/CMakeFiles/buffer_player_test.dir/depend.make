# Empty dependencies file for buffer_player_test.
# This may be replaced when dependencies are built.
