file(REMOVE_RECURSE
  "CMakeFiles/core_sched_test.dir/core_sched_test.cpp.o"
  "CMakeFiles/core_sched_test.dir/core_sched_test.cpp.o.d"
  "core_sched_test"
  "core_sched_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
