# Empty dependencies file for core_sched_test.
# This may be replaced when dependencies are built.
