
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/mpdash_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/adapter/CMakeFiles/mpdash_adapter.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mpdash_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mpdash_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dash/CMakeFiles/mpdash_dash.dir/DependInfo.cmake"
  "/root/repo/build/src/adapt/CMakeFiles/mpdash_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/mpdash_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/mpdash_http.dir/DependInfo.cmake"
  "/root/repo/build/src/mptcp/CMakeFiles/mpdash_mptcp.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/mpdash_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mpdash_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/mpdash_link.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mpdash_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpdash_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpdash_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
