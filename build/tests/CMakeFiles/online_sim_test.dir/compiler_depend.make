# Empty compiler generated dependencies file for online_sim_test.
# This may be replaced when dependencies are built.
