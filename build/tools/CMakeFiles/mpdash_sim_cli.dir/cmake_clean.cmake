file(REMOVE_RECURSE
  "CMakeFiles/mpdash_sim_cli.dir/mpdash_sim.cpp.o"
  "CMakeFiles/mpdash_sim_cli.dir/mpdash_sim.cpp.o.d"
  "mpdash_sim"
  "mpdash_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpdash_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
