# Empty compiler generated dependencies file for mpdash_sim_cli.
# This may be replaced when dependencies are built.
