// Cross-layer analysis tool demo (paper §6): records a streaming session's
// packet trace + player event log, then reconstructs chunks from the wire
// (MPTCP data sequencing -> HTTP framing -> DASH chunks), prints per-path
// usage, per-chunk cellular attribution, stalls, and the Figure 8-style
// ASCII timeline. Optionally dumps the event log as CSV.
//
// Usage: analyze_trace [scheme: baseline|rate|duration] [events.csv]

#include <cstdio>
#include <fstream>

#include "analysis/analyzer.h"
#include "analysis/render.h"
#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"

using namespace mpdash;

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "rate";
  Scheme scheme = Scheme::kMpDashRate;
  if (mode == "baseline") scheme = Scheme::kBaseline;
  if (mode == "duration") scheme = Scheme::kMpDashDuration;

  const Video video("Analysis clip", seconds(4.0), 40,
                    {DataRate::mbps(0.58), DataRate::mbps(1.01),
                     DataRate::mbps(1.47), DataRate::mbps(2.41),
                     DataRate::mbps(3.94)},
                    0.12, 42);

  Scenario scenario(
      constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)));
  SessionConfig cfg;
  cfg.scheme = scheme;
  cfg.adaptation = "festive";
  cfg.record_trace = true;
  const SessionResult res = run_streaming_session(scenario, video, cfg);

  AnalyzerConfig acfg;
  acfg.device = galaxy_note();
  const AnalysisReport report = analyze(res.trace, res.events, acfg);

  std::printf("scheme: %s — %zu packets recorded, %zu chunks reconstructed\n\n",
              to_string(scheme), res.trace.size(), report.chunks.size());
  std::printf("%s\n", render_chunk_timeline(report).c_str());
  std::printf("%s\n", render_path_summary(report).c_str());

  std::printf("per-chunk cellular share (first 10):\n");
  for (std::size_t i = 0; i < report.chunks.size() && i < 10; ++i) {
    const auto& c = report.chunks[i];
    std::printf("  chunk %2d level %d: %7lld B, %.0f%% cellular, "
                "%.2f s on the wire\n",
                c.chunk, c.level, static_cast<long long>(c.total_bytes),
                c.cellular_fraction(kCellularPathId) * 100,
                to_seconds(c.end - c.start));
  }
  std::printf("\nstalls: %zu, switches: %d, radio energy: %.0f J "
              "(WiFi %.0f + LTE %.0f)\n",
              report.stalls.size(), report.quality_switches,
              report.energy.total_j(), report.energy.wifi.total_j(),
              report.energy.lte.total_j());

  if (argc > 2) {
    std::ofstream out(argv[2]);
    out << event_log_to_csv(res.events);
    std::printf("event log written to %s\n", argv[2]);
  }
  return 0;
}
