// General applicability of the MP-DASH scheduler (paper §8): any
// delay-tolerant transfer benefits, not just video. Two of the paper's
// examples, driven directly through the MP_DASH_ENABLE socket API:
//
//  * a music app prefetching the next song before the current one ends
//    (deadline = time left in the current song),
//  * turn-by-turn navigation fetching map tiles before the vehicle
//    reaches them (deadline = ETA to the tile boundary).

#include <cstdio>
#include <string>
#include <vector>

#include "core/mpdash_socket.h"
#include "exp/scenario.h"
#include "http/client.h"
#include "http/server.h"
#include "mptcp/connection.h"
#include "util/table.h"

using namespace mpdash;

namespace {

struct Transfer {
  const char* what;
  Bytes size;
  double deadline_s;  // how long until the data is actually needed
};

Bytes run_workload(bool use_mpdash, const std::vector<Transfer>& work,
                   double& wall_s) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(6.0), DataRate::mbps(8.0)));
  EventLoop& loop = scenario.loop();
  MptcpConnection conn(loop, scenario.paths());

  Bytes next_size = 0;
  HttpServer server(conn.server(), [&next_size](const HttpRequest&) {
    HttpResponse resp;
    resp.body_len = next_size;
    return resp;
  });
  HttpClient client(loop, conn.client());
  MpDashSocket socket(loop, conn);

  std::size_t index = 0;
  TimePoint window_start = kTimeZero;
  std::function<void()> issue = [&] {
    if (index >= work.size()) return;
    const Transfer& t = work[index];
    next_size = t.size;
    window_start = loop.now();
    if (use_mpdash) socket.enable(t.size, seconds(t.deadline_s));
    client.get("/" + std::string(t.what), [&](const HttpTransfer&) {
      // The next item becomes needed only when this one's window elapses
      // (the song keeps playing, the car keeps driving).
      const TimePoint next_at =
          window_start + seconds(work[index].deadline_s);
      ++index;
      loop.schedule_at(next_at, issue);
    });
  };
  issue();
  loop.run_until(TimePoint(seconds(600.0)));
  wall_s = to_seconds(loop.now());
  return scenario.cellular_bytes();
}

}  // namespace

int main() {
  const std::vector<Transfer> workload = {
      {"song-2.mp3", megabytes(4), 25.0},   // prefetch during playback
      {"tile-a.pbf", kilobytes(300), 8.0},  // next map tile
      {"song-3.mp3", megabytes(4), 30.0},
      {"tile-b.pbf", kilobytes(300), 6.0},
      {"tile-c.pbf", kilobytes(300), 10.0},
      {"song-4.mp3", megabytes(5), 28.0},
  };

  std::printf("delay-tolerant workload: %zu transfers (music prefetch + "
              "map tiles) over WiFi 6.0 / LTE 8.0 Mbps\n\n",
              workload.size());
  TextTable table({"mode", "LTE MB"});
  for (bool mpdash : {false, true}) {
    double wall = 0.0;
    const Bytes cell = run_workload(mpdash, workload, wall);
    table.add_row({mpdash ? "MP-DASH deadlines" : "vanilla MPTCP",
                   TextTable::num(static_cast<double>(cell) / 1e6)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("every transfer still lands before its deadline; the metered "
              "link is touched only when WiFi alone cannot make one.\n");
  return 0;
}
