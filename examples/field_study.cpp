// Field-study sweep: streams a video at every location in the built-in
// 33-location profile database (64/15/21 % scenario mix, Table 5's
// measured locations included) and reports per-location and aggregate
// cellular savings for MP-DASH vs vanilla MPTCP.
//
// The 66 sessions run as one Campaign sharded over a thread pool; the
// report is assembled in location order afterwards, so the output is
// identical for any --jobs value.
//
// Usage: field_study [algorithm] [--jobs N]   (default: festive, N = cores)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "runner/campaign.h"
#include "trace/locations.h"
#include "util/stats.h"
#include "util/table.h"

using namespace mpdash;

int main(int argc, char** argv) {
  std::string algo = "festive";
  int jobs = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else {
      algo = argv[i];
    }
  }
  // A quarter-length video keeps the 66-session sweep snappy for an
  // example; the bench binaries run the full-length version.
  const Video video("Big Buck Bunny (clip)", seconds(4.0), 38,
                    {DataRate::mbps(0.58), DataRate::mbps(1.01),
                     DataRate::mbps(1.47), DataRate::mbps(2.41),
                     DataRate::mbps(3.94)},
                    0.12, 42);
  const Duration horizon = video.total_duration() + seconds(120.0);

  const auto& locations = field_study_locations();
  struct Pair {
    SessionResult base;
    SessionResult mpd;
  };
  Campaign<Pair> campaign("field-study-example");
  for (const auto& loc : locations) {
    campaign.add(loc.name + "/" + algo, [&loc, &video, &algo,
                                         horizon](RunContext&) {
      ScenarioConfig net;
      net.wifi_down = loc.wifi_trace(horizon);
      net.lte_down = loc.lte_trace(horizon);
      net.wifi_rtt = loc.wifi_rtt;
      net.lte_rtt = loc.lte_rtt;

      SessionConfig cfg;
      cfg.adaptation = algo;
      Pair pair;
      cfg.scheme = Scheme::kBaseline;
      Scenario base_sc(net);
      pair.base = run_streaming_session(base_sc, video, cfg);
      cfg.scheme = Scheme::kMpDashRate;
      Scenario mpd_sc(net);
      pair.mpd = run_streaming_session(mpd_sc, video, cfg);
      return pair;
    });
  }
  CampaignOptions opts;
  opts.jobs = jobs;
  const auto res = campaign.run(opts);
  res.require_all_ok();

  TextTable table({"location", "scenario", "WiFi Mbps", "cell saving",
                   "bitrate delta", "stalls"});
  std::vector<double> savings;
  for (std::size_t i = 0; i < locations.size(); ++i) {
    const auto& loc = locations[i];
    const Pair& pair = res.results[i];
    const double saving =
        pair.base.cell_bytes > 0
            ? 1.0 - static_cast<double>(pair.mpd.cell_bytes) /
                        static_cast<double>(pair.base.cell_bytes)
            : 0.0;
    savings.push_back(saving);
    table.add_row({loc.name, std::to_string(static_cast<int>(loc.scenario)),
                   TextTable::num(loc.wifi_mean.as_mbps(), 1),
                   TextTable::pct(saving, 1),
                   TextTable::num(pair.mpd.steady_avg_bitrate_mbps -
                                      pair.base.steady_avg_bitrate_mbps,
                                  2),
                   std::to_string(pair.mpd.stalls)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("cellular savings: p25 %.0f%%, median %.0f%%, p75 %.0f%%\n",
              percentile(savings, 25) * 100, percentile(savings, 50) * 100,
              percentile(savings, 75) * 100);
  std::printf("campaign: %d runs on %d workers, %.2fs wall (serial est "
              "%.2fs, speedup %.2fx)\n",
              res.stats.runs, res.stats.jobs, res.stats.wall_s,
              res.stats.run_wall_sum_s, res.stats.speedup());
  return 0;
}
