// Field-study sweep: streams a video at every location in the built-in
// 33-location profile database (64/15/21 % scenario mix, Table 5's
// measured locations included) and reports per-location and aggregate
// cellular savings for MP-DASH vs vanilla MPTCP.
//
// Usage: field_study [algorithm]   (default: festive)

#include <cstdio>
#include <vector>

#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "trace/locations.h"
#include "util/stats.h"
#include "util/table.h"

using namespace mpdash;

int main(int argc, char** argv) {
  const std::string algo = argc > 1 ? argv[1] : "festive";
  // A quarter-length video keeps the 66-session sweep snappy for an
  // example; the bench binaries run the full-length version.
  const Video video("Big Buck Bunny (clip)", seconds(4.0), 38,
                    {DataRate::mbps(0.58), DataRate::mbps(1.01),
                     DataRate::mbps(1.47), DataRate::mbps(2.41),
                     DataRate::mbps(3.94)},
                    0.12, 42);
  const Duration horizon = video.total_duration() + seconds(120.0);

  TextTable table({"location", "scenario", "WiFi Mbps", "cell saving",
                   "bitrate delta", "stalls"});
  std::vector<double> savings;
  for (const auto& loc : field_study_locations()) {
    ScenarioConfig net;
    net.wifi_down = loc.wifi_trace(horizon);
    net.lte_down = loc.lte_trace(horizon);
    net.wifi_rtt = loc.wifi_rtt;
    net.lte_rtt = loc.lte_rtt;

    SessionConfig cfg;
    cfg.adaptation = algo;
    cfg.scheme = Scheme::kBaseline;
    Scenario base_sc(net);
    const SessionResult base = run_streaming_session(base_sc, video, cfg);
    cfg.scheme = Scheme::kMpDashRate;
    Scenario mpd_sc(net);
    const SessionResult mpd = run_streaming_session(mpd_sc, video, cfg);

    const double saving =
        base.cell_bytes > 0
            ? 1.0 - static_cast<double>(mpd.cell_bytes) /
                        static_cast<double>(base.cell_bytes)
            : 0.0;
    savings.push_back(saving);
    table.add_row({loc.name, std::to_string(static_cast<int>(loc.scenario)),
                   TextTable::num(loc.wifi_mean.as_mbps(), 1),
                   TextTable::pct(saving, 1),
                   TextTable::num(mpd.steady_avg_bitrate_mbps -
                                      base.steady_avg_bitrate_mbps,
                                  2),
                   std::to_string(mpd.stalls)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("cellular savings: p25 %.0f%%, median %.0f%%, p75 %.0f%%\n",
              percentile(savings, 25) * 100, percentile(savings, 50) * 100,
              percentile(savings, 75) * 100);
  return 0;
}
