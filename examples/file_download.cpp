// Deadline-aware file download (the paper's §7.2 workload): fetch 5 MB
// over WiFi+LTE with a deadline, with and without the MP-DASH scheduler.
//
// Usage: file_download [size_mb] [deadline_s] [wifi_mbps] [lte_mbps]

#include <cstdio>
#include <cstdlib>

#include "exp/scenario.h"
#include "exp/session.h"
#include "util/table.h"

using namespace mpdash;

int main(int argc, char** argv) {
  const double size_mb = argc > 1 ? std::atof(argv[1]) : 5.0;
  const double deadline_s = argc > 2 ? std::atof(argv[2]) : 10.0;
  const double wifi = argc > 3 ? std::atof(argv[3]) : 3.8;
  const double lte = argc > 4 ? std::atof(argv[4]) : 3.0;

  std::printf("download %.1f MB, deadline %.1f s, WiFi %.1f / LTE %.1f Mbps\n\n",
              size_mb, deadline_s, wifi, lte);

  TextTable table({"scheme", "finish s", "missed", "LTE MB", "WiFi MB",
                   "energy J"});
  for (bool mpdash : {false, true}) {
    Scenario scenario(
        constant_scenario(DataRate::mbps(wifi), DataRate::mbps(lte)));
    DownloadConfig cfg;
    cfg.size = static_cast<Bytes>(size_mb * 1e6);
    cfg.deadline = seconds(deadline_s);
    cfg.use_mpdash = mpdash;
    cfg.warmup = true;
    const DownloadResult res = run_download_session(scenario, cfg);
    if (!res.completed) {
      std::printf("%s: did not complete within the time limit\n",
                  mpdash ? "mp-dash" : "baseline");
      continue;
    }
    table.add_row({mpdash ? "MP-DASH" : "vanilla MPTCP",
                   TextTable::num(to_seconds(res.finish_time), 2),
                   res.deadline_missed ? "yes" : "no",
                   TextTable::num(static_cast<double>(res.cell_bytes) / 1e6),
                   TextTable::num(static_cast<double>(res.wifi_bytes) / 1e6),
                   TextTable::num(res.energy_j(), 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("MP-DASH finishes just inside the deadline and moves the "
              "transfer onto WiFi; vanilla MPTCP finishes sooner but burns "
              "the metered link.\n");
  return 0;
}
