// Mobility scenario (paper §7.3.4): walk away from and back toward a WiFi
// AP while streaming. MP-DASH taps LTE only while WiFi is weak.
//
// Usage: mobility_walk [walk_period_s] [wifi_peak_mbps]

#include <cstdio>
#include <cstdlib>

#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "trace/generators.h"
#include "util/rng.h"
#include "util/table.h"

using namespace mpdash;

int main(int argc, char** argv) {
  const double period_s = argc > 1 ? std::atof(argv[1]) : 60.0;
  const double peak = argc > 2 ? std::atof(argv[2]) : 5.0;

  const Video video("Walk clip", seconds(4.0), 45,
                    {DataRate::mbps(0.58), DataRate::mbps(1.01),
                     DataRate::mbps(1.47), DataRate::mbps(2.41),
                     DataRate::mbps(3.94)},
                    0.12, 42);
  const Duration horizon = video.total_duration() + seconds(120.0);

  Rng rng(77);
  MobilityParams mp;
  mp.peak = DataRate::mbps(peak);
  mp.period = seconds(period_s);
  mp.horizon = horizon;

  ScenarioConfig net;
  net.wifi_down = gen_mobility_walk(mp, rng);
  net.lte_down = BandwidthTrace::constant(DataRate::mbps(5.0));

  std::printf("walking a %.0f s loop around the AP (WiFi peak %.1f Mbps, "
              "LTE 5.0 Mbps)\n\n", period_s, peak);

  TextTable table({"scheme", "cell MB", "energy J", "avg Mbps", "stalls"});
  for (Scheme scheme :
       {Scheme::kWifiOnly, Scheme::kBaseline, Scheme::kMpDashRate}) {
    Scenario scenario(net);
    SessionConfig cfg;
    cfg.scheme = scheme;
    cfg.adaptation = "festive";
    const SessionResult res = run_streaming_session(scenario, video, cfg);
    table.add_row({to_string(scheme),
                   TextTable::num(static_cast<double>(res.cell_bytes) / 1e6),
                   TextTable::num(res.energy_j(), 0),
                   TextTable::num(res.steady_avg_bitrate_mbps),
                   std::to_string(res.stalls)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("WiFi-only loses quality in the troughs; vanilla MPTCP burns "
              "LTE continuously; MP-DASH assists adaptively.\n");
  return 0;
}
