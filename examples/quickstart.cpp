// Quickstart: stream Big Buck Bunny over an emulated WiFi+LTE multipath
// network, once with vanilla MPTCP and once with MP-DASH (rate-based
// deadlines), and compare cellular usage, energy, and playback quality.
//
// This is the paper's motivating experiment (§2.3 / Figure 1): WiFi at
// 3.8 Mbps can't quite sustain the 3.94 Mbps top bitrate, so multipath is
// needed — but vanilla MPTCP pulls half the video over the metered LTE
// link, while MP-DASH uses LTE only to fill the gap.

#include <cstdio>

#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "util/table.h"

using namespace mpdash;

int main() {
  const Video video = big_buck_bunny();

  std::printf("Video: %s — %d chunks x %.0f s, levels:",
              video.name().c_str(), video.chunk_count(),
              to_seconds(video.chunk_duration()));
  for (const auto& lv : video.levels()) {
    std::printf(" %.2f", lv.avg_bitrate.as_mbps());
  }
  std::printf(" Mbps\n\n");

  TextTable table({"scheme", "cell MB", "cell %", "energy J", "avg Mbps",
                   "stalls", "switches"});

  for (Scheme scheme : {Scheme::kBaseline, Scheme::kMpDashRate}) {
    Scenario scenario(
        constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)));
    SessionConfig cfg;
    cfg.scheme = scheme;
    cfg.adaptation = "festive";
    const SessionResult res = run_streaming_session(scenario, video, cfg);

    table.add_row({to_string(scheme),
                   TextTable::num(static_cast<double>(res.cell_bytes) / 1e6),
                   TextTable::pct(res.cell_fraction, 1),
                   TextTable::num(res.energy_j(), 0),
                   TextTable::num(res.steady_avg_bitrate_mbps),
                   std::to_string(res.stalls),
                   std::to_string(res.switches)});
    if (!res.completed) std::printf("warning: session hit the time limit\n");
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("MP-DASH should show a large cellular reduction with the same"
              " playback bitrate and zero stalls.\n");
  return 0;
}
