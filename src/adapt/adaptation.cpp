#include "adapt/adaptation.h"

namespace mpdash {

int AdaptationView::highest_level_not_above(DataRate rate) const {
  int best = 0;
  for (int i = 0; i < level_count(); ++i) {
    if (bitrates[static_cast<std::size_t>(i)] <= rate) best = i;
  }
  return best;
}

}  // namespace mpdash
