#pragma once
// DASH rate-adaptation interface.
//
// The paper groups adaptation algorithms into throughput-based (GPAC,
// FESTIVE), buffer-based (BBA, BBA-C), and hybrid (MPC); the MP-DASH
// video adapter keys its integration strategy off `category()`.

#include <string>
#include <vector>

#include "util/units.h"

namespace mpdash {

enum class AdaptationCategory : std::uint8_t {
  kThroughputBased,
  kBufferBased,
  kHybrid,
};

// Snapshot of player state handed to select_level().
struct AdaptationView {
  TimePoint now = kTimeZero;
  double buffer_level_s = 0.0;
  double buffer_capacity_s = 0.0;
  double chunk_duration_s = 0.0;
  int last_level = -1;  // -1 before the first chunk
  int next_chunk = 0;
  int total_chunks = 0;
  bool in_startup = true;  // before playback has begun
  // Chunks already in flight when this view was built: 0 for a sequential
  // player; a pipelined player issues view.next_chunk behind this many
  // earlier requests, each of which credits the new chunk's deadline one
  // chunk duration of playout slack.
  int inflight_ahead = 0;

  // Average encoding bitrate per level, ascending.
  std::vector<DataRate> bitrates;
  // Exact size of the next chunk at each level (from the manifest).
  std::vector<Bytes> next_chunk_sizes;

  // Throughput of the most recent chunk download, player-measured.
  DataRate last_chunk_throughput;
  // MP-DASH's aggregated multipath estimate (zero-rate when not enabled).
  // Throughput-based algorithms use it in place of their own estimate so
  // a deliberately idle cellular path doesn't read as missing capacity.
  DataRate override_throughput;

  int highest_level_not_above(DataRate rate) const;
  int level_count() const { return static_cast<int>(bitrates.size()); }
};

class RateAdaptation {
 public:
  virtual ~RateAdaptation() = default;

  // Picks the quality level for view.next_chunk.
  virtual int select_level(const AdaptationView& view) = 0;

  // Observes a finished download (for throughput windows etc.).
  virtual void on_chunk_downloaded(int level, Bytes bytes,
                                   Duration elapsed) {
    (void)level; (void)bytes; (void)elapsed;
  }

  virtual AdaptationCategory category() const = 0;
  virtual std::string name() const = 0;

  // Buffer-based algorithms: the lowest buffer occupancy (seconds) at
  // which `level` is still selected — the e_l the MP-DASH adapter builds
  // its low-buffer threshold from. Negative when not applicable.
  virtual double buffer_low_threshold_s(const AdaptationView& view,
                                        int level) const {
    (void)view; (void)level;
    return -1.0;
  }

  virtual void reset() {}
};

}  // namespace mpdash
