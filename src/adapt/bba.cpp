#include "adapt/bba.h"

#include <algorithm>

namespace mpdash {

BbaAdaptation::BbaAdaptation(BbaConfig config) : config_(config) {}

void BbaAdaptation::on_chunk_downloaded(int level, Bytes bytes,
                                        Duration elapsed) {
  (void)level;
  last_download_time_ = elapsed;
  if (elapsed > kDurationZero) {
    samples_.push_back(rate_of(bytes, elapsed).bps());
    if (samples_.size() > config_.throughput_window) samples_.pop_front();
  }
}

double BbaAdaptation::rate_map_bps(const AdaptationView& view,
                                   double buffer_s) const {
  const double r_min = view.bitrates.front().bps();
  const double r_max = view.bitrates.back().bps();
  const double reservoir = config_.reservoir_fraction * view.buffer_capacity_s;
  const double upper = config_.upper_fraction * view.buffer_capacity_s;
  if (buffer_s <= reservoir) return r_min;
  if (buffer_s >= upper) return r_max;
  const double t = (buffer_s - reservoir) / (upper - reservoir);
  return r_min + t * (r_max - r_min);
}

double BbaAdaptation::buffer_low_threshold_s(const AdaptationView& view,
                                             int level) const {
  // Inverse of the rate map: the occupancy at which f(B) first reaches
  // this level's bitrate (e_l in the paper's Ω discussion).
  if (level <= 0) return 0.0;
  const double r_min = view.bitrates.front().bps();
  const double r_max = view.bitrates.back().bps();
  const double rate = view.bitrates[static_cast<std::size_t>(level)].bps();
  const double reservoir = config_.reservoir_fraction * view.buffer_capacity_s;
  const double upper = config_.upper_fraction * view.buffer_capacity_s;
  if (r_max <= r_min) return reservoir;
  const double t = (rate - r_min) / (r_max - r_min);
  return reservoir + t * (upper - reservoir);
}

DataRate BbaAdaptation::measured_throughput(const AdaptationView& view) const {
  if (!view.override_throughput.is_zero()) return view.override_throughput;
  if (samples_.empty()) return DataRate::bits_per_second(0);
  double inv = 0.0;
  for (double s : samples_) {
    if (s <= 0.0) return DataRate::bits_per_second(0);
    inv += 1.0 / s;
  }
  return DataRate::bits_per_second(static_cast<double>(samples_.size()) / inv);
}

int BbaAdaptation::select_level(const AdaptationView& view) {
  const int current = std::max(view.last_level, 0);
  int next = current;

  if (view.last_level < 0) {
    in_startup_ = true;
    return 0;
  }

  const double fB = rate_map_bps(view, view.buffer_level_s);
  const double reservoir = config_.reservoir_fraction * view.buffer_capacity_s;

  if (in_startup_) {
    // BBA-2 startup: step up while chunks download in < 7/8 of their play
    // time; leave startup once the steady map catches up with the level,
    // the reservoir is filled, or the buffer starts decreasing (the
    // filling phase is over — BBA-2's startup-exit rule).
    const bool buffer_decreasing =
        prev_buffer_s_ >= 0.0 && view.buffer_level_s < prev_buffer_s_;
    if (fB >= view.bitrates[static_cast<std::size_t>(current)].bps() ||
        view.buffer_level_s >= reservoir + view.chunk_duration_s ||
        buffer_decreasing) {
      in_startup_ = false;
    } else if (last_download_time_ > kDurationZero &&
               to_seconds(last_download_time_) <
                   0.875 * view.chunk_duration_s) {
      next = std::min(current + 1, view.level_count() - 1);
    }
  }

  if (!in_startup_) {
    // Chunk-map hysteresis on the linear rate map.
    const double cur_rate =
        view.bitrates[static_cast<std::size_t>(current)].bps();
    if (current + 1 < view.level_count() &&
        fB >= view.bitrates[static_cast<std::size_t>(current + 1)].bps()) {
      next = current + 1;
    } else if (fB < cur_rate) {
      // Drop to the highest level the map supports.
      next = 0;
      for (int l = view.level_count() - 1; l >= 0; --l) {
        if (view.bitrates[static_cast<std::size_t>(l)].bps() <= fB) {
          next = l;
          break;
        }
      }
    }
  }

  prev_buffer_s_ = view.buffer_level_s;

  if (config_.cellular_friendly) {
    // BBA-C: cap at the actual network capacity.
    const DataRate capacity = measured_throughput(view);
    if (!capacity.is_zero()) {
      next = std::min(next, view.highest_level_not_above(capacity));
    }
  }
  return next;
}

void BbaAdaptation::reset() {
  samples_.clear();
  in_startup_ = true;
  last_download_time_ = kDurationZero;
  prev_buffer_s_ = -1.0;
}

}  // namespace mpdash
