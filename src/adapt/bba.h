#pragma once
// Buffer-Based Adaptation (Huang et al., SIGCOMM 2014), BBA-2 variant, and
// BBA-C — the paper's cellular-friendly modification (§5.2.2).
//
// Steady state: a linear map f(B) from buffer occupancy to bitrate across
// [reservoir, reservoir + cushion], with the chunk map's hysteresis
// (upgrade only when f(B) clears the next level's rate, downgrade only
// when f(B) falls below the current one). Startup: step up a level
// whenever the last chunk downloaded in under 7/8 of its play time.
//
// BBA-C adds one rule: never select a bitrate above the measured network
// throughput. This removes the r1/r2 oscillation BBA exhibits when the
// capacity falls between two encoding rates (Figure 3) and is what
// unlocks MP-DASH savings at low bandwidth (Figure 7c).

#include <deque>

#include "adapt/adaptation.h"

namespace mpdash {

struct BbaConfig {
  double reservoir_fraction = 0.25;  // of buffer capacity
  // f(B) reaches R_max here. The paper's Ω example ("el=20 to eh=40" on a
  // 40 s buffer) implies the top level's band begins at half the buffer,
  // i.e. the cushion ends at 0.5 x capacity.
  double upper_fraction = 0.50;
  bool cellular_friendly = false;    // BBA-C rate capping
  std::size_t throughput_window = 5; // BBA-C capacity estimate window
};

class BbaAdaptation final : public RateAdaptation {
 public:
  explicit BbaAdaptation(BbaConfig config = {});

  int select_level(const AdaptationView& view) override;
  void on_chunk_downloaded(int level, Bytes bytes, Duration elapsed) override;
  AdaptationCategory category() const override {
    return AdaptationCategory::kBufferBased;
  }
  std::string name() const override {
    return config_.cellular_friendly ? "bba-c" : "bba";
  }
  double buffer_low_threshold_s(const AdaptationView& view,
                                int level) const override;
  void reset() override;

  // f(B) in bps for the given view (exposed for tests).
  double rate_map_bps(const AdaptationView& view, double buffer_s) const;

 private:
  DataRate measured_throughput(const AdaptationView& view) const;

  BbaConfig config_;
  std::deque<double> samples_;  // bps, BBA-C capacity window
  bool in_startup_ = true;
  Duration last_download_time_ = kDurationZero;
  double prev_buffer_s_ = -1.0;
};

}  // namespace mpdash
