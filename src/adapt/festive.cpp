#include "adapt/festive.h"

#include <algorithm>

namespace mpdash {

FestiveAdaptation::FestiveAdaptation(FestiveConfig config) : config_(config) {}

void FestiveAdaptation::on_chunk_downloaded(int level, Bytes bytes,
                                            Duration elapsed) {
  (void)level;
  if (elapsed <= kDurationZero) return;
  samples_.push_back(rate_of(bytes, elapsed).bps());
  if (samples_.size() > config_.window) samples_.pop_front();
}

DataRate FestiveAdaptation::estimate() const {
  if (samples_.empty()) return DataRate::bits_per_second(0);
  double inv = 0.0;
  for (double s : samples_) {
    if (s <= 0.0) return DataRate::bits_per_second(0);
    inv += 1.0 / s;
  }
  return DataRate::bits_per_second(static_cast<double>(samples_.size()) / inv);
}

int FestiveAdaptation::select_level(const AdaptationView& view) {
  // The MP-DASH override gives the multipath-wide estimate; otherwise use
  // the harmonic mean of observed chunk throughputs.
  DataRate est = view.override_throughput.is_zero() ? estimate()
                                                    : view.override_throughput;
  if (est.is_zero()) return 0;

  const int current = std::max(view.last_level, 0);
  const int target = view.highest_level_not_above(est * config_.safety);

  if (view.last_level < 0) {
    // First chunk: conservative start, at most the target.
    stable_count_ = 0;
    last_target_ = target;
    return std::min(target, 0);
  }

  if (target > current) {
    // Stability requirement before upgrading: the target must persist for
    // k chunks, k scaling with the level being left (higher levels switch
    // more reluctantly).
    if (target == last_target_) {
      ++stable_count_;
    } else {
      stable_count_ = 1;
    }
    last_target_ = target;
    const int k = config_.min_stable_chunks + current;
    if (stable_count_ >= k) {
      stable_count_ = 0;
      return current + 1;  // gradual: one level per switch
    }
    return current;
  }

  stable_count_ = 0;
  last_target_ = target;
  if (target < current) return current - 1;  // single-step down
  return current;
}

void FestiveAdaptation::reset() {
  samples_.clear();
  stable_count_ = 0;
  last_target_ = -1;
}

}  // namespace mpdash
