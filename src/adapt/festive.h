#pragma once
// FESTIVE (Jiang, Sekar, Zhang — CoNEXT 2012), the paper's representative
// throughput-based algorithm. Core mechanisms reproduced:
//  * harmonic mean of the last `window` chunk throughputs (robust to
//    one-off spikes),
//  * gradual switch-up: one level at a time, and only after the target
//    has been stable for k chunks (k grows with the level, the paper's
//    stability heuristic),
//  * immediate but single-step switch-down,
//  * a bandwidth safety margin (FESTIVE targets ~85% of estimate).
// The randomized chunk scheduling of the original (a fairness feature for
// many competing players) is out of scope for a single-player session.

#include <deque>

#include "adapt/adaptation.h"

namespace mpdash {

struct FestiveConfig {
  std::size_t window = 20;
  double safety = 0.85;
  int min_stable_chunks = 2;  // base k before the per-level scaling
};

class FestiveAdaptation final : public RateAdaptation {
 public:
  explicit FestiveAdaptation(FestiveConfig config = {});

  int select_level(const AdaptationView& view) override;
  void on_chunk_downloaded(int level, Bytes bytes, Duration elapsed) override;
  AdaptationCategory category() const override {
    return AdaptationCategory::kThroughputBased;
  }
  std::string name() const override { return "festive"; }
  void reset() override;

  DataRate estimate() const;

 private:
  FestiveConfig config_;
  std::deque<double> samples_;  // bps
  int stable_count_ = 0;
  int last_target_ = -1;
};

}  // namespace mpdash
