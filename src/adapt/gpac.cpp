#include "adapt/gpac.h"

namespace mpdash {

GpacAdaptation::GpacAdaptation(double safety) : safety_(safety) {}

int GpacAdaptation::select_level(const AdaptationView& view) {
  // MP-DASH's aggregate estimate, when present, replaces the player's own
  // single-chunk measurement (§5.2.1).
  DataRate estimate = view.override_throughput.is_zero()
                          ? view.last_chunk_throughput
                          : view.override_throughput;
  if (estimate.is_zero()) return 0;  // first chunk: start safe
  return view.highest_level_not_above(estimate * safety_);
}

}  // namespace mpdash
