#pragma once
// GPAC's built-in rate adaptation (the v0.5.2 player the paper extends):
// estimate throughput from the last chunk's download time and pick the
// highest encoding bitrate below it.

#include "adapt/adaptation.h"

namespace mpdash {

class GpacAdaptation final : public RateAdaptation {
 public:
  // `safety` discounts the estimate slightly (GPAC picks strictly below
  // the measured rate).
  explicit GpacAdaptation(double safety = 1.0);

  int select_level(const AdaptationView& view) override;
  AdaptationCategory category() const override {
    return AdaptationCategory::kThroughputBased;
  }
  std::string name() const override { return "gpac"; }

 private:
  double safety_;
};

}  // namespace mpdash
