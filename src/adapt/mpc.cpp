#include "adapt/mpc.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mpdash {

MpcAdaptation::MpcAdaptation(MpcConfig config) : config_(config) {}

void MpcAdaptation::on_chunk_downloaded(int level, Bytes bytes,
                                        Duration elapsed) {
  (void)level;
  if (elapsed <= kDurationZero) return;
  const double actual = rate_of(bytes, elapsed).bps();
  if (last_prediction_bps_ > 0.0 && actual > 0.0) {
    rel_errors_.push_back(std::abs(last_prediction_bps_ - actual) / actual);
    if (rel_errors_.size() > config_.throughput_window) {
      rel_errors_.pop_front();
    }
  }
  samples_.push_back(actual);
  if (samples_.size() > config_.throughput_window) samples_.pop_front();
}

DataRate MpcAdaptation::predicted_throughput() const {
  if (samples_.empty()) return DataRate::bits_per_second(0);
  double inv = 0.0;
  for (double s : samples_) {
    if (s <= 0.0) return DataRate::bits_per_second(0);
    inv += 1.0 / s;
  }
  double pred = static_cast<double>(samples_.size()) / inv;
  if (config_.robust && !rel_errors_.empty()) {
    const double max_err =
        *std::max_element(rel_errors_.begin(), rel_errors_.end());
    pred /= 1.0 + max_err;
  }
  return DataRate::bits_per_second(pred);
}

DataRate MpcAdaptation::min_throughput_for(const AdaptationView& view,
                                           int level) const {
  // A level is sustainable when chunks of it download within their play
  // time: required rate = chunk size / chunk duration.
  if (level < 0 || level >= static_cast<int>(view.next_chunk_sizes.size())) {
    return DataRate::bits_per_second(0);
  }
  return rate_of(view.next_chunk_sizes[static_cast<std::size_t>(level)],
                 seconds(view.chunk_duration_s));
}

double MpcAdaptation::score_sequence(const AdaptationView& view,
                                     const int* seq,
                                     double throughput_Bps) const {
  double buffer_s = view.buffer_level_s;
  double qoe = 0.0;
  int prev = std::max(view.last_level, seq[0]);
  if (view.last_level >= 0) prev = view.last_level;
  for (int h = 0; h < config_.horizon; ++h) {
    const int level = seq[h];
    // Nominal size for lookahead chunks beyond the next one.
    const double size_B =
        h == 0 && level < static_cast<int>(view.next_chunk_sizes.size())
            ? static_cast<double>(
                  view.next_chunk_sizes[static_cast<std::size_t>(level)])
            : view.bitrates[static_cast<std::size_t>(level)].bps() / 8.0 *
                  view.chunk_duration_s;
    const double dl_time = throughput_Bps > 0 ? size_B / throughput_Bps : 1e9;
    double rebuffer = 0.0;
    if (dl_time > buffer_s) {
      rebuffer = dl_time - buffer_s;
      buffer_s = 0.0;
    } else {
      buffer_s -= dl_time;
    }
    buffer_s = std::min(buffer_s + view.chunk_duration_s,
                        view.buffer_capacity_s);
    qoe += static_cast<double>(level + 1);
    qoe -= config_.lambda_switch * std::abs(level - prev);
    qoe -= config_.mu_rebuffer * rebuffer;
    prev = level;
  }
  return qoe;
}

int MpcAdaptation::select_level(const AdaptationView& view) {
  if (view.last_level < 0 || samples_.empty()) return 0;

  DataRate pred = view.override_throughput.is_zero()
                      ? predicted_throughput()
                      : view.override_throughput;
  last_prediction_bps_ = pred.bps();
  if (pred.is_zero()) return 0;
  const double throughput_Bps = pred.bps() / 8.0;

  const int n = view.level_count();
  std::vector<int> seq(static_cast<std::size_t>(config_.horizon), 0);
  std::vector<int> best_seq = seq;
  double best = -1e18;
  // Enumerate all n^H sequences (n=5, H=5 -> 3125: cheap).
  const int total = static_cast<int>(std::pow(n, config_.horizon));
  for (int code = 0; code < total; ++code) {
    int c = code;
    for (int h = 0; h < config_.horizon; ++h) {
      seq[static_cast<std::size_t>(h)] = c % n;
      c /= n;
    }
    const double s = score_sequence(view, seq.data(), throughput_Bps);
    if (s > best) {
      best = s;
      best_seq = seq;
    }
  }
  return best_seq[0];
}

void MpcAdaptation::reset() {
  samples_.clear();
  rel_errors_.clear();
  last_prediction_bps_ = 0.0;
}

}  // namespace mpdash
