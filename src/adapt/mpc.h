#pragma once
// Model Predictive Control adaptation (Yin et al., SIGCOMM 2015) — the
// hybrid throughput+buffer category the paper sketches MP-DASH support
// for in §5.2.3 (left as future work there; implemented here as the
// framework's extension point).
//
// Online variant: over a lookahead horizon H, enumerate level sequences,
// simulate the buffer under the predicted throughput (harmonic mean of
// recent chunks, discounted by the observed prediction error as in
// RobustMPC), score QoE = Σ quality − λ·Σ|switches| − μ·rebuffer, and play
// the first level of the best sequence.

#include <deque>

#include "adapt/adaptation.h"

namespace mpdash {

struct MpcConfig {
  int horizon = 5;
  std::size_t throughput_window = 5;
  double lambda_switch = 1.0;   // per level-step penalty (in quality units)
  double mu_rebuffer = 8.0;     // per rebuffered second
  bool robust = true;           // discount prediction by max recent error
};

class MpcAdaptation final : public RateAdaptation {
 public:
  explicit MpcAdaptation(MpcConfig config = {});

  int select_level(const AdaptationView& view) override;
  void on_chunk_downloaded(int level, Bytes bytes, Duration elapsed) override;
  AdaptationCategory category() const override {
    return AdaptationCategory::kHybrid;
  }
  std::string name() const override { return "mpc"; }
  void reset() override;

  DataRate predicted_throughput() const;
  // Minimum sustained throughput a level needs: used by the MP-DASH
  // adapter's deadline rule for hybrid algorithms (chunk size divided by
  // this gives the deadline, §5.2.3).
  DataRate min_throughput_for(const AdaptationView& view, int level) const;

 private:
  double score_sequence(const AdaptationView& view, const int* seq,
                        double throughput_Bps) const;

  MpcConfig config_;
  std::deque<double> samples_;     // bps
  std::deque<double> rel_errors_;  // |pred - actual| / actual
  double last_prediction_bps_ = 0.0;
};

}  // namespace mpdash
