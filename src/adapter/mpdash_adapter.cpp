#include "adapter/mpdash_adapter.h"

#include <algorithm>

namespace mpdash {

MpDashAdapter::MpDashAdapter(MpDashSocket& socket, RateAdaptation& adaptation,
                             AdapterConfig config)
    : socket_(socket), adaptation_(adaptation), config_(config) {}

DataRate MpDashAdapter::throughput_override(const AdaptationView& view) {
  (void)view;
  // The §3.2 query interface: aggregated estimate across every path. Zero
  // until the transport has samples, in which case algorithms fall back
  // to their own estimates. Smoothed across chunk-level queries so the
  // player sees estimator dynamics comparable to its own chunk-based
  // windows.
  const DataRate raw = socket_.aggregate_throughput();
  if (raw.is_zero()) return raw;
  if (override_ewma_bps_ <= 0.0) {
    override_ewma_bps_ = raw.bps();
  } else {
    override_ewma_bps_ = 0.4 * raw.bps() + 0.6 * override_ewma_bps_;
  }
  return DataRate::bits_per_second(override_ewma_bps_);
}

double MpDashAdapter::phi_seconds(const AdaptationView& view) const {
  if (adaptation_.category() == AdaptationCategory::kBufferBased) {
    // Keep the buffer from pinning at full: capacity minus one chunk.
    return std::max(0.0, view.buffer_capacity_s - view.chunk_duration_s);
  }
  return config_.phi_fraction * view.buffer_capacity_s;
}

double MpDashAdapter::omega_seconds(const AdaptationView& view) const {
  if (adaptation_.category() == AdaptationCategory::kBufferBased) {
    // Ω = e_l(current level) + one chunk duration.
    const int level = std::max(view.last_level, 0);
    const double el = adaptation_.buffer_low_threshold_s(view, level);
    return std::max(0.0, el) + view.chunk_duration_s;
  }
  // Throughput-based/hybrid: consider a window of T seconds of playback;
  // T' is how much content (in time) the lowest bitrate could fetch in T.
  const double T = config_.omega_window_multiple * view.buffer_capacity_s;
  const DataRate est = socket_.aggregate_throughput().is_zero()
                           ? view.last_chunk_throughput
                           : socket_.aggregate_throughput();
  const double lowest_bps = view.bitrates.front().bps();
  const double t_prime = lowest_bps > 0.0 ? T * est.bps() / lowest_bps : 0.0;
  const double omega = std::max(0.0, T - t_prime);
  return std::max(omega, config_.omega_min_fraction * view.buffer_capacity_s);
}

bool MpDashAdapter::should_engage(const AdaptationView& view) const {
  if (view.in_startup) return false;  // initial buffering: vanilla MPTCP
  return view.buffer_level_s >= omega_seconds(view);
}

Duration MpDashAdapter::base_deadline(const AdaptationView& view, int level,
                                      Bytes size) const {
  if (config_.policy == DeadlinePolicy::kDurationBased) {
    return seconds(view.chunk_duration_s);
  }
  // Rate-based: size / nominal average bitrate of the selected level.
  const double bps = view.bitrates[static_cast<std::size_t>(level)].bps();
  return seconds(static_cast<double>(size) * 8.0 / bps);
}

std::optional<Duration> MpDashAdapter::on_chunk_request(
    const AdaptationView& view, int level, Bytes size, int chunk,
    SpanId span) {
  if (!should_engage(view)) {
    ++bypassed_;
    // Don't kill a scheduler still serving earlier engaged chunks (only
    // possible with a prefetching player); sequentially the deque is
    // always empty here, reproducing the unconditional disable.
    if (outstanding_.empty() && socket_.active()) socket_.disable();
    return std::nullopt;
  }
  Duration deadline = base_deadline(view, level, size);
  // Deadline extension in the safe region: buffer above Φ contributes its
  // surplus to the window.
  const double phi = phi_seconds(view);
  if (view.buffer_level_s > phi) {
    deadline += seconds(view.buffer_level_s - phi);
  }
  // Pipelined slack: a prefetched chunk is not needed until every chunk
  // ahead of it in flight has played out, so each one credits the window
  // a chunk duration. Sequentially inflight_ahead is always 0.
  if (view.inflight_ahead > 0) {
    deadline += seconds(view.inflight_ahead * view.chunk_duration_s);
  }
  ++engaged_;
  settle_progress();
  outstanding_.push_back({chunk, size, size, view.now + deadline, span});
  rearm_socket(view.now);
  return deadline;
}

void MpDashAdapter::on_chunk_complete(const AdaptationView& view, int chunk) {
  settle_progress();
  for (auto it = outstanding_.begin(); it != outstanding_.end(); ++it) {
    if (it->chunk == chunk) {
      outstanding_.erase(it);
      break;
    }
  }
  // Bypassed chunks have no entry; with nothing engaged left, release the
  // scheduler (the sequential path: every completion lands here).
  if (outstanding_.empty()) {
    last_settle_transferred_ = -1;
    if (socket_.active()) socket_.disable();
    return;
  }
  rearm_socket(view.now);
}

void MpDashAdapter::settle_progress() {
  // Connection bytes delivered since the last settle pay the outstanding
  // FIFO down front-first — HTTP pipelining delivers responses in issue
  // order, so progress belongs to the oldest open chunk. (Response
  // headers ride along uncounted per chunk; the slight over-payment only
  // makes the re-arm marginally optimistic.)
  const Bytes transferred = socket_.transferred_bytes();
  if (last_settle_transferred_ >= 0) {
    Bytes delivered = std::max<Bytes>(0, transferred - last_settle_transferred_);
    for (Outstanding& o : outstanding_) {
      if (delivered == 0) break;
      const Bytes d = std::min(o.remaining, delivered);
      o.remaining -= d;
      delivered -= d;
    }
  }
  last_settle_transferred_ = transferred;
}

void MpDashAdapter::rearm_socket(TimePoint now) {
  // One MP_DASH_ENABLE covers the outstanding FIFO via its *binding*
  // cumulative requirement: finishing chunk i means delivering every
  // still-missing byte of chunks 1..i (FIFO), so the constraint set is
  // "cum_i bytes by deadline_i" and the scheduler is armed with the one
  // demanding the highest rate. With a single outstanding chunk this is
  // exactly enable(remaining, deadline, span); naively arming with total
  // bytes against the earliest deadline would overstate the requirement
  // and manufacture deadline misses under pipelining.
  Bytes cum = 0;
  Bytes best_bytes = 0;
  Duration best_window = microseconds(1);
  SpanId best_span = outstanding_.front().span;
  double best_rate = -1.0;
  for (const Outstanding& o : outstanding_) {
    cum += o.remaining;
    if (cum <= 0) continue;
    // A re-arm can happen after a deadline already passed (a completion
    // while an older chunk overran); the scheduler demands a positive
    // window, and its next tick will record the miss.
    const Duration window = std::max(o.abs_deadline - now, microseconds(1));
    const double rate = static_cast<double>(cum) / to_seconds(window);
    if (rate > best_rate) {
      best_rate = rate;
      best_bytes = cum;
      best_window = window;
      best_span = o.span;
    }
  }
  // Every outstanding byte already delivered (completions still in
  // flight): leave the scheduler be; it self-completes on its next tick.
  if (best_bytes <= 0) return;
  socket_.enable(best_bytes, best_window, best_span);
}

}  // namespace mpdash
