#include "adapter/mpdash_adapter.h"

#include <algorithm>

namespace mpdash {

MpDashAdapter::MpDashAdapter(MpDashSocket& socket, RateAdaptation& adaptation,
                             AdapterConfig config)
    : socket_(socket), adaptation_(adaptation), config_(config) {}

DataRate MpDashAdapter::throughput_override(const AdaptationView& view) {
  (void)view;
  // The §3.2 query interface: aggregated estimate across every path. Zero
  // until the transport has samples, in which case algorithms fall back
  // to their own estimates. Smoothed across chunk-level queries so the
  // player sees estimator dynamics comparable to its own chunk-based
  // windows.
  const DataRate raw = socket_.aggregate_throughput();
  if (raw.is_zero()) return raw;
  if (override_ewma_bps_ <= 0.0) {
    override_ewma_bps_ = raw.bps();
  } else {
    override_ewma_bps_ = 0.4 * raw.bps() + 0.6 * override_ewma_bps_;
  }
  return DataRate::bits_per_second(override_ewma_bps_);
}

double MpDashAdapter::phi_seconds(const AdaptationView& view) const {
  if (adaptation_.category() == AdaptationCategory::kBufferBased) {
    // Keep the buffer from pinning at full: capacity minus one chunk.
    return std::max(0.0, view.buffer_capacity_s - view.chunk_duration_s);
  }
  return config_.phi_fraction * view.buffer_capacity_s;
}

double MpDashAdapter::omega_seconds(const AdaptationView& view) const {
  if (adaptation_.category() == AdaptationCategory::kBufferBased) {
    // Ω = e_l(current level) + one chunk duration.
    const int level = std::max(view.last_level, 0);
    const double el = adaptation_.buffer_low_threshold_s(view, level);
    return std::max(0.0, el) + view.chunk_duration_s;
  }
  // Throughput-based/hybrid: consider a window of T seconds of playback;
  // T' is how much content (in time) the lowest bitrate could fetch in T.
  const double T = config_.omega_window_multiple * view.buffer_capacity_s;
  const DataRate est = socket_.aggregate_throughput().is_zero()
                           ? view.last_chunk_throughput
                           : socket_.aggregate_throughput();
  const double lowest_bps = view.bitrates.front().bps();
  const double t_prime = lowest_bps > 0.0 ? T * est.bps() / lowest_bps : 0.0;
  const double omega = std::max(0.0, T - t_prime);
  return std::max(omega, config_.omega_min_fraction * view.buffer_capacity_s);
}

bool MpDashAdapter::should_engage(const AdaptationView& view) const {
  if (view.in_startup) return false;  // initial buffering: vanilla MPTCP
  return view.buffer_level_s >= omega_seconds(view);
}

Duration MpDashAdapter::base_deadline(const AdaptationView& view, int level,
                                      Bytes size) const {
  if (config_.policy == DeadlinePolicy::kDurationBased) {
    return seconds(view.chunk_duration_s);
  }
  // Rate-based: size / nominal average bitrate of the selected level.
  const double bps = view.bitrates[static_cast<std::size_t>(level)].bps();
  return seconds(static_cast<double>(size) * 8.0 / bps);
}

std::optional<Duration> MpDashAdapter::on_chunk_request(
    const AdaptationView& view, int level, Bytes size) {
  if (!should_engage(view)) {
    ++bypassed_;
    if (socket_.active()) socket_.disable();
    return std::nullopt;
  }
  Duration deadline = base_deadline(view, level, size);
  // Deadline extension in the safe region: buffer above Φ contributes its
  // surplus to the window.
  const double phi = phi_seconds(view);
  if (view.buffer_level_s > phi) {
    deadline += seconds(view.buffer_level_s - phi);
  }
  ++engaged_;
  socket_.enable(size, deadline);
  return deadline;
}

void MpDashAdapter::on_chunk_complete(const AdaptationView& view) {
  (void)view;
  if (socket_.active()) socket_.disable();
}

}  // namespace mpdash
