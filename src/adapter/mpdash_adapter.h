#pragma once
// The MP-DASH video adapter (paper §5): the thin layer between an
// off-the-shelf DASH rate adaptation and the MP-DASH scheduler.
//
// Per chunk it
//   1. decides whether the scheduler should engage at all (low-buffer
//      threshold Ω, category-specific),
//   2. computes the chunk's deadline (duration-based or rate-based),
//   3. extends the deadline when the buffer sits in the "safe region"
//      above Φ,
//   4. activates MP_DASH_ENABLE for the chunk's bytes,
// and across chunks it exposes the aggregated multipath throughput so
// throughput-based algorithms see the capacity of *all* paths, including
// the ones MP-DASH is deliberately keeping idle.

#include <deque>
#include <optional>

#include "adapt/adaptation.h"
#include "core/mpdash_socket.h"
#include "dash/player.h"

namespace mpdash {

enum class DeadlinePolicy : std::uint8_t {
  kDurationBased,  // D = chunk play duration
  kRateBased,      // D = chunk size / level's average encoding bitrate
};

inline const char* to_string(DeadlinePolicy p) {
  return p == DeadlinePolicy::kDurationBased ? "duration" : "rate";
}

struct AdapterConfig {
  DeadlinePolicy policy = DeadlinePolicy::kRateBased;

  // Throughput-based algorithms (§5.2.1):
  double phi_fraction = 0.8;        // Φ = 0.8 × buffer capacity
  double omega_window_multiple = 2.0;  // T = 2 × buffer duration
  double omega_min_fraction = 0.4;  // Ω ≥ 0.4 × buffer capacity

  // Buffer-based algorithms (§5.2.2) use Φ = capacity − chunk duration and
  // Ω = e_l(current level) + chunk duration; no knobs needed.
};

class MpDashAdapter final : public StreamingHooks {
 public:
  MpDashAdapter(MpDashSocket& socket, RateAdaptation& adaptation,
                AdapterConfig config = {});

  DataRate throughput_override(const AdaptationView& view) override;
  std::optional<Duration> on_chunk_request(const AdaptationView& view,
                                           int level, Bytes size, int chunk,
                                           SpanId span) override;
  void on_chunk_complete(const AdaptationView& view, int chunk) override;

  // Whether the scheduler would engage for this view (Ω rule); public for
  // tests and ablations.
  bool should_engage(const AdaptationView& view) const;
  // Deadline before extension.
  Duration base_deadline(const AdaptationView& view, int level,
                         Bytes size) const;
  // Φ in seconds for this view.
  double phi_seconds(const AdaptationView& view) const;
  // Ω in seconds for this view.
  double omega_seconds(const AdaptationView& view) const;

  int chunks_engaged() const { return engaged_; }
  int chunks_bypassed() const { return bypassed_; }
  std::size_t outstanding_engaged() const { return outstanding_.size(); }
  const AdapterConfig& config() const { return config_; }

 private:
  // An engaged chunk still in flight. A sequential player keeps at most
  // one of these; a pipelined one accumulates a window's worth, and the
  // single underlying MP_DASH_ENABLE transfer is re-armed to cover the
  // binding cumulative requirement across the FIFO of outstanding chunks.
  struct Outstanding {
    int chunk = 0;
    Bytes size = 0;
    Bytes remaining = 0;  // not yet delivered (FIFO pay-down, see settle)
    TimePoint abs_deadline = kTimeZero;
    SpanId span = 0;
  };

  void settle_progress();
  void rearm_socket(TimePoint now);

  MpDashSocket& socket_;
  RateAdaptation& adaptation_;
  AdapterConfig config_;
  int engaged_ = 0;
  int bypassed_ = 0;
  // Smoothed aggregate (EWMA over per-chunk queries): rate adaptations
  // tuned for chunk-granularity estimators (FESTIVE's harmonic window)
  // would overreact to the transport estimator's 100 ms dynamics.
  double override_ewma_bps_ = 0.0;
  std::deque<Outstanding> outstanding_;  // issue order (front = oldest)
  // Connection-level transferred_bytes() at the last settle; -1 = no
  // baseline (nothing outstanding). Progress between settles pays the
  // outstanding FIFO down front-first (HTTP pipelining delivers in order).
  Bytes last_settle_transferred_ = -1;
};

}  // namespace mpdash
