#include "analysis/analyzer.h"

#include <algorithm>
#include <map>

namespace mpdash {

const PathUsage* AnalysisReport::path(int id) const {
  for (const auto& p : paths) {
    if (p.path_id == id) return &p;
  }
  return nullptr;
}

namespace {

constexpr int kMaxPaths = 8;

void accumulate_path_usage(const std::vector<TraceRecord>& trace,
                           AnalysisReport& report) {
  std::map<int, PathUsage> usage;
  for (const auto& r : trace) {
    if (!r.is_packet()) continue;
    auto& u = usage[r.path_id];
    u.path_id = r.path_id;
    switch (r.type) {
      case TraceType::kPacketDeliver:
        ++u.packets;
        if (r.is_downlink()) {
          u.wire_bytes_down += r.wire_size;
          if (r.kind == PacketKind::kData) u.data_bytes_down += r.payload_len;
        } else {
          u.wire_bytes_up += r.wire_size;
        }
        break;
      case TraceType::kPacketDrop:
        ++u.drops;
        break;
      default:  // kPacketSend
        if (r.retransmit && r.is_downlink()) ++u.retransmissions;
        break;
    }
  }
  for (auto& [id, u] : usage) report.paths.push_back(u);
}

// Reconstructs HTTP responses from the delivered downlink data stream.
void reconstruct_chunks(const std::vector<TraceRecord>& trace,
                        const std::vector<PlayerEvent>& events,
                        AnalysisReport& report) {
  // Unique delivered downlink data packets in data-sequence order.
  std::map<std::uint64_t, const TraceRecord*> stream;
  for (const auto& r : trace) {
    if (r.type != TraceType::kPacketDeliver || !r.is_downlink() ||
        r.kind != PacketKind::kData || r.payload_len == 0) {
      continue;
    }
    stream.emplace(r.data_seq, &r);  // first delivery wins (dup = retx)
  }

  // Requested (level, chunk) pairs in order, from the player's log.
  std::vector<std::pair<int, int>> requested;
  for (const auto& ev : events) {
    if (ev.type == PlayerEventType::kChunkRequest) {
      requested.emplace_back(ev.level, ev.chunk);
    }
  }
  std::size_t next_request = 0;

  ChunkDelivery current;
  bool is_media = false;
  const TraceRecord* feeding = nullptr;
  bool started = false;

  HttpStreamParser parser(
      HttpStreamParser::Mode::kResponses,
      HttpStreamParser::Callbacks{
          .on_request = nullptr,
          .on_response_head =
              [&](const HttpResponse& head) {
                current = ChunkDelivery{};
                current.index = static_cast<int>(report.chunks.size());
                started = false;
                const auto type = head.header("Content-Type");
                is_media = type && *type == "video/iso.segment";
                if (is_media && next_request < requested.size()) {
                  current.level = requested[next_request].first;
                  current.chunk = requested[next_request].second;
                  ++next_request;
                }
              },
          .on_body =
              [&](Bytes count, const std::string&) {
                current.total_bytes += count;
                if (feeding && feeding->path_id >= 0 &&
                    feeding->path_id < kMaxPaths) {
                  current.bytes_per_path[feeding->path_id] += count;
                }
                if (feeding) {
                  if (!started) {
                    current.start = feeding->at;
                    started = true;
                  }
                  current.end = feeding->at;
                }
              },
          .on_message_complete =
              [&] {
                if (is_media) report.chunks.push_back(current);
              },
          .on_error = nullptr});

  for (const auto& [seq, rec] : stream) {
    feeding = rec;
    parser.consume(rec->segments);
  }
  feeding = nullptr;
}

void collect_player_stats(const std::vector<PlayerEvent>& events,
                          AnalysisReport& report) {
  StallInterval open{};
  bool in_stall = false;
  for (const auto& ev : events) {
    report.session_length = std::max(report.session_length, Duration(ev.at));
    switch (ev.type) {
      case PlayerEventType::kStallStart:
        open.start = ev.at;
        in_stall = true;
        break;
      case PlayerEventType::kStallEnd:
        if (in_stall) {
          open.end = ev.at;
          report.stalls.push_back(open);
          in_stall = false;
        }
        break;
      case PlayerEventType::kQualitySwitch:
        ++report.quality_switches;
        break;
      default:
        break;
    }
  }
}

}  // namespace

AnalysisReport analyze(const std::vector<TraceRecord>& trace,
                       const std::vector<PlayerEvent>& events,
                       const AnalyzerConfig& config) {
  AnalysisReport report;
  accumulate_path_usage(trace, report);
  reconstruct_chunks(trace, events, report);
  collect_player_stats(events, report);
  for (const auto& r : trace) {
    report.session_length = std::max(report.session_length, Duration(r.at));
  }

  // Radio energy from the packet trace (delivered wire bytes, as seen at
  // the client's radios).
  std::vector<ByteEvent> wifi_ev, lte_ev;
  for (const auto& r : trace) {
    if (r.type != TraceType::kPacketDeliver) continue;
    ByteEvent ev{r.at, r.wire_size, r.is_downlink()};
    if (r.path_id == config.wifi_path_id) {
      wifi_ev.push_back(ev);
    } else if (r.path_id == config.cellular_path_id) {
      lte_ev.push_back(ev);
    }
  }
  report.energy = price_session(config.device, wifi_ev, lte_ev,
                                report.session_length);
  return report;
}

ThroughputSeries throughput_series(const std::vector<TraceRecord>& trace,
                                   Duration interval) {
  ThroughputSeries out;
  std::map<std::int64_t, std::array<Bytes, kMaxPaths + 1>> buckets;
  for (const auto& r : trace) {
    if (r.type != TraceType::kPacketDeliver || !r.is_downlink()) continue;
    auto& b = buckets[r.at.count() / interval.count()];
    if (r.path_id >= 0 && r.path_id < kMaxPaths) {
      b[static_cast<std::size_t>(r.path_id)] += r.wire_size;
    }
    b[kMaxPaths] += r.wire_size;
  }
  const double dt = to_seconds(interval);
  for (const auto& [idx, bytes] : buckets) {
    const double t = static_cast<double>(idx) * dt;
    for (int p = 0; p < kMaxPaths; ++p) {
      if (bytes[static_cast<std::size_t>(p)] > 0) {
        out.per_path[p].emplace_back(
            t, static_cast<double>(bytes[static_cast<std::size_t>(p)]) * 8.0 /
                   dt / 1e6);
      }
    }
    out.total.emplace_back(
        t, static_cast<double>(bytes[kMaxPaths]) * 8.0 / dt / 1e6);
  }
  return out;
}

}  // namespace mpdash
