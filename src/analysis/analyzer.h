#pragma once
// The Multipath Video Analysis Tool (paper §6): correlates a packet trace
// with a player event log across protocol layers (MPTCP data sequencing,
// HTTP framing, DASH chunk structure) to produce per-chunk delivery
// breakdowns, path utilization, rebuffering and switch statistics, and
// radio energy estimates.

#include <vector>

#include "dash/events.h"
#include "energy/accounting.h"
#include "http/parser.h"
#include "telemetry/trace_sink.h"

namespace mpdash {

// One reconstructed HTTP response (== one chunk or the manifest).
struct ChunkDelivery {
  int index = 0;           // order on the wire
  int chunk = -1;          // DASH chunk number (-1: manifest/unknown)
  int level = -1;          // bitrate level from the event log
  Bytes total_bytes = 0;   // response body bytes
  Bytes bytes_per_path[8] = {};  // payload attribution by path id
  TimePoint start = kTimeZero;   // first payload byte delivered
  TimePoint end = kTimeZero;     // last payload byte delivered

  double cellular_fraction(int cellular_path_id) const {
    return total_bytes > 0 ? static_cast<double>(
                                 bytes_per_path[cellular_path_id]) /
                                 static_cast<double>(total_bytes)
                           : 0.0;
  }
};

struct PathUsage {
  int path_id = 0;
  Bytes data_bytes_down = 0;   // delivered data payload
  Bytes wire_bytes_down = 0;   // incl. headers + retransmissions
  Bytes wire_bytes_up = 0;     // acks + requests
  std::size_t packets = 0;
  std::size_t drops = 0;
  std::size_t retransmissions = 0;

  Bytes wire_bytes_total() const { return wire_bytes_down + wire_bytes_up; }
};

struct StallInterval {
  TimePoint start = kTimeZero;
  TimePoint end = kTimeZero;
};

struct AnalysisReport {
  std::vector<ChunkDelivery> chunks;
  std::vector<PathUsage> paths;
  std::vector<StallInterval> stalls;
  int quality_switches = 0;
  Duration session_length = kDurationZero;
  SessionEnergy energy;

  const PathUsage* path(int id) const;
};

struct AnalyzerConfig {
  int wifi_path_id = 0;
  int cellular_path_id = 1;
  DeviceEnergyProfile device;
};

// Runs the full cross-layer analysis on a telemetry trace (packet records
// drive the network half; non-packet records are ignored, so a full mixed
// trace from TraceCollector/RingBufferSink can be passed as-is).
AnalysisReport analyze(const std::vector<TraceRecord>& trace,
                       const std::vector<PlayerEvent>& events,
                       const AnalyzerConfig& config);

// Per-interval path throughput series (for Figure 1/6/11-style plots):
// returns (time_s, mbps) points per path plus the aggregate.
struct ThroughputSeries {
  std::vector<std::pair<double, double>> total;
  std::vector<std::pair<double, double>> per_path[8];
};
ThroughputSeries throughput_series(const std::vector<TraceRecord>& trace,
                                   Duration interval = milliseconds(500));

}  // namespace mpdash
