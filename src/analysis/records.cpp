#include "analysis/records.h"

namespace mpdash {

void PacketRecorder::add(RecordOp op, int link_id, TimePoint at,
                         const Packet& p) {
  PacketRecord r;
  r.at = at;
  r.op = op;
  r.link_id = link_id;
  r.path_id = p.path_id;
  r.kind = p.kind;
  r.wire_size = p.wire_size;
  r.payload_len = p.payload_len;
  r.data_seq = p.data_seq;
  r.retransmit = p.is_retransmit;
  if (capture_payload_ && op == RecordOp::kDeliver &&
      p.kind == PacketKind::kData) {
    r.segments = p.segments;
  }
  records_.push_back(std::move(r));
}

void PacketRecorder::on_send(int link_id, TimePoint at, const Packet& p) {
  add(RecordOp::kSend, link_id, at, p);
}

void PacketRecorder::on_deliver(int link_id, TimePoint at, const Packet& p) {
  add(RecordOp::kDeliver, link_id, at, p);
}

void PacketRecorder::on_drop(int link_id, TimePoint at, const Packet& p) {
  add(RecordOp::kDrop, link_id, at, p);
}

}  // namespace mpdash
