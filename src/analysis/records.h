#pragma once
// Packet-trace recording: the network half of the cross-layer analysis
// tool's input (the paper feeds it tcpdump traces; we tap the simulated
// links).

#include <vector>

#include "link/link.h"
#include "link/packet.h"
#include "mptcp/wire_data.h"

namespace mpdash {

enum class RecordOp : std::uint8_t { kSend, kDeliver, kDrop };

struct PacketRecord {
  TimePoint at = kTimeZero;
  RecordOp op = RecordOp::kSend;
  int link_id = 0;   // even = downlink, odd = uplink (see NetPath)
  int path_id = 0;
  PacketKind kind = PacketKind::kData;
  Bytes wire_size = 0;
  Bytes payload_len = 0;
  std::uint64_t data_seq = 0;
  bool retransmit = false;
  // Payload content (captured only when the recorder is configured to —
  // needed for HTTP reconstruction).
  WireData segments;

  bool is_downlink() const { return link_id % 2 == 0; }
};

// PacketTap implementation that appends to an in-memory trace.
class PacketRecorder final : public PacketTap {
 public:
  explicit PacketRecorder(bool capture_payload = true)
      : capture_payload_(capture_payload) {}

  void on_send(int link_id, TimePoint at, const Packet& p) override;
  void on_deliver(int link_id, TimePoint at, const Packet& p) override;
  void on_drop(int link_id, TimePoint at, const Packet& p) override;

  const std::vector<PacketRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  void add(RecordOp op, int link_id, TimePoint at, const Packet& p);

  bool capture_payload_;
  std::vector<PacketRecord> records_;
};

}  // namespace mpdash
