#include "analysis/render.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/table.h"

namespace mpdash {

std::string render_chunk_timeline(const AnalysisReport& report,
                                  RenderConfig config) {
  std::ostringstream out;
  if (report.chunks.empty()) return "(no chunks)\n";
  const double total_s = to_seconds(report.session_length);
  if (total_s <= 0.0) return "(empty session)\n";

  const int width = std::max(config.width, 20);
  // Row 1: bitrate level digit per column; row 2: cellular share.
  std::string levels(static_cast<std::size_t>(width), ' ');
  std::string cellular(static_cast<std::size_t>(width), ' ');

  auto col = [&](TimePoint t) {
    int c = static_cast<int>(to_seconds(t) / total_s * (width - 1));
    return std::clamp(c, 0, width - 1);
  };

  for (const auto& ch : report.chunks) {
    const int a = col(ch.start);
    const int b = std::max(a, col(ch.end));
    const char glyph =
        ch.level >= 0 ? static_cast<char>('1' + std::min(ch.level, 8)) : '?';
    const double frac = ch.cellular_fraction(config.cellular_path_id);
    for (int c = a; c <= b; ++c) {
      levels[static_cast<std::size_t>(c)] = glyph;
      // Mark the leading fraction of the bar as cellular, like the black
      // component in the paper's figure.
      const double pos = b > a ? static_cast<double>(c - a) /
                                     static_cast<double>(b - a + 1)
                               : 0.0;
      cellular[static_cast<std::size_t>(c)] = pos < frac ? '#' : '.';
    }
  }

  out << "chunk level (digit = level+1, gap = idle):\n  " << levels << "\n";
  out << "cellular share ('#' portion of each bar):\n  " << cellular << "\n";
  out << "timeline: 0s .. " << TextTable::num(total_s, 1) << "s, "
      << report.chunks.size() << " chunks, " << report.quality_switches
      << " switches, " << report.stalls.size() << " stalls\n";
  return out.str();
}

std::string render_path_summary(const AnalysisReport& report) {
  TextTable table({"path", "data MB (down)", "wire MB (down)", "wire MB (up)",
                   "packets", "drops", "retx"});
  for (const auto& p : report.paths) {
    table.add_row({std::to_string(p.path_id),
                   TextTable::num(static_cast<double>(p.data_bytes_down) / 1e6),
                   TextTable::num(static_cast<double>(p.wire_bytes_down) / 1e6),
                   TextTable::num(static_cast<double>(p.wire_bytes_up) / 1e6),
                   std::to_string(p.packets), std::to_string(p.drops),
                   std::to_string(p.retransmissions)});
  }
  return table.render();
}

}  // namespace mpdash
