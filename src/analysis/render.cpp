#include "analysis/render.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <string_view>

#include "util/table.h"

namespace mpdash {

std::string render_chunk_timeline(const AnalysisReport& report,
                                  RenderConfig config) {
  std::ostringstream out;
  if (report.chunks.empty()) return "(no chunks)\n";
  const double total_s = to_seconds(report.session_length);
  if (total_s <= 0.0) return "(empty session)\n";

  const int width = std::max(config.width, 20);
  // Row 1: bitrate level digit per column; row 2: cellular share.
  std::string levels(static_cast<std::size_t>(width), ' ');
  std::string cellular(static_cast<std::size_t>(width), ' ');

  auto col = [&](TimePoint t) {
    int c = static_cast<int>(to_seconds(t) / total_s * (width - 1));
    return std::clamp(c, 0, width - 1);
  };

  for (const auto& ch : report.chunks) {
    const int a = col(ch.start);
    const int b = std::max(a, col(ch.end));
    const char glyph =
        ch.level >= 0 ? static_cast<char>('1' + std::min(ch.level, 8)) : '?';
    const double frac = ch.cellular_fraction(config.cellular_path_id);
    for (int c = a; c <= b; ++c) {
      levels[static_cast<std::size_t>(c)] = glyph;
      // Mark the leading fraction of the bar as cellular, like the black
      // component in the paper's figure.
      const double pos = b > a ? static_cast<double>(c - a) /
                                     static_cast<double>(b - a + 1)
                               : 0.0;
      cellular[static_cast<std::size_t>(c)] = pos < frac ? '#' : '.';
    }
  }

  out << "chunk level (digit = level+1, gap = idle):\n  " << levels << "\n";
  out << "cellular share ('#' portion of each bar):\n  " << cellular << "\n";
  out << "timeline: 0s .. " << TextTable::num(total_s, 1) << "s, "
      << report.chunks.size() << " chunks, " << report.quality_switches
      << " switches, " << report.stalls.size() << " stalls\n";
  return out.str();
}

std::string render_flame(const SpanModel& model, const FlameModel& flame,
                         int width) {
  std::ostringstream out;
  const double total_s = to_seconds(model.trace_end);
  if (model.spans.empty() || total_s <= 0.0) return "(no spans)\n";

  width = std::max(width, 20);
  constexpr int kGutter = 24;
  const auto col = [&](TimePoint t) {
    const int c =
        static_cast<int>(to_seconds(t) / total_s * (width - 1));
    return std::clamp(c, 0, width - 1);
  };
  char head[64];
  std::snprintf(head, sizeof head,
                "flame: %zu spans over %.3f s (%d cols, %.3f s/col)\n",
                model.spans.size(), total_s,
                width, total_s / width);
  out << head;

  const auto emit = [&](const std::string& label, const std::string& axis,
                        const std::string& tail) {
    char gut[kGutter + 1];
    std::snprintf(gut, sizeof gut, "%-*.*s", kGutter, kGutter,
                  label.c_str());
    out << gut << axis;
    if (!tail.empty()) out << "  " << tail;
    out << "\n";
  };

  for (std::size_t i = 0; i < model.spans.size(); ++i) {
    const ChunkTimeline& t = model.spans[i];
    const SpanDetail& d = flame.details[i];
    const int a = col(t.start);
    const int b = std::max(a, col(t.end));

    // Span bar: '.' waiting, '=' while bytes flowed, '!' deadline column.
    std::string bar(static_cast<std::size_t>(width), ' ');
    for (int c = a; c <= b; ++c) bar[static_cast<std::size_t>(c)] = '.';
    if (t.have_bytes) {
      const int b0 = col(t.first_byte), b1 = col(t.last_byte);
      for (int c = b0; c <= b1 && c <= b; ++c) {
        bar[static_cast<std::size_t>(c)] = '=';
      }
    }
    if (t.deadline_s > 0.0) {
      const int dcol = col(t.start + seconds(t.deadline_s));
      if (dcol >= a && dcol <= b) bar[static_cast<std::size_t>(dcol)] = '!';
    }

    char label[64];
    std::snprintf(label, sizeof label, "span %llu %s %d L%d",
                  static_cast<unsigned long long>(t.span),
                  t.name && std::string_view(t.name) == "manifest"
                      ? "manifest"
                      : "chunk",
                  t.chunk, t.level);
    std::string tail = t.status ? t.status : "open";
    if (t.cause != MissCause::kNone) {
      tail += std::string(" <- ") + to_string(t.cause);
      if (t.dominant_fault_kind != nullptr) {
        tail += std::string(" (") + t.dominant_fault_kind + ")";
      }
    }
    emit(label, bar, tail);

    // HTTP attempts: one nested row, attempts in sequence with their
    // retry/backoff gaps ('~' between a timeout and the next request).
    if (!d.attempts.empty()) {
      std::string http(static_cast<std::size_t>(width), ' ');
      for (std::size_t k = 0; k < d.attempts.size(); ++k) {
        const HttpAttempt& at = d.attempts[k];
        const int s = col(at.start);
        const int e = std::max(s, col(at.end));
        for (int c = s; c <= e; ++c) http[static_cast<std::size_t>(c)] = '-';
        if (k + 1 < d.attempts.size()) {
          // Backoff gap runs from this attempt's close to the next send.
          const int n = col(d.attempts[k + 1].start);
          for (int c = e + 1; c < n; ++c) {
            http[static_cast<std::size_t>(c)] = '~';
          }
        }
        http[static_cast<std::size_t>(s)] =
            static_cast<char>('1' + std::min(at.attempt, 8));
        char end_glyph = '>';
        if (at.outcome != nullptr) {
          end_glyph = at.outcome[0] == 'r'   ? 'o'
                      : at.outcome[0] == 't' ? 'x'
                                             : 'g';
        }
        if (e > s || at.outcome != nullptr) {
          http[static_cast<std::size_t>(e)] = end_glyph;
        }
      }
      char http_label[32];
      std::snprintf(http_label, sizeof http_label, "  http x%zu",
                    d.attempts.size());
      emit(http_label, http, t.http_retries > 0
                                 ? std::to_string(t.http_retries) +
                                       " retries"
                                 : "");
    }

    // Per-path transmit activity (path-id order), each followed by its
    // subflow congestion row when the trace carried kSubflowUpdate
    // records (cwnd forward-filled between samples, glyph ∝ cwnd).
    std::set<int> span_paths;
    for (const auto& [path, intervals] : d.path_activity) {
      span_paths.insert(path);
    }
    for (const auto& [path, samples] : d.subflow) span_paths.insert(path);
    for (const int path : span_paths) {
      const auto act_it = d.path_activity.find(path);
      if (act_it != d.path_activity.end()) {
        std::string act(static_cast<std::size_t>(width), ' ');
        for (const ActivityInterval& iv : act_it->second) {
          const int s = col(iv.first);
          const int e = std::max(s, col(iv.second));
          for (int c = s; c <= e; ++c) {
            act[static_cast<std::size_t>(c)] = '=';
          }
        }
        const auto bytes_it = t.bytes_by_path.find(path);
        emit("  path " + std::to_string(path), act,
             bytes_it != t.bytes_by_path.end()
                 ? std::to_string(static_cast<long long>(bytes_it->second)) +
                       " B"
                 : "");
      }
      const auto sf_it = d.subflow.find(path);
      if (sf_it == d.subflow.end() || sf_it->second.empty()) continue;
      const std::vector<SubflowSample>& samples = sf_it->second;
      double cwnd_min = samples[0].cwnd, cwnd_max = samples[0].cwnd;
      double rtt_min = samples[0].srtt_ms, rtt_max = samples[0].srtt_ms;
      for (const SubflowSample& s : samples) {
        cwnd_min = std::min(cwnd_min, s.cwnd);
        cwnd_max = std::max(cwnd_max, s.cwnd);
        rtt_min = std::min(rtt_min, s.srtt_ms);
        rtt_max = std::max(rtt_max, s.srtt_ms);
      }
      static constexpr char kRamp[] = " .:-=+*#";
      const auto glyph = [&](double cwnd) {
        const int g =
            cwnd_max > 0.0
                ? static_cast<int>(cwnd / cwnd_max * 7.0)
                : 0;
        return kRamp[std::clamp(g, 1, 7)];
      };
      std::string sf(static_cast<std::size_t>(width), ' ');
      for (std::size_t k = 0; k < samples.size(); ++k) {
        const int s = col(samples[k].at);
        const int e = k + 1 < samples.size()
                          ? std::max(s, col(samples[k + 1].at) - 1)
                          : s;
        for (int c = s; c <= e; ++c) {
          sf[static_cast<std::size_t>(c)] = glyph(samples[k].cwnd);
        }
      }
      char sf_tail[96];
      std::snprintf(sf_tail, sizeof sf_tail,
                    "cwnd %.0f..%.0f rtt %.0f..%.0f ms", cwnd_min,
                    cwnd_max, rtt_min, rtt_max);
      emit("  sf " + std::to_string(path), sf, sf_tail);
    }
  }
  return out.str();
}

std::string render_path_summary(const AnalysisReport& report) {
  TextTable table({"path", "data MB (down)", "wire MB (down)", "wire MB (up)",
                   "packets", "drops", "retx"});
  for (const auto& p : report.paths) {
    table.add_row({std::to_string(p.path_id),
                   TextTable::num(static_cast<double>(p.data_bytes_down) / 1e6),
                   TextTable::num(static_cast<double>(p.wire_bytes_down) / 1e6),
                   TextTable::num(static_cast<double>(p.wire_bytes_up) / 1e6),
                   std::to_string(p.packets), std::to_string(p.drops),
                   std::to_string(p.retransmissions)});
  }
  return table.render();
}

}  // namespace mpdash
