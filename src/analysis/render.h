#pragma once
// ASCII rendering of the analysis tool's chunk timeline — the textual
// counterpart of the paper's Figure 8 visualization: one bar per chunk,
// width = download duration, glyph = bitrate level, '#' overlay = the
// fraction delivered over cellular.

#include <string>

#include "analysis/analyzer.h"

namespace mpdash {

struct RenderConfig {
  int width = 100;            // columns for the whole session
  int cellular_path_id = 1;
};

std::string render_chunk_timeline(const AnalysisReport& report,
                                  RenderConfig config = {});

// Compact per-path usage summary table.
std::string render_path_summary(const AnalysisReport& report);

}  // namespace mpdash
