#pragma once
// ASCII rendering of the analysis tool's chunk timeline — the textual
// counterpart of the paper's Figure 8 visualization: one bar per chunk,
// width = download duration, glyph = bitrate level, '#' overlay = the
// fraction delivered over cellular.

#include <string>

#include "analysis/analyzer.h"
#include "analysis/spans.h"

namespace mpdash {

struct RenderConfig {
  int width = 100;            // columns for the whole session
  int cellular_path_id = 1;
};

std::string render_chunk_timeline(const AnalysisReport& report,
                                  RenderConfig config = {});

// Compact per-path usage summary table.
std::string render_path_summary(const AnalysisReport& report);

// Flame/Gantt view of a span model on one shared time axis: every chunk
// span is a bar positioned at its wall-clock window (so pipelined spans
// visibly overlap), with its HTTP attempts and per-path transmit
// activity nested underneath:
//
//   span 7 chunk 4 L1      ........====!...=  abandoned <- retry-backoff
//     http x3              1---x~~2--x~~~3-g
//     path 0                  == ==    ===
//     path 1                    ===
//
// Span bar: '.' in flight, '=' bytes flowing, '!' deadline column.
// HTTP row: digit = attempt start, '-' in flight, '~' retry backoff,
// 'o' response, 'x' timeout, 'g' gave up, '>' still open at trace end.
// Path rows: '=' where that path delivered payload for this span.
// Rows without data (no HTTP records, no payload) are omitted, so older
// span-only traces (golden fixtures) still render as pure Gantt bars.
std::string render_flame(const SpanModel& model, const FlameModel& flame,
                         int width = 72);

}  // namespace mpdash
