#include "analysis/rollup.h"

#include <charconv>
#include <map>

#include "util/csv.h"

namespace mpdash {

std::string shortest_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

namespace {

std::string cell(const std::string& s) { return CsvWriter::escape(s); }

std::string num(double v) { return shortest_double(v); }

std::string num(long long v) { return std::to_string(v); }

}  // namespace

std::string spans_to_csv(const SpanModel& model) {
  std::string out =
      "span,name,chunk,level,start_s,end_s,elapsed_s,deadline_s,"
      "status,missed,cause,requested_bytes,delivered_bytes,"
      "preferred_bytes,costly_bytes,http_timeouts,http_retries,"
      "backoff_s,chunk_retries,stalls,path_fault_s,server_fault_s,"
      "fault_share_s,max_concurrent_spans,dominant_fault\n";
  for (const ChunkTimeline& t : model.spans) {
    Bytes preferred = 0, costly = 0;
    for (const auto& [p, bytes] : t.bytes_by_path) {
      (p == 0 ? preferred : costly) += bytes;
    }
    out += std::to_string(t.span);
    out += ',' + cell(t.name ? t.name : "");
    out += ',' + std::to_string(t.chunk);
    out += ',' + std::to_string(t.level);
    out += ',' + num(to_seconds(t.start));
    out += ',' + num(to_seconds(t.end));
    out += ',' + num(t.elapsed_s());
    out += ',' + num(t.deadline_s);
    out += ',' + cell(t.status ? t.status : "open");
    out += t.cause != MissCause::kNone ? ",1," : ",0,";
    out += to_string(t.cause);
    out += ',' + num(static_cast<long long>(t.requested_bytes));
    out += ',' + num(static_cast<long long>(t.delivered_bytes));
    out += ',' + num(static_cast<long long>(preferred));
    out += ',' + num(static_cast<long long>(costly));
    out += ',' + std::to_string(t.http_timeouts);
    out += ',' + std::to_string(t.http_retries);
    out += ',' + num(t.backoff_s);
    out += ',' + std::to_string(t.chunk_retries);
    out += ',' + std::to_string(t.stalls_started);
    out += ',' + num(t.path_fault_overlap_s);
    out += ',' + num(t.server_fault_overlap_s);
    out += ',' + num(t.fault_overlap_share_s);
    out += ',' + std::to_string(t.max_concurrent_spans);
    out += ',' + cell(t.dominant_fault_kind ? t.dominant_fault_kind : "");
    out += '\n';
  }
  return out;
}

std::string rollup_source_key(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot + 1 < base.size()) {
    const std::string tail = base.substr(dot + 1);
    if (tail.find_first_not_of("0123456789") == std::string::npos) {
      return tail;
    }
  }
  return base;
}

RollupRow rollup_span_model(const SpanModel& model, std::string key) {
  RollupRow row;
  row.key = std::move(key);
  row.spans = model.spans.size();
  row.counts = attribution_counts(model);
  for (const auto& [cause, count] : row.counts) row.misses += count;
  return row;
}

const char kRollupCsvHeader[] =
    "key,spans,misses,miss_rate,fault_blackout,retry_backoff,"
    "scheduler_late,bandwidth_shortfall,unknown,fault_blackout_rate,"
    "retry_backoff_rate,scheduler_late_rate,bandwidth_shortfall_rate,"
    "unknown_rate\n";

std::string rollup_row_csv(const RollupRow& row) {
  std::string out = cell(row.key);
  out += ',' + std::to_string(row.spans);
  out += ',' + std::to_string(row.misses);
  out += ',' + num(row.miss_rate());
  // Both passes walk kMissCausePrecedence via row.counts, so the column
  // order matches kRollupCsvHeader by construction.
  for (const auto& [cause, count] : row.counts) {
    out += ',' + std::to_string(count);
  }
  for (const auto& [cause, count] : row.counts) {
    out += ',' + num(row.spans > 0 ? static_cast<double>(count) /
                                         static_cast<double>(row.spans)
                                   : 0.0);
  }
  out += '\n';
  return out;
}

std::string rollup_to_csv(const std::vector<RollupRow>& rows) {
  std::string out = kRollupCsvHeader;
  RollupRow total;
  total.key = "total";
  for (const MissCause c : kMissCausePrecedence) total.counts.emplace_back(c, 0);
  for (const RollupRow& row : rows) {
    out += rollup_row_csv(row);
    total.spans += row.spans;
    total.misses += row.misses;
    for (auto& [cause, count] : total.counts) {
      count += count_for(row.counts, cause);
    }
  }
  out += rollup_row_csv(total);
  return out;
}

const char kAttribSeriesHeader[] =
    "key,bucket_s,spans_ended,misses,fault_blackout,retry_backoff,"
    "scheduler_late,bandwidth_shortfall,unknown\n";

std::string attribution_series_csv(const SpanModel& model, double bucket_s,
                                   const std::string& key) {
  if (bucket_s <= 0.0) return {};
  struct Bucket {
    int ended = 0;
    int misses = 0;
    std::map<MissCause, int> by_cause;
  };
  std::map<long long, Bucket> buckets;  // keyed by bucket index
  for (const ChunkTimeline& t : model.spans) {
    const long long idx =
        static_cast<long long>(to_seconds(t.end) / bucket_s);
    Bucket& b = buckets[idx];
    ++b.ended;
    if (t.cause != MissCause::kNone) {
      ++b.misses;
      ++b.by_cause[t.cause];
    }
  }
  std::string out;
  const std::string prefix = cell(key);
  for (const auto& [idx, b] : buckets) {
    out += prefix;
    out += ',' + num(static_cast<double>(idx) * bucket_s);
    out += ',' + std::to_string(b.ended);
    out += ',' + std::to_string(b.misses);
    for (const MissCause c : kMissCausePrecedence) {
      const auto it = b.by_cause.find(c);
      out += ',' + std::to_string(it == b.by_cause.end() ? 0 : it->second);
    }
    out += '\n';
  }
  return out;
}

}  // namespace mpdash
