#pragma once
// Campaign-scale attribution roll-ups: aggregate the per-span attribution
// of many traces (a whole chaos campaign, a field study) into per-cause
// miss rates keyed by seed/config — the layer that turns 50 per-seed
// post-mortems into one regression-attribution table. Also home of the
// RFC-4180 per-span CSV export shared by `mpdash_trace --csv`, and of the
// time-bucketed attribution series the field benches emit per location.
//
// Every formatter here renders doubles with the shortest round-trip
// representation (same contract as the JSONL writer), so CSV artifacts
// never lose precision against the trace they came from, and walks causes
// in kMissCausePrecedence order so row/column ordering is deterministic.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/spans.h"

namespace mpdash {

// Shortest decimal string that parses back to exactly `v` — the CSV
// counterpart of the JSONL writer's number formatting.
std::string shortest_double(double v);

// One CSV row per span (RFC-4180 quoting: labels carrying commas/quotes
// survive round-trips through parse_csv). Includes the overlap-aware
// fault fields and the dominant fault kind.
std::string spans_to_csv(const SpanModel& model);

// One aggregated line of a roll-up: the attribution of a single run.
struct RollupRow {
  std::string key;  // seed (numeric trace suffix) or source basename
  std::size_t spans = 0;
  int misses = 0;
  // kMissCausePrecedence order, zero counts kept.
  std::vector<std::pair<MissCause, int>> counts;

  double miss_rate() const {
    return spans > 0 ? static_cast<double>(misses) /
                           static_cast<double>(spans)
                     : 0.0;
  }
};

// Roll-up key for a trace path: a trailing numeric extension (the chaos
// campaign's `<base>.jsonl.<seed>` convention) keys the row by that seed,
// so roll-ups over jobs-1 and jobs-8 artifacts with different base names
// compare bitwise. Anything else keys by basename.
std::string rollup_source_key(const std::string& path);

// Collapses one attributed span model into its roll-up row.
RollupRow rollup_span_model(const SpanModel& model, std::string key);

// Renders rows in input order plus a trailing "total" row. Columns:
// key, span/miss counts, overall miss rate, then per-cause counts and
// per-cause miss rates in precedence order.
extern const char kRollupCsvHeader[];  // includes the trailing newline
std::string rollup_row_csv(const RollupRow& row);
std::string rollup_to_csv(const std::vector<RollupRow>& rows);

// Time-bucketed attribution series: for every `bucket_s` slice of the
// session that saw a span end, one row of per-cause miss counts, each
// prefixed with `key` ("<location>/<algo>/<scheme>" in the field benches)
// so campaign-level concatenation stays unambiguous.
extern const char kAttribSeriesHeader[];  // includes the trailing newline
std::string attribution_series_csv(const SpanModel& model, double bucket_s,
                                   const std::string& key);

}  // namespace mpdash
