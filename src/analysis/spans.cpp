#include "analysis/spans.h"

#include <algorithm>
#include <cstring>
#include <iterator>

namespace mpdash {

const char* to_string(MissCause c) {
  switch (c) {
    case MissCause::kNone: return "none";
    case MissCause::kFaultBlackout: return "fault-blackout";
    case MissCause::kRetryBackoff: return "retry-backoff";
    case MissCause::kSchedulerLate: return "scheduler-late";
    case MissCause::kBandwidthShortfall: return "bandwidth-shortfall";
    case MissCause::kUnknown: return "unknown";
  }
  return "unknown";
}

int fault_kind_rank(const char* kind) {
  // Documented tie-break precedence (see spans.h). Keep in sync with the
  // FaultKind labels in src/fault/fault.cpp.
  static constexpr const char* kRanked[] = {
      "blackout",     "flap",         "rate_collapse", "loss_burst",
      "rtt_spike",    "server_stall", "server_reset",
  };
  if (kind == nullptr) return static_cast<int>(std::size(kRanked)) + 1;
  for (std::size_t i = 0; i < std::size(kRanked); ++i) {
    if (std::strcmp(kind, kRanked[i]) == 0) return static_cast<int>(i);
  }
  return static_cast<int>(std::size(kRanked));
}

bool ChunkTimeline::missed() const {
  if (status && std::strcmp(status, "abandoned") == 0) return true;
  if (status && std::strcmp(status, "failed") == 0) return true;
  if (sched_missed) return true;
  return deadline_s > 0.0 && elapsed_s() > deadline_s;
}

const ChunkTimeline* SpanModel::find(SpanId id) const {
  const auto it = std::lower_bound(
      spans.begin(), spans.end(), id,
      [](const ChunkTimeline& t, SpanId s) { return t.span < s; });
  if (it == spans.end() || it->span != id) return nullptr;
  return &*it;
}

namespace {

bool label_is(const TraceRecord& r, const char* name) {
  return r.label != nullptr && std::strcmp(r.label, name) == 0;
}

using Interval = std::pair<TimePoint, TimePoint>;

// Sorted, merged union; empty pieces dropped.
std::vector<Interval> merge_intervals(std::vector<Interval> iv) {
  std::vector<Interval> out;
  std::sort(iv.begin(), iv.end());
  for (const Interval& i : iv) {
    if (i.second <= i.first) continue;
    if (!out.empty() && i.first <= out.back().second) {
      out.back().second = std::max(out.back().second, i.second);
    } else {
      out.push_back(i);
    }
  }
  return out;
}

// Seconds of [a, b) covered by the merged union.
double union_overlap_s(const std::vector<Interval>& merged, TimePoint a,
                       TimePoint b) {
  double s = 0.0;
  for (const Interval& i : merged) {
    const TimePoint lo = std::max(i.first, a);
    const TimePoint hi = std::min(i.second, b);
    if (hi > lo) s += to_seconds(hi - lo);
  }
  return s;
}

// Fill the overlap-aware fields: per-span fault coverage by scope, plus
// an apportioned share computed over the piecewise-constant count of
// concurrently open spans (a blackout shared by three in-flight chunks
// charges each one a third of it).
void overlap_post_pass(SpanModel& model) {
  std::vector<Interval> path_iv, server_iv, all_iv;
  for (const FaultWindow& w : model.faults) {
    (w.server_scoped() ? server_iv : path_iv).push_back({w.start, w.end});
    all_iv.push_back({w.start, w.end});
  }
  const auto path_u = merge_intervals(std::move(path_iv));
  const auto server_u = merge_intervals(std::move(server_iv));
  const auto all_u = merge_intervals(std::move(all_iv));

  // Per-kind interval unions, ordered by the documented kind precedence
  // (fault_kind_rank, then name). Never keyed by the interned pointer:
  // pointer order varies run to run, and an equal-share tie resolved by
  // map order would make the dominant kind nondeterministic.
  struct KindUnion {
    const char* kind;
    std::vector<Interval> merged;
  };
  std::vector<KindUnion> kind_u;
  for (const FaultWindow& w : model.faults) {
    const char* kind = w.kind ? w.kind : "unknown";
    auto it = std::find_if(kind_u.begin(), kind_u.end(),
                           [kind](const KindUnion& k) {
                             return std::strcmp(k.kind, kind) == 0;
                           });
    if (it == kind_u.end()) {
      kind_u.push_back({kind, {}});
      it = std::prev(kind_u.end());
    }
    it->merged.push_back({w.start, w.end});
  }
  std::sort(kind_u.begin(), kind_u.end(),
            [](const KindUnion& a, const KindUnion& b) {
              const int ra = fault_kind_rank(a.kind);
              const int rb = fault_kind_rank(b.kind);
              if (ra != rb) return ra < rb;
              return std::strcmp(a.kind, b.kind) < 0;
            });
  for (KindUnion& k : kind_u) k.merged = merge_intervals(std::move(k.merged));

  struct Edge {
    TimePoint at;
    int delta;
  };
  std::vector<Edge> edges;
  edges.reserve(model.spans.size() * 2);
  for (const ChunkTimeline& t : model.spans) {
    if (t.end <= t.start) continue;
    edges.push_back({t.start, +1});
    edges.push_back({t.end, -1});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.delta < b.delta;  // close before open at the same instant
  });
  struct Piece {
    TimePoint start;
    TimePoint end;
    int count;
  };
  std::vector<Piece> pieces;
  int count = 0;
  TimePoint prev = kTimeZero;
  bool have_prev = false;
  for (const Edge& e : edges) {
    if (have_prev && e.at > prev && count > 0) {
      pieces.push_back({prev, e.at, count});
    }
    count += e.delta;
    prev = e.at;
    have_prev = true;
  }

  for (ChunkTimeline& t : model.spans) {
    t.path_fault_overlap_s = union_overlap_s(path_u, t.start, t.end);
    t.server_fault_overlap_s = union_overlap_s(server_u, t.start, t.end);
    t.fault_overlap_by_kind.clear();
    t.dominant_fault_kind = nullptr;
    double best = 0.0;
    for (const KindUnion& k : kind_u) {
      const double s = union_overlap_s(k.merged, t.start, t.end);
      if (s <= 0.0) continue;
      t.fault_overlap_by_kind.emplace_back(k.kind, s);
      // kind_u is precedence-sorted, so a strict '>' keeps the earlier
      // (higher-precedence) kind on an exact tie.
      if (s > best) {
        best = s;
        t.dominant_fault_kind = k.kind;
      }
    }
    t.fault_overlap_share_s = 0.0;
    int peak = 0;
    for (const Piece& p : pieces) {
      const TimePoint lo = std::max(p.start, t.start);
      const TimePoint hi = std::min(p.end, t.end);
      if (hi <= lo) continue;
      peak = std::max(peak, p.count);
      const double covered = union_overlap_s(all_u, lo, hi);
      if (covered > 0.0) t.fault_overlap_share_s += covered / p.count;
    }
    t.max_concurrent_spans = std::max(peak, 1);
  }
}

}  // namespace

std::uint32_t span_model_trace_mask() {
  return (1u << static_cast<unsigned>(TraceType::kSpanStart)) |
         (1u << static_cast<unsigned>(TraceType::kSpanEnd)) |
         (1u << static_cast<unsigned>(TraceType::kHttp)) |
         (1u << static_cast<unsigned>(TraceType::kFault)) |
         (1u << static_cast<unsigned>(TraceType::kSchedDecision)) |
         (1u << static_cast<unsigned>(TraceType::kPlayer)) |
         (1u << static_cast<unsigned>(TraceType::kPacketDeliver));
}

std::uint32_t flame_trace_mask() {
  return span_model_trace_mask() |
         (1u << static_cast<unsigned>(TraceType::kSubflowUpdate));
}

SpanModel build_span_model(const std::vector<TraceRecord>& trace) {
  SpanModel model;
  model.records = trace.size();
  // Span ids are allocated in increasing order, so a map keyed by id
  // yields timelines in request order.
  std::map<SpanId, ChunkTimeline> open;

  auto timeline = [&open](const TraceRecord& r) -> ChunkTimeline& {
    auto [it, inserted] = open.try_emplace(r.span);
    if (inserted) {
      // Records can precede the kSpanStart of their span (the player
      // activates the id before level selection); the start record
      // overwrites this provisional anchor.
      it->second.span = r.span;
      it->second.start = r.at;
      it->second.end = r.at;
    }
    return it->second;
  };

  for (const TraceRecord& r : trace) {
    if (r.at > model.trace_end) model.trace_end = r.at;
    if (r.type == TraceType::kFault) {
      if (r.enabled) {
        FaultWindow w;
        w.kind = r.label;
        w.path_id = r.path_id;
        w.start = r.at;
        w.end = r.at;
        model.faults.push_back(w);
      } else {
        for (auto it = model.faults.rbegin(); it != model.faults.rend();
             ++it) {
          if (!it->closed && it->path_id == r.path_id &&
              ((it->kind == nullptr && r.label == nullptr) ||
               (it->kind && r.label &&
                std::strcmp(it->kind, r.label) == 0))) {
            it->end = r.at;
            it->closed = true;
            break;
          }
        }
      }
      continue;  // faults are trace-global, not span-owned
    }
    if (r.span == 0) {
      ++model.unspanned_records;
      continue;
    }
    ChunkTimeline& t = timeline(r);
    switch (r.type) {
      case TraceType::kSpanStart:
        t.name = r.label;
        t.chunk = r.chunk;
        t.level = r.level;
        t.requested_bytes = r.bytes;
        t.deadline_s = r.value;
        t.start = r.at;
        break;
      case TraceType::kSpanEnd:
        t.status = r.label;
        t.delivered_bytes = r.bytes;
        t.end = r.at;
        break;
      case TraceType::kSchedDecision:
        if (label_is(r, "begin")) {
          t.sched_engaged = true;
          t.sched_begin = r.at;
        } else if (label_is(r, "miss")) {
          t.sched_missed = true;
        } else if (label_is(r, "enable") && r.enabled) {
          t.first_enable_by_path.try_emplace(r.path_id, r.at);
        }
        break;
      case TraceType::kPacketDeliver:
        if (r.kind == PacketKind::kData && r.is_downlink() &&
            r.payload_len > 0) {
          t.bytes_by_path[r.path_id] += r.payload_len;
          if (!t.have_bytes) {
            t.first_byte = r.at;
            t.have_bytes = true;
          }
          t.last_byte = r.at;
        }
        break;
      case TraceType::kHttp:
        if (label_is(r, "timeout")) {
          ++t.http_timeouts;
        } else if (label_is(r, "retry")) {
          ++t.http_retries;
          t.backoff_s += r.value;
        }
        break;
      case TraceType::kPlayer:
        if (label_is(r, "chunk_retry")) {
          ++t.chunk_retries;
        } else if (label_is(r, "stall_start")) {
          ++t.stalls_started;
        }
        break;
      default:
        break;
    }
  }

  model.spans.reserve(open.size());
  for (auto& [id, t] : open) {
    if (!t.closed()) t.end = model.trace_end;  // trace ended mid-flight
    model.spans.push_back(std::move(t));
  }
  for (FaultWindow& w : model.faults) {
    if (!w.closed) w.end = model.trace_end;
  }
  overlap_post_pass(model);
  return model;
}

void attribute_misses(SpanModel* model, int preferred_path) {
  for (ChunkTimeline& t : model->spans) {
    // Derive the costly-path milestones now that the preferred path is
    // known.
    t.costly_enabled = false;
    for (const auto& [path, at] : t.first_enable_by_path) {
      if (path == preferred_path) continue;
      if (!t.costly_enabled || at < t.first_costly_enable) {
        t.first_costly_enable = at;
        t.costly_enabled = true;
      }
    }

    if (!t.missed()) {
      t.cause = MissCause::kNone;
      continue;
    }

    // Overlap-aware: the post-pass already intersected every fault window
    // with this span, so pipelined traces (several spans sharing one
    // blackout) attribute each affected span independently.
    const bool path_fault = t.path_fault_overlap_s > 0.0;
    const bool server_fault = t.server_fault_overlap_s > 0.0;

    // Precedence: an injected link fault is the root cause even when the
    // recovery stack also burned budget reacting to it; retry backoff
    // explains the miss when the origin (not the path) misbehaved and
    // the client kept re-asking; with recovery off that same server
    // fault is the direct cause; only a fault-free miss can indict the
    // scheduler, and only a timely scheduler leaves bandwidth to blame.
    if (path_fault) {
      t.cause = MissCause::kFaultBlackout;
    } else if (t.http_timeouts > 0 || t.http_retries > 0 ||
               t.chunk_retries > 0) {
      t.cause = MissCause::kRetryBackoff;
    } else if (server_fault) {
      t.cause = MissCause::kFaultBlackout;
    } else if (t.sched_engaged && t.deadline_s > 0.0 &&
               (!t.costly_enabled ||
                to_seconds(t.first_costly_enable - t.start) >
                    0.5 * t.deadline_s)) {
      t.cause = MissCause::kSchedulerLate;
    } else if (t.sched_engaged || t.have_bytes) {
      t.cause = MissCause::kBandwidthShortfall;
    } else {
      t.cause = MissCause::kUnknown;
    }
  }
}

std::vector<std::pair<MissCause, int>> attribution_counts(
    const SpanModel& model) {
  std::vector<std::pair<MissCause, int>> counts;
  for (const MissCause c : kMissCausePrecedence) counts.emplace_back(c, 0);
  for (const ChunkTimeline& t : model.spans) {
    if (t.cause == MissCause::kNone) continue;
    for (auto& [cause, count] : counts) {
      if (cause == t.cause) ++count;
    }
  }
  return counts;
}

int count_for(const std::vector<std::pair<MissCause, int>>& counts,
              MissCause cause) {
  for (const auto& [c, n] : counts) {
    if (c == cause) return n;
  }
  return 0;
}

const SpanDetail* FlameModel::find(const SpanModel& model, SpanId id) const {
  const ChunkTimeline* t = model.find(id);
  if (t == nullptr) return nullptr;
  const std::size_t i = static_cast<std::size_t>(t - model.spans.data());
  return i < details.size() ? &details[i] : nullptr;
}

FlameModel build_flame_model(const std::vector<TraceRecord>& trace,
                             const SpanModel& model, Duration merge_gap) {
  FlameModel flame;
  flame.details.resize(model.spans.size());
  std::map<SpanId, std::size_t> index;
  for (std::size_t i = 0; i < model.spans.size(); ++i) {
    flame.details[i].span = model.spans[i].span;
    index.emplace(model.spans[i].span, i);
  }

  // Subflow updates are connection-scoped, not span-stamped, so collect
  // them globally (sorted by emission order = time order) and slice each
  // span's window out below.
  std::map<int, std::vector<SubflowSample>> subflow_samples;

  for (const TraceRecord& r : trace) {
    if (r.type == TraceType::kSubflowUpdate) {
      subflow_samples[r.path_id].push_back({r.at, r.cwnd, r.srtt_ms});
      continue;
    }
    if (r.span == 0) continue;
    const auto it = index.find(r.span);
    if (it == index.end()) continue;
    SpanDetail& d = flame.details[it->second];
    if (r.type == TraceType::kHttp && r.label != nullptr) {
      if (std::strcmp(r.label, "request") == 0) {
        HttpAttempt a;
        a.attempt = r.level;
        a.start = r.at;
        a.end = r.at;
        d.attempts.push_back(a);
      } else if (std::strcmp(r.label, "response") == 0 ||
                 std::strcmp(r.label, "timeout") == 0 ||
                 std::strcmp(r.label, "giveup") == 0) {
        // Attempts within a span are sequential (retries wait out the
        // backoff), so the closing record always belongs to the last
        // still-open attempt.
        for (auto a = d.attempts.rbegin(); a != d.attempts.rend(); ++a) {
          if (a->outcome == nullptr) {
            a->end = r.at;
            a->outcome = r.label;
            break;
          }
        }
      }
      continue;
    }
    if (r.type == TraceType::kPacketDeliver && r.kind == PacketKind::kData &&
        r.is_downlink() && r.payload_len > 0) {
      auto& iv = d.path_activity[r.path_id];
      if (!iv.empty() && r.at - iv.back().second <= merge_gap) {
        iv.back().second = std::max(iv.back().second, r.at);
      } else {
        iv.push_back({r.at, r.at});
      }
    }
  }

  // Attempts the trace ended on (or that never got a closing record)
  // extend to their span's end so the bar has a width.
  for (std::size_t i = 0; i < flame.details.size(); ++i) {
    for (HttpAttempt& a : flame.details[i].attempts) {
      if (a.outcome == nullptr) {
        a.end = std::max(a.start, model.spans[i].end);
      }
    }
  }

  // Slice each span's time window out of the global subflow streams
  // (samples are time-sorted, so each slice is one binary search + copy).
  for (std::size_t i = 0; i < flame.details.size(); ++i) {
    const ChunkTimeline& t = model.spans[i];
    for (const auto& [path, samples] : subflow_samples) {
      const auto lo = std::lower_bound(
          samples.begin(), samples.end(), t.start,
          [](const SubflowSample& s, TimePoint at) { return s.at < at; });
      const auto hi = std::upper_bound(
          lo, samples.end(), t.end,
          [](TimePoint at, const SubflowSample& s) { return at < s.at; });
      if (lo != hi) {
        flame.details[i].subflow[path].assign(lo, hi);
      }
    }
  }
  return flame;
}

}  // namespace mpdash
