#pragma once
// Span model: reconstructs per-chunk causal timelines from a TraceRecord
// stream (live from a TraceCollector or loaded from JSONL) and runs the
// deadline-miss attribution pass — the "why did chunk 42 stall" layer the
// paper had to hand-correlate from tcpdump + player logs (§6).
//
// Every record between a chunk's kSpanStart and kSpanEnd carries the
// span's id (Telemetry stamps the active span), so a span's causal
// window is exactly the records that share its id, joined against the
// trace-global fault windows.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/trace_sink.h"

namespace mpdash {

// Root cause assigned to a missed deadline / abandoned chunk / stall.
// Precedence (checked in order) favors external causes over scheduler
// blame: an injected fault explains a miss even when the scheduler also
// reacted late to it.
enum class MissCause : std::uint8_t {
  kNone = 0,             // span met its deadline
  kFaultBlackout,        // a scripted path/server fault overlapped the span
  kRetryBackoff,         // HTTP timeout/retry backoff ate the budget
  kSchedulerLate,        // Algorithm 1 never (or too late) enabled help
  kBandwidthShortfall,   // all enabled paths were simply too slow
  kUnknown,              // missed, but no signal matched (foreign trace)
};

const char* to_string(MissCause c);

// The documented cause precedence, in order: every consumer that walks
// "all causes" (attribution_counts, the roll-up CSV columns, the table
// renderers) iterates this array so output ordering never depends on a
// container's iteration order.
inline constexpr MissCause kMissCausePrecedence[] = {
    MissCause::kFaultBlackout,    MissCause::kRetryBackoff,
    MissCause::kSchedulerLate,    MissCause::kBandwidthShortfall,
    MissCause::kUnknown,
};

// Tie-break rank for fault *kinds* when two fault windows cover a span
// for exactly the same number of seconds: link-scoped outages indict the
// network before origin misbehavior does, mirroring the cause precedence
// above. Lower rank wins; unknown kinds rank last and tie-break
// lexicographically. Documented order:
//   blackout ≻ flap ≻ rate_collapse ≻ loss_burst ≻ rtt_spike ≻
//   server_stall ≻ server_reset ≻ (anything else, by name)
int fault_kind_rank(const char* kind);

// One injected fault occurrence (kFault start/end pair). An unclosed
// window extends to the end of the trace.
struct FaultWindow {
  const char* kind = nullptr;  // interned fault label ("blackout", ...)
  int path_id = -1;            // -1 for server-scoped faults
  TimePoint start = kTimeZero;
  TimePoint end = kTimeZero;
  bool closed = false;

  // Server faults stall/reset the HTTP origin rather than a link.
  bool server_scoped() const { return path_id < 0; }
};

// Reconstructed life of one causal span (one chunk request, or the
// manifest fetch).
struct ChunkTimeline {
  SpanId span = 0;
  const char* name = nullptr;    // "chunk" or "manifest"
  int chunk = -1;
  int level = -1;                // level at request (retries may downshift)
  Bytes requested_bytes = 0;
  double deadline_s = 0.0;       // 0 = no deadline set (non-MP-DASH run)
  TimePoint start = kTimeZero;
  TimePoint end = kTimeZero;     // trace end when unclosed
  const char* status = nullptr;  // "delivered"/"abandoned"/"failed"; null =
                                 // trace ended mid-flight
  Bytes delivered_bytes = 0;

  // Milestones (valid when the matching flag/count is set).
  bool sched_engaged = false;     // Algorithm 1 saw this chunk ("begin")
  bool sched_missed = false;      // scheduler declared the deadline missed
  bool costly_enabled = false;    // a non-preferred path was enabled
                                  // (derived by attribute_misses)
  TimePoint sched_begin = kTimeZero;
  TimePoint first_costly_enable = kTimeZero;
  std::map<int, TimePoint> first_enable_by_path;  // "enable" decisions
  TimePoint first_byte = kTimeZero;  // first downlink data delivery
  TimePoint last_byte = kTimeZero;
  bool have_bytes = false;

  // Per-path downlink payload delivered inside the span.
  std::map<int, Bytes> bytes_by_path;

  int http_timeouts = 0;
  int http_retries = 0;
  double backoff_s = 0.0;   // total scheduled retry backoff
  int chunk_retries = 0;    // player-level downshift retries
  int stalls_started = 0;   // playback stalled while this span in flight

  // Overlap-aware accounting (post-pass in build_span_model). A pipelined
  // player keeps several spans open at once, so one fault window can
  // overlap them all; these fields total the wall time each fault scope
  // covered this span (union, so stacked windows don't double count) and
  // apportion intervals shared between concurrently open spans, making
  // per-span waterfalls sum to the trace-level blackout time instead of
  // multiply counting it.
  double path_fault_overlap_s = 0.0;    // link-fault windows ∩ this span
  double server_fault_overlap_s = 0.0;  // server-fault windows ∩ this span
  double fault_overlap_share_s = 0.0;   // overlap ÷ concurrently open spans
  int max_concurrent_spans = 1;         // peak open spans while in flight

  // Union overlap seconds per fault kind, sorted by fault_kind_rank()
  // then name (never by pointer value, which would make equal-share
  // ties depend on allocation order). Only kinds with coverage > 0.
  std::vector<std::pair<const char*, double>> fault_overlap_by_kind;
  // The kind with the largest overlap; equal shares resolve to the
  // higher-precedence kind. nullptr when no fault touched the span.
  const char* dominant_fault_kind = nullptr;

  MissCause cause = MissCause::kNone;

  double elapsed_s() const { return to_seconds(end - start); }
  bool closed() const { return status != nullptr; }
  // A span counts as a miss when the scheduler said so, when the player
  // abandoned it, or when a set deadline elapsed before delivery.
  bool missed() const;
};

struct SpanModel {
  std::vector<ChunkTimeline> spans;  // span-id order (allocation order)
  std::vector<FaultWindow> faults;
  TimePoint trace_end = kTimeZero;
  std::size_t records = 0;
  std::size_t unspanned_records = 0;  // records outside any span

  const ChunkTimeline* find(SpanId id) const;
};

// TypeFilterSink mask covering every record type the span model and the
// flame view consume. Capture behind this mask and build_span_model sees
// exactly what a full JSONL trace would give it.
std::uint32_t span_model_trace_mask();

// span_model_trace_mask() plus kSubflowUpdate — everything the flame
// view's subflow rows need on top of the span model.
std::uint32_t flame_trace_mask();

// First pass: group records by span id, collect fault windows, fill
// every ChunkTimeline milestone. Does not assign causes.
SpanModel build_span_model(const std::vector<TraceRecord>& trace);

// Attribution pass: assigns a MissCause to every missed span by walking
// its causal window against the fault table. `preferred_path` is the
// path Algorithm 1 keeps always-on (WiFi = 0 everywhere in this repo);
// other paths are the "costly" set whose late enablement indicts the
// scheduler.
void attribute_misses(SpanModel* model, int preferred_path = 0);

// Misses per cause across the model (kNone excluded; zero counts kept).
// Rows come back in kMissCausePrecedence order — the documented, stable
// ordering every renderer and CSV column list shares.
std::vector<std::pair<MissCause, int>> attribution_counts(
    const SpanModel& model);

// Count for one cause in an attribution_counts() result (0 if absent).
int count_for(const std::vector<std::pair<MissCause, int>>& counts,
              MissCause cause);

// ---------------------------------------------------------------------------
// Flame/Gantt detail: the per-span sub-rows the --flame view nests inside
// each chunk bar — HTTP attempts (with retry/backoff gaps) and per-path
// transmit activity. Kept separate from ChunkTimeline because it needs a
// second walk over the raw records and most consumers (attribution,
// roll-ups) never want it.

struct HttpAttempt {
  int attempt = 0;                // attempt number as emitted (kHttp level)
  TimePoint start = kTimeZero;    // "request" record
  TimePoint end = kTimeZero;      // closing record (or span end if open)
  const char* outcome = nullptr;  // "response"/"timeout"/"giveup"; null =
                                  // still in flight at trace end
};

using ActivityInterval = std::pair<TimePoint, TimePoint>;

// One kSubflowUpdate observation (server data sender: cwnd/RTT at an
// ack or RTO edge).
struct SubflowSample {
  TimePoint at = kTimeZero;
  double cwnd = 0.0;
  double srtt_ms = 0.0;
};

struct SpanDetail {
  SpanId span = 0;
  std::vector<HttpAttempt> attempts;  // request order; gaps = backoff
  // Downlink payload activity per path, merged into intervals when
  // deliveries are closer than the merge gap.
  std::map<int, std::vector<ActivityInterval>> path_activity;
  // Subflow cwnd/RTT samples per path inside this span's window. Subflow
  // updates are connection-scoped (not stamped with a chunk span), so
  // they are sliced by time: every sample with start <= at <= end.
  std::map<int, std::vector<SubflowSample>> subflow;
};

struct FlameModel {
  std::vector<SpanDetail> details;  // aligned with SpanModel::spans

  const SpanDetail* find(const SpanModel& model, SpanId id) const;
};

// Second pass over the trace: collects the per-span HTTP attempt segments
// and per-path delivery intervals for the flame view. `merge_gap` fuses
// deliveries separated by less than that into one interval (rendering
// needs shapes, not packets).
FlameModel build_flame_model(const std::vector<TraceRecord>& trace,
                             const SpanModel& model,
                             Duration merge_gap = milliseconds(50));

}  // namespace mpdash
