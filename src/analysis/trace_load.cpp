#include "analysis/trace_load.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <unordered_set>

#include "dash/events.h"
#include "fault/fault.h"

namespace mpdash {

namespace {

// Every static label an emitter can put into TraceRecord::label. Keeping
// the loader in the analysis library (above dash and fault) lets it hand
// back the exact pointers those layers use.
const char* known_labels(std::string_view s) {
  for (int i = 0; i <= static_cast<int>(PlayerEventType::kChunkAbandoned);
       ++i) {
    const char* name = to_string(static_cast<PlayerEventType>(i));
    if (s == name) return name;
  }
  for (int i = 0; i <= static_cast<int>(FaultKind::kServerReset); ++i) {
    const char* name = to_string(static_cast<FaultKind>(i));
    if (s == name) return name;
  }
  // Algorithm-1 decision labels (core/deadline_scheduler.cpp).
  static constexpr const char* kSched[] = {"begin",    "enable", "disable",
                                           "complete", "miss",   "end"};
  for (const char* name : kSched) {
    if (s == name) return name;
  }
  // HTTP client lifecycle (http/client.cpp).
  static constexpr const char* kHttp[] = {"request", "timeout", "retry",
                                          "response", "giveup"};
  for (const char* name : kHttp) {
    if (s == name) return name;
  }
  // Span names and close statuses (dash/player.cpp).
  static constexpr const char* kSpan[] = {"chunk", "manifest", "delivered",
                                          "abandoned", "failed"};
  for (const char* name : kSpan) {
    if (s == name) return name;
  }
  return nullptr;
}

}  // namespace

const char* intern_trace_label(std::string_view label) {
  if (const char* known = known_labels(label)) return known;
  // Unknown label (e.g. a trace from a newer build): park it in a leaked
  // pool so the borrowed-pointer contract holds. unordered_set never
  // moves nodes, so the c_str stays valid for the process lifetime.
  static std::mutex mu;
  static std::unordered_set<std::string>* pool =
      new std::unordered_set<std::string>();
  std::lock_guard<std::mutex> lock(mu);
  return pool->insert(std::string(label)).first->c_str();
}

namespace {

// Minimal scanner for the flat JSON objects trace_record_to_json writes:
// string, number, and boolean values only — no nesting, no arrays.
struct Scanner {
  std::string_view in;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) error = msg;
    return false;
  }
  void skip_ws() {
    while (pos < in.size() &&
           (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\r')) {
      ++pos;
    }
  }
  bool expect(char c) {
    skip_ws();
    if (pos >= in.size() || in[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }
  bool peek_is(char c) {
    skip_ws();
    return pos < in.size() && in[pos] == c;
  }
  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos < in.size() && in[pos] != '"') {
      char c = in[pos++];
      if (c == '\\') {
        if (pos >= in.size()) return fail("dangling escape");
        const char e = in[pos++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos + 4 > in.size()) return fail("short \\u escape");
            unsigned code = 0;
            const auto res = std::from_chars(in.data() + pos,
                                             in.data() + pos + 4, code, 16);
            if (res.ec != std::errc() || res.ptr != in.data() + pos + 4) {
              return fail("bad \\u escape");
            }
            pos += 4;
            // The writer only escapes control chars (< 0x20); anything
            // else would be foreign input.
            c = static_cast<char>(code);
            break;
          }
          default: return fail("unknown escape");
        }
      }
      out->push_back(c);
    }
    if (pos >= in.size()) return fail("unterminated string");
    ++pos;  // closing quote
    return true;
  }
  // Value as (number, is_bool) — strings handled separately by caller.
  bool parse_number(double* out) {
    skip_ws();
    const char* begin = in.data() + pos;
    const char* end = in.data() + in.size();
    const auto res = std::from_chars(begin, end, *out);
    if (res.ec != std::errc()) return fail("bad number");
    pos = static_cast<std::size_t>(res.ptr - in.data());
    return true;
  }
  bool parse_bool(bool* out) {
    skip_ws();
    if (in.compare(pos, 4, "true") == 0) {
      *out = true;
      pos += 4;
      return true;
    }
    if (in.compare(pos, 5, "false") == 0) {
      *out = false;
      pos += 5;
      return true;
    }
    return fail("bad boolean");
  }
};

}  // namespace

bool trace_record_from_json(std::string_view line, TraceRecord* out,
                            std::string* err) {
  Scanner s{line, 0, {}};
  auto fail = [&](const std::string& msg) {
    if (err) *err = msg.empty() ? s.error : msg;
    return false;
  };

  TraceRecord r;
  std::string type_name;
  std::string dir, kind, label;
  bool have_type = false, have_retx = false, retx = false;
  bool have_phase = false, phase_start = false;

  if (!s.expect('{')) return fail("");
  bool first = true;
  while (!s.peek_is('}')) {
    if (!first && !s.expect(',')) return fail("");
    first = false;
    std::string key;
    if (!s.parse_string(&key)) return fail("");
    if (!s.expect(':')) return fail("");
    if (s.peek_is('"')) {
      std::string val;
      if (!s.parse_string(&val)) return fail("");
      if (key == "type") {
        type_name = val;
        have_type = true;
      } else if (key == "dir") {
        dir = val;  // derived from link id; checked nowhere
      } else if (key == "kind") {
        kind = val;
      } else if (key == "phase") {
        have_phase = true;
        phase_start = val == "start";
      } else if (key == "decision" || key == "event" || key == "fault" ||
                 key == "name" || key == "status") {
        label = val;
      } else {
        return fail("unknown string key '" + key + "'");
      }
      continue;
    }
    if (s.peek_is('t') || s.peek_is('f')) {
      bool val = false;
      if (!s.parse_bool(&val)) return fail("");
      if (key == "retx") {
        have_retx = true;
        retx = val;
      } else if (key == "enabled") {
        r.enabled = val;
      } else {
        return fail("unknown boolean key '" + key + "'");
      }
      continue;
    }
    double num = 0.0;
    if (!s.parse_number(&num)) return fail("");
    if (key == "t") {
      // to_seconds() divides the integer nanosecond count by 1e9; with
      // shortest-round-trip doubles the rescale is exact for any
      // session-scale time, so llround restores the count bit-for-bit.
      r.at = TimePoint(Duration(std::llround(num * 1e9)));
    } else if (key == "span") {
      r.span = static_cast<SpanId>(num);
    } else if (key == "path") {
      r.path_id = static_cast<int>(num);
    } else if (key == "link") {
      r.link_id = static_cast<int>(num);
    } else if (key == "wire") {
      r.wire_size = static_cast<Bytes>(num);
    } else if (key == "payload") {
      r.payload_len = static_cast<Bytes>(num);
    } else if (key == "seq") {
      r.data_seq = static_cast<std::uint64_t>(num);
    } else if (key == "cwnd") {
      r.cwnd = num;
    } else if (key == "ssthresh") {
      r.ssthresh = num;
    } else if (key == "srtt_ms") {
      r.srtt_ms = num;
    } else if (key == "budget_s") {
      r.budget_s = num;
    } else if (key == "deliverable") {
      r.deliverable_bytes = num;
    } else if (key == "remaining") {
      r.remaining_bytes = num;
    } else if (key == "mask") {
      r.mask = static_cast<std::uint32_t>(num);
    } else if (key == "level" || key == "attempt") {
      r.level = static_cast<int>(num);
    } else if (key == "chunk") {
      r.chunk = static_cast<int>(num);
    } else if (key == "bytes") {
      r.bytes = static_cast<Bytes>(num);
    } else if (key == "value" || key == "deadline_s" || key == "elapsed_s") {
      r.value = num;
    } else {
      return fail("unknown numeric key '" + key + "'");
    }
  }
  if (!s.expect('}')) return fail("");

  if (!have_type) return fail("record has no type");
  bool matched = false;
  for (int i = 0; i < kTraceTypeCount; ++i) {
    if (type_name == to_string(static_cast<TraceType>(i))) {
      r.type = static_cast<TraceType>(i);
      matched = true;
      break;
    }
  }
  if (!matched) return fail("unknown record type '" + type_name + "'");

  if (r.is_packet()) {
    r.kind = kind == "ack" ? PacketKind::kAck : PacketKind::kData;
    r.retransmit = have_retx && retx;
  }
  if (r.type == TraceType::kFault && have_phase) r.enabled = phase_start;
  if (!label.empty()) r.label = intern_trace_label(label);

  *out = r;
  return true;
}

bool load_trace_jsonl(const std::string& path, std::vector<TraceRecord>* out,
                      std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (err) *err = "cannot open " + path;
    return false;
  }
  std::string content;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);

  std::size_t line_no = 0, pos = 0;
  while (pos < content.size()) {
    std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) nl = content.size();
    const std::string_view line(content.data() + pos, nl - pos);
    pos = nl + 1;
    ++line_no;
    if (line.empty()) continue;
    TraceRecord r;
    std::string line_err;
    if (!trace_record_from_json(line, &r, &line_err)) {
      if (err) {
        *err = path + ":" + std::to_string(line_no) + ": " + line_err;
      }
      return false;
    }
    out->push_back(std::move(r));
  }
  return true;
}

}  // namespace mpdash
