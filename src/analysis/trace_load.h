#pragma once
// JSONL trace loader: the inverse of trace_record_to_json. mpdash_trace
// consumes files written by `mpdash_sim --trace` (JsonlSink), so every
// field the writer emits must parse back to an identical TraceRecord —
// the round-trip is pinned by tests/trace_roundtrip_test.
//
// One asymmetry by design: packet payload `segments` never serialize
// (JsonlSink summarizes payload by length), so loaded records always
// have empty segments.

#include <string>
#include <string_view>
#include <vector>

#include "telemetry/trace_sink.h"

namespace mpdash {

// Maps a label string back to static storage: known label tables (player
// events, fault kinds, scheduler decisions, HTTP events, span names and
// statuses) return the same pointers the emitters used; unknown labels
// are interned into a process-lifetime pool so TraceRecord::label stays
// a borrowed pointer either way.
const char* intern_trace_label(std::string_view label);

// Parses one JSON object (a line of a trace file) into *out. Returns
// false and describes the problem in *err (when non-null) on malformed
// input or an unknown record type.
bool trace_record_from_json(std::string_view line, TraceRecord* out,
                            std::string* err = nullptr);

// Loads a whole JSONL trace file, skipping blank lines. On failure
// returns false with *err naming the offending line.
bool load_trace_jsonl(const std::string& path, std::vector<TraceRecord>* out,
                      std::string* err = nullptr);

}  // namespace mpdash
