#include "core/deadline_scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace mpdash {

DeadlineScheduler::DeadlineScheduler(MultipathControl& control,
                                     DeadlineSchedulerConfig config)
    : control_(control), config_(config) {
  if (config_.alpha <= 0.0 || config_.alpha > 1.0) {
    throw std::invalid_argument("alpha must be in (0, 1]");
  }
  if (config_.hysteresis < 0.0) {
    throw std::invalid_argument("hysteresis must be >= 0");
  }
}

void DeadlineScheduler::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (!telemetry_) {
    activations_counter_ = Counter{};
    transfers_counter_ = Counter{};
    misses_counter_ = Counter{};
    return;
  }
  MetricsRegistry& m = telemetry_->metrics();
  activations_counter_ = m.counter("sched.activations");
  transfers_counter_ = m.counter("sched.transfers");
  misses_counter_ = m.counter("sched.deadline_misses");
}

void DeadlineScheduler::emit_decision(TimePoint now, const char* label,
                                      int path_id, bool enabled,
                                      double budget_s, double deliverable,
                                      double remaining_bytes) {
  if (!telemetry_ || !telemetry_->tracing()) return;
  TraceRecord r;
  r.at = now;
  r.type = TraceType::kSchedDecision;
  r.label = label;
  r.path_id = path_id;
  r.enabled = enabled;
  r.budget_s = budget_s;
  r.deliverable_bytes = deliverable;
  r.remaining_bytes = remaining_bytes;
  // 0 falls through to ambient stamping in emit() (legacy single-span
  // callers); the sequential player passes the same id either way.
  r.span = owner_span_;
  telemetry_->emit(r);
}

void DeadlineScheduler::begin(TimePoint now, Bytes size, Duration window,
                              SpanId span) {
  if (size <= 0 || window <= kDurationZero) {
    throw std::invalid_argument("size and window must be positive");
  }
  owner_span_ = span;
  active_ = true;
  deadline_missed_ = false;
  start_ = now;
  window_ = window;
  deadline_ = now + window;
  size_ = size;
  base_transferred_ = control_.transferred_bytes();
  activations_ = 0;
  enable_streak_ = 0;
  last_update_ = now;
  if (telemetry_) transfers_counter_.increment();
  emit_decision(now, "begin", -1, true, config_.alpha * to_seconds(window),
                0.0, static_cast<double>(size));

  // Algorithm 1 initialization: preferred (minimum-cost) paths on, all
  // costlier paths off.
  auto paths = control_.paths();
  double min_cost = paths.empty() ? 0.0 : paths.front().unit_cost;
  for (const auto& p : paths) min_cost = std::min(min_cost, p.unit_cost);
  for (const auto& p : paths) {
    control_.set_path_enabled(p.id, p.unit_cost <= min_cost);
  }
}

Bytes DeadlineScheduler::remaining() const {
  return std::max<Bytes>(0, size_ - (control_.transferred_bytes() -
                                     base_transferred_));
}

void DeadlineScheduler::update(TimePoint now) {
  if (!active_) return;
  last_update_ = now;

  const Bytes left = remaining();
  if (left == 0) {  // S bytes transferred: deactivate (paper §3.2 case 1)
    emit_decision(now, "complete", -1, false, 0.0, 0.0, 0.0);
    end();
    return;
  }
  if (now >= deadline_) {  // deadline passed: deactivate (case 2)
    deadline_missed_ = true;
    if (telemetry_) misses_counter_.increment();
    emit_decision(now, "miss", -1, false, 0.0, 0.0,
                  static_cast<double>(left));
    end();
    return;
  }

  // Time budget per lines 16/19: alpha*D - timeSpent.
  const double budget_s =
      config_.alpha * to_seconds(window_) - to_seconds(now - start_);

  // Feed data cheapest-first: walk paths in cost order, accumulating the
  // bytes the already-kept set can move within the budget; enable a path
  // only while the kept set falls short of the remaining bytes.
  auto paths = control_.paths();
  std::sort(paths.begin(), paths.end(),
            [](const ControlledPath& a, const ControlledPath& b) {
              if (a.unit_cost != b.unit_cost) return a.unit_cost < b.unit_cost;
              return a.id < b.id;
            });

  const double min_cost = paths.front().unit_cost;
  double deliverable = 0.0;
  const double need = static_cast<double>(left);
  for (const auto& p : paths) {
    const bool is_preferred = p.unit_cost <= min_cost;
    if (is_preferred) {
      // Preferred paths always run at full capacity.
      control_.set_path_enabled(p.id, true);
      deliverable += control_.path_throughput(p.id).bps() / 8.0 *
                     std::max(budget_s, 0.0);
      continue;
    }
    const bool enabled = control_.path_enabled(p.id);
    // Hysteresis: require the inequality to clear a small margin before
    // flipping state.
    const double h = config_.hysteresis;
    bool want = enabled;
    if (enabled && deliverable > need * (1.0 + h)) {
      want = false;  // line 17: cheaper set suffices, drop this path
      enable_streak_ = 0;
    } else if (!enabled && deliverable < need * (1.0 - h)) {
      // line 20: cheaper set misses the deadline — but only act once the
      // shortfall has persisted (debounce against transient estimate dips).
      ++enable_streak_;
      if (enable_streak_ >= config_.enable_debounce_ticks) {
        want = true;
        enable_streak_ = 0;
      }
    } else {
      enable_streak_ = 0;
    }
    if (want != enabled) {
      if (want) {
        ++activations_;
        if (telemetry_) activations_counter_.increment();
      }
      emit_decision(now, want ? "enable" : "disable", p.id, want, budget_s,
                    deliverable, need);
    }
    control_.set_path_enabled(p.id, want);
    if (want) {
      deliverable += control_.path_throughput(p.id).bps() / 8.0 *
                     std::max(budget_s, 0.0);
    }
  }
}

void DeadlineScheduler::end() {
  if (!active_) return;
  active_ = false;
  emit_decision(last_update_, "end", -1, true, 0.0, 0.0,
                static_cast<double>(remaining()));
  // Vanilla MPTCP resumes: every path usable.
  for (const auto& p : control_.paths()) {
    control_.set_path_enabled(p.id, true);
  }
}

}  // namespace mpdash
