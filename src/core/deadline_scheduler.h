#pragma once
// The MP-DASH deadline-aware scheduler (paper §4, Algorithm 1).
//
// Given a transfer of S bytes due in D, the scheduler keeps the preferred
// (cheapest) path(s) at full capacity and toggles costlier paths on only
// when the preferred capacity alone would miss the deadline:
//
//   enable  costly path  iff (alpha*D - timeSpent) * R_pref < S - sent
//   disable costly path  iff (alpha*D - timeSpent) * R_pref > S - sent
//
// generalized to N paths by feeding data cheapest-first (§4, "Optimality").
// alpha < 1 finishes ahead of the real deadline to absorb estimation error
// at the cost of extra costly-path bytes.

#include <cstdint>

#include "core/multipath_control.h"
#include "telemetry/telemetry.h"

namespace mpdash {

struct DeadlineSchedulerConfig {
  // Safety factor on the deadline (Algorithm 1 lines 16/19).
  double alpha = 1.0;
  // Hysteresis margin: a path's state flips only if the inequality holds
  // with this relative slack, preventing on/off flapping when the two
  // sides are nearly equal. 0 reproduces the paper's algorithm literally.
  double hysteresis = 0.05;
  // Consecutive update() rounds the enable condition must hold before a
  // costly path is switched on. TCP's slow-start restart makes the first
  // throughput samples of every transfer look like a WiFi collapse; one
  // extra tick of patience (~100 ms against multi-second deadlines)
  // avoids waking the cellular radio for that artifact. 1 reproduces the
  // paper's algorithm literally.
  int enable_debounce_ticks = 2;
};

class DeadlineScheduler {
 public:
  DeadlineScheduler(MultipathControl& control,
                    DeadlineSchedulerConfig config = {});

  // Activates MP-DASH for the next `size` bytes due at now + `window`
  // (the MP_DASH_ENABLE socket option). Cheapest path(s) are enabled,
  // all costlier paths disabled, matching Algorithm 1's initialization.
  // A nonzero `span` marks the chunk span owning this transfer: every
  // kSchedDecision record is stamped with it, which keeps decisions
  // attributable when a pipelined player has several spans open (ambient
  // stamping would pick whichever span is top of stack at update time).
  void begin(TimePoint now, Bytes size, Duration window, SpanId span = 0);

  // Re-evaluates path states (the body of Algorithm 1's loop). Call on a
  // timer or after delivery progress. No-op when inactive.
  void update(TimePoint now);

  // Deactivates (MP_DASH_DISABLE / S bytes done / deadline passed): all
  // paths re-enabled, vanilla MPTCP behavior resumes.
  void end();

  bool active() const { return active_; }
  // The transfer completed within its window (checked during update()).
  bool deadline_missed() const { return deadline_missed_; }
  TimePoint deadline() const { return deadline_; }
  Bytes target_bytes() const { return size_; }

  // Number of enable flips of non-preferred paths this transfer.
  int costly_path_activations() const { return activations_; }

  const DeadlineSchedulerConfig& config() const { return config_; }

  // Registers `sched.*` counters and emits kSchedDecision trace records
  // carrying each Algorithm-1 evaluation's inputs (time budget, deliverable
  // bytes of the kept set, remaining bytes). nullptr detaches.
  void set_telemetry(Telemetry* telemetry);

 private:
  Bytes remaining() const;
  void emit_decision(TimePoint now, const char* label, int path_id,
                     bool enabled, double budget_s, double deliverable,
                     double remaining_bytes);

  MultipathControl& control_;
  DeadlineSchedulerConfig config_;

  bool active_ = false;
  bool deadline_missed_ = false;
  TimePoint start_ = kTimeZero;
  TimePoint deadline_ = kTimeZero;
  Duration window_ = kDurationZero;
  Bytes size_ = 0;
  Bytes base_transferred_ = 0;
  int activations_ = 0;
  int enable_streak_ = 0;
  TimePoint last_update_ = kTimeZero;
  SpanId owner_span_ = 0;  // stamped onto every decision record

  Telemetry* telemetry_ = nullptr;
  Counter activations_counter_;
  Counter transfers_counter_;
  Counter misses_counter_;
};

}  // namespace mpdash
