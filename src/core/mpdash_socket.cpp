#include "core/mpdash_socket.h"

#include <algorithm>
#include <limits>

namespace mpdash {

MpDashSocket::MpDashSocket(EventLoop& loop, MptcpConnection& conn,
                           MpDashSocketConfig config)
    : loop_(loop),
      conn_(conn),
      config_(config),
      scheduler_(*this, config.scheduler),
      mask_(kAllPathsMask) {}

MpDashSocket::~MpDashSocket() { stop_timer(); }

void MpDashSocket::enable(Bytes size, Duration window, SpanId span) {
  if (scheduler_.active()) scheduler_.end();
  conn_.client().set_sampling_active(true);
  scheduler_.begin(loop_.now(), size, window, span);
  stop_timer();
  timer_ = loop_.schedule_in(config_.check_interval, [this] { tick(); });
}

void MpDashSocket::disable() {
  scheduler_.end();
  stop_timer();
  conn_.client().set_sampling_active(false);
}

void MpDashSocket::tick() {
  timer_ = EventId{};
  scheduler_.update(loop_.now());
  if (!scheduler_.active()) {
    if (scheduler_.deadline_missed()) ++deadline_misses_;
    conn_.client().set_sampling_active(false);
    return;
  }
  timer_ = loop_.schedule_in(config_.check_interval, [this] { tick(); });
}

void MpDashSocket::stop_timer() {
  loop_.cancel(timer_);
  timer_ = EventId{};
}

DataRate MpDashSocket::aggregate_throughput() const {
  return conn_.client().aggregate_throughput_estimate();
}

DataRate MpDashSocket::wifi_throughput() const {
  const auto all = paths();
  if (all.empty()) return DataRate::bits_per_second(0);
  const ControlledPath* best = &all.front();
  for (const auto& p : all) {
    if (p.unit_cost < best->unit_cost) best = &p;
  }
  return path_throughput(best->id);
}

std::vector<ControlledPath> MpDashSocket::paths() const {
  std::vector<ControlledPath> out;
  out.reserve(conn_.paths().size());
  for (const NetPath* p : conn_.paths()) {
    out.push_back({p->id(), p->description().unit_cost});
  }
  return out;
}

void MpDashSocket::set_path_enabled(int path_id, bool enabled) {
  const std::uint32_t bit = 1u << path_id;
  const std::uint32_t next = enabled ? (mask_ | bit) : (mask_ & ~bit);
  if (next == mask_) return;
  mask_ = next;
  conn_.client().signal_path_mask(mask_);
}

bool MpDashSocket::path_enabled(int path_id) const {
  return (mask_ >> path_id) & 1u;
}

Bytes MpDashSocket::transferred_bytes() const {
  return conn_.client().delivered_payload_total();
}

DataRate MpDashSocket::path_throughput(int path_id) const {
  return conn_.client().path_throughput_estimate(path_id);
}

}  // namespace mpdash
