#pragma once
// The application-facing MP-DASH interface (paper §3.2): a socket-option
// style API on the client side of an MPTCP connection.
//
//   socket.enable(S, D);   // MP_DASH_ENABLE: next S bytes due within D
//   ...issue the HTTP request...
//   socket.disable();      // MP_DASH_DISABLE (optional; auto on S or D)
//
// plus the query half of the interface: aggregate_throughput(), which
// gives rate adaptation a consistent view of capacity across all paths
// even while MP-DASH has the costly path disabled.
//
// Internally this is the *decision function* of the split scheduler: it
// runs Algorithm 1 on a timer and ships path enable/disable decisions to
// the server's *enforcement function* via the DSS-option bit that the
// endpoint piggybacks on every ack.

#include <memory>

#include "core/deadline_scheduler.h"
#include "mptcp/connection.h"
#include "sim/event_loop.h"

namespace mpdash {

struct MpDashSocketConfig {
  DeadlineSchedulerConfig scheduler;
  // Decision-function cadence (the paper re-evaluates per packet in the
  // kernel; 50 ms ~ one metro-WiFi RTT is equivalent at chunk granularity).
  Duration check_interval = milliseconds(50);
};

class MpDashSocket : public MultipathControl {
 public:
  MpDashSocket(EventLoop& loop, MptcpConnection& conn,
               MpDashSocketConfig config = {});
  ~MpDashSocket() override;

  MpDashSocket(const MpDashSocket&) = delete;
  MpDashSocket& operator=(const MpDashSocket&) = delete;

  // MP_DASH_ENABLE: activates the scheduler for the next `size` bytes with
  // deadline window `window`. `span` tags the owning chunk span onto
  // every scheduler decision record (0 = ambient stamping).
  void enable(Bytes size, Duration window, SpanId span = 0);
  // MP_DASH_DISABLE.
  void disable();

  bool active() const { return scheduler_.active(); }
  bool last_deadline_missed() const { return scheduler_.deadline_missed(); }
  int deadline_misses() const { return deadline_misses_; }

  // Aggregated throughput estimate across all paths (enabled or not) for
  // rate adaptation (§3.2, second part of the interface).
  DataRate aggregate_throughput() const;
  DataRate wifi_throughput() const;  // cheapest path's estimate

  // --- MultipathControl (exposed for the scheduler and for tests) ------
  std::vector<ControlledPath> paths() const override;
  void set_path_enabled(int path_id, bool enabled) override;
  bool path_enabled(int path_id) const override;
  Bytes transferred_bytes() const override;
  DataRate path_throughput(int path_id) const override;

  DeadlineScheduler& scheduler() { return scheduler_; }

  // Forwards telemetry to the deadline scheduler (the connection is wired
  // separately by its owner). nullptr detaches.
  void set_telemetry(Telemetry* telemetry) {
    scheduler_.set_telemetry(telemetry);
  }

 private:
  void tick();
  void stop_timer();

  EventLoop& loop_;
  MptcpConnection& conn_;
  MpDashSocketConfig config_;
  DeadlineScheduler scheduler_;
  std::uint32_t mask_;
  EventId timer_;
  int deadline_misses_ = 0;
};

}  // namespace mpdash
