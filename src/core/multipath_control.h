#pragma once
// Abstraction the deadline scheduler drives.
//
// Keeping Algorithm 1 behind this narrow interface means it can run
// against the real MPTCP client endpoint (src/core/mpdash_socket.h), the
// trace-driven simulator (bench_tab2), or test mocks, unchanged.

#include <vector>

#include "util/units.h"

namespace mpdash {

struct ControlledPath {
  int id = 0;
  // Unit-data cost c(i) from the paper's formulation. The scheduler feeds
  // data cheapest-first; strictly cheapest path(s) stay always-on.
  double unit_cost = 0.0;
};

class MultipathControl {
 public:
  virtual ~MultipathControl() = default;

  // Paths in no particular order; stable across the object's lifetime.
  virtual std::vector<ControlledPath> paths() const = 0;

  virtual void set_path_enabled(int path_id, bool enabled) = 0;
  virtual bool path_enabled(int path_id) const = 0;

  // Bytes of the tracked object transferred so far ("sentBytes").
  virtual Bytes transferred_bytes() const = 0;

  // Current throughput estimate of a path (Holt-Winters at the client).
  virtual DataRate path_throughput(int path_id) const = 0;
};

}  // namespace mpdash
