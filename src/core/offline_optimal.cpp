#include "core/offline_optimal.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace mpdash {

SlottedInstance SlottedInstance::from_traces(
    const std::vector<const BandwidthTrace*>& traces,
    const std::vector<double>& costs, Bytes target, Duration deadline,
    Duration slot) {
  if (traces.size() != costs.size()) {
    throw std::invalid_argument("traces/costs size mismatch");
  }
  if (slot <= kDurationZero || deadline < slot) {
    throw std::invalid_argument("bad slot/deadline");
  }
  SlottedInstance inst;
  inst.slot = slot;
  inst.unit_cost = costs;
  inst.target = target;
  const auto n_slots = static_cast<std::size_t>(deadline / slot);
  for (const BandwidthTrace* tr : traces) {
    std::vector<Bytes> row(n_slots);
    for (std::size_t j = 0; j < n_slots; ++j) {
      const TimePoint a = TimePoint(slot * static_cast<std::int64_t>(j));
      row[j] = tr->bytes_between(a, a + slot);
    }
    inst.bytes_per_slot.push_back(std::move(row));
  }
  return inst;
}

Bytes ScheduleResult::bytes_on_interface(const SlottedInstance& inst,
                                         std::size_t i) const {
  Bytes total = 0;
  for (std::size_t j = 0; j < inst.slots(); ++j) {
    if (use[i][j]) total += inst.bytes_per_slot[i][j];
  }
  return total;
}

ScheduleResult optimal_dp(const SlottedInstance& inst, Bytes unit) {
  if (unit <= 0) throw std::invalid_argument("unit must be positive");
  const std::size_t n = inst.interfaces();
  const std::size_t d = inst.slots();

  struct Item {
    std::size_t i, j;
    Bytes weight;       // coarsened units
    double value;
  };
  std::vector<Item> items;
  items.reserve(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const Bytes b = inst.bytes_per_slot[i][j];
      if (b <= 0) continue;
      items.push_back({i, j, b / unit,
                       inst.unit_cost[i] * static_cast<double>(b)});
    }
  }
  const Bytes target_units = (inst.target + unit - 1) / unit;
  const auto w_cap = static_cast<std::size_t>(target_units);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[k][w] = min cost using first k items to cover >= w units (w capped).
  std::vector<std::vector<double>> dp(
      items.size() + 1, std::vector<double>(w_cap + 1, kInf));
  dp[0][0] = 0.0;
  for (std::size_t k = 0; k < items.size(); ++k) {
    const Item& it = items[k];
    for (std::size_t w = 0; w <= w_cap; ++w) {
      if (dp[k][w] == kInf) continue;
      // skip item
      dp[k + 1][w] = std::min(dp[k + 1][w], dp[k][w]);
      // take item
      const std::size_t nw =
          std::min<std::size_t>(w_cap, w + static_cast<std::size_t>(it.weight));
      dp[k + 1][nw] = std::min(dp[k + 1][nw], dp[k][w] + it.value);
    }
  }

  ScheduleResult res;
  res.use.assign(n, std::vector<bool>(d, false));
  if (dp[items.size()][w_cap] == kInf) {
    res.feasible = false;
    return res;
  }
  res.feasible = true;
  res.total_cost = dp[items.size()][w_cap];

  // Reconstruct: walk items backwards deciding take/skip.
  std::size_t w = w_cap;
  for (std::size_t k = items.size(); k-- > 0;) {
    // Was dp[k+1][w] achieved by skipping?
    if (dp[k][w] == dp[k + 1][w]) continue;
    // Otherwise the item was taken from some w' with min(cap, w'+wt) == w.
    const Item& it = items[k];
    bool found = false;
    for (std::size_t pw = 0; pw <= w_cap; ++pw) {
      const std::size_t nw =
          std::min<std::size_t>(w_cap, pw + static_cast<std::size_t>(it.weight));
      if (nw == w && dp[k][pw] + it.value == dp[k + 1][w]) {
        res.use[it.i][it.j] = true;
        res.total_bytes += inst.bytes_per_slot[it.i][it.j];
        w = pw;
        found = true;
        break;
      }
    }
    assert(found);
    (void)found;
  }
  return res;
}

ScheduleResult greedy_waterfall(const SlottedInstance& inst) {
  const std::size_t n = inst.interfaces();
  const std::size_t d = inst.slots();
  ScheduleResult res;
  res.use.assign(n, std::vector<bool>(d, false));

  // Interface order: cheapest first.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (inst.unit_cost[a] != inst.unit_cost[b]) {
      return inst.unit_cost[a] < inst.unit_cost[b];
    }
    return a < b;
  });

  Bytes covered = 0;
  for (std::size_t oi = 0; oi < n && covered < inst.target; ++oi) {
    const std::size_t i = order[oi];
    if (oi == 0) {
      // Cheapest interface: use every slot.
      for (std::size_t j = 0; j < d; ++j) {
        if (inst.bytes_per_slot[i][j] <= 0) continue;
        res.use[i][j] = true;
        covered += inst.bytes_per_slot[i][j];
        res.total_cost += inst.unit_cost[i] *
                          static_cast<double>(inst.bytes_per_slot[i][j]);
      }
      continue;
    }
    // Costlier interface: fill from the latest slots backwards — the
    // shape Algorithm 1 converges to with perfect knowledge (enable the
    // costly path as late as possible).
    for (std::size_t j = d; j-- > 0 && covered < inst.target;) {
      const Bytes b = inst.bytes_per_slot[i][j];
      if (b <= 0) continue;
      res.use[i][j] = true;
      covered += b;
      res.total_cost += inst.unit_cost[i] * static_cast<double>(b);
    }
  }
  res.total_bytes = covered;
  res.feasible = covered >= inst.target;
  return res;
}

TwoPathFluidResult optimal_two_path_fluid(const BandwidthTrace& preferred,
                                          const BandwidthTrace& costly,
                                          Bytes target, Duration deadline) {
  TwoPathFluidResult res;
  const TimePoint end = TimePoint(deadline);
  const Bytes pref = preferred.bytes_between(kTimeZero, end);
  const Bytes cost_cap = costly.bytes_between(kTimeZero, end);
  if (pref >= target) {
    res.feasible = true;
    res.preferred_bytes = target;
    res.costly_bytes = 0;
  } else {
    res.preferred_bytes = pref;
    res.costly_bytes = std::min(cost_cap, target - pref);
    res.feasible = pref + cost_cap >= target;
  }
  res.costly_fraction = target > 0 ? static_cast<double>(res.costly_bytes) /
                                         static_cast<double>(target)
                                   : 0.0;
  return res;
}

}  // namespace mpdash
