#pragma once
// Offline schedulers for the paper's general formulation (§4): choose
// which interface to use in which time slot so the S-byte transfer meets
// its deadline at minimum cost. These are the yardsticks the online
// Algorithm 1 is compared against (Table 2) and the oracle used in tests.

#include <vector>

#include "trace/bandwidth_trace.h"
#include "util/units.h"

namespace mpdash {

// A discretized instance: N interfaces x D slots of duration `slot`;
// bytes_per_slot[i][j] = b(i,j)*d, unit_cost[i] = c(i).
struct SlottedInstance {
  Duration slot = milliseconds(50);
  std::vector<std::vector<Bytes>> bytes_per_slot;
  std::vector<double> unit_cost;
  Bytes target = 0;  // S

  std::size_t interfaces() const { return bytes_per_slot.size(); }
  std::size_t slots() const {
    return bytes_per_slot.empty() ? 0 : bytes_per_slot.front().size();
  }
  // Builds an instance by sampling bandwidth traces over [0, deadline).
  static SlottedInstance from_traces(
      const std::vector<const BandwidthTrace*>& traces,
      const std::vector<double>& costs, Bytes target, Duration deadline,
      Duration slot);
};

struct ScheduleResult {
  bool feasible = false;
  double total_cost = 0.0;
  Bytes total_bytes = 0;
  // x(i,j): interface i used during slot j.
  std::vector<std::vector<bool>> use;

  Bytes bytes_on_interface(const SlottedInstance& inst, std::size_t i) const;
};

// Exact 0-1 min-knapsack via dynamic programming: minimize total cost
// subject to total bytes >= target. `unit` coarsens byte weights to keep
// the DP table tractable (weights are rounded down, so the result is
// feasible w.r.t. the coarsened instance). Complexity O(N*D*S/unit).
ScheduleResult optimal_dp(const SlottedInstance& inst, Bytes unit = 1);

// Cost-sorted greedy ("waterfall"): cheapest interface used everywhere,
// each costlier interface only in the latest slots needed to close the
// remaining gap. Optimal for N=2 with fractional slot use; an
// approximation for general cost profiles.
ScheduleResult greedy_waterfall(const SlottedInstance& inst);

// Fluid (fractional-slot) two-path optimum, computed directly from the
// traces: the preferred path runs the whole window; the costly path
// contributes exactly the deficit. This is the "Cell % Optimal" column of
// Table 2.
struct TwoPathFluidResult {
  bool feasible = false;
  Bytes preferred_bytes = 0;
  Bytes costly_bytes = 0;
  double costly_fraction = 0.0;  // costly_bytes / S
};
TwoPathFluidResult optimal_two_path_fluid(const BandwidthTrace& preferred,
                                          const BandwidthTrace& costly,
                                          Bytes target, Duration deadline);

}  // namespace mpdash
