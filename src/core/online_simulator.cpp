#include "core/online_simulator.h"

#include <stdexcept>

namespace mpdash {

OnlineSimResult simulate_online_two_path(const BandwidthTrace& preferred,
                                         const BandwidthTrace& costly,
                                         Bytes target, Duration deadline,
                                         const OnlineSimConfig& config) {
  if (target <= 0 || deadline <= kDurationZero) {
    throw std::invalid_argument("target and deadline must be positive");
  }
  OnlineSimResult res;
  HoltWinters predictor(config.hw);

  Bytes sent = 0;
  bool costly_enabled = false;  // Algorithm 1 line 3
  int enable_streak = 0;
  const TimePoint due = TimePoint(deadline);
  TimePoint t = kTimeZero;
  const double alpha_D = config.alpha * to_seconds(deadline);

  // Hard stop far past any sane deadline (zero-rate tails).
  const TimePoint hard_stop = due + TimePoint(seconds(3600.0));

  while (sent < target && t < hard_stop) {
    const TimePoint next = t + config.slot;
    const bool past_deadline = t >= due;

    // Deliver this slot's bytes on the enabled paths.
    const Bytes pref_b = preferred.bytes_between(t, next);
    sent += pref_b;
    res.preferred_bytes += pref_b;
    Bytes cost_b = 0;
    if (costly_enabled || past_deadline) {
      cost_b = costly.bytes_between(t, next);
      sent += cost_b;
      res.costly_bytes += cost_b;
    }

    // Observe the preferred path's throughput (line 15).
    predictor.add_sample(rate_of(pref_b, config.slot));
    const DataRate r_pref = predictor.predict();

    res.timeline.push_back(
        {t, costly_enabled || past_deadline, pref_b, cost_b, r_pref});

    t = next;
    if (sent >= target) break;

    if (past_deadline) {
      // Deactivated: both interfaces run until the transfer drains.
      costly_enabled = true;
      continue;
    }
    // Lines 16-21: compare deliverable preferred bytes against remainder,
    // with the kernel scheduler's hysteresis + enable debounce.
    const double budget_s = alpha_D - to_seconds(t);
    const double deliverable = r_pref.bps() / 8.0 * std::max(budget_s, 0.0);
    const double remaining = static_cast<double>(target - sent);
    const double h = config.hysteresis;
    if (costly_enabled && deliverable > remaining * (1.0 + h)) {
      costly_enabled = false;  // line 17
      enable_streak = 0;
    } else if (!costly_enabled && deliverable < remaining * (1.0 - h)) {
      if (++enable_streak >= config.enable_debounce_ticks) {
        costly_enabled = true;  // line 20
        enable_streak = 0;
      }
    } else {
      enable_streak = 0;
    }
  }

  res.finish_time = Duration(t);
  res.deadline_missed = Duration(t) > deadline;
  if (res.deadline_missed) res.miss_by = Duration(t) - deadline;
  res.costly_fraction =
      static_cast<double>(res.costly_bytes) / static_cast<double>(target);
  return res;
}

}  // namespace mpdash
