#pragma once
// Discrete-time simulator of Algorithm 1 with Holt-Winters prediction —
// the methodology of the paper's §7.2.2 trace-driven study (Table 2).
//
// Unlike the packet-level stack, this simulator advances in fixed slots
// (one RTT each), delivers exactly the trace's bytes on every enabled
// path, and lets us compare the online algorithm against the
// perfect-knowledge optimum on identical inputs.

#include <vector>

#include "predict/holt_winters.h"
#include "trace/bandwidth_trace.h"

namespace mpdash {

struct OnlineSimConfig {
  double alpha = 1.0;
  Duration slot = milliseconds(50);  // paper: slot length = RTT
  HoltWintersParams hw;
  // Same damping the kernel scheduler applies (see
  // DeadlineSchedulerConfig): relative hysteresis margin on the
  // enable/disable inequality and consecutive-shortfall debounce before
  // enabling the costly path. Set to 0/1 for the literal Algorithm 1.
  double hysteresis = 0.05;
  int enable_debounce_ticks = 2;
};

struct OnlineSimSlot {
  TimePoint start;
  bool costly_enabled = false;
  Bytes preferred_bytes = 0;
  Bytes costly_bytes = 0;
  DataRate predicted_preferred;
};

struct OnlineSimResult {
  bool deadline_missed = false;
  Duration miss_by = kDurationZero;  // how late the transfer finished
  Duration finish_time = kDurationZero;
  Bytes preferred_bytes = 0;
  Bytes costly_bytes = 0;
  double costly_fraction = 0.0;  // costly bytes / S
  std::vector<OnlineSimSlot> timeline;
};

// Runs Algorithm 1 for an S-byte transfer due at `deadline` over two
// paths. The costly path starts disabled; after a missed deadline both
// paths run until completion (matching the paper's deactivation rule).
OnlineSimResult simulate_online_two_path(const BandwidthTrace& preferred,
                                         const BandwidthTrace& costly,
                                         Bytes target, Duration deadline,
                                         const OnlineSimConfig& config = {});

}  // namespace mpdash
