#pragma once
// User-facing multipath policies (paper §3.2, "Interface for the User").
//
// A policy assigns each interface kind a unit-data cost; the deadline
// scheduler feeds data cheapest-first. The two built-in policies are the
// prototype's prefer-WiFi (the common case) and prefer-cellular (useful
// under mobility); arbitrary cost profiles plug in without touching the
// DASH adapter, exactly as the paper argues.

#include <string>
#include <vector>

#include "link/path.h"

namespace mpdash {

struct PathPolicy {
  std::string name;
  double wifi_cost = 0.0;
  double cellular_cost = 1.0;
  double other_cost = 0.5;

  double cost_for(InterfaceKind kind) const {
    switch (kind) {
      case InterfaceKind::kWifi: return wifi_cost;
      case InterfaceKind::kCellular: return cellular_cost;
      default: return other_cost;
    }
  }

  // Applies this policy's costs to a set of path descriptions.
  void apply(std::vector<PathDescription>& paths) const {
    for (auto& p : paths) p.unit_cost = cost_for(p.kind);
  }
};

inline PathPolicy prefer_wifi_policy() {
  return PathPolicy{"prefer-wifi", 0.0, 1.0, 0.5};
}

inline PathPolicy prefer_cellular_policy() {
  return PathPolicy{"prefer-cellular", 1.0, 0.0, 0.5};
}

}  // namespace mpdash
