#include "dash/buffer.h"

#include <algorithm>
#include <stdexcept>

namespace mpdash {

PlaybackBuffer::PlaybackBuffer(Duration capacity) : capacity_(capacity) {
  if (capacity_ <= kDurationZero) {
    throw std::invalid_argument("buffer capacity must be positive");
  }
}

void PlaybackBuffer::settle(TimePoint now) const {
  if (playing_) {
    const Duration played = now - last_update_;
    level_ = std::max(kDurationZero, level_ - played);
  }
  last_update_ = now;
}

Duration PlaybackBuffer::level(TimePoint now) const {
  settle(now);
  return level_;
}

bool PlaybackBuffer::has_room(TimePoint now, Duration chunk_duration) const {
  return level(now) + chunk_duration <= capacity_;
}

void PlaybackBuffer::add(TimePoint now, Duration chunk_duration) {
  settle(now);
  level_ = std::min(capacity_, level_ + chunk_duration);
  total_added_ += chunk_duration;
}

void PlaybackBuffer::set_playing(TimePoint now, bool playing) {
  settle(now);
  playing_ = playing;
}

TimePoint PlaybackBuffer::depletion_time(TimePoint now) const {
  settle(now);
  if (!playing_) return TimePoint::max();
  return now + level_;
}

}  // namespace mpdash
