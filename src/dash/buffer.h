#pragma once
// Playback buffer: seconds of downloaded-but-unplayed content.
//
// Lazy continuous-time accounting: the level is recomputed from the last
// update instant, draining at 1 s/s while playing. The player drives
// state transitions (playing/paused) and reads the level for adaptation
// and for MP-DASH's deadline extension.

#include "util/units.h"

namespace mpdash {

class PlaybackBuffer {
 public:
  explicit PlaybackBuffer(Duration capacity);

  Duration capacity() const { return capacity_; }

  // Content seconds buffered at time `now`.
  Duration level(TimePoint now) const;

  // True if a chunk of `chunk_duration` still fits at `now`.
  bool has_room(TimePoint now, Duration chunk_duration) const;

  // Adds one downloaded chunk's play time. Clamps at capacity (the player
  // should avoid fetching into a full buffer; clamping guards rounding).
  void add(TimePoint now, Duration chunk_duration);

  // Playback control.
  void set_playing(TimePoint now, bool playing);
  bool playing() const { return playing_; }

  // Time at which the buffer empties if no chunk arrives (TimePoint::max()
  // when paused or already empty-proof).
  TimePoint depletion_time(TimePoint now) const;

  // Total content seconds ever added (= play position + level).
  Duration total_added() const { return total_added_; }

 private:
  void settle(TimePoint now) const;

  Duration capacity_;
  mutable Duration level_ = kDurationZero;
  mutable TimePoint last_update_ = kTimeZero;
  bool playing_ = false;
  Duration total_added_ = kDurationZero;
};

}  // namespace mpdash
