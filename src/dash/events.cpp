#include "dash/events.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "util/csv.h"

namespace mpdash {

const char* to_string(PlayerEventType t) {
  switch (t) {
    case PlayerEventType::kPlaybackStart: return "playback_start";
    case PlayerEventType::kChunkRequest: return "chunk_request";
    case PlayerEventType::kChunkComplete: return "chunk_complete";
    case PlayerEventType::kQualitySwitch: return "quality_switch";
    case PlayerEventType::kStallStart: return "stall_start";
    case PlayerEventType::kStallEnd: return "stall_end";
    case PlayerEventType::kBufferSample: return "buffer_sample";
    case PlayerEventType::kPlaybackDone: return "playback_done";
    case PlayerEventType::kChunkRetry: return "chunk_retry";
    case PlayerEventType::kChunkAbandoned: return "chunk_abandoned";
  }
  return "unknown";
}

namespace {

PlayerEventType type_from_string(const std::string& s) {
  for (int t = 0; t <= static_cast<int>(PlayerEventType::kChunkAbandoned); ++t) {
    const auto type = static_cast<PlayerEventType>(t);
    if (s == to_string(type)) return type;
  }
  throw std::invalid_argument("unknown event type: " + s);
}

}  // namespace

std::string event_log_to_csv(const std::vector<PlayerEvent>& log) {
  CsvWriter csv({"time_s", "event", "level", "chunk", "bytes", "extra"});
  char t[32], e[32];
  for (const auto& ev : log) {
    std::snprintf(t, sizeof(t), "%.6f", to_seconds(ev.at));
    std::snprintf(e, sizeof(e), "%.6f", ev.extra);
    csv.add_row({t, to_string(ev.type), std::to_string(ev.level),
                 std::to_string(ev.chunk), std::to_string(ev.bytes), e});
  }
  return csv.str();
}

std::vector<PlayerEvent> event_log_from_csv(const std::string& csv) {
  std::vector<PlayerEvent> log;
  for (const auto& row : parse_csv(csv)) {
    if (row.size() < 6 || row[0] == "time_s") continue;
    PlayerEvent ev;
    ev.at = seconds(std::strtod(row[0].c_str(), nullptr));
    ev.type = type_from_string(row[1]);
    ev.level = std::atoi(row[2].c_str());
    ev.chunk = std::atoi(row[3].c_str());
    ev.bytes = std::atoll(row[4].c_str());
    ev.extra = std::strtod(row[5].c_str(), nullptr);
    log.push_back(ev);
  }
  return log;
}

}  // namespace mpdash
