#pragma once
// Player event log: the application-layer half of what the cross-layer
// analysis tool (src/analysis) correlates with the packet trace.

#include <string>
#include <vector>

#include "util/units.h"

namespace mpdash {

enum class PlayerEventType : std::uint8_t {
  kPlaybackStart,
  kChunkRequest,   // level, chunk, bytes(size), extra(deadline seconds)
  kChunkComplete,  // level, chunk, bytes(received)
  kQualitySwitch,  // level(new), chunk, extra(old level)
  kStallStart,
  kStallEnd,       // extra(stall seconds)
  kBufferSample,   // extra(buffer seconds)
  kPlaybackDone,
  kChunkRetry,     // level(retry level), chunk, extra(attempt number)
  kChunkAbandoned, // level(last tried), chunk
};

struct PlayerEvent {
  TimePoint at = kTimeZero;
  PlayerEventType type = PlayerEventType::kBufferSample;
  int level = -1;
  int chunk = -1;
  Bytes bytes = 0;
  double extra = 0.0;
};

const char* to_string(PlayerEventType t);

// One row per event: "time_s,event,level,chunk,bytes,extra".
std::string event_log_to_csv(const std::vector<PlayerEvent>& log);
std::vector<PlayerEvent> event_log_from_csv(const std::string& csv);

}  // namespace mpdash
