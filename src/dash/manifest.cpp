#include "dash/manifest.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace mpdash {
namespace {

// Extracts attribute `name="..."` from `tag`; throws if absent.
std::string attr(const std::string& tag, const std::string& name) {
  const std::string key = name + "=\"";
  const std::size_t at = tag.find(key);
  if (at == std::string::npos) {
    throw std::invalid_argument("missing attribute " + name);
  }
  const std::size_t start = at + key.size();
  const std::size_t end = tag.find('"', start);
  if (end == std::string::npos) {
    throw std::invalid_argument("unterminated attribute " + name);
  }
  return tag.substr(start, end - start);
}

std::string xml_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string xml_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out += s[i];
      continue;
    }
    if (s.compare(i, 5, "&amp;") == 0) { out += '&'; i += 4; }
    else if (s.compare(i, 4, "&lt;") == 0) { out += '<'; i += 3; }
    else if (s.compare(i, 4, "&gt;") == 0) { out += '>'; i += 3; }
    else if (s.compare(i, 6, "&quot;") == 0) { out += '"'; i += 5; }
    else out += s[i];
  }
  return out;
}

}  // namespace

std::string manifest_to_xml(const Video& video) {
  std::ostringstream out;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out << "<MPD name=\"" << xml_escape(video.name()) << "\""
      << " chunkDurationMs=\"" << to_milliseconds(video.chunk_duration())
      << "\" chunks=\"" << video.chunk_count() << "\">\n";
  for (const auto& lv : video.levels()) {
    out << "  <Representation id=\"" << lv.index << "\" bandwidth=\""
        << static_cast<long long>(lv.avg_bitrate.bps()) << "\">\n";
    out << "    <ChunkSizes>";
    for (int k = 0; k < video.chunk_count(); ++k) {
      if (k) out << ' ';
      out << video.chunk_size(lv.index, k);
    }
    out << "</ChunkSizes>\n  </Representation>\n";
  }
  out << "</MPD>\n";
  return out.str();
}

Video video_from_manifest(const std::string& xml) {
  const std::size_t mpd_at = xml.find("<MPD");
  if (mpd_at == std::string::npos) throw std::invalid_argument("no <MPD>");
  const std::size_t mpd_end = xml.find('>', mpd_at);
  const std::string mpd_tag = xml.substr(mpd_at, mpd_end - mpd_at);

  const std::string name = xml_unescape(attr(mpd_tag, "name"));
  const double chunk_ms = std::strtod(attr(mpd_tag, "chunkDurationMs").c_str(),
                                      nullptr);
  const int chunks = std::atoi(attr(mpd_tag, "chunks").c_str());
  if (chunk_ms <= 0 || chunks <= 0) {
    throw std::invalid_argument("bad MPD attributes");
  }

  std::vector<DataRate> rates;
  std::vector<std::vector<Bytes>> sizes;
  std::size_t pos = mpd_end;
  while (true) {
    const std::size_t rep_at = xml.find("<Representation", pos);
    if (rep_at == std::string::npos) break;
    const std::size_t rep_end = xml.find('>', rep_at);
    const std::string rep_tag = xml.substr(rep_at, rep_end - rep_at);
    rates.push_back(DataRate::bits_per_second(
        std::strtod(attr(rep_tag, "bandwidth").c_str(), nullptr)));

    const std::size_t cs_at = xml.find("<ChunkSizes>", rep_end);
    const std::size_t cs_end = xml.find("</ChunkSizes>", cs_at);
    if (cs_at == std::string::npos || cs_end == std::string::npos) {
      throw std::invalid_argument("missing <ChunkSizes>");
    }
    std::istringstream list(xml.substr(cs_at + 12, cs_end - cs_at - 12));
    std::vector<Bytes> row;
    long long v = 0;
    while (list >> v) row.push_back(v);
    if (static_cast<int>(row.size()) != chunks) {
      throw std::invalid_argument("chunk size count mismatch");
    }
    sizes.push_back(std::move(row));
    pos = cs_end;
  }
  if (rates.empty()) throw std::invalid_argument("no representations");

  // Rebuild via the constructor (which regenerates sizes), then overwrite
  // with the exact parsed sizes through a dedicated hook: instead we
  // construct a Video whose sizes we can't inject... so Video grows a
  // second constructor taking explicit sizes.
  return Video(name, seconds(chunk_ms / 1000.0), chunks, std::move(rates),
               std::move(sizes));
}

std::string manifest_url() { return "/video/manifest.mpd"; }

std::string chunk_url(int level, int chunk) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/video/chunk-%d-%d.m4s", level, chunk);
  return buf;
}

bool parse_chunk_url(const std::string& target, int& level, int& chunk) {
  int l = 0, c = 0;
  if (std::sscanf(target.c_str(), "/video/chunk-%d-%d.m4s", &l, &c) != 2) {
    return false;
  }
  level = l;
  chunk = c;
  return true;
}

}  // namespace mpdash
