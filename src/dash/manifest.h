#pragma once
// DASH MPD (Media Presentation Description) subset.
//
// The manifest serializes a Video — including exact per-chunk sizes. The
// MPEG-DASH spec makes chunk size optional; the paper (following Yin et
// al.) argues it should be mandatory because deadline scheduling and
// model-predictive adaptation both need it, so our manifest always
// carries a <ChunkSizes> list per representation.

#include <string>

#include "dash/video.h"

namespace mpdash {

// XML text of the MPD for `video`.
std::string manifest_to_xml(const Video& video);

// Reconstructs a Video from MPD text produced by manifest_to_xml.
// Throws std::invalid_argument on malformed input.
Video video_from_manifest(const std::string& xml);

// URL scheme used between player and server.
std::string manifest_url();
std::string chunk_url(int level, int chunk);
// Parses a chunk URL; returns false if `target` is not a chunk URL.
bool parse_chunk_url(const std::string& target, int& level, int& chunk);

}  // namespace mpdash
