#include "dash/player.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mpdash {

DashPlayer::DashPlayer(EventLoop& loop, HttpClient& client,
                       RateAdaptation& adaptation, PlayerConfig config,
                       StreamingHooks* hooks)
    : loop_(loop),
      client_(client),
      adaptation_(adaptation),
      config_(config),
      hooks_(hooks) {}

DashPlayer::~DashPlayer() {
  loop_.cancel(fetch_timer_);
  loop_.cancel(depletion_timer_);
  loop_.cancel(sample_timer_);
}

void DashPlayer::start() {
  activate_span(&manifest_span_);
  open_span_record(manifest_span_, "manifest", -1, -1, 0, 0.0);
  client_.get(manifest_url(),
              [this](const HttpTransfer& t) { on_manifest(t); });
}

void DashPlayer::on_manifest(const HttpTransfer& transfer) {
  if (!transfer.ok()) {
    // Transport-level failure (timeout budget spent, stream poisoned).
    // Retry the manifest itself; without it there is nothing to play.
    if (++manifest_attempt_ < config_.max_chunk_attempts) {
      client_.get(manifest_url(),
                  [this](const HttpTransfer& t) { on_manifest(t); });
      return;
    }
    close_span(&manifest_span_, "failed", -1, -1, 0);
    manifest_failed_ = true;
    done_ = true;
    log(PlayerEventType::kPlaybackDone);
    if (on_done_) on_done_();
    return;
  }
  if (transfer.response.status != 200) {
    throw std::runtime_error("manifest fetch failed");
  }
  close_span(&manifest_span_, "delivered", -1, -1, transfer.body_bytes);
  video_ = video_from_manifest(transfer.body);
  buffer_.emplace(config_.buffer_capacity);
  sample_timer_ = loop_.schedule_in(config_.buffer_sample_interval,
                                    [this] { sample_buffer(); });
  fetch_next_chunk();
}

AdaptationView DashPlayer::make_view() const {
  AdaptationView v;
  v.now = loop_.now();
  v.buffer_level_s = to_seconds(buffer_->level(loop_.now()));
  v.buffer_capacity_s = to_seconds(buffer_->capacity());
  v.chunk_duration_s = to_seconds(video_->chunk_duration());
  // With prefetch the newest in-flight chunk is the adaptation's
  // reference level (it is the most recent decision); sequentially the
  // deque is empty whenever a view is built, so this is last_level_.
  v.last_level = inflight_.empty() ? last_level_ : inflight_.back().level;
  v.inflight_ahead = static_cast<int>(inflight_.size());
  v.next_chunk = next_chunk_;
  v.total_chunks = video_->chunk_count();
  v.in_startup = !playing_started_;
  v.bitrates.reserve(static_cast<std::size_t>(video_->level_count()));
  for (const auto& lv : video_->levels()) v.bitrates.push_back(lv.avg_bitrate);
  if (next_chunk_ < video_->chunk_count()) {
    for (int l = 0; l < video_->level_count(); ++l) {
      v.next_chunk_sizes.push_back(video_->chunk_size(l, next_chunk_));
    }
  }
  v.last_chunk_throughput = last_chunk_throughput_;
  if (hooks_) v.override_throughput = hooks_->throughput_override(v);
  return v;
}

void DashPlayer::schedule_fetch(int lookahead) {
  // Wait until the buffer has room for `lookahead` more chunks (every
  // in-flight one plus the next issue).
  const Duration level = buffer_->level(loop_.now());
  const Duration room_at =
      level + lookahead * video_->chunk_duration() - buffer_->capacity();
  loop_.cancel(fetch_timer_);
  fetch_timer_ = loop_.schedule_in(std::max(room_at, kDurationZero) +
                                       microseconds(1),
                                   [this] { fetch_next_chunk(); });
}

void DashPlayer::fetch_next_chunk() {
  fetch_timer_ = EventId{};
  if (done_ || all_fetched_) return;
  // Issue as many requests as the lookahead window and guards allow.
  // Every decline path below has a wake-up: buffer-room waits arm the
  // fetch timer, and the prefetch guards are re-evaluated at each chunk
  // completion (which calls back into this function).
  while (!done_) {
    if (next_chunk_ >= video_->chunk_count()) {
      all_fetched_ = true;
      return;
    }
    const int n = static_cast<int>(inflight_.size());
    if (n >= std::max(1, config_.max_inflight_chunks)) return;
    if (n > 0) {
      // Prefetch guards: while stalled, every byte should serve the
      // chunk the stall is waiting on; and once the oldest in-flight
      // chunk is past its deadline, adding competition for bandwidth
      // only deepens the miss.
      if (stalled_) return;
      if (loop_.now() > inflight_.front().abs_deadline) return;
    }
    if (!buffer_->has_room(loop_.now(), (n + 1) * video_->chunk_duration())) {
      schedule_fetch(n + 1);
      return;
    }
    issue_chunk();
  }
}

void DashPlayer::issue_chunk() {
  InflightChunk e;
  e.chunk = next_chunk_;

  // Open the span before level selection so the kQualitySwitch,
  // kChunkRequest, and Algorithm-1 "begin" records it triggers are all
  // stamped with this chunk's id.
  if (telemetry_ && telemetry_->tracing()) {
    e.span = telemetry_->open_span();
    e.span_opened = loop_.now();
    telemetry_->push_span(e.span);
  }

  AdaptationView view = make_view();
  int level = adaptation_.select_level(view);
  level = std::clamp(level, 0, video_->highest_level());

  const int prev_level = view.last_level;
  if (prev_level >= 0 && level != prev_level) {
    ++switches_;
    log(PlayerEventType::kQualitySwitch, level, e.chunk, 0,
        static_cast<double>(prev_level), e.span);
  }

  const Bytes size = video_->chunk_size(level, e.chunk);
  if (hooks_) {
    e.deadline = hooks_->on_chunk_request(view, level, size, e.chunk, e.span);
  }
  e.requested = loop_.now();
  e.level = level;
  e.buffer_at_request_s = to_seconds(buffer_->level(loop_.now()));
  if (e.deadline) e.abs_deadline = loop_.now() + *e.deadline;

  log(PlayerEventType::kChunkRequest, level, e.chunk, size,
      e.deadline ? to_seconds(*e.deadline) : 0.0, e.span);
  open_span_record(e.span, "chunk", level, e.chunk, size,
                   e.deadline ? to_seconds(*e.deadline) : 0.0);

  const int chunk = e.chunk;
  const SpanId span = e.span;
  inflight_.push_back(std::move(e));
  ++next_chunk_;
  client_.get(
      chunk_url(level, chunk),
      [this, chunk](const HttpTransfer& t) { on_chunk_done(chunk, t); },
      nullptr, span);
}

DashPlayer::InflightIter DashPlayer::find_inflight(int chunk) {
  return std::find_if(
      inflight_.begin(), inflight_.end(),
      [chunk](const InflightChunk& e) { return e.chunk == chunk; });
}

void DashPlayer::on_chunk_done(int chunk, const HttpTransfer& transfer) {
  InflightIter it = find_inflight(chunk);
  assert(it != inflight_.end());
  if (it == inflight_.end()) return;
  if (!transfer.ok()) {
    on_chunk_failed(it);
    return;
  }
  if (transfer.response.status != 200) {
    throw std::runtime_error("chunk fetch failed");
  }
  const TimePoint now = loop_.now();
  const InflightChunk e = *it;

  ChunkRecord rec;
  rec.chunk = e.chunk;
  rec.level = e.level;
  rec.span = e.span;
  rec.bytes = transfer.body_bytes;
  rec.requested = e.requested;
  rec.completed = now;
  rec.deadline = e.deadline;
  rec.buffer_at_request_s = e.buffer_at_request_s;
  chunk_log_.push_back(rec);

  last_chunk_throughput_ = rate_of(transfer.body_bytes, now - e.requested);
  adaptation_.on_chunk_downloaded(e.level, transfer.body_bytes,
                                  now - e.requested);

  buffer_->add(now, video_->chunk_duration());
  log(PlayerEventType::kChunkComplete, e.level, e.chunk, transfer.body_bytes,
      0.0, e.span);
  last_level_ = e.level;
  inflight_.erase(it);

  if (hooks_) hooks_->on_chunk_complete(make_view(), e.chunk);

  maybe_start_playback();
  // End-of-stream: nothing will ever refill the buffer again, so resume
  // with whatever is buffered rather than waiting for a threshold no
  // future delivery can reach (mirrors maybe_start_playback).
  if (stalled_ &&
      (no_more_chunks() ||
       buffer_->level(now) >= std::min(config_.startup_buffer,
                                       buffer_->capacity() / 2))) {
    stalled_ = false;
    buffer_->set_playing(now, true);
    total_stall_ += now - stall_started_;
    // The stall ended because this chunk landed; keep the record inside
    // its span.
    log(PlayerEventType::kStallEnd, -1, -1, 0,
        to_seconds(now - stall_started_), e.span);
  }
  arm_depletion_watch();
  emit_span_end(e.span, e.span_opened, "delivered", e.level, e.chunk,
                transfer.body_bytes);
  fetch_next_chunk();
}

void DashPlayer::on_chunk_failed(InflightIter it) {
  InflightChunk& e = *it;
  ++e.attempt;
  if (e.attempt >= config_.max_chunk_attempts) {
    abandon_chunk(it);
    return;
  }
  // Downshift-and-retry: a lower level is fewer bytes, which is the best
  // bet on whatever is left of the network.
  const int level = std::max(0, e.level - 1);
  ++chunk_retries_;
  log(PlayerEventType::kChunkRetry, level, e.chunk, 0,
      static_cast<double>(e.attempt), e.span);
  e.level = level;
  e.requested = loop_.now();
  e.buffer_at_request_s = to_seconds(buffer_->level(loop_.now()));
  const int chunk = e.chunk;
  client_.get(
      chunk_url(level, chunk),
      [this, chunk](const HttpTransfer& t) { on_chunk_done(chunk, t); },
      nullptr, e.span);
}

void DashPlayer::abandon_chunk(InflightIter it) {
  // The paper's graceful-degradation endpoint: give up on this chunk so
  // the session as a whole survives. Playback will skip the gap.
  const InflightChunk e = *it;
  ++chunks_abandoned_;
  log(PlayerEventType::kChunkAbandoned, e.level, e.chunk, 0, 0.0, e.span);
  emit_span_end(e.span, e.span_opened, "abandoned", e.level, e.chunk, 0);
  inflight_.erase(it);
  if (hooks_) hooks_->on_chunk_complete(make_view(), e.chunk);
  if (no_more_chunks() && stalled_) {
    // The chunk this stall was waiting for (and everything after it) is
    // gone; nothing will ever refill the buffer. Close the stall and end
    // the session instead of hanging.
    const TimePoint now = loop_.now();
    stalled_ = false;
    total_stall_ += now - stall_started_;
    log(PlayerEventType::kStallEnd, -1, -1, 0,
        to_seconds(now - stall_started_));
    finish();
    return;
  }
  maybe_start_playback();
  arm_depletion_watch();
  fetch_next_chunk();
}

void DashPlayer::maybe_start_playback() {
  if (playing_started_) return;
  const TimePoint now = loop_.now();
  const bool enough =
      buffer_->level(now) >= config_.startup_buffer || no_more_chunks();
  if (!enough) return;
  playing_started_ = true;
  buffer_->set_playing(now, true);
  log(PlayerEventType::kPlaybackStart);
  arm_depletion_watch();
}

void DashPlayer::arm_depletion_watch() {
  loop_.cancel(depletion_timer_);
  depletion_timer_ = EventId{};
  if (!playing_started_ || stalled_ || done_) return;
  const TimePoint at = buffer_->depletion_time(loop_.now());
  if (at == TimePoint::max()) return;
  depletion_timer_ = loop_.schedule_at(at, [this] { on_depleted(); });
}

void DashPlayer::on_depleted() {
  depletion_timer_ = EventId{};
  const TimePoint now = loop_.now();
  if (buffer_->level(now) > milliseconds(1)) {
    arm_depletion_watch();  // chunk arrived between scheduling and firing
    return;
  }
  if (no_more_chunks()) {
    finish();
    return;
  }
  // Mid-stream empty buffer: a stall. Attributed to the oldest in-flight
  // chunk — the one playback is waiting on.
  stalled_ = true;
  stall_started_ = now;
  ++stall_count_;
  buffer_->set_playing(now, false);
  log(PlayerEventType::kStallStart, -1, -1, 0, 0.0,
      inflight_.empty() ? 0 : inflight_.front().span);
}

void DashPlayer::sample_buffer() {
  sample_timer_ = EventId{};
  if (done_) return;
  log(PlayerEventType::kBufferSample, -1, -1, 0,
      to_seconds(buffer_->level(loop_.now())));
  sample_timer_ = loop_.schedule_in(config_.buffer_sample_interval,
                                    [this] { sample_buffer(); });
}

void DashPlayer::finish() {
  if (done_) return;
  done_ = true;
  if (buffer_) buffer_->set_playing(loop_.now(), false);
  log(PlayerEventType::kPlaybackDone);
  loop_.cancel(fetch_timer_);
  loop_.cancel(depletion_timer_);
  loop_.cancel(sample_timer_);
  if (on_done_) on_done_();
}

void DashPlayer::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (!telemetry_) {
    buffer_gauge_ = Gauge{};
    level_gauge_ = Gauge{};
    stalls_counter_ = Counter{};
    switches_counter_ = Counter{};
    chunks_counter_ = Counter{};
    retries_counter_ = Counter{};
    abandoned_counter_ = Counter{};
    return;
  }
  MetricsRegistry& m = telemetry_->metrics();
  buffer_gauge_ = m.gauge("player.buffer_s");
  level_gauge_ = m.gauge("player.level");
  stalls_counter_ = m.counter("player.stalls");
  switches_counter_ = m.counter("player.switches");
  chunks_counter_ = m.counter("player.chunks");
  retries_counter_ = m.counter("player.chunk_retries");
  abandoned_counter_ = m.counter("player.chunks_abandoned");
}

void DashPlayer::activate_span(std::uint64_t* slot) {
  if (!telemetry_ || !telemetry_->tracing()) return;
  *slot = telemetry_->open_span();
  span_opened_ = loop_.now();
  telemetry_->push_span(*slot);
}

void DashPlayer::open_span_record(std::uint64_t id, const char* name,
                                  int level, int chunk, Bytes bytes,
                                  double deadline_s) {
  if (id == 0) return;
  TraceRecord r;
  r.at = loop_.now();
  r.type = TraceType::kSpanStart;
  r.span = id;
  r.label = name;
  r.level = level;
  r.chunk = chunk;
  r.bytes = bytes;
  r.value = deadline_s;
  telemetry_->emit(r);
}

void DashPlayer::close_span(std::uint64_t* slot, const char* status,
                            int level, int chunk, Bytes bytes) {
  if (*slot == 0) return;
  emit_span_end(*slot, span_opened_, status, level, chunk, bytes);
  *slot = 0;
}

void DashPlayer::emit_span_end(SpanId id, TimePoint opened,
                               const char* status, int level, int chunk,
                               Bytes bytes) {
  if (id == 0) return;
  TraceRecord r;
  r.at = loop_.now();
  r.type = TraceType::kSpanEnd;
  r.span = id;
  r.label = status;
  r.level = level;
  r.chunk = chunk;
  r.bytes = bytes;
  r.value = to_seconds(loop_.now() - opened);
  telemetry_->emit(r);
  telemetry_->pop_span(id);
}

void DashPlayer::log(PlayerEventType type, int level, int chunk, Bytes bytes,
                     double extra, SpanId span) {
  events_.push_back({loop_.now(), type, level, chunk, bytes, extra});
  if (!telemetry_) return;
  switch (type) {
    case PlayerEventType::kBufferSample:
      buffer_gauge_.set(extra);
      break;
    case PlayerEventType::kChunkComplete:
      chunks_counter_.increment();
      level_gauge_.set(level);
      break;
    case PlayerEventType::kQualitySwitch:
      switches_counter_.increment();
      break;
    case PlayerEventType::kStallStart:
      stalls_counter_.increment();
      break;
    case PlayerEventType::kChunkRetry:
      retries_counter_.increment();
      break;
    case PlayerEventType::kChunkAbandoned:
      abandoned_counter_.increment();
      break;
    default:
      break;
  }
  if (telemetry_->tracing()) {
    TraceRecord r;
    r.at = loop_.now();
    r.type = TraceType::kPlayer;
    r.label = to_string(type);  // static string table in dash/events.cpp
    r.level = level;
    r.chunk = chunk;
    r.bytes = bytes;
    r.value = extra;
    r.span = span;
    telemetry_->emit(r);
  }
}

}  // namespace mpdash
