#include "dash/player.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mpdash {

DashPlayer::DashPlayer(EventLoop& loop, HttpClient& client,
                       RateAdaptation& adaptation, PlayerConfig config,
                       StreamingHooks* hooks)
    : loop_(loop),
      client_(client),
      adaptation_(adaptation),
      config_(config),
      hooks_(hooks) {}

DashPlayer::~DashPlayer() {
  loop_.cancel(fetch_timer_);
  loop_.cancel(depletion_timer_);
  loop_.cancel(sample_timer_);
}

void DashPlayer::start() {
  activate_span(&manifest_span_);
  open_span_record(manifest_span_, "manifest", -1, -1, 0, 0.0);
  client_.get(manifest_url(),
              [this](const HttpTransfer& t) { on_manifest(t); });
}

void DashPlayer::on_manifest(const HttpTransfer& transfer) {
  if (!transfer.ok()) {
    // Transport-level failure (timeout budget spent, stream poisoned).
    // Retry the manifest itself; without it there is nothing to play.
    if (++manifest_attempt_ < config_.max_chunk_attempts) {
      client_.get(manifest_url(),
                  [this](const HttpTransfer& t) { on_manifest(t); });
      return;
    }
    close_span(&manifest_span_, "failed", -1, -1, 0);
    manifest_failed_ = true;
    done_ = true;
    log(PlayerEventType::kPlaybackDone);
    if (on_done_) on_done_();
    return;
  }
  if (transfer.response.status != 200) {
    throw std::runtime_error("manifest fetch failed");
  }
  close_span(&manifest_span_, "delivered", -1, -1, transfer.body_bytes);
  video_ = video_from_manifest(transfer.body);
  buffer_.emplace(config_.buffer_capacity);
  sample_timer_ = loop_.schedule_in(config_.buffer_sample_interval,
                                    [this] { sample_buffer(); });
  fetch_next_chunk();
}

AdaptationView DashPlayer::make_view() const {
  AdaptationView v;
  v.now = loop_.now();
  v.buffer_level_s = to_seconds(buffer_->level(loop_.now()));
  v.buffer_capacity_s = to_seconds(buffer_->capacity());
  v.chunk_duration_s = to_seconds(video_->chunk_duration());
  v.last_level = last_level_;
  v.next_chunk = next_chunk_;
  v.total_chunks = video_->chunk_count();
  v.in_startup = !playing_started_;
  v.bitrates.reserve(static_cast<std::size_t>(video_->level_count()));
  for (const auto& lv : video_->levels()) v.bitrates.push_back(lv.avg_bitrate);
  if (next_chunk_ < video_->chunk_count()) {
    for (int l = 0; l < video_->level_count(); ++l) {
      v.next_chunk_sizes.push_back(video_->chunk_size(l, next_chunk_));
    }
  }
  v.last_chunk_throughput = last_chunk_throughput_;
  if (hooks_) v.override_throughput = hooks_->throughput_override(v);
  return v;
}

void DashPlayer::schedule_fetch() {
  // Wait until the buffer has room for one more chunk.
  const Duration level = buffer_->level(loop_.now());
  const Duration room_at =
      level + video_->chunk_duration() - buffer_->capacity();
  loop_.cancel(fetch_timer_);
  fetch_timer_ = loop_.schedule_in(std::max(room_at, kDurationZero) +
                                       microseconds(1),
                                   [this] { fetch_next_chunk(); });
}

void DashPlayer::fetch_next_chunk() {
  fetch_timer_ = EventId{};
  if (done_ || all_fetched_) return;
  if (next_chunk_ >= video_->chunk_count()) {
    all_fetched_ = true;
    return;
  }
  if (!buffer_->has_room(loop_.now(), video_->chunk_duration())) {
    schedule_fetch();
    return;
  }

  // Activate the span before level selection so the kQualitySwitch,
  // kChunkRequest, and Algorithm-1 "begin" records it triggers are all
  // stamped with this chunk's id.
  activate_span(&chunk_span_);

  AdaptationView view = make_view();
  int level = adaptation_.select_level(view);
  level = std::clamp(level, 0, video_->highest_level());

  if (last_level_ >= 0 && level != last_level_) {
    ++switches_;
    log(PlayerEventType::kQualitySwitch, level, next_chunk_, 0,
        static_cast<double>(last_level_));
  }

  const Bytes size = video_->chunk_size(level, next_chunk_);
  pending_deadline_.reset();
  if (hooks_) pending_deadline_ = hooks_->on_chunk_request(view, level, size);
  pending_request_time_ = loop_.now();
  pending_level_ = level;

  log(PlayerEventType::kChunkRequest, level, next_chunk_, size,
      pending_deadline_ ? to_seconds(*pending_deadline_) : 0.0);
  open_span_record(chunk_span_, "chunk", level, next_chunk_, size,
                   pending_deadline_ ? to_seconds(*pending_deadline_) : 0.0);

  client_.get(chunk_url(level, next_chunk_),
              [this](const HttpTransfer& t) { on_chunk_done(t); });
}

void DashPlayer::on_chunk_done(const HttpTransfer& transfer) {
  if (!transfer.ok()) {
    on_chunk_failed(transfer);
    return;
  }
  if (transfer.response.status != 200) {
    throw std::runtime_error("chunk fetch failed");
  }
  fetch_attempt_ = 0;
  const TimePoint now = loop_.now();

  ChunkRecord rec;
  rec.chunk = next_chunk_;
  rec.level = pending_level_;
  rec.span = chunk_span_;
  rec.bytes = transfer.body_bytes;
  rec.requested = pending_request_time_;
  rec.completed = now;
  rec.deadline = pending_deadline_;
  rec.buffer_at_request_s = to_seconds(buffer_->level(pending_request_time_));
  chunk_log_.push_back(rec);

  last_chunk_throughput_ =
      rate_of(transfer.body_bytes, now - pending_request_time_);
  adaptation_.on_chunk_downloaded(pending_level_, transfer.body_bytes,
                                  now - pending_request_time_);

  buffer_->add(now, video_->chunk_duration());
  log(PlayerEventType::kChunkComplete, pending_level_, next_chunk_,
      transfer.body_bytes);
  last_level_ = pending_level_;
  ++next_chunk_;

  if (hooks_) hooks_->on_chunk_complete(make_view());

  maybe_start_playback();
  if (stalled_ &&
      buffer_->level(now) >= std::min(config_.startup_buffer,
                                      buffer_->capacity() / 2)) {
    stalled_ = false;
    buffer_->set_playing(now, true);
    total_stall_ += now - stall_started_;
    log(PlayerEventType::kStallEnd, -1, -1, 0,
        to_seconds(now - stall_started_));
  }
  arm_depletion_watch();
  // next_chunk_ already advanced; close the span under the chunk number
  // it served. Stall-end above stays inside the span: the stall ended
  // because this chunk landed.
  close_span(&chunk_span_, "delivered", last_level_, next_chunk_ - 1,
             transfer.body_bytes);
  fetch_next_chunk();
}

void DashPlayer::on_chunk_failed(const HttpTransfer& transfer) {
  (void)transfer;
  ++fetch_attempt_;
  if (fetch_attempt_ >= config_.max_chunk_attempts) {
    abandon_chunk();
    return;
  }
  // Downshift-and-retry: a lower level is fewer bytes, which is the best
  // bet on whatever is left of the network.
  const int level = std::max(0, pending_level_ - 1);
  ++chunk_retries_;
  log(PlayerEventType::kChunkRetry, level, next_chunk_, 0,
      static_cast<double>(fetch_attempt_));
  pending_level_ = level;
  pending_request_time_ = loop_.now();
  client_.get(chunk_url(level, next_chunk_),
              [this](const HttpTransfer& t) { on_chunk_done(t); });
}

void DashPlayer::abandon_chunk() {
  // The paper's graceful-degradation endpoint: give up on this chunk so
  // the session as a whole survives. Playback will skip the gap.
  ++chunks_abandoned_;
  log(PlayerEventType::kChunkAbandoned, pending_level_, next_chunk_);
  close_span(&chunk_span_, "abandoned", pending_level_, next_chunk_, 0);
  fetch_attempt_ = 0;
  ++next_chunk_;
  if (hooks_) hooks_->on_chunk_complete(make_view());
  if (next_chunk_ >= video_->chunk_count() && stalled_) {
    // The chunk this stall was waiting for (and everything after it) is
    // gone; nothing will ever refill the buffer. Close the stall and end
    // the session instead of hanging.
    const TimePoint now = loop_.now();
    stalled_ = false;
    total_stall_ += now - stall_started_;
    log(PlayerEventType::kStallEnd, -1, -1, 0,
        to_seconds(now - stall_started_));
    finish();
    return;
  }
  maybe_start_playback();
  arm_depletion_watch();
  fetch_next_chunk();
}

void DashPlayer::maybe_start_playback() {
  if (playing_started_) return;
  const TimePoint now = loop_.now();
  const bool enough = buffer_->level(now) >= config_.startup_buffer ||
                      next_chunk_ >= video_->chunk_count();
  if (!enough) return;
  playing_started_ = true;
  buffer_->set_playing(now, true);
  log(PlayerEventType::kPlaybackStart);
  arm_depletion_watch();
}

void DashPlayer::arm_depletion_watch() {
  loop_.cancel(depletion_timer_);
  depletion_timer_ = EventId{};
  if (!playing_started_ || stalled_ || done_) return;
  const TimePoint at = buffer_->depletion_time(loop_.now());
  if (at == TimePoint::max()) return;
  depletion_timer_ = loop_.schedule_at(at, [this] { on_depleted(); });
}

void DashPlayer::on_depleted() {
  depletion_timer_ = EventId{};
  const TimePoint now = loop_.now();
  if (buffer_->level(now) > milliseconds(1)) {
    arm_depletion_watch();  // chunk arrived between scheduling and firing
    return;
  }
  if (next_chunk_ >= video_->chunk_count()) {
    finish();
    return;
  }
  // Mid-stream empty buffer: a stall.
  stalled_ = true;
  stall_started_ = now;
  ++stall_count_;
  buffer_->set_playing(now, false);
  log(PlayerEventType::kStallStart);
}

void DashPlayer::sample_buffer() {
  sample_timer_ = EventId{};
  if (done_) return;
  log(PlayerEventType::kBufferSample, -1, -1, 0,
      to_seconds(buffer_->level(loop_.now())));
  sample_timer_ = loop_.schedule_in(config_.buffer_sample_interval,
                                    [this] { sample_buffer(); });
}

void DashPlayer::finish() {
  if (done_) return;
  done_ = true;
  if (buffer_) buffer_->set_playing(loop_.now(), false);
  log(PlayerEventType::kPlaybackDone);
  loop_.cancel(fetch_timer_);
  loop_.cancel(depletion_timer_);
  loop_.cancel(sample_timer_);
  if (on_done_) on_done_();
}

void DashPlayer::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (!telemetry_) {
    buffer_gauge_ = Gauge{};
    level_gauge_ = Gauge{};
    stalls_counter_ = Counter{};
    switches_counter_ = Counter{};
    chunks_counter_ = Counter{};
    retries_counter_ = Counter{};
    abandoned_counter_ = Counter{};
    return;
  }
  MetricsRegistry& m = telemetry_->metrics();
  buffer_gauge_ = m.gauge("player.buffer_s");
  level_gauge_ = m.gauge("player.level");
  stalls_counter_ = m.counter("player.stalls");
  switches_counter_ = m.counter("player.switches");
  chunks_counter_ = m.counter("player.chunks");
  retries_counter_ = m.counter("player.chunk_retries");
  abandoned_counter_ = m.counter("player.chunks_abandoned");
}

void DashPlayer::activate_span(std::uint64_t* slot) {
  if (!telemetry_ || !telemetry_->tracing()) return;
  *slot = telemetry_->open_span();
  span_opened_ = loop_.now();
  telemetry_->set_active_span(*slot);
}

void DashPlayer::open_span_record(std::uint64_t id, const char* name,
                                  int level, int chunk, Bytes bytes,
                                  double deadline_s) {
  if (id == 0) return;
  TraceRecord r;
  r.at = loop_.now();
  r.type = TraceType::kSpanStart;
  r.span = id;
  r.label = name;
  r.level = level;
  r.chunk = chunk;
  r.bytes = bytes;
  r.value = deadline_s;
  telemetry_->emit(r);
}

void DashPlayer::close_span(std::uint64_t* slot, const char* status,
                            int level, int chunk, Bytes bytes) {
  if (*slot == 0) return;
  TraceRecord r;
  r.at = loop_.now();
  r.type = TraceType::kSpanEnd;
  r.span = *slot;
  r.label = status;
  r.level = level;
  r.chunk = chunk;
  r.bytes = bytes;
  r.value = to_seconds(loop_.now() - span_opened_);
  telemetry_->emit(r);
  telemetry_->set_active_span(0);
  *slot = 0;
}

void DashPlayer::log(PlayerEventType type, int level, int chunk, Bytes bytes,
                     double extra) {
  events_.push_back({loop_.now(), type, level, chunk, bytes, extra});
  if (!telemetry_) return;
  switch (type) {
    case PlayerEventType::kBufferSample:
      buffer_gauge_.set(extra);
      break;
    case PlayerEventType::kChunkComplete:
      chunks_counter_.increment();
      level_gauge_.set(level);
      break;
    case PlayerEventType::kQualitySwitch:
      switches_counter_.increment();
      break;
    case PlayerEventType::kStallStart:
      stalls_counter_.increment();
      break;
    case PlayerEventType::kChunkRetry:
      retries_counter_.increment();
      break;
    case PlayerEventType::kChunkAbandoned:
      abandoned_counter_.increment();
      break;
    default:
      break;
  }
  if (telemetry_->tracing()) {
    TraceRecord r;
    r.at = loop_.now();
    r.type = TraceType::kPlayer;
    r.label = to_string(type);  // static string table in dash/events.cpp
    r.level = level;
    r.chunk = chunk;
    r.bytes = bytes;
    r.value = extra;
    telemetry_->emit(r);
  }
}

}  // namespace mpdash
