#pragma once
// DASH video player.
//
// Control loop: fetch manifest -> repeatedly (pick level via the rate
// adaptation, let the MP-DASH adapter set up the chunk's deadline, GET the
// chunk, feed the playback buffer) -> drain. Playback consumes buffered
// seconds in real time; an empty buffer while playing is a stall
// (rebuffering) event. All externally relevant behavior lands in the
// event log and per-chunk records consumed by the analysis + experiment
// layers.

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "adapt/adaptation.h"
#include "dash/buffer.h"
#include "dash/events.h"
#include "dash/manifest.h"
#include "dash/video.h"
#include "http/client.h"
#include "sim/event_loop.h"

namespace mpdash {

// Integration points for the MP-DASH video adapter. The player itself
// stays adapter-agnostic: with null hooks it is a vanilla DASH client.
class StreamingHooks {
 public:
  virtual ~StreamingHooks() = default;
  // Aggregate multipath throughput to expose to the adaptation (zero-rate
  // = no override).
  virtual DataRate throughput_override(const AdaptationView& view) {
    (void)view;
    return DataRate::bits_per_second(0);
  }
  // About to request `size` bytes of chunk `chunk` at `level`; the
  // adapter may activate the deadline scheduler here. `span` is the
  // chunk's causal span (0 when tracing is off) so scheduler records can
  // be tagged with their owner even when several chunks are in flight.
  // Returns the deadline it set, if any (recorded in the chunk log).
  virtual std::optional<Duration> on_chunk_request(const AdaptationView& view,
                                                   int level, Bytes size,
                                                   int chunk, SpanId span) {
    (void)view; (void)level; (void)size; (void)chunk; (void)span;
    return std::nullopt;
  }
  // Chunk `chunk` finished (delivered or abandoned). With pipelining,
  // completions can arrive while other chunks are still in flight.
  virtual void on_chunk_complete(const AdaptationView& view, int chunk) {
    (void)view; (void)chunk;
  }
};

struct PlayerConfig {
  Duration buffer_capacity = seconds(40.0);
  // Playback begins once this much content is buffered (and resumes from
  // a stall the same way).
  Duration startup_buffer = seconds(8.0);
  Duration buffer_sample_interval = seconds(1.0);
  // Graceful degradation: total fetch attempts per chunk before the chunk
  // is abandoned and playback skips over it. Each retry downshifts one
  // quality level (smaller segment, better odds on a degraded network).
  // Only reachable when the HttpClient can fail a transfer (retry layer
  // on); with the default client a chunk fetch never completes with an
  // error and these settings are inert.
  int max_chunk_attempts = 3;
  // Prefetch lookahead: maximum chunk requests in flight at once. 1 =
  // strict sequential fetching (seed behavior). Larger values issue the
  // next request while earlier ones download — guarded by buffer room
  // for every outstanding chunk, suppressed while stalled, and paused
  // when the oldest in-flight chunk has blown past its deadline — with
  // the adaptation decision re-evaluated at each issue time. Pair with
  // HttpClientConfig::max_pipeline >= this so prefetched requests
  // actually reach the wire.
  int max_inflight_chunks = 1;
};

struct ChunkRecord {
  int chunk = 0;
  int level = 0;
  std::uint64_t span = 0;  // causal span id (0 when tracing was off)
  Bytes bytes = 0;
  TimePoint requested = kTimeZero;
  TimePoint completed = kTimeZero;
  std::optional<Duration> deadline;  // set when MP-DASH was active
  double buffer_at_request_s = 0.0;

  Duration download_time() const { return completed - requested; }
};

class DashPlayer {
 public:
  DashPlayer(EventLoop& loop, HttpClient& client, RateAdaptation& adaptation,
             PlayerConfig config = {}, StreamingHooks* hooks = nullptr);
  ~DashPlayer();

  DashPlayer(const DashPlayer&) = delete;
  DashPlayer& operator=(const DashPlayer&) = delete;

  // Fetches the manifest and starts streaming.
  void start();
  // Invoked when the last buffered second has played out.
  void set_done_callback(std::function<void()> cb) { on_done_ = std::move(cb); }

  bool done() const { return done_; }
  const std::optional<Video>& video() const { return video_; }
  const std::vector<PlayerEvent>& events() const { return events_; }
  const std::vector<ChunkRecord>& chunks() const { return chunk_log_; }
  const PlaybackBuffer* buffer() const { return buffer_ ? &*buffer_ : nullptr; }

  int stall_count() const { return stall_count_; }
  Duration total_stall_time() const { return total_stall_; }
  int quality_switches() const { return switches_; }
  int chunk_retries() const { return chunk_retries_; }
  int chunks_abandoned() const { return chunks_abandoned_; }
  // True if the manifest never arrived (session over before it started).
  bool manifest_failed() const { return manifest_failed_; }

  // Registers `player.*` metrics and bridges the event log to kPlayer
  // trace records. nullptr detaches.
  void set_telemetry(Telemetry* telemetry);

 private:
  // One outstanding chunk request. The player keeps up to
  // max_inflight_chunks of these; with the default of 1 the deque never
  // holds more than one entry and the control flow is exactly the old
  // sequential player's.
  struct InflightChunk {
    int chunk = 0;
    int level = 0;              // current attempt's level (retries downshift)
    int attempt = 0;            // failed attempts so far
    SpanId span = 0;            // 0 when tracing is off
    TimePoint span_opened = kTimeZero;
    TimePoint requested = kTimeZero;  // latest attempt's request time
    std::optional<Duration> deadline;  // adapter-set, relative to issue
    TimePoint abs_deadline = TimePoint::max();
    double buffer_at_request_s = 0.0;
  };
  using InflightIter = std::deque<InflightChunk>::iterator;

  void on_manifest(const HttpTransfer& transfer);
  void schedule_fetch(int lookahead);
  void fetch_next_chunk();
  void issue_chunk();
  InflightIter find_inflight(int chunk);
  void on_chunk_done(int chunk, const HttpTransfer& transfer);
  void on_chunk_failed(InflightIter it);
  void abandon_chunk(InflightIter it);
  // True once every chunk has been issued AND delivered/abandoned:
  // nothing will ever refill the buffer again.
  bool no_more_chunks() const {
    return next_chunk_ >= video_->chunk_count() && inflight_.empty();
  }
  AdaptationView make_view() const;
  void maybe_start_playback();
  void arm_depletion_watch();
  void on_depleted();
  void sample_buffer();
  // `span` stamps the kPlayer record explicitly (0 = ambient top-of-stack
  // stamping, which is only unambiguous while at most one span is open).
  void log(PlayerEventType type, int level = -1, int chunk = -1,
           Bytes bytes = 0, double extra = 0.0, SpanId span = 0);
  void finish();
  // Span lifecycle: one causal span per chunk request (and one for the
  // manifest), pushed onto the telemetry span stack while open. Retries
  // stay inside the span that opened the request; closes pop their own
  // id, so out-of-order completions never disturb sibling spans.
  void activate_span(std::uint64_t* slot);
  void open_span_record(std::uint64_t id, const char* name, int level,
                        int chunk, Bytes bytes, double deadline_s);
  void close_span(std::uint64_t* slot, const char* status, int level,
                  int chunk, Bytes bytes);
  void emit_span_end(SpanId id, TimePoint opened, const char* status,
                     int level, int chunk, Bytes bytes);

  EventLoop& loop_;
  HttpClient& client_;
  RateAdaptation& adaptation_;
  PlayerConfig config_;
  StreamingHooks* hooks_;

  std::optional<Video> video_;
  std::optional<PlaybackBuffer> buffer_;
  std::function<void()> on_done_;

  int next_chunk_ = 0;  // next chunk to ISSUE (advances at request time)
  int last_level_ = -1;  // level of the last DELIVERED chunk
  int manifest_attempt_ = 0;
  bool manifest_failed_ = false;
  bool playing_started_ = false;
  bool stalled_ = false;
  TimePoint stall_started_ = kTimeZero;
  bool all_fetched_ = false;
  bool done_ = false;

  DataRate last_chunk_throughput_;
  std::deque<InflightChunk> inflight_;  // issue order (front = oldest)
  std::uint64_t manifest_span_ = 0;
  TimePoint span_opened_ = kTimeZero;  // manifest span only

  EventId fetch_timer_;
  EventId depletion_timer_;
  EventId sample_timer_;

  std::vector<PlayerEvent> events_;
  std::vector<ChunkRecord> chunk_log_;
  int stall_count_ = 0;
  Duration total_stall_ = kDurationZero;
  int switches_ = 0;
  int chunk_retries_ = 0;
  int chunks_abandoned_ = 0;

  Telemetry* telemetry_ = nullptr;
  Gauge buffer_gauge_;
  Gauge level_gauge_;
  Counter stalls_counter_;
  Counter switches_counter_;
  Counter chunks_counter_;
  Counter retries_counter_;
  Counter abandoned_counter_;
};

}  // namespace mpdash
