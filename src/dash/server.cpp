#include "dash/server.h"

#include <utility>

namespace mpdash {

DashServer::DashServer(MptcpEndpoint& endpoint, Video video)
    : video_(std::move(video)),
      http_(endpoint, [this](const HttpRequest& req) { return handle(req); }) {}

HttpResponse DashServer::handle(const HttpRequest& req) {
  if (req.target == manifest_url()) {
    HttpResponse resp;
    resp.headers.push_back({"Content-Type", "application/dash+xml"});
    resp.body = manifest_to_xml(video_);
    return resp;
  }
  int level = 0, chunk = 0;
  if (parse_chunk_url(req.target, level, chunk)) {
    if (level < 0 || level >= video_.level_count() || chunk < 0 ||
        chunk >= video_.chunk_count()) {
      return not_found();
    }
    ++chunks_served_;
    HttpResponse resp;
    resp.headers.push_back({"Content-Type", "video/iso.segment"});
    resp.body_len = video_.chunk_size(level, chunk);
    return resp;
  }
  return not_found();
}

}  // namespace mpdash
