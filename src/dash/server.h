#pragma once
// DASH origin server application: serves the manifest and chunk URLs of
// one Video over an HttpServer. Knows nothing about MP-DASH (the paper's
// server-side change is confined to the MPTCP stack).

#include "dash/manifest.h"
#include "dash/video.h"
#include "http/server.h"

namespace mpdash {

class DashServer {
 public:
  DashServer(MptcpEndpoint& endpoint, Video video);

  const Video& video() const { return video_; }
  std::size_t chunks_served() const { return chunks_served_; }
  // The underlying HTTP engine — the fault layer drives its stall/drop
  // hooks through this.
  HttpServer& http() { return http_; }

 private:
  HttpResponse handle(const HttpRequest& req);

  Video video_;
  HttpServer http_;
  std::size_t chunks_served_ = 0;
};

}  // namespace mpdash
