#include "dash/video.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace mpdash {

Video::Video(std::string name, Duration chunk_duration, int chunk_count,
             std::vector<DataRate> level_bitrates, double vbr_spread,
             std::uint64_t seed)
    : name_(std::move(name)),
      chunk_duration_(chunk_duration),
      chunk_count_(chunk_count) {
  if (chunk_duration_ <= kDurationZero || chunk_count_ <= 0 ||
      level_bitrates.empty()) {
    throw std::invalid_argument("bad video parameters");
  }
  if (!std::is_sorted(level_bitrates.begin(), level_bitrates.end())) {
    throw std::invalid_argument("level bitrates must ascend");
  }
  Rng rng(seed);
  // Shared per-chunk complexity factor: a busy scene is bigger at *every*
  // level, which is how real VBR encodings behave.
  std::vector<double> complexity(static_cast<std::size_t>(chunk_count_));
  for (auto& c : complexity) {
    c = std::clamp(1.0 + vbr_spread * rng.normal(), 0.5, 1.8);
  }
  for (std::size_t l = 0; l < level_bitrates.size(); ++l) {
    levels_.push_back({static_cast<int>(l), level_bitrates[l]});
    std::vector<Bytes> sizes(static_cast<std::size_t>(chunk_count_));
    const double nominal =
        level_bitrates[l].bps() / 8.0 * to_seconds(chunk_duration_);
    for (int k = 0; k < chunk_count_; ++k) {
      sizes[static_cast<std::size_t>(k)] = std::max<Bytes>(
          1000,
          static_cast<Bytes>(nominal * complexity[static_cast<std::size_t>(k)]));
    }
    chunk_sizes_.push_back(std::move(sizes));
  }
}

Video::Video(std::string name, Duration chunk_duration, int chunk_count,
             std::vector<DataRate> level_bitrates,
             std::vector<std::vector<Bytes>> chunk_sizes)
    : name_(std::move(name)),
      chunk_duration_(chunk_duration),
      chunk_count_(chunk_count),
      chunk_sizes_(std::move(chunk_sizes)) {
  if (chunk_duration_ <= kDurationZero || chunk_count_ <= 0 ||
      level_bitrates.empty() || chunk_sizes_.size() != level_bitrates.size()) {
    throw std::invalid_argument("bad video parameters");
  }
  for (const auto& row : chunk_sizes_) {
    if (static_cast<int>(row.size()) != chunk_count_) {
      throw std::invalid_argument("chunk size row length mismatch");
    }
  }
  for (std::size_t l = 0; l < level_bitrates.size(); ++l) {
    levels_.push_back({static_cast<int>(l), level_bitrates[l]});
  }
}

Bytes Video::chunk_size(int level, int chunk) const {
  return chunk_sizes_.at(static_cast<std::size_t>(level))
      .at(static_cast<std::size_t>(chunk));
}

Bytes Video::nominal_chunk_size(int level) const {
  return static_cast<Bytes>(this->level(level).avg_bitrate.bps() / 8.0 *
                            to_seconds(chunk_duration_));
}

int Video::highest_level_not_above(DataRate rate) const {
  int best = 0;
  for (const auto& lv : levels_) {
    if (lv.avg_bitrate <= rate) best = lv.index;
  }
  return best;
}

namespace {

Video make_preset(const char* name, Duration chunk_duration,
                  std::initializer_list<double> mbps, std::uint64_t seed) {
  std::vector<DataRate> rates;
  for (double m : mbps) rates.push_back(DataRate::mbps(m));
  const int chunks = static_cast<int>(seconds(600.0) / chunk_duration);
  return Video(name, chunk_duration, chunks, std::move(rates),
               /*vbr_spread=*/0.12, seed);
}

}  // namespace

Video big_buck_bunny(Duration chunk_duration) {
  return make_preset("Big Buck Bunny", chunk_duration,
                     {0.58, 1.01, 1.47, 2.41, 3.94}, 42);
}

Video red_bull_playstreets(Duration chunk_duration) {
  return make_preset("Red Bull Playstreets", chunk_duration,
                     {0.50, 0.89, 1.50, 2.47, 3.99}, 43);
}

Video tears_of_steel(Duration chunk_duration) {
  return make_preset("Tears of Steel", chunk_duration,
                     {0.50, 0.81, 1.51, 2.42, 4.01}, 44);
}

Video tears_of_steel_hd(Duration chunk_duration) {
  return make_preset("Tears of Steel HD", chunk_duration,
                     {1.51, 2.42, 4.01, 6.03, 10.0}, 45);
}

}  // namespace mpdash
