#pragma once
// Video content model.
//
// A Video is a chunked, multi-bitrate encoding: `levels` carries the
// average encoding bitrate per quality (Table 3), and `chunk_sizes[l][k]`
// the exact byte size of chunk k at level l (VBR: sizes vary around
// bitrate * duration with a seeded, reproducible spread).

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace mpdash {

struct QualityLevel {
  int index = 0;            // 0-based; paper's levels 1..5
  DataRate avg_bitrate;
};

class Video {
 public:
  Video(std::string name, Duration chunk_duration, int chunk_count,
        std::vector<DataRate> level_bitrates, double vbr_spread,
        std::uint64_t seed);

  // Constructs from explicit chunk sizes (manifest parsing).
  Video(std::string name, Duration chunk_duration, int chunk_count,
        std::vector<DataRate> level_bitrates,
        std::vector<std::vector<Bytes>> chunk_sizes);

  const std::string& name() const { return name_; }
  Duration chunk_duration() const { return chunk_duration_; }
  int chunk_count() const { return chunk_count_; }
  Duration total_duration() const { return chunk_duration_ * chunk_count_; }

  int level_count() const { return static_cast<int>(levels_.size()); }
  const std::vector<QualityLevel>& levels() const { return levels_; }
  const QualityLevel& level(int l) const { return levels_.at(static_cast<std::size_t>(l)); }
  int highest_level() const { return level_count() - 1; }

  Bytes chunk_size(int level, int chunk) const;
  // Nominal (average-bitrate) size of any chunk at `level`.
  Bytes nominal_chunk_size(int level) const;

  // Highest level whose average bitrate is <= rate; 0 if none.
  int highest_level_not_above(DataRate rate) const;

 private:
  std::string name_;
  Duration chunk_duration_;
  int chunk_count_;
  std::vector<QualityLevel> levels_;
  std::vector<std::vector<Bytes>> chunk_sizes_;  // [level][chunk]
};

// The four videos of the paper's Table 3 (average encoding bitrates in
// Mbps; 10-minute content). `chunk_duration` defaults to the 4 s used in
// the evaluation; 6 s and 10 s variants are also valid per §7.3.
Video big_buck_bunny(Duration chunk_duration = seconds(4.0));
Video red_bull_playstreets(Duration chunk_duration = seconds(4.0));
Video tears_of_steel(Duration chunk_duration = seconds(4.0));
Video tears_of_steel_hd(Duration chunk_duration = seconds(4.0));

}  // namespace mpdash
