#include "energy/accounting.h"

#include <algorithm>
#include <map>

namespace mpdash {

std::vector<TransferSample> bucket_events(std::vector<ByteEvent> events,
                                          Duration window) {
  std::map<std::int64_t, TransferSample> buckets;
  for (const auto& ev : events) {
    const std::int64_t idx = ev.at.count() / window.count();
    auto& s = buckets[idx];
    s.at = TimePoint(window * idx);
    if (ev.downlink) {
      s.down += ev.bytes;
    } else {
      s.up += ev.bytes;
    }
  }
  std::vector<TransferSample> out;
  out.reserve(buckets.size());
  for (auto& [idx, s] : buckets) out.push_back(s);
  return out;
}

SessionEnergy price_session(const DeviceEnergyProfile& device,
                            const std::vector<ByteEvent>& wifi_events,
                            const std::vector<ByteEvent>& lte_events,
                            Duration horizon, Duration window) {
  SessionEnergy out;
  out.wifi = RadioEnergyModel(device.wifi)
                 .compute(bucket_events(wifi_events, window), window, horizon);
  out.lte = RadioEnergyModel(device.lte)
                .compute(bucket_events(lte_events, window), window, horizon);
  return out;
}

}  // namespace mpdash
