#pragma once
// Helpers to turn raw per-packet byte events into the aligned windowed
// samples RadioEnergyModel consumes, and to price a whole multipath
// session on a device profile.

#include <vector>

#include "energy/radio_model.h"

namespace mpdash {

struct ByteEvent {
  TimePoint at;
  Bytes bytes = 0;
  bool downlink = true;
};

// Buckets events into `window`-aligned TransferSamples (sorted, gaps
// omitted).
std::vector<TransferSample> bucket_events(std::vector<ByteEvent> events,
                                          Duration window);

struct SessionEnergy {
  EnergyBreakdown wifi;
  EnergyBreakdown lte;
  double total_j() const { return wifi.total_j() + lte.total_j(); }
};

// Prices one session: per-interface byte events over `horizon` on
// `device`.
SessionEnergy price_session(const DeviceEnergyProfile& device,
                            const std::vector<ByteEvent>& wifi_events,
                            const std::vector<ByteEvent>& lte_events,
                            Duration horizon,
                            Duration window = milliseconds(100));

}  // namespace mpdash
