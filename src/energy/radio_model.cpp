#include "energy/radio_model.h"

#include <algorithm>
#include <stdexcept>

namespace mpdash {

DeviceEnergyProfile galaxy_note() {
  DeviceEnergyProfile dev;
  dev.name = "Samsung Galaxy Note";
  dev.lte = {
      .promotion_mw = 1210.7,
      .promotion_time = milliseconds(260),
      .active_base_mw = 1288.0,
      .per_mbps_down_mw = 51.97,
      .per_mbps_up_mw = 438.39,
      .tail_mw = 1060.0,
      .tail_time = milliseconds(11576),
      .idle_mw = 31.1,
  };
  dev.wifi = {
      .promotion_mw = 124.4,
      .promotion_time = milliseconds(79),
      .active_base_mw = 132.9,
      .per_mbps_down_mw = 137.0,
      .per_mbps_up_mw = 283.2,
      .tail_mw = 119.3,
      .tail_time = milliseconds(238),
      .idle_mw = 12.0,
  };
  return dev;
}

DeviceEnergyProfile galaxy_s3() {
  DeviceEnergyProfile dev = galaxy_note();
  dev.name = "Samsung Galaxy S III";
  // Slightly lower draw across the board (the paper reports both devices
  // produce similar results).
  auto scale = [](RadioPowerParams& p, double f) {
    p.promotion_mw *= f;
    p.active_base_mw *= f;
    p.per_mbps_down_mw *= f;
    p.per_mbps_up_mw *= f;
    p.tail_mw *= f;
    p.idle_mw *= f;
  };
  scale(dev.lte, 0.92);
  scale(dev.wifi, 0.92);
  return dev;
}

RadioEnergyModel::RadioEnergyModel(RadioPowerParams params)
    : params_(params) {}

EnergyBreakdown RadioEnergyModel::compute(
    const std::vector<TransferSample>& samples, Duration window,
    Duration horizon) const {
  if (window <= kDurationZero) {
    throw std::invalid_argument("window must be positive");
  }
  EnergyBreakdown out;
  const double win_s = to_seconds(window);

  enum class State { kIdle, kActive, kTail };
  State state = State::kIdle;
  TimePoint tail_until = kTimeZero;
  TimePoint t = kTimeZero;
  std::size_t i = 0;

  while (t < TimePoint(horizon)) {
    Bytes down = 0, up = 0;
    if (i < samples.size() && samples[i].at <= t) {
      down = samples[i].down;
      up = samples[i].up;
      ++i;
    }
    const bool transferring = down > 0 || up > 0;

    if (transferring) {
      if (state == State::kIdle) {
        out.promotion_j +=
            params_.promotion_mw / 1000.0 * to_seconds(params_.promotion_time);
        ++out.promotions;
      }
      state = State::kActive;
      const double down_mbps = static_cast<double>(down) * 8.0 / win_s / 1e6;
      const double up_mbps = static_cast<double>(up) * 8.0 / win_s / 1e6;
      const double power_mw = params_.active_base_mw +
                              params_.per_mbps_down_mw * down_mbps +
                              params_.per_mbps_up_mw * up_mbps;
      out.active_j += power_mw / 1000.0 * win_s;
      tail_until = t + window + params_.tail_time;
    } else if (state != State::kIdle && t < tail_until) {
      state = State::kTail;
      out.tail_j += params_.tail_mw / 1000.0 * win_s;
    } else {
      state = State::kIdle;
      out.idle_j += params_.idle_mw / 1000.0 * win_s;
    }
    t += window;
  }
  return out;
}

}  // namespace mpdash
