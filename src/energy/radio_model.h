#pragma once
// Radio energy model: RRC-style state machine with promotion, a
// throughput-dependent active state, an energy tail, and DRX idle.
//
// The paper computes radio energy by replaying network traces through the
// multipath power model of Nika et al. [30] (which builds on the LTE
// measurements of Huang et al. [21]). We implement the same model class
// with Huang et al.'s published LTE parameters and standard WiFi PSM
// figures; the tail is what makes Table 4's "slow dribble" throttling so
// expensive, and DRX is why keeping the LTE subflow *established but
// idle* (the MP-DASH design choice in §6) costs almost nothing.

#include <string>
#include <vector>

#include "util/units.h"

namespace mpdash {

struct RadioPowerParams {
  double promotion_mw = 0.0;   // power during promotion
  Duration promotion_time = kDurationZero;
  double active_base_mw = 0.0; // transferring, + per-Mbps terms below
  double per_mbps_down_mw = 0.0;
  double per_mbps_up_mw = 0.0;
  double tail_mw = 0.0;        // after last transfer
  Duration tail_time = kDurationZero;
  double idle_mw = 0.0;        // DRX / PSM idle
};

struct DeviceEnergyProfile {
  std::string name;
  RadioPowerParams lte;
  RadioPowerParams wifi;
};

// Samsung Galaxy Note — LTE figures from Huang et al. (MobiSys'12):
// promotion 1210.7 mW / 260.1 ms, tail 1060 mW / 11.576 s,
// alpha_d 51.97 mW/Mbps, alpha_u 438.39 mW/Mbps, beta 1288 mW.
DeviceEnergyProfile galaxy_note();
// Samsung Galaxy S III (same model class, slightly lower power draw; the
// paper reports the two devices yield similar results).
DeviceEnergyProfile galaxy_s3();

// Bytes moved on one interface during one accounting window.
struct TransferSample {
  TimePoint at;      // window start
  Bytes down = 0;
  Bytes up = 0;
};

struct EnergyBreakdown {
  double promotion_j = 0.0;
  double active_j = 0.0;
  double tail_j = 0.0;
  double idle_j = 0.0;
  int promotions = 0;

  double total_j() const {
    return promotion_j + active_j + tail_j + idle_j;
  }
};

// Replays windowed transfer samples through the state machine.
// `samples` must be sorted by time with uniform spacing `window`;
// `horizon` is the session length (idle energy accrues to the end).
class RadioEnergyModel {
 public:
  explicit RadioEnergyModel(RadioPowerParams params);

  EnergyBreakdown compute(const std::vector<TransferSample>& samples,
                          Duration window, Duration horizon) const;

  const RadioPowerParams& params() const { return params_; }

 private:
  RadioPowerParams params_;
};

}  // namespace mpdash
