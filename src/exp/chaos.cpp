#include "exp/chaos.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <set>
#include <utility>

#include "exp/repro.h"

namespace mpdash {

const char* to_string(RunOutcome o) {
  switch (o) {
    case RunOutcome::kOk: return "ok";
    case RunOutcome::kViolation: return "violation";
    case RunOutcome::kHung: return "hung";
    case RunOutcome::kCrashed: return "crashed";
  }
  return "?";
}

bool outcome_from_string(std::string_view name, RunOutcome* out) {
  for (int i = 0; i <= static_cast<int>(RunOutcome::kCrashed); ++i) {
    const RunOutcome o = static_cast<RunOutcome>(i);
    if (name == to_string(o)) {
      *out = o;
      return true;
    }
  }
  return false;
}

const char kChaosSeriesHeader[] =
    "seed,time_s,buffer_s,level,stalls,chunks,wifi_bytes,cell_bytes,"
    "cell_share\n";

std::string qoe_series_csv(const MetricsTimeline& timeline,
                           std::uint64_t seed) {
  std::string out;
  char buf[256];
  for (const MetricsSnapshot& s : timeline.snapshots()) {
    auto val = [&s](const char* name) {
      const MetricValue* v = s.find(name);
      return v ? v->value : 0.0;
    };
    const double wifi = val("link.wifi.down.delivered_bytes") +
                        val("link.wifi.up.delivered_bytes");
    const double cell = val("link.lte.down.delivered_bytes") +
                        val("link.lte.up.delivered_bytes");
    const double total = wifi + cell;
    std::snprintf(buf, sizeof buf,
                  "%llu,%.3f,%.6f,%.0f,%.0f,%.0f,%.0f,%.0f,%.6f\n",
                  static_cast<unsigned long long>(seed), to_seconds(s.at),
                  val("player.buffer_s"), val("player.level"),
                  val("player.stalls"), val("player.chunks"), wifi, cell,
                  total > 0.0 ? cell / total : 0.0);
    out += buf;
  }
  return out;
}

std::string ChaosRunResult::fingerprint() const {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "seed=%llu out=%s done=%d t=%.6f chunks=%d abandoned=%d retries=%d "
      "stalls=%d sf=%d rev=%d reinj=%d to=%d rt=%d faults=%d skip=%d "
      "viol=%zu",
      static_cast<unsigned long long>(seed), to_string(outcome),
      completed ? 1 : 0, session_s, chunks_delivered, chunks_abandoned,
      chunk_retries, stalls, subflow_failures, subflow_revivals,
      reinjected_packets, http_timeouts, http_retries, faults_started,
      faults_skipped, violations.size());
  std::string out = buf;
  // The hung reason is deterministic for sim-event trips; including it
  // keeps a quarantined run's digest meaningful across worker counts.
  if (!hung_reason.empty()) out += " why=" + hung_reason;
  return out;
}

int ChaosCampaignResult::violation_count() const {
  int n = 0;
  for (const ChaosRunResult& r : runs) {
    n += static_cast<int>(r.violations.size());
  }
  return n;
}

OutcomeCounts ChaosCampaignResult::outcome_counts() const {
  OutcomeCounts c;
  for (const ChaosRunResult& r : runs) {
    switch (r.outcome) {
      case RunOutcome::kOk: ++c.ok; break;
      case RunOutcome::kViolation: ++c.violation; break;
      case RunOutcome::kHung: ++c.hung; break;
      case RunOutcome::kCrashed: ++c.crashed; break;
    }
  }
  return c;
}

std::string ChaosCampaignResult::digest() const {
  std::string out;
  for (const ChaosRunResult& r : runs) {
    out += r.fingerprint();
    out += '\n';
  }
  return out;
}

std::vector<std::string> check_chaos_invariants(const SessionResult& res,
                                                int chunk_count) {
  std::vector<std::string> v;
  auto fail = [&v](std::string msg) { v.push_back(std::move(msg)); };

  if (!res.completed) {
    fail("session hung: time limit reached before playback finished");
  }
  if (res.manifest_failed) {
    // A cleanly-failed manifest ends the session with zero chunks; any
    // delivered chunk alongside it means the player state machine broke.
    if (res.chunks != 0) {
      fail("manifest failed but " + std::to_string(res.chunks) +
           " chunks delivered");
    }
  } else if (res.chunks + res.chunks_abandoned != chunk_count) {
    fail("chunk accounting: delivered " + std::to_string(res.chunks) +
         " + abandoned " + std::to_string(res.chunks_abandoned) + " != " +
         std::to_string(chunk_count));
  }
  if (res.server_data_seq_high != res.client_bytes_in_order) {
    fail("byte accounting server->client: scheduled " +
         std::to_string(res.server_data_seq_high) + ", consumed in order " +
         std::to_string(res.client_bytes_in_order));
  }
  if (res.client_data_seq_high != res.server_bytes_in_order) {
    fail("byte accounting client->server: scheduled " +
         std::to_string(res.client_data_seq_high) + ", consumed in order " +
         std::to_string(res.server_bytes_in_order));
  }
  if (res.reinject_backlog != 0) {
    fail("reinjection backlog not drained: " +
         std::to_string(res.reinject_backlog) + " segments stranded");
  }
  if (!res.faults_quiescent) {
    fail("fault windows still open at session end");
  }
  if (res.faults_skipped != 0) {
    fail(std::to_string(res.faults_skipped) +
         " fault events had no attachable target");
  }
  return v;
}

std::vector<std::string> check_counter_invariants(MetricsRegistry& m,
                                                  const SessionResult& res) {
  std::vector<std::string> v;
  auto counter_is = [&](const char* name, double expect, const char* what) {
    const double got = m.counter(name).value();
    if (got != expect) {
      v.push_back(std::string("counter ") + name + " = " +
                  std::to_string(got) + ", " + what + " = " +
                  std::to_string(expect));
    }
  };
  counter_is("player.chunks", res.chunks, "result chunks");
  counter_is("player.chunks_abandoned", res.chunks_abandoned,
             "result abandoned");
  counter_is("player.chunk_retries", res.chunk_retries, "result retries");
  counter_is("player.stalls", res.stalls, "result stalls");
  counter_is("fault.injected", res.faults_started, "faults started");
  counter_is("http.timeouts", res.http_timeouts, "result http timeouts");
  counter_is("http.retries", res.http_retries, "result http retries");
  const double sf = m.counter("mptcp.subflow_failures").value() +
                    m.counter("mptcp.client.subflow_failures").value();
  if (sf != res.subflow_failures) {
    v.push_back("subflow-failure counters = " + std::to_string(sf) +
                ", result = " + std::to_string(res.subflow_failures));
  }
  const double reinj = m.counter("mptcp.reinjected_packets").value() +
                       m.counter("mptcp.client.reinjected_packets").value();
  if (reinj != res.reinjected_packets) {
    v.push_back("reinjection counters = " + std::to_string(reinj) +
                ", result = " + std::to_string(res.reinjected_packets));
  }
  return v;
}

std::vector<std::string> check_pipeline_invariants(
    const std::vector<TraceRecord>& trace, int max_retries) {
  std::vector<std::string> v;
  std::set<SpanId> closed;
  for (const TraceRecord& r : trace) {
    if (r.type == TraceType::kSpanStart) {
      if (r.span != 0 && closed.count(r.span) > 0) {
        v.push_back("span " + std::to_string(r.span) +
                    " reopened after close at t=" +
                    std::to_string(to_seconds(r.at)));
      }
      continue;
    }
    if (r.type == TraceType::kSpanEnd) {
      closed.insert(r.span);
      continue;
    }
    if (r.type != TraceType::kHttp || r.label == nullptr) continue;
    if (std::strcmp(r.label, "response") == 0) {
      if (r.span != 0 && closed.count(r.span) > 0) {
        v.push_back("response delivered to dead span " +
                    std::to_string(r.span) + " at t=" +
                    std::to_string(to_seconds(r.at)));
      }
    } else if (std::strcmp(r.label, "retry") == 0) {
      // Retry records carry the attempt number after increment, so a
      // budget-honoring client never logs one above max_retries.
      if (r.level > max_retries) {
        v.push_back("retry budget exceeded: attempt " +
                    std::to_string(r.level) + " > " +
                    std::to_string(max_retries) + " on span " +
                    std::to_string(r.span));
      }
    }
  }
  return v;
}

SessionSpec default_chaos_spec() {
  SessionSpec s;  // chaos-shaped defaults (recovery on, 600 s limit)
  s.watchdog = WatchdogConfig{200'000'000, 900.0};
  return s;
}

ScenarioConfig chaos_scenario_config(std::uint64_t run_seed) {
  return resolve_scenario_config(SessionSpec{}, run_seed);
}

Video chaos_video(const ChaosConfig& cfg) {
  // Fixed content seed: every chaos run streams the same bytes; only the
  // network and the fault plan vary with the run seed.
  return Video("chaos", seconds(2.0), cfg.chunk_count,
               {DataRate::mbps(0.6), DataRate::mbps(1.2), DataRate::mbps(2.4)},
               0.1, 42);
}

SessionConfig chaos_session_config(const ChaosConfig& cfg,
                                   std::uint64_t run_seed) {
  return resolve_session_config(cfg.session, run_seed);
}

ChaosRunResult run_chaos_single(const ChaosConfig& cfg, const Video& video,
                                std::uint64_t seed, const FaultPlan& plan,
                                Telemetry& telemetry) {
  Scenario scenario(resolve_scenario_config(cfg.session, seed));
  SessionConfig scfg = chaos_session_config(cfg, seed);
  SessionEnv env;
  env.telemetry = &telemetry;
  env.faults = &plan;

  MetricsTimeline timeline;
  if (cfg.series_interval > kDurationZero) {
    env.metrics = &timeline;
    scfg.metrics_interval = cfg.series_interval;
  }

  // Always-on request-lifecycle capture for the pipelined audit. Sinks are
  // pure observers, so attaching one never perturbs the simulation or the
  // campaign digest. Attribution mode widens the mask to everything the
  // span model consumes (faults, scheduler decisions, player events,
  // payload deliveries).
  std::uint32_t capture_mask =
      (1u << static_cast<unsigned>(TraceType::kHttp)) |
      (1u << static_cast<unsigned>(TraceType::kSpanStart)) |
      (1u << static_cast<unsigned>(TraceType::kSpanEnd));
  if (cfg.attribution) capture_mask |= span_model_trace_mask();
  TraceCollector pipeline_capture;
  TypeFilterSink pipeline_filter(&pipeline_capture, capture_mask);
  telemetry.add_sink(&pipeline_filter);

  // Per-run trace capture: sinks attach to the run-private telemetry, so
  // any --jobs interleaving writes each file from exactly one thread.
  std::unique_ptr<JsonlSink> jsonl;
  std::unique_ptr<TypeFilterSink> filter;
  if (!cfg.trace_path.empty()) {
    std::string path = cfg.trace_path;
    if (cfg.seed_count > 1) path += "." + std::to_string(seed);
    jsonl = std::make_unique<JsonlSink>(path);
    if (cfg.trace_types != ~0u) {
      filter = std::make_unique<TypeFilterSink>(jsonl.get(), cfg.trace_types);
      telemetry.add_sink(filter.get());
    } else {
      telemetry.add_sink(jsonl.get());
    }
  }

  if (cfg.pre_session_hook) cfg.pre_session_hook(scenario.loop(), seed);

  ChaosRunResult out;
  out.seed = seed;
  SessionResult res;
  bool hung = false;
  try {
    res = run_streaming_session(scenario, video, scfg, env);
  } catch (const WatchdogTripped& e) {
    // Quarantine: the simulation was killed mid-run, so there is no
    // SessionResult to audit — report the outcome and keep the campaign
    // moving. Any other exception still propagates (→ kCrashed upstream).
    hung = true;
    out.outcome = RunOutcome::kHung;
    out.hung_reason = e.what();
  }

  telemetry.remove_sink(&pipeline_filter);
  if (filter) {
    telemetry.remove_sink(filter.get());
  } else if (jsonl) {
    telemetry.remove_sink(jsonl.get());
  }

  if (hung) {
    if (!cfg.bundle_dir.empty()) {
      std::string err;
      if (!write_repro_bundle(make_repro_bundle(cfg, out, plan),
                              repro_bundle_path(cfg.bundle_dir, seed),
                              &err)) {
        std::fprintf(stderr, "chaos: bundle for seed %llu not written: %s\n",
                     static_cast<unsigned long long>(seed), err.c_str());
      }
    }
    return out;
  }

  out.completed = res.completed;
  out.session_s = res.session_s;
  out.chunks_delivered = res.chunks;
  out.chunks_abandoned = res.chunks_abandoned;
  out.chunk_retries = res.chunk_retries;
  out.stalls = res.stalls;
  out.subflow_failures = res.subflow_failures;
  out.subflow_revivals = res.subflow_revivals;
  out.reinjected_packets = res.reinjected_packets;
  out.http_timeouts = res.http_timeouts;
  out.http_retries = res.http_retries;
  out.faults_started = res.faults_started;
  out.faults_skipped = res.faults_skipped;
  out.manifest_failed = res.manifest_failed;
  out.violations = check_chaos_invariants(res, video.chunk_count());
  {
    std::vector<std::string> pv = check_pipeline_invariants(
        pipeline_capture.records(), scfg.http_recovery.max_retries);
    out.violations.insert(out.violations.end(),
                          std::make_move_iterator(pv.begin()),
                          std::make_move_iterator(pv.end()));
  }
  if (cfg.series_interval > kDurationZero) {
    out.series_csv = qoe_series_csv(timeline, seed);
  }
  if (cfg.attribution) {
    SpanModel model = build_span_model(pipeline_capture.records());
    attribute_misses(&model, kWifiPathId);
    out.attribution = rollup_span_model(model, std::to_string(seed));
    out.has_attribution = true;
  }

  {
    std::vector<std::string> cv =
        check_counter_invariants(telemetry.metrics(), res);
    out.violations.insert(out.violations.end(),
                          std::make_move_iterator(cv.begin()),
                          std::make_move_iterator(cv.end()));
  }
  out.outcome = out.violations.empty() ? RunOutcome::kOk
                                       : RunOutcome::kViolation;
  if (!cfg.bundle_dir.empty() && out.outcome != RunOutcome::kOk) {
    std::string err;
    if (!write_repro_bundle(make_repro_bundle(cfg, out, plan),
                            repro_bundle_path(cfg.bundle_dir, seed), &err)) {
      std::fprintf(stderr, "chaos: bundle for seed %llu not written: %s\n",
                   static_cast<unsigned long long>(seed), err.c_str());
    }
  }
  return out;
}

ChaosCampaignResult run_chaos_campaign(const ChaosConfig& cfg) {
  const Video video = chaos_video(cfg);
  Campaign<ChaosRunResult> campaign("chaos", cfg.base_seed);
  for (int i = 0; i < cfg.seed_count; ++i) {
    campaign.add("chaos/" + std::to_string(i),
                 [&cfg, &video](RunContext& ctx) {
                   return run_chaos_single(
                       cfg, video, ctx.seed,
                       random_fault_plan(ctx.seed, cfg.plan), ctx.telemetry);
                 });
  }
  CampaignOptions opts;
  opts.jobs = cfg.jobs;
  opts.progress = cfg.progress;
  CampaignResult<ChaosRunResult> res = campaign.run(opts);

  ChaosCampaignResult out;
  out.stats = res.stats;
  out.runs = std::move(res.results);
  for (std::size_t i = 0; i < out.runs.size(); ++i) {
    if (!res.reports[i].ok) {
      out.runs[i].seed = res.reports[i].seed;
      out.runs[i].outcome = RunOutcome::kCrashed;
      out.runs[i].violations.push_back("run threw: " + res.reports[i].error);
    }
  }
  return out;
}

}  // namespace mpdash
