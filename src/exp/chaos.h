#pragma once
// Chaos campaign: seeded random fault plans swept over the parallel
// campaign runner, with per-run invariant checks.
//
// Each run derives everything mutable — the fault plan, every link's loss
// stream, the HTTP jitter stream — from one per-run seed, streams a short
// video through the full stack with recovery enabled, and then audits the
// wreckage:
//   * the session finished inside the time limit (no hung session);
//   * every chunk was delivered or cleanly abandoned;
//   * byte accounting conserved in both directions (all scheduled stream
//     bytes consumed in order, no stranded reinjection backlog);
//   * every fault window opened and closed (network restored);
//   * telemetry counters agree with the result struct.
//
// Results land in add-order slots (Campaign contract), so the campaign
// digest is bitwise identical for any --jobs value.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/rollup.h"
#include "exp/session.h"
#include "exp/spec.h"
#include "fault/fault.h"
#include "runner/campaign.h"

namespace mpdash {

// Per-run triage outcome. `ok` and `violation` come from the invariant
// audit over a finished session; `hung` means the run watchdog killed a
// live- or run-away simulation (quarantined, campaign kept going);
// `crashed` means the run body threw anything else. Aggregated counts are
// jobs-invariant (results land in add-order slots).
enum class RunOutcome : std::uint8_t {
  kOk = 0,
  kViolation,
  kHung,
  kCrashed,
};

const char* to_string(RunOutcome o);
bool outcome_from_string(std::string_view name, RunOutcome* out);

// The spec every chaos run resolves per seed: recovery on, generous
// watchdog budgets — a real chaos run is a few million events, so only a
// livelocked simulation can exhaust the sim-event budget, and the
// wall-clock backstop only fires when a run burns real time without
// burning events.
SessionSpec default_chaos_spec();

struct ChaosConfig {
  int seed_count = 50;
  std::uint64_t base_seed = 1;
  int jobs = 0;  // 0 → MPDASH_JOBS env or hardware cores
  // The per-run session description (scheme, adaptation, player/recovery/
  // watchdog knobs, scenario rates, time limit). Resolved per seed via
  // resolve_session_config / resolve_scenario_config.
  SessionSpec session = default_chaos_spec();
  // Short synthetic video (chunk_count × 2 s) keeps one run ~seconds.
  int chunk_count = 30;
  // Faults are generated inside [start_margin, fault_horizon - end_margin]
  // (see RandomPlanConfig); the session gets until the spec's time limit
  // to finish.
  RandomPlanConfig plan;
  // Per-run metrics time-series cadence; zero disables sampling. The
  // snapshotter only reads the registry, so series runs keep the same
  // digest as bare runs.
  Duration series_interval = kDurationZero;
  // Per-run JSONL trace capture; empty disables. With more than one seed
  // each run writes `<trace_path>.<seed>`. `trace_types` filters the
  // stream (parse_trace_types mask; default = everything).
  std::string trace_path;
  std::uint32_t trace_types = ~0u;
  // Per-run deadline-miss attribution: widens the in-process capture to
  // the span-model record set, runs attribute_misses over it, and fills
  // ChaosRunResult::attribution (one RollupRow keyed by seed). Sinks are
  // pure observers, so the campaign digest is unchanged.
  bool attribution = false;
  std::FILE* progress = stderr;  // nullptr silences the runner
  // When set, every non-ok run writes a self-contained repro bundle
  // `repro_<seed>.json` into this directory (created on demand). Per-seed
  // filenames keep emission race-free under any --jobs count.
  std::string bundle_dir;
  // Test-only: runs on the session's event loop before the session starts
  // (livelock injection for the watchdog/quarantine tests). Never set in
  // production paths.
  std::function<void(EventLoop&, std::uint64_t)> pre_session_hook;
};

struct ChaosRunResult {
  std::uint64_t seed = 0;
  bool completed = false;
  double session_s = 0.0;
  int chunks_delivered = 0;
  int chunks_abandoned = 0;
  int chunk_retries = 0;
  int stalls = 0;
  int subflow_failures = 0;
  int subflow_revivals = 0;
  int reinjected_packets = 0;
  int http_timeouts = 0;
  int http_retries = 0;
  int faults_started = 0;
  int faults_skipped = 0;
  bool manifest_failed = false;
  // Triage outcome; kHung runs carry the watchdog's reason in
  // `hung_reason` and no session counters (the run was aborted mid-sim).
  RunOutcome outcome = RunOutcome::kOk;
  std::string hung_reason;
  std::vector<std::string> violations;  // empty = all invariants hold
  // Per-run QoE/byte-share time series (kChaosSeriesHeader rows, no
  // header); empty unless ChaosConfig::series_interval > 0.
  std::string series_csv;
  // Per-run miss attribution roll-up (key = seed); only meaningful when
  // ChaosConfig::attribution was set.
  bool has_attribution = false;
  RollupRow attribution;

  bool ok() const { return outcome == RunOutcome::kOk; }
  // Deterministic one-line digest of everything observable; the jobs-N
  // vs jobs-1 comparison hashes these.
  std::string fingerprint() const;
};

// Jobs-invariant outcome tally for a whole campaign.
struct OutcomeCounts {
  int ok = 0;
  int violation = 0;
  int hung = 0;
  int crashed = 0;

  int bad() const { return violation + hung + crashed; }
};

struct ChaosCampaignResult {
  std::vector<ChaosRunResult> runs;  // seed order
  CampaignStats stats;

  int violation_count() const;
  OutcomeCounts outcome_counts() const;
  // Every run finished with outcome kOk.
  bool clean() const { return outcome_counts().bad() == 0; }
  // Concatenated per-run fingerprints: equal digests ⇔ identical campaigns.
  std::string digest() const;
};

// Audits one finished session against the chaos invariants. Exposed so
// tests can run single sessions through the same checks.
std::vector<std::string> check_chaos_invariants(const SessionResult& res,
                                                int chunk_count);

// Audits telemetry-counter consistency: the counters in `m` must agree
// with the result struct (an instrumentation site drifting from the source
// of truth is a bug the goldens can't see). `m` must be the registry the
// session instrumented into — run-private for chaos, per-tenant for fleet.
std::vector<std::string> check_counter_invariants(MetricsRegistry& m,
                                                  const SessionResult& res);

// Audits the pipelined request lifecycle from a (kHttp | kSpanStart |
// kSpanEnd)-filtered trace: no HTTP response may be delivered to a span
// that already closed (a stale late response must be discarded, never
// surfaced), no span reopens, and no request exceeds its retry budget.
// Holds for sequential runs too (the sequential player is inflight = 1).
std::vector<std::string> check_pipeline_invariants(
    const std::vector<TraceRecord>& trace, int max_retries);

// Builds the per-seed SessionConfig (recovery knobs, jitter seed) — shared
// by the campaign, the CLI, and the acceptance tests. Thin wrapper over
// resolve_session_config(cfg.session, run_seed).
SessionConfig chaos_session_config(const ChaosConfig& cfg,
                                   std::uint64_t run_seed);

// The scenario every chaos run streams over (moderate WiFi + LTE, per-run
// link loss streams derived from `run_seed`) — the default-spec resolution.
ScenarioConfig chaos_scenario_config(std::uint64_t run_seed);

// The synthetic chaos video for `cfg.chunk_count` chunks.
Video chaos_video(const ChaosConfig& cfg);

// The exact campaign run body for one seed with an explicit fault plan:
// scenario/session from (cfg, seed), watchdog armed, invariants audited,
// outcome assigned, repro bundle emitted when cfg.bundle_dir is set.
// Exposed so `mpdash_sim repro` and the shrinker replay a bundle's stored
// plan through the identical code path the campaign ran — same seeds,
// same audits, same strings.
ChaosRunResult run_chaos_single(const ChaosConfig& cfg, const Video& video,
                                std::uint64_t seed, const FaultPlan& plan,
                                Telemetry& telemetry);

// Column header for qoe_series_csv rows (includes the trailing newline).
extern const char kChaosSeriesHeader[];

// Flattens a sampled MetricsTimeline into QoE/byte-share CSV rows, one
// per snapshot, each prefixed with `seed` so campaign-level aggregation
// stays unambiguous.
std::string qoe_series_csv(const MetricsTimeline& timeline,
                           std::uint64_t seed);

ChaosCampaignResult run_chaos_campaign(const ChaosConfig& cfg);

}  // namespace mpdash
