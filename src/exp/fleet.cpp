#include "exp/fleet.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <memory>
#include <system_error>
#include <utility>

#include "core/policy.h"
#include "dash/server.h"
#include "fault/fault_json.h"
#include "fault/injector.h"
#include "util/json.h"

namespace mpdash {

namespace {

std::string u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

// One tenant: shared-link facades (flow = session index) plus the full
// per-session stack and a private telemetry context for the counter audit.
struct Tenant {
  std::uint64_t seed = 0;
  SessionSpec spec;
  SessionConfig config;
  Telemetry telemetry;
  NetPath wifi;
  NetPath lte;
  std::unique_ptr<StreamingSession> session;
  TimePoint join{};
  bool done = false;
  TimePoint finish{};

  Tenant(const PathDescription& wifi_desc, const PathDescription& lte_desc,
         Link& wifi_down, Link& wifi_up, Link& lte_down, Link& lte_up,
         int flow)
      : wifi(wifi_desc, wifi_down, wifi_up, flow),
        lte(lte_desc, lte_down, lte_up, flow) {}
};

Video fleet_video(int chunk_count) {
  // Same fixed-content video for every tenant (chaos convention): only the
  // contention, the seeds, and the fault plan vary.
  return Video("fleet", seconds(2.0), chunk_count,
               {DataRate::mbps(0.6), DataRate::mbps(1.2), DataRate::mbps(2.4)},
               0.1, 42);
}

}  // namespace

const char kFleetCsvHeader[] =
    "seed,session,scheme,adaptation,join_s,completed,chunks,abandoned,"
    "retries,stalls,stall_s,switches,steady_mbps,qoe,wifi_bytes,cell_bytes,"
    "violations\n";

std::string fleet_sessions_csv(const FleetResult& r) {
  std::string out;
  char buf[320];
  for (const FleetSessionResult& s : r.sessions) {
    const SessionResult& res = s.result;
    std::snprintf(buf, sizeof buf,
                  "%llu,%d,%s,%s,%.3f,%d,%d,%d,%d,%d,%.6f,%d,%.6f,%.6f,"
                  "%lld,%lld,%zu\n",
                  static_cast<unsigned long long>(r.seed), s.session,
                  to_string(s.scheme), s.adaptation.c_str(), s.join_s,
                  res.completed ? 1 : 0, res.chunks, res.chunks_abandoned,
                  res.chunk_retries, res.stalls, res.stall_s, res.switches,
                  res.steady_avg_bitrate_mbps, s.qoe,
                  static_cast<long long>(res.wifi_bytes),
                  static_cast<long long>(res.cell_bytes),
                  s.violations.size());
    out += buf;
  }
  return out;
}

std::string FleetResult::fingerprint() const {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "seed=%llu out=%s n=%zu done=%d qoe=%.6f p10=%.6f jain=%.6f "
      "wifi=%lld cell=%lld faults=%d skip=%d viol=%zu",
      static_cast<unsigned long long>(seed), to_string(outcome),
      sessions.size(), completed, qoe_mean, qoe_p10, jain_fairness,
      static_cast<long long>(wifi_bytes), static_cast<long long>(cell_bytes),
      faults_started, faults_skipped, violations.size());
  std::string out = buf;
  if (!hung_reason.empty()) out += " why=" + hung_reason;
  return out;
}

FleetResult run_fleet(const FleetConfig& cfg, Telemetry* telemetry) {
  FleetResult out;
  out.seed = cfg.seed;
  const int n = std::max(1, cfg.sessions);

  EventLoop loop;
  if (telemetry) loop.set_telemetry(telemetry);

  // Shared bottlenecks: one WiFi AP and one cellular carrier, each a
  // down/up link pair every tenant contends on. Loss streams derive from
  // the fleet seed exactly as a Scenario's do (per-link private RNGs).
  const std::uint64_t net_seed = derive_stream_seed(cfg.seed, "links");
  auto make_link = [&](int id, const char* name, double mbps,
                       Duration rtt, std::uint64_t loss_seed) {
    LinkConfig lc;
    lc.id = id;
    lc.name = name;
    lc.rate = BandwidthTrace::constant(DataRate::mbps(mbps));
    lc.propagation_delay = rtt / 2;
    lc.queue_capacity = cfg.queue_capacity;
    lc.loss_seed = loss_seed;
    lc.discipline = cfg.discipline;
    lc.fq_quantum = cfg.fq_quantum;
    return std::make_unique<Link>(loop, lc);
  };
  const std::uint64_t wifi_seed = derive_stream_seed(net_seed, "wifi");
  const std::uint64_t lte_seed = derive_stream_seed(net_seed, "lte");
  auto wifi_down = make_link(2 * kWifiPathId, "wifi.down", cfg.wifi_mbps,
                             cfg.wifi_rtt,
                             derive_stream_seed(wifi_seed, ".down"));
  auto wifi_up = make_link(2 * kWifiPathId + 1, "wifi.up", cfg.wifi_up_mbps,
                           cfg.wifi_rtt,
                           derive_stream_seed(wifi_seed, ".up"));
  auto lte_down = make_link(2 * kCellularPathId, "lte.down", cfg.lte_mbps,
                            cfg.lte_rtt,
                            derive_stream_seed(lte_seed, ".down"));
  auto lte_up = make_link(2 * kCellularPathId + 1, "lte.up", cfg.lte_up_mbps,
                          cfg.lte_rtt, derive_stream_seed(lte_seed, ".up"));
  if (telemetry) {
    wifi_down->set_telemetry(telemetry);
    wifi_up->set_telemetry(telemetry);
    lte_down->set_telemetry(telemetry);
    lte_up->set_telemetry(telemetry);
  }

  PathDescription wifi_desc;
  wifi_desc.id = kWifiPathId;
  wifi_desc.name = "wifi";
  wifi_desc.kind = InterfaceKind::kWifi;
  wifi_desc.metered = false;
  PathDescription lte_desc;
  lte_desc.id = kCellularPathId;
  lte_desc.name = "lte";
  lte_desc.kind = InterfaceKind::kCellular;
  lte_desc.metered = true;
  std::vector<PathDescription> descs{wifi_desc, lte_desc};
  prefer_wifi_policy().apply(descs);
  wifi_desc = descs[0];
  lte_desc = descs[1];

  const Video video = fleet_video(cfg.chunk_count);

  // Tenants construct in session order — part of the determinism contract
  // (event ids derive from scheduling order).
  std::vector<std::unique_ptr<Tenant>> tenants;
  tenants.reserve(static_cast<std::size_t>(n));
  int done_count = 0;
  for (int i = 0; i < n; ++i) {
    auto t = std::make_unique<Tenant>(wifi_desc, lte_desc, *wifi_down,
                                      *wifi_up, *lte_down, *lte_up, i);
    t->seed = derive_stream_seed(cfg.seed, "session/" + std::to_string(i));
    t->spec = cfg.mix.empty()
                  ? SessionSpec{}
                  : cfg.mix[static_cast<std::size_t>(i) % cfg.mix.size()];
    t->config = resolve_session_config(t->spec, t->seed);
    // The fleet watchdog and time limit govern; per-tenant budgets are
    // meaningless on a shared loop.
    t->config.watchdog = WatchdogConfig{};
    SessionEnv env;
    env.telemetry = &t->telemetry;
    std::vector<NetPath*> paths{&t->wifi, &t->lte};
    t->session = std::make_unique<StreamingSession>(loop, paths, video,
                                                    t->config, env);
    Tenant* raw = t.get();
    t->session->set_done_callback([raw, &loop, &done_count] {
      raw->done = true;
      raw->finish = loop.now();
      ++done_count;
    });
    t->join = TimePoint(cfg.join_stagger * i);
    tenants.push_back(std::move(t));
  }

  // One fault plan against the *shared* links: attach tenant 0's facades
  // (faults address path ids, and every facade fronts the same links), and
  // stall/drop hooks fan out to every tenant's origin server.
  std::unique_ptr<FaultInjector> injector;
  if (cfg.faults != nullptr && !cfg.faults->empty()) {
    injector = std::make_unique<FaultInjector>(loop, *cfg.faults);
    injector->attach_path(&tenants[0]->wifi);
    injector->attach_path(&tenants[0]->lte);
    FaultInjector::ServerHooks hooks;
    hooks.set_stalled = [&tenants](bool on) {
      for (auto& t : tenants) t->session->dash_server().http().set_stalled(on);
    };
    hooks.set_dropping = [&tenants](bool on) {
      for (auto& t : tenants) t->session->dash_server().http().set_dropping(on);
    };
    injector->set_server_hooks(std::move(hooks));
    if (telemetry) injector->set_telemetry(telemetry);
    injector->arm();
  }

  // Staggered joins, scheduled after construction in session order.
  for (auto& t : tenants) {
    StreamingSession* s = t->session.get();
    loop.schedule_at(t->join, [s] { s->start(); });
  }

  try {
    RunWatchdog watchdog(loop, cfg.watchdog);
    loop.run_until(TimePoint(cfg.time_limit));
  } catch (const WatchdogTripped& e) {
    // Quarantine, chaos-style: the fleet was killed mid-sim, so there are
    // no per-tenant results to audit.
    out.outcome = RunOutcome::kHung;
    out.hung_reason = e.what();
    return out;
  }

  // --- per-tenant collection and audit ---------------------------------
  double qoe_sum = 0.0;
  std::vector<double> qoes;
  double rate_sum = 0.0, rate_sumsq = 0.0;
  TimePoint last_finish{};
  for (int i = 0; i < n; ++i) {
    Tenant& t = *tenants[static_cast<std::size_t>(i)];
    FleetSessionResult sr;
    sr.session = i;
    sr.seed = t.seed;
    sr.scheme = t.spec.scheme;
    sr.adaptation = t.spec.adaptation;
    sr.join_s = to_seconds(t.join);

    SessionResult res = t.session->collect();
    const TimePoint end = t.done ? t.finish : loop.now();
    res.session_s = to_seconds(end - t.join);
    res.wifi_bytes = t.wifi.delivered_wire_bytes();
    res.cell_bytes = t.lte.delivered_wire_bytes();
    const Bytes total = res.wifi_bytes + res.cell_bytes;
    res.cell_fraction = total > 0 ? static_cast<double>(res.cell_bytes) /
                                        static_cast<double>(total)
                                  : 0.0;
    if (t.done) {
      ++out.completed;
      last_finish = std::max(last_finish, t.finish);
    }

    sr.qoe = res.steady_avg_bitrate_mbps - kFleetStallPenalty * res.stall_s;
    sr.violations = check_chaos_invariants(res, cfg.chunk_count);
    {
      std::vector<std::string> cv =
          check_counter_invariants(t.telemetry.metrics(), res);
      sr.violations.insert(sr.violations.end(),
                           std::make_move_iterator(cv.begin()),
                           std::make_move_iterator(cv.end()));
    }
    for (const std::string& v : sr.violations) {
      out.violations.push_back("session " + std::to_string(i) + ": " + v);
    }

    qoe_sum += sr.qoe;
    qoes.push_back(sr.qoe);
    rate_sum += res.steady_avg_bitrate_mbps;
    rate_sumsq +=
        res.steady_avg_bitrate_mbps * res.steady_avg_bitrate_mbps;
    sr.result = std::move(res);
    out.sessions.push_back(std::move(sr));
  }

  // --- fleet-level audit and aggregates --------------------------------
  if (injector) {
    out.faults_started = injector->faults_started();
    out.faults_skipped = injector->faults_skipped();
    if (!injector->quiescent()) {
      out.violations.push_back("fault windows still open at fleet end");
    }
    if (injector->faults_skipped() != 0) {
      out.violations.push_back(std::to_string(injector->faults_skipped()) +
                               " fault events had no attachable target");
    }
  }

  out.fleet_s = out.completed == n ? to_seconds(last_finish)
                                   : to_seconds(cfg.time_limit);
  out.qoe_mean = qoe_sum / static_cast<double>(n);
  std::sort(qoes.begin(), qoes.end());
  out.qoe_p10 = qoes[static_cast<std::size_t>((n + 9) / 10 - 1)];
  out.jain_fairness =
      rate_sumsq > 0.0
          ? (rate_sum * rate_sum) / (static_cast<double>(n) * rate_sumsq)
          : 1.0;
  out.wifi_bytes =
      wifi_down->delivered_bytes() + wifi_up->delivered_bytes();
  out.cell_bytes = lte_down->delivered_bytes() + lte_up->delivered_bytes();
  const Bytes total = out.wifi_bytes + out.cell_bytes;
  out.cell_fraction = total > 0 ? static_cast<double>(out.cell_bytes) /
                                      static_cast<double>(total)
                                : 0.0;
  out.outcome = out.violations.empty() ? RunOutcome::kOk
                                       : RunOutcome::kViolation;
  return out;
}

// --- campaign ----------------------------------------------------------

OutcomeCounts FleetCampaignResult::outcome_counts() const {
  OutcomeCounts c;
  for (const FleetResult& r : runs) {
    switch (r.outcome) {
      case RunOutcome::kOk: ++c.ok; break;
      case RunOutcome::kViolation: ++c.violation; break;
      case RunOutcome::kHung: ++c.hung; break;
      case RunOutcome::kCrashed: ++c.crashed; break;
    }
  }
  return c;
}

std::string FleetCampaignResult::digest() const {
  std::string out;
  for (const FleetResult& r : runs) {
    out += r.fingerprint();
    out += '\n';
  }
  return out;
}

std::string FleetCampaignResult::sessions_csv() const {
  std::string out = kFleetCsvHeader;
  for (const FleetResult& r : runs) out += fleet_sessions_csv(r);
  return out;
}

FleetCampaignResult run_fleet_campaign(const FleetCampaignConfig& cfg) {
  Campaign<FleetResult> campaign("fleet", cfg.base_seed);
  for (int i = 0; i < cfg.seed_count; ++i) {
    campaign.add("fleet/" + std::to_string(i), [&cfg](RunContext& ctx) {
      FleetConfig f = cfg.fleet;
      f.seed = ctx.seed;
      FaultPlan plan;
      if (cfg.chaos) {
        plan = random_fault_plan(ctx.seed, cfg.plan);
        f.faults = &plan;
      }
      FleetResult r = run_fleet(f, &ctx.telemetry);
      if (!cfg.bundle_dir.empty() && r.outcome != RunOutcome::kOk) {
        FleetBundle b;
        b.seed = ctx.seed;
        b.config = f;
        b.config.faults = nullptr;
        b.plan = plan;
        b.outcome = r.outcome;
        b.hung_reason = r.hung_reason;
        b.expected_violations = r.violations;
        std::string err;
        if (!write_fleet_bundle(b, fleet_bundle_path(cfg.bundle_dir, ctx.seed),
                                &err)) {
          std::fprintf(stderr,
                       "fleet: bundle for seed %llu not written: %s\n",
                       static_cast<unsigned long long>(ctx.seed), err.c_str());
        }
      }
      return r;
    });
  }
  CampaignOptions opts;
  opts.jobs = cfg.jobs;
  opts.progress = cfg.progress;
  CampaignResult<FleetResult> res = campaign.run(opts);

  FleetCampaignResult out;
  out.stats = res.stats;
  out.runs = std::move(res.results);
  for (std::size_t i = 0; i < out.runs.size(); ++i) {
    if (!res.reports[i].ok) {
      out.runs[i].seed = res.reports[i].seed;
      out.runs[i].outcome = RunOutcome::kCrashed;
      out.runs[i].violations.push_back("run threw: " + res.reports[i].error);
    }
  }
  return out;
}

// --- fleet repro bundles -----------------------------------------------

namespace {

std::string fleet_config_to_json(const FleetConfig& c) {
  // Canonical one-line object, same conventions as session_spec_to_json.
  std::string out = "{";
  out += "\"sessions\": " + std::to_string(c.sessions);
  out += ", \"chunk_count\": " + std::to_string(c.chunk_count);
  out += ", \"mix\": [";
  for (std::size_t i = 0; i < c.mix.size(); ++i) {
    if (i > 0) out += ", ";
    out += session_spec_to_json(c.mix[i]);
  }
  out += "]";
  out += ", \"discipline\": " + json_quote(to_string(c.discipline));
  out += ", \"fq_quantum\": " + std::to_string(c.fq_quantum);
  out += ", \"wifi_mbps\": " + json_double(c.wifi_mbps);
  out += ", \"lte_mbps\": " + json_double(c.lte_mbps);
  out += ", \"wifi_up_mbps\": " + json_double(c.wifi_up_mbps);
  out += ", \"lte_up_mbps\": " + json_double(c.lte_up_mbps);
  out += ", \"wifi_rtt_ns\": " + std::to_string(c.wifi_rtt.count());
  out += ", \"lte_rtt_ns\": " + std::to_string(c.lte_rtt.count());
  out += ", \"queue_capacity\": " + std::to_string(c.queue_capacity);
  out += ", \"join_stagger_ns\": " + std::to_string(c.join_stagger.count());
  out += ", \"time_limit_ns\": " + std::to_string(c.time_limit.count());
  out += ", \"watchdog\": {\"max_sim_events\": " +
         u64(c.watchdog.max_sim_events) +
         ", \"max_wall_s\": " + json_double(c.watchdog.max_wall_s) +
         ", \"poll_interval\": " + u64(c.watchdog.poll_interval) + "}";
  out += "}";
  return out;
}

bool fleet_config_from_json_value(const JsonValue& root, FleetConfig* out,
                                  std::string* error) {
  if (!root.is_object()) {
    if (error) *error = "fleet config: not an object";
    return false;
  }
  FleetConfig c;
  auto bad = [error](const char* what) {
    if (error) {
      *error = std::string("fleet config: missing or bad \"") + what + "\"";
    }
    return false;
  };
  const JsonValue* v = root.find("sessions");
  if (v == nullptr || !v->is_number()) return bad("sessions");
  c.sessions = static_cast<int>(v->as_int64(4));
  v = root.find("chunk_count");
  if (v == nullptr || !v->is_number()) return bad("chunk_count");
  c.chunk_count = static_cast<int>(v->as_int64(20));
  v = root.find("mix");
  if (v == nullptr || !v->is_array()) return bad("mix");
  c.mix.clear();
  for (const JsonValue& item : v->items) {
    SessionSpec spec;
    std::string spec_error;
    if (!session_spec_from_json_value(item, &spec, &spec_error)) {
      if (error) *error = "fleet config: mix entry: " + spec_error;
      return false;
    }
    c.mix.push_back(std::move(spec));
  }
  v = root.find("discipline");
  if (v == nullptr || !v->is_string()) return bad("discipline");
  if (v->str == to_string(QueueDiscipline::kFifo)) {
    c.discipline = QueueDiscipline::kFifo;
  } else if (v->str == to_string(QueueDiscipline::kFairQueue)) {
    c.discipline = QueueDiscipline::kFairQueue;
  } else {
    return bad("discipline");
  }
  v = root.find("fq_quantum");
  if (v == nullptr || !v->is_number()) return bad("fq_quantum");
  c.fq_quantum = v->as_int64(1500);
  auto read_double = [&root, &bad](const char* name, double* field) {
    const JsonValue* w = root.find(name);
    if (w == nullptr || !w->is_number()) return bad(name);
    *field = w->as_double(0.0);
    return true;
  };
  if (!read_double("wifi_mbps", &c.wifi_mbps)) return false;
  if (!read_double("lte_mbps", &c.lte_mbps)) return false;
  if (!read_double("wifi_up_mbps", &c.wifi_up_mbps)) return false;
  if (!read_double("lte_up_mbps", &c.lte_up_mbps)) return false;
  v = root.find("wifi_rtt_ns");
  if (v == nullptr || !v->is_number()) return bad("wifi_rtt_ns");
  c.wifi_rtt = Duration(v->as_int64(0));
  v = root.find("lte_rtt_ns");
  if (v == nullptr || !v->is_number()) return bad("lte_rtt_ns");
  c.lte_rtt = Duration(v->as_int64(0));
  v = root.find("queue_capacity");
  if (v == nullptr || !v->is_number()) return bad("queue_capacity");
  c.queue_capacity = v->as_int64(0);
  v = root.find("join_stagger_ns");
  if (v == nullptr || !v->is_number()) return bad("join_stagger_ns");
  c.join_stagger = Duration(v->as_int64(0));
  v = root.find("time_limit_ns");
  if (v == nullptr || !v->is_number()) return bad("time_limit_ns");
  c.time_limit = Duration(v->as_int64(0));
  v = root.find("watchdog");
  if (v == nullptr || !v->is_object()) return bad("watchdog");
  {
    const JsonValue* w = v->find("max_sim_events");
    if (w == nullptr || !w->is_number()) return bad("watchdog.max_sim_events");
    c.watchdog.max_sim_events = w->as_uint64(0);
    w = v->find("max_wall_s");
    if (w == nullptr || !w->is_number()) return bad("watchdog.max_wall_s");
    c.watchdog.max_wall_s = w->as_double(0.0);
    w = v->find("poll_interval");
    if (w == nullptr || !w->is_number()) return bad("watchdog.poll_interval");
    c.watchdog.poll_interval = w->as_uint64(4096);
  }
  *out = std::move(c);
  return true;
}

}  // namespace

std::string fleet_bundle_to_json(const FleetBundle& b) {
  std::string out = "{\n";
  out += "\"schema\": 1,\n";
  out += "\"kind\": \"mpdash-fleet-repro\",\n";
  out += "\"seed\": " + u64(b.seed) + ",\n";
  out += "\"config\": " + fleet_config_to_json(b.config) + ",\n";
  out += "\"plan\": " + fault_plan_to_json(b.plan) + ",\n";
  out += "\"outcome\": " + json_quote(to_string(b.outcome)) + ",\n";
  out += "\"hung_reason\": " + json_quote(b.hung_reason) + ",\n";
  out += "\"expected_violations\": [";
  for (std::size_t i = 0; i < b.expected_violations.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    out += json_quote(b.expected_violations[i]);
  }
  if (!b.expected_violations.empty()) out += "\n";
  out += "]\n}\n";
  return out;
}

bool fleet_bundle_from_json(const std::string& text, FleetBundle* out,
                            std::string* error) {
  JsonValue root;
  if (!json_parse(text, &root, error)) return false;
  if (!root.is_object()) {
    if (error) *error = "fleet bundle: top level is not an object";
    return false;
  }
  const JsonValue* kind = root.find("kind");
  if (kind == nullptr || !kind->is_string() ||
      kind->str != "mpdash-fleet-repro") {
    if (error) *error = "fleet bundle: missing or wrong \"kind\" marker";
    return false;
  }
  FleetBundle b;
  auto missing = [error](const char* field) {
    if (error) {
      *error = std::string("fleet bundle: missing field \"") + field + "\"";
    }
    return false;
  };
  const JsonValue* v = root.find("schema");
  if (v == nullptr || !v->is_number()) return missing("schema");
  b.schema = static_cast<int>(v->as_int64(1));
  if (b.schema != 1) {
    if (error) {
      *error = "fleet bundle: unsupported schema " + std::to_string(b.schema);
    }
    return false;
  }
  v = root.find("seed");
  if (v == nullptr || !v->is_number()) return missing("seed");
  b.seed = v->as_uint64(0);
  v = root.find("config");
  if (v == nullptr) return missing("config");
  if (!fleet_config_from_json_value(*v, &b.config, error)) return false;
  v = root.find("plan");
  if (v == nullptr) return missing("plan");
  if (!fault_plan_from_json_value(*v, &b.plan, error)) return false;
  v = root.find("outcome");
  if (v == nullptr || !v->is_string() ||
      !outcome_from_string(v->str, &b.outcome)) {
    if (error) *error = "fleet bundle: bad \"outcome\"";
    return false;
  }
  v = root.find("hung_reason");
  if (v != nullptr && v->is_string()) b.hung_reason = v->str;
  v = root.find("expected_violations");
  if (v != nullptr && v->is_array()) {
    for (const JsonValue& item : v->items) {
      if (!item.is_string()) {
        if (error) *error = "fleet bundle: non-string violation entry";
        return false;
      }
      b.expected_violations.push_back(item.str);
    }
  }
  *out = std::move(b);
  return true;
}

bool write_fleet_bundle(const FleetBundle& b, const std::string& path,
                        std::string* error) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string text = fleet_bundle_to_json(b);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok && error) *error = "short write to " + path;
  return ok;
}

bool load_fleet_bundle(const std::string& path, FleetBundle* out,
                       std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return fleet_bundle_from_json(text, out, error);
}

std::string fleet_bundle_path(const std::string& dir, std::uint64_t seed) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  return path + "fleet_repro_" + u64(seed) + ".json";
}

FleetReplayResult replay_fleet_bundle(const FleetBundle& b) {
  FleetConfig cfg = b.config;
  cfg.seed = b.seed;
  cfg.faults = b.plan.empty() ? nullptr : &b.plan;
  Telemetry telemetry;
  FleetReplayResult out;
  out.run = run_fleet(cfg, &telemetry);

  if (out.run.outcome != b.outcome) {
    out.mismatches.push_back(std::string("outcome: expected ") +
                             to_string(b.outcome) + ", got " +
                             to_string(out.run.outcome));
  }
  if (out.run.hung_reason != b.hung_reason) {
    out.mismatches.push_back("hung reason: expected \"" + b.hung_reason +
                             "\", got \"" + out.run.hung_reason + "\"");
  }
  const std::size_t n =
      std::max(b.expected_violations.size(), out.run.violations.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string* want =
        i < b.expected_violations.size() ? &b.expected_violations[i] : nullptr;
    const std::string* got =
        i < out.run.violations.size() ? &out.run.violations[i] : nullptr;
    if (want != nullptr && got != nullptr && *want == *got) continue;
    std::string line = "violation " + std::to_string(i) + ": expected ";
    line += want != nullptr ? "\"" + *want + "\"" : "<none>";
    line += ", got ";
    line += got != nullptr ? "\"" + *got + "\"" : "<none>";
    out.mismatches.push_back(std::move(line));
  }
  out.matches = out.mismatches.empty();
  return out;
}

}  // namespace mpdash
