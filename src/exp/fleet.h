#pragma once
// Fleet workload: N concurrent DASH sessions on one event loop contending
// on a single shared WiFi AP + cellular bottleneck pair.
//
// Each tenant runs the full per-session stack (player, adaptation,
// MP-DASH adapter, MPTCP connection, recovery layers) over shared-mode
// NetPath facades: packets are stamped with the tenant's flow id and the
// shared links arbitrate between flows with the configured queue
// discipline (FIFO or deficit-round-robin fair queueing). Tenants join
// staggered, stream to completion, and the fleet reports per-session
// SessionResults plus cross-session aggregates: QoE mean/p10, Jain
// fairness on steady-state bitrate, and cellular-byte totals.
//
// Determinism contract: everything mutable derives from FleetConfig::seed
// (per-tenant seeds via derive_stream_seed(seed, "session/<i>"), link loss
// streams via the "links" stream), tenants are constructed and scheduled
// in session order, and campaign results land in add-order slots — so the
// per-session CSV is bitwise identical for any --jobs count.
//
// Chaos composes: a fleet-level fault plan attaches to the *shared* links,
// so one AP blackout perturbs every tenant at once; the whole fleet runs
// under one watchdog and non-ok campaign runs emit self-contained fleet
// repro bundles (the fleet analogue of exp/repro.h).

#include <cstdint>
#include <string>
#include <vector>

#include "exp/chaos.h"
#include "exp/spec.h"

namespace mpdash {

struct FleetConfig {
  // Tenant count and the one seed everything derives from.
  int sessions = 4;
  std::uint64_t seed = 1;
  // Short synthetic video per tenant (chunk_count × 2 s).
  int chunk_count = 20;
  // Per-tenant session descriptions, cycled (tenant i gets
  // mix[i % mix.size()]); empty = every tenant runs SessionSpec{} defaults.
  std::vector<SessionSpec> mix;

  // --- shared bottleneck shape -----------------------------------------
  QueueDiscipline discipline = QueueDiscipline::kFairQueue;
  Bytes fq_quantum = 1500;
  // Aggregate capacities all tenants share (not per-tenant).
  double wifi_mbps = 20.0;
  double lte_mbps = 12.0;
  double wifi_up_mbps = 12.0;
  double lte_up_mbps = 8.0;
  Duration wifi_rtt = milliseconds(50);
  Duration lte_rtt = milliseconds(55);
  // Shared drop-tail buffer per link. Larger than the single-tenant
  // default: N flows share it (FQ sheds from the largest flow's queue).
  Bytes queue_capacity = 384 * 1000;

  // Tenant i starts its manifest fetch at i × join_stagger.
  Duration join_stagger = seconds(1.0);
  // Whole-fleet budget; tenants still streaming at the limit are flagged.
  Duration time_limit = seconds(1800.0);
  // One watchdog guards the whole fleet (per-tenant watchdog specs are
  // ignored — EventLoop has a single pre-event hook).
  WatchdogConfig watchdog{500'000'000, 900.0};
  // Fleet-level fault plan applied to the shared links (path ids
  // kWifiPathId / kCellularPathId) and every tenant's origin server.
  // Borrowed; null = no faults.
  const FaultPlan* faults = nullptr;

  friend bool operator==(const FleetConfig&, const FleetConfig&) = default;
};

// Stall penalty in the per-tenant linear QoE: steady-state Mbps minus
// kFleetStallPenalty per stalled second (the MPC-style linear QoE with the
// paper's top encoding, 2.4 Mbps, as a 24 s-stall-equivalent unit).
inline constexpr double kFleetStallPenalty = 0.1;

struct FleetSessionResult {
  int session = 0;
  std::uint64_t seed = 0;  // the tenant's derived seed
  Scheme scheme = Scheme::kMpDashDuration;
  std::string adaptation;
  double join_s = 0.0;
  // Full per-tenant metrics; wifi/cell bytes are this tenant's per-flow
  // wire-byte slices of the shared links, session_s is measured from join.
  SessionResult result;
  double qoe = 0.0;
  // Per-tenant invariant audit (chaos invariants + telemetry counters),
  // also hoisted into FleetResult::violations with a "session i:" prefix.
  std::vector<std::string> violations;
};

struct FleetResult {
  std::uint64_t seed = 0;
  RunOutcome outcome = RunOutcome::kOk;
  std::string hung_reason;  // kHung only (fleet watchdog tripped)
  double fleet_s = 0.0;     // sim time when the last tenant finished
  std::vector<FleetSessionResult> sessions;
  // Fleet-level violations: per-tenant audits (prefixed) + shared fault
  // quiescence.
  std::vector<std::string> violations;

  // --- cross-session aggregates ----------------------------------------
  int completed = 0;      // tenants that finished playback
  double qoe_mean = 0.0;
  double qoe_p10 = 0.0;   // nearest-rank 10th percentile
  // Jain fairness index (Σx)² / (n·Σx²) over per-tenant steady-state
  // bitrates; 1.0 = perfectly equal shares (and, by convention, n = 0 or
  // all-zero inputs).
  double jain_fairness = 1.0;
  Bytes wifi_bytes = 0;   // shared-link totals across all tenants
  Bytes cell_bytes = 0;
  double cell_fraction = 0.0;
  int faults_started = 0;
  int faults_skipped = 0;

  bool ok() const { return outcome == RunOutcome::kOk; }
  // Deterministic one-line digest (aggregates + violation count); the
  // per-session CSV carries the rest of the observable state.
  std::string fingerprint() const;
};

// Runs one fleet. `telemetry` (optional, borrowed) is wired to the event
// loop and the shared links; each tenant additionally instruments into its
// own private registry for the per-tenant counter audit.
FleetResult run_fleet(const FleetConfig& cfg, Telemetry* telemetry = nullptr);

// Column header for fleet_sessions_csv rows (includes trailing newline).
extern const char kFleetCsvHeader[];

// One CSV row per tenant, session order, deterministic formatting (no
// header). The CI fleet lane compares these files bitwise across --jobs.
std::string fleet_sessions_csv(const FleetResult& r);

// --- campaign ----------------------------------------------------------

struct FleetCampaignConfig {
  // Per-run template; `fleet.seed` is replaced by each run's derived seed
  // and `fleet.faults` by the per-run random plan when `chaos` is set.
  FleetConfig fleet;
  int seed_count = 10;
  std::uint64_t base_seed = 1;
  int jobs = 0;  // 0 → MPDASH_JOBS env or hardware cores
  // Seeded random fault plan per run, injected on the shared links.
  bool chaos = false;
  RandomPlanConfig plan;
  // When set, every non-ok run writes fleet_repro_<seed>.json here.
  std::string bundle_dir;
  std::FILE* progress = stderr;
};

struct FleetCampaignResult {
  std::vector<FleetResult> runs;  // seed order
  CampaignStats stats;

  OutcomeCounts outcome_counts() const;
  bool clean() const { return outcome_counts().bad() == 0; }
  // Concatenated per-run fingerprints: equal digests ⇔ identical campaigns.
  std::string digest() const;
  // Header + every run's per-session rows, seed order.
  std::string sessions_csv() const;
};

FleetCampaignResult run_fleet_campaign(const FleetCampaignConfig& cfg);

// --- fleet repro bundles -----------------------------------------------
// The fleet analogue of ReproBundle: the full FleetConfig (minus the
// borrowed plan pointer), the plan itself, and the outcome the campaign
// observed. Canonical serialization, same contract as exp/repro.h.

struct FleetBundle {
  int schema = 1;
  std::uint64_t seed = 0;
  FleetConfig config;  // config.faults is ignored; the plan is `plan`
  FaultPlan plan;
  RunOutcome outcome = RunOutcome::kViolation;
  std::string hung_reason;
  std::vector<std::string> expected_violations;
};

std::string fleet_bundle_to_json(const FleetBundle& b);
bool fleet_bundle_from_json(const std::string& text, FleetBundle* out,
                            std::string* error);
bool write_fleet_bundle(const FleetBundle& b, const std::string& path,
                        std::string* error);
bool load_fleet_bundle(const std::string& path, FleetBundle* out,
                       std::string* error);
std::string fleet_bundle_path(const std::string& dir, std::uint64_t seed);

struct FleetReplayResult {
  FleetResult run;
  bool matches = false;  // outcome + violation strings bitwise identical
  std::vector<std::string> mismatches;
};

// Replays the bundle's plan through run_fleet and compares outcome and
// violation strings against the bundle's expectations.
FleetReplayResult replay_fleet_bundle(const FleetBundle& b);

}  // namespace mpdash
