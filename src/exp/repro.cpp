#include "exp/repro.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "fault/fault_json.h"
#include "util/json.h"

namespace mpdash {

namespace {

std::string u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string repro_bundle_to_json(const ReproBundle& b) {
  // Canonical: fixed field order, every field always emitted, one
  // top-level field per line (the embedded spec and plan keep their own
  // layouts). Always writes the current schema.
  std::string out = "{\n";
  out += "\"schema\": 2,\n";
  out += "\"kind\": \"mpdash-repro\",\n";
  out += "\"seed\": " + u64(b.seed) + ",\n";
  out += "\"spec\": " + session_spec_to_json(b.spec) + ",\n";
  out += "\"chunk_count\": " + std::to_string(b.chunk_count) + ",\n";
  out += "\"plan\": " + fault_plan_to_json(b.plan) + ",\n";
  out += "\"outcome\": " + json_quote(to_string(b.outcome)) + ",\n";
  out += "\"hung_reason\": " + json_quote(b.hung_reason) + ",\n";
  out += "\"expected_violations\": [";
  for (std::size_t i = 0; i < b.expected_violations.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    out += json_quote(b.expected_violations[i]);
  }
  if (!b.expected_violations.empty()) out += "\n";
  out += "]\n}\n";
  return out;
}

bool repro_bundle_from_json(const std::string& text, ReproBundle* out,
                            std::string* error) {
  JsonValue root;
  if (!json_parse(text, &root, error)) return false;
  if (!root.is_object()) {
    if (error) *error = "bundle: top level is not an object";
    return false;
  }
  const JsonValue* kind = root.find("kind");
  if (kind == nullptr || !kind->is_string() || kind->str != "mpdash-repro") {
    if (error) *error = "bundle: missing or wrong \"kind\" marker";
    return false;
  }

  ReproBundle b;
  auto missing = [error](const char* field) {
    if (error) *error = std::string("bundle: missing field \"") + field + "\"";
    return false;
  };
  const JsonValue* v = root.find("schema");
  if (v == nullptr || !v->is_number()) return missing("schema");
  b.schema = static_cast<int>(v->as_int64(1));
  if (b.schema != 1 && b.schema != 2) {
    if (error) {
      *error = "bundle: unsupported schema " + std::to_string(b.schema);
    }
    return false;
  }
  v = root.find("seed");
  if (v == nullptr || !v->is_number()) return missing("seed");
  b.seed = v->as_uint64(0);
  if (b.schema >= 2) {
    v = root.find("spec");
    if (v == nullptr) return missing("spec");
    std::string spec_error;
    if (!session_spec_from_json_value(*v, &b.spec, &spec_error)) {
      if (error) *error = "bundle: " + spec_error;
      return false;
    }
  } else {
    // Schema-1 bundle: the session knobs were flat top-level fields; map
    // them into the spec (unlisted spec fields keep the chaos-era
    // defaults those bundles implied).
    v = root.find("scheme");
    if (v == nullptr || !v->is_string() ||
        !scheme_from_string(v->str, &b.spec.scheme)) {
      if (error) *error = "bundle: bad \"scheme\"";
      return false;
    }
    v = root.find("adaptation");
    if (v != nullptr && v->is_string()) b.spec.adaptation = v->str;
    v = root.find("mptcp_scheduler");
    if (v != nullptr && v->is_string()) b.spec.mptcp_scheduler = v->str;
    v = root.find("inflight");
    if (v != nullptr && v->is_number()) {
      b.spec.inflight = static_cast<int>(v->as_int64(1));
    }
    v = root.find("recovery");
    if (v != nullptr && v->is_bool()) b.spec.recovery = v->boolean;
    v = root.find("time_limit_ns");
    if (v == nullptr || !v->is_number()) return missing("time_limit_ns");
    b.spec.time_limit = Duration(v->as_int64(0));
    v = root.find("watchdog");
    if (v != nullptr && v->is_object()) {
      const JsonValue* w = v->find("max_sim_events");
      if (w != nullptr) b.spec.watchdog.max_sim_events = w->as_uint64(0);
      w = v->find("max_wall_s");
      if (w != nullptr) b.spec.watchdog.max_wall_s = w->as_double(0.0);
      w = v->find("poll_interval");
      if (w != nullptr) b.spec.watchdog.poll_interval = w->as_uint64(4096);
    }
  }
  v = root.find("chunk_count");
  if (v == nullptr || !v->is_number()) return missing("chunk_count");
  b.chunk_count = static_cast<int>(v->as_int64(0));
  v = root.find("plan");
  if (v == nullptr) return missing("plan");
  if (!fault_plan_from_json_value(*v, &b.plan, error)) return false;
  v = root.find("outcome");
  if (v == nullptr || !v->is_string() ||
      !outcome_from_string(v->str, &b.outcome)) {
    if (error) *error = "bundle: bad \"outcome\"";
    return false;
  }
  v = root.find("hung_reason");
  if (v != nullptr && v->is_string()) b.hung_reason = v->str;
  v = root.find("expected_violations");
  if (v != nullptr && v->is_array()) {
    for (const JsonValue& item : v->items) {
      if (!item.is_string()) {
        if (error) *error = "bundle: non-string violation entry";
        return false;
      }
      b.expected_violations.push_back(item.str);
    }
  }
  *out = std::move(b);
  return true;
}

bool write_repro_bundle(const ReproBundle& b, const std::string& path,
                        std::string* error) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
    // A pre-existing directory is fine; a real failure surfaces at fopen.
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string text = repro_bundle_to_json(b);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok && error) *error = "short write to " + path;
  return ok;
}

bool load_repro_bundle(const std::string& path, ReproBundle* out,
                       std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return repro_bundle_from_json(text, out, error);
}

std::string repro_bundle_path(const std::string& dir, std::uint64_t seed) {
  std::string path = dir;
  if (!path.empty() && path.back() != '/') path += '/';
  return path + "repro_" + u64(seed) + ".json";
}

ReproBundle make_repro_bundle(const ChaosConfig& cfg,
                              const ChaosRunResult& run,
                              const FaultPlan& plan) {
  ReproBundle b;
  b.seed = run.seed;
  b.spec = cfg.session;
  b.chunk_count = cfg.chunk_count;
  b.plan = plan;
  b.outcome = run.outcome;
  b.hung_reason = run.hung_reason;
  b.expected_violations = run.violations;
  return b;
}

ChaosConfig bundle_chaos_config(const ReproBundle& b) {
  ChaosConfig cfg;
  cfg.seed_count = 1;
  cfg.base_seed = b.seed;
  cfg.session = b.spec;
  cfg.chunk_count = b.chunk_count;
  cfg.progress = nullptr;
  // Never re-emit bundles from a replay.
  cfg.bundle_dir.clear();
  return cfg;
}

ReplayResult replay_repro_bundle(const ReproBundle& b) {
  const ChaosConfig cfg = bundle_chaos_config(b);
  Telemetry telemetry;
  ReplayResult out;
  out.run = run_chaos_single(cfg, chaos_video(cfg), b.seed, b.plan, telemetry);

  if (out.run.outcome != b.outcome) {
    out.mismatches.push_back(std::string("outcome: expected ") +
                             to_string(b.outcome) + ", got " +
                             to_string(out.run.outcome));
  }
  if (out.run.hung_reason != b.hung_reason) {
    out.mismatches.push_back("hung reason: expected \"" + b.hung_reason +
                             "\", got \"" + out.run.hung_reason + "\"");
  }
  const std::size_t n =
      std::max(b.expected_violations.size(), out.run.violations.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string* want =
        i < b.expected_violations.size() ? &b.expected_violations[i] : nullptr;
    const std::string* got =
        i < out.run.violations.size() ? &out.run.violations[i] : nullptr;
    if (want != nullptr && got != nullptr && *want == *got) continue;
    std::string line = "violation " + std::to_string(i) + ": expected ";
    line += want != nullptr ? "\"" + *want + "\"" : "<none>";
    line += ", got ";
    line += got != nullptr ? "\"" + *got + "\"" : "<none>";
    out.mismatches.push_back(std::move(line));
  }
  out.matches = out.mismatches.empty();
  return out;
}

}  // namespace mpdash
