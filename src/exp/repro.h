#pragma once
// Repro bundles: a self-contained JSON description of one failing chaos
// run — scenario/session knobs, the exact fault plan, the seed, and the
// violation strings the campaign observed. `mpdash_sim repro <bundle>`
// replays the bundle through run_chaos_single (the identical campaign
// code path) and verifies the same outcome and the same violation
// strings reproduce bitwise; the shrinker uses the same replay as its
// delta-debugging oracle.
//
// Serialization is canonical (fixed field order, integer-ns times,
// shortest-round-trip doubles), so serialize → parse → re-serialize is
// bitwise stable and minimized bundles can be compared as strings.

#include <cstdint>
#include <string>
#include <vector>

#include "exp/chaos.h"
#include "fault/fault.h"

namespace mpdash {

struct ReproBundle {
  // Format versions: schema 1 stored the session knobs as flat top-level
  // fields; schema 2 embeds the canonical SessionSpec object. The loader
  // accepts both (a schema-1 bundle maps its flat fields into `spec`);
  // the serializer always writes the current schema.
  int schema = 2;
  std::uint64_t seed = 0;
  // The session description the campaign resolved per seed — together
  // with chunk_count, enough to rebuild the exact configuration it ran.
  SessionSpec spec;
  int chunk_count = 30;
  FaultPlan plan;
  // What the originating run observed; replay verifies against these.
  RunOutcome outcome = RunOutcome::kViolation;
  std::string hung_reason;
  std::vector<std::string> expected_violations;
};

// Canonical serialization (see header comment).
std::string repro_bundle_to_json(const ReproBundle& b);
bool repro_bundle_from_json(const std::string& text, ReproBundle* out,
                            std::string* error);

// File I/O. write_ creates the parent directory on demand.
bool write_repro_bundle(const ReproBundle& b, const std::string& path,
                        std::string* error);
bool load_repro_bundle(const std::string& path, ReproBundle* out,
                       std::string* error);

// The per-seed bundle filename the campaign emits: <dir>/repro_<seed>.json.
std::string repro_bundle_path(const std::string& dir, std::uint64_t seed);

// Snapshot of a non-ok campaign run as a bundle.
ReproBundle make_repro_bundle(const ChaosConfig& cfg,
                              const ChaosRunResult& run,
                              const FaultPlan& plan);

// The ChaosConfig a bundle replays under (stored knobs restored, bundle
// emission off so a replay never re-emits).
ChaosConfig bundle_chaos_config(const ReproBundle& b);

struct ReplayResult {
  ChaosRunResult run;
  bool matches = false;  // outcome + violation strings bitwise identical
  std::vector<std::string> mismatches;  // human-readable diff when not
};

// Replays the bundle's plan through run_chaos_single on a fresh Telemetry
// and compares against the bundle's expectations.
ReplayResult replay_repro_bundle(const ReproBundle& b);

}  // namespace mpdash
