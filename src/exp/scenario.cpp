#include "exp/scenario.h"

namespace mpdash {

ScenarioConfig constant_scenario(DataRate wifi_mbps, DataRate lte_mbps) {
  ScenarioConfig cfg;
  cfg.wifi_down = BandwidthTrace::constant(wifi_mbps);
  cfg.lte_down = BandwidthTrace::constant(lte_mbps);
  return cfg;
}

Scenario::Scenario(ScenarioConfig config) : config_(std::move(config)) {
  {
    PathEndpointsConfig wifi;
    wifi.description.id = kWifiPathId;
    wifi.description.name = "wifi";
    wifi.description.kind = InterfaceKind::kWifi;
    wifi.description.metered = false;
    wifi.downlink_rate = config_.wifi_down;
    wifi.uplink_rate = BandwidthTrace::constant(config_.wifi_up);
    wifi.one_way_delay = config_.wifi_rtt / 2;
    wifi.queue_capacity = config_.queue_capacity;
    wifi.random_loss = config_.random_loss;
    wifi.downlink_ge_loss = config_.wifi_ge_loss;
    wifi.loss_seed = derive_stream_seed(config_.seed, "wifi");
    std::vector<PathDescription> descs{wifi.description};
    config_.policy.apply(descs);
    wifi.description = descs.front();
    wifi_ = std::make_unique<NetPath>(loop_, std::move(wifi));
  }
  if (!config_.wifi_only) {
    PathEndpointsConfig lte;
    lte.description.id = kCellularPathId;
    lte.description.name = "lte";
    lte.description.kind = InterfaceKind::kCellular;
    lte.description.metered = true;
    lte.downlink_rate = config_.lte_down;
    lte.uplink_rate = BandwidthTrace::constant(config_.lte_up);
    lte.one_way_delay = config_.lte_rtt / 2;
    lte.queue_capacity = config_.queue_capacity;
    lte.random_loss = config_.random_loss;
    lte.downlink_ge_loss = config_.lte_ge_loss;
    lte.loss_seed = derive_stream_seed(config_.seed, "lte");
    lte.downlink_shaper = config_.lte_throttle;
    std::vector<PathDescription> descs{lte.description};
    config_.policy.apply(descs);
    lte.description = descs.front();
    lte_ = std::make_unique<NetPath>(loop_, std::move(lte));
  }
}

std::vector<NetPath*> Scenario::paths() {
  std::vector<NetPath*> out{wifi_.get()};
  if (lte_) out.push_back(lte_.get());
  return out;
}

void Scenario::set_telemetry(Telemetry* telemetry) {
  loop_.set_telemetry(telemetry);
  wifi_->set_telemetry(telemetry);
  if (lte_) lte_->set_telemetry(telemetry);
}

Bytes Scenario::wifi_bytes() const {
  return wifi_->downlink().delivered_bytes() +
         wifi_->uplink().delivered_bytes();
}

Bytes Scenario::cellular_bytes() const {
  if (!lte_) return 0;
  return lte_->downlink().delivered_bytes() + lte_->uplink().delivered_bytes();
}

}  // namespace mpdash
