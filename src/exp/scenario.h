#pragma once
// Network scenario construction: WiFi + LTE path pair (or WiFi alone)
// with configurable bandwidth traces, RTTs, and the optional cellular
// throttle of Table 4.

#include <memory>
#include <optional>
#include <vector>

#include "core/policy.h"
#include "link/path.h"
#include "sim/event_loop.h"

namespace mpdash {

inline constexpr int kWifiPathId = 0;
inline constexpr int kCellularPathId = 1;

struct ScenarioConfig {
  BandwidthTrace wifi_down;
  BandwidthTrace lte_down;
  // Uplinks default to generous fixed rates (requests + acks only).
  DataRate wifi_up = DataRate::mbps(10.0);
  DataRate lte_up = DataRate::mbps(8.0);
  Duration wifi_rtt = milliseconds(50);   // paper's Dummynet setting
  Duration lte_rtt = milliseconds(55);    // commercial LTE, 50-60 ms
  Bytes queue_capacity = 192 * 1000;
  double random_loss = 0.0;  // extra i.i.d. loss on every link
  // Bursty downlink loss (Gilbert–Elliott); per interface so a noisy WiFi
  // AP can coexist with a clean LTE carrier.
  std::optional<GilbertElliottConfig> wifi_ge_loss;
  std::optional<GilbertElliottConfig> lte_ge_loss;
  // Scenario seed. Each link draws loss from its own stream derived as
  // derive_stream_seed(seed, "wifi"/"lte" + ".down"/".up"), so loss on one
  // link never perturbs another's pattern.
  std::uint64_t seed = 1;
  std::optional<ShaperConfig> lte_throttle;  // Table 4 strawman
  PathPolicy policy = prefer_wifi_policy();
  bool wifi_only = false;  // single-path baseline (Figure 11 bottom)
};

// Convenience constructors for common setups.
ScenarioConfig constant_scenario(DataRate wifi_mbps, DataRate lte_mbps);

// Owns the event loop and the paths for one experiment run.
class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  EventLoop& loop() { return loop_; }
  std::vector<NetPath*> paths();
  NetPath& wifi() { return *wifi_; }
  NetPath* cellular() { return lte_ ? lte_.get() : nullptr; }
  const ScenarioConfig& config() const { return config_; }

  // Wires telemetry into the event loop and every link/shaper. nullptr
  // detaches.
  void set_telemetry(Telemetry* telemetry);

  // Bytes that crossed each interface (both directions, delivered).
  Bytes wifi_bytes() const;
  Bytes cellular_bytes() const;

 private:
  ScenarioConfig config_;
  EventLoop loop_;
  std::unique_ptr<NetPath> wifi_;
  std::unique_ptr<NetPath> lte_;
};

}  // namespace mpdash
