#include "exp/session.h"

#include <algorithm>
#include <stdexcept>

#include "adapt/bba.h"
#include "adapt/festive.h"
#include "adapt/gpac.h"
#include "adapt/mpc.h"
#include "adapter/mpdash_adapter.h"
#include "core/mpdash_socket.h"
#include "dash/server.h"
#include "fault/injector.h"
#include "http/client.h"
#include "mptcp/connection.h"
#include "sim/snapshotter.h"

namespace mpdash {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kWifiOnly: return "wifi-only";
    case Scheme::kBaseline: return "baseline";
    case Scheme::kMpDashDuration: return "mpdash-duration";
    case Scheme::kMpDashRate: return "mpdash-rate";
  }
  return "unknown";
}

bool scheme_uses_mpdash(Scheme s) {
  return s == Scheme::kMpDashDuration || s == Scheme::kMpDashRate;
}

std::unique_ptr<RateAdaptation> make_adaptation(const std::string& name) {
  if (name == "gpac") return std::make_unique<GpacAdaptation>();
  if (name == "festive") return std::make_unique<FestiveAdaptation>();
  if (name == "bba") return std::make_unique<BbaAdaptation>();
  if (name == "bba-c") {
    BbaConfig cfg;
    cfg.cellular_friendly = true;
    return std::make_unique<BbaAdaptation>(cfg);
  }
  if (name == "mpc") return std::make_unique<MpcAdaptation>();
  throw std::invalid_argument("unknown adaptation: " + name);
}

namespace {

// Samples per-interface delivered bytes every 100 ms for the energy model;
// stops itself once `done` flips.
class EnergyProbe {
 public:
  // Events are timestamped relative to `base` (construction time) so the
  // energy model's horizon starts at the measured transfer, not at
  // simulation time zero.
  EnergyProbe(Scenario& scenario, const bool& done)
      : scenario_(scenario), done_(done), base_(scenario.loop().now()) {
    prev_ = read();
    arm();
  }

  std::vector<ByteEvent> wifi_events;
  std::vector<ByteEvent> lte_events;

 private:
  struct Counters {
    Bytes wifi_down = 0, wifi_up = 0, lte_down = 0, lte_up = 0;
  };

  Counters read() const {
    Counters c;
    c.wifi_down = scenario_.wifi().downlink().delivered_bytes();
    c.wifi_up = scenario_.wifi().uplink().delivered_bytes();
    if (NetPath* lte = scenario_.cellular()) {
      c.lte_down = lte->downlink().delivered_bytes();
      c.lte_up = lte->uplink().delivered_bytes();
    }
    return c;
  }

  void arm() {
    scenario_.loop().schedule_in(milliseconds(100), [this] {
      const TimePoint now = scenario_.loop().now() - base_;
      const Counters cur = read();
      if (cur.wifi_down > prev_.wifi_down) {
        wifi_events.push_back({now, cur.wifi_down - prev_.wifi_down, true});
      }
      if (cur.wifi_up > prev_.wifi_up) {
        wifi_events.push_back({now, cur.wifi_up - prev_.wifi_up, false});
      }
      if (cur.lte_down > prev_.lte_down) {
        lte_events.push_back({now, cur.lte_down - prev_.lte_down, true});
      }
      if (cur.lte_up > prev_.lte_up) {
        lte_events.push_back({now, cur.lte_up - prev_.lte_up, false});
      }
      prev_ = cur;
      if (!done_) arm();
    });
  }

  Scenario& scenario_;
  const bool& done_;
  TimePoint base_;
  Counters prev_;
};

}  // namespace

StreamingSession::StreamingSession(EventLoop& loop,
                                   std::vector<NetPath*> paths,
                                   const Video& video,
                                   const SessionConfig& config,
                                   const SessionEnv& env)
    : loop_(loop), config_(config), fault_paths_(paths) {
  if (config_.scheme == Scheme::kWifiOnly && paths.size() > 1) {
    paths.resize(1);  // single-path TCP over WiFi
  }
  conn_ = std::make_unique<MptcpConnection>(loop, paths);
  conn_->server().set_scheduler(make_scheduler(config_.mptcp_scheduler));
  Telemetry* telemetry = env.telemetry;
  if (telemetry) conn_->set_telemetry(telemetry);

  if (config_.mptcp_recovery.max_consecutive_rtos > 0) {
    conn_->server().set_failure_policy(config_.mptcp_recovery);
    conn_->client().set_failure_policy(config_.mptcp_recovery);
  }

  server_ = std::make_unique<DashServer>(conn_->server(), video);
  HttpClientConfig hcfg = config_.http_recovery;
  // A prefetching player needs the transport to pipeline as deep as the
  // player's in-flight window; never shrink an explicit wider setting.
  hcfg.max_pipeline = std::max(hcfg.max_pipeline,
                               config_.player.max_inflight_chunks);
  client_ = std::make_unique<HttpClient>(loop, conn_->client(), hcfg);
  if (telemetry) client_->set_telemetry(telemetry);

  if (env.faults && !env.faults->empty()) {
    injector_ = std::make_unique<FaultInjector>(loop, *env.faults);
    // Faults attach to every path of the scenario — including the one a
    // wifi-only connection leaves unused (the plan may still target it).
    for (NetPath* p : fault_paths_) injector_->attach_path(p);
    HttpServer& hs = server_->http();
    FaultInjector::ServerHooks hooks;
    hooks.set_stalled = [&hs](bool on) { hs.set_stalled(on); };
    hooks.set_dropping = [&hs](bool on) { hs.set_dropping(on); };
    injector_->set_server_hooks(std::move(hooks));
    if (telemetry) injector_->set_telemetry(telemetry);
    injector_->arm();
  }

  adaptation_ = make_adaptation(config_.adaptation);

  if (scheme_uses_mpdash(config_.scheme)) {
    MpDashSocketConfig scfg;
    scfg.scheduler.alpha = config_.alpha;
    scfg.scheduler.enable_debounce_ticks = config_.debounce_ticks;
    socket_ = std::make_unique<MpDashSocket>(loop, *conn_, scfg);
    if (telemetry) socket_->set_telemetry(telemetry);
    AdapterConfig acfg;
    acfg.policy = config_.scheme == Scheme::kMpDashDuration
                      ? DeadlinePolicy::kDurationBased
                      : DeadlinePolicy::kRateBased;
    adapter_ = std::make_unique<MpDashAdapter>(*socket_, *adaptation_, acfg);
  }

  player_ = std::make_unique<DashPlayer>(loop, *client_, *adaptation_,
                                         config_.player, adapter_.get());
  if (telemetry) player_->set_telemetry(telemetry);
}

StreamingSession::~StreamingSession() = default;

void StreamingSession::start() { player_->start(); }

void StreamingSession::set_done_callback(std::function<void()> cb) {
  player_->set_done_callback(std::move(cb));
}

bool StreamingSession::done() const { return player_->done(); }

Bytes StreamingSession::path_wire_bytes(int path_id) const {
  for (const NetPath* p : fault_paths_) {
    if (p->id() == path_id) return p->delivered_wire_bytes();
  }
  return 0;
}

SessionResult StreamingSession::collect() const {
  const DashPlayer& player = *player_;
  SessionResult res;
  res.completed = player.done();
  res.session_s = to_seconds(loop_.now());
  if (player.done() && !player.events().empty()) {
    res.session_s = to_seconds(player.events().back().at);
  }

  res.stalls = player.stall_count();
  res.stall_s = to_seconds(player.total_stall_time());
  res.switches = player.quality_switches();
  res.chunk_log = player.chunks();
  res.events = player.events();
  res.chunks = static_cast<int>(res.chunk_log.size());
  if (socket_) res.deadline_misses = socket_->deadline_misses();
  if (adapter_) res.chunks_engaged = adapter_->chunks_engaged();

  res.subflow_failures = static_cast<int>(conn_->server().subflow_failures() +
                                          conn_->client().subflow_failures());
  res.subflow_revivals = static_cast<int>(conn_->server().subflow_revivals() +
                                          conn_->client().subflow_revivals());
  res.reinjected_packets =
      static_cast<int>(conn_->server().reinjected_packets() +
                       conn_->client().reinjected_packets());
  res.reinject_backlog =
      conn_->server().reinject_backlog() + conn_->client().reinject_backlog();
  res.http_timeouts = static_cast<int>(client_->timeouts());
  res.http_retries = static_cast<int>(client_->retries_sent());
  res.chunk_retries = player.chunk_retries();
  res.chunks_abandoned = player.chunks_abandoned();
  res.manifest_failed = player.manifest_failed();
  if (injector_) {
    res.faults_started = injector_->faults_started();
    res.faults_ended = injector_->faults_ended();
    res.faults_skipped = injector_->faults_skipped();
    res.faults_quiescent = injector_->quiescent();
  }
  res.server_data_seq_high = conn_->server().data_seq_high();
  res.client_bytes_in_order = conn_->client().bytes_received_in_order();
  res.client_data_seq_high = conn_->client().data_seq_high();
  res.server_bytes_in_order = conn_->server().bytes_received_in_order();

  if (!res.chunk_log.empty() && player.video()) {
    const Video& v = *player.video();
    double sum_all = 0.0, sum_steady = 0.0, sum_level = 0.0;
    const std::size_t skip = static_cast<std::size_t>(
        config_.steady_skip_fraction *
        static_cast<double>(res.chunk_log.size()));
    std::size_t steady_n = 0;
    for (std::size_t i = 0; i < res.chunk_log.size(); ++i) {
      const double mbps =
          v.level(res.chunk_log[i].level).avg_bitrate.as_mbps();
      sum_all += mbps;
      sum_level += res.chunk_log[i].level;
      if (i >= skip) {
        sum_steady += mbps;
        ++steady_n;
      }
    }
    res.avg_bitrate_mbps = sum_all / static_cast<double>(res.chunk_log.size());
    res.avg_level = sum_level / static_cast<double>(res.chunk_log.size());
    res.steady_avg_bitrate_mbps =
        steady_n > 0 ? sum_steady / static_cast<double>(steady_n) : 0.0;
  }
  return res;
}

SessionResult run_streaming_session(Scenario& scenario, const Video& video,
                                    const SessionConfig& config,
                                    const SessionEnv& env) {
  EventLoop& loop = scenario.loop();
  Telemetry local_telemetry;
  SessionEnv e = env;
  if (!e.telemetry && (config.record_trace || e.metrics)) {
    e.telemetry = &local_telemetry;
  }
  TraceCollector collector;
  if (e.telemetry) {
    if (config.record_trace) {
      // The analyzer reconstructs HTTP framing from delivered payload.
      e.telemetry->set_capture_payload(true);
      e.telemetry->add_sink(&collector);
    }
    scenario.set_telemetry(e.telemetry);
  }

  StreamingSession session(loop, scenario.paths(), video, config, e);

  bool done = false;
  session.set_done_callback([&done] { done = true; });
  EnergyProbe probe(scenario, done);
  std::unique_ptr<MetricsSnapshotter> snapshotter;
  if (e.telemetry && e.metrics) {
    snapshotter = std::make_unique<MetricsSnapshotter>(
        loop, *e.telemetry, *e.metrics, config.metrics_interval, done);
  }

  // Armed last so budget accounting starts at the run boundary; the RAII
  // guard clears the loop's hook on every exit path, including the
  // WatchdogTripped unwind itself.
  RunWatchdog watchdog(loop, config.watchdog);

  session.start();
  loop.run_until(TimePoint(config.time_limit));

  SessionResult res = session.collect();
  res.wifi_bytes = scenario.wifi_bytes();
  res.cell_bytes = scenario.cellular_bytes();
  const Bytes total = res.wifi_bytes + res.cell_bytes;
  res.cell_fraction =
      total > 0 ? static_cast<double>(res.cell_bytes) /
                      static_cast<double>(total)
                : 0.0;
  if (config.record_trace && e.telemetry) {
    e.telemetry->remove_sink(&collector);
    res.trace = collector.take();
  }
  // The scenario (and its event loop) outlives this run; never leave it
  // pointing at the internal context.
  if (e.telemetry == &local_telemetry) scenario.set_telemetry(nullptr);

  const Duration horizon = seconds(res.session_s);
  const SessionEnergy energy = price_session(
      config.device, probe.wifi_events, probe.lte_events, horizon);
  res.wifi_energy_j = energy.wifi.total_j();
  res.lte_energy_j = energy.lte.total_j();
  return res;
}

DownloadResult run_download_session(Scenario& scenario,
                                    const DownloadConfig& config) {
  EventLoop& loop = scenario.loop();
  MptcpConnection conn(loop, scenario.paths());
  conn.server().set_scheduler(make_scheduler(config.mptcp_scheduler));
  if (config.telemetry) {
    scenario.set_telemetry(config.telemetry);
    conn.set_telemetry(config.telemetry);
  }

  // A bare file server: the target selects the virtual body size.
  HttpServer server(conn.server(), [&config](const HttpRequest& req) {
    HttpResponse resp;
    resp.headers.push_back({"Content-Type", "application/octet-stream"});
    resp.body_len = req.target == "/warmup" ? config.warmup_size : config.size;
    return resp;
  });
  HttpClient client(loop, conn.client());
  if (config.telemetry) client.set_telemetry(config.telemetry);

  std::unique_ptr<MpDashSocket> socket;
  if (config.use_mpdash) {
    MpDashSocketConfig scfg;
    scfg.scheduler.alpha = config.alpha;
    socket = std::make_unique<MpDashSocket>(loop, conn, scfg);
    if (config.telemetry) socket->set_telemetry(config.telemetry);
  }

  if (config.warmup) {
    bool warmed = false;
    client.get("/warmup", [&warmed](const HttpTransfer&) { warmed = true; });
    loop.run_until(TimePoint(seconds(30.0)));
    if (!warmed) return DownloadResult{};  // network unusable
  }
  const TimePoint start = loop.now();
  const Bytes wifi_before = scenario.wifi_bytes();
  const Bytes cell_before = scenario.cellular_bytes();

  bool done = false;
  DownloadResult res;
  EnergyProbe probe(scenario, done);

  if (socket) socket->enable(config.size, config.deadline);
  client.get("/file", [&](const HttpTransfer& transfer) {
    done = true;
    res.completed = true;
    res.finish_time = Duration(transfer.completed - start);
  });
  loop.run_until(start + config.time_limit);

  res.deadline_missed = res.completed && res.finish_time > config.deadline;
  res.wifi_bytes = scenario.wifi_bytes() - wifi_before;
  res.cell_bytes = scenario.cellular_bytes() - cell_before;

  const Duration horizon =
      res.completed ? res.finish_time + seconds(1.0) : config.time_limit;
  const SessionEnergy energy = price_session(
      config.device, probe.wifi_events, probe.lte_events, horizon);
  res.wifi_energy_j = energy.wifi.total_j();
  res.lte_energy_j = energy.lte.total_j();
  const SessionEnergy transfer_only =
      price_session(config.device, probe.wifi_events, probe.lte_events,
                    res.completed ? res.finish_time : config.time_limit);
  res.transfer_energy_j = transfer_only.total_j();
  return res;
}

}  // namespace mpdash
