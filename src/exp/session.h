#pragma once
// End-to-end experiment runners: a full DASH streaming session (the §7.3
// evaluations) and a single deadline-aware file download (the §7.2
// scheduler-only evaluations), each returning the metrics the paper
// reports.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adapt/adaptation.h"
#include "dash/player.h"
#include "energy/accounting.h"
#include "exp/scenario.h"
#include "runner/watchdog.h"
#include "telemetry/telemetry.h"

namespace mpdash {

struct FaultPlan;
class MptcpConnection;
class DashServer;
class HttpClient;
class FaultInjector;
class MpDashSocket;
class MpDashAdapter;

enum class Scheme : std::uint8_t {
  kWifiOnly,         // single path (no MPTCP)
  kBaseline,         // vanilla MPTCP
  kMpDashDuration,   // MP-DASH, duration-based deadline
  kMpDashRate,       // MP-DASH, rate-based deadline
};

const char* to_string(Scheme s);
bool scheme_uses_mpdash(Scheme s);

// Factory for the evaluated DASH algorithms: "gpac", "festive", "bba",
// "bba-c", "mpc".
std::unique_ptr<RateAdaptation> make_adaptation(const std::string& name);

struct SessionConfig {
  Scheme scheme = Scheme::kBaseline;
  std::string adaptation = "festive";
  std::string mptcp_scheduler = "minrtt";
  double alpha = 1.0;
  // Deadline-scheduler enable debounce (see DeadlineSchedulerConfig).
  int debounce_ticks = 2;
  PlayerConfig player;
  Duration time_limit = seconds(1800.0);
  // Captures the full telemetry trace (with payload, for the analyzer)
  // into SessionResult::trace.
  bool record_trace = false;
  // Snapshot cadence when SessionEnv::metrics is set.
  Duration metrics_interval = seconds(1.0);
  DeviceEnergyProfile device = galaxy_note();
  // The paper reports statistics over the last 80% of chunks (steady
  // state).
  double steady_skip_fraction = 0.2;

  // --- robustness (all default off: seed-identical behavior) -----------
  // Transport recovery: subflow-failure detection + reinjection on both
  // endpoints (inert while max_consecutive_rtos == 0).
  MptcpFailureConfig mptcp_recovery;
  // Application recovery: HTTP request timeout/retry layer (inert while
  // request_timeout == 0).
  HttpClientConfig http_recovery;
  // Run watchdog budgets (sim events / wall clock); inert while disabled.
  // A tripped budget aborts the run by throwing WatchdogTripped out of
  // run_streaming_session — campaign callers map it to a `hung` outcome.
  WatchdogConfig watchdog;
};

// The borrowed externals a session runs against, grouped so ownership is
// explicit at the signature level: everything here outlives the session
// and is never owned by it. SessionConfig stays a pure value.
struct SessionEnv {
  // Telemetry context (extra sinks, shared registry). When null and
  // record_trace/metrics is requested, run_streaming_session uses an
  // internal context for the duration of the run.
  Telemetry* telemetry = nullptr;
  // When set, registry snapshots are appended here every
  // SessionConfig::metrics_interval.
  MetricsTimeline* metrics = nullptr;
  // Fault plan injected during the run; null = no faults.
  const FaultPlan* faults = nullptr;
};

struct SessionResult {
  bool completed = false;
  double session_s = 0.0;

  Bytes wifi_bytes = 0;
  Bytes cell_bytes = 0;
  double cell_fraction = 0.0;  // of total delivered wire bytes

  int stalls = 0;
  double stall_s = 0.0;
  int switches = 0;
  int chunks = 0;
  double avg_bitrate_mbps = 0.0;         // all chunks
  double steady_avg_bitrate_mbps = 0.0;  // last 80 %
  double avg_level = 0.0;
  int deadline_misses = 0;
  int chunks_engaged = 0;   // MP-DASH activated for these

  double wifi_energy_j = 0.0;
  double lte_energy_j = 0.0;
  double energy_j() const { return wifi_energy_j + lte_energy_j; }

  std::vector<ChunkRecord> chunk_log;
  std::vector<PlayerEvent> events;
  std::vector<TraceRecord> trace;  // when record_trace

  // --- robustness / chaos accounting -----------------------------------
  int subflow_failures = 0;
  int subflow_revivals = 0;
  int reinjected_packets = 0;
  std::uint64_t reinject_backlog = 0;  // nonzero = data stranded at exit
  int http_timeouts = 0;
  int http_retries = 0;
  int chunk_retries = 0;
  int chunks_abandoned = 0;
  bool manifest_failed = false;
  int faults_started = 0;
  int faults_ended = 0;
  int faults_skipped = 0;
  bool faults_quiescent = true;  // every fault window opened and closed
  // Byte accounting per direction: one past the highest connection-level
  // byte the sender scheduled vs. what the receiver consumed in order.
  std::uint64_t server_data_seq_high = 0;
  std::uint64_t client_bytes_in_order = 0;
  std::uint64_t client_data_seq_high = 0;
  std::uint64_t server_bytes_in_order = 0;
};

// One session's full stack — MPTCP connection, DASH server, HTTP client,
// optional fault injector, adaptation, MP-DASH socket/adapter, player —
// constructed over borrowed paths on a borrowed loop. Extracted from
// run_streaming_session so a fleet can host N of these on one EventLoop
// (each over per-session shared-link facades). Construction order is part
// of the determinism contract: event ids derive from scheduling order, so
// the stack always wires up in the same sequence.
//
// Scenario-level concerns (link telemetry, energy probe, metrics
// snapshotter, watchdog, byte/energy accounting) stay with the caller.
class StreamingSession {
 public:
  StreamingSession(EventLoop& loop, std::vector<NetPath*> paths,
                   const Video& video, const SessionConfig& config,
                   const SessionEnv& env);
  ~StreamingSession();

  StreamingSession(const StreamingSession&) = delete;
  StreamingSession& operator=(const StreamingSession&) = delete;

  // Kicks off the manifest fetch; callable immediately or from a scheduled
  // join event (fleet staggering).
  void start();
  void set_done_callback(std::function<void()> cb);
  bool done() const;
  // For fleet-level fault hooks (server stall/drop toggles).
  DashServer& dash_server() { return *server_; }
  // Per-tenant wire bytes on the given path (per-flow slices on shared
  // links, whole-link counters on owned ones).
  Bytes path_wire_bytes(int path_id) const;
  // Everything session-local: player/transport/robustness counters and the
  // steady-state bitrate stats. Byte/energy/trace fields are the caller's.
  SessionResult collect() const;

 private:
  EventLoop& loop_;
  SessionConfig config_;
  std::vector<NetPath*> fault_paths_;
  std::unique_ptr<MptcpConnection> conn_;
  std::unique_ptr<DashServer> server_;
  std::unique_ptr<HttpClient> client_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<RateAdaptation> adaptation_;
  std::unique_ptr<MpDashSocket> socket_;
  std::unique_ptr<MpDashAdapter> adapter_;
  std::unique_ptr<DashPlayer> player_;
};

SessionResult run_streaming_session(Scenario& scenario, const Video& video,
                                    const SessionConfig& config,
                                    const SessionEnv& env = {});

// --- §7.2: scheduler-only single-file download -------------------------
struct DownloadConfig {
  Bytes size = megabytes(5);
  Duration deadline = seconds(10.0);
  bool use_mpdash = true;
  std::string mptcp_scheduler = "minrtt";
  double alpha = 1.0;
  Duration time_limit = seconds(600.0);
  // Externally-owned telemetry context, wired for the duration of the run.
  Telemetry* telemetry = nullptr;
  DeviceEnergyProfile device = galaxy_note();
  // Runs a small unmeasured transfer first so congestion windows and
  // throughput estimates are warm — the paper averages 10 consecutive
  // runs on a live connection, so its measured downloads never start
  // cold. Byte and energy accounting cover only the measured transfer.
  bool warmup = false;
  Bytes warmup_size = kilobytes(500);
};

struct DownloadResult {
  bool completed = false;
  Duration finish_time = kDurationZero;
  bool deadline_missed = false;
  Bytes wifi_bytes = 0;
  Bytes cell_bytes = 0;
  double wifi_energy_j = 0.0;
  double lte_energy_j = 0.0;
  double energy_j() const { return wifi_energy_j + lte_energy_j; }
  // Energy accounted only over the transfer itself (horizon = finish
  // time, post-transfer radio tails excluded) — the windowing the paper's
  // small per-download Joule figures imply.
  double transfer_energy_j = 0.0;
};

DownloadResult run_download_session(Scenario& scenario,
                                    const DownloadConfig& config);

}  // namespace mpdash
