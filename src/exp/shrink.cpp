#include "exp/shrink.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "runner/campaign.h"

namespace mpdash {

std::string violation_kind(const std::string& violation) {
  struct KindRule {
    const char* needle;
    const char* key;
  };
  // Prefix rules: the stable head of each invariant-failure message (the
  // tail carries run-specific counts the shrinker must not pin).
  static constexpr KindRule kPrefix[] = {
      {"session hung", "session hung"},
      {"manifest failed", "manifest failed"},
      {"chunk accounting", "chunk accounting"},
      {"byte accounting server->client", "byte accounting server->client"},
      {"byte accounting client->server", "byte accounting client->server"},
      {"reinjection backlog", "reinjection backlog"},
      {"fault windows still open", "fault windows still open"},
      {"counter ", "counter mismatch"},
      {"subflow-failure counters", "counter mismatch"},
      {"reinjection counters", "counter mismatch"},
      {"run threw", "run threw"},
      {"retry budget exceeded", "retry budget exceeded"},
  };
  // Substring rules: messages that lead with a run-specific value.
  static constexpr KindRule kSubstr[] = {
      {"had no attachable target", "fault target missing"},
      {"reopened after close", "span reopened"},
      {"delivered to dead span", "dead span response"},
  };
  for (const KindRule& r : kPrefix) {
    if (violation.rfind(r.needle, 0) == 0) return r.key;
  }
  for (const KindRule& r : kSubstr) {
    if (violation.find(r.needle) != std::string::npos) return r.key;
  }
  return violation;
}

std::string violation_signature(RunOutcome outcome,
                                const std::vector<std::string>& violations,
                                bool strict) {
  std::set<std::string> keys;
  for (const std::string& v : violations) {
    keys.insert(strict ? v : violation_kind(v));
  }
  std::string out = to_string(outcome);
  for (const std::string& k : keys) {
    out += '|';
    out += k;
  }
  return out;
}

namespace {

// Replays one candidate through the campaign code path; any non-watchdog
// exception becomes the same kCrashed shape the campaign reports.
ChaosRunResult probe(const ReproBundle& bundle, const FaultPlan& plan,
                     Duration time_limit, Telemetry& telemetry) {
  ChaosConfig cfg = bundle_chaos_config(bundle);
  cfg.session.time_limit = time_limit;
  try {
    return run_chaos_single(cfg, chaos_video(cfg), bundle.seed, plan,
                            telemetry);
  } catch (const std::exception& e) {
    ChaosRunResult r;
    r.seed = bundle.seed;
    r.outcome = RunOutcome::kCrashed;
    r.violations.push_back(std::string("run threw: ") + e.what());
    return r;
  }
}

// The delta-debugging oracle: candidate batches replay through the
// parallel campaign runner; acceptance is always the first interesting
// candidate in batch order (add-order result slots), so shrinking is
// deterministic for any jobs count.
struct Oracle {
  const ReproBundle& bundle;
  const ShrinkConfig& cfg;
  std::string target;
  int sim_runs = 0;

  bool interesting(const ChaosRunResult& r) const {
    return violation_signature(r.outcome, r.violations, cfg.strict) == target;
  }

  bool check(const FaultPlan& plan, Duration time_limit) {
    ++sim_runs;
    Telemetry telemetry;
    return interesting(probe(bundle, plan, time_limit, telemetry));
  }

  // Index of the first interesting candidate, or -1.
  int first_interesting(const std::vector<FaultPlan>& plans,
                        Duration time_limit) {
    Campaign<char> campaign("shrink", bundle.seed);
    for (std::size_t i = 0; i < plans.size(); ++i) {
      const FaultPlan& plan = plans[i];
      campaign.add("cand/" + std::to_string(i),
                   [this, &plan, time_limit](RunContext& ctx) {
                     return interesting(probe(bundle, plan, time_limit,
                                              ctx.telemetry))
                                ? char(1)
                                : char(0);
                   });
    }
    CampaignOptions opts;
    opts.jobs = cfg.jobs;
    opts.progress = nullptr;
    CampaignResult<char> res = campaign.run(opts);
    sim_runs += static_cast<int>(plans.size());
    for (std::size_t i = 0; i < res.results.size(); ++i) {
      if (res.results[i] == 1) return static_cast<int>(i);
    }
    return -1;
  }
};

FaultPlan subset_plan(const FaultPlan& full, const std::vector<int>& idx) {
  FaultPlan p;
  p.events.reserve(idx.size());
  for (int i : idx) p.events.push_back(full.events[i]);
  return p;
}

std::vector<std::vector<int>> split_chunks(const std::vector<int>& v, int n) {
  std::vector<std::vector<int>> out;
  const int sz = static_cast<int>(v.size());
  for (int i = 0; i < n; ++i) {
    const int begin = i * sz / n;
    const int end = (i + 1) * sz / n;
    if (end > begin) {
      out.emplace_back(v.begin() + begin, v.begin() + end);
    }
  }
  return out;
}

// One step of a fault magnitude toward benign; false when there is no
// meaningful smaller value for this kind.
bool benign_step(FaultEvent* e) {
  switch (e->kind) {
    case FaultKind::kRttSpike:  // extra delay in ms → halve
      if (e->value <= 1.0) return false;
      e->value /= 2.0;
      return true;
    case FaultKind::kFlap:  // down-phase seconds → halve
      if (e->value <= 0.2) return false;
      e->value /= 2.0;
      return true;
    case FaultKind::kRateCollapse: {  // rate scale → toward 1.0 (no-op)
      const double next = std::min(1.0, e->value * 2.0);
      if (next == e->value) return false;
      e->value = next;
      return true;
    }
    default:  // blackout/loss-burst/server faults have no magnitude dial
      return false;
  }
}

}  // namespace

ShrinkResult shrink_repro_bundle(const ReproBundle& bundle,
                                 const ShrinkConfig& cfg) {
  ShrinkResult res;
  res.initial_events = static_cast<int>(bundle.plan.events.size());
  res.minimized = bundle;
  res.final_events = res.initial_events;

  auto logln = [&res, &cfg](const std::string& line) {
    res.log += line;
    res.log += '\n';
    if (cfg.progress != nullptr) {
      std::fprintf(cfg.progress, "%s\n", line.c_str());
    }
  };

  Oracle oracle{bundle, cfg, "", 0};

  // Baseline: the stored plan must still provoke a failure, and its
  // signature becomes the oracle target.
  ChaosRunResult base;
  {
    ++oracle.sim_runs;
    Telemetry telemetry;
    base = probe(bundle, bundle.plan, bundle.spec.time_limit, telemetry);
  }
  oracle.target = violation_signature(base.outcome, base.violations,
                                      cfg.strict);
  logln("baseline: " + std::to_string(res.initial_events) +
        " events, signature " + oracle.target);
  if (base.outcome == RunOutcome::kOk) {
    logln("baseline run is clean; nothing to shrink");
    res.sim_runs = oracle.sim_runs;
    return res;
  }
  res.reproduced = true;

  FaultPlan plan = bundle.plan;
  Duration time_limit = bundle.spec.time_limit;

  // --- ddmin over event indices -----------------------------------------
  // Quick exit: if the failure does not need faults at all, the minimal
  // plan is empty and ddmin has nothing to do.
  if (!plan.events.empty() && oracle.check(FaultPlan{}, time_limit)) {
    plan.events.clear();
    ++res.steps;
    logln("ddmin: empty plan still reproduces; dropping all events");
  }
  std::vector<int> current(plan.events.size());
  for (std::size_t i = 0; i < current.size(); ++i) {
    current[i] = static_cast<int>(i);
  }
  int granularity = 2;
  while (static_cast<int>(current.size()) >= 2) {
    const std::vector<std::vector<int>> chunks =
        split_chunks(current, granularity);
    std::vector<FaultPlan> candidates;
    std::vector<std::vector<int>> cand_idx;
    // Subsets first, then (for granularity > 2) complements — classic
    // ddmin candidate order.
    for (const std::vector<int>& c : chunks) {
      candidates.push_back(subset_plan(plan, c));
      cand_idx.push_back(c);
    }
    const std::size_t subset_count = candidates.size();
    if (granularity > 2) {
      for (const std::vector<int>& c : chunks) {
        std::vector<int> complement;
        std::set_difference(current.begin(), current.end(), c.begin(),
                            c.end(), std::back_inserter(complement));
        candidates.push_back(subset_plan(plan, complement));
        cand_idx.push_back(std::move(complement));
      }
    }
    const int hit = oracle.first_interesting(candidates, time_limit);
    ++res.steps;
    if (hit >= 0) {
      const bool was_subset = static_cast<std::size_t>(hit) < subset_count;
      logln("ddmin: " + std::to_string(current.size()) + " -> " +
            std::to_string(cand_idx[hit].size()) + " events (" +
            (was_subset ? "subset" : "complement") + " " +
            std::to_string(hit % subset_count + 1) + "/" +
            std::to_string(subset_count) + ")");
      current = std::move(cand_idx[hit]);
      granularity = was_subset ? 2 : std::max(granularity - 1, 2);
      continue;
    }
    if (granularity < static_cast<int>(current.size())) {
      granularity =
          std::min(static_cast<int>(current.size()), granularity * 2);
      continue;
    }
    break;
  }
  // Size-1 tail ddmin cannot reach: try dropping the last event.
  if (current.size() == 1 && oracle.check(FaultPlan{}, time_limit)) {
    current.clear();
    ++res.steps;
    logln("ddmin: last event unnecessary; dropping it");
  }
  plan = subset_plan(plan, current);
  logln("ddmin done: " + std::to_string(res.initial_events) + " -> " +
        std::to_string(plan.events.size()) + " events");

  // --- attribute ladders (serial, order-deterministic) ------------------
  if (cfg.shrink_durations) {
    const Duration floor = seconds(0.1);
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      while (plan.events[i].duration > floor) {
        Duration half = plan.events[i].duration / 2;
        if (half < floor) half = floor;
        FaultPlan trial = plan;
        trial.events[i].duration = half;
        if (!oracle.check(trial, time_limit)) break;
        ++res.steps;
        logln("duration: event " + std::to_string(i) + " " +
              std::to_string(plan.events[i].duration.count()) + "ns -> " +
              std::to_string(half.count()) + "ns");
        plan = std::move(trial);
      }
    }
  }
  if (cfg.shrink_values) {
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
      for (;;) {
        FaultPlan trial = plan;
        if (!benign_step(&trial.events[i])) break;
        if (!oracle.check(trial, time_limit)) break;
        ++res.steps;
        logln("value: event " + std::to_string(i) + " " +
              std::to_string(plan.events[i].value) + " -> " +
              std::to_string(trial.events[i].value));
        plan = std::move(trial);
      }
    }
  }
  if (cfg.shrink_horizon) {
    const Duration floor = seconds(10.0);
    while (time_limit > floor) {
      Duration half = time_limit / 2;
      if (half < floor) half = floor;
      if (!oracle.check(plan, half)) break;
      ++res.steps;
      logln("horizon: time limit " + std::to_string(time_limit.count()) +
            "ns -> " + std::to_string(half.count()) + "ns");
      time_limit = half;
    }
  }

  // Final run rewrites the bundle's expectations to the minimized plan's
  // actual strings, so `mpdash_sim repro minimized.json` verifies bitwise.
  ChaosRunResult fin;
  {
    ++oracle.sim_runs;
    Telemetry telemetry;
    fin = probe(bundle, plan, time_limit, telemetry);
  }
  res.minimized.plan = plan;
  res.minimized.spec.time_limit = time_limit;
  res.minimized.outcome = fin.outcome;
  res.minimized.hung_reason = fin.hung_reason;
  res.minimized.expected_violations = fin.violations;
  res.final_events = static_cast<int>(plan.events.size());
  res.sim_runs = oracle.sim_runs;
  logln("final: " + std::to_string(res.final_events) + " events, " +
        std::to_string(res.sim_runs) + " sim runs, " +
        std::to_string(res.steps) + " steps, signature " +
        violation_signature(fin.outcome, fin.violations, cfg.strict));
  return res;
}

}  // namespace mpdash
