#pragma once
// Delta-debugging fault-plan minimizer (`mpdash_sim shrink <bundle>`).
//
// Given a repro bundle whose plan provokes a violation or hang, ddmin
// over the plan's events finds a 1-minimal subset that still provokes
// the *same class* of failure, then attribute ladders shrink what's
// left: event durations halve toward a floor, fault magnitudes step
// toward benign, and the session time limit halves toward a floor.
//
// Oracle contract: a candidate is "interesting" iff replaying it through
// run_chaos_single — the deterministic campaign code path — yields the
// same violation signature as the original bundle. The signature is the
// outcome plus the canonical *kinds* of the violations (sorted, unique),
// so a shrunk plan that trips the same invariants with different counts
// still qualifies; `strict` tightens this to the exact violation
// strings. Candidate batches run through the parallel campaign runner,
// and the accepted candidate is always the first interesting one in
// batch order, so the minimized bundle and the shrink log are bitwise
// identical for any --jobs count.

#include <cstdio>
#include <string>
#include <vector>

#include "exp/repro.h"

namespace mpdash {

struct ShrinkConfig {
  int jobs = 1;          // candidate-batch parallelism (ddmin rounds)
  bool strict = false;   // match exact violation strings, not kinds
  std::FILE* progress = nullptr;  // live step mirror; log is always kept
  bool shrink_durations = true;
  bool shrink_values = true;
  bool shrink_horizon = true;
};

struct ShrinkResult {
  ReproBundle minimized;    // expectations rewritten to the minimized run
  bool reproduced = false;  // baseline replay provoked a failure at all
  int initial_events = 0;
  int final_events = 0;
  int sim_runs = 0;  // every oracle invocation, baseline included
  int steps = 0;     // ddmin rounds + accepted ladder steps
  std::string log;   // deterministic, newline-terminated step log
};

// Canonical class of one violation string (prefix/substring matching to
// a stable key, e.g. "chunk accounting: delivered 3 + abandoned 1 != 6"
// → "chunk accounting"). Unrecognized strings map to themselves.
std::string violation_kind(const std::string& violation);

// Outcome + sorted unique violation kinds (or exact strings when
// `strict`), joined with '|'. Two runs with equal signatures fail the
// same way for the oracle's purposes.
std::string violation_signature(RunOutcome outcome,
                                const std::vector<std::string>& violations,
                                bool strict);

ShrinkResult shrink_repro_bundle(const ReproBundle& bundle,
                                 const ShrinkConfig& cfg);

}  // namespace mpdash
