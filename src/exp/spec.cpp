#include "exp/spec.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace mpdash {

bool scheme_from_string(std::string_view name, Scheme* out) {
  for (int i = 0; i <= static_cast<int>(Scheme::kMpDashRate); ++i) {
    const Scheme s = static_cast<Scheme>(i);
    if (name == to_string(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

namespace {

std::string u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string session_spec_to_json(const SessionSpec& s) {
  // Canonical: fixed field order, every field always emitted, one line —
  // the bundle format embeds this object verbatim inside a larger layout.
  std::string out = "{";
  out += "\"scheme\": " + json_quote(to_string(s.scheme));
  out += ", \"adaptation\": " + json_quote(s.adaptation);
  out += ", \"mptcp_scheduler\": " + json_quote(s.mptcp_scheduler);
  out += ", \"alpha\": " + json_double(s.alpha);
  out += ", \"debounce_ticks\": " + std::to_string(s.debounce_ticks);
  out += ", \"scenario\": {\"wifi_mbps\": " + json_double(s.scenario.wifi_mbps) +
         ", \"lte_mbps\": " + json_double(s.scenario.lte_mbps) + "}";
  out += ", \"inflight\": " + std::to_string(s.inflight);
  out += ", \"max_chunk_attempts\": " + std::to_string(s.max_chunk_attempts);
  out += ", \"buffer_capacity_s\": " + json_double(s.buffer_capacity_s);
  out += ", \"startup_buffer_s\": " + json_double(s.startup_buffer_s);
  out += std::string(", \"recovery\": ") + (s.recovery ? "true" : "false");
  out += ", \"time_limit_ns\": " + std::to_string(s.time_limit.count());
  out += ", \"watchdog\": {\"max_sim_events\": " + u64(s.watchdog.max_sim_events) +
         ", \"max_wall_s\": " + json_double(s.watchdog.max_wall_s) +
         ", \"poll_interval\": " + u64(s.watchdog.poll_interval) + "}";
  out += "}";
  return out;
}

bool session_spec_from_json_value(const JsonValue& root, SessionSpec* out,
                                  std::string* error) {
  if (!root.is_object()) {
    if (error) *error = "spec: not an object";
    return false;
  }
  SessionSpec s;
  auto bad = [error](const char* what) {
    if (error) *error = std::string("spec: missing or bad \"") + what + "\"";
    return false;
  };
  const JsonValue* v = root.find("scheme");
  if (v == nullptr || !v->is_string() || !scheme_from_string(v->str, &s.scheme)) {
    return bad("scheme");
  }
  v = root.find("adaptation");
  if (v == nullptr || !v->is_string()) return bad("adaptation");
  s.adaptation = v->str;
  v = root.find("mptcp_scheduler");
  if (v == nullptr || !v->is_string()) return bad("mptcp_scheduler");
  s.mptcp_scheduler = v->str;
  v = root.find("alpha");
  if (v == nullptr || !v->is_number()) return bad("alpha");
  s.alpha = v->as_double(1.0);
  v = root.find("debounce_ticks");
  if (v == nullptr || !v->is_number()) return bad("debounce_ticks");
  s.debounce_ticks = static_cast<int>(v->as_int64(2));
  v = root.find("scenario");
  if (v == nullptr || !v->is_object()) return bad("scenario");
  {
    const JsonValue* w = v->find("wifi_mbps");
    if (w == nullptr || !w->is_number()) return bad("scenario.wifi_mbps");
    s.scenario.wifi_mbps = w->as_double(5.0);
    w = v->find("lte_mbps");
    if (w == nullptr || !w->is_number()) return bad("scenario.lte_mbps");
    s.scenario.lte_mbps = w->as_double(4.0);
  }
  v = root.find("inflight");
  if (v == nullptr || !v->is_number()) return bad("inflight");
  s.inflight = static_cast<int>(v->as_int64(1));
  v = root.find("max_chunk_attempts");
  if (v == nullptr || !v->is_number()) return bad("max_chunk_attempts");
  s.max_chunk_attempts = static_cast<int>(v->as_int64(3));
  v = root.find("buffer_capacity_s");
  if (v == nullptr || !v->is_number()) return bad("buffer_capacity_s");
  s.buffer_capacity_s = v->as_double(40.0);
  v = root.find("startup_buffer_s");
  if (v == nullptr || !v->is_number()) return bad("startup_buffer_s");
  s.startup_buffer_s = v->as_double(8.0);
  v = root.find("recovery");
  if (v == nullptr || !v->is_bool()) return bad("recovery");
  s.recovery = v->boolean;
  v = root.find("time_limit_ns");
  if (v == nullptr || !v->is_number()) return bad("time_limit_ns");
  s.time_limit = Duration(v->as_int64(0));
  v = root.find("watchdog");
  if (v == nullptr || !v->is_object()) return bad("watchdog");
  {
    const JsonValue* w = v->find("max_sim_events");
    if (w == nullptr || !w->is_number()) return bad("watchdog.max_sim_events");
    s.watchdog.max_sim_events = w->as_uint64(0);
    w = v->find("max_wall_s");
    if (w == nullptr || !w->is_number()) return bad("watchdog.max_wall_s");
    s.watchdog.max_wall_s = w->as_double(0.0);
    w = v->find("poll_interval");
    if (w == nullptr || !w->is_number()) return bad("watchdog.poll_interval");
    s.watchdog.poll_interval = w->as_uint64(4096);
  }
  *out = std::move(s);
  return true;
}

bool session_spec_from_json(const std::string& text, SessionSpec* out,
                            std::string* error) {
  JsonValue root;
  if (!json_parse(text, &root, error)) return false;
  return session_spec_from_json_value(root, out, error);
}

SessionConfig resolve_session_config(const SessionSpec& spec,
                                     std::uint64_t run_seed) {
  SessionConfig s;
  s.scheme = spec.scheme;
  s.adaptation = spec.adaptation;
  s.mptcp_scheduler = spec.mptcp_scheduler;
  s.alpha = spec.alpha;
  s.debounce_ticks = spec.debounce_ticks;
  s.time_limit = spec.time_limit;
  s.player.max_chunk_attempts = spec.max_chunk_attempts;
  s.player.max_inflight_chunks = std::max(1, spec.inflight);
  s.player.buffer_capacity = seconds(spec.buffer_capacity_s);
  s.player.startup_buffer = seconds(spec.startup_buffer_s);
  s.watchdog = spec.watchdog;
  if (spec.recovery) {
    s.mptcp_recovery.max_consecutive_rtos = 4;
    s.mptcp_recovery.reprobe_interval = seconds(2.0);
    s.http_recovery.request_timeout = seconds(4.0);
    s.http_recovery.max_retries = 4;
    s.http_recovery.jitter_seed = derive_stream_seed(run_seed, "http-jitter");
  }
  return s;
}

ScenarioConfig resolve_scenario_config(const SessionSpec& spec,
                                       std::uint64_t run_seed) {
  ScenarioConfig net =
      constant_scenario(DataRate::mbps(spec.scenario.wifi_mbps),
                        DataRate::mbps(spec.scenario.lte_mbps));
  net.seed = derive_stream_seed(run_seed, "links");
  return net;
}

}  // namespace mpdash
