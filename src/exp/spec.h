#pragma once
// SessionSpec: the one canonical, value-semantic description of a
// streaming session — scheme, adaptation, scenario reference, player /
// recovery / watchdog knobs. Everything that used to be re-encoded per
// consumer (ChaosConfig fields, repro-bundle JSON, ad-hoc CLI flags, the
// fleet mix) is expressed as a SessionSpec and *resolved* into the runtime
// views (`SessionConfig`, `ScenarioConfig`) with a per-run seed.
//
// JSON serialization is canonical (fixed field order, integer-ns times,
// shortest-round-trip doubles), so serialize → parse → re-serialize is
// bitwise stable — the repro-bundle format embeds specs verbatim and
// compares them as strings.

#include <cstdint>
#include <string>

#include "exp/scenario.h"
#include "exp/session.h"
#include "runner/watchdog.h"
#include "util/json.h"

namespace mpdash {

// Scenario reference: constant-rate WiFi + LTE bottlenecks (the chaos
// defaults). Per-run loss streams are derived from the run seed at
// resolution time, never stored.
struct ScenarioSpec {
  double wifi_mbps = 5.0;
  double lte_mbps = 4.0;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

struct SessionSpec {
  Scheme scheme = Scheme::kMpDashDuration;
  std::string adaptation = "festive";
  std::string mptcp_scheduler = "minrtt";
  double alpha = 1.0;
  int debounce_ticks = 2;
  ScenarioSpec scenario;
  // Player knobs (subset of PlayerConfig that experiments vary).
  int inflight = 1;  // prefetch window; 1 = sequential
  int max_chunk_attempts = 3;
  double buffer_capacity_s = 40.0;
  double startup_buffer_s = 8.0;
  // Recovery stack on/off; resolution expands this into the concrete
  // MptcpFailureConfig / HttpClientConfig knobs (with the seed-derived
  // jitter stream).
  bool recovery = true;
  Duration time_limit = seconds(600.0);
  WatchdogConfig watchdog;  // zeros = disabled

  friend bool operator==(const SessionSpec&, const SessionSpec&) = default;
};

// "baseline" → Scheme::kBaseline etc. (inverse of to_string).
bool scheme_from_string(std::string_view name, Scheme* out);

// Canonical single-line JSON object (see header comment).
std::string session_spec_to_json(const SessionSpec& spec);
bool session_spec_from_json_value(const JsonValue& v, SessionSpec* out,
                                  std::string* error);
bool session_spec_from_json(const std::string& text, SessionSpec* out,
                            std::string* error);

// Resolution: spec + per-run seed → the runtime views. All derived seeds
// (link loss streams, HTTP retry jitter) come from `run_seed` via named
// streams, so one (spec, seed) pair maps to exactly one simulation.
SessionConfig resolve_session_config(const SessionSpec& spec,
                                     std::uint64_t run_seed);
ScenarioConfig resolve_scenario_config(const SessionSpec& spec,
                                       std::uint64_t run_seed);

}  // namespace mpdash
