#include "fault/fault.h"

#include <algorithm>
#include <cstdio>

#include "util/rng.h"

namespace mpdash {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kBlackout: return "blackout";
    case FaultKind::kFlap: return "flap";
    case FaultKind::kLossBurst: return "loss_burst";
    case FaultKind::kRttSpike: return "rtt_spike";
    case FaultKind::kRateCollapse: return "rate_collapse";
    case FaultKind::kServerStall: return "server_stall";
    case FaultKind::kServerReset: return "server_reset";
  }
  return "unknown";
}

TimePoint FaultPlan::last_end() const {
  TimePoint latest = kTimeZero;
  for (const FaultEvent& e : events) latest = std::max(latest, e.end());
  return latest;
}

std::string describe(const FaultEvent& e) {
  char buf[160];
  const bool server = e.kind == FaultKind::kServerStall ||
                      e.kind == FaultKind::kServerReset;
  if (server) {
    std::snprintf(buf, sizeof buf, "%s at=%.2fs dur=%.2fs", to_string(e.kind),
                  to_seconds(e.at), to_seconds(e.duration));
  } else {
    std::snprintf(buf, sizeof buf, "%s path=%d at=%.2fs dur=%.2fs value=%g",
                  to_string(e.kind), e.path_id, to_seconds(e.at),
                  to_seconds(e.duration), e.value);
  }
  return buf;
}

FaultPlan random_fault_plan(std::uint64_t seed, const RandomPlanConfig& cfg) {
  FaultPlan plan;
  const double lo = to_seconds(cfg.start_margin);
  const double hi = to_seconds(cfg.horizon) - to_seconds(cfg.end_margin);
  if (cfg.num_events <= 0 || hi - lo < 2.0) return plan;

  Rng rng(derive_stream_seed(seed, "fault-plan"));
  const int kind_count = cfg.server_faults ? 7 : 5;  // server kinds are last
  for (int i = 0; i < cfg.num_events; ++i) {
    FaultEvent e;
    e.kind = static_cast<FaultKind>(rng.uniform_int(0, kind_count - 1));
    const double start = rng.uniform(lo, hi - 1.0);
    const double max_dur =
        std::min(hi - start, 0.25 * to_seconds(cfg.horizon));
    e.at = kTimeZero + seconds(start);
    // Draw within [min(1, max_dur), max_dur] so the end-margin and the
    // 0.25*horizon cap hold by construction, with no post-hoc clipping.
    e.duration = seconds(rng.uniform(std::min(1.0, max_dur), max_dur));
    e.path_id =
        static_cast<int>(rng.uniform_int(0, std::max(1, cfg.num_paths) - 1));
    switch (e.kind) {
      case FaultKind::kFlap:
        e.value = rng.uniform(0.5, 2.5);  // down-phase length, seconds
        break;
      case FaultKind::kRttSpike:
        e.value = rng.uniform(100.0, 800.0);  // extra one-way delay, ms
        break;
      case FaultKind::kRateCollapse:
        e.value = rng.uniform(0.02, 0.3);  // rate factor
        break;
      case FaultKind::kLossBurst:
        e.ge.p_good_to_bad = rng.uniform(0.005, 0.05);
        e.ge.p_bad_to_good = rng.uniform(0.05, 0.3);
        e.ge.loss_good = 0.0;
        e.ge.loss_bad = rng.uniform(0.6, 0.95);
        break;
      default:
        break;
    }
    plan.events.push_back(e);
  }
  // Chronological order; stable so equal start times keep generation order
  // and the plan stays a pure function of (seed, config).
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace mpdash
