#pragma once
// Fault model: what can go wrong, when, for how long.
//
// A FaultPlan is a list of timed fault events — the simulator's version of
// the hostile conditions MP-DASH met in the paper's field study (§6):
// walking out of AP range (blackout), fringe-of-coverage flapping, bursty
// interference, congestion-driven rate collapse, and misbehaving origin
// servers. Plans are either scripted (tests, demos) or generated from a
// seed (chaos campaigns), and are executed by the FaultInjector.

#include <cstdint>
#include <string>
#include <vector>

#include "link/loss.h"
#include "util/units.h"

namespace mpdash {

enum class FaultKind : std::uint8_t {
  kBlackout,      // both links of a path down for `duration` (path death;
                  // revival happens when the window ends)
  kFlap,          // down/up cycling: down phases of `value` seconds
                  // alternate with equal up phases across the window
  kLossBurst,     // Gilbert–Elliott loss on the path's downlink
  kRttSpike,      // `value` ms of extra one-way delay on the downlink
  kRateCollapse,  // downlink rate scaled by factor `value`
  kServerStall,   // origin holds finished responses for the window
  kServerReset,   // origin discards requests for the window (connection
                  // reset as seen by the client: silence)
};

const char* to_string(FaultKind k);

struct FaultEvent {
  FaultKind kind = FaultKind::kBlackout;
  TimePoint at = kTimeZero;   // start
  Duration duration = kDurationZero;
  int path_id = 0;            // target path; ignored for server faults
  double value = 0.0;         // kind-specific parameter (see FaultKind)
  GilbertElliottConfig ge{};  // kLossBurst parameters

  TimePoint end() const { return at + duration; }
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }
  // Latest fault end; kTimeZero for an empty plan.
  TimePoint last_end() const;
};

// One-line human-readable description (chaos-campaign logs).
std::string describe(const FaultEvent& e);

struct RandomPlanConfig {
  // Every generated fault starts after `start_margin` and ends before
  // `horizon - end_margin`, so a session given enough wall-clock room can
  // always finish cleanly after the last fault lifts.
  Duration horizon = seconds(120.0);
  Duration start_margin = seconds(5.0);
  Duration end_margin = seconds(20.0);
  int num_events = 4;
  int num_paths = 2;
  bool server_faults = true;  // include kServerStall / kServerReset
};

// Deterministic: the same (seed, config) always yields the same plan.
FaultPlan random_fault_plan(std::uint64_t seed, const RandomPlanConfig& cfg);

}  // namespace mpdash
