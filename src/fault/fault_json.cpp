#include "fault/fault_json.h"

#include <cstring>

#include "util/json.h"

namespace mpdash {

bool fault_kind_from_string(std::string_view name, FaultKind* out) {
  // Inverse of to_string(FaultKind); the switch there is the source of
  // truth, so walk the enum instead of duplicating the table.
  for (int k = 0; k <= static_cast<int>(FaultKind::kServerReset); ++k) {
    const FaultKind kind = static_cast<FaultKind>(k);
    if (name == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::string fault_event_to_json(const FaultEvent& e) {
  std::string out = "{\"kind\":";
  out += json_quote(to_string(e.kind));
  out += ",\"at_ns\":" + std::to_string(e.at.count());
  out += ",\"duration_ns\":" + std::to_string(e.duration.count());
  out += ",\"path\":" + std::to_string(e.path_id);
  out += ",\"value\":" + json_double(e.value);
  out += ",\"ge\":{\"p_good_to_bad\":" + json_double(e.ge.p_good_to_bad);
  out += ",\"p_bad_to_good\":" + json_double(e.ge.p_bad_to_good);
  out += ",\"loss_good\":" + json_double(e.ge.loss_good);
  out += ",\"loss_bad\":" + json_double(e.ge.loss_bad);
  out += "}}";
  return out;
}

std::string fault_plan_to_json(const FaultPlan& plan) {
  std::string out = "{\"events\":[";
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    out += i == 0 ? "\n  " : ",\n  ";
    out += fault_event_to_json(plan.events[i]);
  }
  if (!plan.events.empty()) out += "\n";
  out += "]}";
  return out;
}

namespace {

bool require_number(const JsonValue& obj, const char* key, double* out,
                    std::string* error) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    if (error) *error = std::string("fault event: missing number '") + key +
                        "'";
    return false;
  }
  *out = v->as_double();
  return true;
}

}  // namespace

bool fault_event_from_json(const JsonValue& v, FaultEvent* out,
                           std::string* error) {
  if (!v.is_object()) {
    if (error) *error = "fault event: not an object";
    return false;
  }
  const JsonValue* kind = v.find("kind");
  if (kind == nullptr || !kind->is_string() ||
      !fault_kind_from_string(kind->str, &out->kind)) {
    if (error) {
      *error = "fault event: bad or missing \"kind\"" +
               (kind != nullptr && kind->is_string() ? " '" + kind->str + "'"
                                                     : std::string());
    }
    return false;
  }
  const JsonValue* at = v.find("at_ns");
  const JsonValue* dur = v.find("duration_ns");
  if (at == nullptr || !at->is_number() || dur == nullptr ||
      !dur->is_number()) {
    if (error) *error = "fault event: missing at_ns/duration_ns";
    return false;
  }
  // Integer nanosecond counts round-trip exactly (no float in the path).
  out->at = TimePoint(Duration(at->as_int64()));
  out->duration = Duration(dur->as_int64());
  if (const JsonValue* path = v.find("path"); path != nullptr) {
    out->path_id = static_cast<int>(path->as_int64());
  }
  if (const JsonValue* val = v.find("value"); val != nullptr) {
    out->value = val->as_double();
  }
  if (const JsonValue* ge = v.find("ge"); ge != nullptr) {
    if (!ge->is_object()) {
      if (error) *error = "fault event: \"ge\" is not an object";
      return false;
    }
    if (!require_number(*ge, "p_good_to_bad", &out->ge.p_good_to_bad,
                        error) ||
        !require_number(*ge, "p_bad_to_good", &out->ge.p_bad_to_good,
                        error) ||
        !require_number(*ge, "loss_good", &out->ge.loss_good, error) ||
        !require_number(*ge, "loss_bad", &out->ge.loss_bad, error)) {
      return false;
    }
  }
  return true;
}

bool fault_plan_from_json_value(const JsonValue& v, FaultPlan* out,
                                std::string* error) {
  if (!v.is_object()) {
    if (error) *error = "fault plan: not an object";
    return false;
  }
  const JsonValue* events = v.find("events");
  if (events == nullptr || !events->is_array()) {
    if (error) *error = "fault plan: missing \"events\" array";
    return false;
  }
  out->events.clear();
  out->events.reserve(events->items.size());
  for (const JsonValue& item : events->items) {
    FaultEvent e;
    if (!fault_event_from_json(item, &e, error)) return false;
    out->events.push_back(e);
  }
  return true;
}

bool fault_plan_from_json(const std::string& text, FaultPlan* out,
                          std::string* error) {
  JsonValue v;
  if (!json_parse(text, &v, error)) return false;
  return fault_plan_from_json_value(v, out, error);
}

}  // namespace mpdash
