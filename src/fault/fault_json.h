#pragma once
// Lossless JSON (de)serialization for fault plans — the persistence layer
// repro bundles and the shrinker are built on.
//
// The serializer is canonical: fixed field order, every field always
// emitted, times as integer nanosecond counts, doubles in shortest-round-
// trip form. That makes serialize → parse → re-serialize bitwise stable,
// which is what lets `mpdash_sim repro` verify a replay against the
// bundle byte-for-byte and lets the shrinker's determinism tests compare
// whole minimized bundles as strings.

#include <string>
#include <string_view>

#include "fault/fault.h"

namespace mpdash {

struct JsonValue;

// "blackout" → FaultKind::kBlackout etc. (inverse of to_string).
bool fault_kind_from_string(std::string_view name, FaultKind* out);

// One event as a single-line JSON object:
//   {"kind":"blackout","at_ns":5000000000,"duration_ns":12000000000,
//    "path":0,"value":0,"ge":{"p_good_to_bad":0.05,...}}
std::string fault_event_to_json(const FaultEvent& e);

// Whole plan: {"events":[...]} with one event per line.
std::string fault_plan_to_json(const FaultPlan& plan);

// Inverse parsers. On failure return false and fill *error.
bool fault_event_from_json(const JsonValue& v, FaultEvent* out,
                           std::string* error);
bool fault_plan_from_json_value(const JsonValue& v, FaultPlan* out,
                                std::string* error);
bool fault_plan_from_json(const std::string& text, FaultPlan* out,
                          std::string* error);

}  // namespace mpdash
