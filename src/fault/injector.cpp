#include "fault/injector.h"

#include <algorithm>
#include <cassert>

namespace mpdash {

namespace {

bool is_server_fault(FaultKind k) {
  return k == FaultKind::kServerStall || k == FaultKind::kServerReset;
}

}  // namespace

FaultInjector::FaultInjector(EventLoop& loop, FaultPlan plan)
    : loop_(loop), plan_(std::move(plan)) {}

FaultInjector::~FaultInjector() {
  for (const EventId id : timers_) loop_.cancel(id);
}

void FaultInjector::attach_path(NetPath* path) {
  assert(path != nullptr);
  paths_[path->id()].path = path;
}

void FaultInjector::set_server_hooks(ServerHooks hooks) {
  hooks_ = std::move(hooks);
}

void FaultInjector::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  injected_counter_ =
      telemetry_ ? telemetry_->metrics().counter("fault.injected") : Counter{};
}

void FaultInjector::arm() {
  assert(!armed_);
  armed_ = true;
  for (const FaultEvent& e : plan_.events) {
    if (is_server_fault(e.kind)) {
      const bool has_hook = e.kind == FaultKind::kServerStall
                                ? static_cast<bool>(hooks_.set_stalled)
                                : static_cast<bool>(hooks_.set_dropping);
      if (!has_hook) {
        ++skipped_;
        continue;
      }
    } else if (!paths_.count(e.path_id) || !paths_[e.path_id].path) {
      ++skipped_;
      continue;
    }
    timers_.push_back(loop_.schedule_at(e.at, [this, &e] { begin(e); }));
    timers_.push_back(loop_.schedule_at(e.end(), [this, &e] { end(e); }));
    if (e.kind == FaultKind::kFlap && e.value > 0.0) {
      // Expand the flap into balanced down/up toggles covering the window;
      // begin()/end() then only do the bookkeeping.
      const Duration phase = seconds(e.value);
      for (TimePoint t = e.at; t < e.end(); t = t + phase + phase) {
        const TimePoint up_at = std::min(t + phase, e.end());
        timers_.push_back(loop_.schedule_at(
            t, [this, id = e.path_id] { add_down_ref(id, +1); }));
        timers_.push_back(loop_.schedule_at(
            up_at, [this, id = e.path_id] { add_down_ref(id, -1); }));
      }
    }
  }
}

void FaultInjector::add_down_ref(int path_id, int delta) {
  PathCtl& ctl = paths_[path_id];
  ctl.down_refs += delta;
  assert(ctl.down_refs >= 0);
  const bool down = ctl.down_refs > 0;
  ctl.path->downlink().set_down(down);
  ctl.path->uplink().set_down(down);
}

void FaultInjector::apply_rate(PathCtl& ctl) {
  double factor = 1.0;
  for (const double f : ctl.rate_factors) factor *= f;
  ctl.path->downlink().set_rate_factor(factor);
}

void FaultInjector::apply_delay(PathCtl& ctl) {
  Duration extra = kDurationZero;
  for (const Duration d : ctl.extra_delays) extra = extra + d;
  ctl.path->downlink().set_extra_delay(extra);
}

void FaultInjector::begin(const FaultEvent& e) {
  ++started_;
  injected_counter_.increment();
  emit(e, /*starting=*/true);
  switch (e.kind) {
    case FaultKind::kBlackout:
      add_down_ref(e.path_id, +1);
      break;
    case FaultKind::kFlap:
      if (e.value <= 0.0) add_down_ref(e.path_id, +1);  // degenerate: blackout
      break;
    case FaultKind::kLossBurst: {
      PathCtl& ctl = paths_[e.path_id];
      ++ctl.ge_refs;
      ctl.path->downlink().set_ge_loss(e.ge);
      break;
    }
    case FaultKind::kRttSpike: {
      PathCtl& ctl = paths_[e.path_id];
      ctl.extra_delays.push_back(seconds(e.value / 1000.0));
      apply_delay(ctl);
      break;
    }
    case FaultKind::kRateCollapse: {
      PathCtl& ctl = paths_[e.path_id];
      ctl.rate_factors.push_back(e.value);
      apply_rate(ctl);
      break;
    }
    case FaultKind::kServerStall:
      if (++server_stall_refs_ == 1) hooks_.set_stalled(true);
      break;
    case FaultKind::kServerReset:
      if (++server_drop_refs_ == 1) hooks_.set_dropping(true);
      break;
  }
}

void FaultInjector::end(const FaultEvent& e) {
  ++ended_;
  emit(e, /*starting=*/false);
  switch (e.kind) {
    case FaultKind::kBlackout:
      add_down_ref(e.path_id, -1);
      break;
    case FaultKind::kFlap:
      if (e.value <= 0.0) add_down_ref(e.path_id, -1);
      break;
    case FaultKind::kLossBurst: {
      PathCtl& ctl = paths_[e.path_id];
      if (--ctl.ge_refs == 0) ctl.path->downlink().set_ge_loss(std::nullopt);
      break;
    }
    case FaultKind::kRttSpike: {
      PathCtl& ctl = paths_[e.path_id];
      const Duration d = seconds(e.value / 1000.0);
      const auto it = std::find(ctl.extra_delays.begin(),
                                ctl.extra_delays.end(), d);
      if (it != ctl.extra_delays.end()) ctl.extra_delays.erase(it);
      apply_delay(ctl);
      break;
    }
    case FaultKind::kRateCollapse: {
      PathCtl& ctl = paths_[e.path_id];
      const auto it = std::find(ctl.rate_factors.begin(),
                                ctl.rate_factors.end(), e.value);
      if (it != ctl.rate_factors.end()) ctl.rate_factors.erase(it);
      apply_rate(ctl);
      break;
    }
    case FaultKind::kServerStall:
      if (--server_stall_refs_ == 0) hooks_.set_stalled(false);
      break;
    case FaultKind::kServerReset:
      if (--server_drop_refs_ == 0) hooks_.set_dropping(false);
      break;
  }
}

void FaultInjector::emit(const FaultEvent& e, bool starting) {
  if (!telemetry_ || !telemetry_->tracing()) return;
  TraceRecord r;
  r.at = loop_.now();
  r.type = TraceType::kFault;
  r.label = to_string(e.kind);
  r.enabled = starting;
  r.value = e.value;
  if (!is_server_fault(e.kind)) r.path_id = e.path_id;
  // Fault windows are trace-global, not owned by whichever chunk span
  // happens to be open when the fault fires — skip ambient stamping so
  // the analysis layer joins them against *all* overlapping spans.
  telemetry_->emit_unspanned(r);
}

}  // namespace mpdash
