#pragma once
// FaultInjector: executes a FaultPlan against live simulation objects.
//
// The injector is scheduled on the same event loop as everything else, so
// fault timing composes deterministically with transport and player
// events. Link-scoped faults drive the impairment surface of the attached
// NetPaths; server-scoped faults go through std::function hooks so this
// library never depends on the HTTP layer.
//
// Overlap semantics (random plans may stack windows):
//   * blackout / flap down-phases are reference-counted — a path is up
//     again only when every down window has lifted;
//   * rate collapses multiply (product of active factors);
//   * RTT spikes add (sum of active extra delays);
//   * loss bursts refcount; a later burst's GE parameters replace an
//     earlier overlapping one's (the chain restarts in Good);
//   * server stall / reset windows refcount.
// Every window therefore restores the exact pre-fault state once all
// overlapping windows have closed.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "fault/fault.h"
#include "link/path.h"
#include "sim/event_loop.h"
#include "telemetry/telemetry.h"

namespace mpdash {

class FaultInjector {
 public:
  // Bridges to the origin server without a fault->http dependency.
  struct ServerHooks {
    std::function<void(bool)> set_stalled;   // hold finished responses
    std::function<void(bool)> set_dropping;  // discard incoming requests
  };

  FaultInjector(EventLoop& loop, FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Registers a target path (keyed by path->id()). Borrowed; must outlive
  // the injector. Call before arm().
  void attach_path(NetPath* path);
  void set_server_hooks(ServerHooks hooks);
  // Registers the `fault.injected` counter and emits kFault trace records.
  void set_telemetry(Telemetry* telemetry);

  // Schedules the whole plan. Events targeting a path that was never
  // attached — or server events without hooks — are counted as skipped and
  // otherwise ignored. Call exactly once, before the loop runs.
  void arm();

  const FaultPlan& plan() const { return plan_; }
  int faults_started() const { return started_; }
  int faults_ended() const { return ended_; }
  int faults_skipped() const { return skipped_; }
  // Every scheduled window has opened and closed again (the network is
  // back to its configured state).
  bool quiescent() const {
    return armed_ && started_ == ended_ &&
           started_ + skipped_ == static_cast<int>(plan_.size());
  }

 private:
  struct PathCtl {
    NetPath* path = nullptr;
    int down_refs = 0;
    int ge_refs = 0;
    std::vector<double> rate_factors;    // active collapse factors
    std::vector<Duration> extra_delays;  // active spike contributions
  };

  void begin(const FaultEvent& e);
  void end(const FaultEvent& e);
  void add_down_ref(int path_id, int delta);
  void apply_rate(PathCtl& ctl);
  void apply_delay(PathCtl& ctl);
  void emit(const FaultEvent& e, bool starting);

  EventLoop& loop_;
  FaultPlan plan_;
  std::map<int, PathCtl> paths_;
  ServerHooks hooks_;
  int server_stall_refs_ = 0;
  int server_drop_refs_ = 0;

  bool armed_ = false;
  int started_ = 0;
  int ended_ = 0;
  int skipped_ = 0;
  std::vector<EventId> timers_;

  Telemetry* telemetry_ = nullptr;
  Counter injected_counter_;
};

}  // namespace mpdash
