#include "http/client.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace mpdash {

const char* to_string(TransferError e) {
  switch (e) {
    case TransferError::kNone: return "none";
    case TransferError::kTimeout: return "timeout";
    case TransferError::kParseError: return "parse-error";
    case TransferError::kAborted: return "aborted";
  }
  return "unknown";
}

HttpClient::HttpClient(EventLoop& loop, MptcpEndpoint& endpoint,
                       HttpClientConfig config)
    : loop_(loop),
      endpoint_(endpoint),
      config_(config),
      parser_(HttpStreamParser::Mode::kResponses,
              HttpStreamParser::Callbacks{
                  .on_request = nullptr,
                  .on_response_head =
                      [this](const HttpResponse& head) {
                        // A response no transfer owns (the request already
                        // completed or errored out, e.g. a server stall
                        // outlasting the whole retry budget flushing after
                        // the queue drained), or one carrying a stale id,
                        // answers an attempt we already gave up on: swallow
                        // the whole message.
                        discarding_stale_ = !in_flight_;
                        if (!discarding_stale_ &&
                            config_.request_timeout > kDurationZero) {
                          const auto rid = head.header(kRequestIdHeader);
                          discarding_stale_ =
                              !rid || std::strtoull(rid->c_str(), nullptr,
                                                    10) != expected_rid_;
                        }
                        if (discarding_stale_) return;
                        current_.response = head;
                        current_.head_received = loop_.now();
                      },
                  .on_body =
                      [this](Bytes count, const std::string& real) {
                        if (discarding_stale_) return;
                        current_.body_bytes += count;
                        current_.body += real;
                        if (!pending_.empty() && pending_.front().on_progress) {
                          pending_.front().on_progress(
                              current_.body_bytes,
                              current_.response.content_length());
                        }
                      },
                  .on_message_complete =
                      [this] {
                        if (discarding_stale_) {
                          discarding_stale_ = false;
                          return;  // keep waiting for the live attempt
                        }
                        loop_.cancel(timeout_timer_);
                        timeout_timer_ = EventId{};
                        // A response can land during a retry backoff (the
                        // attempt timed out but was merely late); the
                        // scheduled resend must die with the transfer or
                        // it fires against the *next* queued request.
                        loop_.cancel(retry_timer_);
                        retry_timer_ = EventId{};
                        emit_http("response", attempt_,
                                  static_cast<double>(current_.body_bytes));
                        current_.completed = loop_.now();
                        current_.retries = attempt_;
                        attempt_ = 0;
                        // No attempt awaits a response anymore; a late
                        // duplicate must not match the finished id.
                        expected_rid_ = 0;
                        Pending done = std::move(pending_.front());
                        pending_.pop_front();
                        in_flight_ = false;
                        HttpTransfer result = std::move(current_);
                        current_ = HttpTransfer{};
                        // Issue the next request before the callback so
                        // back-to-back fetches pipeline tightly.
                        maybe_send_next();
                        if (done.on_done) done.on_done(result);
                      },
                  .on_error =
                      [this](HttpParseError, const std::string&) {
                        // Response framing is unrecoverable: every queued
                        // transfer on this stream is lost, not just the
                        // in-flight one. Completion callbacks may enqueue
                        // follow-up gets; those fail here too.
                        parser_dead_ = true;
                        while (in_flight_ || !pending_.empty()) {
                          if (!in_flight_) in_flight_ = true;
                          complete_with_error(TransferError::kParseError);
                        }
                      }}),
      jitter_rng_(config.jitter_seed) {
  endpoint_.set_receive_handler(
      [this](const WireData& data) { on_stream_data(data); });
}

HttpClient::~HttpClient() {
  loop_.cancel(timeout_timer_);
  loop_.cancel(retry_timer_);
}

void HttpClient::get(std::string target, CompletionHandler on_done,
                     ProgressHandler on_progress) {
  pending_.push_back(
      {std::move(target), std::move(on_done), std::move(on_progress)});
  maybe_send_next();
}

void HttpClient::maybe_send_next() {
  if (in_flight_ || pending_.empty() || parser_dead_) return;
  in_flight_ = true;
  attempt_ = 0;
  current_ = HttpTransfer{};
  current_.request_sent = loop_.now();
  send_attempt();
}

void HttpClient::send_attempt() {
  HttpRequest req;
  req.target = pending_.front().target;
  req.headers.push_back({"Host", "mpdash.local"});
  if (config_.request_timeout > kDurationZero) {
    expected_rid_ = next_rid_++;
    req.headers.push_back(
        {kRequestIdHeader, std::to_string(expected_rid_)});
    loop_.cancel(timeout_timer_);
    timeout_timer_ =
        loop_.schedule_in(config_.request_timeout, [this] { on_timeout(); });
  }
  emit_http("request", attempt_, 0.0);
  endpoint_.send(req.to_wire());
}

void HttpClient::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (!telemetry_) {
    timeouts_counter_ = Counter{};
    retries_counter_ = Counter{};
    return;
  }
  MetricsRegistry& m = telemetry_->metrics();
  timeouts_counter_ = m.counter("http.timeouts");
  retries_counter_ = m.counter("http.retries");
}

void HttpClient::emit_http(const char* event, int attempt, double value) {
  if (!telemetry_ || !telemetry_->tracing()) return;
  TraceRecord r;
  r.at = loop_.now();
  r.type = TraceType::kHttp;
  r.label = event;
  r.level = attempt;
  r.value = value;
  telemetry_->emit(r);
}

void HttpClient::on_timeout() {
  timeout_timer_ = EventId{};
  ++timeouts_;
  if (telemetry_) timeouts_counter_.increment();
  emit_http("timeout", attempt_, to_seconds(config_.request_timeout));
  if (attempt_ >= config_.max_retries) {
    complete_with_error(TransferError::kTimeout);
    return;
  }
  // Back off before the resend: if the response is merely late (not
  // lost), the stale-id discard path absorbs it when it lands.
  const Duration delay = backoff_delay(attempt_);
  ++attempt_;
  ++retries_sent_;
  if (telemetry_) retries_counter_.increment();
  emit_http("retry", attempt_, to_seconds(delay));
  retry_timer_ = loop_.schedule_in(delay, [this] {
    retry_timer_ = EventId{};
    send_attempt();
  });
}

Duration HttpClient::backoff_delay(int attempt) {
  const double factor = std::pow(config_.backoff_factor, attempt);
  // Deterministic jitter: scale by [1, 1.25) so synchronized clients
  // (e.g. a fleet of chaos runs) don't retry in lockstep. backoff_cap
  // bounds the final, post-jitter delay.
  const double jitter = 1.0 + 0.25 * jitter_rng_.uniform();
  const double raw =
      static_cast<double>(config_.backoff_base.count()) * factor * jitter;
  const double capped =
      std::min(raw, static_cast<double>(config_.backoff_cap.count()));
  return Duration(static_cast<Duration::rep>(capped));
}

void HttpClient::complete_with_error(TransferError error) {
  loop_.cancel(timeout_timer_);
  loop_.cancel(retry_timer_);
  timeout_timer_ = EventId{};
  retry_timer_ = EventId{};
  emit_http("giveup", attempt_, static_cast<double>(error));
  current_.completed = loop_.now();
  current_.retries = attempt_;
  current_.error = error;
  attempt_ = 0;
  // A timed-out request may still be answered later; that response now
  // belongs to no transfer and must be dropped when it arrives, whether
  // or not a new request has re-stamped the expected id by then.
  expected_rid_ = 0;
  Pending done = std::move(pending_.front());
  pending_.pop_front();
  in_flight_ = false;
  HttpTransfer result = std::move(current_);
  current_ = HttpTransfer{};
  maybe_send_next();
  if (done.on_done) done.on_done(result);
}

void HttpClient::on_stream_data(const WireData& data) { parser_.consume(data); }

}  // namespace mpdash
