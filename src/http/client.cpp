#include "http/client.h"

#include <utility>

namespace mpdash {

HttpClient::HttpClient(EventLoop& loop, MptcpEndpoint& endpoint)
    : loop_(loop),
      endpoint_(endpoint),
      parser_(HttpStreamParser::Mode::kResponses,
              HttpStreamParser::Callbacks{
                  .on_request = nullptr,
                  .on_response_head =
                      [this](const HttpResponse& head) {
                        current_.response = head;
                        current_.head_received = loop_.now();
                      },
                  .on_body =
                      [this](Bytes count, const std::string& real) {
                        current_.body_bytes += count;
                        current_.body += real;
                        if (!pending_.empty() && pending_.front().on_progress) {
                          pending_.front().on_progress(
                              current_.body_bytes,
                              current_.response.content_length());
                        }
                      },
                  .on_message_complete =
                      [this] {
                        current_.completed = loop_.now();
                        Pending done = std::move(pending_.front());
                        pending_.pop_front();
                        in_flight_ = false;
                        HttpTransfer result = std::move(current_);
                        current_ = HttpTransfer{};
                        // Issue the next request before the callback so
                        // back-to-back fetches pipeline tightly.
                        maybe_send_next();
                        if (done.on_done) done.on_done(result);
                      }}) {
  endpoint_.set_receive_handler(
      [this](const WireData& data) { on_stream_data(data); });
}

void HttpClient::get(std::string target, CompletionHandler on_done,
                     ProgressHandler on_progress) {
  pending_.push_back(
      {std::move(target), std::move(on_done), std::move(on_progress)});
  maybe_send_next();
}

void HttpClient::maybe_send_next() {
  if (in_flight_ || pending_.empty()) return;
  in_flight_ = true;
  current_ = HttpTransfer{};
  current_.request_sent = loop_.now();
  HttpRequest req;
  req.target = pending_.front().target;
  req.headers.push_back({"Host", "mpdash.local"});
  endpoint_.send(req.to_wire());
}

void HttpClient::on_stream_data(const WireData& data) { parser_.consume(data); }

}  // namespace mpdash
