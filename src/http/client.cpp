#include "http/client.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace mpdash {

const char* to_string(TransferError e) {
  switch (e) {
    case TransferError::kNone: return "none";
    case TransferError::kTimeout: return "timeout";
    case TransferError::kParseError: return "parse-error";
    case TransferError::kAborted: return "aborted";
  }
  return "unknown";
}

HttpClient::HttpClient(EventLoop& loop, MptcpEndpoint& endpoint,
                       HttpClientConfig config)
    : loop_(loop),
      endpoint_(endpoint),
      config_(config),
      parser_(HttpStreamParser::Mode::kResponses,
              HttpStreamParser::Callbacks{
                  .on_request = nullptr,
                  .on_response_head =
                      [this](const HttpResponse& head) {
                        // Match the response to the sent entry that owns
                        // it. With the retry layer on, ownership is by
                        // echoed request id (completed entries left the
                        // list, so a late duplicate or a response to an
                        // abandoned attempt matches nothing); without it,
                        // responses arrive strictly in request order, so
                        // the oldest sent entry owns the message. No
                        // owner => swallow the whole message.
                        receiving_ = nullptr;
                        if (config_.request_timeout > kDurationZero) {
                          const auto rid = head.header(kRequestIdHeader);
                          const std::uint64_t id =
                              rid ? std::strtoull(rid->c_str(), nullptr, 10)
                                  : 0;
                          if (id != 0) {
                            for (Pending& p : pending_) {
                              if (p.sent && p.rid == id) {
                                receiving_ = &p;
                                break;
                              }
                            }
                          }
                        } else {
                          for (Pending& p : pending_) {
                            if (p.sent) {
                              receiving_ = &p;
                              break;
                            }
                          }
                        }
                        discarding_stale_ = receiving_ == nullptr;
                        if (discarding_stale_) return;
                        receiving_->transfer.response = head;
                        receiving_->transfer.head_received = loop_.now();
                      },
                  .on_body =
                      [this](Bytes count, const std::string& real) {
                        if (discarding_stale_ || !receiving_) return;
                        HttpTransfer& t = receiving_->transfer;
                        t.body_bytes += count;
                        t.body += real;
                        if (receiving_->on_progress) {
                          receiving_->on_progress(t.body_bytes,
                                                  t.response.content_length());
                        }
                      },
                  .on_message_complete =
                      [this] {
                        if (discarding_stale_) {
                          discarding_stale_ = false;
                          return;  // keep waiting for the live attempt
                        }
                        Pending* p = receiving_;
                        receiving_ = nullptr;
                        // The owner can die mid-message (retry budget
                        // exhausted while the body trickled in); the
                        // tail of its response belongs to no one.
                        if (!p) return;
                        loop_.cancel(p->timeout_timer);
                        p->timeout_timer = EventId{};
                        // A response can land during a retry backoff (the
                        // attempt timed out but was merely late); the
                        // scheduled resend must die with the transfer or
                        // it fires against a request that already
                        // finished.
                        loop_.cancel(p->retry_timer);
                        p->retry_timer = EventId{};
                        emit_http("response", p->attempt,
                                  static_cast<double>(p->transfer.body_bytes),
                                  p->span);
                        p->transfer.completed = loop_.now();
                        p->transfer.retries = p->attempt;
                        p->rid = 0;
                        Pending done = std::move(*p);
                        pending_.erase(iter_of(p));
                        --inflight_;
                        // Issue the next request before the callback so
                        // back-to-back fetches pipeline tightly.
                        maybe_send_next();
                        if (done.on_done) done.on_done(done.transfer);
                      },
                  .on_error =
                      [this](HttpParseError, const std::string&) {
                        // Response framing is unrecoverable: every queued
                        // transfer on this stream is lost, not just the
                        // in-flight ones. Completion callbacks may enqueue
                        // follow-up gets; those fail here too.
                        parser_dead_ = true;
                        receiving_ = nullptr;
                        discarding_stale_ = false;
                        while (!pending_.empty()) {
                          complete_with_error(pending_.begin(),
                                              TransferError::kParseError);
                        }
                      }}),
      jitter_rng_(config.jitter_seed) {
  endpoint_.set_receive_handler(
      [this](const WireData& data) { on_stream_data(data); });
}

HttpClient::~HttpClient() {
  for (Pending& p : pending_) {
    loop_.cancel(p.timeout_timer);
    loop_.cancel(p.retry_timer);
  }
}

void HttpClient::get(std::string target, CompletionHandler on_done,
                     ProgressHandler on_progress, SpanId span) {
  Pending p;
  p.target = std::move(target);
  p.on_done = std::move(on_done);
  p.on_progress = std::move(on_progress);
  p.span = span;
  pending_.push_back(std::move(p));
  maybe_send_next();
}

void HttpClient::maybe_send_next() {
  if (parser_dead_) return;
  const auto cap = static_cast<std::size_t>(std::max(1, config_.max_pipeline));
  while (inflight_ < cap) {
    Pending* next = nullptr;
    for (Pending& p : pending_) {
      if (!p.sent) {
        next = &p;
        break;
      }
    }
    if (!next) return;
    next->sent = true;
    ++inflight_;
    next->attempt = 0;
    next->transfer = HttpTransfer{};
    next->transfer.request_sent = loop_.now();
    send_attempt(*next);
  }
}

void HttpClient::send_attempt(Pending& p) {
  HttpRequest req;
  req.target = p.target;
  req.headers.push_back({"Host", "mpdash.local"});
  if (config_.request_timeout > kDurationZero) {
    p.rid = next_rid_++;
    req.headers.push_back({kRequestIdHeader, std::to_string(p.rid)});
    loop_.cancel(p.timeout_timer);
    Pending* owner = &p;
    p.timeout_timer = loop_.schedule_in(config_.request_timeout,
                                        [this, owner] { on_timeout(owner); });
  }
  emit_http("request", p.attempt, 0.0, p.span);
  endpoint_.send(req.to_wire(), p.span);
}

void HttpClient::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (!telemetry_) {
    timeouts_counter_ = Counter{};
    retries_counter_ = Counter{};
    return;
  }
  MetricsRegistry& m = telemetry_->metrics();
  timeouts_counter_ = m.counter("http.timeouts");
  retries_counter_ = m.counter("http.retries");
}

void HttpClient::emit_http(const char* event, int attempt, double value,
                           SpanId span) {
  if (!telemetry_ || !telemetry_->tracing()) return;
  TraceRecord r;
  r.at = loop_.now();
  r.type = TraceType::kHttp;
  r.label = event;
  r.level = attempt;
  r.value = value;
  // Stamp the owning transfer's span explicitly: with pipelining (and
  // even sequentially, for a retry timer firing between chunks) the
  // ambient active span need not be this request's.
  r.span = span;
  telemetry_->emit(r);
}

void HttpClient::on_timeout(Pending* p) {
  p->timeout_timer = EventId{};
  ++timeouts_;
  if (telemetry_) timeouts_counter_.increment();
  emit_http("timeout", p->attempt, to_seconds(config_.request_timeout),
            p->span);
  if (p->attempt >= config_.max_retries) {
    complete_with_error(iter_of(p), TransferError::kTimeout);
    return;
  }
  // Back off before the resend: if the response is merely late (not
  // lost), the stale-id discard path absorbs it when it lands.
  const Duration delay = backoff_delay(p->attempt);
  ++p->attempt;
  ++retries_sent_;
  if (telemetry_) retries_counter_.increment();
  emit_http("retry", p->attempt, to_seconds(delay), p->span);
  p->retry_timer = loop_.schedule_in(delay, [this, p] {
    p->retry_timer = EventId{};
    send_attempt(*p);
  });
}

Duration HttpClient::backoff_delay(int attempt) {
  const double factor = std::pow(config_.backoff_factor, attempt);
  // Deterministic jitter: scale by [1, 1.25) so synchronized clients
  // (e.g. a fleet of chaos runs) don't retry in lockstep. backoff_cap
  // bounds the final, post-jitter delay.
  const double jitter = 1.0 + 0.25 * jitter_rng_.uniform();
  const double raw =
      static_cast<double>(config_.backoff_base.count()) * factor * jitter;
  const double capped =
      std::min(raw, static_cast<double>(config_.backoff_cap.count()));
  return Duration(static_cast<Duration::rep>(capped));
}

void HttpClient::complete_with_error(PendingList::iterator it,
                                     TransferError error) {
  Pending& p = *it;
  loop_.cancel(p.timeout_timer);
  loop_.cancel(p.retry_timer);
  p.timeout_timer = EventId{};
  p.retry_timer = EventId{};
  emit_http("giveup", p.attempt, static_cast<double>(error), p.span);
  p.transfer.completed = loop_.now();
  p.transfer.retries = p.attempt;
  p.transfer.error = error;
  // A timed-out request may still be answered later; that response now
  // belongs to no transfer and must be dropped when it arrives (its rid
  // matches no live entry once this one leaves the list).
  p.rid = 0;
  if (receiving_ == &p) receiving_ = nullptr;
  const bool was_sent = p.sent;
  Pending done = std::move(p);
  pending_.erase(it);
  if (was_sent) --inflight_;
  maybe_send_next();
  if (done.on_done) done.on_done(done.transfer);
}

HttpClient::PendingList::iterator HttpClient::iter_of(Pending* p) {
  return std::find_if(pending_.begin(), pending_.end(),
                      [p](const Pending& q) { return &q == p; });
}

void HttpClient::on_stream_data(const WireData& data) { parser_.consume(data); }

}  // namespace mpdash
