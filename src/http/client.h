#pragma once
// Sequential HTTP/1.1 client over an MPTCP endpoint: one request in
// flight at a time (DASH players fetch chunks back to back). Completion
// callbacks carry the parsed response, any real body bytes (manifests),
// and transfer timing.
//
// Optional robustness layer (HttpClientConfig::request_timeout > 0): each
// request is watched by a timer; on expiry it is retried with capped
// exponential backoff and deterministic jitter, up to a bounded retry
// budget, after which the transfer completes with a typed error. Retried
// requests carry a monotonically increasing id header the server echoes,
// so a late response to an abandoned attempt is recognized and discarded
// instead of desynchronizing response framing.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "http/message.h"
#include "http/parser.h"
#include "mptcp/endpoint.h"
#include "sim/event_loop.h"
#include "util/rng.h"

namespace mpdash {

// Echoed request-id header (only present when the retry layer is active,
// so default runs stay byte-identical with the seed wire format).
inline constexpr const char kRequestIdHeader[] = "X-Mpdash-Rid";

enum class TransferError {
  kNone = 0,
  kTimeout,      // retry budget exhausted
  kParseError,   // response stream malformed beyond recovery
  kAborted,      // client shut down with the transfer pending
};

const char* to_string(TransferError e);

struct HttpTransfer {
  HttpResponse response;
  std::string body;       // real body bytes only (virtual bytes omitted)
  Bytes body_bytes = 0;   // total body bytes, real + virtual
  TimePoint request_sent = kTimeZero;
  TimePoint head_received = kTimeZero;
  TimePoint completed = kTimeZero;
  TransferError error = TransferError::kNone;
  int retries = 0;        // resends beyond the first attempt

  bool ok() const { return error == TransferError::kNone; }
  Duration download_time() const { return completed - request_sent; }
  DataRate goodput() const { return rate_of(body_bytes, download_time()); }
};

struct HttpClientConfig {
  // Per-attempt response deadline. Zero disables the whole robustness
  // layer (seed behavior: wait forever, no id header on the wire).
  Duration request_timeout = kDurationZero;
  int max_retries = 3;  // resends after the first attempt
  Duration backoff_base = milliseconds(250);
  double backoff_factor = 2.0;
  Duration backoff_cap = seconds(4.0);
  // Deterministic jitter stream: each backoff is scaled by a uniform
  // factor in [1, 1.25) drawn from this seed.
  std::uint64_t jitter_seed = 0;
};

class HttpClient {
 public:
  using CompletionHandler = std::function<void(const HttpTransfer&)>;
  using ProgressHandler = std::function<void(Bytes received, Bytes total)>;

  // Installs itself as the endpoint's receive handler.
  HttpClient(EventLoop& loop, MptcpEndpoint& endpoint,
             HttpClientConfig config = {});
  ~HttpClient();

  // Enqueues a GET. `on_done` fires when the full body has arrived — or,
  // with the retry layer active, when the retry budget is exhausted
  // (transfer.error != kNone, response fields undefined).
  void get(std::string target, CompletionHandler on_done,
           ProgressHandler on_progress = nullptr);

  std::size_t outstanding() const { return pending_.size(); }
  bool busy() const { return in_flight_; }
  std::size_t timeouts() const { return timeouts_; }
  std::size_t retries_sent() const { return retries_sent_; }
  const HttpClientConfig& config() const { return config_; }

  // Registers `http.*` counters and emits kHttp lifecycle records
  // (request/timeout/retry/response/giveup). nullptr detaches.
  void set_telemetry(Telemetry* telemetry);

 private:
  struct Pending {
    std::string target;
    CompletionHandler on_done;
    ProgressHandler on_progress;
  };

  void maybe_send_next();
  void send_attempt();
  void on_stream_data(const WireData& data);
  void on_timeout();
  void complete_with_error(TransferError error);
  Duration backoff_delay(int attempt);
  void emit_http(const char* event, int attempt, double value);

  EventLoop& loop_;
  MptcpEndpoint& endpoint_;
  HttpClientConfig config_;
  HttpStreamParser parser_;
  std::deque<Pending> pending_;
  bool in_flight_ = false;
  bool parser_dead_ = false;  // response stream poisoned; fail everything
  HttpTransfer current_;

  // retry state for the in-flight request
  std::uint64_t next_rid_ = 1;     // id stamped on the next attempt
  std::uint64_t expected_rid_ = 0; // id the current attempt awaits
  bool discarding_stale_ = false;  // response matches an abandoned attempt
  int attempt_ = 0;                // 0 = first send
  EventId timeout_timer_;
  EventId retry_timer_;
  Rng jitter_rng_;
  std::size_t timeouts_ = 0;
  std::size_t retries_sent_ = 0;

  Telemetry* telemetry_ = nullptr;
  Counter timeouts_counter_;
  Counter retries_counter_;
};

}  // namespace mpdash
