#pragma once
// Sequential HTTP/1.1 client over an MPTCP endpoint: one request in
// flight at a time (DASH players fetch chunks back to back). Completion
// callbacks carry the parsed response, any real body bytes (manifests),
// and transfer timing.

#include <deque>
#include <functional>
#include <string>

#include "http/message.h"
#include "http/parser.h"
#include "mptcp/endpoint.h"
#include "sim/event_loop.h"

namespace mpdash {

struct HttpTransfer {
  HttpResponse response;
  std::string body;       // real body bytes only (virtual bytes omitted)
  Bytes body_bytes = 0;   // total body bytes, real + virtual
  TimePoint request_sent = kTimeZero;
  TimePoint head_received = kTimeZero;
  TimePoint completed = kTimeZero;

  Duration download_time() const { return completed - request_sent; }
  DataRate goodput() const { return rate_of(body_bytes, download_time()); }
};

class HttpClient {
 public:
  using CompletionHandler = std::function<void(const HttpTransfer&)>;
  using ProgressHandler = std::function<void(Bytes received, Bytes total)>;

  // Installs itself as the endpoint's receive handler.
  HttpClient(EventLoop& loop, MptcpEndpoint& endpoint);

  // Enqueues a GET. `on_done` fires when the full body has arrived.
  void get(std::string target, CompletionHandler on_done,
           ProgressHandler on_progress = nullptr);

  std::size_t outstanding() const { return pending_.size(); }
  bool busy() const { return in_flight_; }

 private:
  struct Pending {
    std::string target;
    CompletionHandler on_done;
    ProgressHandler on_progress;
  };

  void maybe_send_next();
  void on_stream_data(const WireData& data);

  EventLoop& loop_;
  MptcpEndpoint& endpoint_;
  HttpStreamParser parser_;
  std::deque<Pending> pending_;
  bool in_flight_ = false;
  HttpTransfer current_;
};

}  // namespace mpdash
