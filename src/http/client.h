#pragma once
// Pipelined HTTP/1.1 client over an MPTCP endpoint. By default one
// request is in flight at a time (seed behavior: DASH players fetch
// chunks back to back); HttpClientConfig::max_pipeline > 1 lets up to N
// requests share the persistent connection, each carrying its own causal
// span so interleaved transfers stay attributable end to end. Completion
// callbacks carry the parsed response, any real body bytes (manifests),
// and transfer timing; with pipelining they can fire out of request
// order when retries reshuffle responses.
//
// Optional robustness layer (HttpClientConfig::request_timeout > 0): each
// request is watched by its own timer; on expiry it is retried with
// capped exponential backoff and deterministic jitter, up to a bounded
// per-request retry budget, after which the transfer completes with a
// typed error. Retried requests carry a monotonically increasing id
// header the server echoes; responses are matched to their owning
// request by that id, so a late response to an abandoned attempt is
// recognized and discarded instead of desynchronizing response framing.

#include <cstdint>
#include <functional>
#include <list>
#include <string>

#include "http/message.h"
#include "http/parser.h"
#include "mptcp/endpoint.h"
#include "sim/event_loop.h"
#include "util/rng.h"

namespace mpdash {

// Echoed request-id header (only present when the retry layer is active,
// so default runs stay byte-identical with the seed wire format).
inline constexpr const char kRequestIdHeader[] = "X-Mpdash-Rid";

enum class TransferError {
  kNone = 0,
  kTimeout,      // retry budget exhausted
  kParseError,   // response stream malformed beyond recovery
  kAborted,      // client shut down with the transfer pending
};

const char* to_string(TransferError e);

struct HttpTransfer {
  HttpResponse response;
  std::string body;       // real body bytes only (virtual bytes omitted)
  Bytes body_bytes = 0;   // total body bytes, real + virtual
  TimePoint request_sent = kTimeZero;
  TimePoint head_received = kTimeZero;
  TimePoint completed = kTimeZero;
  TransferError error = TransferError::kNone;
  int retries = 0;        // resends beyond the first attempt

  bool ok() const { return error == TransferError::kNone; }
  Duration download_time() const { return completed - request_sent; }
  DataRate goodput() const { return rate_of(body_bytes, download_time()); }
};

struct HttpClientConfig {
  // Per-attempt response deadline. Zero disables the whole robustness
  // layer (seed behavior: wait forever, no id header on the wire).
  Duration request_timeout = kDurationZero;
  int max_retries = 3;  // resends after the first attempt
  Duration backoff_base = milliseconds(250);
  double backoff_factor = 2.0;
  Duration backoff_cap = seconds(4.0);
  // Deterministic jitter stream: each backoff is scaled by a uniform
  // factor in [1, 1.25) drawn from this seed.
  std::uint64_t jitter_seed = 0;
  // Maximum requests in flight on the persistent connection. 1 = strict
  // sequential (seed behavior); a pipelined player raises it to its
  // chunk lookahead so prefetch requests actually reach the wire.
  int max_pipeline = 1;
};

class HttpClient {
 public:
  using CompletionHandler = std::function<void(const HttpTransfer&)>;
  using ProgressHandler = std::function<void(Bytes received, Bytes total)>;

  // Installs itself as the endpoint's receive handler.
  HttpClient(EventLoop& loop, MptcpEndpoint& endpoint,
             HttpClientConfig config = {});
  ~HttpClient();

  // Enqueues a GET. `on_done` fires when the full body has arrived — or,
  // with the retry layer active, when the retry budget is exhausted
  // (transfer.error != kNone, response fields undefined). A nonzero
  // `span` stamps the request's wire segments and every kHttp record for
  // this transfer with the owning chunk span (0 = legacy ambient
  // stamping, seed behavior).
  void get(std::string target, CompletionHandler on_done,
           ProgressHandler on_progress = nullptr, SpanId span = 0);

  std::size_t outstanding() const { return pending_.size(); }
  std::size_t inflight() const { return inflight_; }
  bool busy() const { return inflight_ > 0; }
  std::size_t timeouts() const { return timeouts_; }
  std::size_t retries_sent() const { return retries_sent_; }
  const HttpClientConfig& config() const { return config_; }

  // Registers `http.*` counters and emits kHttp lifecycle records
  // (request/timeout/retry/response/giveup). nullptr detaches.
  void set_telemetry(Telemetry* telemetry);

 private:
  struct Pending {
    std::string target;
    CompletionHandler on_done;
    ProgressHandler on_progress;
    SpanId span = 0;
    bool sent = false;         // request bytes are on the wire
    int attempt = 0;           // 0 = first send
    std::uint64_t rid = 0;     // id the current attempt awaits
    HttpTransfer transfer;
    EventId timeout_timer;
    EventId retry_timer;
  };
  // std::list: stable node addresses for timer lambdas and the receiving
  // pointer across queue/completion churn, plus mid-list erase for
  // out-of-order completions.
  using PendingList = std::list<Pending>;

  void maybe_send_next();
  void send_attempt(Pending& p);
  void on_stream_data(const WireData& data);
  void on_timeout(Pending* p);
  void complete_with_error(PendingList::iterator it, TransferError error);
  PendingList::iterator iter_of(Pending* p);
  Duration backoff_delay(int attempt);
  void emit_http(const char* event, int attempt, double value, SpanId span);

  EventLoop& loop_;
  MptcpEndpoint& endpoint_;
  HttpClientConfig config_;
  HttpStreamParser parser_;
  PendingList pending_;            // sent entries first, then queued
  std::size_t inflight_ = 0;       // entries with sent == true
  bool parser_dead_ = false;  // response stream poisoned; fail everything
  Pending* receiving_ = nullptr;  // entry the parser is mid-message on
  bool discarding_stale_ = false;  // response matches an abandoned attempt

  std::uint64_t next_rid_ = 1;     // id stamped on the next attempt
  Rng jitter_rng_;
  std::size_t timeouts_ = 0;
  std::size_t retries_sent_ = 0;

  Telemetry* telemetry_ = nullptr;
  Counter timeouts_counter_;
  Counter retries_counter_;
};

}  // namespace mpdash
