#include "http/message.h"

#include <cctype>

namespace mpdash {

bool header_name_equals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

namespace {

std::optional<std::string> find_header(const std::vector<HttpHeader>& headers,
                                       const std::string& name) {
  for (const auto& h : headers) {
    if (header_name_equals(h.name, name)) return h.value;
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::string> HttpRequest::header(const std::string& name) const {
  return find_header(headers, name);
}

std::string HttpRequest::serialize() const {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  for (const auto& h : headers) out += h.name + ": " + h.value + "\r\n";
  out += "\r\n";
  return out;
}

WireData HttpRequest::to_wire() const { return wire_from_string(serialize()); }

std::optional<std::string> HttpResponse::header(const std::string& name) const {
  return find_header(headers, name);
}

Bytes HttpResponse::content_length() const {
  return body.empty() ? body_len : static_cast<Bytes>(body.size());
}

std::string HttpResponse::serialize_head() const {
  std::string out =
      "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  for (const auto& h : headers) out += h.name + ": " + h.value + "\r\n";
  out += "Content-Length: " + std::to_string(content_length()) + "\r\n\r\n";
  return out;
}

WireData HttpResponse::to_wire() const {
  WireData wire = wire_from_string(serialize_head());
  if (!body.empty()) {
    wire_append(wire, wire_from_string(body));
  } else if (body_len > 0) {
    wire_append(wire, wire_virtual(body_len));
  }
  return wire;
}

}  // namespace mpdash
