#pragma once
// Minimal HTTP/1.1 message model: what a DASH exchange needs (GET with a
// path, response with status + Content-Length body) plus arbitrary
// headers. Serialization produces the real header bytes that travel on the
// wire and that the cross-layer analysis tool parses back.

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mptcp/wire_data.h"

namespace mpdash {

struct HttpHeader {
  std::string name;
  std::string value;
};

struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::vector<HttpHeader> headers;

  // Case-insensitive lookup; first match.
  std::optional<std::string> header(const std::string& name) const;

  // Full request bytes (requests have no body in this model).
  std::string serialize() const;
  WireData to_wire() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<HttpHeader> headers;  // Content-Length appended automatically
  Bytes body_len = 0;               // virtual body bytes
  std::string body;                 // real body bytes (manifests); exclusive
                                    // with body_len

  std::optional<std::string> header(const std::string& name) const;
  Bytes content_length() const;

  std::string serialize_head() const;
  WireData to_wire() const;
};

// Case-insensitive ASCII comparison for header names.
bool header_name_equals(const std::string& a, const std::string& b);

}  // namespace mpdash
