#include "http/parser.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

namespace mpdash {
namespace {

constexpr const char kHeadEnd[] = "\r\n\r\n";

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find("\r\n", pos);
    if (eol == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, eol - pos));
    pos = eol + 2;
  }
  return lines;
}

// Strict non-negative decimal; std::atoll would silently accept garbage
// ("12abc") and overflow is UB — a hostile Content-Length must surface as
// a typed error, not a corrupted body size.
bool parse_content_length(const std::string& value, Bytes* out) {
  if (value.empty() || value.size() > 18) return false;
  Bytes n = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') return false;
    n = n * 10 + (c - '0');
  }
  *out = n;
  return true;
}

}  // namespace

const char* to_string(HttpParseError e) {
  switch (e) {
    case HttpParseError::kNone: return "none";
    case HttpParseError::kVirtualBytesInHead: return "virtual-bytes-in-head";
    case HttpParseError::kMalformedStartLine: return "malformed-start-line";
    case HttpParseError::kMalformedHeader: return "malformed-header";
    case HttpParseError::kEmptyHead: return "empty-head";
    case HttpParseError::kBadContentLength: return "bad-content-length";
  }
  return "unknown";
}

HttpStreamParser::HttpStreamParser(Mode mode, Callbacks callbacks)
    : mode_(mode), cb_(std::move(callbacks)) {}

void HttpStreamParser::fail(HttpParseError e, const std::string& detail) {
  state_ = State::kError;
  error_ = e;
  head_buf_.clear();
  body_remaining_ = 0;
  if (cb_.on_error) cb_.on_error(e, detail);
}

void HttpStreamParser::consume(const WireData& data) {
  if (state_ == State::kError) return;  // poisoned: framing is gone
  for (const auto& seg : data) {
    std::size_t seg_pos = 0;
    while (seg_pos < seg.len) {
      if (state_ == State::kError) return;
      if (state_ == State::kHead) {
        if (seg.is_virtual()) {
          fail(HttpParseError::kVirtualBytesInHead,
               "virtual bytes inside HTTP head");
          return;
        }
        // Append up to the head terminator, searching across the boundary.
        const std::size_t prev = head_buf_.size();
        head_buf_.append(*seg.real, seg.offset + seg_pos, seg.len - seg_pos);
        const std::size_t search_from = prev >= 3 ? prev - 3 : 0;
        const std::size_t end = head_buf_.find(kHeadEnd, search_from);
        if (end == std::string::npos) {
          seg_pos = seg.len;  // whole segment consumed into the head
          continue;
        }
        // Bytes of this segment actually belonging to the head:
        const std::size_t head_total = end + 4;
        const std::size_t consumed_from_seg = head_total - prev;
        seg_pos += consumed_from_seg;
        head_buf_.resize(head_total);
        parse_head(head_buf_);
        head_buf_.clear();
        if (state_ != State::kError && body_remaining_ == 0) finish_message();
      } else {
        const Bytes avail = static_cast<Bytes>(seg.len - seg_pos);
        const Bytes take = std::min(body_remaining_, avail);
        if (cb_.on_body) {
          std::string real;
          if (!seg.is_virtual()) {
            real.assign(*seg.real, seg.offset + seg_pos,
                        static_cast<std::size_t>(take));
          }
          cb_.on_body(take, real);
        }
        body_remaining_ -= take;
        seg_pos += static_cast<std::size_t>(take);
        if (body_remaining_ == 0) finish_message();
      }
    }
  }
}

void HttpStreamParser::parse_head(const std::string& head) {
  // Strip the trailing blank line before splitting.
  const std::string text = head.substr(0, head.size() - 2);
  const std::vector<std::string> lines = split_lines(text);
  if (lines.empty()) {
    fail(HttpParseError::kEmptyHead, "empty HTTP head");
    return;
  }

  if (mode_ == Mode::kRequests) {
    HttpRequest req;
    const std::string& start = lines[0];
    const std::size_t sp1 = start.find(' ');
    const std::size_t sp2 = start.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      fail(HttpParseError::kMalformedStartLine,
           "malformed request line: " + start);
      return;
    }
    req.method = start.substr(0, sp1);
    req.target = start.substr(sp1 + 1, sp2 - sp1 - 1);
    for (std::size_t i = 1; i < lines.size(); ++i) {
      if (lines[i].empty()) continue;
      const std::size_t colon = lines[i].find(':');
      if (colon == std::string::npos) {
        fail(HttpParseError::kMalformedHeader,
             "malformed header line: " + lines[i]);
        return;
      }
      std::size_t vstart = colon + 1;
      while (vstart < lines[i].size() && lines[i][vstart] == ' ') ++vstart;
      req.headers.push_back(
          {lines[i].substr(0, colon), lines[i].substr(vstart)});
    }
    body_remaining_ = 0;  // requests carry no body in this model
    state_ = State::kBody;
    if (cb_.on_request) cb_.on_request(req);
  } else {
    HttpResponse resp;
    const std::string& start = lines[0];
    if (start.rfind("HTTP/1.1 ", 0) != 0 || start.size() < 12) {
      fail(HttpParseError::kMalformedStartLine,
           "malformed status line: " + start);
      return;
    }
    resp.status = std::atoi(start.c_str() + 9);
    const std::size_t sp = start.find(' ', 9);
    resp.reason = sp == std::string::npos ? "" : start.substr(sp + 1);
    Bytes content_length = 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
      if (lines[i].empty()) continue;
      const std::size_t colon = lines[i].find(':');
      if (colon == std::string::npos) {
        fail(HttpParseError::kMalformedHeader,
             "malformed header line: " + lines[i]);
        return;
      }
      std::size_t vstart = colon + 1;
      while (vstart < lines[i].size() && lines[i][vstart] == ' ') ++vstart;
      HttpHeader h{lines[i].substr(0, colon), lines[i].substr(vstart)};
      if (header_name_equals(h.name, "Content-Length")) {
        if (!parse_content_length(h.value, &content_length)) {
          fail(HttpParseError::kBadContentLength,
               "bad Content-Length: " + h.value);
          return;
        }
      }
      resp.headers.push_back(std::move(h));
    }
    resp.body_len = content_length;
    body_remaining_ = content_length;
    state_ = State::kBody;
    if (cb_.on_response_head) cb_.on_response_head(resp);
  }
}

void HttpStreamParser::finish_message() {
  state_ = State::kHead;
  body_remaining_ = 0;
  ++completed_;
  if (cb_.on_message_complete) cb_.on_message_complete();
}

}  // namespace mpdash
