#pragma once
// Incremental HTTP/1.1 stream parser.
//
// Consumes the in-order MPTCP byte stream (WireData chunks) and emits
// message events. Heads must be real bytes; bodies may be virtual (video
// payload) or real (manifests). Used by the client and server transports
// and — on recorded packet payloads — by the cross-layer analysis tool.

#include <functional>
#include <string>

#include "http/message.h"
#include "mptcp/wire_data.h"

namespace mpdash {

class HttpStreamParser {
 public:
  enum class Mode { kRequests, kResponses };

  struct Callbacks {
    // Exactly one of these fires per message head, matching the mode.
    std::function<void(const HttpRequest&)> on_request;
    std::function<void(const HttpResponse&)> on_response_head;
    // Body progress: `count` bytes arrived, of which `real` holds any
    // actual content (manifest text); may fire many times per message.
    std::function<void(Bytes count, const std::string& real)> on_body;
    std::function<void()> on_message_complete;
  };

  HttpStreamParser(Mode mode, Callbacks callbacks);

  // Feeds the next in-order stream chunk. Throws std::runtime_error on
  // malformed heads (virtual bytes inside a head, bad start line).
  void consume(const WireData& data);

  bool mid_message() const { return state_ != State::kHead || !head_buf_.empty(); }
  std::size_t messages_completed() const { return completed_; }

 private:
  enum class State { kHead, kBody };

  void parse_head(const std::string& head);
  void finish_message();

  Mode mode_;
  Callbacks cb_;
  State state_ = State::kHead;
  std::string head_buf_;
  Bytes body_remaining_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace mpdash
