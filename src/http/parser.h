#pragma once
// Incremental HTTP/1.1 stream parser.
//
// Consumes the in-order MPTCP byte stream (WireData chunks) and emits
// message events. Heads must be real bytes; bodies may be virtual (video
// payload) or real (manifests). Used by the client and server transports
// and — on recorded packet payloads — by the cross-layer analysis tool.

#include <functional>
#include <string>

#include "http/message.h"
#include "mptcp/wire_data.h"

namespace mpdash {

// What went wrong with an HTTP byte stream. Framing on a raw stream is
// unrecoverable after any of these: the parser latches the error and
// ignores further input ("poisoned") instead of silently waiting for a
// head terminator that will never parse.
enum class HttpParseError {
  kNone = 0,
  kVirtualBytesInHead,   // simulated payload bytes where a head must be
  kMalformedStartLine,   // bad request/status line
  kMalformedHeader,      // header line without a colon
  kEmptyHead,            // head terminator with no content
  kBadContentLength,     // non-numeric or negative Content-Length
};

const char* to_string(HttpParseError e);

class HttpStreamParser {
 public:
  enum class Mode { kRequests, kResponses };

  struct Callbacks {
    // Exactly one of these fires per message head, matching the mode.
    std::function<void(const HttpRequest&)> on_request;
    std::function<void(const HttpResponse&)> on_response_head;
    // Body progress: `count` bytes arrived, of which `real` holds any
    // actual content (manifest text); may fire many times per message.
    std::function<void(Bytes count, const std::string& real)> on_body;
    std::function<void()> on_message_complete;
    // Fires once, when the stream first turns out to be malformed.
    std::function<void(HttpParseError, const std::string& detail)> on_error;
  };

  HttpStreamParser(Mode mode, Callbacks callbacks);

  // Feeds the next in-order stream chunk. On malformed input the parser
  // reports through on_error (once) and discards everything from then on;
  // it never throws.
  void consume(const WireData& data);

  bool mid_message() const { return state_ != State::kHead || !head_buf_.empty(); }
  std::size_t messages_completed() const { return completed_; }
  HttpParseError error() const { return error_; }
  bool ok() const { return error_ == HttpParseError::kNone; }

 private:
  enum class State { kHead, kBody, kError };

  void parse_head(const std::string& head);
  void finish_message();
  void fail(HttpParseError e, const std::string& detail);

  Mode mode_;
  Callbacks cb_;
  State state_ = State::kHead;
  std::string head_buf_;
  Bytes body_remaining_ = 0;
  std::size_t completed_ = 0;
  HttpParseError error_ = HttpParseError::kNone;
};

}  // namespace mpdash
