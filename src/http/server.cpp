#include "http/server.h"

#include <utility>

#include "http/client.h"  // kRequestIdHeader

namespace mpdash {

HttpServer::HttpServer(MptcpEndpoint& endpoint, Handler handler)
    : endpoint_(endpoint),
      handler_(std::move(handler)),
      parser_(HttpStreamParser::Mode::kRequests,
              HttpStreamParser::Callbacks{
                  .on_request =
                      [this](const HttpRequest& req) { on_request(req); },
                  .on_response_head = nullptr,
                  .on_body = nullptr,
                  .on_message_complete = nullptr,
                  .on_error = nullptr}) {
  endpoint_.set_receive_handler([this](const WireData& data) {
    // Feed segment-by-segment so on_request sees the span of the bytes
    // that formed the request (parsing is fragmentation-independent, so
    // results are identical to feeding the whole batch at once).
    for (const SegmentRef& seg : data) {
      rx_span_ = seg.span;
      parser_.consume(WireData{seg});
    }
    rx_span_ = 0;
  });
}

void HttpServer::on_request(const HttpRequest& req) {
  if (dropping_) {
    ++dropped_;
    return;
  }
  HttpResponse resp = handler_(req);
  // Clients running the retry layer stamp each attempt with an id; echo
  // it so they can tell a live response from a stale one. Costs wire
  // bytes only when the client opted in.
  if (const auto rid = req.header(kRequestIdHeader)) {
    resp.headers.push_back({kRequestIdHeader, *rid});
  }
  ++served_;
  if (stalled_) {
    stalled_responses_.push_back({resp.to_wire(), rx_span_});
    return;
  }
  endpoint_.send(resp.to_wire(), rx_span_);
}

void HttpServer::set_stalled(bool stalled) {
  stalled_ = stalled;
  if (stalled_) return;
  while (!stalled_responses_.empty()) {
    StalledResponse& r = stalled_responses_.front();
    endpoint_.send(std::move(r.wire), r.span);
    stalled_responses_.pop_front();
  }
}

HttpResponse not_found() {
  HttpResponse resp;
  resp.status = 404;
  resp.reason = "Not Found";
  resp.body = "not found";
  return resp;
}

}  // namespace mpdash
