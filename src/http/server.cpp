#include "http/server.h"

#include <utility>

#include "http/client.h"  // kRequestIdHeader

namespace mpdash {

HttpServer::HttpServer(MptcpEndpoint& endpoint, Handler handler)
    : endpoint_(endpoint),
      handler_(std::move(handler)),
      parser_(HttpStreamParser::Mode::kRequests,
              HttpStreamParser::Callbacks{
                  .on_request =
                      [this](const HttpRequest& req) { on_request(req); },
                  .on_response_head = nullptr,
                  .on_body = nullptr,
                  .on_message_complete = nullptr,
                  .on_error = nullptr}) {
  endpoint_.set_receive_handler(
      [this](const WireData& data) { parser_.consume(data); });
}

void HttpServer::on_request(const HttpRequest& req) {
  if (dropping_) {
    ++dropped_;
    return;
  }
  HttpResponse resp = handler_(req);
  // Clients running the retry layer stamp each attempt with an id; echo
  // it so they can tell a live response from a stale one. Costs wire
  // bytes only when the client opted in.
  if (const auto rid = req.header(kRequestIdHeader)) {
    resp.headers.push_back({kRequestIdHeader, *rid});
  }
  ++served_;
  if (stalled_) {
    stalled_responses_.push_back(resp.to_wire());
    return;
  }
  endpoint_.send(resp.to_wire());
}

void HttpServer::set_stalled(bool stalled) {
  stalled_ = stalled;
  if (stalled_) return;
  while (!stalled_responses_.empty()) {
    endpoint_.send(std::move(stalled_responses_.front()));
    stalled_responses_.pop_front();
  }
}

HttpResponse not_found() {
  HttpResponse resp;
  resp.status = 404;
  resp.reason = "Not Found";
  resp.body = "not found";
  return resp;
}

}  // namespace mpdash
