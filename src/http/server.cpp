#include "http/server.h"

#include <utility>

namespace mpdash {

HttpServer::HttpServer(MptcpEndpoint& endpoint, Handler handler)
    : endpoint_(endpoint),
      handler_(std::move(handler)),
      parser_(HttpStreamParser::Mode::kRequests,
              HttpStreamParser::Callbacks{
                  .on_request =
                      [this](const HttpRequest& req) {
                        HttpResponse resp = handler_(req);
                        ++served_;
                        endpoint_.send(resp.to_wire());
                      },
                  .on_response_head = nullptr,
                  .on_body = nullptr,
                  .on_message_complete = nullptr}) {
  endpoint_.set_receive_handler(
      [this](const WireData& data) { parser_.consume(data); });
}

HttpResponse not_found() {
  HttpResponse resp;
  resp.status = 404;
  resp.reason = "Not Found";
  resp.body = "not found";
  return resp;
}

}  // namespace mpdash
