#pragma once
// HTTP/1.1 server engine over an MPTCP endpoint: parses the request
// stream and writes handler-produced responses back in order. The video
// server application stays untouched by MP-DASH, exactly as the paper's
// deployment story requires — path control arrives via the transport.
//
// Fault hooks (driven by src/fault): a stalled server holds finished
// responses until released; a dropping server discards requests outright,
// modeling a reset/overloaded origin the client can only recover from by
// timing out and retrying.

#include <deque>
#include <functional>

#include "http/message.h"
#include "http/parser.h"
#include "mptcp/endpoint.h"

namespace mpdash {

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // Installs itself as the endpoint's receive handler.
  HttpServer(MptcpEndpoint& endpoint, Handler handler);

  std::size_t requests_served() const { return served_; }
  std::size_t requests_dropped() const { return dropped_; }
  HttpParseError parse_error() const { return parser_.error(); }

  // --- fault hooks -----------------------------------------------------
  // Stalled: requests are still parsed and handled, but responses queue
  // up server-side; clearing the stall flushes them in order.
  void set_stalled(bool stalled);
  bool stalled() const { return stalled_; }
  // Dropping: requests are consumed off the stream and thrown away. The
  // client never hears back for these.
  void set_dropping(bool dropping) { dropping_ = dropping; }
  bool dropping() const { return dropping_; }

 private:
  void on_request(const HttpRequest& req);

  MptcpEndpoint& endpoint_;
  Handler handler_;
  HttpStreamParser parser_;
  std::size_t served_ = 0;
  std::size_t dropped_ = 0;
  bool stalled_ = false;
  bool dropping_ = false;
  // Span carried by the request bytes currently being fed to the parser.
  // Pipelined clients tag each request's segments with its span; a
  // request's bytes are a contiguous single-span run, so feeding the
  // parser one segment at a time makes on_request fire while rx_span_
  // still holds the owning request's span — even when two pipelined
  // requests share one packet.
  SpanId rx_span_ = 0;
  struct StalledResponse {
    WireData wire;
    SpanId span = 0;
  };
  std::deque<StalledResponse> stalled_responses_;
};

// Convenience 404.
HttpResponse not_found();

}  // namespace mpdash
