#pragma once
// HTTP/1.1 server engine over an MPTCP endpoint: parses the request
// stream and writes handler-produced responses back in order. The video
// server application stays untouched by MP-DASH, exactly as the paper's
// deployment story requires — path control arrives via the transport.

#include <functional>

#include "http/message.h"
#include "http/parser.h"
#include "mptcp/endpoint.h"

namespace mpdash {

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // Installs itself as the endpoint's receive handler.
  HttpServer(MptcpEndpoint& endpoint, Handler handler);

  std::size_t requests_served() const { return served_; }

 private:
  MptcpEndpoint& endpoint_;
  Handler handler_;
  HttpStreamParser parser_;
  std::size_t served_ = 0;
};

// Convenience 404.
HttpResponse not_found();

}  // namespace mpdash
