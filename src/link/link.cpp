#include "link/link.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace mpdash {

Link::Link(EventLoop& loop, LinkConfig config)
    : loop_(loop), config_(std::move(config)), rng_(config_.loss_seed) {
  if (config_.name.empty()) {
    config_.name = "link" + std::to_string(config_.id);
  }
  if (config_.ge_loss) ge_.emplace(*config_.ge_loss);
  if (config_.fq_quantum < 1) config_.fq_quantum = 1;
  track_flows_ = config_.discipline == QueueDiscipline::kFairQueue;
}

void Link::set_flow_deliver(int flow, DeliverHandler h) {
  track_flows_ = true;
  flow_deliver_[flow] = std::move(h);
}

Bytes Link::delivered_bytes_for_flow(int flow) const {
  auto it = flow_delivered_.find(flow);
  return it == flow_delivered_.end() ? 0 : it->second;
}

Bytes Link::dropped_bytes_for_flow(int flow) const {
  auto it = flow_dropped_.find(flow);
  return it == flow_dropped_.end() ? 0 : it->second;
}

Bytes Link::queued_bytes_for_flow(int flow) const {
  auto it = flow_queued_.find(flow);
  return it == flow_queued_.end() ? 0 : it->second;
}

void Link::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (!telemetry_) {
    queue_gauge_ = Gauge{};
    delivered_bytes_counter_ = Counter{};
    delivered_packets_counter_ = Counter{};
    dropped_packets_counter_ = Counter{};
    return;
  }
  MetricsRegistry& m = telemetry_->metrics();
  const std::string prefix = "link." + config_.name;
  queue_gauge_ = m.gauge(prefix + ".queue_bytes");
  delivered_bytes_counter_ = m.counter(prefix + ".delivered_bytes");
  delivered_packets_counter_ = m.counter(prefix + ".delivered_packets");
  dropped_packets_counter_ = m.counter(prefix + ".dropped_packets");
}

void Link::emit_packet(TraceType type, const Packet& p) const {
  TraceRecord r;
  r.at = loop_.now();
  r.type = type;
  r.span = p.span;
  r.path_id = p.path_id;
  r.link_id = config_.id;
  r.kind = p.kind;
  r.wire_size = p.wire_size;
  r.payload_len = p.payload_len;
  r.data_seq = p.data_seq;
  r.retransmit = p.is_retransmit;
  if (type == TraceType::kPacketDeliver && telemetry_->capture_payload() &&
      p.kind == PacketKind::kData && p.payload_len > 0) {
    r.segments = p.segments;
  }
  telemetry_->emit(r);
}

void Link::drop_packet(const Packet& p) {
  dropped_bytes_ += p.wire_size;
  ++dropped_packets_;
  if (track_flows_) flow_dropped_[p.flow] += p.wire_size;
  if (telemetry_) {
    dropped_packets_counter_.increment();
    if (telemetry_->tracing()) emit_packet(TraceType::kPacketDrop, p);
  }
}

double Link::draw_uniform() {
  return loss_rng_ ? loss_rng_() : rng_.uniform();
}

bool Link::loss_model_drops() {
  // Fixed draw order (i.i.d. first, then the GE pair) so a given seed maps
  // to one loss pattern regardless of which models are active elsewhere.
  bool drop = false;
  if (config_.random_loss > 0.0 && draw_uniform() < config_.random_loss) {
    drop = true;
  }
  if (ge_) {
    const double u_loss = draw_uniform();
    const double u_flip = draw_uniform();
    if (ge_->step(u_loss, u_flip)) drop = true;
  }
  return drop;
}

void Link::send(Packet p) {
  if (telemetry_ && telemetry_->tracing()) {
    emit_packet(TraceType::kPacketSend, p);
  }
  if (config_.discipline == QueueDiscipline::kFairQueue) {
    if (down_ || loss_model_drops()) {
      drop_packet(p);
      return;
    }
    fq_enqueue(std::move(p));
    if (telemetry_) queue_gauge_.set(static_cast<double>(queued_bytes_));
    if (!busy_ && has_backlog()) start_serializing();
    return;
  }
  if (down_ || loss_model_drops() ||
      queued_bytes_ + p.wire_size > config_.queue_capacity) {
    drop_packet(p);
    return;
  }
  queued_bytes_ += p.wire_size;
  if (telemetry_) queue_gauge_.set(static_cast<double>(queued_bytes_));
  queue_.push_back(std::move(p));
  if (!busy_) start_serializing();
}

int Link::fq_victim() const {
  // Flow with the most queued bytes; ties break toward the lowest id so the
  // choice is deterministic.
  int victim = -1;
  Bytes most = 0;
  for (const auto& [flow, bytes] : flow_queued_) {
    if (bytes > most) {
      most = bytes;
      victim = flow;
    }
  }
  return victim;
}

void Link::fq_deactivate(int flow) {
  flow_queues_.erase(flow);
  flow_queued_.erase(flow);
  flow_deficit_.erase(flow);
  if (fq_credited_flow_ == flow) fq_credited_flow_ = -1;
  for (auto it = active_flows_.begin(); it != active_flows_.end(); ++it) {
    if (*it == flow) {
      active_flows_.erase(it);
      break;
    }
  }
}

void Link::fq_enqueue(Packet p) {
  // Longest-queue drop: when the shared buffer is full, the flow holding
  // the most bytes pays, so one aggressive tenant cannot squeeze the rest
  // out of the buffer. If the arriving flow already holds the largest share
  // (or the buffer cannot fit the packet at all), the arrival is the drop.
  while (queued_bytes_ + p.wire_size > config_.queue_capacity) {
    const int victim = fq_victim();
    if (victim < 0 || queued_bytes_for_flow(victim) <=
                          queued_bytes_for_flow(p.flow)) {
      drop_packet(p);
      return;
    }
    auto& q = flow_queues_[victim];
    Packet shed = std::move(q.back());
    q.pop_back();
    queued_bytes_ -= shed.wire_size;
    flow_queued_[victim] -= shed.wire_size;
    if (q.empty()) fq_deactivate(victim);
    drop_packet(shed);
  }
  queued_bytes_ += p.wire_size;
  flow_queued_[p.flow] += p.wire_size;
  auto& q = flow_queues_[p.flow];
  if (q.empty()) {
    active_flows_.push_back(p.flow);
    flow_deficit_[p.flow] = 0;
  }
  q.push_back(std::move(p));
}

Packet Link::fq_dequeue() {
  // Deficit round-robin: each time a flow reaches the head of the active
  // ring it earns one quantum; it sends while its deficit covers the head
  // packet, then rotates to the back keeping the remainder. The credit is
  // per *visit* (`fq_credited_flow_`), never re-added while the flow holds
  // the head — otherwise a backlogged flow with packets smaller than the
  // quantum would top up forever and drain completely before rotating,
  // collapsing DRR into per-burst FIFO. A drained flow forfeits its
  // deficit.
  for (;;) {
    assert(!active_flows_.empty());
    const int flow = active_flows_.front();
    auto& q = flow_queues_[flow];
    assert(!q.empty());
    if (fq_credited_flow_ != flow) {
      flow_deficit_[flow] += config_.fq_quantum;
      fq_credited_flow_ = flow;
    }
    if (flow_deficit_[flow] < q.front().wire_size) {
      // Out of credit this round; the next visit earns a fresh quantum
      // (clearing the marker also lets a lone flow re-credit until it can
      // afford a packet larger than one quantum).
      active_flows_.pop_front();
      active_flows_.push_back(flow);
      fq_credited_flow_ = -1;
      continue;
    }
    Packet p = std::move(q.front());
    q.pop_front();
    flow_deficit_[flow] -= p.wire_size;
    flow_queued_[flow] -= p.wire_size;
    if (q.empty()) fq_deactivate(flow);
    return p;
  }
}

bool Link::has_backlog() const {
  if (serializing_) return true;
  return config_.discipline == QueueDiscipline::kFairQueue
             ? !active_flows_.empty()
             : !queue_.empty();
}

void Link::set_down(bool down) {
  down_ = down;
  if (!down_) return;
  // Everything still waiting behind the radio is lost with it. The packet
  // currently serializing (queue front while busy_, or serializing_ under
  // fair queueing) is dropped when its serialization completes; packets
  // already propagating still arrive.
  if (config_.discipline == QueueDiscipline::kFairQueue) {
    // Deterministic drop order: flows ascending, each front-to-back.
    for (auto& [flow, q] : flow_queues_) {
      for (Packet& p : q) {
        queued_bytes_ -= p.wire_size;
        drop_packet(p);
      }
    }
    flow_queues_.clear();
    flow_queued_.clear();
    flow_deficit_.clear();
    active_flows_.clear();
  } else {
    const std::size_t keep = busy_ ? 1 : 0;
    while (queue_.size() > keep) {
      Packet p = std::move(queue_.back());
      queue_.pop_back();
      queued_bytes_ -= p.wire_size;
      drop_packet(p);
    }
  }
  if (telemetry_) queue_gauge_.set(static_cast<double>(queued_bytes_));
}

void Link::set_rate_factor(double factor) {
  rate_factor_ = factor > 0.0 ? factor : 0.0;
}

void Link::set_ge_loss(const std::optional<GilbertElliottConfig>& ge) {
  config_.ge_loss = ge;
  if (ge) {
    ge_.emplace(*ge);
  } else {
    ge_.reset();
  }
}

void Link::start_serializing() {
  // Under fair queueing the DRR pick is committed here: the packet moves
  // into serializing_ (it still occupies buffer bytes until it leaves the
  // radio). Under FIFO the front of queue_ is the implicit pick.
  if (config_.discipline == QueueDiscipline::kFairQueue && !serializing_) {
    serializing_ = fq_dequeue();
  }
  assert(serializing_ || !queue_.empty());
  busy_ = true;
  const Bytes wire =
      serializing_ ? serializing_->wire_size : queue_.front().wire_size;
  // A factor-f rate scale is equivalent to serializing wire_size/f bytes at
  // the unscaled trace rate; factor 0 behaves like a zero-rate tail.
  TimePoint done = TimePoint::max();
  if (rate_factor_ > 0.0) {
    const auto scaled = static_cast<Bytes>(
        std::ceil(static_cast<double>(wire) / rate_factor_));
    done = config_.rate.time_to_deliver(loop_.now(), scaled);
  }
  if (done == TimePoint::max()) {
    // Zero-rate tail: the packet is stuck; retry after a coarse interval so
    // looped/step traces (or a restored rate factor) can resume.
    loop_.schedule_in(milliseconds(100), [this] {
      busy_ = false;
      if (has_backlog()) start_serializing();
    });
    return;
  }
  loop_.schedule_at(done, [this] { on_serialized(); });
}

void Link::on_serialized() {
  Packet p;
  if (serializing_) {
    p = std::move(*serializing_);
    serializing_.reset();
  } else {
    assert(!queue_.empty());
    p = std::move(queue_.front());
    queue_.pop_front();
  }
  queued_bytes_ -= p.wire_size;
  if (telemetry_) queue_gauge_.set(static_cast<double>(queued_bytes_));

  if (down_) {
    // The link died while this packet was on the radio.
    drop_packet(p);
  } else {
    loop_.schedule_in(config_.propagation_delay + extra_delay_,
                      [this, p = std::move(p)]() mutable {
                        delivered_bytes_ += p.wire_size;
                        ++delivered_packets_;
                        if (track_flows_) {
                          flow_delivered_[p.flow] += p.wire_size;
                        }
                        if (telemetry_) {
                          delivered_bytes_counter_.add(
                              static_cast<double>(p.wire_size));
                          delivered_packets_counter_.increment();
                          if (telemetry_->tracing()) {
                            emit_packet(TraceType::kPacketDeliver, p);
                          }
                        }
                        auto it = flow_deliver_.find(p.flow);
                        if (it != flow_deliver_.end() && it->second) {
                          it->second(std::move(p));
                        } else if (deliver_) {
                          deliver_(std::move(p));
                        }
                      });
  }

  busy_ = false;
  if (has_backlog()) start_serializing();
}

}  // namespace mpdash
