#include "link/link.h"

#include <cassert>
#include <utility>

namespace mpdash {

Link::Link(EventLoop& loop, LinkConfig config)
    : loop_(loop), config_(std::move(config)) {}

void Link::send(Packet p) {
  if (tap_) tap_->on_send(config_.id, loop_.now(), p);
  const bool random_drop =
      config_.random_loss > 0.0 && loss_rng_ && loss_rng_() < config_.random_loss;
  if (random_drop || queued_bytes_ + p.wire_size > config_.queue_capacity) {
    dropped_bytes_ += p.wire_size;
    ++dropped_packets_;
    if (tap_) tap_->on_drop(config_.id, loop_.now(), p);
    return;
  }
  queued_bytes_ += p.wire_size;
  queue_.push_back(std::move(p));
  if (!busy_) start_serializing();
}

void Link::start_serializing() {
  assert(!queue_.empty());
  busy_ = true;
  const TimePoint done =
      config_.rate.time_to_deliver(loop_.now(), queue_.front().wire_size);
  if (done == TimePoint::max()) {
    // Zero-rate tail: the packet is stuck; retry after a coarse interval so
    // looped/step traces can resume.
    loop_.schedule_in(milliseconds(100), [this] {
      busy_ = false;
      if (!queue_.empty()) start_serializing();
    });
    return;
  }
  loop_.schedule_at(done, [this] { on_serialized(); });
}

void Link::on_serialized() {
  assert(!queue_.empty());
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= p.wire_size;

  loop_.schedule_in(config_.propagation_delay,
                    [this, p = std::move(p)]() mutable {
                      delivered_bytes_ += p.wire_size;
                      ++delivered_packets_;
                      if (tap_) tap_->on_deliver(config_.id, loop_.now(), p);
                      if (deliver_) deliver_(std::move(p));
                    });

  busy_ = false;
  if (!queue_.empty()) start_serializing();
}

}  // namespace mpdash
