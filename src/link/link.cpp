#include "link/link.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace mpdash {

Link::Link(EventLoop& loop, LinkConfig config)
    : loop_(loop), config_(std::move(config)), rng_(config_.loss_seed) {
  if (config_.name.empty()) {
    config_.name = "link" + std::to_string(config_.id);
  }
  if (config_.ge_loss) ge_.emplace(*config_.ge_loss);
}

void Link::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (!telemetry_) {
    queue_gauge_ = Gauge{};
    delivered_bytes_counter_ = Counter{};
    delivered_packets_counter_ = Counter{};
    dropped_packets_counter_ = Counter{};
    return;
  }
  MetricsRegistry& m = telemetry_->metrics();
  const std::string prefix = "link." + config_.name;
  queue_gauge_ = m.gauge(prefix + ".queue_bytes");
  delivered_bytes_counter_ = m.counter(prefix + ".delivered_bytes");
  delivered_packets_counter_ = m.counter(prefix + ".delivered_packets");
  dropped_packets_counter_ = m.counter(prefix + ".dropped_packets");
}

void Link::emit_packet(TraceType type, const Packet& p) const {
  TraceRecord r;
  r.at = loop_.now();
  r.type = type;
  r.span = p.span;
  r.path_id = p.path_id;
  r.link_id = config_.id;
  r.kind = p.kind;
  r.wire_size = p.wire_size;
  r.payload_len = p.payload_len;
  r.data_seq = p.data_seq;
  r.retransmit = p.is_retransmit;
  if (type == TraceType::kPacketDeliver && telemetry_->capture_payload() &&
      p.kind == PacketKind::kData && p.payload_len > 0) {
    r.segments = p.segments;
  }
  telemetry_->emit(r);
}

void Link::drop_packet(const Packet& p) {
  dropped_bytes_ += p.wire_size;
  ++dropped_packets_;
  if (telemetry_) {
    dropped_packets_counter_.increment();
    if (telemetry_->tracing()) emit_packet(TraceType::kPacketDrop, p);
  }
}

double Link::draw_uniform() {
  return loss_rng_ ? loss_rng_() : rng_.uniform();
}

bool Link::loss_model_drops() {
  // Fixed draw order (i.i.d. first, then the GE pair) so a given seed maps
  // to one loss pattern regardless of which models are active elsewhere.
  bool drop = false;
  if (config_.random_loss > 0.0 && draw_uniform() < config_.random_loss) {
    drop = true;
  }
  if (ge_) {
    const double u_loss = draw_uniform();
    const double u_flip = draw_uniform();
    if (ge_->step(u_loss, u_flip)) drop = true;
  }
  return drop;
}

void Link::send(Packet p) {
  if (telemetry_ && telemetry_->tracing()) {
    emit_packet(TraceType::kPacketSend, p);
  }
  if (down_ || loss_model_drops() ||
      queued_bytes_ + p.wire_size > config_.queue_capacity) {
    drop_packet(p);
    return;
  }
  queued_bytes_ += p.wire_size;
  if (telemetry_) queue_gauge_.set(static_cast<double>(queued_bytes_));
  queue_.push_back(std::move(p));
  if (!busy_) start_serializing();
}

void Link::set_down(bool down) {
  down_ = down;
  if (!down_) return;
  // Everything still waiting behind the radio is lost with it. The packet
  // currently serializing (queue front while busy_) is dropped when its
  // serialization completes; packets already propagating still arrive.
  const std::size_t keep = busy_ ? 1 : 0;
  while (queue_.size() > keep) {
    Packet p = std::move(queue_.back());
    queue_.pop_back();
    queued_bytes_ -= p.wire_size;
    drop_packet(p);
  }
  if (telemetry_) queue_gauge_.set(static_cast<double>(queued_bytes_));
}

void Link::set_rate_factor(double factor) {
  rate_factor_ = factor > 0.0 ? factor : 0.0;
}

void Link::set_ge_loss(const std::optional<GilbertElliottConfig>& ge) {
  config_.ge_loss = ge;
  if (ge) {
    ge_.emplace(*ge);
  } else {
    ge_.reset();
  }
}

void Link::start_serializing() {
  assert(!queue_.empty());
  busy_ = true;
  // A factor-f rate scale is equivalent to serializing wire_size/f bytes at
  // the unscaled trace rate; factor 0 behaves like a zero-rate tail.
  TimePoint done = TimePoint::max();
  if (rate_factor_ > 0.0) {
    const auto scaled = static_cast<Bytes>(
        std::ceil(static_cast<double>(queue_.front().wire_size) /
                  rate_factor_));
    done = config_.rate.time_to_deliver(loop_.now(), scaled);
  }
  if (done == TimePoint::max()) {
    // Zero-rate tail: the packet is stuck; retry after a coarse interval so
    // looped/step traces (or a restored rate factor) can resume.
    loop_.schedule_in(milliseconds(100), [this] {
      busy_ = false;
      if (!queue_.empty()) start_serializing();
    });
    return;
  }
  loop_.schedule_at(done, [this] { on_serialized(); });
}

void Link::on_serialized() {
  assert(!queue_.empty());
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= p.wire_size;
  if (telemetry_) queue_gauge_.set(static_cast<double>(queued_bytes_));

  if (down_) {
    // The link died while this packet was on the radio.
    drop_packet(p);
  } else {
    loop_.schedule_in(config_.propagation_delay + extra_delay_,
                      [this, p = std::move(p)]() mutable {
                        delivered_bytes_ += p.wire_size;
                        ++delivered_packets_;
                        if (telemetry_) {
                          delivered_bytes_counter_.add(
                              static_cast<double>(p.wire_size));
                          delivered_packets_counter_.increment();
                          if (telemetry_->tracing()) {
                            emit_packet(TraceType::kPacketDeliver, p);
                          }
                        }
                        if (deliver_) deliver_(std::move(p));
                      });
  }

  busy_ = false;
  if (!queue_.empty()) start_serializing();
}

}  // namespace mpdash
