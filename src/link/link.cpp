#include "link/link.h"

#include <cassert>
#include <utility>

namespace mpdash {

Link::Link(EventLoop& loop, LinkConfig config)
    : loop_(loop), config_(std::move(config)) {
  if (config_.name.empty()) {
    config_.name = "link" + std::to_string(config_.id);
  }
}

void Link::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (!telemetry_) {
    queue_gauge_ = Gauge{};
    delivered_bytes_counter_ = Counter{};
    delivered_packets_counter_ = Counter{};
    dropped_packets_counter_ = Counter{};
    return;
  }
  MetricsRegistry& m = telemetry_->metrics();
  const std::string prefix = "link." + config_.name;
  queue_gauge_ = m.gauge(prefix + ".queue_bytes");
  delivered_bytes_counter_ = m.counter(prefix + ".delivered_bytes");
  delivered_packets_counter_ = m.counter(prefix + ".delivered_packets");
  dropped_packets_counter_ = m.counter(prefix + ".dropped_packets");
}

void Link::emit_packet(TraceType type, const Packet& p) const {
  TraceRecord r;
  r.at = loop_.now();
  r.type = type;
  r.path_id = p.path_id;
  r.link_id = config_.id;
  r.kind = p.kind;
  r.wire_size = p.wire_size;
  r.payload_len = p.payload_len;
  r.data_seq = p.data_seq;
  r.retransmit = p.is_retransmit;
  if (type == TraceType::kPacketDeliver && telemetry_->capture_payload() &&
      p.kind == PacketKind::kData && p.payload_len > 0) {
    r.segments = p.segments;
  }
  telemetry_->emit(r);
}

void Link::send(Packet p) {
  if (telemetry_ && telemetry_->tracing()) {
    emit_packet(TraceType::kPacketSend, p);
  }
  const bool random_drop =
      config_.random_loss > 0.0 && loss_rng_ && loss_rng_() < config_.random_loss;
  if (random_drop || queued_bytes_ + p.wire_size > config_.queue_capacity) {
    dropped_bytes_ += p.wire_size;
    ++dropped_packets_;
    if (telemetry_) {
      dropped_packets_counter_.increment();
      if (telemetry_->tracing()) emit_packet(TraceType::kPacketDrop, p);
    }
    return;
  }
  queued_bytes_ += p.wire_size;
  if (telemetry_) queue_gauge_.set(static_cast<double>(queued_bytes_));
  queue_.push_back(std::move(p));
  if (!busy_) start_serializing();
}

void Link::start_serializing() {
  assert(!queue_.empty());
  busy_ = true;
  const TimePoint done =
      config_.rate.time_to_deliver(loop_.now(), queue_.front().wire_size);
  if (done == TimePoint::max()) {
    // Zero-rate tail: the packet is stuck; retry after a coarse interval so
    // looped/step traces can resume.
    loop_.schedule_in(milliseconds(100), [this] {
      busy_ = false;
      if (!queue_.empty()) start_serializing();
    });
    return;
  }
  loop_.schedule_at(done, [this] { on_serialized(); });
}

void Link::on_serialized() {
  assert(!queue_.empty());
  Packet p = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= p.wire_size;
  if (telemetry_) queue_gauge_.set(static_cast<double>(queued_bytes_));

  loop_.schedule_in(config_.propagation_delay,
                    [this, p = std::move(p)]() mutable {
                      delivered_bytes_ += p.wire_size;
                      ++delivered_packets_;
                      if (telemetry_) {
                        delivered_bytes_counter_.add(
                            static_cast<double>(p.wire_size));
                        delivered_packets_counter_.increment();
                        if (telemetry_->tracing()) {
                          emit_packet(TraceType::kPacketDeliver, p);
                        }
                      }
                      if (deliver_) deliver_(std::move(p));
                    });

  busy_ = false;
  if (!queue_.empty()) start_serializing();
}

}  // namespace mpdash
