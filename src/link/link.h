#pragma once
// One-way link with a time-varying rate, propagation delay, and a drop-tail
// queue — the simulator's equivalent of a shaped WiFi or LTE hop.

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "link/packet.h"
#include "sim/event_loop.h"
#include "trace/bandwidth_trace.h"

namespace mpdash {

struct LinkConfig {
  int id = 0;
  std::string name;                          // metric key; "link{id}" if empty
  BandwidthTrace rate;                       // serialization capacity
  Duration propagation_delay = milliseconds(25);  // one-way
  Bytes queue_capacity = 192 * 1000;         // drop-tail buffer
  double random_loss = 0.0;                  // extra i.i.d. loss probability
};

class Link {
 public:
  using DeliverHandler = std::function<void(Packet)>;

  Link(EventLoop& loop, LinkConfig config);

  // Offers a packet to the link. Queue overflow (or random loss) silently
  // drops it, exactly as a real bottleneck would — senders learn via
  // missing ACKs.
  void send(Packet p);

  void set_deliver_handler(DeliverHandler h) { deliver_ = std::move(h); }
  void set_loss_rng(std::function<double()> uniform) {
    loss_rng_ = std::move(uniform);
  }

  // Attaches telemetry: packet send/deliver/drop trace records plus
  // `link.{name}.*` queue/delivery metrics. Pass nullptr to detach.
  void set_telemetry(Telemetry* telemetry);

  int id() const { return config_.id; }
  const std::string& name() const { return config_.name; }
  const BandwidthTrace& rate_trace() const { return config_.rate; }
  Duration propagation_delay() const { return config_.propagation_delay; }

  Bytes queued_bytes() const { return queued_bytes_; }
  Bytes delivered_bytes() const { return delivered_bytes_; }
  Bytes dropped_bytes() const { return dropped_bytes_; }
  std::size_t delivered_packets() const { return delivered_packets_; }
  std::size_t dropped_packets() const { return dropped_packets_; }

 private:
  void start_serializing();
  void on_serialized();
  void emit_packet(TraceType type, const Packet& p) const;

  EventLoop& loop_;
  LinkConfig config_;
  DeliverHandler deliver_;
  std::function<double()> loss_rng_;

  std::deque<Packet> queue_;
  Bytes queued_bytes_ = 0;
  bool busy_ = false;

  Bytes delivered_bytes_ = 0;
  Bytes dropped_bytes_ = 0;
  std::size_t delivered_packets_ = 0;
  std::size_t dropped_packets_ = 0;

  Telemetry* telemetry_ = nullptr;
  Gauge queue_gauge_;
  Counter delivered_bytes_counter_;
  Counter delivered_packets_counter_;
  Counter dropped_packets_counter_;
};

}  // namespace mpdash
