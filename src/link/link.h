#pragma once
// One-way link with a time-varying rate, propagation delay, and a drop-tail
// queue — the simulator's equivalent of a shaped WiFi or LTE hop.
//
// Besides the static configuration, a link exposes a dynamic impairment
// surface (down/up, rate scaling, extra latency, loss-model swaps) that the
// fault-injection layer (src/fault) drives at scheduled times to reproduce
// the hostile conditions of the paper's field study: AP blackouts, bursty
// interference, and abrupt capacity collapse.

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "link/loss.h"
#include "link/packet.h"
#include "sim/event_loop.h"
#include "trace/bandwidth_trace.h"
#include "util/rng.h"

namespace mpdash {

// How the link arbitrates between flows sharing its queue. kFifo is the
// single-tenant default (one drop-tail queue, arrival order); kFairQueue is
// deficit-round-robin over per-flow queues with longest-queue drop, so one
// aggressive tenant can neither starve the serializer nor steal the whole
// buffer.
enum class QueueDiscipline : std::uint8_t {
  kFifo = 0,
  kFairQueue = 1,
};

inline const char* to_string(QueueDiscipline d) {
  return d == QueueDiscipline::kFairQueue ? "fq" : "fifo";
}

struct LinkConfig {
  int id = 0;
  std::string name;                          // metric key; "link{id}" if empty
  BandwidthTrace rate;                       // serialization capacity
  Duration propagation_delay = milliseconds(25);  // one-way
  Bytes queue_capacity = 192 * 1000;         // drop-tail buffer
  double random_loss = 0.0;                  // extra i.i.d. loss probability
  // Bursty-loss channel (Gilbert–Elliott); composes with random_loss.
  std::optional<GilbertElliottConfig> ge_loss;
  // Seed of the link's private loss stream. Every link owns its own Rng so
  // loss on one link can never perturb another's draws (the seed tests
  // shared one RNG across links, coupling their loss patterns).
  std::uint64_t loss_seed = 0;
  // Multi-tenant arbitration (fleet workloads). kFifo preserves the
  // single-tenant behavior bit-for-bit.
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  // DRR quantum: bytes a flow earns each time it reaches the head of the
  // active ring. >= one MTU gives packet-by-packet round robin.
  Bytes fq_quantum = 1500;
};

class Link {
 public:
  using DeliverHandler = std::function<void(Packet)>;

  Link(EventLoop& loop, LinkConfig config);

  // Offers a packet to the link. Queue overflow (or random loss) silently
  // drops it, exactly as a real bottleneck would — senders learn via
  // missing ACKs.
  void send(Packet p);

  void set_deliver_handler(DeliverHandler h) { deliver_ = std::move(h); }
  // Per-flow delivery demux for shared links: packets stamped with `flow`
  // route to their flow's handler; unstamped flows fall back to the default
  // handler. Registering any flow handler turns on per-flow byte accounting.
  void set_flow_deliver(int flow, DeliverHandler h);
  // Test hook: overrides the link's own loss stream with an external
  // uniform-draw source (used to script exact drop positions).
  void set_loss_rng(std::function<double()> uniform) {
    loss_rng_ = std::move(uniform);
  }

  // --- dynamic impairments (fault-injection surface) -------------------
  // While down, every packet offered or finishing serialization is lost;
  // packets already propagating still arrive (they are past the radio).
  void set_down(bool down);
  bool is_down() const { return down_; }
  // Scales the instantaneous trace rate by `factor` (rate collapse /
  // recovery). Applies to serializations started after the call.
  void set_rate_factor(double factor);
  double rate_factor() const { return rate_factor_; }
  // Extra one-way latency added on top of the propagation delay (RTT
  // spike). Applies to deliveries scheduled after the call.
  void set_extra_delay(Duration extra) { extra_delay_ = extra; }
  Duration extra_delay() const { return extra_delay_; }
  // Replaces the i.i.d. loss probability at runtime (loss burst window).
  void set_random_loss(double p) { config_.random_loss = p; }
  double random_loss() const { return config_.random_loss; }
  // Installs/clears the Gilbert–Elliott burst model at runtime. The chain
  // restarts in the Good state.
  void set_ge_loss(const std::optional<GilbertElliottConfig>& ge);

  // Attaches telemetry: packet send/deliver/drop trace records plus
  // `link.{name}.*` queue/delivery metrics. Pass nullptr to detach.
  void set_telemetry(Telemetry* telemetry);

  int id() const { return config_.id; }
  const std::string& name() const { return config_.name; }
  const BandwidthTrace& rate_trace() const { return config_.rate; }
  Duration propagation_delay() const { return config_.propagation_delay; }

  Bytes queued_bytes() const { return queued_bytes_; }
  Bytes delivered_bytes() const { return delivered_bytes_; }
  Bytes dropped_bytes() const { return dropped_bytes_; }
  std::size_t delivered_packets() const { return delivered_packets_; }
  std::size_t dropped_packets() const { return dropped_packets_; }
  // Per-flow wire-byte attribution on shared links. Tracked whenever the
  // discipline is kFairQueue or a flow handler is registered; 0 otherwise.
  Bytes delivered_bytes_for_flow(int flow) const;
  Bytes dropped_bytes_for_flow(int flow) const;
  Bytes queued_bytes_for_flow(int flow) const;
  QueueDiscipline discipline() const { return config_.discipline; }

 private:
  void start_serializing();
  void on_serialized();
  void drop_packet(const Packet& p);
  bool loss_model_drops();
  double draw_uniform();
  void emit_packet(TraceType type, const Packet& p) const;
  bool has_backlog() const;
  void fq_enqueue(Packet p);
  Packet fq_dequeue();
  int fq_victim() const;
  void fq_deactivate(int flow);

  EventLoop& loop_;
  LinkConfig config_;
  DeliverHandler deliver_;
  std::function<double()> loss_rng_;  // optional test override
  Rng rng_;
  std::optional<GilbertElliottLoss> ge_;

  std::deque<Packet> queue_;  // kFifo backlog (front = serializing when busy)
  // kFairQueue state: per-flow backlogs, DRR deficits, and the active ring.
  // A flow appears in every map iff its queue is non-empty; the packet being
  // serialized is extracted into serializing_ but still counts toward
  // queued_bytes_ (it occupies the buffer until it leaves the radio).
  std::map<int, std::deque<Packet>> flow_queues_;
  std::map<int, Bytes> flow_queued_;
  std::map<int, Bytes> flow_deficit_;
  std::deque<int> active_flows_;
  int fq_credited_flow_ = -1;  // front flow already credited this visit
  std::optional<Packet> serializing_;
  std::map<int, DeliverHandler> flow_deliver_;
  std::map<int, Bytes> flow_delivered_;
  std::map<int, Bytes> flow_dropped_;
  bool track_flows_ = false;

  Bytes queued_bytes_ = 0;
  bool busy_ = false;
  bool down_ = false;
  double rate_factor_ = 1.0;
  Duration extra_delay_ = kDurationZero;

  Bytes delivered_bytes_ = 0;
  Bytes dropped_bytes_ = 0;
  std::size_t delivered_packets_ = 0;
  std::size_t dropped_packets_ = 0;

  Telemetry* telemetry_ = nullptr;
  Gauge queue_gauge_;
  Counter delivered_bytes_counter_;
  Counter delivered_packets_counter_;
  Counter dropped_packets_counter_;
};

}  // namespace mpdash
