#pragma once
// Packet-loss channel models.
//
// The seed links only knew i.i.d. loss (LinkConfig::random_loss), which is
// a poor model of public WiFi: real interference arrives in bursts (AP
// contention, microwave ovens, hidden terminals). The Gilbert–Elliott
// two-state Markov chain below is the standard burst-loss model — a Good
// state with (near-)zero loss and a Bad state where most packets die, with
// per-packet transition probabilities shaping mean burst length.

#include <cstdint>

#include "util/rng.h"

namespace mpdash {

struct GilbertElliottConfig {
  // Per-packet transition probabilities. Mean residence (in packets) is
  // 1/p for each state: p_good_to_bad = 0.01, p_bad_to_good = 0.2 yields
  // ~100-packet clean spells broken by ~5-packet loss bursts.
  double p_good_to_bad = 0.01;
  double p_bad_to_good = 0.2;
  // Loss probability within each state (classic GE: 0 and ~1).
  double loss_good = 0.0;
  double loss_bad = 0.9;
};

// Stateful per-link instance of the model. Each call to should_drop()
// consumes RNG draws, advances the chain one packet, and reports whether
// that packet is lost.
class GilbertElliottLoss {
 public:
  explicit GilbertElliottLoss(GilbertElliottConfig config) : config_(config) {}

  bool should_drop(Rng& rng) {
    const double u_loss = rng.uniform();
    const double u_flip = rng.uniform();
    return step(u_loss, u_flip);
  }

  // Pure-draw variant for callers that source uniforms elsewhere (e.g. a
  // link's scripted loss stream).
  bool step(double u_loss, double u_flip) {
    const bool drop = u_loss < (bad_ ? config_.loss_bad : config_.loss_good);
    const double flip = bad_ ? config_.p_bad_to_good : config_.p_good_to_bad;
    if (u_flip < flip) bad_ = !bad_;
    return drop;
  }

  bool in_bad_state() const { return bad_; }
  const GilbertElliottConfig& config() const { return config_; }

 private:
  GilbertElliottConfig config_;
  bool bad_ = false;
};

}  // namespace mpdash
