#pragma once
// On-wire packet model shared by the link, TCP, and MPTCP layers.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/units.h"

namespace mpdash {

enum class PacketKind : std::uint8_t {
  kData,
  kAck,
};

// Reference to payload content. Header bytes of the HTTP layer are carried
// as real strings (so receivers and the analysis tool can parse them);
// video-body bytes are "virtual": only their length travels.
struct SegmentRef {
  std::shared_ptr<const std::string> real;  // null => virtual bytes
  std::size_t offset = 0;                   // into *real when real != null
  std::size_t len = 0;
  // Causal span of the request/response these bytes belong to (0 = none).
  // Out-of-band metadata only — never serialized, never sized — so a
  // pipelined sender can attribute interleaved byte runs per request
  // without changing the wire format.
  std::uint64_t span = 0;

  bool is_virtual() const { return real == nullptr; }
};

struct Packet {
  std::uint64_t id = 0;  // unique within one simulation (EventLoop-issued)
  PacketKind kind = PacketKind::kData;
  int path_id = -1;
  // Flow id on a shared link (fleet workloads multiplex one link across
  // sessions). 0 for single-tenant links; stamped by the NetPath facade.
  int flow = 0;
  // Causal span of the chunk request this packet serves (0 = none).
  // Stamped at send time so delivery/drop records attribute to the span
  // that queued the bytes, not whichever span is active when they land.
  std::uint64_t span = 0;

  Bytes wire_size = 0;  // headers + payload, what the link serializes

  // --- data packets ---
  std::uint64_t subflow_seq = 0;  // per-subflow packet sequence number
  std::uint64_t data_seq = 0;     // connection-level byte offset of payload
  Bytes payload_len = 0;
  bool is_retransmit = false;
  std::vector<SegmentRef> segments;

  // --- ACK packets ---
  std::uint64_t ack_subflow_seq = 0;  // the subflow_seq being acknowledged
  TimePoint echo_sent_at = kTimeZero;  // timestamp echoed for RTT sampling
  bool echo_is_retransmit = false;

  // MP-DASH: client->server scheduler decision, piggybacked on every ACK
  // (models the reserved bit in the MPTCP DSS option). Bit i set = path i
  // enabled for data. The version counter orders decisions across paths:
  // copies of the signal race each other on links with different delays,
  // and a stale mask must never override a newer one.
  std::uint32_t dss_path_mask = ~0u;
  std::uint64_t dss_mask_version = 0;

  TimePoint sent_at = kTimeZero;
};

// Per-packet protocol overhead: IPv4 + TCP + MPTCP DSS option.
constexpr Bytes kPacketHeaderBytes = 60;
constexpr Bytes kMaxSegmentSize = 1400;  // payload bytes per data packet
constexpr Bytes kAckWireSize = kPacketHeaderBytes;

}  // namespace mpdash
