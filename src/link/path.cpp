#include "link/path.h"

#include <utility>

namespace mpdash {

NetPath::NetPath(EventLoop& loop, PathEndpointsConfig config)
    : desc_(config.description) {
  LinkConfig down;
  down.id = desc_.id * 2;  // even ids: downlink, odd ids: uplink
  down.name = desc_.name.empty() ? "" : desc_.name + ".down";
  down.rate = std::move(config.downlink_rate);
  down.propagation_delay = config.one_way_delay;
  down.queue_capacity = config.queue_capacity;
  down.random_loss = config.random_loss;
  down.ge_loss = config.downlink_ge_loss;
  down.loss_seed = derive_stream_seed(config.loss_seed, ".down");
  owned_down_ = std::make_unique<Link>(loop, std::move(down));

  LinkConfig up;
  up.id = desc_.id * 2 + 1;
  up.name = desc_.name.empty() ? "" : desc_.name + ".up";
  up.rate = std::move(config.uplink_rate);
  up.propagation_delay = config.one_way_delay;
  up.queue_capacity = config.queue_capacity;
  up.random_loss = config.random_loss;
  up.loss_seed = derive_stream_seed(config.loss_seed, ".up");
  owned_up_ = std::make_unique<Link>(loop, std::move(up));
  down_ = owned_down_.get();
  up_ = owned_up_.get();

  if (config.downlink_shaper) {
    if (config.downlink_shaper->name == "shaper" && !desc_.name.empty()) {
      config.downlink_shaper->name = desc_.name;  // metric key per path
    }
    down_shaper_ =
        std::make_unique<TokenBucketShaper>(loop, *config.downlink_shaper);
    down_shaper_->set_forward_handler(
        [this](Packet p) { down_->send(std::move(p)); });
  }
}

NetPath::NetPath(PathDescription desc, Link& shared_down, Link& shared_up,
                 int flow)
    : desc_(std::move(desc)),
      down_(&shared_down),
      up_(&shared_up),
      flow_(flow) {}

void NetPath::send_downlink(Packet p) {
  p.path_id = desc_.id;
  p.flow = flow_;
  if (down_shaper_) {
    down_shaper_->send(std::move(p));
  } else {
    down_->send(std::move(p));
  }
}

void NetPath::send_uplink(Packet p) {
  p.path_id = desc_.id;
  p.flow = flow_;
  up_->send(std::move(p));
}

void NetPath::set_downlink_deliver(Link::DeliverHandler h) {
  if (shared()) {
    down_->set_flow_deliver(flow_, std::move(h));
  } else {
    down_->set_deliver_handler(std::move(h));
  }
}

void NetPath::set_uplink_deliver(Link::DeliverHandler h) {
  if (shared()) {
    up_->set_flow_deliver(flow_, std::move(h));
  } else {
    up_->set_deliver_handler(std::move(h));
  }
}

void NetPath::set_telemetry(Telemetry* telemetry) {
  if (shared()) return;  // the link owner wires shared links exactly once
  down_->set_telemetry(telemetry);
  up_->set_telemetry(telemetry);
  if (down_shaper_) down_shaper_->set_telemetry(telemetry);
}

Duration NetPath::base_rtt() const {
  return down_->propagation_delay() + up_->propagation_delay();
}

Bytes NetPath::delivered_wire_bytes() const {
  if (shared()) {
    return down_->delivered_bytes_for_flow(flow_) +
           up_->delivered_bytes_for_flow(flow_);
  }
  return down_->delivered_bytes() + up_->delivered_bytes();
}

}  // namespace mpdash
