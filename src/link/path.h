#pragma once
// A network path = forward + reverse link pair plus the user-facing
// metadata MP-DASH schedules on (interface kind, unit-data cost,
// preference order).

#include <memory>
#include <optional>
#include <string>

#include "link/link.h"
#include "link/shaper.h"

namespace mpdash {

enum class InterfaceKind : std::uint8_t {
  kWifi,
  kCellular,
  kOther,
};

inline const char* to_string(InterfaceKind k) {
  switch (k) {
    case InterfaceKind::kWifi: return "wifi";
    case InterfaceKind::kCellular: return "cellular";
    default: return "other";
  }
}

struct PathDescription {
  int id = 0;
  std::string name;
  InterfaceKind kind = InterfaceKind::kOther;
  // Unit-data cost c(i) from the paper's formulation; lower = preferred.
  // WiFi defaults to free, cellular to metered.
  double unit_cost = 0.0;
  bool metered = false;
};

struct PathEndpointsConfig {
  PathDescription description;
  BandwidthTrace downlink_rate;   // server -> client (video data)
  BandwidthTrace uplink_rate;     // client -> server (requests, ACKs)
  Duration one_way_delay = milliseconds(25);
  Bytes queue_capacity = 192 * 1000;
  double random_loss = 0.0;
  // Bursty loss on the downlink (the direction interference hurts most);
  // uplinks keep i.i.d.-only loss.
  std::optional<GilbertElliottConfig> downlink_ge_loss;
  // Base seed for the path's loss streams; each link derives its own via
  // derive_stream_seed(loss_seed, ".down"/".up").
  std::uint64_t loss_seed = 0;
  // Optional throttle applied to the downlink (Table 4's strawman).
  std::optional<ShaperConfig> downlink_shaper;
};

// Realizes one path over a forward + reverse link pair. Two modes:
//  - owning (the classic single-tenant shape): constructs and owns both
//    links from a PathEndpointsConfig;
//  - shared (fleet workloads): a facade over externally-owned links that
//    multiple sessions contend on. Packets are stamped with the session's
//    flow id and deliveries demux through Link's per-flow handlers, so the
//    MPTCP stack above is oblivious to the sharing.
class NetPath {
 public:
  NetPath(EventLoop& loop, PathEndpointsConfig config);
  // Shared mode. `flow` must be unique per tenant on these links. The
  // caller owns the links and wires their telemetry; this facade only
  // stamps and demuxes.
  NetPath(PathDescription desc, Link& shared_down, Link& shared_up, int flow);

  const PathDescription& description() const { return desc_; }
  int id() const { return desc_.id; }
  int flow() const { return flow_; }
  bool shared() const { return !owned_down_; }

  // Entry points: packets from the server side (data) / client side (ACKs,
  // requests).
  void send_downlink(Packet p);
  void send_uplink(Packet p);

  void set_downlink_deliver(Link::DeliverHandler h);
  void set_uplink_deliver(Link::DeliverHandler h);
  // Wires telemetry into both links and the optional shaper. No-op in
  // shared mode: the link owner wires shared links exactly once.
  void set_telemetry(Telemetry* telemetry);

  Link& downlink() { return *down_; }
  Link& uplink() { return *up_; }
  const Link& downlink() const { return *down_; }
  const Link& uplink() const { return *up_; }
  Duration base_rtt() const;
  // Wire bytes this path's tenant put on / took off the links. In owning
  // mode these are the whole-link counters; in shared mode the per-flow
  // slices.
  Bytes delivered_wire_bytes() const;

 private:
  PathDescription desc_;
  std::unique_ptr<Link> owned_down_;
  std::unique_ptr<Link> owned_up_;
  Link* down_ = nullptr;
  Link* up_ = nullptr;
  int flow_ = 0;
  std::unique_ptr<TokenBucketShaper> down_shaper_;
};

}  // namespace mpdash
