#include "link/shaper.h"

#include <algorithm>
#include <utility>

namespace mpdash {

TokenBucketShaper::TokenBucketShaper(EventLoop& loop, ShaperConfig config)
    : loop_(loop),
      config_(config),
      tokens_(static_cast<double>(config.burst)) {}

void TokenBucketShaper::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (!telemetry_) {
    queue_gauge_ = Gauge{};
    forwarded_counter_ = Counter{};
    dropped_counter_ = Counter{};
    return;
  }
  MetricsRegistry& m = telemetry_->metrics();
  const std::string prefix = "shaper." + config_.name;
  queue_gauge_ = m.gauge(prefix + ".queue_bytes");
  forwarded_counter_ = m.counter(prefix + ".forwarded_bytes");
  dropped_counter_ = m.counter(prefix + ".dropped_bytes");
}

void TokenBucketShaper::refill() {
  const TimePoint now = loop_.now();
  const double earned =
      config_.rate.bps() / 8.0 * to_seconds(now - last_refill_);
  tokens_ = std::min(static_cast<double>(config_.burst), tokens_ + earned);
  last_refill_ = now;
}

void TokenBucketShaper::send(Packet p) {
  if (queued_bytes_ + p.wire_size > config_.queue_capacity) {
    dropped_bytes_ += p.wire_size;
    if (telemetry_) dropped_counter_.add(static_cast<double>(p.wire_size));
    return;
  }
  queued_bytes_ += p.wire_size;
  if (telemetry_) queue_gauge_.set(static_cast<double>(queued_bytes_));
  queue_.push_back(std::move(p));
  drain();
}

void TokenBucketShaper::drain() {
  refill();
  while (!queue_.empty() &&
         tokens_ >= static_cast<double>(queue_.front().wire_size)) {
    Packet p = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= p.wire_size;
    tokens_ -= static_cast<double>(p.wire_size);
    forwarded_bytes_ += p.wire_size;
    if (telemetry_) {
      forwarded_counter_.add(static_cast<double>(p.wire_size));
      queue_gauge_.set(static_cast<double>(queued_bytes_));
    }
    if (forward_) forward_(std::move(p));
  }
  if (!queue_.empty() && !drain_scheduled_) {
    // Wake when enough tokens accumulate for the head packet.
    const double deficit =
        static_cast<double>(queue_.front().wire_size) - tokens_;
    const Duration wait =
        config_.rate.time_to_send(static_cast<Bytes>(deficit) + 1);
    drain_scheduled_ = true;
    loop_.schedule_in(std::max(wait, microseconds(10)), [this] {
      drain_scheduled_ = false;
      drain();
    });
  }
}

}  // namespace mpdash
