#pragma once
// Token-bucket traffic shaper — the equivalent of the Dummynet pipes the
// paper uses both to emulate metropolitan WiFi RTT/bandwidth and to build
// the "throttle cellular at N kbps" strawman of Table 4.

#include <deque>
#include <functional>

#include "link/packet.h"
#include "sim/event_loop.h"

namespace mpdash {

struct ShaperConfig {
  DataRate rate = DataRate::mbps(1.0);
  Bytes burst = 16 * 1000;  // bucket depth
  Bytes queue_capacity = 256 * 1000;
  std::string name = "shaper";  // metric key: `shaper.{name}.*`
};

// Packets pass through at most at `rate` (after an initial burst); excess
// queues up to queue_capacity, then drops.
class TokenBucketShaper {
 public:
  using ForwardHandler = std::function<void(Packet)>;

  TokenBucketShaper(EventLoop& loop, ShaperConfig config);

  void send(Packet p);
  void set_forward_handler(ForwardHandler h) { forward_ = std::move(h); }

  // Registers `shaper.{name}.*` queue/drop metrics. nullptr detaches.
  void set_telemetry(Telemetry* telemetry);

  Bytes dropped_bytes() const { return dropped_bytes_; }
  Bytes forwarded_bytes() const { return forwarded_bytes_; }

 private:
  void refill();
  void drain();

  EventLoop& loop_;
  ShaperConfig config_;
  ForwardHandler forward_;

  Telemetry* telemetry_ = nullptr;
  Gauge queue_gauge_;
  Counter forwarded_counter_;
  Counter dropped_counter_;

  double tokens_;  // bytes
  TimePoint last_refill_ = kTimeZero;
  std::deque<Packet> queue_;
  Bytes queued_bytes_ = 0;
  bool drain_scheduled_ = false;

  Bytes dropped_bytes_ = 0;
  Bytes forwarded_bytes_ = 0;
};

}  // namespace mpdash
