#include "mptcp/connection.h"

#include <stdexcept>

namespace mpdash {

MptcpConnection::MptcpConnection(EventLoop& loop, std::vector<NetPath*> paths)
    : paths_(std::move(paths)) {
  client_ = std::make_unique<MptcpEndpoint>(loop, MptcpEndpoint::Role::kClient);
  server_ = std::make_unique<MptcpEndpoint>(loop, MptcpEndpoint::Role::kServer);

  for (NetPath* p : paths_) {
    const int id = p->id();
    SubflowConfig cfg;
    cfg.path_id = id;
    cfg.initial_rtt = p->base_rtt();

    // Server's outgoing direction is the downlink.
    server_->add_path(cfg, [p](Packet pkt) { p->send_downlink(std::move(pkt)); });
    // Client's outgoing direction is the uplink.
    client_->add_path(cfg, [p](Packet pkt) { p->send_uplink(std::move(pkt)); });

    // Everything arriving at the client came off the downlink.
    p->set_downlink_deliver(
        [this](Packet pkt) { client_->on_packet(std::move(pkt)); });
    p->set_uplink_deliver(
        [this](Packet pkt) { server_->on_packet(std::move(pkt)); });
  }
}

void MptcpConnection::set_telemetry(Telemetry* telemetry) {
  client_->set_telemetry(telemetry);
  server_->set_telemetry(telemetry);
}

NetPath& MptcpConnection::path(int path_id) {
  for (NetPath* p : paths_) {
    if (p->id() == path_id) return *p;
  }
  throw std::out_of_range("unknown path id");
}

Bytes MptcpConnection::wire_bytes(int path_id) const {
  for (const NetPath* p : paths_) {
    if (p->id() == path_id) return p->delivered_wire_bytes();
  }
  throw std::out_of_range("unknown path id");
}

}  // namespace mpdash
