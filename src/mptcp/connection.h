#pragma once
// Wires a client and a server endpoint across a set of NetPaths.
//
// Server data packets travel on each path's downlink and are acked on its
// uplink; client request data travels the opposite way. The connection is
// considered pre-established (the paper keeps subflows up and toggles
// their *use*, precisely to avoid handshake latency).

#include <memory>
#include <vector>

#include "link/path.h"
#include "mptcp/endpoint.h"

namespace mpdash {

class MptcpConnection {
 public:
  // Paths are borrowed; they must outlive the connection.
  MptcpConnection(EventLoop& loop, std::vector<NetPath*> paths);

  MptcpEndpoint& client() { return *client_; }
  MptcpEndpoint& server() { return *server_; }

  NetPath& path(int path_id);
  const std::vector<NetPath*>& paths() const { return paths_; }

  // Total bytes that crossed a path's radio in both directions (data +
  // acks + headers) — the "cellular usage" metric of the evaluation.
  Bytes wire_bytes(int path_id) const;

  // Wires telemetry into both endpoints (the borrowed paths are wired by
  // whoever owns them — see Scenario::set_telemetry).
  void set_telemetry(Telemetry* telemetry);

 private:
  std::vector<NetPath*> paths_;
  std::unique_ptr<MptcpEndpoint> client_;
  std::unique_ptr<MptcpEndpoint> server_;
};

}  // namespace mpdash
