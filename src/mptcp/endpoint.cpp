#include "mptcp/endpoint.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "predict/holt_winters.h"

namespace mpdash {

MptcpEndpoint::MptcpEndpoint(EventLoop& loop, Role role)
    : loop_(loop), role_(role), scheduler_(std::make_unique<MinRttScheduler>()) {}

MptcpEndpoint::~MptcpEndpoint() {
  loop_.cancel(sampler_timer_);
  for (auto& [id, st] : paths_) loop_.cancel(st.reprobe_timer);
}

void MptcpEndpoint::add_path(SubflowConfig config,
                             std::function<void(Packet)> transmit) {
  const int id = config.path_id;
  if (paths_.contains(id)) throw std::invalid_argument("duplicate path id");
  PathState st;
  st.transmit = std::move(transmit);
  st.sender = std::make_unique<SubflowSender>(
      loop_, config, st.transmit, [this] { try_send(); });
  st.sampler = std::make_unique<RateSampler>(
      std::make_shared<HoltWinters>(), kSamplerInterval);
  if (telemetry_) wire_sender_telemetry(st);
  if (failure_policy_.max_consecutive_rtos > 0) wire_failure_detection(id, st);
  paths_.emplace(id, std::move(st));
}

void MptcpEndpoint::set_failure_policy(const MptcpFailureConfig& policy) {
  failure_policy_ = policy;
  for (auto& [id, st] : paths_) {
    if (failure_policy_.max_consecutive_rtos > 0) {
      wire_failure_detection(id, st);
    } else {
      st.sender->set_max_consecutive_rtos(0);
      st.sender->set_failure_handler(nullptr);
    }
  }
}

void MptcpEndpoint::wire_failure_detection(int path_id, PathState& st) {
  st.sender->set_max_consecutive_rtos(failure_policy_.max_consecutive_rtos);
  st.sender->set_failure_handler(
      [this, path_id] { on_subflow_failure(path_id); });
}

void MptcpEndpoint::on_subflow_failure(int path_id) {
  PathState& st = path_state(path_id);
  st.dead = true;
  ++subflow_failures_;
  if (telemetry_) subflow_failures_counter_.increment();
  // Reinjection preserves the original data_seq: if the "lost" original
  // actually arrived (only its ack died), the receiver's dedupe discards
  // the copy and connection-level accounting stays exact.
  std::vector<UnackedData> stranded = st.sender->take_unacked();
  reinjected_packets_ += stranded.size();
  if (telemetry_) {
    reinjections_counter_.add(static_cast<double>(stranded.size()));
  }
  for (auto& u : stranded) reinject_.push_back(std::move(u));
  if (failure_policy_.reprobe_interval > kDurationZero) {
    loop_.cancel(st.reprobe_timer);
    st.reprobe_timer = loop_.schedule_in(
        failure_policy_.reprobe_interval,
        [this, path_id] { revive_path(path_id); });
  }
  try_send();
}

void MptcpEndpoint::revive_path(int path_id) {
  PathState& st = path_state(path_id);
  st.reprobe_timer = EventId{};
  if (!st.dead) return;
  st.dead = false;
  st.sender->reset_for_reconnect();
  ++subflow_revivals_;
  // The revived path immediately competes for data again; if it is still
  // dead the probe traffic re-kills it after another K RTOs.
  try_send();
}

void MptcpEndpoint::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  for (auto& [id, st] : paths_) wire_sender_telemetry(st);
  if (telemetry_ && role_ == Role::kClient) {
    mask_changes_counter_ = telemetry_->metrics().counter("mptcp.mask_changes");
  } else {
    mask_changes_counter_ = Counter{};
  }
  if (telemetry_) {
    const std::string scope =
        role_ == Role::kServer ? "mptcp" : "mptcp.client";
    subflow_failures_counter_ =
        telemetry_->metrics().counter(scope + ".subflow_failures");
    reinjections_counter_ =
        telemetry_->metrics().counter(scope + ".reinjected_packets");
  } else {
    subflow_failures_counter_ = Counter{};
    reinjections_counter_ = Counter{};
  }
}

void MptcpEndpoint::wire_sender_telemetry(PathState& st) {
  // Server subflows carry the video data; their window trajectory is the
  // one worth tracing. Client senders only push requests/acks.
  const bool server = role_ == Role::kServer;
  st.sender->set_telemetry(
      telemetry_, server ? "mptcp.subflow" : "mptcp.client.subflow",
      /*emit_trace=*/server);
}

void MptcpEndpoint::set_scheduler(std::unique_ptr<MptcpScheduler> scheduler) {
  assert(scheduler != nullptr);
  scheduler_ = std::move(scheduler);
}

void MptcpEndpoint::send(WireData data, SpanId span) {
  if (span != 0) {
    for (SegmentRef& seg : data) seg.span = span;
  }
  send_buffer_.append(std::move(data));
  try_send();
}

void MptcpEndpoint::try_send() {
  if (in_try_send_) return;  // sender callbacks can re-enter via transmit
  in_try_send_ = true;
  // Reinjected data first (it is the oldest data the peer is waiting on),
  // then new stream data.
  while (!reinject_.empty() || !send_buffer_.empty()) {
    // Recovery data overrides the MP-DASH preference mask (§4.3 fallback
    // to vanilla MPTCP): the peer is head-of-line blocked on it, so any
    // live subflow may carry it.
    const bool vanilla = !reinject_.empty();
    std::vector<SubflowSnapshot> snaps;
    snaps.reserve(paths_.size());
    for (const auto& [id, st] : paths_) {
      if (st.dead) continue;  // a dead subflow can't carry anything
      SubflowSnapshot s;
      s.path_id = id;
      s.has_cwnd_space = st.sender->can_send();
      s.enabled = vanilla || ((send_mask_ >> id) & 1u);
      s.srtt = st.sender->srtt();
      snaps.push_back(s);
    }
    const int pick = scheduler_->select(snaps);
    if (pick < 0) break;
    PathState& st = path_state(pick);
    if (!reinject_.empty()) {
      UnackedData u = std::move(reinject_.front());
      reinject_.pop_front();
      st.sender->send_data(u.data_seq, u.payload_len, std::move(u.segments));
      continue;
    }
    WireData payload = send_buffer_.pull(kMaxSegmentSize);
    const Bytes len = wire_length(payload);
    const std::uint64_t seq = next_data_seq_;
    next_data_seq_ += static_cast<std::uint64_t>(len);
    st.sender->send_data(seq, len, std::move(payload));
  }
  in_try_send_ = false;
}

void MptcpEndpoint::on_packet(Packet p) {
  if (p.kind == PacketKind::kData) {
    handle_data(std::move(p));
  } else {
    handle_ack(p);
  }
}

void MptcpEndpoint::handle_data(Packet p) {
  send_ack(p, p.path_id);

  PathState& st = path_state(p.path_id);
  // Duplicate suppression: retransmits re-deliver identical ranges.
  const bool is_new = p.data_seq >= next_expected_ &&
                      !out_of_order_.contains(p.data_seq);
  if (is_new) {
    st.delivered_payload += p.payload_len;
    // The kernel predictor samples a subflow whenever it carries traffic
    // (the paper's HW predictor lives in the MPTCP stack, not in the
    // MP-DASH activation window); the sampler itself skips idle gaps.
    st.sampler->on_bytes(loop_.now(), p.payload_len);
    out_of_order_.emplace(p.data_seq, std::move(p.segments));
    deliver_in_order();
  }
}

void MptcpEndpoint::deliver_in_order() {
  while (true) {
    auto it = out_of_order_.find(next_expected_);
    if (it == out_of_order_.end()) break;
    WireData data = std::move(it->second);
    out_of_order_.erase(it);
    next_expected_ += static_cast<std::uint64_t>(wire_length(data));
    if (on_receive_) on_receive_(data);
  }
}

void MptcpEndpoint::send_ack(const Packet& data, int path_id) {
  Packet ack;
  ack.kind = PacketKind::kAck;
  ack.path_id = path_id;
  ack.wire_size = kAckWireSize;
  ack.ack_subflow_seq = data.subflow_seq;
  ack.echo_sent_at = data.sent_at;
  ack.echo_is_retransmit = data.is_retransmit;
  ack.dss_path_mask = signal_mask_;
  ack.dss_mask_version = signal_version_;
  ack.sent_at = loop_.now();
  path_state(path_id).transmit(ack);
}

void MptcpEndpoint::handle_ack(const Packet& p) {
  if (role_ == Role::kServer) {
    // Enforcement side of the split scheduler: the client's decision bit
    // arrives in the DSS option of every ack.
    if (p.dss_mask_version > applied_version_) {
      applied_version_ = p.dss_mask_version;
      if (p.dss_path_mask != send_mask_) {
        send_mask_ = p.dss_path_mask;
        try_send();
      }
    }
  }
  if (p.ack_subflow_seq != 0) {
    path_state(p.path_id).sender->on_ack(p);
  }
}

void MptcpEndpoint::signal_path_mask(std::uint32_t mask) {
  if (mask == signal_mask_) return;
  const std::uint32_t old_mask = signal_mask_;
  signal_mask_ = mask;
  ++signal_version_;
  if (telemetry_) {
    mask_changes_counter_.increment();
    if (telemetry_->tracing()) {
      TraceRecord r;
      r.at = loop_.now();
      r.type = TraceType::kPathMask;
      r.mask = mask;
      telemetry_->emit(r);
    }
  }
  update_sampler_modes();
  // The decision function lives in the client's own MPTCP stack, so the
  // client's outgoing data (requests) obeys the mask too.
  send_mask_ = mask;
  // Bare control acks push the change even when the connection is idle —
  // but only over paths enabled before *and* after the flip: touching a
  // path that is (or was just) disabled would wake the very radio the
  // decision tries to keep asleep, and its tail energy dwarfs the signal.
  std::uint32_t signal_paths = old_mask & mask;
  if (signal_paths == 0) signal_paths = mask;
  for (auto& [id, st] : paths_) {
    if (!((signal_paths >> id) & 1u)) continue;
    Packet ctrl;
    ctrl.kind = PacketKind::kAck;
    ctrl.path_id = id;
    ctrl.wire_size = kAckWireSize;
    ctrl.ack_subflow_seq = 0;
    ctrl.dss_path_mask = mask;
    ctrl.dss_mask_version = signal_version_;
    ctrl.sent_at = loop_.now();
    st.transmit(ctrl);
  }
  try_send();
}

void MptcpEndpoint::set_send_mask(std::uint32_t mask) {
  if (mask == send_mask_) return;
  send_mask_ = mask;
  try_send();
}

Bytes MptcpEndpoint::delivered_payload_bytes(int path_id) const {
  return path_state(path_id).delivered_payload;
}

Bytes MptcpEndpoint::delivered_payload_total() const {
  Bytes total = 0;
  for (const auto& [id, st] : paths_) total += st.delivered_payload;
  return total;
}

DataRate MptcpEndpoint::path_throughput_estimate(int path_id) const {
  return path_state(path_id).sampler->estimate();
}

DataRate MptcpEndpoint::aggregate_throughput_estimate() const {
  DataRate total = DataRate::bits_per_second(0);
  for (const auto& [id, st] : paths_) total = total + st.sampler->estimate();
  return total;
}

void MptcpEndpoint::set_sampling_active(bool active) {
  if (active == sampling_active_) return;
  sampling_active_ = active;
  loop_.cancel(sampler_timer_);
  sampler_timer_ = EventId{};
  update_sampler_modes();
  if (active) {
    // Restart interval boundaries "now" so the idle gap between transfers
    // is not misread as zero-throughput history.
    for (auto& [id, st] : paths_) st.sampler->resync(loop_.now());
    flush_samplers();
  }
}

void MptcpEndpoint::update_sampler_modes() {
  // A path's samples may lower its estimate only while a tracked transfer
  // is deliberately driving that path at full rate; otherwise the path is
  // app-limited and samples may only raise the estimate. On the
  // transition *into* the driven state, restart interval accounting: the
  // enable decision needs a round trip to produce packets, and counting
  // that in-flight gap as zero throughput would crater the estimate.
  for (auto& [id, st] : paths_) {
    const bool driven = sampling_active_ && ((signal_mask_ >> id) & 1u);
    if (driven && !st.sampler->can_lower()) st.sampler->resync(loop_.now());
    st.sampler->set_can_lower(driven);
  }
}

void MptcpEndpoint::flush_samplers() {
  if (!sampling_active_) return;
  for (auto& [id, st] : paths_) {
    // Only sample paths allowed to carry data; a deliberately disabled
    // path would otherwise record misleading zero-throughput intervals.
    if ((signal_mask_ >> id) & 1u) st.sampler->advance_to(loop_.now());
  }
  sampler_timer_ =
      loop_.schedule_in(kSamplerInterval, [this] { flush_samplers(); });
}

SubflowSender& MptcpEndpoint::subflow(int path_id) {
  return *path_state(path_id).sender;
}

const SubflowSender& MptcpEndpoint::subflow(int path_id) const {
  return *path_state(path_id).sender;
}

std::vector<int> MptcpEndpoint::path_ids() const {
  std::vector<int> ids;
  ids.reserve(paths_.size());
  for (const auto& [id, st] : paths_) ids.push_back(id);
  return ids;
}

MptcpEndpoint::PathState& MptcpEndpoint::path_state(int path_id) {
  auto it = paths_.find(path_id);
  if (it == paths_.end()) throw std::out_of_range("unknown path id");
  return it->second;
}

const MptcpEndpoint::PathState& MptcpEndpoint::path_state(int path_id) const {
  auto it = paths_.find(path_id);
  if (it == paths_.end()) throw std::out_of_range("unknown path id");
  return it->second;
}

}  // namespace mpdash
