#pragma once
// One end of an MPTCP connection.
//
// An endpoint owns a SubflowSender per path for its outgoing data, a
// connection-level send queue with data sequencing, and the receive-side
// reassembly + per-path throughput sampling. The client endpoint is also
// where the MP-DASH *decision function* attaches: its path-mask signal is
// piggybacked on every outgoing ACK (modeling the reserved DSS-option bit)
// and applied by the server endpoint's *enforcement* side when it
// schedules data packets.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mptcp/scheduler.h"
#include "mptcp/stream_buffer.h"
#include "mptcp/wire_data.h"
#include "predict/estimator.h"
#include "sim/event_loop.h"
#include "tcp/subflow.h"

namespace mpdash {

constexpr std::uint32_t kAllPathsMask = ~0u;

// Subflow-failure handling (paper §4.3: when a path silently dies, MP-DASH
// must fall back to the surviving subflows instead of stalling).
struct MptcpFailureConfig {
  // Consecutive RTOs before a subflow is declared dead. 0 disables
  // detection entirely (seed behavior).
  int max_consecutive_rtos = 0;
  // How long after death to re-admit the path with a fresh sender. The
  // probe data is real traffic: if the path is still dead it is re-killed
  // after another max_consecutive_rtos timeouts. Zero = never revive.
  Duration reprobe_interval = seconds(5.0);
};

class MptcpEndpoint {
 public:
  enum class Role { kClient, kServer };

  // In-order stream delivery: contiguous payload starting at the stream
  // offset the handler has already consumed implicitly.
  using ReceiveHandler = std::function<void(const WireData&)>;

  MptcpEndpoint(EventLoop& loop, Role role);
  ~MptcpEndpoint();

  MptcpEndpoint(const MptcpEndpoint&) = delete;
  MptcpEndpoint& operator=(const MptcpEndpoint&) = delete;

  // Registers a path. `transmit` sends a packet on this endpoint's
  // outgoing direction of that path. Paths must be added before traffic
  // flows; ids must be unique.
  void add_path(SubflowConfig config, std::function<void(Packet)> transmit);

  void set_scheduler(std::unique_ptr<MptcpScheduler> scheduler);
  MptcpScheduler& scheduler() { return *scheduler_; }

  void set_receive_handler(ReceiveHandler h) { on_receive_ = std::move(h); }

  // Wires telemetry into every subflow sender (and paths added later).
  // Server subflows publish under `mptcp.subflow.{id}.*` and emit
  // kSubflowUpdate trace records (they carry the video data the paper's
  // plots track); client subflows publish under `mptcp.client.subflow.*`
  // without trace records. nullptr detaches.
  void set_telemetry(Telemetry* telemetry);

  // Appends application data to the outgoing stream. A nonzero `span`
  // stamps every segment with the owning request's span before queueing,
  // so interleaved pipelined transfers keep per-request attribution all
  // the way down to packets (StreamBuffer slices never merge segments).
  void send(WireData data, SpanId span = 0);

  // Network ingress: data packets feed reassembly (and are acked); ACK
  // packets feed the owning subflow sender and, on a server endpoint,
  // update the enforcement path mask.
  void on_packet(Packet p);

  // --- failure recovery -----------------------------------------------
  // Enables subflow-failure detection on every path (current and future):
  // K consecutive RTOs mark the subflow dead, its unacked connection-level
  // data is reinjected onto live subflows (original data_seq, so receiver
  // dedupe stays correct), and the path is periodically reprobed.
  void set_failure_policy(const MptcpFailureConfig& policy);
  bool path_dead(int path_id) const { return path_state(path_id).dead; }
  std::size_t subflow_failures() const { return subflow_failures_; }
  std::size_t subflow_revivals() const { return subflow_revivals_; }
  std::size_t reinjected_packets() const { return reinjected_packets_; }
  std::size_t reinject_backlog() const { return reinject_.size(); }

  // --- path control (MP-DASH overlay) ---------------------------------
  // Client side: records the decision and pushes it to the peer via bare
  // control ACKs on every path (plus piggybacked on subsequent acks).
  void signal_path_mask(std::uint32_t mask);
  // Directly sets the mask governing *this* endpoint's data scheduling
  // (tests; also what the server applies on signal receipt).
  void set_send_mask(std::uint32_t mask);
  std::uint32_t send_mask() const { return send_mask_; }
  std::uint32_t signaled_mask() const { return signal_mask_; }

  // --- receive-side statistics ----------------------------------------
  Bytes delivered_payload_bytes(int path_id) const;
  Bytes delivered_payload_total() const;
  // Holt-Winters estimate of a path's goodput while sampled.
  DataRate path_throughput_estimate(int path_id) const;
  // Sum of per-path estimates: the "aggregated throughput" the MP-DASH
  // interface exposes to rate adaptation (§3.2).
  DataRate aggregate_throughput_estimate() const;

  // Gates throughput sampling: only while a tracked transfer is active do
  // idle intervals count as zero-throughput samples (between chunks the
  // network is idle by design and must not drag the estimate down).
  void set_sampling_active(bool active);
  bool sampling_active() const { return sampling_active_; }

  // --- sender-side accessors ------------------------------------------
  SubflowSender& subflow(int path_id);
  const SubflowSender& subflow(int path_id) const;
  std::vector<int> path_ids() const;
  Bytes send_backlog() const { return send_buffer_.size(); }
  std::uint64_t bytes_received_in_order() const { return next_expected_; }
  // One past the highest connection-level byte ever scheduled onto a
  // subflow; with an empty backlog this equals total bytes sent.
  std::uint64_t data_seq_high() const { return next_data_seq_; }

  // Attempts to move queued data into subflows; invoked automatically on
  // sends/acks/mask changes, public for tests.
  void try_send();

 private:
  struct PathState {
    std::unique_ptr<SubflowSender> sender;
    std::function<void(Packet)> transmit;
    Bytes delivered_payload = 0;
    std::unique_ptr<RateSampler> sampler;
    bool sampler_started = false;
    bool dead = false;
    EventId reprobe_timer;
  };

  void handle_data(Packet p);
  void handle_ack(const Packet& p);
  void wire_failure_detection(int path_id, PathState& st);
  void on_subflow_failure(int path_id);
  void revive_path(int path_id);
  void send_ack(const Packet& data, int path_id);
  void deliver_in_order();
  void flush_samplers();
  void update_sampler_modes();
  void wire_sender_telemetry(PathState& st);
  PathState& path_state(int path_id);
  const PathState& path_state(int path_id) const;

  EventLoop& loop_;
  Role role_;
  std::unique_ptr<MptcpScheduler> scheduler_;
  ReceiveHandler on_receive_;
  Telemetry* telemetry_ = nullptr;
  Counter mask_changes_counter_;

  std::map<int, PathState> paths_;
  std::uint32_t send_mask_ = kAllPathsMask;
  std::uint32_t signal_mask_ = kAllPathsMask;
  std::uint64_t signal_version_ = 0;   // bumps on every local decision
  std::uint64_t applied_version_ = 0;  // newest remote decision applied

  // sender
  StreamBuffer send_buffer_;
  std::uint64_t next_data_seq_ = 0;
  bool in_try_send_ = false;

  // failure recovery
  MptcpFailureConfig failure_policy_;  // inert until max_consecutive_rtos>0
  std::deque<UnackedData> reinject_;   // drained before new stream data
  std::size_t subflow_failures_ = 0;
  std::size_t subflow_revivals_ = 0;
  std::size_t reinjected_packets_ = 0;
  Counter subflow_failures_counter_;
  Counter reinjections_counter_;

  // receiver
  std::uint64_t next_expected_ = 0;
  std::map<std::uint64_t, WireData> out_of_order_;  // keyed by data_seq

  bool sampling_active_ = false;
  EventId sampler_timer_;
  static constexpr Duration kSamplerInterval = milliseconds(100);
};

}  // namespace mpdash
