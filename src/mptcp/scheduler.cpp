#include "mptcp/scheduler.h"

#include <stdexcept>

namespace mpdash {

int MinRttScheduler::select(const std::vector<SubflowSnapshot>& subflows) {
  int best = -1;
  Duration best_rtt = Duration::max();
  for (const auto& sf : subflows) {
    if (!sf.enabled || !sf.has_cwnd_space) continue;
    if (sf.srtt < best_rtt) {
      best_rtt = sf.srtt;
      best = sf.path_id;
    }
  }
  return best;
}

int RoundRobinScheduler::select(const std::vector<SubflowSnapshot>& subflows) {
  if (subflows.empty()) return -1;
  const std::size_t n = subflows.size();
  for (std::size_t probe = 0; probe < n; ++probe) {
    const auto& sf = subflows[(next_ + probe) % n];
    if (sf.enabled && sf.has_cwnd_space) {
      next_ = (next_ + probe + 1) % n;
      return sf.path_id;
    }
  }
  return -1;
}

std::unique_ptr<MptcpScheduler> make_scheduler(const std::string& name) {
  if (name == "minrtt") return std::make_unique<MinRttScheduler>();
  if (name == "roundrobin") return std::make_unique<RoundRobinScheduler>();
  throw std::invalid_argument("unknown MPTCP scheduler: " + name);
}

}  // namespace mpdash
