#pragma once
// Stock MPTCP packet schedulers.
//
// The default Linux-MPTCP scheduler picks, among subflows with congestion
// window space, the one with the smallest RTT estimate; a round-robin
// scheduler is also supported. MP-DASH deliberately *overlays* these
// (src/core): disabling a path simply removes it from the candidate set,
// so MP-DASH composes with any scheduler implementing this interface.

#include <memory>
#include <string>
#include <vector>

#include "util/units.h"

namespace mpdash {

struct SubflowSnapshot {
  int path_id = 0;
  bool has_cwnd_space = false;
  bool enabled = true;  // MP-DASH path mask applied before scheduling
  Duration srtt = kDurationZero;
};

class MptcpScheduler {
 public:
  virtual ~MptcpScheduler() = default;
  // Returns the path_id of the subflow to send the next packet on, or -1
  // if no enabled subflow has window space.
  virtual int select(const std::vector<SubflowSnapshot>& subflows) = 0;
  virtual std::string name() const = 0;
};

// Lowest-SRTT-first (Linux MPTCP default).
class MinRttScheduler final : public MptcpScheduler {
 public:
  int select(const std::vector<SubflowSnapshot>& subflows) override;
  std::string name() const override { return "minrtt"; }
};

// Cycles through eligible subflows packet by packet.
class RoundRobinScheduler final : public MptcpScheduler {
 public:
  int select(const std::vector<SubflowSnapshot>& subflows) override;
  std::string name() const override { return "roundrobin"; }

 private:
  std::size_t next_ = 0;
};

std::unique_ptr<MptcpScheduler> make_scheduler(const std::string& name);

}  // namespace mpdash
