#include "mptcp/stream_buffer.h"

#include <algorithm>

namespace mpdash {

void StreamBuffer::append(WireData data) {
  for (auto& seg : data) {
    if (seg.len == 0) continue;
    size_ += static_cast<Bytes>(seg.len);
    segments_.push_back(std::move(seg));
  }
}

WireData StreamBuffer::pull(Bytes max_len) {
  WireData out;
  Bytes remaining = std::min(max_len, size_);
  while (remaining > 0) {
    SegmentRef& head = segments_.front();
    const Bytes take = std::min<Bytes>(remaining, static_cast<Bytes>(head.len));
    SegmentRef piece;
    piece.real = head.real;
    piece.offset = head.offset;
    piece.len = static_cast<std::size_t>(take);
    piece.span = head.span;
    out.push_back(std::move(piece));
    size_ -= take;
    remaining -= take;
    if (take == static_cast<Bytes>(head.len)) {
      segments_.pop_front();
    } else {
      head.offset += static_cast<std::size_t>(take);
      head.len -= static_cast<std::size_t>(take);
    }
  }
  return out;
}

}  // namespace mpdash
