#pragma once
// FIFO byte buffer over WireData segments: the MPTCP connection-level send
// queue. Appending a message is O(segments); pulling the next MSS-sized
// slice is O(1) amortized.

#include <deque>

#include "mptcp/wire_data.h"

namespace mpdash {

class StreamBuffer {
 public:
  void append(WireData data);

  // Removes and returns up to `max_len` bytes from the front.
  WireData pull(Bytes max_len);

  Bytes size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  std::deque<SegmentRef> segments_;
  Bytes size_ = 0;
};

}  // namespace mpdash
