#include "mptcp/wire_data.h"

#include <cassert>
#include <memory>
#include <stdexcept>
#include <utility>

namespace mpdash {

WireData wire_from_string(std::string s) {
  if (s.empty()) return {};
  auto shared = std::make_shared<const std::string>(std::move(s));
  SegmentRef ref;
  ref.real = shared;
  ref.offset = 0;
  ref.len = shared->size();
  return {ref};
}

WireData wire_virtual(Bytes len) {
  if (len <= 0) return {};
  SegmentRef ref;
  ref.len = static_cast<std::size_t>(len);
  return {ref};
}

Bytes wire_length(const WireData& data) {
  Bytes total = 0;
  for (const auto& seg : data) total += static_cast<Bytes>(seg.len);
  return total;
}

void wire_append(WireData& head, WireData tail) {
  head.insert(head.end(), std::make_move_iterator(tail.begin()),
              std::make_move_iterator(tail.end()));
}

WireData wire_slice(const WireData& data, Bytes offset, Bytes len) {
  if (offset < 0 || len < 0 || offset + len > wire_length(data)) {
    throw std::out_of_range("wire_slice out of range");
  }
  WireData out;
  Bytes pos = 0;
  for (const auto& seg : data) {
    const Bytes seg_len = static_cast<Bytes>(seg.len);
    const Bytes lo = std::max<Bytes>(offset, pos);
    const Bytes hi = std::min<Bytes>(offset + len, pos + seg_len);
    if (lo < hi) {
      SegmentRef ref;
      ref.real = seg.real;
      ref.offset = seg.offset + static_cast<std::size_t>(lo - pos);
      ref.len = static_cast<std::size_t>(hi - lo);
      out.push_back(std::move(ref));
    }
    pos += seg_len;
    if (pos >= offset + len) break;
  }
  assert(wire_length(out) == len);
  return out;
}

std::string wire_to_string(const WireData& data) {
  std::string out;
  out.reserve(static_cast<std::size_t>(wire_length(data)));
  for (const auto& seg : data) {
    if (seg.real) {
      out.append(*seg.real, seg.offset, seg.len);
    } else {
      out.append(seg.len, '\0');
    }
  }
  return out;
}

}  // namespace mpdash
