#pragma once
// Helpers for building and slicing wire payloads.
//
// Payloads are sequences of SegmentRefs: HTTP headers travel as real bytes
// (so receivers parse them), media bodies as virtual byte counts (so a
// 50 MB chunk costs a few words of memory).

#include <string>
#include <vector>

#include "link/packet.h"

namespace mpdash {

using WireData = std::vector<SegmentRef>;

// Wraps a string as real wire bytes.
WireData wire_from_string(std::string s);

// `len` virtual (content-free) bytes.
WireData wire_virtual(Bytes len);

Bytes wire_length(const WireData& data);

// Appends `tail` to `head`.
void wire_append(WireData& head, WireData tail);

// Returns the sub-range [offset, offset + len) of `data`. Requires the
// range to be within bounds.
WireData wire_slice(const WireData& data, Bytes offset, Bytes len);

// Materializes the real bytes of `data`; virtual bytes render as '\0'.
// Intended for tests and for header parsing (headers are always real).
std::string wire_to_string(const WireData& data);

}  // namespace mpdash
