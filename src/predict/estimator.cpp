#include "predict/estimator.h"

#include <cassert>
#include <utility>

namespace mpdash {

RateSampler::RateSampler(std::shared_ptr<ThroughputEstimator> estimator,
                         Duration interval)
    : estimator_(std::move(estimator)), interval_(interval) {
  assert(estimator_ != nullptr);
  assert(interval_ > kDurationZero);
}

void RateSampler::on_bytes(TimePoint now, Bytes bytes) {
  if (!started_) {
    started_ = true;
    interval_start_ = now;
  }
  // Traffic resuming after an idle gap: restart interval accounting
  // instead of back-filling the gap with zero-throughput samples. The
  // path was idle by *decision* (nothing to send), which says nothing
  // about its capacity. Genuine outages are caught by the periodic
  // flush (advance_to) that runs while a tracked transfer is active.
  if (now - interval_start_ > kIdleResetAfter * interval_) {
    resync(now);
  }
  close_intervals(now);
  pending_ += bytes;
}

void RateSampler::advance_to(TimePoint now) {
  if (!started_) return;
  close_intervals(now);
}

void RateSampler::resync(TimePoint now) {
  started_ = true;
  interval_start_ = now;
  pending_ = 0;
}

void RateSampler::close_intervals(TimePoint now) {
  while (now - interval_start_ >= interval_) {
    const DataRate sample = rate_of(pending_, interval_);
    if (can_lower_ || sample >= estimator_->predict()) {
      estimator_->add_sample(sample);
    }
    pending_ = 0;
    interval_start_ += interval_;
  }
}

}  // namespace mpdash
