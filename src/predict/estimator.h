#pragma once
// Throughput estimation interfaces.
//
// The MP-DASH scheduler's enable/disable decisions (Algorithm 1, line 15)
// key off a continuously updated estimate of the preferred path's
// throughput. The paper uses a non-seasonal Holt-Winters predictor (He et
// al., SIGCOMM'05); EWMA and harmonic-mean estimators are provided as the
// baselines the paper compares that choice against.

#include <memory>

#include "util/units.h"

namespace mpdash {

class ThroughputEstimator {
 public:
  virtual ~ThroughputEstimator() = default;

  // Feeds one throughput sample (rate observed over one sampling interval).
  virtual void add_sample(DataRate sample) = 0;

  // Current one-step-ahead prediction; zero-rate before any sample.
  virtual DataRate predict() const = 0;

  // Number of samples consumed.
  virtual std::size_t sample_count() const = 0;

  virtual void reset() = 0;
};

// Turns per-event byte deliveries into fixed-interval rate samples and
// forwards them to an estimator. Intervals with zero bytes still produce a
// (zero) sample so the estimator tracks outages.
class RateSampler {
 public:
  RateSampler(std::shared_ptr<ThroughputEstimator> estimator,
              Duration interval);

  // Records `bytes` delivered at time `now`; closes out any elapsed
  // sampling intervals.
  // Idle gaps longer than this many intervals are skipped (resync) rather
  // than back-filled with zero samples.
  static constexpr int kIdleResetAfter = 3;

  void on_bytes(TimePoint now, Bytes bytes);

  // Flushes intervals up to `now` without new bytes (periodic flushes
  // while a transfer is active turn outages into zero samples).
  void advance_to(TimePoint now);

  // Restarts interval accounting at `now` without emitting samples — used
  // when sampling resumes after a deliberate idle period (between chunks)
  // so the gap is not misread as zero throughput.
  void resync(TimePoint now);

  DataRate estimate() const { return estimator_->predict(); }
  Duration interval() const { return interval_; }
  ThroughputEstimator& estimator() { return *estimator_; }

  // App-limited rule (mirrors TCP delivery-rate estimation): while the
  // path is not known to be saturated, interval samples may only *raise*
  // the estimate — an underdriven path says nothing about its capacity.
  // Enable lowering only when the sampled path is deliberately driven to
  // its full rate (a tracked MP-DASH transfer on an enabled path).
  void set_can_lower(bool can_lower) { can_lower_ = can_lower; }
  bool can_lower() const { return can_lower_; }

 private:
  void close_intervals(TimePoint now);

  std::shared_ptr<ThroughputEstimator> estimator_;
  Duration interval_;
  TimePoint interval_start_ = kTimeZero;
  Bytes pending_ = 0;
  bool started_ = false;
  bool can_lower_ = true;
};

}  // namespace mpdash
