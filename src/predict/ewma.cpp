#include "predict/ewma.h"

#include <stdexcept>

namespace mpdash {

Ewma::Ewma(double weight) : weight_(weight) {
  if (weight_ <= 0.0 || weight_ > 1.0) {
    throw std::invalid_argument("EWMA weight out of (0,1]");
  }
}

void Ewma::add_sample(DataRate sample) {
  if (n_ == 0) {
    value_ = sample.bps();
  } else {
    value_ = weight_ * sample.bps() + (1.0 - weight_) * value_;
  }
  ++n_;
}

DataRate Ewma::predict() const {
  return n_ == 0 ? DataRate::bits_per_second(0)
                 : DataRate::bits_per_second(value_);
}

void Ewma::reset() {
  n_ = 0;
  value_ = 0.0;
}

}  // namespace mpdash
