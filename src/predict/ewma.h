#pragma once
// Exponentially weighted moving average predictor — the baseline the paper
// contrasts with Holt-Winters (EWMA lags on non-stationary series).

#include "predict/estimator.h"

namespace mpdash {

class Ewma final : public ThroughputEstimator {
 public:
  explicit Ewma(double weight = 0.25);

  void add_sample(DataRate sample) override;
  DataRate predict() const override;
  std::size_t sample_count() const override { return n_; }
  void reset() override;

 private:
  double weight_;
  std::size_t n_ = 0;
  double value_ = 0.0;
};

}  // namespace mpdash
