#include "predict/harmonic.h"

#include <stdexcept>

namespace mpdash {

HarmonicMean::HarmonicMean(std::size_t window) : window_(window) {
  if (window_ == 0) throw std::invalid_argument("window must be positive");
}

void HarmonicMean::add_sample(DataRate sample) {
  samples_.push_back(sample.bps());
  if (samples_.size() > window_) samples_.pop_front();
  ++n_;
}

DataRate HarmonicMean::predict() const {
  if (samples_.empty()) return DataRate::bits_per_second(0);
  double inv = 0.0;
  for (double s : samples_) {
    if (s <= 0.0) return DataRate::bits_per_second(0);
    inv += 1.0 / s;
  }
  return DataRate::bits_per_second(static_cast<double>(samples_.size()) /
                                   inv);
}

void HarmonicMean::reset() {
  n_ = 0;
  samples_.clear();
}

}  // namespace mpdash
