#pragma once
// Harmonic mean of the last k samples — the estimator FESTIVE uses for
// chunk-level throughput (robust to one-off throughput spikes).

#include <deque>

#include "predict/estimator.h"

namespace mpdash {

class HarmonicMean final : public ThroughputEstimator {
 public:
  explicit HarmonicMean(std::size_t window = 20);

  void add_sample(DataRate sample) override;
  DataRate predict() const override;
  std::size_t sample_count() const override { return n_; }
  void reset() override;

 private:
  std::size_t window_;
  std::size_t n_ = 0;
  std::deque<double> samples_;
};

}  // namespace mpdash
