#include "predict/holt_winters.h"

#include <algorithm>
#include <stdexcept>

namespace mpdash {

HoltWinters::HoltWinters(HoltWintersParams params) : params_(params) {
  if (params_.alpha <= 0.0 || params_.alpha > 1.0 || params_.beta < 0.0 ||
      params_.beta > 1.0) {
    throw std::invalid_argument("Holt-Winters parameters out of range");
  }
}

void HoltWinters::add_sample(DataRate sample) {
  const double x = sample.bps();
  switch (n_) {
    case 0:
      level_ = x;
      trend_ = 0.0;
      break;
    case 1:
      trend_ = x - prev_sample_;
      level_ = x;
      break;
    default: {
      const double prev_level = level_;
      level_ = params_.alpha * x + (1.0 - params_.alpha) * (level_ + trend_);
      trend_ =
          params_.beta * (level_ - prev_level) + (1.0 - params_.beta) * trend_;
    }
  }
  prev_sample_ = x;
  ++n_;
}

DataRate HoltWinters::predict() const {
  if (n_ == 0) return DataRate::bits_per_second(0);
  return DataRate::bits_per_second(std::max(0.0, level_ + trend_));
}

void HoltWinters::reset() {
  n_ = 0;
  level_ = trend_ = prev_sample_ = 0.0;
}

}  // namespace mpdash
