#pragma once
// Non-seasonal Holt-Winters (double exponential smoothing) throughput
// predictor, as used by the paper's kernel scheduler. Tracks a level and a
// trend so it reacts to sustained throughput drops faster than EWMA while
// smoothing over one-slot noise (He et al., SIGCOMM 2005).

#include "predict/estimator.h"

namespace mpdash {

struct HoltWintersParams {
  // Level and trend smoothing factors; He et al.'s recommended setting for
  // TCP throughput series.
  double alpha = 0.5;
  double beta = 0.2;
};

class HoltWinters final : public ThroughputEstimator {
 public:
  explicit HoltWinters(HoltWintersParams params = {});

  void add_sample(DataRate sample) override;
  DataRate predict() const override;
  std::size_t sample_count() const override { return n_; }
  void reset() override;

  double level_bps() const { return level_; }
  double trend_bps() const { return trend_; }

 private:
  HoltWintersParams params_;
  std::size_t n_ = 0;
  double level_ = 0.0;
  double trend_ = 0.0;
  double prev_sample_ = 0.0;
};

}  // namespace mpdash
