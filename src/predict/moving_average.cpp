#include "predict/moving_average.h"

#include <stdexcept>

namespace mpdash {

MovingAverage::MovingAverage(std::size_t window) : window_(window) {
  if (window_ == 0) throw std::invalid_argument("window must be positive");
}

void MovingAverage::add_sample(DataRate sample) {
  samples_.push_back(sample.bps());
  sum_ += sample.bps();
  if (samples_.size() > window_) {
    sum_ -= samples_.front();
    samples_.pop_front();
  }
  ++n_;
}

DataRate MovingAverage::predict() const {
  if (samples_.empty()) return DataRate::bits_per_second(0);
  return DataRate::bits_per_second(sum_ /
                                   static_cast<double>(samples_.size()));
}

void MovingAverage::reset() {
  n_ = 0;
  samples_.clear();
  sum_ = 0.0;
}

}  // namespace mpdash
