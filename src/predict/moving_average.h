#pragma once
// Plain windowed arithmetic moving average — completes the estimator
// family (Holt-Winters / EWMA / harmonic / SMA) used in comparisons.

#include <deque>

#include "predict/estimator.h"

namespace mpdash {

class MovingAverage final : public ThroughputEstimator {
 public:
  explicit MovingAverage(std::size_t window = 10);

  void add_sample(DataRate sample) override;
  DataRate predict() const override;
  std::size_t sample_count() const override { return n_; }
  void reset() override;

 private:
  std::size_t window_;
  std::size_t n_ = 0;
  std::deque<double> samples_;
  double sum_ = 0.0;
};

}  // namespace mpdash
