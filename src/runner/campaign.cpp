#include "runner/campaign.h"

namespace mpdash {

std::uint64_t derive_run_seed(std::uint64_t campaign_seed,
                              std::string_view key) {
  // Same FNV-1a + splitmix64 construction the rest of the codebase uses
  // for named streams; kept as its own entry point because the derivation
  // is part of the campaign determinism contract.
  return derive_stream_seed(campaign_seed, key);
}

}  // namespace mpdash
