#include "runner/campaign.h"

namespace mpdash {

std::uint64_t derive_run_seed(std::uint64_t campaign_seed,
                              std::string_view key) {
  // FNV-1a over the key bytes, offset by the campaign seed…
  std::uint64_t h = 0xcbf29ce484222325ull ^ campaign_seed;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  // …then a splitmix64 finalizer so near-identical keys land far apart.
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

}  // namespace mpdash
