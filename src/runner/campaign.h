#pragma once
// Campaign: a deterministic fan-out of independent experiment runs over a
// thread pool. This is the execution layer behind the field-study benches
// and every future scenario-grid sweep.
//
// Determinism contract (proved by tests/runner_test.cpp):
//   * Each RunSpec owns everything mutable — a derived seed, a private
//     Telemetry context, and a result slot workers write exclusively.
//     Run bodies may read shared immutable inputs only.
//   * Seeds derive from (campaign seed, run key), never from position, so
//     inserting or removing a run cannot reseed its neighbors.
//   * Results land in add-order slots; aggregation happens after the pool
//     drains. Output is therefore bitwise identical for any job count.
//   * A throwing run marks its own RunReport failed and leaves the other
//     runs untouched (its result slot keeps the default-constructed R).

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runner/progress.h"
#include "runner/thread_pool.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"

namespace mpdash {

// Stable per-run seed: splitmix64 finalization over an FNV-1a hash of the
// key, mixed with the campaign seed. Depends only on the two inputs.
std::uint64_t derive_run_seed(std::uint64_t campaign_seed,
                              std::string_view key);

// Everything a run body may touch besides its captured immutable inputs.
struct RunContext {
  int index = 0;         // position in the campaign (result-slot id)
  std::string key;       // stable identity, e.g. "Hotel Hi/festive/rate"
  std::uint64_t seed = 0;
  Telemetry& telemetry;  // private to this run; never shared with workers

  Rng rng() const { return Rng(seed); }
};

struct RunReport {
  std::string key;
  std::uint64_t seed = 0;
  bool ok = false;
  std::string error;    // exception message when !ok
  double wall_s = 0.0;  // worker wall-clock for this run
};

struct CampaignStats {
  int jobs = 1;
  int runs = 0;
  int failures = 0;
  double wall_s = 0.0;          // whole-campaign wall clock
  double run_wall_sum_s = 0.0;  // sum of per-run times ≈ serial estimate
  double speedup() const {
    return wall_s > 0.0 ? run_wall_sum_s / wall_s : 0.0;
  }
};

template <typename R>
struct CampaignResult {
  std::vector<R> results;          // add-order, index-aligned with reports
  std::vector<RunReport> reports;  // one per run, failures captured here
  CampaignStats stats;

  bool all_ok() const { return stats.failures == 0; }
  // Aborts aggregation when any run failed (benches call this: a missing
  // cell would silently skew every CDF built from the grid).
  void require_all_ok() const {
    if (all_ok()) return;
    std::string msg = std::to_string(stats.failures) + " of " +
                      std::to_string(stats.runs) + " runs failed:";
    for (const RunReport& r : reports) {
      if (!r.ok) msg += "\n  " + r.key + ": " + r.error;
    }
    throw std::runtime_error(msg);
  }
};

struct CampaignOptions {
  int jobs = 0;  // 0 → resolve_jobs(): MPDASH_JOBS env or hardware cores
  std::FILE* progress = stderr;  // nullptr silences progress and failures
};

template <typename R>
class Campaign {
 public:
  using Body = std::function<R(RunContext&)>;

  explicit Campaign(std::string name, std::uint64_t seed = 0x6d70646173686ull)
      : name_(std::move(name)), seed_(seed) {}

  // Adds a run; returns its index. `key` should be unique and stable — it
  // is the seed-derivation input and the label in reports.
  int add(std::string key, Body body) {
    const int index = static_cast<int>(specs_.size());
    specs_.push_back(Spec{derive_run_seed(seed_, key), std::move(key),
                          std::move(body)});
    return index;
  }

  std::size_t size() const { return specs_.size(); }
  const std::string& name() const { return name_; }

  CampaignResult<R> run(const CampaignOptions& opts = {}) const {
    const int jobs = resolve_jobs(opts.jobs);
    CampaignResult<R> out;
    out.results.resize(specs_.size());
    out.reports.resize(specs_.size());
    out.stats.jobs = jobs;
    out.stats.runs = static_cast<int>(specs_.size());

    ProgressReporter progress(name_, out.stats.runs, opts.progress);
    const double t0 = monotonic_seconds();
    auto run_one = [&](int i) {
      const Spec& spec = specs_[static_cast<std::size_t>(i)];
      RunReport& rep = out.reports[static_cast<std::size_t>(i)];
      rep.key = spec.key;
      rep.seed = spec.seed;
      Telemetry telemetry;
      RunContext ctx{i, spec.key, spec.seed, telemetry};
      const double r0 = monotonic_seconds();
      try {
        out.results[static_cast<std::size_t>(i)] = spec.body(ctx);
        rep.ok = true;
      } catch (const std::exception& e) {
        rep.error = e.what();
      } catch (...) {
        rep.error = "unknown exception";
      }
      rep.wall_s = monotonic_seconds() - r0;
      progress.completed(rep.key, rep.ok, rep.error);
    };

    if (jobs <= 1 || specs_.size() <= 1) {
      for (int i = 0; i < out.stats.runs; ++i) run_one(i);
    } else {
      ThreadPool pool(jobs);
      for (int i = 0; i < out.stats.runs; ++i) {
        pool.submit([&run_one, i] { run_one(i); });
      }
      pool.wait_idle();
    }

    out.stats.wall_s = monotonic_seconds() - t0;
    for (const RunReport& r : out.reports) {
      out.stats.run_wall_sum_s += r.wall_s;
      out.stats.failures += r.ok ? 0 : 1;
    }
    return out;
  }

 private:
  struct Spec {
    std::uint64_t seed;
    std::string key;
    Body body;
  };

  std::string name_;
  std::uint64_t seed_;
  std::vector<Spec> specs_;
};

}  // namespace mpdash
