#include "runner/progress.h"

#include <chrono>

#ifdef _WIN32
#include <io.h>
#define MPDASH_ISATTY _isatty
#define MPDASH_FILENO _fileno
#else
#include <unistd.h>
#define MPDASH_ISATTY isatty
#define MPDASH_FILENO fileno
#endif

namespace mpdash {

double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

ProgressReporter::ProgressReporter(std::string label, int total,
                                   std::FILE* out)
    : label_(std::move(label)),
      total_(total),
      out_(out),
      tty_(out != nullptr && MPDASH_ISATTY(MPDASH_FILENO(out)) != 0),
      start_s_(monotonic_seconds()) {}

ProgressReporter::~ProgressReporter() {
  if (out_ == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (tty_ && done_ > 0) std::fputc('\n', out_);
}

int ProgressReporter::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void ProgressReporter::print_status_locked() {
  const double elapsed = monotonic_seconds() - start_s_;
  const double eta =
      done_ > 0 ? elapsed / done_ * (total_ - done_) : 0.0;
  std::fprintf(out_, "%s[%s] %d/%d (%.0f%%) elapsed %.1fs eta %.1fs%s",
               tty_ ? "\r" : "", label_.c_str(), done_, total_,
               total_ > 0 ? 100.0 * done_ / total_ : 100.0, elapsed, eta,
               tty_ ? "" : "\n");
  std::fflush(out_);
}

void ProgressReporter::completed(const std::string& key, bool ok,
                                 const std::string& error) {
  std::lock_guard<std::mutex> lock(mu_);
  ++done_;
  if (!ok) ++failed_;
  if (out_ == nullptr) return;
  if (!ok) {
    std::fprintf(out_, "%s[%s] run '%s' FAILED: %s\n", tty_ ? "\n" : "",
                 label_.c_str(), key.c_str(), error.c_str());
  }
  if (tty_) {
    print_status_locked();
    return;
  }
  // Non-tty (logs, CI): one line per decile plus the final run.
  const int decile = total_ > 0 ? done_ * 10 / total_ : 10;
  if (decile != last_printed_decile_ || done_ == total_) {
    last_printed_decile_ = decile;
    print_status_locked();
  }
}

}  // namespace mpdash
