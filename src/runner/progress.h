#pragma once
// Thread-safe progress/ETA reporting for campaign runs. Writes to stderr
// (or any FILE*) so that campaign *results* on stdout stay byte-identical
// regardless of job count; wall-clock and ETA figures are display-only
// and never feed back into run state.

#include <cstdio>
#include <mutex>
#include <string>

namespace mpdash {

class ProgressReporter {
 public:
  // `out == nullptr` disables all output (failures included).
  ProgressReporter(std::string label, int total, std::FILE* out);
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  // Called by workers as each run finishes. Failures always print one
  // line; successes update an in-place tty status line, or print at ~10%
  // steps when `out` is not a terminal.
  void completed(const std::string& key, bool ok, const std::string& error);

  int done() const;

 private:
  void print_status_locked();

  const std::string label_;
  const int total_;
  std::FILE* const out_;
  const bool tty_;
  const double start_s_;  // monotonic clock, seconds

  mutable std::mutex mu_;
  int done_ = 0;
  int failed_ = 0;
  int last_printed_decile_ = -1;
};

// Monotonic wall clock in seconds (std::chrono::steady_clock).
double monotonic_seconds();

}  // namespace mpdash
