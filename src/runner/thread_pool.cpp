#include "runner/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace mpdash {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

int resolve_jobs(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("MPDASH_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace mpdash
