#pragma once
// Fixed-size worker pool draining a FIFO task queue — the execution
// engine behind Campaign (see campaign.h). Tasks are opaque closures;
// determinism is the *caller's* responsibility and is achieved by making
// every task write only to its own pre-allocated slot (see DESIGN.md
// "Parallel campaign execution").

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mpdash {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  // Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw (Campaign wraps run bodies in
  // a catch-all before they reach the pool).
  void submit(std::function<void()> task);

  // Blocks until the queue is empty and every worker is idle. New tasks
  // may be submitted afterwards (the pool stays alive until destruction).
  void wait_idle();

  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_task_;  // queue non-empty or stopping
  std::condition_variable cv_idle_;  // queue empty and nobody active
  int active_ = 0;
  bool stop_ = false;
};

// Worker-count resolution for --jobs style flags: `requested` > 0 wins;
// otherwise the MPDASH_JOBS environment variable; otherwise
// std::thread::hardware_concurrency() (>= 1).
int resolve_jobs(int requested);

}  // namespace mpdash
