#include "runner/watchdog.h"

#include <cstdio>

#include "runner/progress.h"

namespace mpdash {

const char* to_string(WatchdogReason r) {
  switch (r) {
    case WatchdogReason::kSimEvents: return "sim-events";
    case WatchdogReason::kWallClock: return "wall-clock";
  }
  return "?";
}

namespace {

std::string trip_message(WatchdogReason reason, std::uint64_t sim_events,
                         double budget_wall_s) {
  char buf[128];
  if (reason == WatchdogReason::kSimEvents) {
    std::snprintf(buf, sizeof buf,
                  "watchdog: sim-event budget exhausted (%llu events)",
                  static_cast<unsigned long long>(sim_events));
  } else {
    // Only the configured budget — never the measured elapsed time —
    // appears in the message, so the string is stable across machines.
    std::snprintf(buf, sizeof buf,
                  "watchdog: wall-clock budget exceeded (%.3f s)",
                  budget_wall_s);
  }
  return buf;
}

}  // namespace

WatchdogTripped::WatchdogTripped(WatchdogReason reason,
                                 std::uint64_t sim_events,
                                 double budget_wall_s)
    : std::runtime_error(trip_message(reason, sim_events, budget_wall_s)),
      reason_(reason),
      sim_events_(sim_events) {}

RunWatchdog::RunWatchdog(EventLoop& loop, const WatchdogConfig& config)
    : loop_(loop) {
  if (!config.enabled()) return;
  const std::uint64_t start_events = loop.executed_events();
  const double start_wall = monotonic_seconds();
  const WatchdogConfig cfg = config;
  EventLoop* lp = &loop;
  loop.set_interrupt(
      [lp, cfg, start_events, start_wall] {
        const std::uint64_t ran = lp->executed_events() - start_events;
        if (cfg.max_sim_events > 0 && ran >= cfg.max_sim_events) {
          throw WatchdogTripped(WatchdogReason::kSimEvents, ran,
                                cfg.max_wall_s);
        }
        if (cfg.max_wall_s > 0.0 &&
            monotonic_seconds() - start_wall >= cfg.max_wall_s) {
          throw WatchdogTripped(WatchdogReason::kWallClock, ran,
                                cfg.max_wall_s);
        }
      },
      cfg.poll_interval);
  armed_ = true;
}

RunWatchdog::~RunWatchdog() {
  if (armed_) loop_.clear_interrupt();
}

}  // namespace mpdash
