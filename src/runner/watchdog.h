#pragma once
// Per-run watchdog: sim-event and wall-clock budgets for one simulation.
//
// A chaos campaign sweeps hundreds of seeded fault plans through the full
// stack; one livelocked run (a zero-delay reschedule cycle, a recovery
// path that never converges) would otherwise pin a worker forever and
// stall the whole campaign. RunWatchdog installs an EventLoop interrupt
// hook that throws WatchdogTripped once a budget is exhausted, so the run
// unwinds cleanly and the campaign reports it as a `hung` outcome instead
// of hanging itself.
//
// The sim-event budget is the primary trigger: executed-event counts are a
// pure function of the seed, so a trip is bitwise reproducible and keeps
// campaign digests jobs-invariant. The wall-clock budget is a generous
// nondeterministic backstop for runs that burn real time without burning
// events (it should only ever fire when something is truly wedged).

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/event_loop.h"

namespace mpdash {

struct WatchdogConfig {
  std::uint64_t max_sim_events = 0;  // executed-event budget; 0 = unlimited
  double max_wall_s = 0.0;           // wall-clock budget; 0 = unlimited
  // Events between budget checks. Polling is one branch per event plus
  // one clock read per interval, so the default is cheap and still trips
  // within microseconds of real livelock.
  std::uint64_t poll_interval = 4096;

  bool enabled() const { return max_sim_events > 0 || max_wall_s > 0.0; }

  friend bool operator==(const WatchdogConfig&,
                         const WatchdogConfig&) = default;
};

enum class WatchdogReason : std::uint8_t {
  kSimEvents,  // deterministic: executed-event budget exhausted
  kWallClock,  // nondeterministic backstop
};

const char* to_string(WatchdogReason r);

// Thrown from inside EventLoop::run()/run_until() when a budget trips.
// what() is deterministic for kSimEvents (event counts only) and mentions
// only the configured budget for kWallClock, so hung-run fingerprints stay
// comparable across worker counts and machines.
class WatchdogTripped : public std::runtime_error {
 public:
  WatchdogTripped(WatchdogReason reason, std::uint64_t sim_events,
                  double budget_wall_s);

  WatchdogReason reason() const { return reason_; }
  // Events executed by this run at the tripping poll.
  std::uint64_t sim_events() const { return sim_events_; }

 private:
  WatchdogReason reason_;
  std::uint64_t sim_events_;
};

// RAII: arms the budgets on construction (no-op when !config.enabled()),
// clears the loop's interrupt hook on destruction — including when the
// trip itself unwinds the stack.
class RunWatchdog {
 public:
  RunWatchdog(EventLoop& loop, const WatchdogConfig& config);
  ~RunWatchdog();

  RunWatchdog(const RunWatchdog&) = delete;
  RunWatchdog& operator=(const RunWatchdog&) = delete;

  bool armed() const { return armed_; }

 private:
  EventLoop& loop_;
  bool armed_ = false;
};

}  // namespace mpdash
