#include "sim/event_loop.h"

#include <cassert>
#include <utility>

namespace mpdash {

EventId EventLoop::schedule_at(TimePoint at, Callback cb) {
  if (at < now_) at = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return EventId{id};
}

EventId EventLoop::schedule_in(Duration delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventLoop::cancel(EventId id) {
  if (!id.valid()) return false;
  if (callbacks_.erase(id.value) == 0) return false;
  ++cancelled_pending_;
  // A schedule/cancel-heavy workload (RTO timers re-armed per ack) would
  // otherwise accumulate stale heap entries without bound; rebuild once
  // they outnumber the live ones.
  if (cancelled_pending_ > 64 && cancelled_pending_ > callbacks_.size()) {
    compact();
  }
  return true;
}

void EventLoop::compact() {
  std::vector<Entry> live;
  live.reserve(callbacks_.size());
  while (!queue_.empty()) {
    if (callbacks_.contains(queue_.top().id)) live.push_back(queue_.top());
    queue_.pop();
  }
  queue_ = std::priority_queue<Entry, std::vector<Entry>, std::greater<>>(
      std::greater<>{}, std::move(live));
  cancelled_pending_ = 0;
}

bool EventLoop::step() {
  // Interrupt poll runs before the queue is touched, so a throwing hook
  // aborts the run with the next event still scheduled (nothing is lost
  // half-executed).
  if (interrupt_ && --interrupt_countdown_ == 0) {
    interrupt_countdown_ = interrupt_interval_;
    interrupt_();
  }
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      queue_.pop();  // cancelled
      if (cancelled_pending_ > 0) --cancelled_pending_;
      continue;
    }
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    queue_.pop();
    assert(top.at >= now_);
    now_ = top.at;
    ++executed_;
    if (telemetry_) executed_counter_.increment();
    cb();
    return true;
  }
  return false;
}

void EventLoop::run() {
  while (step()) {
  }
}

void EventLoop::run_until(TimePoint deadline) {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (callbacks_.find(top.id) == callbacks_.end()) {
      queue_.pop();
      if (cancelled_pending_ > 0) --cancelled_pending_;
      continue;
    }
    if (top.at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

bool EventLoop::has_pending() const {
  // Stale (cancelled) heap entries don't count.
  return !callbacks_.empty();
}

void EventLoop::set_interrupt(std::function<void()> check,
                              std::uint64_t interval) {
  interrupt_ = std::move(check);
  interrupt_interval_ = interval > 0 ? interval : 1;
  interrupt_countdown_ = interrupt_interval_;
}

void EventLoop::clear_interrupt() {
  interrupt_ = nullptr;
  interrupt_interval_ = 0;
  interrupt_countdown_ = 0;
}

void EventLoop::set_telemetry(Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_) {
    executed_counter_ = telemetry_->metrics().counter("sim.executed_events");
  } else {
    executed_counter_ = Counter{};
  }
}

}  // namespace mpdash
