#include "sim/event_loop.h"

#include <cassert>
#include <utility>

namespace mpdash {

EventId EventLoop::schedule_at(TimePoint at, Callback cb) {
  if (at < now_) at = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return EventId{id};
}

EventId EventLoop::schedule_in(Duration delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventLoop::cancel(EventId id) {
  if (!id.valid()) return false;
  return callbacks_.erase(id.value) > 0;
}

bool EventLoop::step() {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) {
      queue_.pop();  // cancelled
      continue;
    }
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    queue_.pop();
    assert(top.at >= now_);
    now_ = top.at;
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void EventLoop::run() {
  while (step()) {
  }
}

void EventLoop::run_until(TimePoint deadline) {
  while (!queue_.empty()) {
    const Entry top = queue_.top();
    if (callbacks_.find(top.id) == callbacks_.end()) {
      queue_.pop();
      continue;
    }
    if (top.at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

bool EventLoop::has_pending() const {
  // Stale (cancelled) heap entries don't count.
  return !callbacks_.empty();
}

}  // namespace mpdash
