#pragma once
// Discrete-event simulation core.
//
// Every subsystem (links, TCP subflows, the DASH player's playback clock,
// the MP-DASH decision timer) schedules callbacks on one EventLoop. Events
// at equal timestamps fire in scheduling order, which keeps runs bitwise
// deterministic for a given seed.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "telemetry/telemetry.h"
#include "util/units.h"

namespace mpdash {

// Handle for cancelling a scheduled event. Default-constructed ids are
// invalid and safe to cancel (no-op).
struct EventId {
  std::uint64_t value = 0;
  bool valid() const { return value != 0; }
};

class EventLoop {
 public:
  using Callback = std::function<void()>;

  TimePoint now() const { return now_; }

  // Schedules `cb` to run at absolute time `at` (clamped to now()).
  EventId schedule_at(TimePoint at, Callback cb);
  // Schedules `cb` to run `delay` from now.
  EventId schedule_in(Duration delay, Callback cb);

  // Cancels a pending event. Cancelling an already-fired or invalid id is a
  // no-op. Returns true if the event was pending.
  bool cancel(EventId id);

  // Runs events until the queue is empty.
  void run();
  // Runs events with timestamp <= deadline, then advances now() to deadline.
  void run_until(TimePoint deadline);

  // True if any event is pending.
  bool has_pending() const;
  std::size_t executed_events() const { return executed_; }
  // Live (non-cancelled) callbacks awaiting execution.
  std::size_t pending_callbacks() const { return callbacks_.size(); }
  // Heap entries including stale ones left behind by cancel(); bounded by
  // compaction (see cancel()), exposed for the regression tests.
  std::size_t queued_entries() const { return queue_.size(); }

  // Attaches telemetry (counter `sim.executed_events`). Pass nullptr to
  // detach. Never changes scheduling behavior.
  void set_telemetry(Telemetry* telemetry);

  // Installs a poll hook called once every `interval` executed events,
  // before the event runs. The hook may throw to abort run()/run_until()
  // — that is how RunWatchdog kills a livelocked simulation without the
  // loop itself knowing about budgets. The check never observes or
  // mutates scheduling state, so an armed-but-silent hook cannot change
  // what a run computes. One hook at a time; `interval` 0 means 1.
  void set_interrupt(std::function<void()> check, std::uint64_t interval);
  void clear_interrupt();

  // Allocates a simulation-unique id (packet ids, etc.). Keeping the
  // counter on the loop — not in a process-wide static — lets concurrent
  // simulations share nothing mutable, so parallel campaigns stay both
  // race-free and bitwise deterministic.
  std::uint64_t allocate_id() { return next_alloc_id_++; }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;
    std::uint64_t id;
    // Ordering for min-heap via std::greater.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Pops and runs the next event; returns false if queue empty after
  // discarding cancelled entries.
  bool step();
  // Drops every stale heap entry once cancelled entries dominate the heap
  // (cancel() leaves them behind; without this a schedule/cancel loop
  // would grow the heap without bound).
  void compact();

  TimePoint now_ = kTimeZero;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_alloc_id_ = 1;
  std::size_t executed_ = 0;
  std::size_t cancelled_pending_ = 0;  // stale entries still in the heap
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // Callbacks keyed by id; erased on cancel so stale heap entries are
  // skipped cheaply.
  std::unordered_map<std::uint64_t, Callback> callbacks_;

  Telemetry* telemetry_ = nullptr;
  Counter executed_counter_;

  std::function<void()> interrupt_;
  std::uint64_t interrupt_interval_ = 0;
  std::uint64_t interrupt_countdown_ = 0;
};

}  // namespace mpdash
