#pragma once
// MetricsSnapshotter: samples a Telemetry registry on a fixed sim-time
// cadence into a MetricsTimeline, turning end-of-run scalars into
// per-run time series (QoE, byte share, window state over time).
//
// The snapshotter schedules events of its own, so timeline runs are not
// event-count-identical to bare runs — but sampling only *reads* the
// registry, so with a fixed cadence the simulated behavior (and any
// concurrently captured trace) is bitwise identical across --jobs.

#include "sim/event_loop.h"
#include "telemetry/telemetry.h"

namespace mpdash {

class MetricsSnapshotter {
 public:
  // Samples `telemetry`'s registry into `out` every `interval` (first
  // sample one interval after construction) until `done` flips true.
  // All references are borrowed and must outlive the snapshotter.
  MetricsSnapshotter(EventLoop& loop, Telemetry& telemetry,
                     MetricsTimeline& out, Duration interval,
                     const bool& done)
      : loop_(loop),
        telemetry_(telemetry),
        out_(out),
        interval_(interval),
        done_(done) {
    arm();
  }

  std::size_t samples() const { return out_.snapshots().size(); }

 private:
  void arm() {
    loop_.schedule_in(interval_, [this] {
      out_.record(telemetry_.metrics().snapshot(loop_.now()));
      if (!done_) arm();
    });
  }

  EventLoop& loop_;
  Telemetry& telemetry_;
  MetricsTimeline& out_;
  Duration interval_;
  const bool& done_;
};

}  // namespace mpdash
