#include "tcp/subflow.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace mpdash {

SubflowSender::SubflowSender(EventLoop& loop, SubflowConfig config,
                             std::function<void(Packet)> transmit,
                             std::function<void()> on_capacity)
    : loop_(loop),
      config_(config),
      transmit_(std::move(transmit)),
      on_capacity_(std::move(on_capacity)),
      cwnd_(config.initial_cwnd),
      srtt_(config.initial_rtt),
      rttvar_(config.initial_rtt / 2) {}

bool SubflowSender::can_send() const {
  return static_cast<double>(inflight_.size()) < cwnd_;
}

void SubflowSender::set_telemetry(Telemetry* telemetry,
                                  const std::string& scope, bool emit_trace) {
  telemetry_ = telemetry;
  emit_trace_ = emit_trace;
  if (!telemetry_) {
    cwnd_gauge_ = Gauge{};
    srtt_gauge_ = Gauge{};
    rtt_histogram_ = Histogram{};
    retransmissions_counter_ = Counter{};
    timeouts_counter_ = Counter{};
    return;
  }
  MetricsRegistry& m = telemetry_->metrics();
  const std::string prefix = scope + "." + std::to_string(config_.path_id);
  cwnd_gauge_ = m.gauge(prefix + ".cwnd");
  srtt_gauge_ = m.gauge(prefix + ".srtt_ms");
  rtt_histogram_ = m.histogram(prefix + ".rtt_ms",
                               {10, 20, 50, 100, 200, 500, 1000});
  retransmissions_counter_ = m.counter(prefix + ".retransmissions");
  timeouts_counter_ = m.counter(prefix + ".timeouts");
  publish_window_state();
}

void SubflowSender::publish_window_state() {
  cwnd_gauge_.set(cwnd_);
  srtt_gauge_.set(to_seconds(srtt_) * 1e3);
  if (emit_trace_ && telemetry_->tracing()) {
    TraceRecord r;
    r.at = loop_.now();
    r.type = TraceType::kSubflowUpdate;
    r.path_id = config_.path_id;
    r.cwnd = cwnd_;
    r.ssthresh = ssthresh_;
    r.srtt_ms = to_seconds(srtt_) * 1e3;
    telemetry_->emit(r);
  }
}

Duration SubflowSender::rto() const {
  Duration base = srtt_ + 4 * rttvar_;
  base = std::clamp(base, config_.min_rto, config_.max_rto);
  // The backoff shift must not escape the cap either: max_rto bounds the
  // *effective* timeout (RFC 6298 §5.5), not just its pre-backoff base.
  return std::min(base * (1 << std::min(rto_backoff_, 6)), config_.max_rto);
}

void SubflowSender::send_data(std::uint64_t data_seq, Bytes len,
                              std::vector<SegmentRef> segments) {
  assert(len > 0 && len <= kMaxSegmentSize);
  // Congestion window validation (RFC 7661 spirit): after an idle period
  // the ack clock is gone, so restart from the initial window instead of
  // blasting a stale, arbitrarily large cwnd into the bottleneck queue.
  if (inflight_.empty() && last_send_ != kTimeZero &&
      loop_.now() - last_send_ > rto()) {
    cwnd_ = std::min(cwnd_, config_.initial_cwnd);
  }
  last_send_ = loop_.now();
  const std::uint64_t seq = next_seq_++;
  // Retransmits reuse this SentPacket, so the span sticks to the chunk
  // request that originally queued the bytes. Pipelined senders stamp the
  // owning span onto segments at enqueue time; segment tags therefore take
  // precedence over the ambient active span (a packet can only carry bytes
  // from one request — StreamBuffer never merges segments).
  std::uint64_t span = 0;
  for (const SegmentRef& seg : segments) {
    if (seg.span != 0) {
      span = seg.span;
      break;
    }
  }
  if (span == 0) span = telemetry_ ? telemetry_->active_span() : 0;
  auto [it, inserted] = inflight_.emplace(
      seq, SentPacket{data_seq, len, std::move(segments), loop_.now(), span});
  assert(inserted);
  transmit_packet(seq, it->second, /*retransmit=*/false);
  bytes_sent_ += len;
  arm_rto();
}

void SubflowSender::transmit_packet(std::uint64_t subflow_seq,
                                    const SentPacket& sp, bool retransmit) {
  Packet p;
  p.id = loop_.allocate_id();
  p.kind = PacketKind::kData;
  p.path_id = config_.path_id;
  p.span = sp.span;
  p.subflow_seq = subflow_seq;
  p.data_seq = sp.data_seq;
  p.payload_len = sp.payload_len;
  p.segments = sp.segments;
  p.is_retransmit = retransmit;
  p.wire_size = sp.payload_len + kPacketHeaderBytes;
  p.sent_at = loop_.now();
  transmit_(std::move(p));
}

void SubflowSender::update_rtt(Duration sample) {
  if (!have_rtt_sample_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    have_rtt_sample_ = true;
    return;
  }
  const auto diff = srtt_ > sample ? srtt_ - sample : sample - srtt_;
  rttvar_ = (3 * rttvar_ + diff) / 4;
  srtt_ = (7 * srtt_ + sample) / 8;
}

void SubflowSender::on_ack(const Packet& ack) {
  const std::uint64_t seq = ack.ack_subflow_seq;
  if (seq == 0) return;  // bare control ack (path-mask update only)

  auto it = inflight_.find(seq);
  if (it == inflight_.end()) return;  // duplicate/stale ack

  if (!ack.echo_is_retransmit) {
    update_rtt(loop_.now() - ack.echo_sent_at);  // Karn's rule
    if (telemetry_) {
      rtt_histogram_.record(to_seconds(loop_.now() - ack.echo_sent_at) * 1e3);
    }
  }
  rto_backoff_ = 0;
  consecutive_timeouts_ = 0;

  bytes_acked_ += it->second.payload_len;
  // Congestion avoidance / slow start.
  if (cwnd_ < ssthresh_) {
    cwnd_ += 1.0;
  } else {
    cwnd_ += 1.0 / cwnd_;
  }
  const TimePoint acked_sent_at = it->second.sent_at;
  inflight_.erase(it);

  // Time-based (RACK-style) loss accounting: any packet transmitted
  // before the one just acknowledged has been "overtaken". This covers
  // retransmissions naturally — their clock restarts at retransmit time.
  for (auto& [s, sp] : inflight_) {
    if (sp.sent_at < acked_sent_at) ++sp.sacked_above;
  }
  detect_losses();
  arm_rto();
  if (telemetry_) publish_window_state();
  if (can_send() && on_capacity_) on_capacity_();
}

void SubflowSender::enter_recovery(std::uint64_t trigger_seq) {
  if (trigger_seq < recovery_until_) return;  // already reacted this window
  recovery_until_ = next_seq_;
  ssthresh_ = std::max(cwnd_ / 2.0, config_.min_cwnd);
  cwnd_ = ssthresh_;
}

void SubflowSender::detect_losses() {
  // At most one retransmission per incoming ack: keeps recovery
  // self-clocked at the bottleneck rate instead of re-flooding the queue
  // that just overflowed (RFC 6675's pipe rule, radically simplified).
  for (auto& [seq, sp] : inflight_) {
    if (sp.sacked_above >= 3 && !sp.retransmitted) {
      enter_recovery(seq);
      sp.retransmitted = true;
      sp.sent_at = loop_.now();
      ++retransmissions_;
      if (telemetry_) retransmissions_counter_.increment();
      transmit_packet(seq, sp, /*retransmit=*/true);
      break;
    }
  }
}

void SubflowSender::arm_rto() {
  loop_.cancel(rto_timer_);
  rto_timer_ = EventId{};
  if (inflight_.empty()) return;
  rto_timer_ = loop_.schedule_in(rto(), [this] { on_rto(); });
}

void SubflowSender::on_rto() {
  rto_timer_ = EventId{};
  if (inflight_.empty()) return;
  ++timeouts_;
  ++rto_backoff_;
  ++consecutive_timeouts_;
  if (telemetry_) timeouts_counter_.increment();
  if (config_.max_consecutive_rtos > 0 &&
      consecutive_timeouts_ >= config_.max_consecutive_rtos && on_failure_) {
    // The path is declared dead. No further retransmission here — the
    // failure handler decides what happens to the stranded data (it
    // usually calls take_unacked() and reinjects on live subflows).
    on_failure_();
    return;
  }
  ssthresh_ = std::max(cwnd_ / 2.0, config_.min_cwnd);
  cwnd_ = 1.0;
  recovery_until_ = next_seq_;
  // An RTO voids the retransmitted flags (a retransmission may itself
  // have been lost) but keeps the overtake counters — fast retransmit
  // must stay armed for the rest of the window.
  for (auto& [s, p] : inflight_) p.retransmitted = false;
  // Retransmit the oldest outstanding packet; later ones follow as acks
  // (or further timeouts) arrive.
  auto& [seq, sp] = *inflight_.begin();
  sp.retransmitted = true;
  sp.sent_at = loop_.now();
  sp.sacked_above = 0;
  ++retransmissions_;
  if (telemetry_) retransmissions_counter_.increment();
  transmit_packet(seq, sp, /*retransmit=*/true);
  arm_rto();
  if (telemetry_) publish_window_state();
  if (can_send() && on_capacity_) on_capacity_();
}

std::vector<UnackedData> SubflowSender::take_unacked() {
  loop_.cancel(rto_timer_);
  rto_timer_ = EventId{};
  std::vector<UnackedData> out;
  out.reserve(inflight_.size());
  for (auto& [seq, sp] : inflight_) {
    out.push_back({sp.data_seq, sp.payload_len, std::move(sp.segments)});
  }
  inflight_.clear();
  return out;
}

void SubflowSender::reset_for_reconnect() {
  assert(inflight_.empty());
  loop_.cancel(rto_timer_);
  rto_timer_ = EventId{};
  cwnd_ = config_.initial_cwnd;
  ssthresh_ = 1e9;
  recovery_until_ = next_seq_;
  srtt_ = config_.initial_rtt;
  rttvar_ = config_.initial_rtt / 2;
  have_rtt_sample_ = false;
  rto_backoff_ = 0;
  consecutive_timeouts_ = 0;
  last_send_ = kTimeZero;
  if (telemetry_) publish_window_state();
}

}  // namespace mpdash
