#pragma once
// Per-path TCP sender: NewReno-style congestion control with selective
// acknowledgments, fast retransmit, and RTO recovery.
//
// Each MPTCP subflow runs one of these independently ("decoupled"
// congestion control, the configuration the paper uses for mobile
// multipath). The receiver side acks every data packet individually; loss
// shows up as acks arriving for later sequence numbers (3-dup rule) or as
// a retransmission timeout.

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "link/packet.h"
#include "sim/event_loop.h"

namespace mpdash {

struct SubflowConfig {
  int path_id = 0;
  double initial_cwnd = 10.0;   // packets (RFC 6928 IW10)
  double min_cwnd = 2.0;
  Duration initial_rtt = milliseconds(100);
  Duration min_rto = milliseconds(200);
  Duration max_rto = seconds(60.0);
  // Failure detection: after this many consecutive RTOs with no ack in
  // between, the subflow is declared dead and the failure handler fires
  // instead of another retransmission. 0 disables detection (seed
  // behavior: retransmit forever with capped backoff).
  int max_consecutive_rtos = 0;
};

// Connection-level payload stranded on a dead subflow, handed back so the
// MPTCP endpoint can reinject it on surviving paths.
struct UnackedData {
  std::uint64_t data_seq = 0;
  Bytes payload_len = 0;
  std::vector<SegmentRef> segments;
};

class SubflowSender {
 public:
  // `transmit` puts a packet on this subflow's wire (the path's link).
  // `on_capacity` is invoked whenever cwnd space (re)appears so the
  // connection can pump more data.
  SubflowSender(EventLoop& loop, SubflowConfig config,
                std::function<void(Packet)> transmit,
                std::function<void()> on_capacity);

  // True when a new data packet fits in the congestion window.
  bool can_send() const;

  // Sends payload [data_seq, data_seq + len) over this subflow.
  void send_data(std::uint64_t data_seq, Bytes len,
                 std::vector<SegmentRef> segments);

  // Processes an acknowledgment for this subflow.
  void on_ack(const Packet& ack);

  // Invoked (from inside the RTO handler) when max_consecutive_rtos fire
  // without an intervening ack. The handler owns the fallout: typically
  // take_unacked() + reinjection elsewhere.
  void set_failure_handler(std::function<void()> h) {
    on_failure_ = std::move(h);
  }
  void set_max_consecutive_rtos(int n) { config_.max_consecutive_rtos = n; }

  // Drains every outstanding packet (in subflow-send order), cancels the
  // RTO timer, and returns the stranded connection-level data. The sender
  // is left idle; pair with reset_for_reconnect() before reusing it.
  std::vector<UnackedData> take_unacked();

  // Fresh-start state for a revived path: initial window, cleared RTT
  // estimate and backoff. Subflow sequence numbers keep increasing so
  // stale acks from before the failure can never be confused with new
  // transmissions.
  void reset_for_reconnect();

  // Attaches telemetry under `{scope}.{path_id}.*` (cwnd/srtt gauges, RTT
  // histogram, retransmission counters). `emit_trace` additionally emits a
  // kSubflowUpdate record per cwnd/RTT change — enabled for the
  // data-sending (server) direction only, which is what the paper's
  // cross-layer tool plots. nullptr detaches.
  void set_telemetry(Telemetry* telemetry, const std::string& scope,
                     bool emit_trace);

  int path_id() const { return config_.path_id; }
  double cwnd() const { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  Duration srtt() const { return srtt_; }
  Duration rto() const;
  std::size_t inflight_packets() const { return inflight_.size(); }
  Bytes bytes_sent() const { return bytes_sent_; }
  Bytes bytes_acked() const { return bytes_acked_; }
  std::size_t retransmissions() const { return retransmissions_; }
  std::size_t timeouts() const { return timeouts_; }
  int consecutive_timeouts() const { return consecutive_timeouts_; }

 private:
  struct SentPacket {
    std::uint64_t data_seq;
    Bytes payload_len;
    std::vector<SegmentRef> segments;
    TimePoint sent_at;
    std::uint64_t span = 0;  // chunk span active at first transmission
    int sacked_above = 0;   // acks seen for higher sequence numbers
    bool retransmitted = false;
  };

  void transmit_packet(std::uint64_t subflow_seq, const SentPacket& sp,
                       bool retransmit);
  void update_rtt(Duration sample);
  void publish_window_state();
  void enter_recovery(std::uint64_t trigger_seq);
  void detect_losses();
  void arm_rto();
  void on_rto();

  EventLoop& loop_;
  SubflowConfig config_;
  std::function<void(Packet)> transmit_;
  std::function<void()> on_capacity_;
  std::function<void()> on_failure_;

  double cwnd_;
  double ssthresh_ = 1e9;
  std::uint64_t next_seq_ = 1;
  std::uint64_t recovery_until_ = 0;  // seqs below this don't re-halve cwnd
  std::map<std::uint64_t, SentPacket> inflight_;

  TimePoint last_send_ = kTimeZero;
  Duration srtt_;
  Duration rttvar_;
  bool have_rtt_sample_ = false;
  int rto_backoff_ = 0;
  int consecutive_timeouts_ = 0;
  EventId rto_timer_;

  Bytes bytes_sent_ = 0;
  Bytes bytes_acked_ = 0;
  std::size_t retransmissions_ = 0;
  std::size_t timeouts_ = 0;

  Telemetry* telemetry_ = nullptr;
  bool emit_trace_ = false;
  Gauge cwnd_gauge_;
  Gauge srtt_gauge_;
  Histogram rtt_histogram_;
  Counter retransmissions_counter_;
  Counter timeouts_counter_;
};

}  // namespace mpdash
