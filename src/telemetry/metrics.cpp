#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mpdash {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

void Histogram::record(double v) {
  if (!slot_) return;
  auto& s = *slot_;
  // Inclusive upper edges (Prometheus `le` convention): first bound >= v.
  const auto it = std::lower_bound(s.bounds.begin(), s.bounds.end(), v);
  ++s.bucket_counts[static_cast<std::size_t>(it - s.bounds.begin())];
  if (s.count == 0) {
    s.min = v;
    s.max = v;
  } else {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  ++s.count;
  s.sum += v;
}

detail::MetricSlot& MetricsRegistry::slot(std::string_view name,
                                          MetricKind kind,
                                          std::vector<double>* bounds) {
  if (auto it = index_.find(name); it != index_.end()) {
    detail::MetricSlot& existing = *it->second;
    if (existing.kind != kind) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered as " +
                                  to_string(existing.kind));
    }
    if (bounds && existing.bounds != *bounds) {
      throw std::invalid_argument("histogram '" + std::string(name) +
                                  "' already registered with other bounds");
    }
    return existing;
  }
  detail::MetricSlot s;
  s.name = std::string(name);
  s.kind = kind;
  if (bounds) {
    if (!std::is_sorted(bounds->begin(), bounds->end())) {
      throw std::invalid_argument("histogram bounds must be sorted");
    }
    s.bounds = *bounds;
    s.bucket_counts.assign(bounds->size() + 1, 0);
  }
  slots_.push_back(std::move(s));
  index_.emplace(slots_.back().name, &slots_.back());
  return slots_.back();
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(&slot(name, MetricKind::kCounter, nullptr));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(&slot(name, MetricKind::kGauge, nullptr));
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds) {
  return Histogram(&slot(name, MetricKind::kHistogram, &bounds));
}

MetricsSnapshot MetricsRegistry::snapshot(TimePoint at) const {
  MetricsSnapshot snap;
  snap.at = at;
  snap.values.reserve(slots_.size());
  // index_ is name-ordered, making snapshots stable across runs.
  for (const auto& [name, s] : index_) {
    MetricValue v;
    v.name = s->name;
    v.kind = s->kind;
    v.value = s->value;
    v.bounds = s->bounds;
    v.bucket_counts = s->bucket_counts;
    v.count = s->count;
    v.sum = s->sum;
    v.min = s->min;
    v.max = s->max;
    snap.values.push_back(std::move(v));
  }
  return snap;
}

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"time_s\":" + fmt_double(to_seconds(at)) +
                    ",\"metrics\":{";
  bool first = true;
  for (const auto& v : values) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += v.name;  // metric names are plain identifiers, no escaping needed
    out += "\":";
    if (v.kind == MetricKind::kHistogram) {
      out += "{\"count\":" + std::to_string(v.count) +
             ",\"sum\":" + fmt_double(v.sum) + ",\"min\":" + fmt_double(v.min) +
             ",\"max\":" + fmt_double(v.max) + ",\"buckets\":[";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < v.bucket_counts.size(); ++i) {
        if (i > 0) out += ',';
        cumulative += v.bucket_counts[i];
        out += "{\"le\":";
        out += i < v.bounds.size() ? fmt_double(v.bounds[i]) : "\"inf\"";
        out += ",\"count\":" + std::to_string(cumulative) + "}";
      }
      out += "]}";
    } else {
      out += fmt_double(v.value);
    }
  }
  out += "}}";
  return out;
}

std::string MetricsTimeline::to_csv() const {
  std::string out = "time_s,metric,value\n";
  auto row = [&out](double t, const std::string& name, double value) {
    out += fmt_double(t);
    out += ',';
    out += name;
    out += ',';
    out += fmt_double(value);
    out += '\n';
  };
  for (const auto& snap : snapshots_) {
    const double t = to_seconds(snap.at);
    for (const auto& v : snap.values) {
      if (v.kind == MetricKind::kHistogram) {
        row(t, v.name + ".count", static_cast<double>(v.count));
        row(t, v.name + ".sum", v.sum);
        if (v.count > 0) {
          row(t, v.name + ".mean", v.sum / static_cast<double>(v.count));
          row(t, v.name + ".min", v.min);
          row(t, v.name + ".max", v.max);
        }
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < v.bucket_counts.size(); ++i) {
          cumulative += v.bucket_counts[i];
          const std::string suffix =
              i < v.bounds.size() ? ".le_" + fmt_double(v.bounds[i])
                                  : std::string(".le_inf");
          row(t, v.name + suffix, static_cast<double>(cumulative));
        }
      } else {
        row(t, v.name, v.value);
      }
    }
  }
  return out;
}

}  // namespace mpdash
