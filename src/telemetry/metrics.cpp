#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace mpdash {

const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

void Histogram::record(double v) {
  if (!slot_) return;
  auto& s = *slot_;
  // Inclusive upper edges (Prometheus `le` convention): first bound >= v.
  const auto it = std::lower_bound(s.bounds.begin(), s.bounds.end(), v);
  ++s.bucket_counts[static_cast<std::size_t>(it - s.bounds.begin())];
  if (s.count == 0) {
    s.min = v;
    s.max = v;
  } else {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  ++s.count;
  s.sum += v;
}

detail::MetricSlot& MetricsRegistry::slot(std::string_view name,
                                          MetricKind kind,
                                          std::vector<double>* bounds) {
  if (auto it = index_.find(name); it != index_.end()) {
    detail::MetricSlot& existing = *it->second;
    if (existing.kind != kind) {
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered as " +
                                  to_string(existing.kind));
    }
    if (bounds && existing.bounds != *bounds) {
      throw std::invalid_argument("histogram '" + std::string(name) +
                                  "' already registered with other bounds");
    }
    return existing;
  }
  detail::MetricSlot s;
  s.name = std::string(name);
  s.kind = kind;
  if (bounds) {
    if (!std::is_sorted(bounds->begin(), bounds->end())) {
      throw std::invalid_argument("histogram bounds must be sorted");
    }
    s.bounds = *bounds;
    s.bucket_counts.assign(bounds->size() + 1, 0);
  }
  slots_.push_back(std::move(s));
  index_.emplace(slots_.back().name, &slots_.back());
  return slots_.back();
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(&slot(name, MetricKind::kCounter, nullptr));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(&slot(name, MetricKind::kGauge, nullptr));
}

Histogram MetricsRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds) {
  return Histogram(&slot(name, MetricKind::kHistogram, &bounds));
}

MetricsSnapshot MetricsRegistry::snapshot(TimePoint at) const {
  // index_ is name-ordered, making snapshots stable across runs; the
  // flat cache only memoizes that order between registrations.
  if (ordered_.size() != slots_.size()) {
    ordered_.clear();
    ordered_.reserve(slots_.size());
    for (const auto& [name, s] : index_) ordered_.push_back(s);
  }
  MetricsSnapshot snap;
  snap.at = at;
  snap.values.reserve(ordered_.size());
  for (const detail::MetricSlot* s : ordered_) {
    snap.values.emplace_back(MetricValue{s->name, s->kind, s->value, s->bounds,
                                         s->bucket_counts, s->count, s->sum,
                                         s->min, s->max});
  }
  return snap;
}

void MetricsTimeline::record(MetricsSnapshot snap) {
  bool fast = snap.values.size() == last_.size();
  if (fast) {
    for (std::size_t i = 0; i < snap.values.size(); ++i) {
      if (snap.values[i].name.data() != last_[i].first ||
          snap.values[i].name != *last_[i].second) {
        fast = false;
        break;
      }
    }
  }
  if (fast) {
    for (std::size_t i = 0; i < snap.values.size(); ++i) {
      snap.values[i].name = *last_[i].second;
    }
  } else {
    last_.clear();
    last_.reserve(snap.values.size());
    for (MetricValue& v : snap.values) {
      // The content check guards against address reuse (a new registry
      // allocating a slot where an old one died): re-intern whenever the
      // cached copy drifts.
      std::string& owned = names_[static_cast<const void*>(v.name.data())];
      if (owned != v.name) owned.assign(v.name);
      last_.emplace_back(v.name.data(), &owned);
      v.name = owned;
    }
  }
  snapshots_.push_back(std::move(snap));
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  const auto it = std::lower_bound(
      values.begin(), values.end(), name,
      [](const MetricValue& v, std::string_view n) { return v.name < n; });
  if (it == values.end() || it->name != name) return nullptr;
  return &*it;
}

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"time_s\":" + fmt_double(to_seconds(at)) +
                    ",\"metrics\":{";
  bool first = true;
  for (const auto& v : values) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += v.name;  // metric names are plain identifiers, no escaping needed
    out += "\":";
    if (v.kind == MetricKind::kHistogram) {
      out += "{\"count\":" + std::to_string(v.count) +
             ",\"sum\":" + fmt_double(v.sum) + ",\"min\":" + fmt_double(v.min) +
             ",\"max\":" + fmt_double(v.max) + ",\"buckets\":[";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < v.bucket_counts.size(); ++i) {
        if (i > 0) out += ',';
        cumulative += v.bucket_counts[i];
        out += "{\"le\":";
        out += i < v.bounds.size() ? fmt_double(v.bounds[i]) : "\"inf\"";
        out += ",\"count\":" + std::to_string(cumulative) + "}";
      }
      out += "]}";
    } else {
      out += fmt_double(v.value);
    }
  }
  out += "}}";
  return out;
}

std::string MetricsTimeline::to_csv() const {
  std::string out = "time_s,metric,value\n";
  auto row = [&out](double t, std::string_view name, double value) {
    out += fmt_double(t);
    out += ',';
    out += name;
    out += ',';
    out += fmt_double(value);
    out += '\n';
  };
  for (const auto& snap : snapshots_) {
    const double t = to_seconds(snap.at);
    for (const auto& v : snap.values) {
      if (v.kind == MetricKind::kHistogram) {
        const std::string base(v.name);
        row(t, base + ".count", static_cast<double>(v.count));
        row(t, base + ".sum", v.sum);
        if (v.count > 0) {
          row(t, base + ".mean", v.sum / static_cast<double>(v.count));
          row(t, base + ".min", v.min);
          row(t, base + ".max", v.max);
        }
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < v.bucket_counts.size(); ++i) {
          cumulative += v.bucket_counts[i];
          const std::string suffix =
              i < v.bounds.size() ? ".le_" + fmt_double(v.bounds[i])
                                  : std::string(".le_inf");
          row(t, base + suffix, static_cast<double>(cumulative));
        }
      } else {
        row(t, v.name, v.value);
      }
    }
  }
  return out;
}

}  // namespace mpdash
