#pragma once
// Metrics half of the telemetry layer: a registry of named counters,
// gauges, and fixed-bucket histograms that every subsystem publishes into.
//
// Handles returned by the registry are stable for its lifetime, so
// instrumented hot paths pay one pointer write per update — the name
// lookup happens once, at registration. Snapshots can be taken at any
// simulated time and exported to CSV (long format, one metric per row)
// or JSON.
//
// Naming scheme (see DESIGN.md "Observability"): dot-separated,
// subsystem-first, instance ids inline — e.g. `mptcp.subflow.1.cwnd`,
// `link.wifi.down.queue_bytes`, `sched.activations`, `player.buffer_s`.

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace mpdash {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind k);

namespace detail {

// One registered metric. Counters and gauges use `value`; histograms use
// the bucket arrays (bucket_counts has bounds.size() + 1 entries, the last
// being the overflow bucket).
struct MetricSlot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

}  // namespace detail

// Monotonically increasing total. add() with a negative delta is invalid
// and ignored.
class Counter {
 public:
  Counter() = default;
  void add(double delta) {
    if (slot_ && delta > 0.0) slot_->value += delta;
  }
  void increment() { add(1.0); }
  double value() const { return slot_ ? slot_->value : 0.0; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::MetricSlot* slot) : slot_(slot) {}
  detail::MetricSlot* slot_ = nullptr;
};

// Last-written-wins sample of a current level (queue depth, cwnd, ...).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (slot_) slot_->value = v;
  }
  double value() const { return slot_ ? slot_->value : 0.0; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::MetricSlot* slot) : slot_(slot) {}
  detail::MetricSlot* slot_ = nullptr;
};

// Fixed-bucket histogram: bucket i counts samples <= bounds[i] (cumulative
// style is applied at export time; storage is per-bucket).
class Histogram {
 public:
  Histogram() = default;
  void record(double v);
  std::uint64_t count() const { return slot_ ? slot_->count : 0; }
  double sum() const { return slot_ ? slot_->sum : 0.0; }
  double mean() const {
    return slot_ && slot_->count > 0
               ? slot_->sum / static_cast<double>(slot_->count)
               : 0.0;
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::MetricSlot* slot) : slot_(slot) {}
  detail::MetricSlot* slot_ = nullptr;
};

// One metric's state at snapshot time.
struct MetricValue {
  // Views the registry's slot name (slots have stable addresses and names
  // never mutate after registration), so sampling on a tight cadence does
  // not allocate one string per metric per snapshot. A raw snapshot must
  // not outlive the registry it was taken from; MetricsTimeline::record
  // re-points names into storage the timeline owns, so recorded
  // snapshots may outlive the registry (sessions tear their private
  // Telemetry down before the caller reads the series).
  std::string_view name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;                        // counter total / gauge level
  std::vector<double> bounds;                // histogram only
  std::vector<std::uint64_t> bucket_counts;  // histogram only
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct MetricsSnapshot {
  TimePoint at = kTimeZero;
  std::vector<MetricValue> values;  // sorted by name

  // Binary search by name (values are sorted); nullptr when absent.
  const MetricValue* find(std::string_view name) const;

  std::string to_json() const;
};

class MetricsRegistry {
 public:
  // Registration is idempotent: the same name always returns a handle to
  // the same slot. Re-registering a name under a different kind (or a
  // histogram under different bounds) throws std::invalid_argument.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, std::vector<double> bounds);

  std::size_t size() const { return slots_.size(); }
  MetricsSnapshot snapshot(TimePoint at) const;

 private:
  detail::MetricSlot& slot(std::string_view name, MetricKind kind,
                           std::vector<double>* bounds);

  std::deque<detail::MetricSlot> slots_;  // deque: stable addresses
  std::map<std::string, detail::MetricSlot*, std::less<>> index_;
  // Name-ordered slot pointers, rebuilt lazily when registrations change;
  // lets the snapshotter walk a contiguous array instead of map nodes.
  mutable std::vector<const detail::MetricSlot*> ordered_;
};

// Accumulates snapshots over a run for time-series export. Recording
// interns every metric name into timeline-owned storage (keyed by the
// registry slot's stable address, so steady-state sampling does one
// pointer-keyed lookup per metric instead of a string allocation), which
// lets the series be read after the registry that produced it is gone.
class MetricsTimeline {
 public:
  void record(MetricsSnapshot snap);
  const std::vector<MetricsSnapshot>& snapshots() const { return snapshots_; }
  bool empty() const { return snapshots_.empty(); }

  // Long format: `time_s,metric,value`. Histograms flatten to
  // `<name>.count`, `<name>.sum`, `<name>.mean`, `<name>.min`,
  // `<name>.max`, and cumulative `<name>.le_<bound>` rows.
  std::string to_csv() const;

 private:
  std::vector<MetricsSnapshot> snapshots_;
  // node-based: interned strings keep stable addresses as the map grows
  std::map<const void*, std::string> names_;
  // Steady-state fast path: one registry feeds a timeline, so successive
  // snapshots carry the same slot-name pointers in the same order and a
  // single sweep of pointer+content checks replaces the map lookups.
  std::vector<std::pair<const char*, const std::string*>> last_;
};

}  // namespace mpdash
