#include "telemetry/prometheus.h"

#include <cstdint>
#include <cstdio>

namespace mpdash {
namespace {

bool name_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

const char* type_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

// Renders `{a="x",b="y"}` from pre-sanitized pairs plus an optional
// trailing le pair; empty string when there is nothing to attach.
std::string label_block(
    const std::vector<std::pair<std::string, std::string>>& labels,
    const std::string* le) {
  if (labels.empty() && le == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + v + "\"";
  }
  if (le != nullptr) {
    if (!first) out += ',';
    out += "le=\"" + *le + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') {
    out += '_';
  }
  for (char c : name) out += name_char_ok(c) ? c : '_';
  if (out.empty()) out = "_";
  return out;
}

std::string prometheus_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snap,
                          const PrometheusOptions& opts) {
  std::vector<std::pair<std::string, std::string>> labels;
  labels.reserve(opts.labels.size());
  for (const auto& [k, v] : opts.labels) {
    labels.emplace_back(prometheus_name(k), prometheus_escape_label(v));
  }

  std::string stamp;
  if (opts.timestamps) {
    stamp = " " + std::to_string(static_cast<std::int64_t>(
                      to_seconds(snap.at) * 1000.0));
  }

  std::string out;
  for (const MetricValue& v : snap.values) {
    const std::string name = prometheus_name(v.name);
    out += "# HELP " + name + " Simulation metric " + std::string(v.name) +
           "\n";
    out += "# TYPE " + name + " " + type_name(v.kind) + "\n";
    if (v.kind == MetricKind::kHistogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < v.bucket_counts.size(); ++i) {
        cumulative += v.bucket_counts[i];
        const std::string le =
            i < v.bounds.size() ? fmt_double(v.bounds[i]) : "+Inf";
        out += name + "_bucket" + label_block(labels, &le) + " " +
               std::to_string(cumulative) + stamp + "\n";
      }
      out += name + "_sum" + label_block(labels, nullptr) + " " +
             fmt_double(v.sum) + stamp + "\n";
      out += name + "_count" + label_block(labels, nullptr) + " " +
             std::to_string(v.count) + stamp + "\n";
    } else {
      out += name + label_block(labels, nullptr) + " " + fmt_double(v.value) +
             stamp + "\n";
    }
  }
  return out;
}

}  // namespace mpdash
