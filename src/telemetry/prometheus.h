#pragma once
// Prometheus text-exposition (format 0.0.4) export for MetricsSnapshot:
// the bridge from the simulator's metrics registry to anything that can
// scrape or ingest the standard text format (promtool, Prometheus's
// textfile collector, Grafana Agent).
//
// Mapping:
//   * dot-separated registry names become underscore-separated metric
//     names (`player.buffer_s` → `player_buffer_s`); any character
//     outside [a-zA-Z0-9_:] is replaced with '_', and a leading digit is
//     prefixed with '_';
//   * every family gets `# HELP` (citing the original registry name) and
//     `# TYPE` lines;
//   * counters and gauges emit one sample; histograms emit cumulative
//     `_bucket{le="..."}` samples (inclusive upper edges, matching the
//     registry's recording convention) ending with `le="+Inf"`, plus
//     `_sum` and `_count`;
//   * optional caller-supplied labels are attached to every sample with
//     label-value escaping per the exposition format (backslash, double
//     quote, newline).

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

namespace mpdash {

struct PrometheusOptions {
  // Attached to every sample, in the given order, e.g.
  // {{"run", "chaos/3"}, {"scheme", "mpdash-rate"}}. Values are escaped;
  // names are sanitized like metric names.
  std::vector<std::pair<std::string, std::string>> labels;
  // Append the snapshot's simulated time as a millisecond timestamp to
  // every sample line (off by default: simulated clocks start at 0, which
  // real scrapers would read as 1970).
  bool timestamps = false;
};

// Sanitizes one metric or label name to [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string prometheus_name(std::string_view name);

// Escapes a label value (backslash, double quote, newline → \\, \", \n).
std::string prometheus_escape_label(std::string_view value);

// Renders the whole snapshot as exposition text, families in snapshot
// (name-sorted) order. Deterministic: equal snapshots render equal text.
std::string to_prometheus(const MetricsSnapshot& snap,
                          const PrometheusOptions& opts = {});

}  // namespace mpdash
