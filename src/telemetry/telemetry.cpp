#include "telemetry/telemetry.h"

#include <algorithm>

namespace mpdash {

void Telemetry::add_sink(TraceSink* sink) {
  if (!sink) return;
  if (std::find(sinks_.begin(), sinks_.end(), sink) != sinks_.end()) return;
  sinks_.push_back(sink);
}

void Telemetry::remove_sink(TraceSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

}  // namespace mpdash
