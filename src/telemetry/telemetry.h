#pragma once
// The telemetry context: one MetricsRegistry plus a fan-out list of trace
// sinks, shared by every instrumented subsystem of a run.
//
// Components hold a `Telemetry*` that defaults to nullptr; every
// instrumentation site guards on it (and on `tracing()` for record
// emission), so the disabled fast path costs a single predictable branch
// and simulation results are bitwise identical either way.

#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace_sink.h"

namespace mpdash {

class Telemetry {
 public:
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Sinks are borrowed and must outlive the context (or be removed).
  void add_sink(TraceSink* sink);
  void remove_sink(TraceSink* sink);

  bool tracing() const { return !sinks_.empty(); }

  // Whether packet-delivery records should carry payload segments (needed
  // for HTTP reconstruction in analysis; off for plain JSONL traces).
  void set_capture_payload(bool on) { capture_payload_ = on; }
  bool capture_payload() const { return capture_payload_; }

  // Span bookkeeping: the player opens one span per chunk request and
  // marks it active; emit() stamps the active id onto every record that
  // does not already carry one. Pure bookkeeping — allocation and
  // stamping never feed back into simulation state, so runs stay bitwise
  // identical with spans on or off.
  SpanId open_span() { return next_span_id_++; }
  void set_active_span(SpanId id) { active_span_ = id; }
  SpanId active_span() const { return active_span_; }

  void emit(TraceRecord& r) {
    if (r.span == 0) r.span = active_span_;
    for (TraceSink* s : sinks_) s->on_record(r);
  }
  void emit(TraceRecord&& r) { emit(r); }

 private:
  MetricsRegistry metrics_;
  std::vector<TraceSink*> sinks_;
  bool capture_payload_ = false;
  SpanId next_span_id_ = 1;
  SpanId active_span_ = 0;
};

}  // namespace mpdash
