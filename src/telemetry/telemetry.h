#pragma once
// The telemetry context: one MetricsRegistry plus a fan-out list of trace
// sinks, shared by every instrumented subsystem of a run.
//
// Components hold a `Telemetry*` that defaults to nullptr; every
// instrumentation site guards on it (and on `tracing()` for record
// emission), so the disabled fast path costs a single predictable branch
// and simulation results are bitwise identical either way.

#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace_sink.h"

namespace mpdash {

class Telemetry {
 public:
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Sinks are borrowed and must outlive the context (or be removed).
  void add_sink(TraceSink* sink);
  void remove_sink(TraceSink* sink);

  bool tracing() const { return !sinks_.empty(); }

  // Whether packet-delivery records should carry payload segments (needed
  // for HTTP reconstruction in analysis; off for plain JSONL traces).
  void set_capture_payload(bool on) { capture_payload_ = on; }
  bool capture_payload() const { return capture_payload_; }

  void emit(const TraceRecord& r) {
    for (TraceSink* s : sinks_) s->on_record(r);
  }

 private:
  MetricsRegistry metrics_;
  std::vector<TraceSink*> sinks_;
  bool capture_payload_ = false;
};

}  // namespace mpdash
