#pragma once
// The telemetry context: one MetricsRegistry plus a fan-out list of trace
// sinks, shared by every instrumented subsystem of a run.
//
// Components hold a `Telemetry*` that defaults to nullptr; every
// instrumentation site guards on it (and on `tracing()` for record
// emission), so the disabled fast path costs a single predictable branch
// and simulation results are bitwise identical either way.

#include <algorithm>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace_sink.h"

namespace mpdash {

class Telemetry {
 public:
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  // Sinks are borrowed and must outlive the context (or be removed).
  void add_sink(TraceSink* sink);
  void remove_sink(TraceSink* sink);

  bool tracing() const { return !sinks_.empty(); }

  // Whether packet-delivery records should carry payload segments (needed
  // for HTTP reconstruction in analysis; off for plain JSONL traces).
  void set_capture_payload(bool on) { capture_payload_ = on; }
  bool capture_payload() const { return capture_payload_; }

  // Span bookkeeping: the player opens one span per chunk request and
  // pushes it onto a stack of concurrently-open spans; emit() stamps the
  // top of the stack onto every record that does not already carry one.
  // A pipelined player keeps several spans open at once (one per in-flight
  // chunk), pushing each on issue and popping it — possibly out of stack
  // order under faults — when the chunk completes or is abandoned. Pure
  // bookkeeping — allocation and stamping never feed back into simulation
  // state, so runs stay bitwise identical with spans on or off.
  SpanId open_span() { return next_span_id_++; }
  void push_span(SpanId id) {
    if (id != 0) span_stack_.push_back(id);
  }
  // Removes that specific id (chunks can finish out of issue order when
  // retries reshuffle them), not blindly the top.
  void pop_span(SpanId id) {
    const auto it =
        std::find(span_stack_.rbegin(), span_stack_.rend(), id);
    if (it != span_stack_.rend()) span_stack_.erase(std::next(it).base());
  }
  // Legacy single-span interface: replaces the whole stack (0 clears it).
  // Sequential call sites keep their exact pre-stack behavior.
  void set_active_span(SpanId id) {
    span_stack_.clear();
    push_span(id);
  }
  SpanId active_span() const {
    return span_stack_.empty() ? 0 : span_stack_.back();
  }
  std::size_t open_span_count() const { return span_stack_.size(); }
  bool span_is_open(SpanId id) const {
    return std::find(span_stack_.begin(), span_stack_.end(), id) !=
           span_stack_.end();
  }

  void emit(TraceRecord& r) {
    if (r.span == 0) r.span = active_span();
    for (TraceSink* s : sinks_) s->on_record(r);
  }
  void emit(TraceRecord&& r) { emit(r); }

  // For trace-global records (fault windows) that must never inherit an
  // ambient span: whatever r.span says is what the sinks see.
  void emit_unspanned(TraceRecord& r) {
    for (TraceSink* s : sinks_) s->on_record(r);
  }
  void emit_unspanned(TraceRecord&& r) { emit_unspanned(r); }

 private:
  MetricsRegistry metrics_;
  std::vector<TraceSink*> sinks_;
  bool capture_payload_ = false;
  SpanId next_span_id_ = 1;
  std::vector<SpanId> span_stack_;
};

}  // namespace mpdash
