#include "telemetry/trace_sink.h"

#include <charconv>
#include <cstdio>
#include <cstring>

namespace mpdash {

const char* to_string(TraceType t) {
  switch (t) {
    case TraceType::kPacketSend: return "packet_send";
    case TraceType::kPacketDeliver: return "packet_deliver";
    case TraceType::kPacketDrop: return "packet_drop";
    case TraceType::kSubflowUpdate: return "subflow_update";
    case TraceType::kSchedDecision: return "sched_decision";
    case TraceType::kPathMask: return "path_mask";
    case TraceType::kPlayer: return "player";
    case TraceType::kFault: return "fault";
    case TraceType::kHttp: return "http";
    case TraceType::kSpanStart: return "span_start";
    case TraceType::kSpanEnd: return "span_end";
  }
  return "unknown";
}

bool parse_trace_types(std::string_view spec, std::uint32_t* mask) {
  std::uint32_t out = 0;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view name = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view()
                                           : spec.substr(comma + 1);
    while (!name.empty() && name.front() == ' ') name.remove_prefix(1);
    while (!name.empty() && name.back() == ' ') name.remove_suffix(1);
    if (name.empty()) continue;
    bool found = false;
    for (int i = 0; i < kTraceTypeCount; ++i) {
      if (name == to_string(static_cast<TraceType>(i))) {
        out |= 1u << static_cast<unsigned>(i);
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  *mask = out;
  return true;
}

RingBufferSink::RingBufferSink(std::size_t capacity)
    : buffer_(capacity == 0 ? 1 : capacity) {}

void RingBufferSink::on_record(const TraceRecord& r) {
  buffer_[head_] = r;
  head_ = (head_ + 1) % buffer_.size();
  if (size_ < buffer_.size()) ++size_;
  ++total_;
}

std::vector<TraceRecord> RingBufferSink::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(size_);
  // Oldest record sits at head_ once the buffer has wrapped.
  const std::size_t start =
      size_ == buffer_.size() ? head_ : (head_ + buffer_.size() - size_) %
                                            buffer_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  return out;
}

void RingBufferSink::clear() {
  head_ = 0;
  size_ = 0;
  total_ = 0;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Shortest decimal string that parses back to exactly `v`, so the JSONL
// loader (src/analysis/trace_load) round-trips every double bit-for-bit.
std::string fmt_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

}  // namespace

std::string trace_record_to_json(const TraceRecord& r) {
  std::string out = "{\"t\":" + fmt_double(to_seconds(r.at)) + ",\"type\":\"";
  out += to_string(r.type);
  out += '"';
  auto num = [&out](const char* key, double v) {
    out += ",\"";
    out += key;
    out += "\":";
    out += fmt_double(v);
  };
  auto integer = [&out](const char* key, std::int64_t v) {
    out += ",\"";
    out += key;
    out += "\":";
    out += std::to_string(v);
  };
  if (r.span != 0) integer("span", static_cast<std::int64_t>(r.span));
  if (r.path_id >= 0) integer("path", r.path_id);
  switch (r.type) {
    case TraceType::kPacketSend:
    case TraceType::kPacketDeliver:
    case TraceType::kPacketDrop:
      integer("link", r.link_id);
      out += ",\"dir\":\"";
      out += r.is_downlink() ? "down" : "up";
      out += "\",\"kind\":\"";
      out += r.kind == PacketKind::kData ? "data" : "ack";
      out += '"';
      integer("wire", r.wire_size);
      if (r.kind == PacketKind::kData) {
        integer("payload", r.payload_len);
        integer("seq", static_cast<std::int64_t>(r.data_seq));
        if (r.retransmit) out += ",\"retx\":true";
      }
      break;
    case TraceType::kSubflowUpdate:
      num("cwnd", r.cwnd);
      num("ssthresh", r.ssthresh);
      num("srtt_ms", r.srtt_ms);
      break;
    case TraceType::kSchedDecision:
      if (r.label) {
        out += ",\"decision\":\"" + json_escape(r.label) + '"';
      }
      out += ",\"enabled\":";
      out += r.enabled ? "true" : "false";
      num("budget_s", r.budget_s);
      num("deliverable", r.deliverable_bytes);
      num("remaining", r.remaining_bytes);
      break;
    case TraceType::kPathMask:
      integer("mask", r.mask);
      break;
    case TraceType::kPlayer:
      if (r.label) {
        out += ",\"event\":\"" + json_escape(r.label) + '"';
      }
      if (r.level >= 0) integer("level", r.level);
      if (r.chunk >= 0) integer("chunk", r.chunk);
      if (r.bytes > 0) integer("bytes", r.bytes);
      num("value", r.value);
      break;
    case TraceType::kFault:
      if (r.label) {
        out += ",\"fault\":\"" + json_escape(r.label) + '"';
      }
      out += ",\"phase\":\"";
      out += r.enabled ? "start" : "end";
      out += '"';
      num("value", r.value);
      break;
    case TraceType::kHttp:
      if (r.label) {
        out += ",\"event\":\"" + json_escape(r.label) + '"';
      }
      if (r.level >= 0) integer("attempt", r.level);
      num("value", r.value);
      break;
    case TraceType::kSpanStart:
      if (r.label) {
        out += ",\"name\":\"" + json_escape(r.label) + '"';
      }
      if (r.level >= 0) integer("level", r.level);
      if (r.chunk >= 0) integer("chunk", r.chunk);
      if (r.bytes > 0) integer("bytes", r.bytes);
      num("deadline_s", r.value);
      break;
    case TraceType::kSpanEnd:
      if (r.label) {
        out += ",\"status\":\"" + json_escape(r.label) + '"';
      }
      if (r.level >= 0) integer("level", r.level);
      if (r.chunk >= 0) integer("chunk", r.chunk);
      if (r.bytes > 0) integer("bytes", r.bytes);
      num("elapsed_s", r.value);
      break;
  }
  out += '}';
  return out;
}

JsonlSink::JsonlSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {}

JsonlSink::~JsonlSink() {
  if (file_) std::fclose(file_);
}

void JsonlSink::on_record(const TraceRecord& r) {
  if (!file_) return;
  const std::string line = trace_record_to_json(r);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  ++written_;
}

}  // namespace mpdash
