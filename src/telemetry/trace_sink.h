#pragma once
// Structured event tracing: the cross-layer record stream the analysis
// tool (src/analysis) consumes, and the simulator's equivalent of the
// paper's tcpdump + player-log capture (§6).
//
// Every instrumented subsystem emits TraceRecords keyed off the event
// loop's simulated clock. Records are plain data — emitting one never
// feeds back into simulation state, so runs are bitwise identical with
// and without sinks attached.
//
// Two sink implementations ship here:
//   * RingBufferSink — bounded, allocation-free after construction;
//     always cheap enough to leave attached.
//   * JsonlSink — streams one JSON object per line to a file (the
//     `mpdash_sim --trace out.jsonl` backend).
// TraceCollector (unbounded) backs full-session capture for analysis.

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "link/packet.h"
#include "util/units.h"

namespace mpdash {

enum class TraceType : std::uint8_t {
  kPacketSend,     // packet offered to a link (enqueue)
  kPacketDeliver,  // packet crossed the link
  kPacketDrop,     // queue overflow or random loss
  kSubflowUpdate,  // cwnd/RTT change on a data-sending subflow (per ack/RTO)
  kSchedDecision,  // Algorithm-1 path enable/disable with its inputs
  kPathMask,       // decision-function mask signalled to the peer
  kPlayer,         // bridged DASH player event
  kFault,          // fault-injection event (label = fault kind, value =
                   // parameter; path_id when link-scoped)
  kHttp,           // HTTP client lifecycle (label = request/timeout/retry/
                   // response/giveup; level = attempt number)
  kSpanStart,      // causal span opened (label = span name, chunk/level/
                   // bytes describe the request, value = deadline seconds)
  kSpanEnd,        // causal span closed (label = outcome, value = elapsed
                   // seconds from span start)
};

inline constexpr int kTraceTypeCount = 11;

const char* to_string(TraceType t);

// Parses a comma-separated list of trace-type names ("packet_send,fault",
// the strings to_string() produces) into a bitmask of (1u << type).
// Returns false and leaves *mask untouched on an unknown name.
bool parse_trace_types(std::string_view spec, std::uint32_t* mask);

// A span id is a chunk-scoped causality key: every record emitted while a
// chunk request is in flight carries the id of the kSpanStart that opened
// it (0 = no span). Ids are allocated per Telemetry context, so campaign
// runs with private contexts stay deterministic under any --jobs.
using SpanId = std::uint64_t;

struct TraceRecord {
  TimePoint at = kTimeZero;
  TraceType type = TraceType::kPacketSend;
  SpanId span = 0;  // owning chunk span, stamped by Telemetry::emit
  int path_id = -1;
  int link_id = -1;  // even = downlink, odd = uplink (see NetPath)

  // --- packet events ---
  PacketKind kind = PacketKind::kData;
  Bytes wire_size = 0;
  Bytes payload_len = 0;
  std::uint64_t data_seq = 0;
  bool retransmit = false;
  // Payload content, captured on delivery only when the owning Telemetry
  // has payload capture on (needed for HTTP reconstruction in analysis).
  std::vector<SegmentRef> segments;

  // --- subflow updates ---
  double cwnd = 0.0;
  double ssthresh = 0.0;
  double srtt_ms = 0.0;

  // --- scheduler decisions (Algorithm 1 inputs at decision time) ---
  bool enabled = false;
  double budget_s = 0.0;           // alpha*D - timeSpent
  double deliverable_bytes = 0.0;  // what the kept cheaper set can move
  double remaining_bytes = 0.0;    // S - sent
  std::uint32_t mask = 0;          // kPathMask: the signalled path mask

  // --- player events / decision labels ---
  // Static-storage string (event name, decision kind); never owned.
  const char* label = nullptr;
  int level = -1;
  int chunk = -1;
  Bytes bytes = 0;
  double value = 0.0;  // buffer seconds, stall seconds, ...

  bool is_packet() const {
    return type == TraceType::kPacketSend || type == TraceType::kPacketDeliver ||
           type == TraceType::kPacketDrop;
  }
  bool is_downlink() const { return link_id >= 0 && link_id % 2 == 0; }
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_record(const TraceRecord& r) = 0;
};

// Bounded ring buffer: keeps the newest `capacity` records, overwriting
// the oldest once full.
class RingBufferSink final : public TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity);

  void on_record(const TraceRecord& r) override;

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buffer_.size(); }
  // Records lost to wraparound so far.
  std::uint64_t overwritten() const { return total_ - size_; }
  std::uint64_t total_seen() const { return total_; }
  // Retained records, oldest first.
  std::vector<TraceRecord> snapshot() const;
  void clear();

 private:
  std::vector<TraceRecord> buffer_;
  std::size_t head_ = 0;  // next write position
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

// Unbounded in-memory capture — the full-fidelity trace the cross-layer
// analyzer consumes.
class TraceCollector final : public TraceSink {
 public:
  void on_record(const TraceRecord& r) override { records_.push_back(r); }
  const std::vector<TraceRecord>& records() const { return records_; }
  std::vector<TraceRecord> take() { return std::move(records_); }
  void clear() { records_.clear(); }

 private:
  std::vector<TraceRecord> records_;
};

// Streams records as JSON Lines. Payload segments are summarized by
// length, never serialized.
class JsonlSink final : public TraceSink {
 public:
  // Opens `path` for writing; ok() reports failure.
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  void on_record(const TraceRecord& r) override;

  bool ok() const { return file_ != nullptr; }
  std::uint64_t records_written() const { return written_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t written_ = 0;
};

// Forwards only records whose type is set in `mask` (bit = 1u << type) to
// the wrapped sink. Backs `mpdash_sim --trace-types a,b,c` so long chaos
// runs can drop packet-level records from the JSONL capture.
class TypeFilterSink final : public TraceSink {
 public:
  TypeFilterSink(TraceSink* inner, std::uint32_t mask)
      : inner_(inner), mask_(mask) {}

  void on_record(const TraceRecord& r) override {
    if (inner_ && (mask_ & (1u << static_cast<unsigned>(r.type)))) {
      inner_->on_record(r);
    }
  }

  std::uint32_t mask() const { return mask_; }

 private:
  TraceSink* inner_;
  std::uint32_t mask_;
};

// Renders one record as a single-line JSON object (no trailing newline).
std::string trace_record_to_json(const TraceRecord& r);

// JSON string escaping per RFC 8259 (quotes, backslash, control chars).
std::string json_escape(std::string_view s);

}  // namespace mpdash
