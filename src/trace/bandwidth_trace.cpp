#include "trace/bandwidth_trace.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mpdash {

BandwidthTrace::BandwidthTrace(std::vector<RatePoint> points)
    : points_(std::move(points)) {
  if (!points_.empty() && points_.front().start != kTimeZero) {
    throw std::invalid_argument("trace must start at t=0");
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].start <= points_[i - 1].start) {
      throw std::invalid_argument("trace points must be strictly increasing");
    }
  }
}

BandwidthTrace BandwidthTrace::constant(DataRate rate) {
  return BandwidthTrace({RatePoint{kTimeZero, rate}});
}

void BandwidthTrace::set_loop(Duration period) {
  if (period <= kDurationZero) {
    throw std::invalid_argument("loop period must be positive");
  }
  loop_period_ = period;
}

TimePoint BandwidthTrace::fold(TimePoint t) const {
  if (loop_period_ <= kDurationZero) return t;
  return TimePoint(t.count() % loop_period_.count());
}

std::size_t BandwidthTrace::segment_index(TimePoint t) const {
  // Last point with start <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](TimePoint v, const RatePoint& p) { return v < p.start; });
  assert(it != points_.begin());
  return static_cast<std::size_t>(std::distance(points_.begin(), it)) - 1;
}

DataRate BandwidthTrace::rate_at(TimePoint t) const {
  if (points_.empty()) return DataRate::bits_per_second(0);
  if (t < kTimeZero) t = kTimeZero;
  return points_[segment_index(fold(t))].rate;
}

Bytes BandwidthTrace::bytes_between(TimePoint from, TimePoint to) const {
  if (points_.empty() || to <= from) return 0;
  // Accumulate fractional bytes to avoid per-segment truncation bias.
  double bytes = 0.0;
  TimePoint t = from;
  while (t < to) {
    const TimePoint folded = fold(t);
    const std::size_t idx = segment_index(folded);
    // End of current constant-rate segment, in absolute time.
    TimePoint seg_end;
    if (idx + 1 < points_.size()) {
      seg_end = t + (points_[idx + 1].start - folded);
    } else if (looped()) {
      seg_end = t + (loop_period_ - folded);
    } else {
      seg_end = to;  // final rate holds forever
    }
    const TimePoint upto = std::min(seg_end, to);
    bytes += points_[idx].rate.bps() / 8.0 * to_seconds(upto - t);
    t = upto;
  }
  return static_cast<Bytes>(bytes);
}

TimePoint BandwidthTrace::time_to_deliver(TimePoint from, Bytes bytes) const {
  if (bytes <= 0) return from;
  if (points_.empty()) return TimePoint::max();
  double remaining = static_cast<double>(bytes);
  TimePoint t = from;
  // Guard against a zero-rate tail that never completes.
  const int kMaxSegments = 1'000'000;
  for (int i = 0; i < kMaxSegments; ++i) {
    const TimePoint folded = fold(t);
    const std::size_t idx = segment_index(folded);
    const double rate_Bps = points_[idx].rate.bps() / 8.0;
    TimePoint seg_end;
    bool final_segment = false;
    if (idx + 1 < points_.size()) {
      seg_end = t + (points_[idx + 1].start - folded);
    } else if (looped()) {
      seg_end = t + (loop_period_ - folded);
    } else {
      final_segment = true;
      seg_end = TimePoint::max();
    }
    if (rate_Bps > 0.0) {
      const double needed_s = remaining / rate_Bps;
      const TimePoint done = t + seconds(needed_s);
      if (final_segment || done <= seg_end) return done;
      remaining -= rate_Bps * to_seconds(seg_end - t);
    } else if (final_segment) {
      return TimePoint::max();
    }
    t = seg_end;
  }
  return TimePoint::max();
}

TimePoint BandwidthTrace::last_change() const {
  return points_.empty() ? kTimeZero : points_.back().start;
}

DataRate BandwidthTrace::mean_rate(Duration horizon) const {
  if (horizon <= kDurationZero) return DataRate::bits_per_second(0);
  return rate_of(bytes_between(kTimeZero, TimePoint(horizon)), horizon);
}

BandwidthTrace BandwidthTrace::scaled(double factor) const {
  std::vector<RatePoint> pts = points_;
  for (auto& p : pts) p.rate = p.rate * factor;
  BandwidthTrace t(std::move(pts));
  if (looped()) t.set_loop(loop_period_);
  return t;
}

}  // namespace mpdash
