#pragma once
// Piecewise-constant bandwidth-over-time traces.
//
// A BandwidthTrace is the simulator's stand-in for a real radio channel:
// links draw their instantaneous capacity from it, the offline-optimal
// scheduler integrates it, and the trace generators in generators.h produce
// profiles matching the paper's synthetic and field conditions.

#include <vector>

#include "util/units.h"

namespace mpdash {

struct RatePoint {
  TimePoint start;       // segment begins here...
  DataRate rate;         // ...and holds this rate until the next point
};

class BandwidthTrace {
 public:
  BandwidthTrace() = default;
  // Points must be sorted by start time with strictly increasing starts and
  // points.front().start == 0. An empty trace has zero rate everywhere.
  explicit BandwidthTrace(std::vector<RatePoint> points);

  static BandwidthTrace constant(DataRate rate);

  // Rate in effect at time t. Past the last point the trace either holds
  // the final rate (default) or wraps around if `looped` was set.
  DataRate rate_at(TimePoint t) const;

  // Bytes deliverable over [from, to) at full utilization.
  Bytes bytes_between(TimePoint from, TimePoint to) const;

  // Earliest time >= from by which `bytes` can be delivered at full
  // utilization; Duration::max()-based sentinel (TimePoint::max()) if never.
  TimePoint time_to_deliver(TimePoint from, Bytes bytes) const;

  // Duration covered by explicit points (start of last segment).
  TimePoint last_change() const;

  // When set, times are taken modulo `period` (for replaying short field
  // traces under long experiments).
  void set_loop(Duration period);
  bool looped() const { return loop_period_ > kDurationZero; }
  Duration loop_period() const { return loop_period_; }

  const std::vector<RatePoint>& points() const { return points_; }

  // Mean rate over [0, horizon).
  DataRate mean_rate(Duration horizon) const;

  // Returns a trace scaled by `factor` (useful for what-if sweeps).
  BandwidthTrace scaled(double factor) const;

 private:
  TimePoint fold(TimePoint t) const;
  // Index of segment containing folded time t.
  std::size_t segment_index(TimePoint t) const;

  std::vector<RatePoint> points_;
  Duration loop_period_ = kDurationZero;
};

}  // namespace mpdash
