#include "trace/generators.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace mpdash {
namespace {

void check_slot(Duration slot, Duration horizon) {
  if (slot <= kDurationZero || horizon < slot) {
    throw std::invalid_argument("bad slot/horizon");
  }
}

}  // namespace

BandwidthTrace gen_jitter(const JitterParams& p, Rng& rng) {
  check_slot(p.slot, p.horizon);
  std::vector<RatePoint> pts;
  const double floor_bps = 0.05 * p.mean.bps();
  for (TimePoint t = kTimeZero; t < TimePoint(p.horizon); t += p.slot) {
    const double bps =
        rng.normal(p.mean.bps(), p.sigma_fraction * p.mean.bps());
    pts.push_back(
        {t, DataRate::bits_per_second(std::max(bps, floor_bps))});
  }
  return BandwidthTrace(std::move(pts));
}

BandwidthTrace gen_field(const FieldParams& p, Rng& rng) {
  check_slot(p.slot, p.horizon);
  std::vector<RatePoint> pts;
  // Log-domain AR(1): log(x_{k+1}) = log(x_k) + theta*(log(mean)-log(x_k)) + eps.
  const double log_mean = std::log(p.mean.bps());
  // Choose innovation sigma so the stationary marginal roughly matches
  // sigma_fraction: stationary sd of AR(1) = eps_sd / sqrt(1-(1-theta)^2).
  const double target_log_sd = std::sqrt(std::log1p(
      p.sigma_fraction * p.sigma_fraction));
  const double phi = 1.0 - p.reversion;
  const double eps_sd = target_log_sd * std::sqrt(1.0 - phi * phi);

  double log_x = log_mean;
  TimePoint fade_until = kTimeZero;
  for (TimePoint t = kTimeZero; t < TimePoint(p.horizon); t += p.slot) {
    log_x = log_x + p.reversion * (log_mean - log_x) + rng.normal(0, eps_sd);
    double bps = std::exp(log_x);
    if (t < fade_until) {
      bps *= p.fade_depth;
    } else if (rng.uniform() < p.fade_probability_per_slot) {
      fade_until = t + p.fade_duration;
      bps *= p.fade_depth;
    }
    bps = std::max(bps, 0.02 * p.mean.bps());
    pts.push_back({t, DataRate::bits_per_second(bps)});
  }
  return BandwidthTrace(std::move(pts));
}

BandwidthTrace gen_mobility_walk(const MobilityParams& p, Rng& rng) {
  check_slot(p.slot, p.horizon);
  std::vector<RatePoint> pts;
  const double period_s = to_seconds(p.period);
  for (TimePoint t = kTimeZero; t < TimePoint(p.horizon); t += p.slot) {
    const double phase = std::fmod(to_seconds(t), period_s) / period_s;
    // Raised cosine: 1 at the AP (phase 0 and 1), 0 at the far point (0.5).
    const double envelope =
        0.5 * (1.0 + std::cos(2.0 * std::numbers::pi * phase));
    double bps = p.floor.bps() + (p.peak.bps() - p.floor.bps()) * envelope;
    bps *= std::max(0.2, 1.0 + rng.normal(0, p.noise_sigma_fraction));
    pts.push_back({t, DataRate::bits_per_second(std::max(bps, 1e4))});
  }
  return BandwidthTrace(std::move(pts));
}

BandwidthTrace gen_step(DataRate high, DataRate low, Duration half_period,
                        Duration horizon) {
  check_slot(half_period, horizon);
  std::vector<RatePoint> pts;
  bool is_high = true;
  for (TimePoint t = kTimeZero; t < TimePoint(horizon); t += half_period) {
    pts.push_back({t, is_high ? high : low});
    is_high = !is_high;
  }
  return BandwidthTrace(std::move(pts));
}

BandwidthTrace gen_ramp(DataRate start, DataRate end, int steps,
                        Duration horizon) {
  if (steps < 1) throw std::invalid_argument("steps must be >= 1");
  std::vector<RatePoint> pts;
  for (int i = 0; i < steps; ++i) {
    const double f = steps == 1 ? 0.0
                                : static_cast<double>(i) /
                                      static_cast<double>(steps - 1);
    const TimePoint t(horizon * i / steps);
    pts.push_back({t, start + (end - start) * f});
  }
  return BandwidthTrace(std::move(pts));
}

}  // namespace mpdash
