#pragma once
// Synthetic bandwidth-trace generators.
//
// These produce the network conditions the paper evaluates on:
//  * constant + Gaussian jitter profiles (Table 1's SYNTH sigma=10%/30%),
//  * mean-reverting lognormal processes that mimic public-WiFi burstiness
//    (Figure 5's FastFood/Coffee/Office field traces),
//  * a mobility walk where WiFi degrades with distance from the AP
//    (Figure 11),
//  * step patterns for unit tests and ablations.

#include <cstdint>

#include "trace/bandwidth_trace.h"
#include "util/rng.h"

namespace mpdash {

struct JitterParams {
  DataRate mean;
  double sigma_fraction = 0.1;  // stddev as fraction of mean
  Duration slot = milliseconds(200);
  Duration horizon = seconds(600.0);
};

// Per-slot i.i.d. Gaussian jitter around a constant mean, floored at 5% of
// the mean (a real link never hits exactly zero for a whole slot).
BandwidthTrace gen_jitter(const JitterParams& p, Rng& rng);

struct FieldParams {
  DataRate mean;
  double sigma_fraction = 0.35;   // marginal variability
  double reversion = 0.15;        // pull toward the mean per slot (0..1]
  Duration slot = milliseconds(500);
  Duration horizon = seconds(600.0);
  // Occasional deep fades (captive-portal hiccups, contention bursts).
  double fade_probability_per_slot = 0.002;
  Duration fade_duration = seconds(2.0);
  double fade_depth = 0.15;       // rate multiplier during a fade
};

// Mean-reverting multiplicative random walk with sporadic deep fades;
// matches the fluctuating-but-not-collapsing shape of the paper's public
// WiFi measurements (Figure 5).
BandwidthTrace gen_field(const FieldParams& p, Rng& rng);

struct MobilityParams {
  DataRate peak;                  // rate next to the AP
  DataRate floor = DataRate::mbps(0.2);
  Duration period = seconds(60.0);  // one out-and-back walk
  Duration slot = milliseconds(500);
  Duration horizon = seconds(600.0);
  double noise_sigma_fraction = 0.15;
};

// WiFi throughput for a walk away from and back toward the AP: smooth
// raised-cosine envelope between peak and floor, plus multiplicative noise.
BandwidthTrace gen_mobility_walk(const MobilityParams& p, Rng& rng);

// Alternating high/low square wave, used by tests and the scheduler's
// worst-case (steep continuous drop) experiments.
BandwidthTrace gen_step(DataRate high, DataRate low, Duration half_period,
                        Duration horizon);

// Single downward ramp from `start` to `end` over `horizon` in `steps`
// segments - the "WiFi drops steeply and continuously" pattern that causes
// deadline misses in Table 2.
BandwidthTrace gen_ramp(DataRate start, DataRate end, int steps,
                        Duration horizon);

}  // namespace mpdash
