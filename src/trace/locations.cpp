#include "trace/locations.h"

namespace mpdash {
namespace {

FieldParams field_params(DataRate mean, double sigma) {
  FieldParams p;
  p.mean = mean;
  p.sigma_fraction = sigma;
  return p;
}

LocationProfile make(std::string name, std::string venue, std::string state,
                     WifiScenario sc, double wifi_mbps, double wifi_rtt_ms,
                     double wifi_sigma, double lte_mbps, double lte_rtt_ms,
                     std::uint64_t seed, bool table5 = false) {
  LocationProfile loc;
  loc.name = std::move(name);
  loc.venue = std::move(venue);
  loc.state = std::move(state);
  loc.scenario = sc;
  loc.wifi_mean = DataRate::mbps(wifi_mbps);
  loc.wifi_rtt = seconds(wifi_rtt_ms / 1000.0);
  loc.wifi_sigma = wifi_sigma;
  loc.lte_mean = DataRate::mbps(lte_mbps);
  loc.lte_rtt = seconds(lte_rtt_ms / 1000.0);
  loc.seed = seed;
  loc.from_paper_table5 = table5;
  return loc;
}

std::vector<LocationProfile> build_locations() {
  using S = WifiScenario;
  std::vector<LocationProfile> v;
  // --- Paper Table 5 rows (measured BW in Mbps, RTT in ms). -------------
  v.push_back(make("Hotel Hi", "hotel", "NJ", S::kNeverSustains,
                   2.92, 14.1, 0.30, 11.0, 51.9, 101, true));
  v.push_back(make("Hotel Ha", "hotel", "NJ", S::kNeverSustains,
                   2.96, 40.8, 0.30, 14.0, 68.6, 102, true));
  v.push_back(make("Food Market", "food market", "IN", S::kNeverSustains,
                   3.58, 75.4, 0.32, 22.9, 53.4, 103, true));
  v.push_back(make("Airport", "airport", "CA", S::kSometimesSustains,
                   5.97, 32.2, 0.45, 12.1, 67.3, 104, true));
  v.push_back(make("Coffeehouse", "coffeehouse", "IN", S::kSometimesSustains,
                   6.04, 28.9, 0.45, 18.1, 69.0, 105, true));
  v.push_back(make("Library", "public library", "NJ", S::kAlwaysSustains,
                   17.8, 23.3, 0.25, 5.18, 64.1, 106, true));
  v.push_back(make("Elec. Store", "electronics store", "CA",
                   S::kAlwaysSustains, 28.4, 10.8, 0.20, 18.5, 59.4, 107,
                   true));
  // --- Synthesized remainder: 26 locations preserving 64/15/21. ---------
  // Totals: scenario 1 -> 21 (3 above + 18 here), scenario 2 -> 5 (2 + 3),
  // scenario 3 -> 7 (2 + 5). 21/33=64%, 5/33=15%, 7/33=21%.
  struct Row {
    const char* name; const char* venue; const char* state; S sc;
    double w, wrtt, wsig, l, lrtt;
  };
  const Row rows[] = {
      // scenario 1: throttled / weak-backhaul public WiFi.
      {"Fast Food A", "fast food", "NJ", S::kNeverSustains, 1.8, 62, 0.40, 9.5, 58},
      {"Fast Food B", "fast food", "IN", S::kNeverSustains, 5.2, 48, 0.55, 8.1, 61},
      {"Coffeehouse D", "coffeehouse", "CA", S::kNeverSustains, 1.4, 55, 0.45, 7.6, 66},
      {"Hotel Lobby M", "hotel", "CA", S::kNeverSustains, 2.1, 35, 0.35, 13.2, 57},
      {"Shopping Mall", "shopping mall", "NJ", S::kNeverSustains, 2.6, 80, 0.40, 10.4, 63},
      {"Retailer Store", "retailer", "IN", S::kNeverSustains, 3.1, 44, 0.35, 16.0, 55},
      {"Grocery Store", "grocery", "CA", S::kNeverSustains, 2.4, 58, 0.38, 12.7, 60},
      {"Parking Lot", "parking lot", "NJ", S::kNeverSustains, 1.2, 95, 0.50, 14.8, 52},
      {"Diner", "restaurant", "IN", S::kNeverSustains, 2.9, 41, 0.33, 11.9, 62},
      {"Bakery", "restaurant", "CA", S::kNeverSustains, 1.9, 66, 0.42, 9.1, 70},
      {"Hotel Bar", "hotel", "NJ", S::kNeverSustains, 3.3, 38, 0.30, 15.5, 59},
      {"Bookstore", "retailer", "IN", S::kNeverSustains, 2.2, 49, 0.36, 17.3, 56},
      {"Gas Station", "convenience", "CA", S::kNeverSustains, 1.6, 88, 0.48, 13.0, 64},
      {"Food Court", "shopping mall", "NJ", S::kNeverSustains, 3.5, 71, 0.44, 8.9, 67},
      {"Pharmacy", "retailer", "IN", S::kNeverSustains, 2.8, 52, 0.34, 19.2, 54},
      {"Pizza Place", "fast food", "CA", S::kNeverSustains, 2.0, 59, 0.40, 10.8, 65},
      {"Motel 6F", "hotel", "NJ", S::kNeverSustains, 1.5, 47, 0.37, 12.2, 61},
      {"Burger Chain", "fast food", "IN", S::kNeverSustains, 3.7, 43, 0.50, 14.1, 58},
      // scenario 2: borderline WiFi, high variability.
      {"Train Station", "transit", "CA", S::kSometimesSustains, 5.1, 36, 0.50, 11.3, 68},
      {"Convention Ctr", "venue", "NJ", S::kSometimesSustains, 6.8, 30, 0.55, 16.4, 60},
      {"Campus Cafe", "coffeehouse", "IN", S::kSometimesSustains, 4.9, 27, 0.48, 13.6, 63},
      // scenario 3: strong WiFi.
      {"Office Building", "office", "NJ", S::kAlwaysSustains, 12.1, 18, 0.20, 14.6, 57},
      {"Office Park", "office", "IN", S::kAlwaysSustains, 28.4, 12, 0.18, 19.1, 55},
      {"Tech Museum", "venue", "CA", S::kAlwaysSustains, 15.3, 21, 0.22, 17.8, 58},
      {"Univ. Library", "public library", "IN", S::kAlwaysSustains, 22.6, 16, 0.20, 6.4, 66},
      {"Coworking Space", "office", "CA", S::kAlwaysSustains, 19.4, 14, 0.21, 15.9, 59},
  };
  std::uint64_t seed = 201;
  for (const Row& r : rows) {
    v.push_back(make(r.name, r.venue, r.state, r.sc, r.w, r.wrtt, r.wsig,
                     r.l, r.lrtt, seed++));
  }
  return v;
}

}  // namespace

BandwidthTrace LocationProfile::wifi_trace(Duration horizon) const {
  Rng rng(seed * 7919 + 1);
  FieldParams p = field_params(wifi_mean, wifi_sigma);
  p.horizon = horizon;
  return gen_field(p, rng);
}

BandwidthTrace LocationProfile::lte_trace(Duration horizon) const {
  Rng rng(seed * 7919 + 2);
  FieldParams p = field_params(lte_mean, lte_sigma);
  p.horizon = horizon;
  p.fade_probability_per_slot = 0.001;  // commercial LTE fades rarely
  return gen_field(p, rng);
}

const std::vector<LocationProfile>& field_study_locations() {
  static const std::vector<LocationProfile> kLocations = build_locations();
  return kLocations;
}

std::vector<LocationProfile> table5_locations() {
  std::vector<LocationProfile> out;
  for (const auto& loc : field_study_locations()) {
    if (loc.from_paper_table5) out.push_back(loc);
  }
  return out;
}

BandwidthTrace SimulationProfile::wifi_trace(Duration horizon) const {
  Rng rng(seed * 104729 + 1);
  if (synthetic) {
    JitterParams p;
    p.mean = wifi_mean;
    p.sigma_fraction = sigma_fraction;
    p.horizon = horizon;
    return gen_jitter(p, rng);
  }
  FieldParams p = field_params(wifi_mean, sigma_fraction);
  p.horizon = horizon;
  return gen_field(p, rng);
}

BandwidthTrace SimulationProfile::cell_trace(Duration horizon) const {
  Rng rng(seed * 104729 + 2);
  if (synthetic) {
    JitterParams p;
    p.mean = cell_mean;
    p.sigma_fraction = sigma_fraction;
    p.horizon = horizon;
    return gen_jitter(p, rng);
  }
  FieldParams p = field_params(cell_mean, 0.20);
  p.horizon = horizon;
  p.fade_probability_per_slot = 0.001;
  return gen_field(p, rng);
}

const std::vector<SimulationProfile>& table1_profiles() {
  static const std::vector<SimulationProfile> kProfiles = [] {
    std::vector<SimulationProfile> v;
    auto add = [&v](std::string name, double wifi, double cell, Bytes size,
                    std::vector<double> deadlines_s, bool synth, double sigma,
                    std::uint64_t seed) {
      SimulationProfile p;
      p.name = std::move(name);
      p.wifi_mean = DataRate::mbps(wifi);
      p.cell_mean = DataRate::mbps(cell);
      p.file_size = size;
      for (double d : deadlines_s) p.deadlines.push_back(seconds(d));
      p.synthetic = synth;
      p.sigma_fraction = sigma;
      p.seed = seed;
      v.push_back(std::move(p));
    };
    add("SYNTH sigma=10%", 3.8, 3.0, megabytes(5), {8, 9, 10}, true, 0.10, 11);
    add("SYNTH sigma=30%", 3.8, 3.0, megabytes(5), {8, 9, 10}, true, 0.30, 12);
    add("FastFood", 5.2, 8.1, megabytes(20), {15, 20, 25, 30}, false, 0.35, 13);
    add("Coffee", 1.4, 7.6, megabytes(5), {5, 10, 15, 20}, false, 0.30, 14);
    add("Office", 28.4, 19.1, megabytes(50), {9, 12, 15, 18}, false, 0.18, 15);
    return v;
  }();
  return kProfiles;
}

}  // namespace mpdash
