#pragma once
// Field-study location profiles.
//
// The paper measured public WiFi + commercial LTE at 33 locations in three
// U.S. states and classified them into three scenarios by whether WiFi
// alone sustains a 1080p video's top bitrate (~3.94 Mbps):
//   scenario 1 (64% of locations): WiFi never sustains the top bitrate,
//   scenario 2 (15%): WiFi sometimes sustains it,
//   scenario 3 (21%): WiFi almost always sustains it.
//
// We reproduce that population: the seven locations the paper names in
// Table 5 carry the paper's measured bandwidth/RTT values verbatim; the
// remaining 26 are synthesized to preserve the 64/15/21 split and the
// venue mix described in Section 7.3.3. Each profile deterministically
// expands into WiFi/LTE bandwidth traces via the gen_field process.

#include <string>
#include <vector>

#include "trace/bandwidth_trace.h"
#include "trace/generators.h"
#include "util/units.h"

namespace mpdash {

enum class WifiScenario {
  kNeverSustains = 1,    // scenario 1
  kSometimesSustains = 2,  // scenario 2
  kAlwaysSustains = 3,   // scenario 3
};

struct LocationProfile {
  std::string name;
  std::string venue;    // airport, hotel, coffeehouse, ...
  std::string state;    // one of the three U.S. states
  WifiScenario scenario = WifiScenario::kNeverSustains;

  DataRate wifi_mean;
  Duration wifi_rtt = milliseconds(50);
  double wifi_sigma = 0.35;   // marginal sd as fraction of mean

  DataRate lte_mean;
  Duration lte_rtt = milliseconds(60);
  double lte_sigma = 0.20;    // LTE is steadier than public WiFi

  std::uint64_t seed = 1;
  bool from_paper_table5 = false;

  BandwidthTrace wifi_trace(Duration horizon) const;
  BandwidthTrace lte_trace(Duration horizon) const;
};

// The full 33-location study population (stable order, stable seeds).
const std::vector<LocationProfile>& field_study_locations();

// The seven locations named in the paper's Table 5, in table order.
std::vector<LocationProfile> table5_locations();

// Table 1 bandwidth profiles for the trace-driven scheduler simulation:
// Synthetic sigma=10%, Synthetic sigma=30%, Fast Food B, Coffeehouse D,
// Office — with the paper's WiFi/cellular means and file sizes.
struct SimulationProfile {
  std::string name;
  DataRate wifi_mean;
  DataRate cell_mean;
  Bytes file_size;
  std::vector<Duration> deadlines;
  // Generator for the WiFi trace (cellular uses a low-sigma field process).
  bool synthetic = false;
  double sigma_fraction = 0.35;
  std::uint64_t seed = 1;

  BandwidthTrace wifi_trace(Duration horizon) const;
  BandwidthTrace cell_trace(Duration horizon) const;
};

const std::vector<SimulationProfile>& table1_profiles();

}  // namespace mpdash
