#include "trace/trace_io.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/csv.h"

namespace mpdash {

std::string trace_to_csv(const BandwidthTrace& trace) {
  CsvWriter csv({"time_s", "rate_mbps"});
  char a[32], b[32];
  for (const RatePoint& p : trace.points()) {
    std::snprintf(a, sizeof(a), "%.6f", to_seconds(p.start));
    std::snprintf(b, sizeof(b), "%.6f", p.rate.as_mbps());
    csv.add_row({a, b});
  }
  return csv.str();
}

BandwidthTrace trace_from_csv(const std::string& csv) {
  std::vector<RatePoint> pts;
  for (const auto& row : parse_csv(csv)) {
    if (row.size() < 2) {
      throw std::invalid_argument("trace CSV row needs 2 cells");
    }
    if (row[0] == "time_s") continue;  // header
    char* end = nullptr;
    const double t = std::strtod(row[0].c_str(), &end);
    if (end == row[0].c_str()) {
      throw std::invalid_argument("bad time cell: " + row[0]);
    }
    const double mbps = std::strtod(row[1].c_str(), &end);
    if (end == row[1].c_str()) {
      throw std::invalid_argument("bad rate cell: " + row[1]);
    }
    pts.push_back({seconds(t), DataRate::mbps(mbps)});
  }
  return BandwidthTrace(std::move(pts));
}

bool save_trace(const BandwidthTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << trace_to_csv(trace);
  return static_cast<bool>(out);
}

BandwidthTrace load_trace(const std::string& path) {
  bool ok = false;
  const std::string text = read_file(path, ok);
  if (!ok) throw std::runtime_error("cannot read trace file: " + path);
  return trace_from_csv(text);
}

}  // namespace mpdash
