#pragma once
// CSV serialization of bandwidth traces (time_s,rate_mbps rows), so field
// traces can be exported, inspected, and replayed across runs.

#include <string>

#include "trace/bandwidth_trace.h"

namespace mpdash {

// Serializes a trace as "time_s,rate_mbps" CSV with a header row.
std::string trace_to_csv(const BandwidthTrace& trace);

// Parses a trace from CSV produced by trace_to_csv (header optional).
// Throws std::invalid_argument on malformed input.
BandwidthTrace trace_from_csv(const std::string& csv);

bool save_trace(const BandwidthTrace& trace, const std::string& path);
// Throws on unreadable file or malformed content.
BandwidthTrace load_trace(const std::string& path);

}  // namespace mpdash
