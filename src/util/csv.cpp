#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace mpdash {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : columns_(header.size()) {
  std::string line;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) line += ',';
    line += escape(header[i]);
  }
  data_ = line + "\n";
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < columns_; ++i) {
    if (i) line += ',';
    if (i < cells.size()) line += escape(cells[i]);
  }
  // A lone empty cell would serialize to an empty line, which readers
  // (including ours) treat as "no row"; quote it so the row survives.
  if (line.empty()) line = "\"\"";
  data_ += line + "\n";
}

std::string CsvWriter::str() const { return data_; }

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << data_;
  return static_cast<bool>(out);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n\r") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_data = false;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_data = true;
        break;
      case ',':
        row.push_back(std::move(cell));
        cell.clear();
        row_has_data = true;
        break;
      case '\r':
        break;
      case '\n':
        if (row_has_data || !cell.empty()) {
          row.push_back(std::move(cell));
          cell.clear();
          rows.push_back(std::move(row));
          row.clear();
        }
        row_has_data = false;
        break;
      default:
        cell += c;
        row_has_data = true;
    }
  }
  if (row_has_data || !cell.empty()) {
    row.push_back(std::move(cell));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  ok = true;
  return ss.str();
}

}  // namespace mpdash
