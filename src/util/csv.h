#pragma once
// Small CSV reader/writer used by trace I/O and bench result dumps.

#include <string>
#include <vector>

namespace mpdash {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<std::string>& cells);
  std::string str() const;
  // Writes to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

  // RFC-4180 quoting for one cell (quotes only when needed).
  static std::string escape(const std::string& cell);

 private:
  std::string data_;
  std::size_t columns_;
};

// Parses CSV text (RFC-4180 quoting, \n or \r\n line ends) into rows of
// cells. The header row, if any, is returned as the first row.
std::vector<std::vector<std::string>> parse_csv(const std::string& text);

// Reads a whole file; returns empty optional-like flag via `ok`.
std::string read_file(const std::string& path, bool& ok);

}  // namespace mpdash
