#include "util/json.h"

#include <charconv>
#include <cstdio>

namespace mpdash {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::as_double(double fallback) const {
  if (type != Type::kNumber) return fallback;
  double v = fallback;
  const auto res = std::from_chars(number.data(),
                                   number.data() + number.size(), v);
  return res.ec == std::errc() ? v : fallback;
}

std::int64_t JsonValue::as_int64(std::int64_t fallback) const {
  if (type != Type::kNumber) return fallback;
  std::int64_t v = fallback;
  const auto res = std::from_chars(number.data(),
                                   number.data() + number.size(), v);
  return res.ec == std::errc() && res.ptr == number.data() + number.size()
             ? v
             : fallback;
}

std::uint64_t JsonValue::as_uint64(std::uint64_t fallback) const {
  if (type != Type::kNumber) return fallback;
  std::uint64_t v = fallback;
  const auto res = std::from_chars(number.data(),
                                   number.data() + number.size(), v);
  return res.ec == std::errc() && res.ptr == number.data() + number.size()
             ? v
             : fallback;
}

bool JsonValue::as_bool(bool fallback) const {
  return type == Type::kBool ? boolean : fallback;
}

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const char* what) {
    error = std::string("json: ") + what + " at offset " +
            std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  bool parse_hex4(unsigned* out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("bad \\u escape");
    }
    pos += 4;
    *out = v;
    return true;
  }

  static void append_utf8(std::string* s, unsigned cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("truncated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            unsigned cp = 0;
            if (!parse_hex4(&cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // Surrogate pair: require the matching low half.
              if (!(consume('\\') && consume('u'))) {
                return fail("lone high surrogate");
              }
              unsigned lo = 0;
              if (!parse_hex4(&lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) {
                return fail("bad low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return fail("lone low surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default: return fail("bad escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      out->push_back(c);
      ++pos;
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos;
    if (consume('-')) {
    }
    if (!consume('0')) {
      if (pos >= text.size() || text[pos] < '1' || text[pos] > '9') {
        pos = start;
        return fail("bad number");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (consume('.')) {
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        return fail("bad number fraction");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        return fail("bad number exponent");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    out->type = JsonValue::Type::kNumber;
    out->number.assign(text.substr(start, pos - start));
    // Validate: the literal must parse as a double.
    double v = 0.0;
    const auto res = std::from_chars(out->number.data(),
                                     out->number.data() + out->number.size(),
                                     v);
    if (res.ec != std::errc()) return fail("unparseable number");
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out->type = JsonValue::Type::kObject;
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        JsonValue v;
        if (!parse_value(&v, depth + 1)) return false;
        out->members.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out->type = JsonValue::Type::kArray;
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        JsonValue v;
        if (!parse_value(&v, depth + 1)) return false;
        out->items.push_back(std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return parse_string(&out->str);
    }
    if (literal("true")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (literal("false")) {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (literal("null")) {
      out->type = JsonValue::Type::kNull;
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    return fail("unexpected character");
  }
};

}  // namespace

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  Parser p{text, 0, {}};
  *out = JsonValue{};
  if (!p.parse_value(out, 0)) {
    if (error) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error) {
      p.fail("trailing garbage");
      *error = p.error;
    }
    return false;
  }
  return true;
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_double(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

}  // namespace mpdash
