#pragma once
// Minimal JSON document parser for the triage formats (fault plans, repro
// bundles). The simulator already *writes* JSON in several places (trace
// JSONL, fault-plan and bundle serializers) with hand-rolled emitters;
// this is the matching reader: a small value tree that keeps number
// literals as raw text so integer nanosecond counts and shortest-round-
// trip doubles survive a parse → re-serialize cycle bitwise.
//
// Deliberately not a general-purpose library: no streaming, no SAX, no
// allocator hooks — parse a whole document, walk the tree, done.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mpdash {

struct JsonValue {
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Type type = Type::kNull;
  bool boolean = false;
  std::string number;  // raw literal text, lossless (kNumber)
  std::string str;     // decoded string (kString)
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject,
                                                           // insertion order

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_bool() const { return type == Type::kBool; }

  // Member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Scalar accessors: fall back when the value has the wrong type or the
  // literal does not parse.
  double as_double(double fallback = 0.0) const;
  std::int64_t as_int64(std::int64_t fallback = 0) const;
  std::uint64_t as_uint64(std::uint64_t fallback = 0) const;
  bool as_bool(bool fallback = false) const;
};

// Parses exactly one JSON document (trailing whitespace allowed, trailing
// garbage is an error). On failure returns false and fills *error with
// "json: <what> at offset <n>".
bool json_parse(std::string_view text, JsonValue* out, std::string* error);

// Quotes and escapes `s` as a JSON string literal (for the emitters).
std::string json_quote(std::string_view s);

// Shortest decimal form that round-trips the exact double (std::to_chars
// shortest representation) — the float format every triage serializer
// uses so parse → re-serialize is bitwise stable.
std::string json_double(double v);

}  // namespace mpdash
