#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace mpdash {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t derive_stream_seed(std::uint64_t base, std::string_view key) {
  // FNV-1a over the key bytes, offset by the base seed…
  std::uint64_t h = 0xcbf29ce484222325ull ^ base;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  // …then a splitmix64 finalizer so near-identical keys land far apart.
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo + 1);
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal_mean_sd(double mean, double stddev) {
  if (mean <= 0.0) return 0.0;
  if (stddev <= 0.0) return mean;
  const double cv2 = (stddev / mean) * (stddev / mean);
  const double sigma2 = std::log1p(cv2);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::exp(normal(mu, std::sqrt(sigma2)));
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace mpdash
