#pragma once
// Deterministic random number generation for reproducible simulations.
//
// xoshiro256++ keeps every experiment replayable from a single seed; the
// distributions below are the ones the trace generators need.

#include <array>
#include <cstdint>
#include <string_view>

namespace mpdash {

// Stable named-stream seed: splitmix64 finalization over an FNV-1a hash of
// `key`, mixed with `base`. Depends only on the two inputs, so inserting or
// removing one consumer can never reseed another. Used for campaign runs
// (runner) and per-link loss streams (exp::Scenario).
std::uint64_t derive_stream_seed(std::uint64_t base, std::string_view key);

// xoshiro256++ 1.0 (Blackman & Vigna, public domain reference
// implementation), seeded via splitmix64 so that any 64-bit seed yields a
// well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Standard normal via Box-Muller (cached second variate).
  double normal();
  double normal(double mean, double stddev);

  // Lognormal such that the *mean* of the distribution is `mean` and the
  // standard deviation is `stddev` (moment-matched parameters).
  double lognormal_mean_sd(double mean, double stddev);

  // Derives an independent stream (e.g. one per location / per link).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mpdash
