#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace mpdash {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double harmonic_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double inv = 0.0;
  for (double v : values) {
    if (v <= 0.0) return 0.0;
    inv += 1.0 / v;
  }
  return static_cast<double>(values.size()) / inv;
}

std::vector<std::pair<double, double>> empirical_cdf(
    std::vector<double> values) {
  std::vector<std::pair<double, double>> cdf;
  if (values.empty()) return cdf;
  std::sort(values.begin(), values.end());
  cdf.reserve(values.size());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    cdf.emplace_back(values[i], static_cast<double>(i + 1) / n);
  }
  return cdf;
}

}  // namespace mpdash
