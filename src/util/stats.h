#pragma once
// Descriptive statistics used by the experiment harness and benches.

#include <cstddef>
#include <utility>
#include <vector>

namespace mpdash {

// Welford online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Percentile with linear interpolation between closest ranks.
// `p` in [0, 100]. Copies and sorts; fine for evaluation-sized data.
double percentile(std::vector<double> values, double p);

double mean(const std::vector<double>& values);
double harmonic_mean(const std::vector<double>& values);

// Empirical CDF: sorted (value, fraction<=value) points, one per sample.
std::vector<std::pair<double, double>> empirical_cdf(
    std::vector<double> values);

}  // namespace mpdash
