#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

namespace mpdash {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : header_[c];
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  auto emit_rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << '+';
    }
    out << '\n';
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string ascii_plot(
    const std::vector<std::pair<std::string,
                                std::vector<std::pair<double, double>>>>& series,
    int width, int height, const std::string& x_label,
    const std::string& y_label) {
  if (series.empty()) return "(no data)\n";

  double xmin = 1e300, xmax = -1e300, ymin = 0.0, ymax = -1e300;
  bool any = false;
  for (const auto& [name, pts] : series) {
    for (const auto& [x, y] : pts) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymax = std::max(ymax, y);
      ymin = std::min(ymin, y);
      any = true;
    }
  }
  if (!any) return "(no data)\n";
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  static const char kMarks[] = "*o+x#@%&";
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (std::size_t s = 0; s < series.size(); ++s) {
    const char mark = kMarks[s % (sizeof(kMarks) - 1)];
    for (const auto& [x, y] : series[s].second) {
      int cx = static_cast<int>((x - xmin) / (xmax - xmin) * (width - 1));
      int cy = static_cast<int>((y - ymin) / (ymax - ymin) * (height - 1));
      cx = std::clamp(cx, 0, width - 1);
      cy = std::clamp(cy, 0, height - 1);
      grid[static_cast<std::size_t>(height - 1 - cy)]
          [static_cast<std::size_t>(cx)] = mark;
    }
  }

  std::ostringstream out;
  if (!y_label.empty()) out << y_label << '\n';
  char buf[32];
  for (int r = 0; r < height; ++r) {
    const double yv = ymax - (ymax - ymin) * r / (height - 1);
    std::snprintf(buf, sizeof(buf), "%9.2f |", yv);
    out << buf << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(10, ' ') << '+' << std::string(static_cast<std::size_t>(width), '-')
      << '\n';
  std::snprintf(buf, sizeof(buf), "%-12.2f", xmin);
  out << std::string(10, ' ') << buf
      << std::string(static_cast<std::size_t>(std::max(0, width - 24)), ' ');
  std::snprintf(buf, sizeof(buf), "%12.2f", xmax);
  out << buf << '\n';
  if (!x_label.empty()) {
    out << std::string(10 + static_cast<std::size_t>(width) / 2 - x_label.size() / 2, ' ')
        << x_label << '\n';
  }
  out << "legend:";
  for (std::size_t s = 0; s < series.size(); ++s) {
    out << "  [" << kMarks[s % (sizeof(kMarks) - 1)] << "] " << series[s].first;
  }
  out << '\n';
  return out.str();
}

}  // namespace mpdash
