#pragma once
// Plain-text table rendering for bench output (paper tables / figure series).

#include <string>
#include <vector>

namespace mpdash {

// Accumulates rows of strings and renders an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 2);

  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders an ASCII line plot of one or more named series sharing an x axis.
// Used by benches that regenerate the paper's figures.
std::string ascii_plot(
    const std::vector<std::pair<std::string, std::vector<std::pair<double, double>>>>& series,
    int width = 72, int height = 16, const std::string& x_label = "",
    const std::string& y_label = "");

}  // namespace mpdash
