#pragma once
// Fundamental units used across the MP-DASH simulator.
//
// Simulated time is an integer nanosecond count (TimePoint / Duration) so
// that event ordering is exact; data rates are double bits-per-second.

#include <chrono>
#include <cstdint>
#include <ratio>

namespace mpdash {

// Simulation time. TimePoint is nanoseconds since simulation start.
using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::nanoseconds;

constexpr Duration kDurationZero = Duration::zero();
constexpr TimePoint kTimeZero = TimePoint::zero();

constexpr Duration nanoseconds(std::int64_t n) { return Duration(n); }
constexpr Duration microseconds(std::int64_t u) { return Duration(u * 1000); }
constexpr Duration milliseconds(std::int64_t m) {
  return Duration(m * 1'000'000);
}

// Converts a (possibly fractional) number of seconds to a Duration.
constexpr Duration seconds(double s) {
  return Duration(static_cast<std::int64_t>(s * 1e9));
}

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) * 1e-9;
}
constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d.count()) * 1e-6;
}

// Byte counts. Signed so that differences are safe to form.
using Bytes = std::int64_t;

constexpr Bytes kilobytes(std::int64_t k) { return k * 1000; }
constexpr Bytes megabytes(std::int64_t m) { return m * 1'000'000; }

// A data rate in bits per second.
//
// Rates come from bandwidth traces and throughput estimators; they interact
// with Bytes and Duration through the helpers below.
class DataRate {
 public:
  constexpr DataRate() = default;
  static constexpr DataRate bits_per_second(double bps) {
    return DataRate(bps);
  }
  static constexpr DataRate kbps(double k) { return DataRate(k * 1e3); }
  static constexpr DataRate mbps(double m) { return DataRate(m * 1e6); }

  constexpr double bps() const { return bps_; }
  constexpr double as_kbps() const { return bps_ / 1e3; }
  constexpr double as_mbps() const { return bps_ / 1e6; }

  constexpr bool is_zero() const { return bps_ <= 0.0; }

  // Bytes deliverable in `d` at this rate.
  constexpr Bytes bytes_in(Duration d) const {
    return static_cast<Bytes>(bps_ / 8.0 * to_seconds(d));
  }

  // Time to serialize `b` bytes at this rate. Returns Duration::max() for a
  // zero rate (the transfer never completes).
  Duration time_to_send(Bytes b) const {
    if (bps_ <= 0.0) return Duration::max();
    return seconds(static_cast<double>(b) * 8.0 / bps_);
  }

  friend constexpr bool operator==(DataRate a, DataRate b) {
    return a.bps_ == b.bps_;
  }
  friend constexpr auto operator<=>(DataRate a, DataRate b) {
    return a.bps_ <=> b.bps_;
  }
  friend constexpr DataRate operator+(DataRate a, DataRate b) {
    return DataRate(a.bps_ + b.bps_);
  }
  friend constexpr DataRate operator-(DataRate a, DataRate b) {
    return DataRate(a.bps_ - b.bps_);
  }
  friend constexpr DataRate operator*(DataRate a, double f) {
    return DataRate(a.bps_ * f);
  }
  friend constexpr DataRate operator*(double f, DataRate a) { return a * f; }
  friend constexpr DataRate operator/(DataRate a, double f) {
    return DataRate(a.bps_ / f);
  }

 private:
  explicit constexpr DataRate(double bps) : bps_(bps) {}
  double bps_ = 0.0;
};

// Average rate of `b` bytes over `d`.
inline DataRate rate_of(Bytes b, Duration d) {
  if (d <= kDurationZero) return DataRate::bits_per_second(0);
  return DataRate::bits_per_second(static_cast<double>(b) * 8.0 /
                                   to_seconds(d));
}

}  // namespace mpdash
