#include <gtest/gtest.h>

#include "adapt/adaptation.h"
#include "adapt/bba.h"
#include "adapt/festive.h"
#include "adapt/gpac.h"
#include "adapt/mpc.h"
#include "exp/session.h"

namespace mpdash {
namespace {

AdaptationView view_with(double buffer_s, int last_level,
                         double throughput_mbps) {
  AdaptationView v;
  v.buffer_level_s = buffer_s;
  v.buffer_capacity_s = 40.0;
  v.chunk_duration_s = 4.0;
  v.last_level = last_level;
  v.next_chunk = 10;
  v.total_chunks = 150;
  v.in_startup = false;
  v.bitrates = {DataRate::mbps(0.58), DataRate::mbps(1.01),
                DataRate::mbps(1.47), DataRate::mbps(2.41),
                DataRate::mbps(3.94)};
  for (const auto& r : v.bitrates) {
    v.next_chunk_sizes.push_back(r.bytes_in(seconds(4.0)));
  }
  v.last_chunk_throughput = DataRate::mbps(throughput_mbps);
  return v;
}

// Feed an algorithm n chunk downloads at a constant throughput.
void feed(RateAdaptation& a, double mbps, int n, int level = 2) {
  const Bytes bytes = DataRate::mbps(mbps).bytes_in(seconds(1.0));
  for (int i = 0; i < n; ++i) a.on_chunk_downloaded(level, bytes, seconds(1.0));
}

TEST(Gpac, PicksHighestBelowLastThroughput) {
  GpacAdaptation gpac;
  EXPECT_EQ(gpac.select_level(view_with(20, 2, 3.0)), 3);  // 2.41 <= 3.0
  EXPECT_EQ(gpac.select_level(view_with(20, 2, 0.9)), 0);
  EXPECT_EQ(gpac.select_level(view_with(20, 2, 100.0)), 4);
}

TEST(Gpac, OverrideThroughputWins) {
  GpacAdaptation gpac;
  AdaptationView v = view_with(20, 2, 0.9);
  v.override_throughput = DataRate::mbps(5.0);
  EXPECT_EQ(gpac.select_level(v), 4);
}

TEST(Gpac, FirstChunkConservative) {
  GpacAdaptation gpac;
  EXPECT_EQ(gpac.select_level(view_with(0, -1, 0.0)), 0);
}

TEST(Festive, GradualUpgradeAfterStability) {
  FestiveAdaptation f;
  feed(f, 5.0, 20);  // harmonic mean ~5 Mbps, target level 4
  AdaptationView v = view_with(20, 1, 5.0);
  // Needs (min_stable + current) consecutive stable targets; selections
  // before that hold the level, then step exactly one.
  int level = 1;
  int steps = 0;
  for (int i = 0; i < 20 && level < 4; ++i) {
    v.last_level = level;
    const int next = f.select_level(v);
    EXPECT_LE(next, level + 1);  // never jumps
    if (next > level) ++steps;
    level = next;
  }
  EXPECT_EQ(level, 4);
  EXPECT_EQ(steps, 3);  // 1 -> 2 -> 3 -> 4
}

TEST(Festive, ImmediateSingleStepDown) {
  FestiveAdaptation f;
  feed(f, 1.0, 20);  // collapsed throughput
  const int next = f.select_level(view_with(20, 4, 1.0));
  EXPECT_EQ(next, 3);  // one step at a time, immediately
}

TEST(Festive, HarmonicMeanRobustToSpike) {
  FestiveAdaptation f;
  feed(f, 2.0, 19);
  feed(f, 100.0, 1);  // one spike
  // Harmonic mean barely moves: target stays ~level 2 territory.
  EXPECT_LT(f.estimate().as_mbps(), 2.5);
}

TEST(Bba, RateMapMonotoneInBuffer) {
  BbaAdaptation bba;
  const AdaptationView v = view_with(0, 2, 3.0);
  double prev = 0.0;
  for (double b = 0.0; b <= 40.0; b += 2.0) {
    const double r = bba.rate_map_bps(v, b);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_EQ(bba.rate_map_bps(v, 0.0), v.bitrates.front().bps());
  EXPECT_EQ(bba.rate_map_bps(v, 40.0), v.bitrates.back().bps());
}

TEST(Bba, LowThresholdInvertsRateMap) {
  BbaAdaptation bba;
  const AdaptationView v = view_with(0, 2, 3.0);
  for (int level = 1; level < 5; ++level) {
    const double el = bba.buffer_low_threshold_s(v, level);
    EXPECT_NEAR(bba.rate_map_bps(v, el),
                v.bitrates[static_cast<std::size_t>(level)].bps(),
                1.0);
  }
  EXPECT_EQ(bba.buffer_low_threshold_s(v, 0), 0.0);
}

// The Figure 3 phenomenon: with capacity strictly between two encoding
// rates, steady-state BBA oscillates between the two adjacent levels.
TEST(Bba, OscillatesWhenCapacityBetweenLevels) {
  BbaAdaptation bba;
  const double R = 3.4;  // between 2.41 and 3.94
  // Simulate the closed loop: buffer grows when selected rate < R.
  double buffer_s = 12.0;
  int level = 3;
  std::vector<int> history;
  feed(bba, R, 5, level);
  for (int i = 0; i < 120; ++i) {
    AdaptationView v = view_with(buffer_s, level, R);
    level = bba.select_level(v);
    history.push_back(level);
    const double rate =
        v.bitrates[static_cast<std::size_t>(level)].as_mbps();
    // Buffer drift over one 4 s chunk: +4 supplied, -4*rate/R consumed
    // while downloading.
    buffer_s = std::clamp(buffer_s + 4.0 - 4.0 * rate / R, 0.0, 40.0);
    bba.on_chunk_downloaded(level, DataRate::mbps(R).bytes_in(seconds(1.0)),
                            seconds(1.0));
  }
  // Oscillation: both level 3 and level 4 occur repeatedly in steady
  // state, with multiple transitions.
  int transitions = 0, at3 = 0, at4 = 0;
  for (std::size_t i = 60; i < history.size(); ++i) {
    at3 += history[i] == 3;
    at4 += history[i] == 4;
    if (history[i] != history[i - 1]) ++transitions;
  }
  EXPECT_GT(at3, 5);
  EXPECT_GT(at4, 5);
  EXPECT_GE(transitions, 4);
}

// BBA-C caps the level at the measured capacity and kills the oscillation.
TEST(BbaC, CapsAtMeasuredThroughput) {
  BbaConfig cfg;
  cfg.cellular_friendly = true;
  BbaAdaptation bbac(cfg);
  const double R = 3.4;
  feed(bbac, R, 5, 3);
  double buffer_s = 12.0;
  int level = 3;
  std::vector<int> history;
  for (int i = 0; i < 120; ++i) {
    AdaptationView v = view_with(buffer_s, level, R);
    level = bbac.select_level(v);
    history.push_back(level);
    const double rate =
        v.bitrates[static_cast<std::size_t>(level)].as_mbps();
    buffer_s = std::clamp(buffer_s + 4.0 - 4.0 * rate / R, 0.0, 40.0);
    bbac.on_chunk_downloaded(level, DataRate::mbps(R).bytes_in(seconds(1.0)),
                             seconds(1.0));
  }
  for (std::size_t i = 60; i < history.size(); ++i) {
    EXPECT_EQ(history[i], 3);  // locked to the sustainable level
  }
}

TEST(Mpc, AvoidsRebufferingAtLowBuffer) {
  MpcAdaptation mpc;
  feed(mpc, 2.0, 5);
  // Plenty of buffer: goes high; nearly empty buffer: conservative.
  const int high = mpc.select_level(view_with(30, 3, 2.0));
  const int low = mpc.select_level(view_with(1.0, 3, 2.0));
  EXPECT_LE(low, high);
  EXPECT_LE(low, 1);
}

TEST(Mpc, TracksThroughputCeiling) {
  MpcAdaptation mpc;
  feed(mpc, 3.0, 5);
  // A modest buffer puts the rebuffer risk inside the lookahead horizon:
  // at 3 Mbps the optimizer must stay at or below level 3 (2.41 Mbps).
  const int level = mpc.select_level(view_with(8.0, 2, 3.0));
  EXPECT_LE(level, 3);
  EXPECT_GE(level, 1);
}

TEST(Mpc, MinThroughputForLevel) {
  MpcAdaptation mpc;
  const AdaptationView v = view_with(20, 2, 3.0);
  const DataRate need = mpc.min_throughput_for(v, 4);
  EXPECT_NEAR(need.as_mbps(), 3.94, 0.1);
  EXPECT_TRUE(mpc.min_throughput_for(v, 99).is_zero());
}

// Invariants shared by every algorithm.
class AllAlgorithms : public ::testing::TestWithParam<const char*> {};

TEST_P(AllAlgorithms, SelectionsStayInRange) {
  auto algo = make_adaptation(GetParam());
  feed(*algo, 3.0, 10);
  for (double buffer_s : {0.0, 5.0, 15.0, 25.0, 39.0}) {
    for (int last : {-1, 0, 2, 4}) {
      for (double mbps : {0.1, 1.0, 3.0, 8.0, 50.0}) {
        const int level = algo->select_level(view_with(buffer_s, last, mbps));
        EXPECT_GE(level, 0);
        EXPECT_LE(level, 4);
      }
    }
  }
}

TEST_P(AllAlgorithms, ResetClearsHistory) {
  auto algo = make_adaptation(GetParam());
  feed(*algo, 50.0, 20);
  algo->reset();
  // After reset with no samples: first-chunk behaviour (lowest level) for
  // throughput-driven algorithms; buffer-based at empty buffer also picks
  // the floor.
  EXPECT_EQ(algo->select_level(view_with(0.0, -1, 0.0)), 0);
}

INSTANTIATE_TEST_SUITE_P(Names, AllAlgorithms,
                         ::testing::Values("gpac", "festive", "bba", "bba-c",
                                           "mpc"));

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_adaptation("unknown"), std::invalid_argument);
}

TEST(Factory, CategoriesMatchPaperTaxonomy) {
  EXPECT_EQ(make_adaptation("gpac")->category(),
            AdaptationCategory::kThroughputBased);
  EXPECT_EQ(make_adaptation("festive")->category(),
            AdaptationCategory::kThroughputBased);
  EXPECT_EQ(make_adaptation("bba")->category(),
            AdaptationCategory::kBufferBased);
  EXPECT_EQ(make_adaptation("bba-c")->category(),
            AdaptationCategory::kBufferBased);
  EXPECT_EQ(make_adaptation("mpc")->category(), AdaptationCategory::kHybrid);
}

}  // namespace
}  // namespace mpdash
