#include <gtest/gtest.h>

#include "adapt/bba.h"
#include "adapt/festive.h"
#include "adapter/mpdash_adapter.h"
#include "core/mpdash_socket.h"
#include "exp/scenario.h"
#include "mptcp/connection.h"

namespace mpdash {
namespace {

struct AdapterFixture : ::testing::Test {
  Scenario scenario{constant_scenario(DataRate::mbps(8.0), DataRate::mbps(8.0))};
  MptcpConnection conn{scenario.loop(), scenario.paths()};
  MpDashSocket socket{scenario.loop(), conn};

  AdaptationView view_with(double buffer_s, int last_level = 3) {
    AdaptationView v;
    v.buffer_level_s = buffer_s;
    v.buffer_capacity_s = 40.0;
    v.chunk_duration_s = 4.0;
    v.last_level = last_level;
    v.in_startup = false;
    v.bitrates = {DataRate::mbps(0.58), DataRate::mbps(1.01),
                  DataRate::mbps(1.47), DataRate::mbps(2.41),
                  DataRate::mbps(3.94)};
    for (const auto& r : v.bitrates) {
      v.next_chunk_sizes.push_back(r.bytes_in(seconds(4.0)));
    }
    v.last_chunk_throughput = DataRate::mbps(5.0);
    return v;
  }
};

TEST_F(AdapterFixture, RateBasedDeadlineUsesLevelBitrate) {
  FestiveAdaptation festive;
  MpDashAdapter adapter(socket, festive, {.policy = DeadlinePolicy::kRateBased});
  const AdaptationView v = view_with(20);
  // 1 MB at level 4 (3.94 Mbps): D = 8e6 bits / 3.94 Mbps ≈ 2.03 s.
  const Duration d = adapter.base_deadline(v, 4, 1'000'000);
  EXPECT_NEAR(to_seconds(d), 8.0 / 3.94, 0.01);
}

TEST_F(AdapterFixture, DurationBasedDeadlineIsChunkDuration) {
  FestiveAdaptation festive;
  MpDashAdapter adapter(socket, festive,
                        {.policy = DeadlinePolicy::kDurationBased});
  EXPECT_EQ(adapter.base_deadline(view_with(20), 2, 123'456), seconds(4.0));
}

TEST_F(AdapterFixture, DeadlineExtensionAbovePhi) {
  FestiveAdaptation festive;
  MpDashAdapter adapter(socket, festive,
                        {.policy = DeadlinePolicy::kDurationBased});
  // Throughput-based: Φ = 0.8 * 40 = 32 s.
  EXPECT_NEAR(adapter.phi_seconds(view_with(20)), 32.0, 1e-9);
  // Buffer at 36 s: extension of 4 s on top of the 4 s base.
  AdaptationView v = view_with(36);
  const auto d = adapter.on_chunk_request(v, 2, 500'000, 0, 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_NEAR(to_seconds(*d), 8.0, 0.01);
  socket.disable();
}

TEST_F(AdapterFixture, BufferBasedPhiIsCapacityMinusChunk) {
  BbaAdaptation bba;
  MpDashAdapter adapter(socket, bba, {});
  EXPECT_NEAR(adapter.phi_seconds(view_with(20)), 36.0, 1e-9);
}

TEST_F(AdapterFixture, OmegaFloorForThroughputBased) {
  FestiveAdaptation festive;
  MpDashAdapter adapter(socket, festive, {});
  // With a generous estimate, T' >= T so Ω collapses to the 40 % floor.
  const AdaptationView v = view_with(20);
  EXPECT_NEAR(adapter.omega_seconds(v), 16.0, 1e-6);
  EXPECT_TRUE(adapter.should_engage(v));          // 20 >= 16
  EXPECT_FALSE(adapter.should_engage(view_with(10)));  // 10 < 16
}

TEST_F(AdapterFixture, OmegaForBufferBasedTracksCurrentLevel) {
  BbaAdaptation bba;
  MpDashAdapter adapter(socket, bba, {});
  const AdaptationView v = view_with(30, /*last_level=*/4);
  // e_l(4) = 20 s (0.5 * 40); Ω = 20 + 4 = 24 — the paper's worked
  // example ("enable only when the buffer contains at least 24 seconds").
  EXPECT_NEAR(adapter.omega_seconds(v), 24.0, 1e-6);
  EXPECT_TRUE(adapter.should_engage(v));
  EXPECT_FALSE(adapter.should_engage(view_with(20, 4)));
  // At level 2 the threshold is lower still.
  const AdaptationView v2 = view_with(30, 2);
  EXPECT_LT(adapter.omega_seconds(v2), 24.0);
  EXPECT_TRUE(adapter.should_engage(v2));
}

TEST_F(AdapterFixture, StartupNeverEngages) {
  FestiveAdaptation festive;
  MpDashAdapter adapter(socket, festive, {});
  AdaptationView v = view_with(39);
  v.in_startup = true;
  EXPECT_FALSE(adapter.should_engage(v));
  EXPECT_FALSE(adapter.on_chunk_request(v, 2, 500'000, 0, 0).has_value());
  EXPECT_EQ(adapter.chunks_bypassed(), 1);
}

TEST_F(AdapterFixture, EngageActivatesSocketAndCompleteReleasesIt) {
  FestiveAdaptation festive;
  MpDashAdapter adapter(socket, festive, {});
  AdaptationView v = view_with(25);
  const auto d = adapter.on_chunk_request(v, 3, 1'000'000, 0, 0);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(socket.active());
  EXPECT_EQ(adapter.chunks_engaged(), 1);
  EXPECT_EQ(adapter.outstanding_engaged(), 1u);
  adapter.on_chunk_complete(v, 0);
  EXPECT_FALSE(socket.active());
  EXPECT_EQ(adapter.outstanding_engaged(), 0u);
}

TEST_F(AdapterFixture, LowBufferDisablesActiveSocket) {
  FestiveAdaptation festive;
  MpDashAdapter adapter(socket, festive, {});
  adapter.on_chunk_request(view_with(25), 3, 1'000'000, 0, 0);
  EXPECT_TRUE(socket.active());
  adapter.on_chunk_complete(view_with(25), 0);
  socket.enable(1, seconds(1.0));  // leave the socket armed out-of-band
  // Next chunk arrives with the buffer under Ω and nothing engaged: the
  // adapter bypasses and shuts the scheduler down (vanilla MPTCP for
  // this chunk).
  const auto d = adapter.on_chunk_request(view_with(5), 3, 1'000'000, 1, 0);
  EXPECT_FALSE(d.has_value());
  EXPECT_FALSE(socket.active());
}

TEST_F(AdapterFixture, BypassKeepsSocketServingOutstandingChunks) {
  FestiveAdaptation festive;
  MpDashAdapter adapter(socket, festive, {});
  // A pipelined player can issue a bypassed chunk while an earlier
  // engaged one is still in flight; the scheduler must keep serving it.
  ASSERT_TRUE(adapter.on_chunk_request(view_with(25), 3, 1'000'000, 0, 0)
                  .has_value());
  EXPECT_TRUE(socket.active());
  EXPECT_FALSE(
      adapter.on_chunk_request(view_with(5), 3, 1'000'000, 1, 0).has_value());
  EXPECT_TRUE(socket.active());
  EXPECT_EQ(adapter.outstanding_engaged(), 1u);
  // Completion order: the bypassed chunk has no entry to erase, and the
  // engaged one still holds the socket until it lands.
  adapter.on_chunk_complete(view_with(5), 1);
  EXPECT_TRUE(socket.active());
  adapter.on_chunk_complete(view_with(25), 0);
  EXPECT_FALSE(socket.active());
}

TEST_F(AdapterFixture, PipelinedEngagementsRearmForCombinedBytes) {
  FestiveAdaptation festive;
  MpDashAdapter adapter(socket, festive,
                        {.policy = DeadlinePolicy::kDurationBased});
  ASSERT_TRUE(adapter.on_chunk_request(view_with(25), 3, 1'000'000, 0, 0)
                  .has_value());
  ASSERT_TRUE(adapter.on_chunk_request(view_with(25), 3, 1'000'000, 1, 0)
                  .has_value());
  EXPECT_EQ(adapter.outstanding_engaged(), 2u);
  EXPECT_TRUE(socket.active());
  // One MP_DASH_ENABLE covers both outstanding chunks' bytes.
  EXPECT_EQ(socket.scheduler().target_bytes(), 2'000'000);
  adapter.on_chunk_complete(view_with(25), 0);
  EXPECT_TRUE(socket.active());  // re-armed for the survivor
  EXPECT_EQ(socket.scheduler().target_bytes(), 1'000'000);
  adapter.on_chunk_complete(view_with(25), 1);
  EXPECT_FALSE(socket.active());
}

}  // namespace
}  // namespace mpdash
