#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "analysis/render.h"
#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"

namespace mpdash {
namespace {

Video tiny_video() {
  return Video("Tiny", seconds(4.0), 8,
               {DataRate::mbps(0.58), DataRate::mbps(1.01),
                DataRate::mbps(1.47), DataRate::mbps(2.41),
                DataRate::mbps(3.94)},
               0.12, 5);
}

SessionResult recorded_session(Scheme scheme) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(6.0), DataRate::mbps(4.0)));
  SessionConfig cfg;
  cfg.scheme = scheme;
  cfg.adaptation = "festive";
  cfg.record_trace = true;
  return run_streaming_session(scenario, tiny_video(), cfg);
}

TEST(Analyzer, ReconstructsEveryChunkFromTheWire) {
  const SessionResult res = recorded_session(Scheme::kBaseline);
  ASSERT_TRUE(res.completed);
  AnalyzerConfig cfg;
  cfg.device = galaxy_note();
  const AnalysisReport report = analyze(res.trace, res.events, cfg);

  // One ChunkDelivery per fetched chunk, sizes matching the player's log.
  ASSERT_EQ(report.chunks.size(), res.chunk_log.size());
  for (std::size_t i = 0; i < report.chunks.size(); ++i) {
    EXPECT_EQ(report.chunks[i].chunk, res.chunk_log[i].chunk);
    EXPECT_EQ(report.chunks[i].level, res.chunk_log[i].level);
    EXPECT_EQ(report.chunks[i].total_bytes, res.chunk_log[i].bytes);
    // Per-path attribution sums to the whole body.
    Bytes sum = 0;
    for (Bytes b : report.chunks[i].bytes_per_path) sum += b;
    EXPECT_EQ(sum, report.chunks[i].total_bytes);
    EXPECT_GE(report.chunks[i].end, report.chunks[i].start);
  }
}

TEST(Analyzer, PathUsageMatchesLinkCounters) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(6.0), DataRate::mbps(4.0)));
  SessionConfig cfg;
  cfg.scheme = Scheme::kBaseline;
  cfg.adaptation = "gpac";
  cfg.record_trace = true;
  const SessionResult res = run_streaming_session(scenario, tiny_video(), cfg);
  ASSERT_TRUE(res.completed);

  AnalyzerConfig acfg;
  acfg.device = galaxy_note();
  const AnalysisReport report = analyze(res.trace, res.events, acfg);
  const PathUsage* wifi = report.path(kWifiPathId);
  const PathUsage* lte = report.path(kCellularPathId);
  ASSERT_NE(wifi, nullptr);
  ASSERT_NE(lte, nullptr);
  EXPECT_EQ(wifi->wire_bytes_total() + lte->wire_bytes_total(),
            res.wifi_bytes + res.cell_bytes);
  EXPECT_EQ(report.path(42), nullptr);
}

TEST(Analyzer, MpDashShiftsChunkBytesOffCellular) {
  const SessionResult base = recorded_session(Scheme::kBaseline);
  const SessionResult mpd = recorded_session(Scheme::kMpDashRate);
  AnalyzerConfig cfg;
  cfg.device = galaxy_note();
  const auto base_report = analyze(base.trace, base.events, cfg);
  const auto mpd_report = analyze(mpd.trace, mpd.events, cfg);

  double base_cell = 0.0, mpd_cell = 0.0;
  for (const auto& c : base_report.chunks) {
    base_cell += c.cellular_fraction(kCellularPathId);
  }
  for (const auto& c : mpd_report.chunks) {
    mpd_cell += c.cellular_fraction(kCellularPathId);
  }
  EXPECT_LT(mpd_cell, base_cell);
}

TEST(Analyzer, EnergyAndSessionLengthPopulated) {
  const SessionResult res = recorded_session(Scheme::kBaseline);
  AnalyzerConfig cfg;
  cfg.device = galaxy_note();
  const AnalysisReport report = analyze(res.trace, res.events, cfg);
  EXPECT_GT(to_seconds(report.session_length), 10.0);
  EXPECT_GT(report.energy.total_j(), 0.0);
  EXPECT_GT(report.energy.lte.total_j(), 0.0);
}

TEST(Analyzer, ThroughputSeriesCoversSession) {
  const SessionResult res = recorded_session(Scheme::kBaseline);
  const ThroughputSeries series = throughput_series(res.trace);
  ASSERT_FALSE(series.total.empty());
  // Peak aggregate should be near the 10 Mbps of combined capacity.
  double peak = 0.0;
  for (const auto& [t, mbps] : series.total) peak = std::max(peak, mbps);
  EXPECT_GT(peak, 5.0);
  EXPECT_LT(peak, 12.0);
  EXPECT_FALSE(series.per_path[kWifiPathId].empty());
}

TEST(Render, TimelineShowsLevelsAndCellularShare) {
  const SessionResult res = recorded_session(Scheme::kBaseline);
  AnalyzerConfig cfg;
  cfg.device = galaxy_note();
  const AnalysisReport report = analyze(res.trace, res.events, cfg);
  const std::string out = render_chunk_timeline(report);
  EXPECT_NE(out.find("chunk level"), std::string::npos);
  EXPECT_NE(out.find("cellular share"), std::string::npos);
  EXPECT_NE(out.find("8 chunks"), std::string::npos);

  const std::string paths = render_path_summary(report);
  EXPECT_NE(paths.find("wire MB (down)"), std::string::npos);
}

TEST(Render, HandlesEmptyReport) {
  EXPECT_EQ(render_chunk_timeline(AnalysisReport{}), "(no chunks)\n");
}

}  // namespace
}  // namespace mpdash
