// Deadline-miss attribution accuracy: scripted single-cause FaultPlans
// with known ground truth, ≥30 seeded runs, zero tolerated
// misclassifications — plus the recovery-on vs recovery-off
// counterfactual (the same server fault reads as retry backoff with the
// recovery stack on and as a direct fault with it off) and the
// campaign-level jobs-invariance of traces and QoE series.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "analysis/spans.h"
#include "exp/chaos.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "fault/fault.h"
#include "telemetry/telemetry.h"
#include "trace/bandwidth_trace.h"

namespace mpdash {
namespace {

FaultEvent make_event(FaultKind kind, double at_s, double dur_s, int path = 0,
                      double value = 0.0) {
  FaultEvent e;
  e.kind = kind;
  e.at = kTimeZero + seconds(at_s);
  e.duration = seconds(dur_s);
  e.path_id = path;
  e.value = value;
  return e;
}

struct AttributedRun {
  SessionResult result;
  SpanModel model;
  std::vector<std::pair<MissCause, int>> counts;

  int misses() const {
    int n = 0;
    for (const auto& [cause, count] : counts) n += count;
    return n;
  }
};

// Streams a short session under `plan`, reconstructs the span model from
// the live trace, and attributes every miss.
AttributedRun run_attributed(const ScenarioConfig& net, const FaultPlan& plan,
                             bool recovery, const Video& video,
                             int debounce_ticks = 2,
                             Duration buffer_capacity = kDurationZero) {
  Scenario scenario(net);
  SessionConfig cfg;
  cfg.scheme = Scheme::kMpDashDuration;
  cfg.adaptation = "festive";
  cfg.debounce_ticks = debounce_ticks;
  cfg.time_limit = seconds(600.0);
  // Engagement requires the buffer to clear Ω ≥ 0.4 × capacity; scenarios
  // that need Algorithm 1 in the loop shrink the buffer to lower that bar.
  if (buffer_capacity > kDurationZero) {
    cfg.player.buffer_capacity = buffer_capacity;
  }
  SessionEnv env;
  env.faults = plan.empty() ? nullptr : &plan;
  if (recovery) {
    cfg.mptcp_recovery.max_consecutive_rtos = 4;
    cfg.mptcp_recovery.reprobe_interval = seconds(2.0);
    cfg.http_recovery.request_timeout = seconds(3.0);
    cfg.http_recovery.max_retries = 4;
    cfg.http_recovery.jitter_seed = net.seed;
    cfg.player.max_chunk_attempts = 3;
  }
  Telemetry telemetry;
  TraceCollector collector;
  telemetry.add_sink(&collector);
  env.telemetry = &telemetry;

  AttributedRun out;
  out.result = run_streaming_session(scenario, video, cfg, env);
  out.model = build_span_model(collector.records());
  attribute_misses(&out.model, kWifiPathId);
  out.counts = attribution_counts(out.model);
  if (const char* path = std::getenv("MPDASH_ATTR_TRACE")) {
    JsonlSink sink(path);
    for (const TraceRecord& r : collector.records()) sink.on_record(r);
  }
  if (std::getenv("MPDASH_ATTR_DEBUG")) {
    for (const ChunkTimeline& t : out.model.spans) {
      std::fprintf(
          stderr,
          "span=%llu %s chunk=%d lvl=%d start=%.2f end=%.2f dl=%.2f "
          "eng=%d sm=%d status=%s costly=%d@%.2f to=%d rt=%d cause=%s\n",
          static_cast<unsigned long long>(t.span), t.name ? t.name : "?",
          t.chunk, t.level, to_seconds(t.start), to_seconds(t.end),
          t.deadline_s, t.sched_engaged, t.sched_missed,
          t.status ? t.status : "open", t.costly_enabled,
          t.costly_enabled ? to_seconds(t.first_costly_enable) : 0.0,
          t.http_timeouts, t.http_retries, to_string(t.cause));
    }
  }
  return out;
}

Video attribution_video(int chunks = 12) {
  return Video("clip", seconds(2.0), chunks,
               {DataRate::mbps(0.6), DataRate::mbps(1.2), DataRate::mbps(2.4)},
               0.1, 42);
}

// Every miss in `run` must carry `expected` — a single-cause plan leaves
// exactly one admissible root cause.
void expect_single_cause(const AttributedRun& run, MissCause expected,
                         const char* what) {
  EXPECT_GT(run.misses(), 0) << what << ": plan caused no misses";
  for (const auto& [cause, count] : run.counts) {
    if (cause == expected) continue;
    EXPECT_EQ(count, 0) << what << ": " << count << " miss(es) misclassified "
                        << to_string(cause) << " instead of "
                        << to_string(expected);
  }
}

// --- path blackout: every miss is the fault's doing ---------------------

TEST(Attribution, PathBlackoutExplainsEveryMiss) {
  // 12 seeds × a total outage (both paths dark) mid-session. Ample
  // bandwidth outside the window, so only the outage can cause misses.
  // The window must open while chunks are still in flight — at 5+4 Mbps
  // the whole clip is fetched by ~8 s, so stagger starts over 6.0-7.0 s.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ScenarioConfig net =
        constant_scenario(DataRate::mbps(5.0), DataRate::mbps(4.0));
    net.seed = seed;
    const double at = 6.0 + 0.5 * static_cast<double>(seed % 3);
    FaultPlan plan;
    plan.events.push_back(make_event(FaultKind::kBlackout, at, 10.0, 0));
    plan.events.push_back(make_event(FaultKind::kBlackout, at, 10.0, 1));
    const AttributedRun run = run_attributed(net, plan, /*recovery=*/true,
                                             attribution_video(16));
    expect_single_cause(run, MissCause::kFaultBlackout,
                        ("blackout seed " + std::to_string(seed)).c_str());
  }
}

// --- server stall: the recovery counterfactual --------------------------

AttributedRun server_stall_run(std::uint64_t seed, bool recovery) {
  ScenarioConfig net =
      constant_scenario(DataRate::mbps(5.0), DataRate::mbps(4.0));
  net.seed = seed;
  // Stagger stall starts over 5.0-5.8 s: the request stream is still busy
  // there, while later starts can land after the last chunk left the wire.
  FaultPlan plan;
  plan.events.push_back(make_event(
      FaultKind::kServerStall, 5.0 + 0.4 * static_cast<double>(seed % 3),
      12.0));
  return run_attributed(net, plan, recovery, attribution_video());
}

TEST(Attribution, ServerStallWithRecoveryReadsAsRetryBackoff) {
  // 6 seeds: with the recovery stack on, the client times out and
  // re-asks; the budget goes to backoff, and attribution says so.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const AttributedRun run = server_stall_run(seed, /*recovery=*/true);
    expect_single_cause(run, MissCause::kRetryBackoff,
                        ("stall+recovery seed " + std::to_string(seed)).c_str());
  }
}

TEST(Attribution, ServerStallWithoutRecoveryReadsAsFault) {
  // Same plans, recovery off: no timeouts or retries ever fire, so the
  // overlapping server fault is the direct cause.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const AttributedRun run = server_stall_run(seed, /*recovery=*/false);
    expect_single_cause(run, MissCause::kFaultBlackout,
                        ("stall-bare seed " + std::to_string(seed)).c_str());
  }
}

TEST(Attribution, RecoveryCounterfactualFlipsTheAttribution) {
  // The acceptance counterfactual: toggling recovery moves every miss
  // from fault-blackout to retry-backoff (and never the reverse).
  int backoff_on = 0, fault_on = 0, backoff_off = 0, fault_off = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const AttributedRun on = server_stall_run(seed, true);
    const AttributedRun off = server_stall_run(seed, false);
    backoff_on += count_for(on.counts, MissCause::kRetryBackoff);
    fault_on += count_for(on.counts, MissCause::kFaultBlackout);
    backoff_off += count_for(off.counts, MissCause::kRetryBackoff);
    fault_off += count_for(off.counts, MissCause::kFaultBlackout);
  }
  EXPECT_GT(backoff_on, 0);
  EXPECT_EQ(fault_on, 0);
  EXPECT_EQ(backoff_off, 0);
  EXPECT_GT(fault_off, 0);
}

// --- scheduler-late: no faults, help never arrives ----------------------

TEST(Attribution, LameDebounceReadsAsSchedulerLate) {
  // 3 seeds: WiFi alone cannot carry the lowest level, LTE could — but a
  // pathological enable debounce keeps Algorithm 1 from ever turning it
  // on. No faults, no retries: the scheduler is the only suspect. The
  // clip must outlast the buffer's climb to Ω (16 s at these settings) or
  // nothing ever engages, so stream 20 chunks.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ScenarioConfig net =
        constant_scenario(DataRate::mbps(0.4), DataRate::mbps(5.0));
    net.seed = seed;
    const AttributedRun run =
        run_attributed(net, FaultPlan{}, /*recovery=*/false,
                       attribution_video(20), /*debounce_ticks=*/1000000,
                       /*buffer_capacity=*/seconds(20.0));
    expect_single_cause(run, MissCause::kSchedulerLate,
                        ("sched-late seed " + std::to_string(seed)).c_str());
  }
}

// --- bandwidth shortfall: the scheduler did its job, physics said no ----

TEST(Attribution, SlowPathsReadAsBandwidthShortfall) {
  // 3 seeds: both paths start fast (so the buffer reaches Ω and the
  // scheduler engages), then collapse below the lowest bitrate with a
  // normal debounce. Every post-collapse begin() re-disables LTE, the
  // shortfall re-triggers a prompt enable, and the chunk still misses:
  // the scheduler did its job, physics said no. Long (4 s) chunks give
  // the in-flight transition chunk room to re-enable LTE well inside
  // half its deadline, keeping the attribution unambiguous.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    ScenarioConfig net;
    net.wifi_down = BandwidthTrace(
        {{kTimeZero, DataRate::mbps(5.0)},
         {kTimeZero + seconds(10.0), DataRate::mbps(0.35)}});
    net.lte_down = BandwidthTrace(
        {{kTimeZero, DataRate::mbps(4.0)},
         {kTimeZero + seconds(10.0), DataRate::mbps(0.3)}});
    net.seed = seed;
    const Video video("clip", seconds(4.0), 10,
                      {DataRate::mbps(0.6), DataRate::mbps(1.2),
                       DataRate::mbps(2.4)},
                      0.1, 42);
    const AttributedRun run =
        run_attributed(net, FaultPlan{}, /*recovery=*/false, video,
                       /*debounce_ticks=*/2, /*buffer_capacity=*/seconds(20.0));
    expect_single_cause(run, MissCause::kBandwidthShortfall,
                        ("shortfall seed " + std::to_string(seed)).c_str());
  }
}

// --- overlap math on synthetic records: exact analytic values -----------

TEST(Attribution, OverlapFieldsMatchHandComputedValues) {
  // Three staggered spans and one path fault with known geometry:
  //   span 1 = [0, 6), span 2 = [2, 8), span 3 = [4, 10), fault = [3, 9).
  // Concurrency pieces: [0,2)=1, [2,4)=2, [4,6)=3, [6,8)=2, [8,10)=1.
  std::vector<TraceRecord> trace;
  auto rec = [&trace](double at_s, TraceType type, SpanId span,
                      const char* label, int path = -1, bool enabled = false) {
    TraceRecord r;
    r.at = kTimeZero + seconds(at_s);
    r.type = type;
    r.span = span;
    r.label = label;
    r.path_id = path;
    r.enabled = enabled;
    trace.push_back(r);
  };
  rec(0.0, TraceType::kSpanStart, 1, "chunk");
  rec(2.0, TraceType::kSpanStart, 2, "chunk");
  rec(3.0, TraceType::kFault, 0, "blackout", 0, true);
  rec(4.0, TraceType::kSpanStart, 3, "chunk");
  rec(6.0, TraceType::kSpanEnd, 1, "delivered");
  rec(8.0, TraceType::kSpanEnd, 2, "delivered");
  rec(9.0, TraceType::kFault, 0, "blackout", 0, false);
  rec(10.0, TraceType::kSpanEnd, 3, "delivered");

  const SpanModel model = build_span_model(trace);
  ASSERT_EQ(model.spans.size(), 3u);
  ASSERT_EQ(model.faults.size(), 1u);

  const ChunkTimeline* s1 = model.find(1);
  const ChunkTimeline* s2 = model.find(2);
  const ChunkTimeline* s3 = model.find(3);
  ASSERT_TRUE(s1 && s2 && s3);

  // Raw fault ∩ span coverage.
  EXPECT_NEAR(s1->path_fault_overlap_s, 3.0, 1e-9);  // [3, 6)
  EXPECT_NEAR(s2->path_fault_overlap_s, 5.0, 1e-9);  // [3, 8)
  EXPECT_NEAR(s3->path_fault_overlap_s, 5.0, 1e-9);  // [4, 9)
  EXPECT_NEAR(s1->server_fault_overlap_s, 0.0, 1e-9);
  EXPECT_NEAR(s2->server_fault_overlap_s, 0.0, 1e-9);
  EXPECT_NEAR(s3->server_fault_overlap_s, 0.0, 1e-9);

  // Apportioned shares: each covered piece divided by its span count.
  //   s1: [3,4)/2 + [4,6)/3                = 0.5 + 2/3
  //   s2: [3,4)/2 + [4,6)/3 + [6,8)/2      = 0.5 + 2/3 + 1.0
  //   s3: [4,6)/3 + [6,8)/2 + [8,9)/1      = 2/3 + 1.0 + 1.0
  EXPECT_NEAR(s1->fault_overlap_share_s, 0.5 + 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(s2->fault_overlap_share_s, 1.5 + 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(s3->fault_overlap_share_s, 2.0 + 2.0 / 3.0, 1e-9);
  // Shares partition the fault window exactly: Σ = 6 s = |[3, 9)|.
  EXPECT_NEAR(s1->fault_overlap_share_s + s2->fault_overlap_share_s +
                  s3->fault_overlap_share_s,
              6.0, 1e-9);

  // All three spans see the triple-overlap piece [4, 6).
  EXPECT_EQ(s1->max_concurrent_spans, 3);
  EXPECT_EQ(s2->max_concurrent_spans, 3);
  EXPECT_EQ(s3->max_concurrent_spans, 3);
}

TEST(Attribution, StackedFaultWindowsDoNotDoubleCount) {
  // Two faults on different paths covering [2, 5) and [4, 7): the union
  // [2, 7) is what a single span [0, 10) is charged — 5 s, not 6.
  std::vector<TraceRecord> trace;
  auto rec = [&trace](double at_s, TraceType type, SpanId span,
                      const char* label, int path = -1, bool enabled = false) {
    TraceRecord r;
    r.at = kTimeZero + seconds(at_s);
    r.type = type;
    r.span = span;
    r.label = label;
    r.path_id = path;
    r.enabled = enabled;
    trace.push_back(r);
  };
  rec(0.0, TraceType::kSpanStart, 1, "chunk");
  rec(2.0, TraceType::kFault, 0, "blackout", 0, true);
  rec(4.0, TraceType::kFault, 0, "blackout", 1, true);
  rec(5.0, TraceType::kFault, 0, "blackout", 0, false);
  rec(7.0, TraceType::kFault, 0, "blackout", 1, false);
  rec(10.0, TraceType::kSpanEnd, 1, "delivered");

  const SpanModel model = build_span_model(trace);
  const ChunkTimeline* s1 = model.find(1);
  ASSERT_TRUE(s1);
  EXPECT_NEAR(s1->path_fault_overlap_s, 5.0, 1e-9);
  EXPECT_NEAR(s1->fault_overlap_share_s, 5.0, 1e-9);  // alone: share = union
  EXPECT_EQ(s1->max_concurrent_spans, 1);
}

// --- campaign-level determinism with spans + series enabled -------------

TEST(Attribution, ChaosTracesAndSeriesAreJobsInvariant) {
  auto campaign = [](int jobs) {
    ChaosConfig cfg;
    cfg.seed_count = 6;
    cfg.chunk_count = 10;
    cfg.jobs = jobs;
    cfg.progress = nullptr;
    cfg.series_interval = seconds(1.0);
    return run_chaos_campaign(cfg);
  };
  const ChaosCampaignResult one = campaign(1);
  const ChaosCampaignResult eight = campaign(8);
  EXPECT_EQ(one.digest(), eight.digest());
  ASSERT_EQ(one.runs.size(), eight.runs.size());
  for (std::size_t i = 0; i < one.runs.size(); ++i) {
    EXPECT_FALSE(one.runs[i].series_csv.empty());
    EXPECT_EQ(one.runs[i].series_csv, eight.runs[i].series_csv)
        << "seed " << one.runs[i].seed;
  }
}

}  // namespace
}  // namespace mpdash
