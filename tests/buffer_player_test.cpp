#include <gtest/gtest.h>

#include "dash/buffer.h"
#include "dash/player.h"
#include "dash/server.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "http/client.h"
#include "mptcp/connection.h"

namespace mpdash {
namespace {

TEST(PlaybackBuffer, AddAndDrain) {
  PlaybackBuffer buf(seconds(40.0));
  EXPECT_EQ(buf.level(kTimeZero), kDurationZero);
  buf.add(kTimeZero, seconds(4.0));
  buf.add(kTimeZero, seconds(4.0));
  EXPECT_EQ(buf.level(kTimeZero), seconds(8.0));
  // Not playing: level holds.
  EXPECT_EQ(buf.level(TimePoint(seconds(100.0))), seconds(8.0));
  buf.set_playing(TimePoint(seconds(100.0)), true);
  EXPECT_EQ(buf.level(TimePoint(seconds(103.0))), seconds(5.0));
  EXPECT_EQ(buf.level(TimePoint(seconds(200.0))), kDurationZero);
}

TEST(PlaybackBuffer, ClampsAtCapacity) {
  PlaybackBuffer buf(seconds(10.0));
  for (int i = 0; i < 5; ++i) buf.add(kTimeZero, seconds(4.0));
  EXPECT_EQ(buf.level(kTimeZero), seconds(10.0));
  EXPECT_EQ(buf.total_added(), seconds(20.0));
  EXPECT_FALSE(buf.has_room(kTimeZero, seconds(4.0)));
}

TEST(PlaybackBuffer, DepletionTime) {
  PlaybackBuffer buf(seconds(40.0));
  buf.add(kTimeZero, seconds(6.0));
  EXPECT_EQ(buf.depletion_time(kTimeZero), TimePoint::max());  // paused
  buf.set_playing(kTimeZero, true);
  EXPECT_EQ(buf.depletion_time(kTimeZero), TimePoint(seconds(6.0)));
  EXPECT_EQ(buf.depletion_time(TimePoint(seconds(2.0))),
            TimePoint(seconds(6.0)));
}

TEST(PlaybackBuffer, RejectsNonPositiveCapacity) {
  EXPECT_THROW(PlaybackBuffer{kDurationZero}, std::invalid_argument);
}

// --- full player sessions ----------------------------------------------

struct PlayerFixture {
  Scenario scenario;
  MptcpConnection conn;
  std::unique_ptr<DashServer> server;
  HttpClient client;

  explicit PlayerFixture(double wifi_mbps, double lte_mbps,
                         Video video = big_buck_bunny(seconds(4.0)))
      : scenario(constant_scenario(DataRate::mbps(wifi_mbps),
                                   DataRate::mbps(lte_mbps))),
        conn(scenario.loop(), scenario.paths()),
        client(scenario.loop(), conn.client()) {
    server = std::make_unique<DashServer>(conn.server(), std::move(video));
  }
};

Video short_video() {
  return Video("Short", seconds(4.0), 20,
               {DataRate::mbps(0.58), DataRate::mbps(1.01),
                DataRate::mbps(1.47), DataRate::mbps(2.41),
                DataRate::mbps(3.94)},
               0.12, 7);
}

TEST(DashPlayer, FastNetworkPlaysTopQualityWithoutStalls) {
  PlayerFixture f(50.0, 50.0, short_video());
  auto adaptation = make_adaptation("festive");
  DashPlayer player(f.scenario.loop(), f.client, *adaptation);
  player.start();
  f.scenario.loop().run_until(TimePoint(seconds(300.0)));

  ASSERT_TRUE(player.done());
  EXPECT_EQ(player.stall_count(), 0);
  ASSERT_EQ(player.chunks().size(), 20u);
  // FESTIVE ramps up; the tail should sit at the top level.
  EXPECT_EQ(player.chunks().back().level, 4);
  // Event log bookkeeping: one request + one complete per chunk.
  int requests = 0, completes = 0;
  for (const auto& ev : player.events()) {
    requests += ev.type == PlayerEventType::kChunkRequest;
    completes += ev.type == PlayerEventType::kChunkComplete;
  }
  EXPECT_EQ(requests, 20);
  EXPECT_EQ(completes, 20);
  EXPECT_EQ(player.events().back().type, PlayerEventType::kPlaybackDone);
}

TEST(DashPlayer, StarvedNetworkStallsButFinishes) {
  // 0.4 Mbps cannot sustain even the lowest 0.58 Mbps level.
  PlayerFixture f(0.4, 0.4, short_video());
  auto adaptation = make_adaptation("gpac");
  DashPlayer player(f.scenario.loop(), f.client, *adaptation);
  player.start();
  f.scenario.loop().run_until(TimePoint(seconds(900.0)));

  ASSERT_TRUE(player.done());
  EXPECT_GT(player.stall_count(), 0);
  EXPECT_GT(to_seconds(player.total_stall_time()), 1.0);
  // Every chunk was forced to the lowest level.
  for (const auto& c : player.chunks()) EXPECT_EQ(c.level, 0);
}

TEST(DashPlayer, DoneCallbackFires) {
  PlayerFixture f(50.0, 50.0, short_video());
  auto adaptation = make_adaptation("gpac");
  DashPlayer player(f.scenario.loop(), f.client, *adaptation);
  bool done = false;
  player.set_done_callback([&] { done = true; });
  player.start();
  f.scenario.loop().run_until(TimePoint(seconds(300.0)));
  EXPECT_TRUE(done);
}

TEST(DashPlayer, BufferNeverExceedsCapacity) {
  PlayerFixture f(50.0, 50.0, short_video());
  auto adaptation = make_adaptation("bba");
  PlayerConfig cfg;
  cfg.buffer_capacity = seconds(20.0);
  DashPlayer player(f.scenario.loop(), f.client, *adaptation, cfg);
  player.start();
  f.scenario.loop().run_until(TimePoint(seconds(300.0)));
  ASSERT_TRUE(player.done());
  for (const auto& ev : player.events()) {
    if (ev.type == PlayerEventType::kBufferSample) {
      EXPECT_LE(ev.extra, 20.0 + 1e-6);
    }
  }
}

TEST(DashPlayer, ChunkRecordsCarryTimingAndBuffer) {
  PlayerFixture f(10.0, 10.0, short_video());
  auto adaptation = make_adaptation("festive");
  DashPlayer player(f.scenario.loop(), f.client, *adaptation);
  player.start();
  f.scenario.loop().run_until(TimePoint(seconds(300.0)));
  ASSERT_TRUE(player.done());
  TimePoint prev = kTimeZero;
  for (const auto& c : player.chunks()) {
    EXPECT_GE(c.requested, prev);      // sequential fetches
    EXPECT_GT(c.completed, c.requested);
    EXPECT_GT(c.bytes, 0);
    prev = c.requested;
  }
}

TEST(DashPlayer, EventLogCsvRoundTrip) {
  PlayerFixture f(50.0, 50.0, short_video());
  auto adaptation = make_adaptation("gpac");
  DashPlayer player(f.scenario.loop(), f.client, *adaptation);
  player.start();
  f.scenario.loop().run_until(TimePoint(seconds(300.0)));
  const auto& events = player.events();
  const auto parsed = event_log_from_csv(event_log_to_csv(events));
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); i += 7) {
    EXPECT_EQ(parsed[i].type, events[i].type);
    EXPECT_EQ(parsed[i].chunk, events[i].chunk);
    EXPECT_NEAR(to_seconds(parsed[i].at), to_seconds(events[i].at), 1e-3);
  }
}

}  // namespace
}  // namespace mpdash
