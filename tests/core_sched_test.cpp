#include <gtest/gtest.h>

#include <map>

#include "core/deadline_scheduler.h"
#include "core/mpdash_socket.h"
#include "core/policy.h"
#include "exp/scenario.h"
#include "exp/session.h"

namespace mpdash {
namespace {

// Deterministic mock transport for unit-testing Algorithm 1.
class MockControl final : public MultipathControl {
 public:
  explicit MockControl(std::vector<ControlledPath> paths)
      : paths_(std::move(paths)) {
    for (const auto& p : paths_) enabled_[p.id] = true;
  }

  std::vector<ControlledPath> paths() const override { return paths_; }
  void set_path_enabled(int id, bool e) override { enabled_[id] = e; }
  bool path_enabled(int id) const override { return enabled_.at(id); }
  Bytes transferred_bytes() const override { return transferred; }
  DataRate path_throughput(int id) const override {
    return throughput.at(id);
  }

  Bytes transferred = 0;
  std::map<int, DataRate> throughput;

 private:
  std::vector<ControlledPath> paths_;
  std::map<int, bool> enabled_;
};

MockControl two_path_control() {
  MockControl c({{0, 0.0}, {1, 1.0}});
  c.throughput[0] = DataRate::mbps(4.0);
  c.throughput[1] = DataRate::mbps(3.0);
  return c;
}

TEST(DeadlineScheduler, BeginDisablesCostlyPath) {
  MockControl c = two_path_control();
  DeadlineScheduler s(c);
  s.begin(kTimeZero, megabytes(5), seconds(10.0));
  EXPECT_TRUE(c.path_enabled(0));
  EXPECT_FALSE(c.path_enabled(1));
  EXPECT_TRUE(s.active());
}

TEST(DeadlineScheduler, KeepsCostlyOffWhenPreferredSuffices) {
  MockControl c = two_path_control();
  // 4 Mbps * 10 s = 5 MB: exactly enough for 4 MB with room.
  DeadlineScheduler s(c, {.alpha = 1.0, .hysteresis = 0.0,
                          .enable_debounce_ticks = 1});
  s.begin(kTimeZero, megabytes(4), seconds(10.0));
  s.update(TimePoint(seconds(1.0)));
  EXPECT_FALSE(c.path_enabled(1));
}

TEST(DeadlineScheduler, EnablesCostlyWhenPreferredFallsShort) {
  MockControl c = two_path_control();
  DeadlineScheduler s(c, {.alpha = 1.0, .hysteresis = 0.0,
                          .enable_debounce_ticks = 1});
  s.begin(kTimeZero, megabytes(8), seconds(10.0));  // needs > 4 Mbps
  s.update(TimePoint(seconds(1.0)));
  EXPECT_TRUE(c.path_enabled(1));
  EXPECT_EQ(s.costly_path_activations(), 1);
}

TEST(DeadlineScheduler, DisablesCostlyAgainAfterCatchUp) {
  MockControl c = two_path_control();
  DeadlineScheduler s(c, {.alpha = 1.0, .hysteresis = 0.0,
                          .enable_debounce_ticks = 1});
  s.begin(kTimeZero, megabytes(6), seconds(10.0));
  s.update(TimePoint(seconds(1.0)));
  EXPECT_TRUE(c.path_enabled(1));  // 6 MB needs 4.8 Mbps
  // Both paths ran: most bytes already moved.
  c.transferred = megabytes(5);
  s.update(TimePoint(seconds(5.0)));
  // Remaining 1 MB in 5 s needs 1.6 Mbps < 4 Mbps WiFi.
  EXPECT_FALSE(c.path_enabled(1));
}

TEST(DeadlineScheduler, DebounceDelaysEnable) {
  MockControl c = two_path_control();
  DeadlineScheduler s(c, {.alpha = 1.0, .hysteresis = 0.0,
                          .enable_debounce_ticks = 3});
  s.begin(kTimeZero, megabytes(8), seconds(10.0));
  s.update(TimePoint(milliseconds(50)));
  EXPECT_FALSE(c.path_enabled(1));
  s.update(TimePoint(milliseconds(100)));
  EXPECT_FALSE(c.path_enabled(1));
  s.update(TimePoint(milliseconds(150)));
  EXPECT_TRUE(c.path_enabled(1));  // third consecutive shortfall
}

TEST(DeadlineScheduler, CompletionReenablesEverything) {
  MockControl c = two_path_control();
  DeadlineScheduler s(c);
  s.begin(kTimeZero, megabytes(1), seconds(10.0));
  c.transferred = megabytes(1);
  s.update(TimePoint(seconds(1.0)));
  EXPECT_FALSE(s.active());
  EXPECT_FALSE(s.deadline_missed());
  EXPECT_TRUE(c.path_enabled(1));  // vanilla MPTCP resumes
}

TEST(DeadlineScheduler, DeadlinePassDeactivatesAndFlags) {
  MockControl c = two_path_control();
  DeadlineScheduler s(c);
  s.begin(kTimeZero, megabytes(100), seconds(2.0));
  s.update(TimePoint(seconds(3.0)));
  EXPECT_FALSE(s.active());
  EXPECT_TRUE(s.deadline_missed());
  EXPECT_TRUE(c.path_enabled(1));
}

TEST(DeadlineScheduler, AlphaShrinksEffectiveBudget) {
  // With alpha=0.5 the scheduler behaves as if the deadline were halved:
  // a load WiFi could carry in the full window now demands the costly
  // path.
  MockControl c = two_path_control();
  DeadlineScheduler s(c, {.alpha = 0.5, .hysteresis = 0.0,
                          .enable_debounce_ticks = 1});
  s.begin(kTimeZero, megabytes(4), seconds(10.0));  // 4 MB, WiFi 5 MB/10 s
  s.update(TimePoint(seconds(1.0)));
  EXPECT_TRUE(c.path_enabled(1));  // 4 MB in alpha*10-1=4 s needs 8 Mbps
}

TEST(DeadlineScheduler, ThreePathCostOrderWaterfall) {
  MockControl c({{0, 0.0}, {1, 1.0}, {2, 2.0}});
  c.throughput[0] = DataRate::mbps(2.0);
  c.throughput[1] = DataRate::mbps(2.0);
  c.throughput[2] = DataRate::mbps(2.0);
  DeadlineScheduler s(c, {.alpha = 1.0, .hysteresis = 0.0,
                          .enable_debounce_ticks = 1});
  // 10 s window: path0 carries 2.5 MB. 4 MB needs path1 too, not path2.
  s.begin(kTimeZero, megabytes(4), seconds(10.0));
  s.update(TimePoint(seconds(0.1)));
  EXPECT_TRUE(c.path_enabled(0));
  EXPECT_TRUE(c.path_enabled(1));
  EXPECT_FALSE(c.path_enabled(2));
  // 8 MB needs all three.
  s.begin(kTimeZero, megabytes(8), seconds(10.0));
  s.update(TimePoint(seconds(0.1)));
  EXPECT_TRUE(c.path_enabled(2));
}

TEST(DeadlineScheduler, ValidatesInputs) {
  MockControl c = two_path_control();
  EXPECT_THROW(DeadlineScheduler(c, {.alpha = 0.0}), std::invalid_argument);
  EXPECT_THROW(DeadlineScheduler(c, {.alpha = 1.2}), std::invalid_argument);
  DeadlineScheduler s(c);
  EXPECT_THROW(s.begin(kTimeZero, 0, seconds(1.0)), std::invalid_argument);
  EXPECT_THROW(s.begin(kTimeZero, 100, kDurationZero), std::invalid_argument);
}

TEST(Policy, CostAssignment) {
  const PathPolicy wifi_first = prefer_wifi_policy();
  EXPECT_LT(wifi_first.cost_for(InterfaceKind::kWifi),
            wifi_first.cost_for(InterfaceKind::kCellular));
  const PathPolicy cell_first = prefer_cellular_policy();
  EXPECT_GT(cell_first.cost_for(InterfaceKind::kWifi),
            cell_first.cost_for(InterfaceKind::kCellular));
}

// --- MpDashSocket against the real transport ----------------------------

TEST(MpDashSocket, DownloadMeetsDeadlineWithMinimalCellular) {
  // WiFi alone needs ~10.5 s for 5 MB; deadline 10 s forces a little LTE.
  Scenario scenario(
      constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)));
  DownloadConfig cfg;
  cfg.size = megabytes(5);
  cfg.deadline = seconds(10.0);
  const DownloadResult res = run_download_session(scenario, cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_FALSE(res.deadline_missed);
  EXPECT_GT(res.cell_bytes, 0);
  // Vanilla MPTCP would put ~44 % on LTE; MP-DASH needs far less.
  EXPECT_LT(res.cell_bytes, megabytes(2));
}

TEST(MpDashSocket, NoCellularWhenWifiComfortablyFast) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(20.0), DataRate::mbps(10.0)));
  DownloadConfig cfg;
  cfg.size = megabytes(5);
  cfg.deadline = seconds(10.0);
  const DownloadResult res = run_download_session(scenario, cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_FALSE(res.deadline_missed);
  // A cold connection has no throughput history, so Algorithm 1 leans on
  // cellular for the first ~100 ms; after that WiFi carries everything.
  // The LTE share must stay a sliver (<2 % of the file).
  EXPECT_LT(res.cell_bytes, megabytes(5) / 50);
}

TEST(MpDashSocket, BaselineUsesBothPathsHeavily) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)));
  DownloadConfig cfg;
  cfg.size = megabytes(5);
  cfg.deadline = seconds(10.0);
  cfg.use_mpdash = false;
  const DownloadResult res = run_download_session(scenario, cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.cell_bytes, megabytes(1));
}

}  // namespace
}  // namespace mpdash
