#include <gtest/gtest.h>

#include "energy/accounting.h"
#include "energy/radio_model.h"

namespace mpdash {
namespace {

RadioPowerParams simple_params() {
  RadioPowerParams p;
  p.promotion_mw = 1000.0;
  p.promotion_time = milliseconds(100);  // 0.1 J per promotion
  p.active_base_mw = 1000.0;
  p.per_mbps_down_mw = 100.0;
  p.per_mbps_up_mw = 200.0;
  p.tail_mw = 500.0;
  p.tail_time = seconds(2.0);
  p.idle_mw = 10.0;
  return p;
}

std::vector<TransferSample> burst_at(Duration at, int windows, Bytes down,
                                     Duration window = milliseconds(100)) {
  std::vector<TransferSample> v;
  for (int i = 0; i < windows; ++i) {
    v.push_back({TimePoint(at) + window * i, down, 0});
  }
  return v;
}

TEST(RadioModel, IdleOnlyWhenNoTraffic) {
  RadioEnergyModel model(simple_params());
  const auto out = model.compute({}, milliseconds(100), seconds(10.0));
  EXPECT_EQ(out.promotions, 0);
  EXPECT_DOUBLE_EQ(out.active_j, 0.0);
  EXPECT_DOUBLE_EQ(out.tail_j, 0.0);
  EXPECT_NEAR(out.idle_j, 0.01 * 10.0, 1e-9);  // 10 mW * 10 s
}

TEST(RadioModel, SingleBurstPromotionActiveTailIdle) {
  RadioEnergyModel model(simple_params());
  // One 100 ms window moving 125000 B down = 10 Mbps.
  const auto out =
      model.compute(burst_at(seconds(1.0), 1, 125'000), milliseconds(100),
                    seconds(10.0));
  EXPECT_EQ(out.promotions, 1);
  EXPECT_NEAR(out.promotion_j, 0.1, 1e-9);
  // Active: (1000 + 100*10) mW * 0.1 s = 0.2 J.
  EXPECT_NEAR(out.active_j, 0.2, 1e-9);
  // Tail: 2 s at 500 mW = 1 J.
  EXPECT_NEAR(out.tail_j, 1.0, 0.05);
  EXPECT_GT(out.idle_j, 0.0);
}

TEST(RadioModel, UplinkCostsMoreThanDownlink) {
  RadioEnergyModel model(simple_params());
  const auto down = model.compute({{kTimeZero, 125'000, 0}},
                                  milliseconds(100), seconds(5.0));
  const auto up = model.compute({{kTimeZero, 0, 125'000}},
                                milliseconds(100), seconds(5.0));
  EXPECT_GT(up.active_j, down.active_j);
}

TEST(RadioModel, BackToBackTransfersPromoteOnce) {
  RadioEnergyModel model(simple_params());
  const auto out = model.compute(burst_at(seconds(1.0), 20, 10'000),
                                 milliseconds(100), seconds(10.0));
  EXPECT_EQ(out.promotions, 1);
}

TEST(RadioModel, GapLongerThanTailRepromotes) {
  RadioEnergyModel model(simple_params());
  auto samples = burst_at(seconds(1.0), 1, 10'000);
  const auto later = burst_at(seconds(6.0), 1, 10'000);  // 5 s > 2 s tail
  samples.insert(samples.end(), later.begin(), later.end());
  const auto out = model.compute(samples, milliseconds(100), seconds(10.0));
  EXPECT_EQ(out.promotions, 2);
}

TEST(RadioModel, GapWithinTailStaysConnected) {
  RadioEnergyModel model(simple_params());
  auto samples = burst_at(seconds(1.0), 1, 10'000);
  const auto later = burst_at(seconds(2.0), 1, 10'000);  // 1 s < 2 s tail
  samples.insert(samples.end(), later.begin(), later.end());
  const auto out = model.compute(samples, milliseconds(100), seconds(10.0));
  EXPECT_EQ(out.promotions, 1);
}

// The Table 4 phenomenon: dribbling the same bytes slowly costs far more
// energy than a fast burst, because the radio never reaches idle.
TEST(RadioModel, DribbleCostsMoreThanBurst) {
  RadioEnergyModel model(simple_params());
  const Duration horizon = seconds(60.0);
  // Burst: 6 MB in 1 s (60 windows x 100 KB).
  const auto burst =
      model.compute(burst_at(seconds(0.0), 10, 600'000), milliseconds(100),
                    horizon);
  // Dribble: 6 MB spread over 60 s (one 10 KB window every 100 ms).
  const auto dribble = model.compute(burst_at(seconds(0.0), 600, 10'000),
                                     milliseconds(100), horizon);
  EXPECT_GT(dribble.total_j(), 3.0 * burst.total_j());
}

TEST(RadioModel, RejectsBadWindow) {
  RadioEnergyModel model(simple_params());
  EXPECT_THROW(model.compute({}, kDurationZero, seconds(1.0)),
               std::invalid_argument);
}

TEST(Devices, GalaxyNoteLteMatchesHuangParameters) {
  const auto dev = galaxy_note();
  EXPECT_NEAR(dev.lte.promotion_mw, 1210.7, 0.1);
  EXPECT_NEAR(to_seconds(dev.lte.tail_time), 11.576, 0.001);
  EXPECT_NEAR(dev.lte.per_mbps_up_mw, 438.39, 0.01);
  // LTE is the power hog relative to WiFi.
  EXPECT_GT(dev.lte.active_base_mw, dev.wifi.active_base_mw);
  EXPECT_GT(dev.lte.tail_mw * to_seconds(dev.lte.tail_time),
            dev.wifi.tail_mw * to_seconds(dev.wifi.tail_time));
}

TEST(Devices, GalaxyS3SlightlyLower) {
  const auto note = galaxy_note();
  const auto s3 = galaxy_s3();
  EXPECT_LT(s3.lte.active_base_mw, note.lte.active_base_mw);
  EXPECT_EQ(s3.lte.promotion_time, note.lte.promotion_time);
}

TEST(Accounting, BucketsAlignAndMerge) {
  std::vector<ByteEvent> events{
      {TimePoint(milliseconds(10)), 100, true},
      {TimePoint(milliseconds(90)), 50, false},
      {TimePoint(milliseconds(150)), 30, true},
  };
  const auto samples = bucket_events(events, milliseconds(100));
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].at, kTimeZero);
  EXPECT_EQ(samples[0].down, 100);
  EXPECT_EQ(samples[0].up, 50);
  EXPECT_EQ(samples[1].at, TimePoint(milliseconds(100)));
  EXPECT_EQ(samples[1].down, 30);
}

TEST(Accounting, PriceSessionSplitsInterfaces) {
  const auto dev = galaxy_note();
  std::vector<ByteEvent> wifi{{kTimeZero, 1'000'000, true}};
  std::vector<ByteEvent> lte{{kTimeZero, 1'000'000, true}};
  const auto energy = price_session(dev, wifi, lte, seconds(30.0));
  EXPECT_GT(energy.lte.total_j(), energy.wifi.total_j());
  EXPECT_NEAR(energy.total_j(),
              energy.wifi.total_j() + energy.lte.total_j(), 1e-9);
}

}  // namespace
}  // namespace mpdash
