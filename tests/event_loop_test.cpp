#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_loop.h"

namespace mpdash {
namespace {

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(seconds(3.0), [&] { order.push_back(3); });
  loop.schedule_at(seconds(1.0), [&] { order.push_back(1); });
  loop.schedule_at(seconds(2.0), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), TimePoint(seconds(3.0)));
}

TEST(EventLoop, EqualTimesFifoBySchedulingOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(seconds(1.0), [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const EventId id = loop.schedule_in(seconds(1.0), [&] { ran = true; });
  EXPECT_TRUE(loop.cancel(id));
  EXPECT_FALSE(loop.cancel(id));  // second cancel is a no-op
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelInvalidIdIsNoop) {
  EventLoop loop;
  EXPECT_FALSE(loop.cancel(EventId{}));
}

TEST(EventLoop, RunUntilAdvancesClockToDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(seconds(1.0), [&] { ++fired; });
  loop.schedule_at(seconds(5.0), [&] { ++fired; });
  loop.run_until(TimePoint(seconds(2.0)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), TimePoint(seconds(2.0)));
  EXPECT_TRUE(loop.has_pending());
  loop.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, EventsScheduleMoreEvents) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) loop.schedule_in(seconds(1.0), tick);
  };
  loop.schedule_in(seconds(1.0), tick);
  loop.run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(loop.now(), TimePoint(seconds(10.0)));
}

TEST(EventLoop, PastDeadlinesClampToNow) {
  EventLoop loop;
  loop.schedule_at(seconds(2.0), [] {});
  loop.run();
  TimePoint fired_at = kTimeZero;
  loop.schedule_at(seconds(1.0), [&] { fired_at = loop.now(); });
  loop.run();
  EXPECT_EQ(fired_at, TimePoint(seconds(2.0)));  // not in the past
}

TEST(EventLoop, CancelSelfWhileRunningOtherEvent) {
  EventLoop loop;
  bool second_ran = false;
  EventId second;
  loop.schedule_at(seconds(1.0), [&] { loop.cancel(second); });
  second = loop.schedule_at(seconds(1.0), [&] { second_ran = true; });
  loop.run();
  EXPECT_FALSE(second_ran);
}

TEST(EventLoop, CountsExecutedEvents) {
  EventLoop loop;
  for (int i = 0; i < 7; ++i) loop.schedule_in(seconds(1.0), [] {});
  loop.run();
  EXPECT_EQ(loop.executed_events(), 7u);
}

// Regression: schedule 10k events, cancel half, run, then re-run a second
// batch on the same loop. Cancelled events must neither fire nor leak
// callbacks, and executed_events() must count exactly the survivors.
TEST(EventLoop, ScheduleCancelRerunTenThousandEvents) {
  constexpr int kEvents = 10'000;
  EventLoop loop;
  int fired = 0;
  std::vector<EventId> ids;
  ids.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    ids.push_back(
        loop.schedule_in(milliseconds(i % 97), [&fired] { ++fired; }));
  }
  for (int i = 0; i < kEvents; i += 2) EXPECT_TRUE(loop.cancel(ids[i]));
  EXPECT_EQ(loop.pending_callbacks(), static_cast<std::size_t>(kEvents / 2));
  loop.run();
  EXPECT_EQ(fired, kEvents / 2);
  EXPECT_EQ(loop.executed_events(), static_cast<std::size_t>(kEvents / 2));
  EXPECT_EQ(loop.pending_callbacks(), 0u);  // nothing leaked
  EXPECT_EQ(loop.queued_entries(), 0u);     // heap fully drained

  // Second batch on the same loop: counters keep accumulating, cancelled
  // ids from the first batch stay dead.
  for (int i = 0; i < kEvents; i += 2) EXPECT_FALSE(loop.cancel(ids[i]));
  for (int i = 0; i < kEvents; ++i) {
    loop.schedule_in(milliseconds(i % 31), [&fired] { ++fired; });
  }
  loop.run();
  EXPECT_EQ(fired, kEvents / 2 + kEvents);
  EXPECT_EQ(loop.executed_events(),
            static_cast<std::size_t>(kEvents / 2 + kEvents));
  EXPECT_EQ(loop.pending_callbacks(), 0u);
}

// Regression: an RTO-style schedule/cancel churn loop must not grow the
// heap without bound — compact() rebuilds it once stale entries dominate.
TEST(EventLoop, CancelChurnKeepsHeapBounded) {
  EventLoop loop;
  std::size_t peak = 0;
  for (int i = 0; i < 10'000; ++i) {
    const EventId id = loop.schedule_in(seconds(1.0), [] {});
    EXPECT_TRUE(loop.cancel(id));
    peak = std::max(peak, loop.queued_entries());
  }
  // Compaction triggers once cancelled entries outnumber live ones (with a
  // small hysteresis floor), so the heap never holds more than ~the floor.
  EXPECT_LT(peak, 200u);
  EXPECT_EQ(loop.pending_callbacks(), 0u);
  loop.run();
  EXPECT_EQ(loop.executed_events(), 0u);
}

}  // namespace
}  // namespace mpdash
