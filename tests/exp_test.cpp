#include <gtest/gtest.h>

#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "trace/locations.h"

namespace mpdash {
namespace {

TEST(Scenario, ConstantScenarioWiring) {
  Scenario sc(constant_scenario(DataRate::mbps(5.0), DataRate::mbps(2.0)));
  ASSERT_EQ(sc.paths().size(), 2u);
  EXPECT_EQ(sc.wifi().id(), kWifiPathId);
  ASSERT_NE(sc.cellular(), nullptr);
  EXPECT_EQ(sc.cellular()->id(), kCellularPathId);
  EXPECT_EQ(sc.wifi().description().kind, InterfaceKind::kWifi);
  EXPECT_EQ(sc.cellular()->description().kind, InterfaceKind::kCellular);
  // Prefer-WiFi policy applied by default.
  EXPECT_LT(sc.wifi().description().unit_cost,
            sc.cellular()->description().unit_cost);
  EXPECT_EQ(sc.wifi_bytes(), 0);
  EXPECT_EQ(sc.cellular_bytes(), 0);
}

TEST(Scenario, WifiOnlyOmitsCellular) {
  ScenarioConfig cfg = constant_scenario(DataRate::mbps(5.0),
                                         DataRate::mbps(2.0));
  cfg.wifi_only = true;
  Scenario sc(cfg);
  EXPECT_EQ(sc.paths().size(), 1u);
  EXPECT_EQ(sc.cellular(), nullptr);
  EXPECT_EQ(sc.cellular_bytes(), 0);
}

TEST(Scenario, RttConfigurationReachesPaths) {
  ScenarioConfig cfg = constant_scenario(DataRate::mbps(5.0),
                                         DataRate::mbps(2.0));
  cfg.wifi_rtt = milliseconds(14);
  cfg.lte_rtt = milliseconds(52);
  Scenario sc(cfg);
  EXPECT_EQ(sc.wifi().base_rtt(), milliseconds(14));
  EXPECT_EQ(sc.cellular()->base_rtt(), milliseconds(52));
}

TEST(Session, SchemeNamesRoundTrip) {
  EXPECT_STREQ(to_string(Scheme::kWifiOnly), "wifi-only");
  EXPECT_STREQ(to_string(Scheme::kBaseline), "baseline");
  EXPECT_STREQ(to_string(Scheme::kMpDashDuration), "mpdash-duration");
  EXPECT_STREQ(to_string(Scheme::kMpDashRate), "mpdash-rate");
  EXPECT_FALSE(scheme_uses_mpdash(Scheme::kBaseline));
  EXPECT_TRUE(scheme_uses_mpdash(Scheme::kMpDashRate));
  EXPECT_TRUE(scheme_uses_mpdash(Scheme::kMpDashDuration));
}

Video tiny_video() {
  return Video("Tiny", seconds(4.0), 10,
               {DataRate::mbps(0.58), DataRate::mbps(1.01),
                DataRate::mbps(1.47), DataRate::mbps(2.41),
                DataRate::mbps(3.94)},
               0.12, 3);
}

TEST(Session, ResultAccountingConsistency) {
  Scenario sc(constant_scenario(DataRate::mbps(8.0), DataRate::mbps(6.0)));
  SessionConfig cfg;
  cfg.adaptation = "gpac";
  const SessionResult res = run_streaming_session(sc, tiny_video(), cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.chunks, 10);
  EXPECT_EQ(static_cast<int>(res.chunk_log.size()), res.chunks);
  EXPECT_GT(res.session_s, 40.0);  // at least the content duration
  EXPECT_NEAR(res.cell_fraction,
              static_cast<double>(res.cell_bytes) /
                  static_cast<double>(res.cell_bytes + res.wifi_bytes),
              1e-9);
  EXPECT_GT(res.energy_j(), 0.0);
  // Delivered bytes at least the sum of chunk sizes.
  Bytes media = 0;
  for (const auto& c : res.chunk_log) media += c.bytes;
  EXPECT_GE(res.wifi_bytes + res.cell_bytes, media);
}

TEST(Session, TimeLimitProducesIncompleteResult) {
  Scenario sc(constant_scenario(DataRate::kbps(100.0), DataRate::kbps(80.0)));
  SessionConfig cfg;
  cfg.adaptation = "gpac";
  cfg.time_limit = seconds(20.0);  // nowhere near enough at 180 kbps
  const SessionResult res = run_streaming_session(sc, tiny_video(), cfg);
  EXPECT_FALSE(res.completed);
  EXPECT_LE(res.session_s, 20.5);
}

TEST(Session, DownloadWarmupDoesNotCountWarmupBytes) {
  Scenario sc(constant_scenario(DataRate::mbps(8.0), DataRate::mbps(8.0)));
  DownloadConfig cfg;
  cfg.size = megabytes(2);
  cfg.warmup = true;
  cfg.use_mpdash = false;
  const DownloadResult res = run_download_session(sc, cfg);
  ASSERT_TRUE(res.completed);
  const Bytes total = res.wifi_bytes + res.cell_bytes;
  // Measured bytes cover the 2 MB transfer plus protocol overhead, not
  // the 500 KB warmup.
  EXPECT_GT(total, megabytes(2));
  EXPECT_LT(total, megabytes(2) + kilobytes(300));
}

TEST(Session, DownloadDeadlineMissReported) {
  Scenario sc(constant_scenario(DataRate::mbps(1.0), DataRate::mbps(0.5)));
  DownloadConfig cfg;
  cfg.size = megabytes(5);
  cfg.deadline = seconds(5.0);  // impossible at 1.5 Mbps aggregate
  const DownloadResult res = run_download_session(sc, cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_TRUE(res.deadline_missed);
}

TEST(Session, LocationScenarioStreamsEndToEnd) {
  // Smoke the field-study path: a strong-WiFi location plays cleanly.
  const LocationProfile* lib = nullptr;
  for (const auto& l : field_study_locations()) {
    if (l.name == "Library") lib = &l;
  }
  ASSERT_NE(lib, nullptr);
  ScenarioConfig net;
  net.wifi_down = lib->wifi_trace(seconds(200.0));
  net.lte_down = lib->lte_trace(seconds(200.0));
  net.wifi_rtt = lib->wifi_rtt;
  net.lte_rtt = lib->lte_rtt;
  Scenario sc(net);
  SessionConfig cfg;
  cfg.adaptation = "festive";
  cfg.scheme = Scheme::kMpDashRate;
  const SessionResult res = run_streaming_session(sc, tiny_video(), cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.stalls, 0);
  // 17.8 Mbps WiFi: beyond the vanilla startup phase, cellular stays
  // untouched; a 10-chunk clip is mostly startup, so allow that much.
  EXPECT_LT(res.cell_bytes, megabytes(2));
}

class SchedulerNames : public ::testing::TestWithParam<const char*> {};

TEST_P(SchedulerNames, BothMptcpSchedulersStreamCleanly) {
  Scenario sc(constant_scenario(DataRate::mbps(4.0), DataRate::mbps(4.0)));
  SessionConfig cfg;
  cfg.adaptation = "gpac";
  cfg.mptcp_scheduler = GetParam();
  const SessionResult res = run_streaming_session(sc, tiny_video(), cfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.stalls, 0);
}

INSTANTIATE_TEST_SUITE_P(Names, SchedulerNames,
                         ::testing::Values("minrtt", "roundrobin"));

}  // namespace
}  // namespace mpdash
