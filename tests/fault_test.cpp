// Fault-injection subsystem tests: the Gilbert–Elliott loss chain, fault
// plan generation, scripted FaultInjector execution, the recovery-on vs.
// recovery-off acceptance demo, and the seeded chaos campaign (invariants
// plus bitwise jobs-count independence).

#include <gtest/gtest.h>

#include "exp/chaos.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "fault/fault.h"
#include "fault/injector.h"
#include "link/loss.h"
#include "util/rng.h"

namespace mpdash {
namespace {

// --- Gilbert–Elliott chain ---------------------------------------------

TEST(GilbertElliott, StepTransitionsAreExact) {
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.5;
  cfg.p_bad_to_good = 0.5;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  GilbertElliottLoss ge(cfg);
  EXPECT_FALSE(ge.in_bad_state());
  // Good state: never drops; u_flip below p_good_to_bad flips to Bad.
  EXPECT_FALSE(ge.step(0.0, 0.4));
  EXPECT_TRUE(ge.in_bad_state());
  // Bad state with loss_bad = 1: every packet drops until the flip back.
  EXPECT_TRUE(ge.step(0.99, 0.9));
  EXPECT_TRUE(ge.in_bad_state());
  EXPECT_TRUE(ge.step(0.0, 0.1));  // drops, then flips back to Good
  EXPECT_FALSE(ge.in_bad_state());
}

TEST(GilbertElliott, LongRunLossMatchesStationaryDistribution) {
  // Stationary P(bad) = p_gb / (p_gb + p_bg) = 0.01 / 0.21 ≈ 0.0476, so
  // the long-run drop rate is ≈ 0.0476 * 0.9 ≈ 4.3 %.
  GilbertElliottLoss ge(GilbertElliottConfig{});
  Rng rng(99);
  int drops = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (ge.should_drop(rng)) ++drops;
  }
  const double rate = static_cast<double>(drops) / n;
  EXPECT_GT(rate, 0.03);
  EXPECT_LT(rate, 0.06);
}

TEST(GilbertElliott, LossesComeInBursts) {
  // Consecutive-drop runs should be much longer than i.i.d. loss at the
  // same rate would produce (mean run ≈ 1/(p_bg + (1-loss_bad)) ≈ 3+).
  GilbertElliottLoss ge(GilbertElliottConfig{});
  Rng rng(7);
  int runs = 0, drops = 0;
  bool in_run = false;
  for (int i = 0; i < 200000; ++i) {
    if (ge.should_drop(rng)) {
      ++drops;
      if (!in_run) {
        ++runs;
        in_run = true;
      }
    } else {
      in_run = false;
    }
  }
  ASSERT_GT(runs, 0);
  const double mean_run = static_cast<double>(drops) / runs;
  EXPECT_GT(mean_run, 2.0);  // i.i.d. at 4 % would give ≈ 1.04
}

// --- fault plans --------------------------------------------------------

TEST(FaultPlan, RandomPlanIsDeterministic) {
  RandomPlanConfig cfg;
  const FaultPlan a = random_fault_plan(42, cfg);
  const FaultPlan b = random_fault_plan(42, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].duration, b.events[i].duration);
    EXPECT_EQ(a.events[i].path_id, b.events[i].path_id);
    EXPECT_EQ(a.events[i].value, b.events[i].value);
  }
  const FaultPlan c = random_fault_plan(43, cfg);
  EXPECT_NE(describe(a.events[0]), describe(c.events[0]));
}

TEST(FaultPlan, EveryWindowRespectsTheMargins) {
  RandomPlanConfig cfg;
  cfg.num_events = 12;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const FaultPlan plan = random_fault_plan(seed, cfg);
    ASSERT_EQ(plan.size(), 12u);
    TimePoint prev = kTimeZero;
    for (const FaultEvent& e : plan.events) {
      EXPECT_GE(e.at, kTimeZero + cfg.start_margin);
      EXPECT_LE(e.end(), kTimeZero + cfg.horizon - cfg.end_margin);
      EXPECT_GT(e.duration, kDurationZero);
      EXPECT_GE(e.at, prev);  // chronological
      prev = e.at;
    }
    EXPECT_LE(plan.last_end(), kTimeZero + cfg.horizon - cfg.end_margin);
  }
}

// --- scripted injector --------------------------------------------------

FaultEvent make_event(FaultKind kind, double at_s, double dur_s,
                      int path = 0, double value = 0.0) {
  FaultEvent e;
  e.kind = kind;
  e.at = kTimeZero + seconds(at_s);
  e.duration = seconds(dur_s);
  e.path_id = path;
  e.value = value;
  return e;
}

TEST(FaultInjector, BlackoutTogglesBothLinksAndRestores) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(5.0), DataRate::mbps(5.0)));
  FaultPlan plan;
  plan.events.push_back(make_event(FaultKind::kBlackout, 2.0, 3.0,
                                   kWifiPathId));
  FaultInjector injector(scenario.loop(), plan);
  for (NetPath* p : scenario.paths()) injector.attach_path(p);
  injector.arm();

  bool down_mid = false, up_after = true;
  scenario.loop().schedule_at(kTimeZero + seconds(3.5), [&] {
    down_mid = scenario.wifi().downlink().is_down() &&
               scenario.wifi().uplink().is_down();
  });
  scenario.loop().schedule_at(kTimeZero + seconds(5.5), [&] {
    up_after = !scenario.wifi().downlink().is_down() &&
               !scenario.wifi().uplink().is_down();
  });
  scenario.loop().run();
  EXPECT_TRUE(down_mid);
  EXPECT_TRUE(up_after);
  EXPECT_TRUE(injector.quiescent());
  EXPECT_EQ(injector.faults_started(), 1);
  EXPECT_EQ(injector.faults_ended(), 1);
}

TEST(FaultInjector, OverlappingImpairmentsComposeAndRestore) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(5.0), DataRate::mbps(5.0)));
  Link& down = scenario.wifi().downlink();
  FaultPlan plan;
  plan.events.push_back(
      make_event(FaultKind::kRateCollapse, 1.0, 4.0, kWifiPathId, 0.5));
  plan.events.push_back(
      make_event(FaultKind::kRateCollapse, 2.0, 4.0, kWifiPathId, 0.2));
  plan.events.push_back(
      make_event(FaultKind::kRttSpike, 1.0, 2.0, kWifiPathId, 100.0));
  FaultInjector injector(scenario.loop(), plan);
  for (NetPath* p : scenario.paths()) injector.attach_path(p);
  injector.arm();

  double factor_mid = 0.0, factor_tail = 0.0, factor_after = 0.0;
  Duration extra_mid = kDurationZero, extra_after = kDurationZero;
  scenario.loop().schedule_at(kTimeZero + seconds(2.5), [&] {
    factor_mid = down.rate_factor();   // both collapses active
    extra_mid = down.extra_delay();    // spike active
  });
  scenario.loop().schedule_at(kTimeZero + seconds(5.5), [&] {
    factor_tail = down.rate_factor();  // only the second collapse left
    extra_after = down.extra_delay();  // spike lifted at t=3
  });
  scenario.loop().schedule_at(kTimeZero + seconds(6.5), [&] {
    factor_after = down.rate_factor();
  });
  scenario.loop().run();
  EXPECT_DOUBLE_EQ(factor_mid, 0.1);   // 0.5 * 0.2
  EXPECT_DOUBLE_EQ(factor_tail, 0.2);
  EXPECT_DOUBLE_EQ(factor_after, 1.0);
  EXPECT_EQ(extra_mid, seconds(0.1));
  EXPECT_EQ(extra_after, kDurationZero);
  EXPECT_TRUE(injector.quiescent());
}

TEST(FaultInjector, FlapBalancesDownAndUpPhases) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(5.0), DataRate::mbps(5.0)));
  FaultPlan plan;
  // 1 s down phases alternating with 1 s up phases across [2, 7).
  plan.events.push_back(
      make_event(FaultKind::kFlap, 2.0, 5.0, kWifiPathId, 1.0));
  FaultInjector injector(scenario.loop(), plan);
  for (NetPath* p : scenario.paths()) injector.attach_path(p);
  injector.arm();

  std::vector<bool> samples;  // at 2.5 (down), 3.5 (up), 4.5 (down), 7.5
  for (const double t : {2.5, 3.5, 4.5, 7.5}) {
    scenario.loop().schedule_at(kTimeZero + seconds(t), [&] {
      samples.push_back(scenario.wifi().downlink().is_down());
    });
  }
  scenario.loop().run();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_TRUE(samples[0]);
  EXPECT_FALSE(samples[1]);
  EXPECT_TRUE(samples[2]);
  EXPECT_FALSE(samples[3]);  // restored after the window
  EXPECT_TRUE(injector.quiescent());
}

TEST(FaultInjector, UnattachedTargetsAreSkippedNotFatal) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(5.0), DataRate::mbps(5.0)));
  FaultPlan plan;
  plan.events.push_back(make_event(FaultKind::kBlackout, 1.0, 1.0, 7));
  plan.events.push_back(make_event(FaultKind::kServerStall, 1.0, 1.0));
  FaultInjector injector(scenario.loop(), plan);  // nothing attached
  injector.arm();
  scenario.loop().run();
  EXPECT_EQ(injector.faults_skipped(), 2);
  EXPECT_EQ(injector.faults_started(), 0);
  EXPECT_TRUE(injector.quiescent());
}

TEST(FaultInjector, FaultRecordsStayUnspannedWhileChunkSpansOpen) {
  // Latent-assumption regression: fault windows are trace-global, so
  // kFault records must never inherit an ambient chunk span — even in a
  // pipelined session where several spans sit on the telemetry stack
  // whenever the injector's timer fires.
  ScenarioConfig net =
      constant_scenario(DataRate::mbps(2.0), DataRate::mbps(2.0));
  net.seed = 5;
  Scenario scenario(net);

  FaultPlan plan;
  plan.events.push_back(
      make_event(FaultKind::kLossBurst, 6.0, 2.0, kWifiPathId));
  plan.events.push_back(
      make_event(FaultKind::kLossBurst, 10.0, 2.0, kCellularPathId));

  Telemetry telemetry;
  TraceCollector collector;
  telemetry.add_sink(&collector);

  SessionConfig cfg;
  cfg.scheme = Scheme::kMpDashRate;
  cfg.adaptation = "festive";
  cfg.player.max_inflight_chunks = 3;
  cfg.http_recovery.request_timeout = seconds(4.0);
  cfg.http_recovery.max_retries = 4;
  cfg.http_recovery.jitter_seed = 11;
  SessionEnv env;
  env.telemetry = &telemetry;
  env.faults = &plan;
  const Video video("clip", seconds(2.0), 14,
                    {DataRate::mbps(0.6), DataRate::mbps(1.2)}, 0.1, 3);
  const SessionResult res = run_streaming_session(scenario, video, cfg, env);
  ASSERT_TRUE(res.completed);
  ASSERT_TRUE(res.faults_quiescent);

  int fault_records = 0;
  int open_spans = 0;
  int faults_with_spans_open = 0;
  for (const TraceRecord& r : collector.records()) {
    if (r.type == TraceType::kSpanStart) ++open_spans;
    if (r.type == TraceType::kSpanEnd) --open_spans;
    if (r.type != TraceType::kFault) continue;
    ++fault_records;
    if (open_spans > 0) ++faults_with_spans_open;
    EXPECT_EQ(r.span, 0u) << r.label << " fault record at "
                          << to_seconds(r.at) << " inherited span "
                          << r.span;
  }
  EXPECT_EQ(fault_records, 4);  // start + end per event
  // The regression only bites if a span was actually open when the
  // injector fired; make sure the scenario exercises that.
  EXPECT_GT(faults_with_spans_open, 0);
}

// --- recovery acceptance: subflow death -> reinjection -> completion ----

class RecoveryAcceptance : public ::testing::Test {
 protected:
  SessionResult run(bool recovery) {
    ScenarioConfig net =
        constant_scenario(DataRate::mbps(3.0), DataRate::mbps(3.0));
    net.seed = 5;
    Scenario scenario(net);

    FaultPlan plan;
    // Blackout from t=10 s to far past the time limit: the WiFi subflow is
    // dead for the rest of the session.
    plan.events.push_back(
        make_event(FaultKind::kBlackout, 10.0, 500.0, kWifiPathId));

    SessionConfig cfg;
    cfg.scheme = Scheme::kBaseline;  // vanilla MPTCP data plane
    cfg.adaptation = "festive";
    cfg.time_limit = seconds(180.0);
    SessionEnv env;
    env.faults = &plan;
    if (recovery) {
      cfg.mptcp_recovery.max_consecutive_rtos = 4;
      cfg.mptcp_recovery.reprobe_interval = seconds(5.0);
      cfg.http_recovery.request_timeout = seconds(4.0);
      cfg.http_recovery.max_retries = 4;
      cfg.http_recovery.jitter_seed = 11;
      cfg.player.max_chunk_attempts = 3;
    }
    const Video video("clip", seconds(4.0), 12,
                      {DataRate::mbps(0.58), DataRate::mbps(1.01),
                       DataRate::mbps(1.47)},
                      0.1, 3);
    return run_streaming_session(scenario, video, cfg, env);
  }
};

TEST_F(RecoveryAcceptance, SubflowDeathReinjectionCompletion) {
  const SessionResult res = run(/*recovery=*/true);
  EXPECT_TRUE(res.completed);
  EXPECT_FALSE(res.manifest_failed);
  EXPECT_EQ(res.chunks + res.chunks_abandoned, 12);
  EXPECT_GE(res.subflow_failures, 1);
  EXPECT_GE(res.reinjected_packets, 1);
  EXPECT_EQ(res.reinject_backlog, 0u);
  // Stranded bytes were re-delivered: accounting balances both ways.
  EXPECT_EQ(res.server_data_seq_high, res.client_bytes_in_order);
  EXPECT_EQ(res.client_data_seq_high, res.server_bytes_in_order);
}

TEST_F(RecoveryAcceptance, SameFaultHangsWithRecoveryDisabled) {
  const SessionResult res = run(/*recovery=*/false);
  // Without failure detection the data stranded on the dead WiFi subflow
  // blocks in-order delivery forever; the session times out incomplete.
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.subflow_failures, 0);
  EXPECT_EQ(res.reinjected_packets, 0);
}

// --- chaos campaign -----------------------------------------------------

ChaosConfig small_chaos(int seeds) {
  ChaosConfig cfg;
  cfg.seed_count = seeds;
  cfg.chunk_count = 10;
  cfg.progress = nullptr;
  return cfg;
}

TEST(ChaosCampaign, InvariantsHoldAcrossSeeds) {
  const ChaosCampaignResult res = run_chaos_campaign(small_chaos(8));
  ASSERT_EQ(res.runs.size(), 8u);
  for (const ChaosRunResult& r : res.runs) {
    for (const std::string& v : r.violations) {
      ADD_FAILURE() << "seed " << r.seed << ": " << v;
    }
    EXPECT_TRUE(r.completed) << "seed " << r.seed;
  }
  EXPECT_EQ(res.violation_count(), 0);
}

TEST(ChaosCampaign, DigestIsIdenticalForAnyJobCount) {
  ChaosConfig cfg = small_chaos(6);
  cfg.jobs = 1;
  const std::string serial = run_chaos_campaign(cfg).digest();
  cfg.jobs = 4;
  const std::string parallel = run_chaos_campaign(cfg).digest();
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
}

// --- pipelined chaos ----------------------------------------------------

TraceRecord http_rec(double at_s, TraceType type, SpanId span,
                     const char* label, int level = -1) {
  TraceRecord r;
  r.at = TimePoint(seconds(at_s));
  r.type = type;
  r.span = span;
  r.label = label;
  r.level = level;
  return r;
}

TEST(PipelineInvariants, OverlappingCleanLifecyclePasses) {
  // Two requests pipelined: span 2 opens before span 1 closes, each gets
  // its response while open, one retry inside the budget.
  const std::vector<TraceRecord> trace = {
      http_rec(0.0, TraceType::kSpanStart, 1, "chunk"),
      http_rec(0.1, TraceType::kHttp, 1, "request", 0),
      http_rec(0.2, TraceType::kSpanStart, 2, "chunk"),
      http_rec(0.3, TraceType::kHttp, 2, "request", 0),
      http_rec(0.5, TraceType::kHttp, 1, "retry", 1),
      http_rec(0.9, TraceType::kHttp, 1, "response", 1),
      http_rec(1.0, TraceType::kSpanEnd, 1, "delivered"),
      http_rec(1.2, TraceType::kHttp, 2, "response", 0),
      http_rec(1.3, TraceType::kSpanEnd, 2, "delivered"),
  };
  EXPECT_TRUE(check_pipeline_invariants(trace, 4).empty());
}

TEST(PipelineInvariants, ResponseToClosedSpanFlagged) {
  const std::vector<TraceRecord> trace = {
      http_rec(0.0, TraceType::kSpanStart, 1, "chunk"),
      http_rec(0.5, TraceType::kSpanEnd, 1, "abandoned"),
      http_rec(0.9, TraceType::kHttp, 1, "response", 0),
  };
  const auto v = check_pipeline_invariants(trace, 4);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("dead span 1"), std::string::npos) << v[0];
}

TEST(PipelineInvariants, SpanReopenFlagged) {
  const std::vector<TraceRecord> trace = {
      http_rec(0.0, TraceType::kSpanStart, 1, "chunk"),
      http_rec(0.5, TraceType::kSpanEnd, 1, "delivered"),
      http_rec(0.6, TraceType::kSpanStart, 1, "chunk"),
  };
  const auto v = check_pipeline_invariants(trace, 4);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("reopened"), std::string::npos) << v[0];
}

TEST(PipelineInvariants, RetryBudgetOverrunFlagged) {
  const std::vector<TraceRecord> trace = {
      http_rec(0.0, TraceType::kSpanStart, 1, "chunk"),
      http_rec(0.5, TraceType::kHttp, 1, "retry", 5),
  };
  const auto v = check_pipeline_invariants(trace, 4);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].find("retry budget exceeded"), std::string::npos) << v[0];
}

TEST(ChaosCampaign, PipelinedInvariantsHoldAcrossSeeds) {
  // The same fault gauntlet with a 3-deep prefetch window: every chunk
  // still delivered or cleanly abandoned, no stale response surfaces to a
  // dead span, retry budgets honored, counters consistent.
  ChaosConfig cfg = small_chaos(8);
  cfg.session.inflight = 3;
  const ChaosCampaignResult res = run_chaos_campaign(cfg);
  ASSERT_EQ(res.runs.size(), 8u);
  for (const ChaosRunResult& r : res.runs) {
    for (const std::string& v : r.violations) {
      ADD_FAILURE() << "seed " << r.seed << ": " << v;
    }
    EXPECT_TRUE(r.completed) << "seed " << r.seed;
  }
  EXPECT_EQ(res.violation_count(), 0);
}

TEST(ChaosCampaign, PipelinedDigestIsIdenticalForAnyJobCount) {
  ChaosConfig cfg = small_chaos(6);
  cfg.session.inflight = 3;
  cfg.jobs = 1;
  const std::string serial = run_chaos_campaign(cfg).digest();
  cfg.jobs = 4;
  const std::string parallel = run_chaos_campaign(cfg).digest();
  EXPECT_EQ(serial, parallel);
  EXPECT_FALSE(serial.empty());
}

TEST(ChaosCampaign, RecoveryOffProducesViolations) {
  // The same fault plans without the recovery stack must trip invariants
  // (hung sessions / undelivered chunks) on at least one seed — otherwise
  // the campaign isn't actually exercising anything.
  // Longer sessions (30 chunks) overlap more fault windows; with 10-chunk
  // sessions most faults land after playback already ended and plain RTO
  // retransmission papers over the rest.
  ChaosConfig cfg = small_chaos(8);
  cfg.chunk_count = 30;
  cfg.session.scheme = Scheme::kMpDashRate;
  cfg.session.recovery = false;
  const ChaosCampaignResult res = run_chaos_campaign(cfg);
  EXPECT_GT(res.violation_count(), 0);
}

}  // namespace
}  // namespace mpdash
