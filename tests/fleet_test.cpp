// Fleet workloads: N tenants on one event loop contending on shared
// WiFi/LTE links. The contracts under test: campaign output is bitwise
// --jobs-invariant, fair queueing equalizes tenants that FIFO starves,
// the cross-session aggregates are consistent with the per-session rows,
// the session mix cycles deterministically, and fleet repro bundles
// round-trip and replay to the same outcome.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "exp/fleet.h"
#include "exp/spec.h"
#include "fault/fault.h"
#include "runner/campaign.h"

namespace mpdash {
namespace {

// Small contended fleet: aggregate capacity well below N × top bitrate so
// the queue discipline decides who gets what.
FleetConfig small_fleet(int sessions, int chunks = 8) {
  FleetConfig cfg;
  cfg.sessions = sessions;
  cfg.seed = 5;
  cfg.chunk_count = chunks;
  return cfg;
}

// --- determinism ---------------------------------------------------------

TEST(Fleet, RepeatedRunsFingerprintIdentically) {
  const FleetConfig cfg = small_fleet(3);
  const FleetResult a = run_fleet(cfg);
  const FleetResult b = run_fleet(cfg);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(fleet_sessions_csv(a), fleet_sessions_csv(b));
}

TEST(Fleet, CampaignOutputIsJobsInvariant) {
  FleetCampaignConfig cfg;
  cfg.fleet = small_fleet(4, 6);
  cfg.seed_count = 3;
  cfg.base_seed = 9;
  cfg.progress = nullptr;

  cfg.jobs = 1;
  const FleetCampaignResult serial = run_fleet_campaign(cfg);
  cfg.jobs = 8;
  const FleetCampaignResult parallel = run_fleet_campaign(cfg);

  ASSERT_EQ(serial.runs.size(), 3u);
  EXPECT_EQ(serial.digest(), parallel.digest());
  // The CSV the CI lane compares must be byte-identical, header included.
  EXPECT_EQ(serial.sessions_csv(), parallel.sessions_csv());
  EXPECT_EQ(serial.sessions_csv().rfind(kFleetCsvHeader, 0), 0u);
}

TEST(Fleet, DifferentSeedsDiverge) {
  FleetConfig cfg = small_fleet(2);
  const std::string a = run_fleet(cfg).fingerprint();
  cfg.seed = 6;
  EXPECT_NE(run_fleet(cfg).fingerprint(), a);
}

// --- fair queueing vs FIFO on the shared bottleneck ----------------------

TEST(Fleet, FairQueueingEqualizesTenantsThatFifoSkews) {
  // Two tenants on one tight AP (aggregate far below 2× top bitrate).
  // Under FIFO the first joiner's standing queue crowds out the second;
  // DRR gives each flow its own queue and alternating service, so steady
  // bitrates come out (near-)equal.
  FleetConfig cfg = small_fleet(2, 12);
  cfg.wifi_mbps = 3.0;
  cfg.lte_mbps = 2.0;
  cfg.wifi_up_mbps = 2.0;
  cfg.lte_up_mbps = 2.0;
  cfg.queue_capacity = 96 * 1000;

  cfg.discipline = QueueDiscipline::kFairQueue;
  const FleetResult fq = run_fleet(cfg);
  cfg.discipline = QueueDiscipline::kFifo;
  const FleetResult fifo = run_fleet(cfg);

  ASSERT_EQ(fq.sessions.size(), 2u);
  ASSERT_EQ(fifo.sessions.size(), 2u);
  const auto steady = [](const FleetResult& r, int i) {
    return r.sessions[i].result.steady_avg_bitrate_mbps;
  };
  // FQ: both tenants land on the same steady rung.
  EXPECT_GT(steady(fq, 0), 0.0);
  EXPECT_GT(steady(fq, 1), 0.0);
  EXPECT_NEAR(steady(fq, 0), steady(fq, 1), 0.25);
  // And the fleet-level Jain index reflects it.
  EXPECT_GE(fq.jain_fairness, 0.99);
  EXPECT_GE(fq.jain_fairness, fifo.jain_fairness);
}

// --- aggregates ----------------------------------------------------------

TEST(Fleet, AggregatesAreConsistentWithPerSessionRows) {
  const FleetResult r = run_fleet(small_fleet(4));
  ASSERT_EQ(r.sessions.size(), 4u);

  int completed = 0;
  double qoe_sum = 0.0;
  for (const FleetSessionResult& s : r.sessions) {
    completed += s.result.completed ? 1 : 0;
    qoe_sum += s.qoe;
    EXPECT_EQ(s.qoe, s.result.steady_avg_bitrate_mbps -
                         kFleetStallPenalty * s.result.stall_s);
    EXPECT_EQ(s.seed, derive_stream_seed(
                          5, "session/" + std::to_string(s.session)));
  }
  EXPECT_EQ(r.completed, completed);
  EXPECT_NEAR(r.qoe_mean, qoe_sum / 4.0, 1e-12);
  EXPECT_GE(r.jain_fairness, 0.0);
  EXPECT_LE(r.jain_fairness, 1.0 + 1e-12);
  EXPECT_GE(r.cell_fraction, 0.0);
  EXPECT_LE(r.cell_fraction, 1.0);
  EXPECT_GT(r.wifi_bytes + r.cell_bytes, 0);
  // Joins are staggered in session order.
  for (std::size_t i = 0; i < r.sessions.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.sessions[i].join_s, static_cast<double>(i));
  }
}

TEST(Fleet, MixCyclesAcrossTenants) {
  FleetConfig cfg = small_fleet(4, 6);
  SessionSpec a;  // mpdash-duration / festive defaults
  SessionSpec b;
  b.scheme = Scheme::kBaseline;
  b.adaptation = "bba";
  cfg.mix = {a, b};
  const FleetResult r = run_fleet(cfg);
  ASSERT_EQ(r.sessions.size(), 4u);
  EXPECT_EQ(r.sessions[0].scheme, a.scheme);
  EXPECT_EQ(r.sessions[1].scheme, Scheme::kBaseline);
  EXPECT_EQ(r.sessions[1].adaptation, "bba");
  EXPECT_EQ(r.sessions[2].scheme, a.scheme);
  EXPECT_EQ(r.sessions[3].scheme, Scheme::kBaseline);
}

// --- chaos on the shared links -------------------------------------------

TEST(Fleet, SharedFaultPlanPerturbsTheWholeFleet) {
  // A WiFi blackout squarely inside the streaming window: every tenant
  // shares that AP, so the run must stay deterministic and the fault
  // windows must open and close (quiescence is a fleet invariant).
  FaultEvent e;
  e.kind = FaultKind::kBlackout;
  e.at = kTimeZero + seconds(6.0);
  e.duration = seconds(2.0);
  e.path_id = 0;
  FaultPlan plan;
  plan.events.push_back(e);

  FleetConfig cfg = small_fleet(3, 10);
  cfg.faults = &plan;
  const FleetResult a = run_fleet(cfg);
  const FleetResult b = run_fleet(cfg);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.faults_started, 1);
  EXPECT_EQ(a.faults_skipped, 0);
}

TEST(Fleet, ChaosCampaignIsJobsInvariant) {
  FleetCampaignConfig cfg;
  cfg.fleet = small_fleet(3, 6);
  cfg.seed_count = 2;
  cfg.base_seed = 21;
  cfg.chaos = true;
  cfg.plan.num_events = 3;
  cfg.progress = nullptr;

  cfg.jobs = 1;
  const std::string serial = run_fleet_campaign(cfg).sessions_csv();
  cfg.jobs = 4;
  EXPECT_EQ(run_fleet_campaign(cfg).sessions_csv(), serial);
}

// --- fleet repro bundles -------------------------------------------------

FleetBundle sample_fleet_bundle() {
  FleetBundle b;
  b.seed = 33;
  b.config = FleetConfig{};
  b.config.sessions = 2;
  b.config.chunk_count = 6;
  FaultEvent e;
  e.kind = FaultKind::kRateCollapse;
  e.at = kTimeZero + seconds(5.0);
  e.duration = seconds(3.0);
  e.path_id = 0;
  e.value = 0.25;
  b.plan.events.push_back(e);
  b.outcome = RunOutcome::kViolation;
  b.expected_violations = {"session 0: fake violation"};
  return b;
}

TEST(FleetBundle, JsonRoundTripsBitwise) {
  const FleetBundle b = sample_fleet_bundle();
  const std::string text = fleet_bundle_to_json(b);
  FleetBundle parsed;
  std::string err;
  ASSERT_TRUE(fleet_bundle_from_json(text, &parsed, &err)) << err;
  EXPECT_EQ(parsed.seed, b.seed);
  EXPECT_EQ(parsed.config, b.config);
  EXPECT_EQ(parsed.outcome, b.outcome);
  EXPECT_EQ(parsed.expected_violations, b.expected_violations);
  EXPECT_EQ(fleet_bundle_to_json(parsed), text);

  EXPECT_FALSE(fleet_bundle_from_json("{}", &parsed, &err));
  EXPECT_FALSE(fleet_bundle_from_json("not json", &parsed, &err));
}

TEST(FleetBundle, FileRoundTripAndPath) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "mpdash_fleet_bundle_test")
          .string();
  std::filesystem::remove_all(dir);
  const FleetBundle b = sample_fleet_bundle();
  const std::string path = fleet_bundle_path(dir, b.seed);
  EXPECT_NE(path.find("fleet_repro_33.json"), std::string::npos);
  std::string err;
  ASSERT_TRUE(write_fleet_bundle(b, path, &err)) << err;
  FleetBundle loaded;
  ASSERT_TRUE(load_fleet_bundle(path, &loaded, &err)) << err;
  EXPECT_EQ(fleet_bundle_to_json(loaded), fleet_bundle_to_json(b));
  std::filesystem::remove_all(dir);
}

TEST(FleetBundle, ReplayReproducesTheRecordedRun) {
  // Record a real run (whatever its outcome), snapshot it as a bundle,
  // and check the replay path reports a match against itself.
  FaultEvent e;
  e.kind = FaultKind::kBlackout;
  e.at = kTimeZero + seconds(4.0);
  e.duration = seconds(2.0);
  e.path_id = 0;
  FaultPlan plan;
  plan.events.push_back(e);

  FleetBundle b;
  b.seed = 13;
  b.config = small_fleet(2, 8);
  b.config.seed = 13;
  b.plan = plan;
  b.config.faults = nullptr;  // the bundle's plan is authoritative

  FleetConfig probe = b.config;
  probe.faults = &plan;
  const FleetResult run = run_fleet(probe);
  b.outcome = run.outcome;
  b.hung_reason = run.hung_reason;
  b.expected_violations = run.violations;

  const FleetReplayResult replay = replay_fleet_bundle(b);
  EXPECT_TRUE(replay.matches)
      << (replay.mismatches.empty() ? "" : replay.mismatches.front());
  EXPECT_EQ(replay.run.fingerprint(), run.fingerprint());
}

}  // namespace
}  // namespace mpdash
