// Golden-trace regression tests for Algorithm 1: the deadline scheduler's
// decision records (kSchedDecision / kPathMask) for fixed scenarios are
// pinned to committed JSONL fixtures, so a scheduler refactor cannot
// silently change its decisions.
//
// Updating after an *intentional* behavior change (see DESIGN.md):
//   MPDASH_UPDATE_GOLDEN=1 ./tests/golden_trace_test
// rewrites the fixtures in the source tree; review and commit the diff.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "fault/fault.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_sink.h"

using namespace mpdash;

namespace {

std::string fixture_path(const std::string& name) {
  return std::string(MPDASH_TEST_DATA_DIR) + "/" + name;
}

std::string decisions_to_jsonl(const std::vector<TraceRecord>& records) {
  std::string out;
  for (const TraceRecord& r : records) {
    if (r.type != TraceType::kSchedDecision &&
        r.type != TraceType::kPathMask) {
      continue;
    }
    out += trace_record_to_json(r);
    out += '\n';
  }
  return out;
}

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[4096];
  std::size_t n;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

void check_golden(const std::string& name, const std::string& got) {
  ASSERT_FALSE(got.empty()) << "scenario produced no decision records";
  const std::string path = fixture_path(name);
  if (std::getenv("MPDASH_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(write_file(path, got)) << "cannot write " << path;
    GTEST_SKIP() << "fixture updated: " << path
                 << " — review and commit the diff";
  }
  std::string want;
  ASSERT_TRUE(read_file(path, &want))
      << "missing fixture " << path
      << "; run with MPDASH_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(got, want)
      << "Algorithm-1 decisions diverged from the committed fixture "
      << path << ". If the change is intentional, regenerate with "
      << "MPDASH_UPDATE_GOLDEN=1 and commit the new fixture.";
}

}  // namespace

// A 5 MB deadline download where WiFi alone cannot make the deadline, so
// Algorithm 1 must enable and later shed the cellular path.
TEST(GoldenTrace, DownloadSchedulerDecisions) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(2.4), DataRate::mbps(3.0)));
  Telemetry telemetry;
  TraceCollector collector;
  telemetry.add_sink(&collector);

  DownloadConfig cfg;
  cfg.size = megabytes(5);
  cfg.deadline = seconds(10.0);
  cfg.use_mpdash = true;
  cfg.telemetry = &telemetry;
  const DownloadResult res = run_download_session(scenario, cfg);
  EXPECT_TRUE(res.completed);

  check_golden("download_sched_decisions.jsonl",
               decisions_to_jsonl(collector.records()));
}

// A short MP-DASH rate-deadline streaming session: per-chunk activations
// of Algorithm 1 under FESTIVE on a constrained WiFi path.
TEST(GoldenTrace, StreamingSchedulerDecisions) {
  const Video video("golden-clip", seconds(4.0), 10,
                    {DataRate::mbps(0.58), DataRate::mbps(1.01),
                     DataRate::mbps(1.47), DataRate::mbps(2.41),
                     DataRate::mbps(3.94)},
                    0.12, 42);
  Scenario scenario(
      constant_scenario(DataRate::mbps(2.8), DataRate::mbps(3.0)));
  Telemetry telemetry;
  TraceCollector collector;
  telemetry.add_sink(&collector);

  SessionConfig cfg;
  cfg.scheme = Scheme::kMpDashRate;
  cfg.adaptation = "festive";
  SessionEnv env;
  env.telemetry = &telemetry;
  const SessionResult res = run_streaming_session(scenario, video, cfg, env);
  EXPECT_TRUE(res.completed);

  check_golden("streaming_sched_decisions.jsonl",
               decisions_to_jsonl(collector.records()));
}

// A scripted mid-session WiFi blackout with the full recovery stack on:
// the fixture pins the scheduler's decisions *and* the fault windows
// (kFault records), so both the failure script and the scheduler's
// reaction to it are regression-locked.
TEST(GoldenTrace, BlackoutSchedulerDecisions) {
  const Video video("golden-clip", seconds(4.0), 10,
                    {DataRate::mbps(0.58), DataRate::mbps(1.01),
                     DataRate::mbps(1.47), DataRate::mbps(2.41),
                     DataRate::mbps(3.94)},
                    0.12, 42);
  Scenario scenario(
      constant_scenario(DataRate::mbps(2.8), DataRate::mbps(3.0)));
  Telemetry telemetry;
  TraceCollector collector;
  telemetry.add_sink(&collector);

  FaultPlan plan;
  FaultEvent blackout;
  blackout.kind = FaultKind::kBlackout;
  blackout.at = TimePoint(seconds(12.0));
  blackout.duration = seconds(8.0);
  blackout.path_id = kWifiPathId;
  plan.events.push_back(blackout);

  SessionConfig cfg;
  cfg.scheme = Scheme::kMpDashRate;
  cfg.adaptation = "festive";
  cfg.mptcp_recovery.max_consecutive_rtos = 4;
  cfg.mptcp_recovery.reprobe_interval = seconds(2.0);
  cfg.http_recovery.request_timeout = seconds(4.0);
  cfg.http_recovery.max_retries = 4;
  cfg.http_recovery.jitter_seed = 11;
  SessionEnv env;
  env.telemetry = &telemetry;
  env.faults = &plan;
  const SessionResult res = run_streaming_session(scenario, video, cfg, env);
  EXPECT_TRUE(res.completed);
  EXPECT_TRUE(res.faults_quiescent);

  std::string out;
  for (const TraceRecord& r : collector.records()) {
    if (r.type != TraceType::kSchedDecision &&
        r.type != TraceType::kPathMask && r.type != TraceType::kFault) {
      continue;
    }
    out += trace_record_to_json(r);
    out += '\n';
  }
  check_golden("blackout_sched_decisions.jsonl", out);
}

// The streaming scenario again with a 3-deep prefetch window: the fixture
// pins the scheduler's decisions *and* the span lifecycle (kSpanStart /
// kSpanEnd records), so it regression-locks overlapping chunk spans —
// up to three open at once — and the deadline-slack credit prefetched
// requests receive.
TEST(GoldenTrace, PipelinedSchedulerDecisions) {
  const Video video("golden-clip", seconds(4.0), 10,
                    {DataRate::mbps(0.58), DataRate::mbps(1.01),
                     DataRate::mbps(1.47), DataRate::mbps(2.41),
                     DataRate::mbps(3.94)},
                    0.12, 42);
  Scenario scenario(
      constant_scenario(DataRate::mbps(2.8), DataRate::mbps(3.0)));
  Telemetry telemetry;
  TraceCollector collector;
  telemetry.add_sink(&collector);

  SessionConfig cfg;
  cfg.scheme = Scheme::kMpDashRate;
  cfg.adaptation = "festive";
  cfg.player.max_inflight_chunks = 3;
  SessionEnv env;
  env.telemetry = &telemetry;
  const SessionResult res = run_streaming_session(scenario, video, cfg, env);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.chunks, 10);

  std::string out;
  int max_open = 0;
  int open = 0;
  for (const TraceRecord& r : collector.records()) {
    if (r.type == TraceType::kSpanStart) {
      ++open;
      if (open > max_open) max_open = open;
    } else if (r.type == TraceType::kSpanEnd) {
      --open;
    } else if (r.type != TraceType::kSchedDecision &&
               r.type != TraceType::kPathMask) {
      continue;
    }
    out += trace_record_to_json(r);
    out += '\n';
  }
  // The fixture is only worth pinning if spans genuinely overlapped.
  EXPECT_GE(max_open, 2);
  EXPECT_LE(max_open, 3);
  check_golden("pipelined_sched_decisions.jsonl", out);
}
