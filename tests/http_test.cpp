#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "http/client.h"
#include "http/message.h"
#include "http/parser.h"
#include "http/server.h"
#include "mptcp/connection.h"
#include "telemetry/telemetry.h"

namespace mpdash {
namespace {

TEST(HttpMessage, RequestSerialization) {
  HttpRequest req;
  req.target = "/video/chunk-1-2.m4s";
  req.headers.push_back({"Host", "example.com"});
  const std::string s = req.serialize();
  EXPECT_EQ(s.substr(0, 4), "GET ");
  EXPECT_NE(s.find("Host: example.com\r\n"), std::string::npos);
  EXPECT_EQ(s.substr(s.size() - 4), "\r\n\r\n");
}

TEST(HttpMessage, ResponseContentLengthAutomatic) {
  HttpResponse resp;
  resp.body_len = 12345;
  EXPECT_NE(resp.serialize_head().find("Content-Length: 12345"),
            std::string::npos);
  HttpResponse with_body;
  with_body.body = "hello";
  EXPECT_EQ(with_body.content_length(), 5);
}

TEST(HttpMessage, HeaderLookupCaseInsensitive) {
  HttpResponse resp;
  resp.headers.push_back({"Content-Type", "video/iso.segment"});
  EXPECT_EQ(resp.header("content-type").value(), "video/iso.segment");
  EXPECT_FALSE(resp.header("X-Missing").has_value());
}

HttpStreamParser::Callbacks counting(int& heads, Bytes& body, int& done,
                                     std::string* real = nullptr) {
  return {
      .on_request = nullptr,
      .on_response_head = [&heads](const HttpResponse&) { ++heads; },
      .on_body =
          [&body, real](Bytes n, const std::string& r) {
            body += n;
            if (real) *real += r;
          },
      .on_message_complete = [&done] { ++done; },
      .on_error = nullptr,
  };
}

TEST(HttpParser, SingleResponseWithVirtualBody) {
  int heads = 0, done = 0;
  Bytes body = 0;
  HttpStreamParser p(HttpStreamParser::Mode::kResponses,
                     counting(heads, body, done));
  HttpResponse resp;
  resp.body_len = 5000;
  p.consume(resp.to_wire());
  EXPECT_EQ(heads, 1);
  EXPECT_EQ(body, 5000);
  EXPECT_EQ(done, 1);
  EXPECT_FALSE(p.mid_message());
}

TEST(HttpParser, RealBodyBytesSurface) {
  int heads = 0, done = 0;
  Bytes body = 0;
  std::string real;
  HttpStreamParser p(HttpStreamParser::Mode::kResponses,
                     counting(heads, body, done, &real));
  HttpResponse resp;
  resp.body = "<MPD>manifest</MPD>";
  p.consume(resp.to_wire());
  EXPECT_EQ(real, "<MPD>manifest</MPD>");
  EXPECT_EQ(done, 1);
}

// Split the stream at every possible byte boundary: the parser must be
// fully incremental.
TEST(HttpParser, SplitAtEveryBoundary) {
  HttpResponse resp;
  resp.headers.push_back({"Content-Type", "video/iso.segment"});
  resp.body = "0123456789";
  const std::string wire = resp.serialize_head() + resp.body;
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    int heads = 0, done = 0;
    Bytes body = 0;
    std::string real;
    HttpStreamParser p(HttpStreamParser::Mode::kResponses,
                       counting(heads, body, done, &real));
    p.consume(wire_from_string(wire.substr(0, cut)));
    p.consume(wire_from_string(wire.substr(cut)));
    ASSERT_EQ(heads, 1) << "cut at " << cut;
    ASSERT_EQ(real, "0123456789") << "cut at " << cut;
    ASSERT_EQ(done, 1) << "cut at " << cut;
  }
}

TEST(HttpParser, BackToBackMessagesInOnePacket) {
  int heads = 0, done = 0;
  Bytes body = 0;
  HttpStreamParser p(HttpStreamParser::Mode::kResponses,
                     counting(heads, body, done));
  HttpResponse a, b;
  a.body_len = 100;
  b.body_len = 200;
  WireData both = a.to_wire();
  wire_append(both, b.to_wire());
  p.consume(both);
  EXPECT_EQ(heads, 2);
  EXPECT_EQ(body, 300);
  EXPECT_EQ(done, 2);
}

TEST(HttpParser, RequestMode) {
  std::vector<std::string> targets;
  HttpStreamParser p(
      HttpStreamParser::Mode::kRequests,
      {.on_request =
           [&](const HttpRequest& r) { targets.push_back(r.target); },
       .on_response_head = nullptr,
       .on_body = nullptr,
       .on_message_complete = nullptr,
       .on_error = nullptr});
  HttpRequest r1, r2;
  r1.target = "/a";
  r2.target = "/b";
  WireData w = r1.to_wire();
  wire_append(w, r2.to_wire());
  p.consume(w);
  EXPECT_EQ(targets, (std::vector<std::string>{"/a", "/b"}));
}

TEST(HttpParser, RejectsVirtualBytesInHead) {
  int heads = 0, done = 0;
  Bytes body = 0;
  HttpStreamParser p(HttpStreamParser::Mode::kResponses,
                     counting(heads, body, done));
  p.consume(wire_virtual(10));
  EXPECT_EQ(p.error(), HttpParseError::kVirtualBytesInHead);
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(heads, 0);
}

TEST(HttpParser, RejectsMalformedStartLine) {
  int heads = 0, done = 0;
  Bytes body = 0;
  HttpStreamParser p(HttpStreamParser::Mode::kResponses,
                     counting(heads, body, done));
  p.consume(wire_from_string("NONSENSE\r\n\r\n"));
  EXPECT_EQ(p.error(), HttpParseError::kMalformedStartLine);
  // Poisoned: even well-formed follow-up input is ignored.
  HttpResponse ok_resp;
  ok_resp.body = "x";
  p.consume(ok_resp.to_wire());
  EXPECT_EQ(heads, 0);
  EXPECT_EQ(done, 0);
}

TEST(HttpParser, RejectsBadContentLength) {
  int heads = 0, done = 0;
  Bytes body = 0;
  HttpStreamParser p(HttpStreamParser::Mode::kResponses,
                     counting(heads, body, done));
  p.consume(wire_from_string(
      "HTTP/1.1 200 OK\r\nContent-Length: 12abc\r\n\r\n"));
  EXPECT_EQ(p.error(), HttpParseError::kBadContentLength);
  EXPECT_EQ(heads, 0);
}

TEST(HttpParser, ErrorCallbackFiresOnce) {
  int errors = 0;
  HttpParseError seen = HttpParseError::kNone;
  HttpStreamParser p(
      HttpStreamParser::Mode::kResponses,
      {.on_request = nullptr,
       .on_response_head = nullptr,
       .on_body = nullptr,
       .on_message_complete = nullptr,
       .on_error =
           [&](HttpParseError e, const std::string&) {
             ++errors;
             seen = e;
           }});
  p.consume(wire_from_string("NONSENSE\r\n\r\n"));
  p.consume(wire_from_string("MORE NONSENSE\r\n\r\n"));
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(seen, HttpParseError::kMalformedStartLine);
}

// --- client + server over the simulated network ------------------------

TEST(HttpEndToEnd, RequestResponseCycle) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(10.0), DataRate::mbps(10.0)));
  MptcpConnection conn(scenario.loop(), scenario.paths());
  HttpServer server(conn.server(), [](const HttpRequest& req) {
    if (req.target == "/hello") {
      HttpResponse resp;
      resp.body = "world";
      return resp;
    }
    return not_found();
  });
  HttpClient client(scenario.loop(), conn.client());

  std::string got;
  int status404 = 0;
  client.get("/hello", [&](const HttpTransfer& t) {
    got = t.body;
    EXPECT_EQ(t.response.status, 200);
    EXPECT_GT(t.completed, t.request_sent);
  });
  client.get("/missing",
             [&](const HttpTransfer& t) { status404 = t.response.status; });
  scenario.loop().run();
  EXPECT_EQ(got, "world");
  EXPECT_EQ(status404, 404);
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST(HttpEndToEnd, LargeVirtualBodyTimingMatchesBandwidth) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(8.0), DataRate::mbps(8.0)));
  MptcpConnection conn(scenario.loop(), scenario.paths());
  HttpServer server(conn.server(), [](const HttpRequest&) {
    HttpResponse resp;
    resp.body_len = megabytes(4);
    return resp;
  });
  HttpClient client(scenario.loop(), conn.client());

  Duration dl = kDurationZero;
  Bytes progress_max = 0;
  client.get(
      "/file", [&](const HttpTransfer& t) { dl = t.download_time(); },
      [&](Bytes got, Bytes total) {
        progress_max = std::max(progress_max, got);
        EXPECT_EQ(total, megabytes(4));
      });
  scenario.loop().run();
  // 4 MB over ~2x8 Mbps aggregate: ideal ~2.1 s; allow congestion slack.
  EXPECT_GT(to_seconds(dl), 1.8);
  EXPECT_LT(to_seconds(dl), 5.0);
  EXPECT_EQ(progress_max, megabytes(4));
}

TEST(HttpEndToEnd, SequentialQueueing) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(10.0), DataRate::mbps(10.0)));
  MptcpConnection conn(scenario.loop(), scenario.paths());
  HttpServer server(conn.server(), [](const HttpRequest&) {
    HttpResponse resp;
    resp.body_len = 100'000;
    return resp;
  });
  HttpClient client(scenario.loop(), conn.client());
  std::vector<int> completion_order;
  for (int i = 0; i < 5; ++i) {
    client.get("/f" + std::to_string(i), [&completion_order, i](
                                             const HttpTransfer&) {
      completion_order.push_back(i);
    });
  }
  EXPECT_EQ(client.outstanding(), 5u);
  scenario.loop().run();
  EXPECT_EQ(completion_order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(HttpRecovery, RetryBudgetExhaustionYieldsTypedTimeout) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(10.0), DataRate::mbps(10.0)));
  MptcpConnection conn(scenario.loop(), scenario.paths());
  HttpServer server(conn.server(), [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "never sent";
    return resp;
  });
  server.set_dropping(true);  // every request vanishes server-side

  HttpClientConfig cfg;
  cfg.request_timeout = milliseconds(500);
  cfg.max_retries = 2;
  cfg.jitter_seed = 7;
  HttpClient client(scenario.loop(), conn.client(), cfg);

  HttpTransfer final_transfer;
  int completions = 0;
  client.get("/chunk", [&](const HttpTransfer& t) {
    final_transfer = t;
    ++completions;
  });
  scenario.loop().run();

  EXPECT_EQ(completions, 1);  // exactly one terminal callback
  EXPECT_EQ(final_transfer.error, TransferError::kTimeout);
  EXPECT_FALSE(final_transfer.ok());
  EXPECT_EQ(final_transfer.retries, cfg.max_retries);
  // First attempt + two retries all timed out; budget then stops resends.
  EXPECT_EQ(client.timeouts(), 3u);
  EXPECT_EQ(client.retries_sent(), 2u);
  EXPECT_EQ(server.requests_dropped(), 3u);
  EXPECT_EQ(server.requests_served(), 0u);
}

TEST(HttpRecovery, RetrySucceedsOnceServerStopsDropping) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(10.0), DataRate::mbps(10.0)));
  MptcpConnection conn(scenario.loop(), scenario.paths());
  HttpServer server(conn.server(), [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "payload";
    return resp;
  });
  server.set_dropping(true);
  // Outage ends before the retry budget runs out.
  scenario.loop().schedule_at(TimePoint(seconds(1.2)),
                              [&server] { server.set_dropping(false); });

  HttpClientConfig cfg;
  cfg.request_timeout = milliseconds(500);
  cfg.max_retries = 5;
  cfg.jitter_seed = 7;
  HttpClient client(scenario.loop(), conn.client(), cfg);

  HttpTransfer done;
  client.get("/chunk", [&](const HttpTransfer& t) { done = t; });
  scenario.loop().run();

  EXPECT_TRUE(done.ok());
  EXPECT_EQ(done.body, "payload");
  EXPECT_GE(done.retries, 1);
  EXPECT_LT(done.retries, cfg.max_retries);
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpRecovery, StalledServerFlushesQueuedResponsesOnResume) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(10.0), DataRate::mbps(10.0)));
  MptcpConnection conn(scenario.loop(), scenario.paths());
  HttpServer server(conn.server(), [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "late";
    return resp;
  });
  server.set_stalled(true);
  scenario.loop().schedule_at(TimePoint(seconds(2.0)),
                              [&server] { server.set_stalled(false); });

  // Generous timeout: the stall ends before any retry fires, so the
  // queued response must flush and complete the original attempt.
  HttpClientConfig cfg;
  cfg.request_timeout = seconds(10.0);
  cfg.jitter_seed = 7;
  HttpClient client(scenario.loop(), conn.client(), cfg);

  HttpTransfer done;
  client.get("/chunk", [&](const HttpTransfer& t) { done = t; });
  scenario.loop().run();

  EXPECT_TRUE(done.ok());
  EXPECT_EQ(done.body, "late");
  EXPECT_EQ(done.retries, 0);
  EXPECT_GT(to_seconds(done.completed), 2.0);  // held until the flush
  EXPECT_EQ(client.timeouts(), 0u);
}

TEST(HttpRecovery, RetryTimerRecordsStampOwningSpanNotAmbient) {
  // Latent-assumption regression: retry and timeout records are emitted
  // from timer callbacks, where the ambient active span is whatever
  // happens to sit on the telemetry stack — under pipelining that is NOT
  // necessarily the owning transfer's span. The client must stamp each
  // record with its transfer's span explicitly.
  Scenario scenario(
      constant_scenario(DataRate::mbps(10.0), DataRate::mbps(10.0)));
  MptcpConnection conn(scenario.loop(), scenario.paths());
  HttpServer server(conn.server(), [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "payload";
    return resp;
  });
  server.set_dropping(true);
  scenario.loop().schedule_at(TimePoint(seconds(1.4)),
                              [&server] { server.set_dropping(false); });

  Telemetry telemetry;
  TraceCollector collector;
  telemetry.add_sink(&collector);
  // A foreign span squats on the ambient stack for the whole run; if any
  // HTTP record leaked through emit()'s ambient stamping with span == 0,
  // it would show up as 999.
  telemetry.push_span(999);

  HttpClientConfig cfg;
  cfg.request_timeout = milliseconds(500);
  cfg.max_retries = 5;
  cfg.jitter_seed = 7;
  cfg.max_pipeline = 2;  // both requests on the wire inside the outage
  HttpClient client(scenario.loop(), conn.client(), cfg);
  client.set_telemetry(&telemetry);

  int done = 0;
  client.get("/a", [&](const HttpTransfer& t) {
    EXPECT_TRUE(t.ok());
    ++done;
  }, nullptr, 101);
  client.get("/b", [&](const HttpTransfer& t) {
    EXPECT_TRUE(t.ok());
    ++done;
  }, nullptr, 202);
  scenario.loop().run();
  ASSERT_EQ(done, 2);

  int retries_101 = 0, retries_202 = 0, responses = 0;
  for (const TraceRecord& r : collector.records()) {
    if (r.type != TraceType::kHttp) continue;
    EXPECT_TRUE(r.span == 101 || r.span == 202)
        << r.label << " record carries span " << r.span;
    if (std::string_view(r.label) == "retry") {
      (r.span == 101 ? retries_101 : retries_202)++;
    } else if (std::string_view(r.label) == "response") {
      ++responses;
    }
  }
  // Both transfers hit the dropping window and retried at least once.
  EXPECT_GE(retries_101, 1);
  EXPECT_GE(retries_202, 1);
  EXPECT_EQ(responses, 2);
}

TEST(HttpRecovery, ResponseFlushedAfterBudgetExhaustionIsDiscarded) {
  Scenario scenario(
      constant_scenario(DataRate::mbps(10.0), DataRate::mbps(10.0)));
  MptcpConnection conn(scenario.loop(), scenario.paths());
  HttpServer server(conn.server(), [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "too late";
    return resp;
  });
  // The stall outlasts the whole retry budget: every attempt's response
  // is held, the transfer errors out, and only then does the server
  // flush. The flushed responses belong to no transfer — including the
  // one echoing the final attempt's id — and must all be discarded.
  server.set_stalled(true);
  scenario.loop().schedule_at(TimePoint(seconds(8.0)),
                              [&server] { server.set_stalled(false); });

  HttpClientConfig cfg;
  cfg.request_timeout = milliseconds(400);
  cfg.max_retries = 2;
  cfg.jitter_seed = 7;
  HttpClient client(scenario.loop(), conn.client(), cfg);

  HttpTransfer done;
  int completions = 0;
  client.get("/chunk", [&](const HttpTransfer& t) {
    done = t;
    ++completions;
  });
  scenario.loop().run();

  EXPECT_EQ(completions, 1);  // the timeout callback, and nothing after
  EXPECT_EQ(done.error, TransferError::kTimeout);
  EXPECT_EQ(server.requests_served(), 3u);  // all attempts held, then flushed
  EXPECT_FALSE(client.busy());
  EXPECT_EQ(client.outstanding(), 0u);
}

}  // namespace
}  // namespace mpdash
