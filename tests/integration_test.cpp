// End-to-end invariants across the whole stack: every scheme x algorithm
// combination must stream successfully, and MP-DASH must never *cost*
// cellular data or QoE relative to vanilla MPTCP.

#include <gtest/gtest.h>

#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace mpdash {
namespace {

Video test_video(int chunks = 30) {
  return Video("IntegrationClip", seconds(4.0), chunks,
               {DataRate::mbps(0.58), DataRate::mbps(1.01),
                DataRate::mbps(1.47), DataRate::mbps(2.41),
                DataRate::mbps(3.94)},
               0.12, 11);
}

SessionResult run(Scheme scheme, const std::string& algo,
                  double wifi_mbps = 3.8, double lte_mbps = 3.0,
                  const std::string& sched = "minrtt") {
  Scenario scenario(constant_scenario(DataRate::mbps(wifi_mbps),
                                      DataRate::mbps(lte_mbps)));
  SessionConfig cfg;
  cfg.scheme = scheme;
  cfg.adaptation = algo;
  cfg.mptcp_scheduler = sched;
  return run_streaming_session(scenario, test_video(), cfg);
}

struct Combo {
  Scheme scheme;
  const char* algo;
};

class AllCombos : public ::testing::TestWithParam<Combo> {};

TEST_P(AllCombos, SessionCompletesCleanly) {
  const Combo combo = GetParam();
  const SessionResult res = run(combo.scheme, combo.algo);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.chunks, 30);
  EXPECT_EQ(res.stalls, 0);
  EXPECT_GT(res.avg_bitrate_mbps, 0.3);
  // The occasional narrow deadline miss is expected behaviour (the paper's
  // Table 2 records ~10 ms misses); the buffer absorbs it — what matters
  // is that misses stay rare and never become stalls.
  EXPECT_LE(res.deadline_misses, 1);
  if (combo.scheme == Scheme::kWifiOnly) {
    EXPECT_EQ(res.cell_bytes, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllCombos,
    ::testing::Values(Combo{Scheme::kBaseline, "festive"},
                      Combo{Scheme::kBaseline, "gpac"},
                      Combo{Scheme::kBaseline, "bba"},
                      Combo{Scheme::kBaseline, "bba-c"},
                      Combo{Scheme::kBaseline, "mpc"},
                      Combo{Scheme::kMpDashRate, "festive"},
                      Combo{Scheme::kMpDashRate, "gpac"},
                      Combo{Scheme::kMpDashRate, "bba"},
                      Combo{Scheme::kMpDashRate, "bba-c"},
                      Combo{Scheme::kMpDashRate, "mpc"},
                      Combo{Scheme::kMpDashDuration, "festive"},
                      Combo{Scheme::kMpDashDuration, "bba"},
                      Combo{Scheme::kWifiOnly, "festive"}),
    [](const auto& info) {
      std::string name = std::string(to_string(info.param.scheme)) + "_" +
                         info.param.algo;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class MpDashSavesCellular : public ::testing::TestWithParam<const char*> {};

TEST_P(MpDashSavesCellular, VsBaselineWithEqualQoe) {
  const std::string algo = GetParam();
  const SessionResult base = run(Scheme::kBaseline, algo);
  const SessionResult mpd = run(Scheme::kMpDashRate, algo);
  ASSERT_TRUE(base.completed);
  ASSERT_TRUE(mpd.completed);
  // The headline property: large cellular reduction. GPAC and BBA-C pin
  // the top level (both are aggressive with the aggregate estimate),
  // leaving WiFi permanently short of the encoding rate, so their ceiling
  // is the per-chunk deficit (the paper's Figure 7b/c likewise shows BBA
  // saving less than FESTIVE); FESTIVE leaves far more room.
  const double factor = algo == "festive" ? 0.5 : 0.7;
  EXPECT_LT(static_cast<double>(mpd.cell_bytes),
            static_cast<double>(base.cell_bytes) * factor);
  // ...with no extra stalls and near-equal playback bitrate.
  EXPECT_EQ(mpd.stalls, 0);
  EXPECT_GT(mpd.steady_avg_bitrate_mbps,
            base.steady_avg_bitrate_mbps - 0.45);
}

INSTANTIATE_TEST_SUITE_P(Algos, MpDashSavesCellular,
                         ::testing::Values("festive", "gpac", "bba-c"));

TEST(Integration, RoundRobinSchedulerAlsoWorks) {
  const SessionResult base =
      run(Scheme::kBaseline, "festive", 3.8, 3.0, "roundrobin");
  const SessionResult mpd =
      run(Scheme::kMpDashRate, "festive", 3.8, 3.0, "roundrobin");
  ASSERT_TRUE(base.completed);
  ASSERT_TRUE(mpd.completed);
  EXPECT_LT(mpd.cell_bytes, base.cell_bytes / 2);
}

TEST(Integration, DeterministicAcrossRuns) {
  const SessionResult a = run(Scheme::kMpDashRate, "festive");
  const SessionResult b = run(Scheme::kMpDashRate, "festive");
  EXPECT_EQ(a.cell_bytes, b.cell_bytes);
  EXPECT_EQ(a.wifi_bytes, b.wifi_bytes);
  EXPECT_EQ(a.chunks, b.chunks);
  EXPECT_DOUBLE_EQ(a.avg_bitrate_mbps, b.avg_bitrate_mbps);
}

TEST(Integration, CellularAssistsWhenWifiCannotCarryAlone) {
  // WiFi 2.2 / LTE 1.2: even the aggregate cannot hold the top level.
  const SessionResult res = run(Scheme::kMpDashRate, "festive", 2.2, 1.2);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.stalls, 0);
  // Cellular must be contributing — WiFi alone tops out below what the
  // player consumes.
  EXPECT_GT(res.cell_bytes, megabytes(1));
  // And the player cannot be at the top level throughout.
  EXPECT_LT(res.steady_avg_bitrate_mbps, 3.5);
}

TEST(Integration, FluctuatingWifiStillNoStalls) {
  Rng rng(31);
  FieldParams wp;
  wp.mean = DataRate::mbps(5.0);
  wp.sigma_fraction = 0.4;
  wp.horizon = seconds(200.0);
  ScenarioConfig cfg;
  cfg.wifi_down = gen_field(wp, rng);
  cfg.lte_down = BandwidthTrace::constant(DataRate::mbps(6.0));
  Scenario scenario(std::move(cfg));

  SessionConfig scfg;
  scfg.scheme = Scheme::kMpDashRate;
  scfg.adaptation = "festive";
  const SessionResult res =
      run_streaming_session(scenario, test_video(), scfg);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.stalls, 0);
  EXPECT_GT(res.cell_bytes, 0);  // the fades forced some assists
}

TEST(Integration, PreferCellularPolicyInverts) {
  // Under the prefer-cellular policy (mobility case), WiFi becomes the
  // costly path and should carry almost nothing when LTE suffices.
  ScenarioConfig cfg =
      constant_scenario(DataRate::mbps(6.0), DataRate::mbps(6.0));
  cfg.policy = prefer_cellular_policy();
  Scenario scenario(std::move(cfg));
  SessionConfig scfg;
  scfg.scheme = Scheme::kMpDashRate;
  scfg.adaptation = "festive";
  const SessionResult res =
      run_streaming_session(scenario, test_video(), scfg);
  ASSERT_TRUE(res.completed);
  EXPECT_LT(res.wifi_bytes, res.cell_bytes / 4);
}

TEST(Integration, ChunkDurationSweep) {
  // The paper: 4, 6, 10 s chunks yield qualitatively similar results.
  for (double dur : {4.0, 6.0, 10.0}) {
    Scenario base_sc(
        constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)));
    Scenario mpd_sc(
        constant_scenario(DataRate::mbps(3.8), DataRate::mbps(3.0)));
    const Video v("Clip", seconds(dur), static_cast<int>(120.0 / dur),
                  {DataRate::mbps(0.58), DataRate::mbps(1.01),
                   DataRate::mbps(1.47), DataRate::mbps(2.41),
                   DataRate::mbps(3.94)},
                  0.12, 13);
    SessionConfig cfg;
    cfg.adaptation = "festive";
    cfg.scheme = Scheme::kBaseline;
    const auto base = run_streaming_session(base_sc, v, cfg);
    cfg.scheme = Scheme::kMpDashRate;
    const auto mpd = run_streaming_session(mpd_sc, v, cfg);
    ASSERT_TRUE(base.completed && mpd.completed) << "chunk dur " << dur;
    EXPECT_LT(mpd.cell_bytes, base.cell_bytes / 2) << "chunk dur " << dur;
    EXPECT_EQ(mpd.stalls, 0) << "chunk dur " << dur;
  }
}

}  // namespace
}  // namespace mpdash
