#include <gtest/gtest.h>

#include <vector>

#include "link/link.h"
#include "link/path.h"
#include "link/shaper.h"
#include "sim/event_loop.h"

namespace mpdash {
namespace {

Packet data_packet(Bytes wire, std::uint64_t id = 1) {
  Packet p;
  p.id = id;
  p.kind = PacketKind::kData;
  p.wire_size = wire;
  p.payload_len = wire - kPacketHeaderBytes;
  return p;
}

TEST(Link, SerializationPlusPropagation) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = BandwidthTrace::constant(DataRate::mbps(8.0));  // 1 MB/s
  cfg.propagation_delay = milliseconds(25);
  Link link(loop, cfg);

  TimePoint delivered_at = kTimeZero;
  link.set_deliver_handler([&](Packet) { delivered_at = loop.now(); });
  link.send(data_packet(1000));
  loop.run();
  // 1000 B at 1 MB/s = 1 ms serialize + 25 ms propagation.
  EXPECT_NEAR(to_milliseconds(delivered_at), 26.0, 0.01);
  EXPECT_EQ(link.delivered_packets(), 1u);
  EXPECT_EQ(link.delivered_bytes(), 1000);
}

TEST(Link, BackToBackPacketsQueueBehindEachOther) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = BandwidthTrace::constant(DataRate::mbps(8.0));
  cfg.propagation_delay = kDurationZero;
  Link link(loop, cfg);

  std::vector<double> times;
  link.set_deliver_handler([&](Packet) {
    times.push_back(to_milliseconds(loop.now()));
  });
  link.send(data_packet(1000, 1));
  link.send(data_packet(1000, 2));
  loop.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[0], 1.0, 0.01);
  EXPECT_NEAR(times[1], 2.0, 0.01);  // serialized after the first
}

TEST(Link, DropTailOnQueueOverflow) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = BandwidthTrace::constant(DataRate::mbps(1.0));
  cfg.queue_capacity = 2500;
  Link link(loop, cfg);

  int delivered = 0;
  link.set_deliver_handler([&](Packet) { ++delivered; });
  for (int i = 0; i < 5; ++i) link.send(data_packet(1000, i + 1));
  loop.run();
  // 2 fit in the 2500 B queue; the rest drop.
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.dropped_packets(), 3u);
  EXPECT_EQ(link.dropped_bytes(), 3000);
}

TEST(Link, RespectsTimeVaryingRate) {
  EventLoop loop;
  LinkConfig cfg;
  // 8 Mbps for 1 s, then 0.8 Mbps.
  cfg.rate = BandwidthTrace({{kTimeZero, DataRate::mbps(8.0)},
                             {TimePoint(seconds(1.0)), DataRate::mbps(0.8)}});
  cfg.propagation_delay = kDurationZero;
  cfg.queue_capacity = 10'000'000;
  Link link(loop, cfg);

  TimePoint last = kTimeZero;
  link.set_deliver_handler([&](Packet) { last = loop.now(); });
  // 1.5 MB: 1 MB in the first second, 0.5 MB at 0.1 MB/s = 5 s more.
  for (int i = 0; i < 1500; ++i) link.send(data_packet(1000, i + 1));
  loop.run();
  EXPECT_NEAR(to_seconds(last), 6.0, 0.05);
}

TEST(Link, TraceSinkSeesSendDeliverDrop) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = BandwidthTrace::constant(DataRate::mbps(1.0));
  cfg.queue_capacity = 1500;
  Link link(loop, cfg);
  Telemetry telemetry;
  TraceCollector sink;
  telemetry.add_sink(&sink);
  link.set_telemetry(&telemetry);
  link.set_deliver_handler([](Packet) {});
  link.send(data_packet(1000, 1));
  link.send(data_packet(1000, 2));
  loop.run();
  int sends = 0, delivers = 0, drops = 0;
  for (const auto& r : sink.records()) {
    if (r.type == TraceType::kPacketSend) ++sends;
    if (r.type == TraceType::kPacketDeliver) ++delivers;
    if (r.type == TraceType::kPacketDrop) ++drops;
  }
  EXPECT_EQ(sends, 2);
  EXPECT_EQ(delivers, 1);
  EXPECT_EQ(drops, 1);
  EXPECT_EQ(telemetry.metrics().counter("link.link0.dropped_packets").value(),
            1.0);
}

TEST(Link, RandomLossDropsApproximately) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate = BandwidthTrace::constant(DataRate::mbps(100.0));
  cfg.queue_capacity = 100'000'000;
  cfg.random_loss = 0.3;
  Link link(loop, cfg);
  // Deterministic "uniform" stream.
  double v = 0.05;
  link.set_loss_rng([&] {
    v += 0.1;
    if (v >= 1.0) v -= 1.0;
    return v;
  });
  int delivered = 0;
  link.set_deliver_handler([&](Packet) { ++delivered; });
  for (int i = 0; i < 100; ++i) link.send(data_packet(500, i + 1));
  loop.run();
  EXPECT_NEAR(static_cast<double>(link.dropped_packets()), 30.0, 5.0);
}

TEST(Shaper, ConformsToTokenRate) {
  EventLoop loop;
  ShaperConfig cfg;
  cfg.rate = DataRate::kbps(800.0);  // 100 KB/s
  cfg.burst = 2000;
  TokenBucketShaper shaper(loop, cfg);
  TimePoint last = kTimeZero;
  Bytes forwarded = 0;
  shaper.set_forward_handler([&](Packet p) {
    last = loop.now();
    forwarded += p.wire_size;
  });
  // 52 KB at 100 KB/s: initial 2 KB burst free, remaining 50 KB -> ~0.5 s.
  for (int i = 0; i < 52; ++i) shaper.send(data_packet(1000, i + 1));
  loop.run();
  EXPECT_EQ(forwarded, 52'000);
  EXPECT_NEAR(to_seconds(last), 0.5, 0.05);
}

TEST(Shaper, DropsWhenQueueFull) {
  EventLoop loop;
  ShaperConfig cfg;
  cfg.rate = DataRate::kbps(8.0);
  cfg.burst = 1000;
  cfg.queue_capacity = 3000;
  TokenBucketShaper shaper(loop, cfg);
  shaper.set_forward_handler([](Packet) {});
  for (int i = 0; i < 10; ++i) shaper.send(data_packet(1000, i + 1));
  EXPECT_GT(shaper.dropped_bytes(), 0);
}

TEST(NetPath, RoutesDirectionsAndRtt) {
  EventLoop loop;
  PathEndpointsConfig cfg;
  cfg.description.id = 3;
  cfg.downlink_rate = BandwidthTrace::constant(DataRate::mbps(10.0));
  cfg.uplink_rate = BandwidthTrace::constant(DataRate::mbps(10.0));
  cfg.one_way_delay = milliseconds(30);
  NetPath path(loop, cfg);
  EXPECT_EQ(path.base_rtt(), milliseconds(60));
  EXPECT_EQ(path.downlink().id(), 6);  // 2 * path id
  EXPECT_EQ(path.uplink().id(), 7);

  int down = 0, up = 0;
  path.set_downlink_deliver([&](Packet p) {
    ++down;
    EXPECT_EQ(p.path_id, 3);  // stamped by the path
  });
  path.set_uplink_deliver([&](Packet) { ++up; });
  path.send_downlink(data_packet(500, 1));
  path.send_uplink(data_packet(500, 2));
  loop.run();
  EXPECT_EQ(down, 1);
  EXPECT_EQ(up, 1);
}

TEST(NetPath, DownlinkShaperThrottles) {
  EventLoop loop;
  PathEndpointsConfig cfg;
  cfg.description.id = 0;
  cfg.downlink_rate = BandwidthTrace::constant(DataRate::mbps(50.0));
  cfg.uplink_rate = BandwidthTrace::constant(DataRate::mbps(10.0));
  cfg.one_way_delay = kDurationZero;
  ShaperConfig shaper;
  shaper.rate = DataRate::kbps(700.0);
  shaper.burst = 1500;
  shaper.queue_capacity = 10'000'000;
  cfg.downlink_shaper = shaper;
  NetPath path(loop, cfg);

  TimePoint last = kTimeZero;
  path.set_downlink_deliver([&](Packet) { last = loop.now(); });
  // 88.5 KB at 87.5 KB/s (700 kbps) minus the burst: ~1 s.
  for (int i = 0; i < 89; ++i) path.send_downlink(data_packet(1000, i + 1));
  loop.run();
  EXPECT_GT(to_seconds(last), 0.9);
}

// --- fair queueing (DRR) on shared links --------------------------------

Packet flow_packet(int flow, Bytes wire, std::uint64_t id) {
  Packet p = data_packet(wire, id);
  p.flow = flow;
  return p;
}

LinkConfig fq_config() {
  LinkConfig cfg;
  cfg.rate = BandwidthTrace::constant(DataRate::mbps(8.0));
  cfg.propagation_delay = kDurationZero;
  cfg.discipline = QueueDiscipline::kFairQueue;
  cfg.fq_quantum = 1500;
  return cfg;
}

TEST(FairQueue, DrrInterleavesABurstWithALateArrival) {
  // Flow 0 dumps its whole burst before flow 1 shows up. FIFO would
  // serve 0,0,0,0 first; DRR must alternate service from the second
  // packet on (the first was already on the wire).
  EventLoop loop;
  Link link(loop, fq_config());
  std::vector<int> order;
  link.set_deliver_handler([&](Packet p) { order.push_back(p.flow); });
  for (int i = 0; i < 4; ++i) link.send(flow_packet(0, 1000, i + 1));
  for (int i = 0; i < 4; ++i) link.send(flow_packet(1, 1000, 10 + i));
  loop.run();
  // Classic DRR with quantum 1.5×MTU: flow 0's first packet went out
  // before flow 1 existed, then each visit earns 1500 B — one packet on
  // the first visit (500 B carried), two on the next (2000 B credit) —
  // so service alternates in 1-then-2 packet bursts instead of FIFO's
  // solid run of four.
  const std::vector<int> want = {0, 0, 1, 0, 0, 1, 1, 1};
  EXPECT_EQ(order, want);
  EXPECT_EQ(link.delivered_bytes_for_flow(0), 4000);
  EXPECT_EQ(link.delivered_bytes_for_flow(1), 4000);
}

TEST(FairQueue, FifoOrderingIsPreservedUnderTheDefaultDiscipline) {
  // Same arrival pattern through the default FIFO queue: strict arrival
  // order, no interleaving — the single-tenant behavior is untouched.
  EventLoop loop;
  LinkConfig cfg = fq_config();
  cfg.discipline = QueueDiscipline::kFifo;
  Link link(loop, cfg);
  std::vector<int> order;
  link.set_deliver_handler([&](Packet p) { order.push_back(p.flow); });
  for (int i = 0; i < 4; ++i) link.send(flow_packet(0, 1000, i + 1));
  for (int i = 0; i < 4; ++i) link.send(flow_packet(1, 1000, 10 + i));
  loop.run();
  const std::vector<int> want = {0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_EQ(order, want);
}

TEST(FairQueue, LongestQueueDropChargesTheAggressiveFlow) {
  // A 3000 B shared buffer, one aggressive flow and one light flow. The
  // drops — both the overflow arrivals and the shed backlog — must all
  // come out of the heavy flow; the light flow's packet rides through.
  EventLoop loop;
  LinkConfig cfg = fq_config();
  cfg.rate = BandwidthTrace::constant(DataRate::mbps(1.0));
  cfg.queue_capacity = 3000;
  Link link(loop, cfg);
  int light_delivered = 0;
  link.set_deliver_handler([&](Packet p) {
    if (p.flow == 1) ++light_delivered;
  });
  for (int i = 0; i < 5; ++i) link.send(flow_packet(0, 1000, i + 1));
  link.send(flow_packet(1, 1000, 10));
  loop.run();
  EXPECT_EQ(light_delivered, 1);
  EXPECT_EQ(link.dropped_bytes_for_flow(1), 0);
  EXPECT_EQ(link.dropped_bytes_for_flow(0), 3000);
  EXPECT_EQ(link.delivered_bytes_for_flow(0), 2000);
}

TEST(FairQueue, LoneFlowAccumulatesQuantaForAJumboPacket) {
  // One flow, one packet bigger than the quantum: the flow must keep
  // earning quanta round after round until it can afford the packet
  // instead of livelocking the serializer.
  EventLoop loop;
  Link link(loop, fq_config());  // quantum 1500
  int delivered = 0;
  link.set_deliver_handler([&](Packet) { ++delivered; });
  link.send(flow_packet(3, 4000, 1));
  link.send(flow_packet(3, 1000, 2));
  loop.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(link.delivered_bytes_for_flow(3), 5000);
}

TEST(FairQueue, FlowDeliverHandlersDemux) {
  // Per-flow handlers receive exactly their flow; unregistered flows fall
  // back to the default handler. Registering a handler also turns on
  // per-flow accounting even under FIFO.
  EventLoop loop;
  LinkConfig cfg = fq_config();
  cfg.discipline = QueueDiscipline::kFifo;
  Link link(loop, cfg);
  int flow1 = 0, fallback = 0;
  link.set_flow_deliver(1, [&](Packet p) {
    EXPECT_EQ(p.flow, 1);
    ++flow1;
  });
  link.set_deliver_handler([&](Packet p) {
    EXPECT_NE(p.flow, 1);
    ++fallback;
  });
  link.send(flow_packet(0, 1000, 1));
  link.send(flow_packet(1, 1000, 2));
  link.send(flow_packet(1, 1000, 3));
  loop.run();
  EXPECT_EQ(flow1, 2);
  EXPECT_EQ(fallback, 1);
  EXPECT_EQ(link.delivered_bytes_for_flow(1), 2000);
  EXPECT_EQ(link.delivered_bytes_for_flow(0), 1000);
}

}  // namespace
}  // namespace mpdash
