#include <gtest/gtest.h>

#include "exp/scenario.h"
#include "mptcp/connection.h"
#include "mptcp/scheduler.h"
#include "mptcp/stream_buffer.h"
#include "mptcp/wire_data.h"

namespace mpdash {
namespace {

TEST(WireData, LengthAndAppend) {
  WireData w = wire_from_string("hello");
  wire_append(w, wire_virtual(10));
  EXPECT_EQ(wire_length(w), 15);
  EXPECT_EQ(wire_to_string(w).substr(0, 5), "hello");
  EXPECT_EQ(wire_to_string(w).size(), 15u);
}

TEST(WireData, SliceAcrossSegments) {
  WireData w = wire_from_string("abcdef");
  wire_append(w, wire_virtual(4));
  const WireData mid = wire_slice(w, 4, 4);  // "ef" + 2 virtual
  EXPECT_EQ(wire_length(mid), 4);
  EXPECT_EQ(wire_to_string(mid).substr(0, 2), "ef");
  EXPECT_TRUE(mid.back().is_virtual());
  EXPECT_THROW(wire_slice(w, 8, 5), std::out_of_range);
}

TEST(WireData, EmptyInputs) {
  EXPECT_TRUE(wire_from_string("").empty());
  EXPECT_TRUE(wire_virtual(0).empty());
  EXPECT_EQ(wire_length({}), 0);
}

TEST(StreamBuffer, PullsInFifoOrder) {
  StreamBuffer buf;
  buf.append(wire_from_string("abcd"));
  buf.append(wire_virtual(6));
  EXPECT_EQ(buf.size(), 10);
  const WireData first = buf.pull(3);
  EXPECT_EQ(wire_to_string(first), "abc");
  const WireData second = buf.pull(100);
  EXPECT_EQ(wire_length(second), 7);
  EXPECT_EQ(wire_to_string(second).substr(0, 1), "d");
  EXPECT_TRUE(buf.empty());
}

TEST(Scheduler, MinRttPrefersLowestRtt) {
  MinRttScheduler s;
  std::vector<SubflowSnapshot> snaps{
      {0, true, true, milliseconds(50)},
      {1, true, true, milliseconds(30)},
  };
  EXPECT_EQ(s.select(snaps), 1);
  snaps[1].has_cwnd_space = false;
  EXPECT_EQ(s.select(snaps), 0);
  snaps[0].enabled = false;
  EXPECT_EQ(s.select(snaps), -1);
}

TEST(Scheduler, RoundRobinRotates) {
  RoundRobinScheduler s;
  std::vector<SubflowSnapshot> snaps{
      {0, true, true, milliseconds(50)},
      {1, true, true, milliseconds(30)},
  };
  EXPECT_EQ(s.select(snaps), 0);
  EXPECT_EQ(s.select(snaps), 1);
  EXPECT_EQ(s.select(snaps), 0);
  snaps[0].enabled = false;
  EXPECT_EQ(s.select(snaps), 1);
  EXPECT_EQ(s.select(snaps), 1);
}

TEST(Scheduler, FactoryByName) {
  EXPECT_EQ(make_scheduler("minrtt")->name(), "minrtt");
  EXPECT_EQ(make_scheduler("roundrobin")->name(), "roundrobin");
  EXPECT_THROW(make_scheduler("bogus"), std::invalid_argument);
}

// --- endpoint / connection over real simulated paths -------------------

struct ConnFixture : ::testing::Test {
  Scenario scenario{constant_scenario(DataRate::mbps(8.0), DataRate::mbps(8.0))};
  MptcpConnection conn{scenario.loop(), scenario.paths()};
};

TEST_F(ConnFixture, InOrderDeliveryAcrossBothPaths) {
  std::string received;
  conn.client().set_receive_handler(
      [&](const WireData& d) { received += wire_to_string(d); });
  std::string expect;
  for (int i = 0; i < 200; ++i) {
    const std::string msg = "message-" + std::to_string(i) + ";";
    expect += msg;
    conn.server().send(wire_from_string(msg));
  }
  scenario.loop().run();
  EXPECT_EQ(received, expect);
  // With equal paths and minRTT, both carried data.
  EXPECT_GT(conn.client().delivered_payload_bytes(kWifiPathId), 0);
  EXPECT_GT(conn.client().delivered_payload_bytes(kCellularPathId), 0);
}

TEST_F(ConnFixture, DisabledPathCarriesNoNewData) {
  conn.server().set_send_mask(1u << kWifiPathId);  // WiFi only
  conn.server().send(wire_virtual(megabytes(1)));
  scenario.loop().run();
  EXPECT_EQ(conn.client().delivered_payload_bytes(kCellularPathId), 0);
  EXPECT_EQ(conn.client().delivered_payload_total(), megabytes(1));
}

TEST_F(ConnFixture, ClientSignalReachesServerEnforcement) {
  conn.client().signal_path_mask(1u << kWifiPathId);
  // Give the control ack a round trip.
  scenario.loop().run_until(scenario.loop().now() + milliseconds(100));
  EXPECT_EQ(conn.server().send_mask(), 1u << kWifiPathId);
  conn.server().send(wire_virtual(500'000));
  scenario.loop().run();
  EXPECT_EQ(conn.client().delivered_payload_bytes(kCellularPathId), 0);
}

TEST_F(ConnFixture, StaleMaskCopyCannotOverrideNewer) {
  // Flip twice quickly: all-paths signal (v1) then wifi-only (v2). Racing
  // copies must resolve to v2 regardless of arrival order.
  conn.client().signal_path_mask(1u << kWifiPathId);   // v1
  conn.client().signal_path_mask(kAllPathsMask);       // v2
  conn.client().signal_path_mask(1u << kWifiPathId);   // v3
  scenario.loop().run_until(scenario.loop().now() + milliseconds(200));
  EXPECT_EQ(conn.server().send_mask(), 1u << kWifiPathId);
}

TEST_F(ConnFixture, ThroughputSamplingWhileActive) {
  conn.client().set_sampling_active(true);
  conn.server().send(wire_virtual(megabytes(4)));
  // Read the estimates mid-transfer: once the stream drains, continued
  // sampling correctly decays them with zero-throughput intervals.
  scenario.loop().run_until(scenario.loop().now() + seconds(1.5));
  // Both 8 Mbps paths near fully driven; estimates should see multiple
  // Mbps each (payload goodput < wire rate).
  const double wifi =
      conn.client().path_throughput_estimate(kWifiPathId).as_mbps();
  const double agg = conn.client().aggregate_throughput_estimate().as_mbps();
  EXPECT_GT(wifi, 4.0);
  EXPECT_LT(wifi, 8.5);
  EXPECT_GT(agg, wifi);
  conn.client().set_sampling_active(false);
  scenario.loop().run();
}

TEST_F(ConnFixture, WireBytesAccounted) {
  conn.server().send(wire_virtual(megabytes(1)));
  scenario.loop().run();
  const Bytes total = conn.wire_bytes(kWifiPathId) +
                      conn.wire_bytes(kCellularPathId);
  // Payload + headers + acks: somewhat above 1 MB but below 1.2 MB.
  EXPECT_GT(total, megabytes(1));
  EXPECT_LT(total, megabytes(1) * 12 / 10);
  EXPECT_THROW(conn.wire_bytes(42), std::out_of_range);
}

TEST_F(ConnFixture, LargeTransferSplitsRoughlyEvenly) {
  conn.server().send(wire_virtual(megabytes(8)));
  scenario.loop().run();
  const double wifi =
      static_cast<double>(conn.client().delivered_payload_bytes(kWifiPathId));
  const double lte = static_cast<double>(
      conn.client().delivered_payload_bytes(kCellularPathId));
  EXPECT_NEAR(wifi / (wifi + lte), 0.5, 0.15);  // symmetric paths
}

TEST(Endpoint, RejectsDuplicatePathIds) {
  EventLoop loop;
  MptcpEndpoint ep(loop, MptcpEndpoint::Role::kServer);
  SubflowConfig cfg;
  cfg.path_id = 0;
  ep.add_path(cfg, [](Packet) {});
  EXPECT_THROW(ep.add_path(cfg, [](Packet) {}), std::invalid_argument);
  EXPECT_THROW(ep.subflow(9), std::out_of_range);
}

struct FailureFixture : ConnFixture {
  void enable_detection() {
    MptcpFailureConfig policy;
    policy.max_consecutive_rtos = 3;
    policy.reprobe_interval = reprobe;
    conn.server().set_failure_policy(policy);
    conn.client().set_failure_policy(policy);
  }
  void kill_wifi() {
    NetPath* wifi = scenario.paths()[0];
    wifi->downlink().set_down(true);
    wifi->uplink().set_down(true);
  }
  Duration reprobe = seconds(5.0);
};

TEST_F(FailureFixture, DeadSubflowIsDetectedAndTrafficReinjected) {
  reprobe = kDurationZero;  // not testing revival here
  enable_detection();
  std::uint64_t received = 0;
  conn.client().set_receive_handler(
      [&](const WireData& d) { received += wire_length(d); });
  conn.server().send(wire_virtual(megabytes(2)));
  // Let the transfer stripe across both paths, then kill WiFi mid-flight.
  scenario.loop().schedule_at(TimePoint(milliseconds(300)),
                              [this] { kill_wifi(); });
  scenario.loop().run_until(TimePoint(seconds(60.0)));

  // Everything still arrives, in order, via the surviving LTE subflow.
  EXPECT_EQ(received, megabytes(2));
  EXPECT_EQ(conn.client().bytes_received_in_order(), megabytes(2));
  EXPECT_TRUE(conn.server().path_dead(kWifiPathId));
  EXPECT_GE(conn.server().subflow_failures(), 1u);
  // Segments stranded on the dead subflow were reinjected, none left over.
  EXPECT_GE(conn.server().reinjected_packets(), 1u);
  EXPECT_EQ(conn.server().reinject_backlog(), 0u);
}

TEST_F(FailureFixture, ReprobeRevivesAHealedPath) {
  reprobe = seconds(3.0);
  enable_detection();
  std::uint64_t received = 0;
  conn.client().set_receive_handler(
      [&](const WireData& d) { received += wire_length(d); });
  conn.server().send(wire_virtual(megabytes(4)));
  scenario.loop().schedule_at(TimePoint(milliseconds(300)),
                              [this] { kill_wifi(); });
  // Heal well after detection + death, before the transfer can finish on
  // LTE alone is fine either way — the reprobe must re-admit the path.
  scenario.loop().schedule_at(TimePoint(seconds(8.0)), [this] {
    NetPath* wifi = scenario.paths()[0];
    wifi->downlink().set_down(false);
    wifi->uplink().set_down(false);
  });
  scenario.loop().run_until(TimePoint(seconds(120.0)));

  EXPECT_EQ(received, megabytes(4));
  EXPECT_GE(conn.server().subflow_failures(), 1u);
  EXPECT_GE(conn.server().subflow_revivals(), 1u);
  EXPECT_FALSE(conn.server().path_dead(kWifiPathId));
  EXPECT_EQ(conn.server().reinject_backlog(), 0u);
}

TEST_F(FailureFixture, WithoutDetectionTheTransferHangs) {
  // Seed behavior (policy disabled): a silently-dead path strands the
  // segments scheduled onto it forever.
  std::uint64_t received = 0;
  conn.client().set_receive_handler(
      [&](const WireData& d) { received += wire_length(d); });
  conn.server().send(wire_virtual(megabytes(2)));
  scenario.loop().schedule_at(TimePoint(milliseconds(300)),
                              [this] { kill_wifi(); });
  scenario.loop().run_until(TimePoint(seconds(60.0)));

  EXPECT_LT(received, megabytes(2));
  EXPECT_EQ(conn.server().subflow_failures(), 0u);
  EXPECT_EQ(conn.server().reinjected_packets(), 0u);
}

}  // namespace
}  // namespace mpdash
