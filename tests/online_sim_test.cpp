#include <gtest/gtest.h>

#include "core/online_simulator.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace mpdash {
namespace {

TEST(OnlineSim, WifiOnlyWhenConstantBandwidthSuffices) {
  const auto wifi = BandwidthTrace::constant(DataRate::mbps(8.0));
  const auto cell = BandwidthTrace::constant(DataRate::mbps(8.0));
  const auto res = simulate_online_two_path(wifi, cell, megabytes(5),
                                            seconds(10.0));
  EXPECT_FALSE(res.deadline_missed);
  // 5 MB at 1 MB/s = 5 s.
  EXPECT_NEAR(to_seconds(res.finish_time), 5.0, 0.2);
  EXPECT_EQ(res.costly_bytes, 0);
}

TEST(OnlineSim, CellularFillsDeficit) {
  const auto wifi = BandwidthTrace::constant(DataRate::mbps(3.8));
  const auto cell = BandwidthTrace::constant(DataRate::mbps(3.0));
  const auto res = simulate_online_two_path(wifi, cell, megabytes(5),
                                            seconds(10.0));
  EXPECT_FALSE(res.deadline_missed);
  EXPECT_GT(res.costly_bytes, 0);
  // Optimal deficit is 250 KB; online should be in the same regime.
  EXPECT_LT(res.costly_bytes, megabytes(1));
}

TEST(OnlineSim, MissesOnlyOnSteepContinuousDrop) {
  // The paper observes misses happen when WiFi collapses and stays down.
  const auto wifi = gen_ramp(DataRate::mbps(6.0), DataRate::mbps(0.1), 20,
                             seconds(10.0));
  const auto cell = BandwidthTrace::constant(DataRate::kbps(500.0));
  const auto res = simulate_online_two_path(wifi, cell, megabytes(6),
                                            seconds(10.0));
  EXPECT_TRUE(res.deadline_missed);
  EXPECT_GT(res.miss_by, kDurationZero);
  // After the miss both paths run to completion.
  EXPECT_GT(res.costly_bytes, 0);
}

TEST(OnlineSim, TimelineCoversTransfer) {
  const auto wifi = BandwidthTrace::constant(DataRate::mbps(8.0));
  const auto cell = BandwidthTrace::constant(DataRate::mbps(8.0));
  const auto res = simulate_online_two_path(wifi, cell, megabytes(1),
                                            seconds(5.0));
  ASSERT_FALSE(res.timeline.empty());
  Bytes sum = 0;
  for (const auto& slot : res.timeline) {
    sum += slot.preferred_bytes + slot.costly_bytes;
  }
  EXPECT_GE(sum, megabytes(1));
  // Slot cadence matches the configured slot.
  EXPECT_EQ(res.timeline[1].start - res.timeline[0].start, milliseconds(50));
}

// Property (paper §7.2.1): smaller alpha is more conservative — never
// more deadline misses, never less cellular data.
class AlphaMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(AlphaMonotonicity, SmallerAlphaMoreCellular) {
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  JitterParams wp;
  wp.mean = DataRate::mbps(3.8);
  wp.sigma_fraction = 0.3;
  const auto wifi = gen_jitter(wp, rng);
  const auto cell = BandwidthTrace::constant(DataRate::mbps(3.0));

  double prev_cell = -1.0;
  for (double alpha : {0.7, 0.85, 1.0}) {
    OnlineSimConfig cfg;
    cfg.alpha = alpha;
    const auto res = simulate_online_two_path(wifi, cell, megabytes(5),
                                              seconds(10.0), cfg);
    if (prev_cell >= 0.0) {
      // Larger alpha (less conservative) should not need *more* cellular.
      EXPECT_LE(res.costly_fraction, prev_cell + 0.02);
    }
    prev_cell = res.costly_fraction;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlphaMonotonicity, ::testing::Range(0, 5));

TEST(OnlineSim, ValidatesInputs) {
  const auto t = BandwidthTrace::constant(DataRate::mbps(1.0));
  EXPECT_THROW(simulate_online_two_path(t, t, 0, seconds(1.0)),
               std::invalid_argument);
  EXPECT_THROW(simulate_online_two_path(t, t, 100, kDurationZero),
               std::invalid_argument);
}

}  // namespace
}  // namespace mpdash
