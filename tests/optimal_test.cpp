#include <gtest/gtest.h>

#include "core/offline_optimal.h"
#include "core/online_simulator.h"
#include "trace/generators.h"
#include "util/rng.h"

namespace mpdash {
namespace {

SlottedInstance tiny_instance() {
  // 2 interfaces x 4 slots of 1 s. WiFi free: 100 B/slot. Cell cost 1:
  // 80 B/slot.
  SlottedInstance inst;
  inst.slot = seconds(1.0);
  inst.bytes_per_slot = {{100, 100, 100, 100}, {80, 80, 80, 80}};
  inst.unit_cost = {0.0, 1.0};
  return inst;
}

TEST(OptimalDp, UsesOnlyFreeInterfaceWhenEnough) {
  SlottedInstance inst = tiny_instance();
  inst.target = 400;
  const ScheduleResult res = optimal_dp(inst);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.total_cost, 0.0);
  EXPECT_EQ(res.bytes_on_interface(inst, 0), 400);
  EXPECT_EQ(res.bytes_on_interface(inst, 1), 0);
}

TEST(OptimalDp, PaysMinimumForTheDeficit) {
  SlottedInstance inst = tiny_instance();
  inst.target = 450;  // 400 free + one 80 B cell slot
  const ScheduleResult res = optimal_dp(inst);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.bytes_on_interface(inst, 1), 80);
  EXPECT_DOUBLE_EQ(res.total_cost, 80.0);
}

TEST(OptimalDp, InfeasibleWhenCapacityShort) {
  SlottedInstance inst = tiny_instance();
  inst.target = 1000;  // max 720
  EXPECT_FALSE(optimal_dp(inst).feasible);
}

TEST(OptimalDp, PicksCheaperOfTwoCostlyInterfaces) {
  SlottedInstance inst;
  inst.slot = seconds(1.0);
  inst.bytes_per_slot = {{100, 100}, {100, 100}, {100, 100}};
  inst.unit_cost = {0.0, 5.0, 1.0};
  inst.target = 300;
  const ScheduleResult res = optimal_dp(inst);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.bytes_on_interface(inst, 1), 0);  // expensive untouched
  EXPECT_EQ(res.bytes_on_interface(inst, 2), 100);
  EXPECT_DOUBLE_EQ(res.total_cost, 100.0);
}

TEST(GreedyWaterfall, MatchesDpOnTwoPathInstances) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    SlottedInstance inst;
    inst.slot = seconds(1.0);
    const int slots = 5;
    std::vector<Bytes> wifi(slots), cell(slots);
    for (int j = 0; j < slots; ++j) {
      wifi[static_cast<std::size_t>(j)] = rng.uniform_int(50, 150);
      cell[static_cast<std::size_t>(j)] = rng.uniform_int(50, 150);
    }
    inst.bytes_per_slot = {wifi, cell};
    inst.unit_cost = {0.0, 1.0};
    Bytes cap = 0;
    for (int j = 0; j < slots; ++j) {
      cap += wifi[static_cast<std::size_t>(j)] +
             cell[static_cast<std::size_t>(j)];
    }
    inst.target = rng.uniform_int(100, cap);

    const ScheduleResult dp = optimal_dp(inst);
    const ScheduleResult greedy = greedy_waterfall(inst);
    ASSERT_TRUE(dp.feasible);
    ASSERT_TRUE(greedy.feasible);
    // Uniform cell cost: optimal cost == cost of cheapest byte set. The
    // greedy may overshoot by at most one slot's worth.
    EXPECT_GE(greedy.total_cost + 1e-9, dp.total_cost);
    EXPECT_LE(greedy.total_cost, dp.total_cost + 150.0);
  }
}

TEST(FluidOptimal, ZeroCostlyWhenPreferredSuffices) {
  const auto wifi = BandwidthTrace::constant(DataRate::mbps(8.0));
  const auto cell = BandwidthTrace::constant(DataRate::mbps(8.0));
  const auto res =
      optimal_two_path_fluid(wifi, cell, megabytes(5), seconds(10.0));
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.costly_bytes, 0);
  EXPECT_DOUBLE_EQ(res.costly_fraction, 0.0);
}

TEST(FluidOptimal, ExactDeficit) {
  const auto wifi = BandwidthTrace::constant(DataRate::mbps(3.8));
  const auto cell = BandwidthTrace::constant(DataRate::mbps(3.0));
  // 10 s: WiFi carries 4.75 MB of the 5 MB.
  const auto res =
      optimal_two_path_fluid(wifi, cell, megabytes(5), seconds(10.0));
  EXPECT_TRUE(res.feasible);
  EXPECT_NEAR(static_cast<double>(res.costly_bytes), 250'000, 2000);
  EXPECT_NEAR(res.costly_fraction, 0.05, 0.001);
}

TEST(FluidOptimal, InfeasibleReported) {
  const auto wifi = BandwidthTrace::constant(DataRate::mbps(1.0));
  const auto cell = BandwidthTrace::constant(DataRate::mbps(1.0));
  const auto res =
      optimal_two_path_fluid(wifi, cell, megabytes(10), seconds(10.0));
  EXPECT_FALSE(res.feasible);
}

TEST(FromTraces, SamplesSlotBytes) {
  const auto wifi = BandwidthTrace::constant(DataRate::mbps(8.0));
  const auto cell = BandwidthTrace::constant(DataRate::mbps(4.0));
  const auto inst = SlottedInstance::from_traces(
      {&wifi, &cell}, {0.0, 1.0}, megabytes(1), seconds(2.0),
      milliseconds(500));
  ASSERT_EQ(inst.interfaces(), 2u);
  ASSERT_EQ(inst.slots(), 4u);
  EXPECT_EQ(inst.bytes_per_slot[0][0], 500'000);
  EXPECT_EQ(inst.bytes_per_slot[1][3], 250'000);
}

// Property: the online algorithm never beats the perfect-knowledge fluid
// optimum, and with stable bandwidth it comes close (Table 2's "Diff"
// column stays under ~10 %).
class OnlineVsOptimal : public ::testing::TestWithParam<double> {};

TEST_P(OnlineVsOptimal, GapIsSmallAndOneSided) {
  const double sigma = GetParam();
  Rng rng(23 + static_cast<std::uint64_t>(sigma * 100));
  JitterParams wifi_p, cell_p;
  wifi_p.mean = DataRate::mbps(3.8);
  wifi_p.sigma_fraction = sigma;
  cell_p.mean = DataRate::mbps(3.0);
  cell_p.sigma_fraction = sigma;
  const auto wifi = gen_jitter(wifi_p, rng);
  const auto cell = gen_jitter(cell_p, rng);

  const Bytes target = megabytes(5);
  const Duration deadline = seconds(10.0);
  const auto opt = optimal_two_path_fluid(wifi, cell, target, deadline);
  const auto online = simulate_online_two_path(wifi, cell, target, deadline);

  ASSERT_TRUE(opt.feasible);
  // Online uses at least as much costly data as the oracle...
  EXPECT_GE(online.costly_fraction, opt.costly_fraction - 0.01);
  // ...but not wildly more (paper: < 10 % of transfer size).
  EXPECT_LE(online.costly_fraction, opt.costly_fraction + 0.15);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, OnlineVsOptimal,
                         ::testing::Values(0.1, 0.2, 0.3));

}  // namespace
}  // namespace mpdash
