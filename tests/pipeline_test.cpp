// Differential + property harness for the prefetching pipeline.
//
// Differential: pipelined (max_inflight_chunks = 3) vs sequential runs of
// the same fault-free scenarios must not regress QoE — stall time no
// worse, no new deadline misses, same chunks delivered.
//
// Property (≥ 100 seeds): pipelined runs uphold the pipeline invariants —
// never more than max_inflight_chunks chunk spans open, spans close in
// issue order (or with a recorded abandonment), the playback buffer never
// exceeds capacity, and no record is ever stamped with a span that has
// already closed.
//
// Attribution: multi-span chaos fixtures (a blackout overlapping several
// in-flight chunks) must attribute every miss to the fault with zero
// misclassifications, and the overlap-aware fields must apportion the
// shared window consistently.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/spans.h"
#include "dash/video.h"
#include "exp/scenario.h"
#include "exp/session.h"
#include "fault/fault.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_sink.h"
#include "util/rng.h"

namespace mpdash {
namespace {

Video pipeline_video(std::uint32_t seed = 42, int chunks = 16) {
  return Video("pipe-clip", seconds(4.0), chunks,
               {DataRate::mbps(0.58), DataRate::mbps(1.01),
                DataRate::mbps(1.47), DataRate::mbps(2.41),
                DataRate::mbps(3.94)},
               0.12, seed);
}

struct RunOutput {
  SessionResult result;
  std::vector<TraceRecord> trace;
};

RunOutput run_session(const ScenarioConfig& net, const Video& video,
                      Scheme scheme, const std::string& adaptation,
                      int inflight, const FaultPlan* faults = nullptr,
                      bool recovery = false,
                      Duration buffer_capacity = kDurationZero) {
  Scenario scenario(net);
  Telemetry telemetry;
  TraceCollector collector;
  telemetry.add_sink(&collector);

  SessionConfig cfg;
  cfg.scheme = scheme;
  cfg.adaptation = adaptation;
  cfg.player.max_inflight_chunks = inflight;
  if (buffer_capacity > kDurationZero) {
    cfg.player.buffer_capacity = buffer_capacity;
  }
  SessionEnv env;
  env.telemetry = &telemetry;
  env.faults = faults;
  if (recovery) {
    cfg.mptcp_recovery.max_consecutive_rtos = 4;
    cfg.mptcp_recovery.reprobe_interval = seconds(2.0);
    cfg.http_recovery.request_timeout = seconds(3.0);
    cfg.http_recovery.max_retries = 4;
    cfg.http_recovery.jitter_seed = net.seed;
    cfg.player.max_chunk_attempts = 3;
  }

  RunOutput out;
  out.result = run_streaming_session(scenario, video, cfg, env);
  out.trace = collector.take();
  return out;
}

bool label_is(const TraceRecord& r, const char* name) {
  return r.label != nullptr && std::strcmp(r.label, name) == 0;
}

// --- differential: pipelined must dominate sequential QoE ---------------

struct DiffScenario {
  const char* name;
  Scheme scheme;
  const char* adaptation;
  double wifi_mbps;
  double lte_mbps;
};

class PipelineDifferential : public ::testing::TestWithParam<DiffScenario> {};

TEST_P(PipelineDifferential, PipelinedNeverWorseThanSequential) {
  const DiffScenario& p = GetParam();
  const Video video = pipeline_video();
  const ScenarioConfig net = constant_scenario(DataRate::mbps(p.wifi_mbps),
                                               DataRate::mbps(p.lte_mbps));
  const RunOutput seq =
      run_session(net, video, p.scheme, p.adaptation, /*inflight=*/1);
  const RunOutput pipe =
      run_session(net, video, p.scheme, p.adaptation, /*inflight=*/3);

  ASSERT_TRUE(seq.result.completed) << p.name;
  ASSERT_TRUE(pipe.result.completed) << p.name;
  // Fault-free: every chunk delivered, none abandoned, in both modes.
  EXPECT_EQ(seq.result.chunks, video.chunk_count()) << p.name;
  EXPECT_EQ(pipe.result.chunks, video.chunk_count()) << p.name;
  EXPECT_EQ(pipe.result.chunks_abandoned, 0) << p.name;
  // QoE dominance: prefetch may only help on a fault-free network.
  EXPECT_LE(pipe.result.stall_s, seq.result.stall_s + 1e-9) << p.name;
  EXPECT_LE(pipe.result.stalls, seq.result.stalls) << p.name;
  EXPECT_LE(pipe.result.deadline_misses, seq.result.deadline_misses)
      << p.name;
}

INSTANTIATE_TEST_SUITE_P(
    FaultFreeScenarios, PipelineDifferential,
    ::testing::Values(
        DiffScenario{"baseline_festive", Scheme::kBaseline, "festive", 2.8,
                     3.0},
        DiffScenario{"mpdash_rate_festive", Scheme::kMpDashRate, "festive",
                     2.8, 3.0},
        DiffScenario{"mpdash_duration_festive", Scheme::kMpDashDuration,
                     "festive", 2.8, 3.0},
        DiffScenario{"wifi_only_festive", Scheme::kWifiOnly, "festive", 2.8,
                     3.0},
        DiffScenario{"baseline_bba", Scheme::kBaseline, "bba", 2.8, 3.0},
        DiffScenario{"mpdash_rate_bba", Scheme::kMpDashRate, "bba", 2.8, 3.0},
        DiffScenario{"constrained_mpdash_rate", Scheme::kMpDashRate,
                     "festive", 1.6, 1.2},
        DiffScenario{"constrained_baseline", Scheme::kBaseline, "festive",
                     1.6, 1.2}),
    [](const ::testing::TestParamInfo<DiffScenario>& info) {
      return info.param.name;
    });

// --- property: pipeline invariants over seeded runs ---------------------

struct PipelineAudit {
  int max_open = 0;             // peak simultaneously-open chunk spans
  int spans_opened = 0;
  int spans_closed = 0;
  bool saw_abandoned = false;
};

// Walks a trace and asserts the structural pipeline invariants. Returns
// the audit stats so callers can additionally assert that pipelining
// actually engaged.
PipelineAudit audit_pipeline_trace(const std::vector<TraceRecord>& trace,
                                   int max_inflight, double capacity_s,
                                   const std::string& what) {
  PipelineAudit a;
  std::set<SpanId> open_chunk_spans;
  std::set<SpanId> closed_spans;           // all spans, chunk or manifest
  std::vector<SpanId> issue_order;
  std::vector<SpanId> close_order;         // chunk spans only
  std::map<SpanId, const char*> close_status;

  for (const TraceRecord& r : trace) {
    if (r.type == TraceType::kSpanStart) {
      EXPECT_EQ(closed_spans.count(r.span), 0u)
          << what << ": span " << r.span << " reopened after close";
      if (label_is(r, "chunk")) {
        open_chunk_spans.insert(r.span);
        issue_order.push_back(r.span);
        ++a.spans_opened;
        a.max_open = std::max(a.max_open,
                              static_cast<int>(open_chunk_spans.size()));
        EXPECT_LE(static_cast<int>(open_chunk_spans.size()), max_inflight)
            << what << ": more than max_inflight_chunks spans open at t="
            << to_seconds(r.at);
      }
      continue;
    }
    if (r.type == TraceType::kSpanEnd) {
      if (open_chunk_spans.erase(r.span) > 0) {
        close_order.push_back(r.span);
        close_status[r.span] = r.label;
        ++a.spans_closed;
        if (label_is(r, "abandoned")) a.saw_abandoned = true;
      }
      closed_spans.insert(r.span);
      continue;
    }
    // No record may be stamped with a span that already closed. Packet
    // records are exempt: a spurious RTO can legally retransmit (and
    // deliver) the tail of a completed transfer after its span closed.
    if (r.span != 0 && !r.is_packet()) {
      EXPECT_EQ(closed_spans.count(r.span), 0u)
          << what << ": " << to_string(r.type) << " record ("
          << (r.label ? r.label : "-") << ") stamped with closed span "
          << r.span << " at t=" << to_seconds(r.at);
    }
    // The playback buffer must never exceed its capacity.
    if (r.type == TraceType::kPlayer && label_is(r, "buffer_sample")) {
      EXPECT_LE(r.value, capacity_s + 1e-9)
          << what << ": buffer above capacity at t=" << to_seconds(r.at);
    }
  }

  // Spans must close in issue order; an out-of-order closer must carry an
  // explicitly recorded abandonment/failure (a pipelined abandonment lets
  // younger siblings finish around it).
  std::set<SpanId> early_closed;
  std::size_t expect = 0;
  for (const SpanId closed : close_order) {
    while (expect < issue_order.size() &&
           early_closed.count(issue_order[expect]) > 0) {
      ++expect;  // already accounted for as an early closer
    }
    if (expect < issue_order.size() && issue_order[expect] == closed) {
      ++expect;
      continue;
    }
    const char* status = close_status[closed];
    EXPECT_TRUE(status != nullptr && (std::strcmp(status, "abandoned") == 0 ||
                                      std::strcmp(status, "failed") == 0))
        << what << ": span " << closed
        << " closed out of issue order without a recorded abandonment";
    early_closed.insert(closed);
  }
  return a;
}

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

// 10 parameterized groups × 10 seeds = 100 seeded pipelined runs, each
// audited against the full invariant set. Fault-free (loss only from
// congestion), so every span must close "delivered" in issue order.
TEST_P(PipelineProperty, InvariantsHoldAcrossSeeds) {
  const std::uint64_t group = GetParam();
  for (std::uint64_t i = 0; i < 10; ++i) {
    const std::uint64_t seed = group * 10 + i + 1;
    Rng rng(seed * 1000003);
    const double wifi = rng.uniform(1.2, 8.0);
    const double lte = rng.uniform(1.0, 6.0);
    const int chunks = static_cast<int>(rng.uniform_int(6, 14));
    const Video video = pipeline_video(static_cast<std::uint32_t>(seed),
                                       chunks);
    ScenarioConfig net =
        constant_scenario(DataRate::mbps(wifi), DataRate::mbps(lte));
    net.seed = seed;
    const Scheme scheme =
        (seed % 2 == 0) ? Scheme::kMpDashRate : Scheme::kBaseline;
    const std::string what = "seed " + std::to_string(seed);

    const RunOutput out =
        run_session(net, video, scheme, "festive", /*inflight=*/3);
    ASSERT_TRUE(out.result.completed) << what;
    EXPECT_EQ(out.result.chunks, chunks) << what;

    const PipelineAudit a = audit_pipeline_trace(
        out.trace, /*max_inflight=*/3, /*capacity_s=*/40.0, what);
    EXPECT_EQ(a.spans_opened, chunks) << what;
    EXPECT_EQ(a.spans_closed, chunks) << what;
    EXPECT_FALSE(a.saw_abandoned) << what;
    // The prefetch window must actually engage on a healthy network.
    EXPECT_GE(a.max_open, 2) << what;
    EXPECT_LE(a.max_open, 3) << what;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedGroups, PipelineProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

// Sequential runs through the same auditor: the n=1 window means at most
// one chunk span is ever open.
TEST(PipelineProperty, SequentialKeepsSingleSpanWindow) {
  const Video video = pipeline_video();
  const RunOutput out =
      run_session(constant_scenario(DataRate::mbps(2.8), DataRate::mbps(3.0)),
                  video, Scheme::kMpDashRate, "festive", /*inflight=*/1);
  ASSERT_TRUE(out.result.completed);
  const PipelineAudit a =
      audit_pipeline_trace(out.trace, /*max_inflight=*/1, 40.0, "sequential");
  EXPECT_EQ(a.max_open, 1);
  EXPECT_EQ(a.spans_opened, video.chunk_count());
}

// --- end-of-stream stall regression -------------------------------------

TEST(PipelineRegression, EndOfStreamStallResumesOnFinalDelivery) {
  // A dual-path blackout that outlives the playback buffer while the
  // last chunks of the video are in flight. When those deliveries
  // finally land the stall is already underway, they can only add
  // 3 x 2 s — below the 8 s refill threshold — and nothing will ever
  // refill the buffer again (all chunks issued, none left to fetch).
  // The player must resume with whatever is buffered and finish;
  // found as a chaos-campaign hang where the session sat stalled with
  // delivered content in the buffer until the 600 s time limit.
  ScenarioConfig net =
      constant_scenario(DataRate::mbps(2.0), DataRate::mbps(1.6));
  net.seed = 11;
  FaultPlan plan;
  FaultEvent e;
  e.kind = FaultKind::kBlackout;
  e.at = kTimeZero + seconds(6.0);
  e.duration = seconds(13.0);
  e.path_id = 0;
  plan.events.push_back(e);
  e.path_id = 1;
  plan.events.push_back(e);

  const Video video("clip", seconds(2.0), 10, {DataRate::mbps(1.2)}, 0.1, 7);
  const RunOutput out =
      run_session(net, video, Scheme::kMpDashRate, "festive",
                  /*inflight=*/3, &plan, /*recovery=*/true);

  EXPECT_TRUE(out.result.completed)
      << "player deadlocked in an end-of-stream stall";
  EXPECT_EQ(out.result.chunks, video.chunk_count());
  EXPECT_EQ(out.result.chunks_abandoned, 0);
  EXPECT_GE(out.result.stalls, 1);
  EXPECT_LT(out.result.session_s, 60.0);
}

// --- overlap-aware attribution on multi-span chaos fixtures -------------

TEST(PipelineAttribution, BlackoutOverMultipleInflightSpans) {
  // A total outage while up to three chunks are in flight: every missed
  // span overlapping the window must read fault-blackout — zero
  // misclassifications — and the overlap-aware fields must apportion the
  // shared window across the concurrently open spans.
  int overlapping_spans_seen = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ScenarioConfig net =
        constant_scenario(DataRate::mbps(5.0), DataRate::mbps(4.0));
    net.seed = seed;
    const double at = 4.0 + 0.5 * static_cast<double>(seed % 3);
    FaultPlan plan;
    FaultEvent e;
    e.kind = FaultKind::kBlackout;
    e.at = kTimeZero + seconds(at);
    e.duration = seconds(10.0);
    e.path_id = 0;
    plan.events.push_back(e);
    e.path_id = 1;
    plan.events.push_back(e);

    const Video video("clip", seconds(2.0), 16,
                      {DataRate::mbps(0.6), DataRate::mbps(1.2),
                       DataRate::mbps(2.4)},
                      0.1, 42);
    const RunOutput out =
        run_session(net, video, Scheme::kMpDashDuration, "festive",
                    /*inflight=*/3, &plan, /*recovery=*/true);
    const std::string what = "blackout seed " + std::to_string(seed);

    SpanModel model = build_span_model(out.trace);
    attribute_misses(&model, kWifiPathId);

    double share_total = 0.0;
    for (const ChunkTimeline& t : model.spans) {
      if (t.max_concurrent_spans > 1 && t.path_fault_overlap_s > 0.0) {
        ++overlapping_spans_seen;
      }
      share_total += t.fault_overlap_share_s;
      if (!t.missed()) continue;
      if (t.path_fault_overlap_s > 0.0) {
        EXPECT_EQ(t.cause, MissCause::kFaultBlackout)
            << what << ": span " << t.span << " (chunk " << t.chunk
            << ") misclassified as " << to_string(t.cause);
      }
    }
    // Apportioned shares can never exceed the injected outage duration.
    EXPECT_LE(share_total, 10.0 + 1e-6) << what;
    const auto counts = attribution_counts(model);
    EXPECT_EQ(count_for(counts, MissCause::kSchedulerLate), 0) << what;
    EXPECT_EQ(count_for(counts, MissCause::kBandwidthShortfall), 0) << what;
    EXPECT_EQ(count_for(counts, MissCause::kUnknown), 0) << what;
  }
  // The fixture must actually exercise the multi-span case.
  EXPECT_GT(overlapping_spans_seen, 0);
}

}  // namespace
}  // namespace mpdash
