#include <gtest/gtest.h>

#include <memory>

#include "predict/estimator.h"
#include "predict/ewma.h"
#include "predict/harmonic.h"
#include "predict/holt_winters.h"
#include "predict/moving_average.h"

namespace mpdash {
namespace {

TEST(HoltWinters, ZeroBeforeSamples) {
  HoltWinters hw;
  EXPECT_TRUE(hw.predict().is_zero());
  EXPECT_EQ(hw.sample_count(), 0u);
}

TEST(HoltWinters, ConvergesOnConstantSeries) {
  HoltWinters hw;
  for (int i = 0; i < 50; ++i) hw.add_sample(DataRate::mbps(4.0));
  EXPECT_NEAR(hw.predict().as_mbps(), 4.0, 1e-6);
  EXPECT_NEAR(hw.trend_bps(), 0.0, 1.0);
}

TEST(HoltWinters, TracksLinearTrend) {
  HoltWinters hw;
  // Rising 0.1 Mbps per sample: the one-step-ahead forecast should lead
  // the latest sample.
  for (int i = 0; i < 60; ++i) {
    hw.add_sample(DataRate::mbps(1.0 + 0.1 * i));
  }
  const double last = 1.0 + 0.1 * 59;
  EXPECT_GT(hw.predict().as_mbps(), last);
  EXPECT_NEAR(hw.predict().as_mbps(), last + 0.1, 0.05);
}

TEST(HoltWinters, ReactsFasterThanEwmaOnDrop) {
  HoltWinters hw;
  Ewma ewma(0.25);
  for (int i = 0; i < 30; ++i) {
    hw.add_sample(DataRate::mbps(6.0));
    ewma.add_sample(DataRate::mbps(6.0));
  }
  for (int i = 0; i < 5; ++i) {
    hw.add_sample(DataRate::mbps(1.0));
    ewma.add_sample(DataRate::mbps(1.0));
  }
  // The trend term lets Holt-Winters chase the collapse.
  EXPECT_LT(hw.predict().as_mbps(), ewma.predict().as_mbps());
}

TEST(HoltWinters, PredictionClampedAtZero) {
  HoltWinters hw;
  for (double v : {5.0, 3.0, 1.0, 0.2, 0.0, 0.0}) {
    hw.add_sample(DataRate::mbps(v));
  }
  EXPECT_GE(hw.predict().bps(), 0.0);
}

TEST(HoltWinters, ResetClearsState) {
  HoltWinters hw;
  hw.add_sample(DataRate::mbps(9.0));
  hw.reset();
  EXPECT_TRUE(hw.predict().is_zero());
  EXPECT_EQ(hw.sample_count(), 0u);
}

TEST(HoltWinters, ValidatesParameters) {
  EXPECT_THROW(HoltWinters({.alpha = 0.0, .beta = 0.2}),
               std::invalid_argument);
  EXPECT_THROW(HoltWinters({.alpha = 0.5, .beta = 1.5}),
               std::invalid_argument);
}

TEST(Ewma, FirstSampleSeedsValue) {
  Ewma e(0.5);
  e.add_sample(DataRate::mbps(8.0));
  EXPECT_NEAR(e.predict().as_mbps(), 8.0, 1e-9);
  e.add_sample(DataRate::mbps(4.0));
  EXPECT_NEAR(e.predict().as_mbps(), 6.0, 1e-9);
}

TEST(Ewma, ValidatesWeight) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

TEST(Harmonic, WindowedHarmonicMean) {
  HarmonicMean h(3);
  h.add_sample(DataRate::mbps(1.0));
  h.add_sample(DataRate::mbps(2.0));
  EXPECT_NEAR(h.predict().as_mbps(), 4.0 / 3.0, 1e-9);
  // Window slides: only the last 3 samples count.
  h.add_sample(DataRate::mbps(2.0));
  h.add_sample(DataRate::mbps(2.0));
  h.add_sample(DataRate::mbps(2.0));
  EXPECT_NEAR(h.predict().as_mbps(), 2.0, 1e-9);
}

TEST(Harmonic, ZeroSampleDominates) {
  HarmonicMean h(5);
  h.add_sample(DataRate::mbps(5.0));
  h.add_sample(DataRate::bits_per_second(0));
  EXPECT_TRUE(h.predict().is_zero());
}

TEST(MovingAverage, WindowedArithmeticMean) {
  MovingAverage ma(3);
  EXPECT_TRUE(ma.predict().is_zero());
  ma.add_sample(DataRate::mbps(1.0));
  ma.add_sample(DataRate::mbps(2.0));
  EXPECT_NEAR(ma.predict().as_mbps(), 1.5, 1e-9);
  ma.add_sample(DataRate::mbps(3.0));
  ma.add_sample(DataRate::mbps(4.0));  // evicts the 1.0 sample
  EXPECT_NEAR(ma.predict().as_mbps(), 3.0, 1e-9);
  ma.reset();
  EXPECT_TRUE(ma.predict().is_zero());
  EXPECT_THROW(MovingAverage{0}, std::invalid_argument);
}

TEST(RateSampler, EmitsOneSamplePerInterval) {
  auto hw = std::make_shared<HoltWinters>();
  RateSampler sampler(hw, milliseconds(100));
  // 12500 bytes per 100 ms = 1 Mbps, delivered mid-interval.
  sampler.on_bytes(kTimeZero, 0);
  for (int i = 0; i < 10; ++i) {
    sampler.on_bytes(TimePoint(milliseconds(100 * i + 50)), 12'500);
  }
  sampler.advance_to(TimePoint(seconds(1.0)));
  EXPECT_EQ(hw->sample_count(), 10u);
  EXPECT_NEAR(sampler.estimate().as_mbps(), 1.0, 0.05);
}

TEST(RateSampler, AdvanceEmitsZeroSamples) {
  auto hw = std::make_shared<HoltWinters>();
  RateSampler sampler(hw, milliseconds(100));
  sampler.on_bytes(kTimeZero, 12'500);
  sampler.advance_to(TimePoint(seconds(1.0)));
  EXPECT_EQ(hw->sample_count(), 10u);
  EXPECT_LT(sampler.estimate().as_mbps(), 0.5);
}

TEST(RateSampler, ResyncSkipsIdleGap) {
  auto hw = std::make_shared<HoltWinters>();
  RateSampler sampler(hw, milliseconds(100));
  sampler.on_bytes(kTimeZero, 0);
  for (int i = 1; i <= 5; ++i) {
    sampler.on_bytes(TimePoint(milliseconds(100 * i)), 50'000);  // 4 Mbps
  }
  const double before = sampler.estimate().as_mbps();
  // 10 s idle gap, then resync: no zero samples must be emitted.
  sampler.resync(TimePoint(seconds(11.0)));
  EXPECT_NEAR(sampler.estimate().as_mbps(), before, 1e-9);
  const auto n = hw->sample_count();
  sampler.on_bytes(TimePoint(seconds(11.0) + milliseconds(100)), 50'000);
  EXPECT_EQ(hw->sample_count(), n + 1);
}

}  // namespace
}  // namespace mpdash
