// Randomized property tests: stream integrity through the full transport
// under arbitrary message patterns, payload-slicing laws, and CSV/manifest
// round-trip stability on generated inputs. Seeded, so failures reproduce.

#include <gtest/gtest.h>

#include <numeric>

#include "dash/manifest.h"
#include "exp/scenario.h"
#include "mptcp/connection.h"
#include "mptcp/stream_buffer.h"
#include "mptcp/wire_data.h"
#include "util/csv.h"
#include "util/rng.h"

namespace mpdash {
namespace {

class StreamIntegrity : public ::testing::TestWithParam<std::uint64_t> {};

// Any interleaving of real and virtual messages of random sizes arrives
// intact, in order, once, over two lossy-by-congestion paths.
TEST_P(StreamIntegrity, RandomMessagesArriveInOrderExactlyOnce) {
  Rng rng(GetParam());
  Scenario scenario(
      constant_scenario(DataRate::mbps(rng.uniform(1.0, 10.0)),
                        DataRate::mbps(rng.uniform(1.0, 10.0))));
  MptcpConnection conn(scenario.loop(), scenario.paths());

  std::string expect_prefix;   // real bytes in order
  Bytes total_len = 0;
  const int messages = static_cast<int>(rng.uniform_int(5, 40));
  for (int i = 0; i < messages; ++i) {
    if (rng.uniform() < 0.5) {
      std::string msg;
      const auto len = rng.uniform_int(1, 2000);
      for (std::int64_t k = 0; k < len; ++k) {
        msg += static_cast<char>('a' + (rng.next_u64() % 26));
      }
      expect_prefix += msg;
      total_len += static_cast<Bytes>(msg.size());
      conn.server().send(wire_from_string(std::move(msg)));
    } else {
      const Bytes len = rng.uniform_int(1, 200'000);
      // Virtual bytes render as '\0'.
      expect_prefix += std::string(static_cast<std::size_t>(len), '\0');
      total_len += len;
      conn.server().send(wire_virtual(len));
    }
  }

  std::string received;
  conn.client().set_receive_handler(
      [&](const WireData& d) { received += wire_to_string(d); });
  scenario.loop().run_until(TimePoint(seconds(600.0)));

  ASSERT_EQ(static_cast<Bytes>(received.size()), total_len);
  EXPECT_EQ(received, expect_prefix);
  EXPECT_EQ(conn.client().delivered_payload_total(), total_len);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamIntegrity,
                         ::testing::Range<std::uint64_t>(1, 9));

class SliceLaws : public ::testing::TestWithParam<std::uint64_t> {};

// wire_slice obeys concatenation: slicing [0,k) and [k,n) and joining
// reproduces the original bytes, for random payloads and cut points.
TEST_P(SliceLaws, SplitAndRejoin) {
  Rng rng(GetParam() * 31 + 7);
  WireData data;
  for (int i = 0; i < 6; ++i) {
    if (rng.uniform() < 0.5) {
      std::string s;
      const auto len = rng.uniform_int(0, 50);
      for (std::int64_t k = 0; k < len; ++k) {
        s += static_cast<char>('A' + (rng.next_u64() % 26));
      }
      wire_append(data, wire_from_string(std::move(s)));
    } else {
      wire_append(data, wire_virtual(rng.uniform_int(0, 50)));
    }
  }
  const Bytes n = wire_length(data);
  const std::string whole = wire_to_string(data);
  for (int trial = 0; trial < 10; ++trial) {
    const Bytes k = rng.uniform_int(0, n);
    WireData head = wire_slice(data, 0, k);
    WireData tail = wire_slice(data, k, n - k);
    wire_append(head, std::move(tail));
    EXPECT_EQ(wire_to_string(head), whole);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SliceLaws,
                         ::testing::Range<std::uint64_t>(1, 6));

// StreamBuffer drains exactly what was appended regardless of pull sizes.
TEST(PropertyStreamBuffer, ArbitraryPullSizesConserveBytes) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    StreamBuffer buf;
    std::string expect;
    for (int i = 0; i < 8; ++i) {
      std::string s(static_cast<std::size_t>(rng.uniform_int(1, 300)),
                    static_cast<char>('0' + i));
      expect += s;
      buf.append(wire_from_string(std::move(s)));
    }
    std::string got;
    while (!buf.empty()) {
      got += wire_to_string(buf.pull(rng.uniform_int(1, 97)));
    }
    EXPECT_EQ(got, expect);
  }
}

// CSV writer/parser round-trips random cell contents including the
// quoting-relevant characters.
TEST(PropertyCsv, RandomCellsRoundTrip) {
  Rng rng(7);
  const std::string alphabet = "ab,\"\n\r x";
  for (int trial = 0; trial < 30; ++trial) {
    const int cols = static_cast<int>(rng.uniform_int(1, 5));
    std::vector<std::string> header;
    for (int c = 0; c < cols; ++c) header.push_back("h" + std::to_string(c));
    CsvWriter w(header);
    std::vector<std::vector<std::string>> rows;
    for (int r = 0; r < 5; ++r) {
      std::vector<std::string> row;
      for (int c = 0; c < cols; ++c) {
        std::string cell;
        const auto len = rng.uniform_int(0, 12);
        for (std::int64_t k = 0; k < len; ++k) {
          cell += alphabet[rng.next_u64() % alphabet.size()];
        }
        row.push_back(std::move(cell));
      }
      rows.push_back(row);
      w.add_row(rows.back());
    }
    const auto parsed = parse_csv(w.str());
    ASSERT_EQ(parsed.size(), rows.size() + 1) << "trial " << trial;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      // Trailing empty cells are not distinguishable from absent ones in
      // bare CSV; compare the joined representation.
      std::vector<std::string> got = parsed[r + 1];
      got.resize(static_cast<std::size_t>(cols));
      EXPECT_EQ(got, rows[r]) << "trial " << trial << " row " << r;
    }
  }
}

class SpanConservation : public ::testing::TestWithParam<std::uint64_t> {};

// Span tags ride SegmentRefs as out-of-band metadata; any interleaving of
// appends and arbitrarily-sized pulls must keep every byte attributed to
// the span that queued it, in order, with no bytes created or lost.
TEST_P(SpanConservation, PullKeepsPerByteSpanAttribution) {
  Rng rng(GetParam() * 7919 + 13);
  StreamBuffer buf;
  std::vector<std::uint64_t> expected;  // span of each queued byte, FIFO
  std::vector<std::uint64_t> got;

  const int steps = static_cast<int>(rng.uniform_int(20, 60));
  for (int i = 0; i < steps; ++i) {
    if (buf.empty() || rng.uniform() < 0.5) {
      const std::uint64_t span = rng.uniform_int(0, 5);
      WireData d;
      if (rng.uniform() < 0.5) {
        std::string s(static_cast<std::size_t>(rng.uniform_int(1, 400)), 'x');
        d = wire_from_string(std::move(s));
      } else {
        d = wire_virtual(rng.uniform_int(1, 50'000));
      }
      for (auto& seg : d) seg.span = span;
      expected.insert(expected.end(),
                      static_cast<std::size_t>(wire_length(d)), span);
      buf.append(std::move(d));
    } else {
      const WireData out = buf.pull(rng.uniform_int(1, 30'000));
      for (const auto& seg : out) {
        got.insert(got.end(), seg.len, seg.span);
      }
    }
  }
  while (!buf.empty()) {
    const WireData out = buf.pull(rng.uniform_int(1, 30'000));
    for (const auto& seg : out) {
      got.insert(got.end(), seg.len, seg.span);
    }
  }
  ASSERT_EQ(got.size(), expected.size());
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpanConservation,
                         ::testing::Range<std::uint64_t>(1, 13));

// Random videos survive the manifest round trip bit-exactly.
TEST(PropertyManifest, RandomVideosRoundTrip) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const int levels = static_cast<int>(rng.uniform_int(1, 6));
    std::vector<DataRate> rates;
    double mbps = rng.uniform(0.2, 1.0);
    for (int l = 0; l < levels; ++l) {
      rates.push_back(DataRate::mbps(mbps));
      mbps *= rng.uniform(1.2, 2.0);
    }
    const Video v("vid-" + std::to_string(trial),
                  seconds(rng.uniform(1.0, 10.0)),
                  static_cast<int>(rng.uniform_int(1, 40)), rates, 0.2,
                  rng.next_u64());
    const Video back = video_from_manifest(manifest_to_xml(v));
    ASSERT_EQ(back.chunk_count(), v.chunk_count());
    ASSERT_EQ(back.level_count(), v.level_count());
    for (int l = 0; l < v.level_count(); ++l) {
      for (int k = 0; k < v.chunk_count(); ++k) {
        ASSERT_EQ(back.chunk_size(l, k), v.chunk_size(l, k));
      }
    }
  }
}

}  // namespace
}  // namespace mpdash
